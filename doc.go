// Package repro is a from-scratch Go reproduction of "Building a Bw-Tree
// Takes More Than Just Buzz Words" (Wang et al., SIGMOD 2018).
//
// The public index API lives in repro/bwtree; the benchmark harness that
// regenerates the paper's tables and figures is the bwbench command (run
// "go run ./cmd/bwbench list"). See README.md, DESIGN.md and
// EXPERIMENTS.md for the full map.
package repro
