// Package skiplist implements a lock-free skip list after the "No Hot
// Spot Non-blocking Skip List" design (Crain, Gramoli, Raynal, ICDCS
// 2013), the lock-free competitor in the paper's evaluation (§6).
//
// The defining property of that design is that worker threads never build
// towers: they only insert into the lock-free bottom-level linked list
// (Harris-style, with marker nodes standing in for pointer tagging, which
// Go cannot do). A single background thread periodically rebuilds the
// upper-level index that accelerates descents. Under write-heavy load the
// background thread lags behind and workers crawl long unindexed runs of
// the bottom level — exactly the behaviour the paper observes (§6.1:
// "the background thread may not process recent inserts fast enough").
package skiplist

import (
	"bytes"
	"sync/atomic"
	"time"
)

// List is a concurrent skip list. Create with New; Close stops the
// background index maintainer.
type List struct {
	head  *lnode
	index atomic.Pointer[indexSnapshot]
	// sample is the bottom-list stride between index entries.
	sample int
	stop   chan struct{}
	done   chan struct{}
}

// lnode is a bottom-level node. Deletion marks a node by CASing its next
// pointer to a marker node wrapping the true successor, which blocks
// concurrent inserts after it (the Go substitute for pointer tagging).
type lnode struct {
	key    []byte
	val    atomic.Uint64
	next   atomic.Pointer[lnode]
	marker bool
}

// indexSnapshot is a read-only acceleration structure built by the
// background thread: a sorted sample of live bottom nodes. Workers binary
// search it to pick a bottom-level starting point; staleness is safe
// because unlinked nodes still point onward into the live list.
type indexSnapshot struct {
	keys  [][]byte
	nodes []*lnode
}

// New returns an empty list whose index is rebuilt every interval (the
// background-thread cadence; the paper's GC/maintenance interval is 40ms)
// sampling every sample-th node.
func New(interval time.Duration, sample int) *List {
	if sample <= 0 {
		sample = 32
	}
	if interval <= 0 {
		interval = 40 * time.Millisecond
	}
	l := &List{
		head:   &lnode{},
		sample: sample,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	l.index.Store(&indexSnapshot{})
	go l.maintain(interval)
	return l
}

// Close stops the background maintainer.
func (l *List) Close() {
	select {
	case <-l.done:
	default:
		close(l.stop)
		<-l.done
	}
}

func (l *List) maintain(interval time.Duration) {
	defer close(l.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.rebuildIndex()
		}
	}
}

// rebuildIndex walks the bottom level and samples live nodes.
func (l *List) rebuildIndex() {
	var keys [][]byte
	var nodes []*lnode
	i := 0
	for n := l.head.next.Load(); n != nil; n = n.next.Load() {
		if n.marker {
			continue
		}
		if next := n.next.Load(); next != nil && next.marker {
			continue // logically deleted
		}
		if i%l.sample == 0 {
			keys = append(keys, n.key)
			nodes = append(nodes, n)
		}
		i++
	}
	l.index.Store(&indexSnapshot{keys: keys, nodes: nodes})
}

// startPoint returns the rightmost indexed node with key < k (or head).
// A logically-deleted index entry is unusable: its next chain predates
// its unlinking and can miss newer inserts, so the search falls back to
// earlier entries and ultimately the head.
func (l *List) startPoint(k []byte) *lnode {
	idx := l.index.Load()
	lo, hi := 0, len(idx.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(idx.keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for lo > 0 {
		if n := idx.nodes[lo-1]; !isDeleted(n) {
			return n
		}
		lo--
	}
	return l.head
}

// isDeleted reports whether n is logically deleted (its next is a marker).
func isDeleted(n *lnode) bool {
	next := n.next.Load()
	return next != nil && next.marker
}

// find locates the insertion window for k starting from the index,
// physically unlinking any logically-deleted nodes it passes (helping).
// It returns pred (last live node with key < k) and succ (first live node
// with key >= k, or nil).
func (l *List) find(k []byte) (pred, succ *lnode) {
retry:
	pred = l.startPoint(k)
	if isDeleted(pred) {
		// The index handed us a logically-deleted start; fall back to a
		// safe predecessor.
		pred = l.head
	}
	cur := pred.next.Load()
	for cur != nil {
		if cur.marker {
			// pred itself was deleted under us; restart.
			goto retry
		}
		next := cur.next.Load()
		if next != nil && next.marker {
			// cur is logically deleted: help unlink (pred -> next.target).
			target := next.next.Load()
			if !pred.next.CompareAndSwap(cur, target) {
				goto retry
			}
			cur = target
			continue
		}
		if bytes.Compare(cur.key, k) >= 0 {
			return pred, cur
		}
		pred = cur
		cur = next
	}
	return pred, nil
}

// Insert adds (key, value), failing if the key is present.
func (l *List) Insert(key []byte, value uint64) bool {
	n := &lnode{key: append([]byte(nil), key...)}
	n.val.Store(value)
	for {
		pred, succ := l.find(key)
		if succ != nil && bytes.Equal(succ.key, key) {
			return false
		}
		n.next.Store(succ)
		if pred.next.CompareAndSwap(succ, n) {
			return true
		}
	}
}

// Lookup returns the value stored under key.
func (l *List) Lookup(key []byte) (uint64, bool) {
	cur := l.startPoint(key)
	for cur != nil {
		if !cur.marker && cur.key != nil && bytes.Compare(cur.key, key) >= 0 {
			if !bytes.Equal(cur.key, key) || isDeleted(cur) {
				return 0, false
			}
			return cur.val.Load(), true
		}
		cur = cur.next.Load()
	}
	return 0, false
}

// Update replaces key's value in place, reporting presence.
func (l *List) Update(key []byte, value uint64) bool {
	_, succ := l.find(key)
	if succ == nil || !bytes.Equal(succ.key, key) || isDeleted(succ) {
		return false
	}
	succ.val.Store(value)
	return true
}

// Delete removes key, reporting whether this call deleted it.
func (l *List) Delete(key []byte) bool {
	for {
		pred, succ := l.find(key)
		if succ == nil || !bytes.Equal(succ.key, key) {
			return false
		}
		next := succ.next.Load()
		if next != nil && next.marker {
			return false // already deleted
		}
		// Logical deletion: install a marker after succ.
		m := &lnode{marker: true}
		m.next.Store(next)
		if !succ.next.CompareAndSwap(next, m) {
			continue
		}
		// Physical unlink (best effort; find() helps later otherwise).
		pred.next.CompareAndSwap(succ, next)
		return true
	}
}

// Scan visits up to max live items with key >= start in ascending order.
func (l *List) Scan(start []byte, max int, visit func(key []byte, value uint64) bool) int {
	count := 0
	cur := l.startPoint(start)
	for cur != nil && count < max {
		if !cur.marker && cur.key != nil && bytes.Compare(cur.key, start) >= 0 && !isDeleted(cur) {
			count++
			if !visit(cur.key, cur.val.Load()) {
				return count
			}
		}
		cur = cur.next.Load()
	}
	return count
}
