package skiplist

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestScanWhileMutating checks scan ordering and liveness while writers
// churn and the background thread rebuilds the index underneath.
func TestScanWhileMutating(t *testing.T) {
	l := New(time.Millisecond, 8)
	defer l.Close()
	for i := uint64(0); i < 20000; i += 2 {
		l.Insert(key64(i), i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				n := uint64(rng.Intn(10000))*2 + 1
				if rng.Intn(2) == 0 {
					l.Insert(key64(n), n)
				} else {
					l.Delete(key64(n))
				}
			}
		}(w)
	}
	for round := 0; round < 10; round++ {
		var prev int64 = -1
		evens := 0
		l.Scan(key64(0), 30000, func(k []byte, v uint64) bool {
			cur := int64(binary.BigEndian.Uint64(k))
			if cur <= prev {
				t.Errorf("scan order: %d after %d", cur, prev)
				return false
			}
			if cur%2 == 0 {
				evens++
			}
			prev = cur
			return true
		})
		if t.Failed() {
			break
		}
		if evens != 10000 {
			t.Fatalf("round %d: stable keys seen %d of 10000", round, evens)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestUpdateRace: updates are atomic stores on the node; concurrent
// readers must observe one of the written values.
func TestUpdateRace(t *testing.T) {
	l := New(time.Millisecond, 8)
	defer l.Close()
	k := key64(42)
	l.Insert(k, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				if w%2 == 0 {
					l.Update(k, uint64(i))
				} else if v, ok := l.Lookup(k); !ok || v >= 10000 {
					t.Errorf("bad value %d %v", v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestDeleteInsertRace: the same key deleted and re-inserted from many
// goroutines must never appear twice in a scan.
func TestDeleteInsertRace(t *testing.T) {
	l := New(time.Millisecond, 4)
	defer l.Close()
	for i := uint64(0); i < 100; i++ {
		l.Insert(key64(i), i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 10000; i++ {
				k := uint64(rng.Intn(100))
				if rng.Intn(2) == 0 {
					l.Delete(key64(k))
				} else {
					l.Insert(key64(k), k)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	l.Scan(key64(0), 1000, func(k []byte, v uint64) bool {
		n := binary.BigEndian.Uint64(k)
		if seen[n] {
			t.Errorf("key %d appears twice", n)
			return false
		}
		seen[n] = true
		return true
	})
}
