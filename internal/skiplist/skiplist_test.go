package skiplist

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newList() *List { return New(time.Millisecond, 8) }

func key64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestBasicOps(t *testing.T) {
	l := newList()
	defer l.Close()
	if !l.Insert([]byte("b"), 2) || !l.Insert([]byte("a"), 1) || !l.Insert([]byte("c"), 3) {
		t.Fatal("insert failed")
	}
	if l.Insert([]byte("b"), 9) {
		t.Fatal("duplicate insert succeeded")
	}
	for i, k := range []string{"a", "b", "c"} {
		v, ok := l.Lookup([]byte(k))
		if !ok || v != uint64(i+1) {
			t.Fatalf("lookup %q: %d %v", k, v, ok)
		}
	}
	if !l.Update([]byte("b"), 20) {
		t.Fatal("update failed")
	}
	if v, _ := l.Lookup([]byte("b")); v != 20 {
		t.Fatalf("updated value %d", v)
	}
	if !l.Delete([]byte("b")) {
		t.Fatal("delete failed")
	}
	if l.Delete([]byte("b")) {
		t.Fatal("double delete succeeded")
	}
	if _, ok := l.Lookup([]byte("b")); ok {
		t.Fatal("deleted key visible")
	}
	if !l.Insert([]byte("b"), 5) {
		t.Fatal("re-insert failed")
	}
}

func TestIndexCatchesUp(t *testing.T) {
	l := newList()
	defer l.Close()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		l.Insert(key64(i), i)
	}
	// Wait for at least one index rebuild, then verify the index is
	// actually consulted (startPoint returns a non-head node).
	time.Sleep(20 * time.Millisecond)
	if sp := l.startPoint(key64(n - 1)); sp == l.head {
		t.Fatal("index never built")
	}
	for i := uint64(0); i < n; i += 97 {
		if v, ok := l.Lookup(key64(i)); !ok || v != i {
			t.Fatalf("lookup %d: %d %v", i, v, ok)
		}
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	l := newList()
	defer l.Close()
	for i := uint64(0); i < 100; i++ {
		l.Insert(key64(i), i)
	}
	for i := uint64(0); i < 100; i += 2 {
		l.Delete(key64(i))
	}
	var got []uint64
	l.Scan(key64(0), 1000, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if len(got) != 50 {
		t.Fatalf("scan found %d items", len(got))
	}
	for i, k := range got {
		if want := uint64(i*2 + 1); k != want {
			t.Fatalf("scan[%d] = %d want %d", i, k, want)
		}
	}
}

// TestStaleIndexAfterDeleteAndReinsert regression-tests the bug where a
// lookup starting from a logically-deleted index node missed keys
// inserted after its unlinking.
func TestStaleIndexAfterDeleteAndReinsert(t *testing.T) {
	l := newList()
	defer l.Close()
	for i := uint64(0); i < 1000; i++ {
		l.Insert(key64(i*10), i)
	}
	time.Sleep(10 * time.Millisecond) // index now covers these nodes
	// Delete a swath of indexed nodes, then insert new keys into the gap
	// before the index rebuilds.
	for i := uint64(400); i < 600; i++ {
		l.Delete(key64(i * 10))
	}
	for i := uint64(400); i < 600; i++ {
		if !l.Insert(key64(i*10+5), i) {
			t.Fatalf("re-insert %d failed", i)
		}
	}
	for i := uint64(400); i < 600; i++ {
		if v, ok := l.Lookup(key64(i*10 + 5)); !ok || v != i {
			t.Fatalf("lookup %d: %d %v", i*10+5, v, ok)
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	l := newList()
	defer l.Close()
	nw := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0:
					l.Insert(key64(k), k)
				case 1:
					l.Delete(key64(k))
				default:
					if v, ok := l.Lookup(key64(k)); ok && v != k {
						t.Errorf("key %d has value %d", k, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestConcurrentDisjoint(t *testing.T) {
	l := newList()
	defer l.Close()
	nw := runtime.GOMAXPROCS(0) * 2
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * per
			for i := uint64(0); i < per; i++ {
				if !l.Insert(key64(base+i), base+i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	count := 0
	var prev int64 = -1
	l.Scan(key64(0), nw*per+10, func(k []byte, v uint64) bool {
		cur := int64(binary.BigEndian.Uint64(k))
		if cur <= prev {
			t.Errorf("scan order: %d after %d", cur, prev)
			return false
		}
		prev = cur
		count++
		return true
	})
	if count != nw*per {
		t.Fatalf("scan count %d want %d", count, nw*per)
	}
}

func TestQuickModel(t *testing.T) {
	l := newList()
	defer l.Close()
	model := map[uint16]uint64{}
	f := func(k uint16, v uint64, op uint8) bool {
		key := key64(uint64(k))
		switch op % 3 {
		case 0:
			_, exists := model[k]
			if l.Insert(key, v) == exists {
				return false
			}
			if !exists {
				model[k] = v
			}
		case 1:
			_, exists := model[k]
			if l.Delete(key) != exists {
				return false
			}
			delete(model, k)
		default:
			want, exists := model[k]
			got, ok := l.Lookup(key)
			if ok != exists || ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
