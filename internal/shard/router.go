// Package shard partitions one logical key space across N independent
// Bw-Tree shards — the Doppel-style "sticky worker" deployment the
// serving tier is built on: each shard owns its tree, its epoch handles,
// and (when durable) its own log directory, so the latch-free hot path
// inside a shard never synchronizes with another shard. Cross-shard work
// exists only at the edges: a Router decides which shard owns a key, and
// range scans scatter to every shard and gather through a merged k-way
// iterator (see Session.Scan).
package shard

import (
	"bytes"
	"fmt"
	"sort"
)

// Router maps keys to shard numbers. Implementations must be pure
// functions of the key (stateless and safe for unlimited concurrency):
// the same key must route to the same shard for the lifetime of a Store.
type Router interface {
	// Shard returns the owning shard in [0, NumShards).
	Shard(key []byte) int
	// NumShards is the partition count the router was built for.
	NumShards() int
	// Name identifies the routing scheme ("hash", "range") in reports.
	Name() string
}

// HashRouter routes by FNV-1a hash of the whole key. Point operations
// spread uniformly regardless of key skew in the prefix, at the cost of
// making every range scan touch all shards.
type HashRouter struct{ n int }

// NewHashRouter returns a hash router over n shards.
func NewHashRouter(n int) *HashRouter {
	if n <= 0 {
		n = 1
	}
	return &HashRouter{n: n}
}

// Shard hashes key with FNV-1a and reduces it mod the shard count.
func (r *HashRouter) Shard(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(r.n))
}

// NumShards returns the partition count.
func (r *HashRouter) NumShards() int { return r.n }

// Name returns "hash".
func (r *HashRouter) Name() string { return "hash" }

// RangeRouter routes by key range: shard i owns keys in
// [bounds[i-1], bounds[i]) with bounds[-1] = -inf and bounds[n-1] = +inf.
// Scans touch only the shards overlapping the requested range, but point
// throughput depends on the key distribution matching the bounds.
type RangeRouter struct {
	// bounds holds the n-1 separator keys, ascending.
	bounds [][]byte
}

// NewRangeRouter returns a range router over n shards with separators
// spread uniformly over the first two key bytes — the right default for
// the big-endian integer and email key sets the harness generates.
func NewRangeRouter(n int) *RangeRouter {
	if n <= 0 {
		n = 1
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		cut := uint32(i) * 0x10000 / uint32(n)
		bounds = append(bounds, []byte{byte(cut >> 8), byte(cut)})
	}
	return &RangeRouter{bounds: bounds}
}

// NewRangeRouterBounds builds a range router from explicit ascending
// separator keys; len(bounds)+1 shards result.
func NewRangeRouterBounds(bounds [][]byte) (*RangeRouter, error) {
	for i := 1; i < len(bounds); i++ {
		if bytes.Compare(bounds[i-1], bounds[i]) >= 0 {
			return nil, fmt.Errorf("shard: range bounds not strictly ascending at %d", i)
		}
	}
	cp := make([][]byte, len(bounds))
	for i, b := range bounds {
		cp[i] = append([]byte(nil), b...)
	}
	return &RangeRouter{bounds: cp}, nil
}

// Shard binary-searches the separator list.
func (r *RangeRouter) Shard(key []byte) int {
	return sort.Search(len(r.bounds), func(i int) bool {
		return bytes.Compare(key, r.bounds[i]) < 0
	})
}

// NumShards returns the partition count.
func (r *RangeRouter) NumShards() int { return len(r.bounds) + 1 }

// Name returns "range".
func (r *RangeRouter) Name() string { return "range" }

// scanFrom returns the first shard whose range can contain a key >=
// start, letting Session.Scan skip shards that end before the scan
// begins. Hash-routed stores always scan every shard.
func scanFrom(r Router, start []byte) int {
	if rr, ok := r.(*RangeRouter); ok {
		return rr.Shard(start)
	}
	return 0
}

// NewRouter builds a router by scheme name ("hash" or "range").
func NewRouter(scheme string, n int) (Router, error) {
	switch scheme {
	case "", "hash":
		return NewHashRouter(n), nil
	case "range":
		return NewRangeRouter(n), nil
	}
	return nil, fmt.Errorf("shard: unknown router %q (want hash or range)", scheme)
}
