package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/bwtree"
)

// Options configures a sharded Store.
type Options struct {
	// Shards is the partition count; 0 means 1. Each shard is a fully
	// independent Bw-Tree sized for one core's traffic.
	Shards int
	// Router selects the partitioning scheme; nil means a hash router
	// over Shards partitions. Its NumShards must equal Shards.
	Router Router
	// Tree configures every shard's tree identically.
	Tree bwtree.Options
	// WALDir, when non-empty, makes every shard durable with its own log
	// in WALDir/shard-NNN — per-shard group commit streams that never
	// contend with each other. Recovery happens shard-parallel at Open.
	WALDir string
	// SyncOnCommit is the per-shard acknowledged-write guarantee (see
	// bwtree.DurableOptions).
	SyncOnCommit bool
}

// Shard is one partition: an independent tree, optionally wrapped by its
// own durability layer.
type Shard struct {
	ID int
	t  *bwtree.Tree
	d  *bwtree.Durable // nil without a WAL
}

// Tree exposes the shard's tree for stats and validation.
func (sh *Shard) Tree() *bwtree.Tree { return sh.t }

// Durable exposes the shard's durability layer (nil when in-memory).
func (sh *Shard) Durable() *bwtree.Durable { return sh.d }

// Store is a set of per-core Bw-Tree shards behind one Router. All
// cross-shard coordination lives here; inside a shard the tree's
// latch-free protocols run exactly as in the single-tree deployment.
type Store struct {
	opts   Options
	router Router
	shards []*Shard

	// maxTxnID and txnScanTorn come from the store-level transaction
	// decision scan at Open (durable stores only): the highest transaction
	// ID on any shard log, and whether any scan truncated a torn tail.
	maxTxnID    uint64
	txnScanTorn bool
}

// Open builds (or, with WALDir, recovers) a sharded store. Recovery runs
// one goroutine per shard: the per-shard logs replay in parallel, so
// recovery time scales down with the shard count.
func Open(o Options) (*Store, error) {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Router == nil {
		o.Router = NewHashRouter(o.Shards)
	}
	if o.Router.NumShards() != o.Shards {
		return nil, fmt.Errorf("shard: router covers %d shards, store has %d", o.Router.NumShards(), o.Shards)
	}
	if o.Tree.NonUnique {
		return nil, errors.New("shard: non-unique trees are not supported by the serving tier")
	}
	st := &Store{opts: o, router: o.Router, shards: make([]*Shard, o.Shards)}

	// Cross-shard transaction decisions must resolve store-wide: a commit
	// spanning shards A and B may have its decision record durable in A's
	// log only (the crash hit between the per-participant decision
	// appends), yet B's prepare must still apply. So before opening any
	// shard, scan every shard log's tail for decisions, merge, and hand
	// the union to each shard's recovery. The scans run shard-parallel
	// like recovery itself.
	var txnCommitted func(uint64) bool
	if o.WALDir != "" {
		merged := make(map[uint64]bool)
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, o.Shards)
		for i := 0; i < o.Shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				dir := filepath.Join(o.WALDir, fmt.Sprintf("shard-%03d", i))
				if err := os.MkdirAll(dir, 0o755); err != nil {
					errs[i] = err
					return
				}
				set, maxID, torn, err := bwtree.ScanTxnDecisions(dir)
				if err != nil {
					errs[i] = fmt.Errorf("shard %d txn scan: %w", i, err)
					return
				}
				mu.Lock()
				for id := range set {
					merged[id] = true
				}
				if maxID > st.maxTxnID {
					st.maxTxnID = maxID
				}
				st.txnScanTorn = st.txnScanTorn || torn
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
		txnCommitted = func(id uint64) bool { return merged[id] }
	}

	var wg sync.WaitGroup
	errs := make([]error, o.Shards)
	for i := 0; i < o.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := &Shard{ID: i}
			if o.WALDir == "" {
				sh.t = bwtree.New(o.Tree)
			} else {
				dir := filepath.Join(o.WALDir, fmt.Sprintf("shard-%03d", i))
				d, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{
					Tree: o.Tree, SyncOnCommit: o.SyncOnCommit, TxnCommitted: txnCommitted,
				})
				if err != nil {
					errs[i] = fmt.Errorf("shard %d: %w", i, err)
					return
				}
				sh.d, sh.t = d, d.Tree()
			}
			st.shards[i] = sh
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

// Router returns the store's router.
func (st *Store) Router() Router { return st.router }

// NumShards returns the partition count.
func (st *Store) NumShards() int { return len(st.shards) }

// Shards returns the live shards (nil entries only after a failed Open).
func (st *Store) Shards() []*Shard { return st.shards }

// Durable reports whether the store runs under per-shard WALs.
func (st *Store) Durable() bool { return st.opts.WALDir != "" }

// RecoveryStats sums the per-shard recovery work done at Open.
func (st *Store) RecoveryStats() bwtree.RecoveryStats {
	var agg bwtree.RecoveryStats
	for _, sh := range st.shards {
		if sh == nil || sh.d == nil {
			continue
		}
		r := sh.d.RecoveryStats()
		agg.SnapshotKeys += r.SnapshotKeys
		agg.Replayed += r.Replayed
		agg.TornTail = agg.TornTail || r.TornTail
		if r.MaxTxnID > agg.MaxTxnID {
			agg.MaxTxnID = r.MaxTxnID
		}
		// Shards recover in parallel; wall-clock recovery is the slowest
		// shard, so report the max, not the sum.
		if r.SnapshotLoad > agg.SnapshotLoad {
			agg.SnapshotLoad = r.SnapshotLoad
		}
		if r.Replay > agg.Replay {
			agg.Replay = r.Replay
		}
	}
	// The store-level decision scan runs before the per-shard opens and is
	// the authoritative source for both fields: shards recover with a
	// store-provided resolver, so their own MaxTxnID stays zero, and the
	// scan (not the subsequent replay) is what finds torn tails.
	if st.maxTxnID > agg.MaxTxnID {
		agg.MaxTxnID = st.maxTxnID
	}
	agg.TornTail = agg.TornTail || st.txnScanTorn
	return agg
}

// Checkpoint takes an epoch-consistent checkpoint of every durable
// shard, in parallel. A no-op for in-memory stores.
func (st *Store) Checkpoint() error {
	var wg sync.WaitGroup
	errs := make([]error, len(st.shards))
	for i, sh := range st.shards {
		if sh == nil || sh.d == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			if _, err := sh.d.Checkpoint(); err != nil {
				errs[i] = fmt.Errorf("shard %d checkpoint: %w", i, err)
			}
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Close releases every shard (closing durable writers first).
func (st *Store) Close() error {
	var errs []error
	for _, sh := range st.shards {
		if sh == nil {
			continue
		}
		if sh.d != nil {
			if err := sh.d.Close(); err != nil {
				errs = append(errs, err)
			}
		} else if sh.t != nil {
			sh.t.Close()
		}
	}
	return errors.Join(errs...)
}

// Stats sums every shard's tree counters into one aggregate.
func (st *Store) Stats() bwtree.Stats {
	var agg bwtree.Stats
	for _, sh := range st.shards {
		if sh == nil {
			continue
		}
		s := sh.t.Stats()
		agg.Ops += s.Ops
		agg.Aborts += s.Aborts
		agg.Consolidations += s.Consolidations
		agg.Splits += s.Splits
		agg.Merges += s.Merges
		agg.SlabFull += s.SlabFull
		agg.PointerChases += s.PointerChases
		agg.CASFailures += s.CASFailures
		agg.LeafSlabUsed += s.LeafSlabUsed
		agg.LeafSlabCap += s.LeafSlabCap
		agg.InnerSlabUsed += s.InnerSlabUsed
		agg.InnerSlabCap += s.InnerSlabCap
		agg.BatchLeafHits += s.BatchLeafHits
		agg.BatchParentHits += s.BatchParentHits
		agg.GC.Retired += s.GC.Retired
		agg.GC.Reclaimed += s.GC.Reclaimed
		agg.GC.Advances += s.GC.Advances
		if s.GC.EpochLag > agg.GC.EpochLag {
			agg.GC.EpochLag = s.GC.EpochLag
		}
	}
	return agg
}

// Count sums the exact pair count of every shard (quiescent only).
func (st *Store) Count() int {
	n := 0
	for _, sh := range st.shards {
		n += sh.t.Count()
	}
	return n
}

// Validate runs structural validation on every shard.
func (st *Store) Validate() error {
	for _, sh := range st.shards {
		if err := sh.t.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", sh.ID, err)
		}
	}
	return nil
}
