package shard

import (
	"fmt"

	"repro/bwtree"
	"repro/internal/obs"
)

// DebugVars builds the aggregated observability source for a sharded
// store: counters and gauges summed (or maxed, where a sum lies — epoch
// lag, checkpoint age) across shards, per-shard op counters for skew
// diagnosis, merged latency histograms, merged chain-depth and WAL
// distributions, concatenated flight-recorder and phase-trace feeds, and
// an on-demand /debug/shape walking every shard. The result plugs into
// obs.Serve/obs.Mux exactly like a single tree's DebugVars.
func DebugVars(st *Store) obs.Vars {
	v := obs.Vars{
		Counters: func() map[string]uint64 {
			s := st.Stats()
			m := map[string]uint64{
				"ops":            s.Ops,
				"aborts":         s.Aborts,
				"consolidations": s.Consolidations,
				"splits":         s.Splits,
				"merges":         s.Merges,
				"slab_full":      s.SlabFull,
				"pointer_chases": s.PointerChases,
				"cas_failures":   s.CASFailures,
				"gc_retired":     s.GC.Retired,
				"gc_reclaimed":   s.GC.Reclaimed,
				"gc_advances":    s.GC.Advances,
			}
			// Per-shard op counters surface routing skew: a hot shard shows
			// up as one counter running away from the others.
			for _, sh := range st.shards {
				m[fmt.Sprintf("shard%02d_ops", sh.ID)] = sh.t.Stats().Ops
			}
			if st.Durable() {
				var appends, syncs, bytes, segs uint64
				for _, sh := range st.shards {
					ws := sh.d.WALStats()
					appends += ws.Appends
					syncs += ws.Syncs
					bytes += ws.Bytes
					segs += ws.Segments
				}
				m["wal_appends"] = appends
				m["wal_syncs"] = syncs
				m["wal_bytes"] = bytes
				m["wal_segments"] = segs
			}
			return m
		},
		Gauges: func() map[string]float64 {
			s := st.Stats()
			m := map[string]float64{
				"shards":              float64(st.NumShards()),
				"abort_rate":          s.AbortRate(),
				"leaf_prealloc_util":  s.LeafPreallocUtilization(),
				"inner_prealloc_util": s.InnerPreallocUtilization(),
				"epoch_lag":           float64(s.GC.EpochLag),
			}
			var alloc, free, live, capacity float64
			for _, sh := range st.shards {
				mt := sh.t.MappingStats()
				alloc += float64(mt.Allocated)
				free += float64(mt.Free)
				live += float64(mt.Live)
				capacity += float64(mt.Capacity)
			}
			m["mapping_allocated"] = alloc
			m["mapping_free"] = free
			m["mapping_live"] = live
			if capacity > 0 {
				m["mapping_occupancy"] = live / capacity
			}
			if st.Durable() {
				var qb, qr, pend float64
				var cpAge float64
				for _, sh := range st.shards {
					ws := sh.d.WALStats()
					qb += float64(ws.QueueBytes)
					qr += float64(ws.QueueRecords)
					pend += float64(ws.AppendedLSN - ws.DurableLSN)
					if age := sh.d.CheckpointAge().Seconds(); age > cpAge {
						cpAge = age
					}
				}
				m["wal_queue_bytes"] = qb
				m["wal_queue_records"] = qr
				m["wal_pending_lsns"] = pend
				m["checkpoint_age_seconds"] = cpAge
			}
			return m
		},
		Shape: func() map[string]any {
			// Full per-shard walks: on-demand only (served at /debug/shape).
			shapes := make([]map[string]any, 0, len(st.shards))
			var inner, leaves uint64
			height := 0
			for _, sh := range st.shards {
				ss := sh.t.StructureStats()
				inner += uint64(ss.InnerNodes)
				leaves += uint64(ss.LeafNodes)
				if ss.Height > height {
					height = ss.Height
				}
				shapes = append(shapes, map[string]any{
					"shard":              sh.ID,
					"height":             ss.Height,
					"inner_nodes":        ss.InnerNodes,
					"leaf_nodes":         ss.LeafNodes,
					"avg_leaf_chain_len": ss.AvgLeafChainLen,
					"avg_leaf_node_size": ss.AvgLeafNodeSize,
					"flat_bases":         ss.FlatBases,
					"arena_bytes":        ss.ArenaBytes,
					"inner_flat_bases":   ss.InnerFlatBases,
					"inner_arena_bytes":  ss.InnerArenaBytes,
				})
			}
			return map[string]any{
				"shards":      shapes,
				"height":      height,
				"inner_nodes": inner,
				"leaf_nodes":  leaves,
			}
		},
	}
	opts := st.opts.Tree
	if opts.LatencyHistograms {
		v.Latency = func() *obs.LatencySnapshot {
			agg := &obs.LatencySnapshot{}
			for _, sh := range st.shards {
				if lat := sh.t.Latencies(); lat != nil {
					agg.Merge(lat)
				}
			}
			return agg
		}
	}
	if opts.TraceRingSize > 0 {
		v.Trace = func() []obs.Event {
			var evs []obs.Event
			for _, sh := range st.shards {
				evs = append(evs, sh.t.TraceEvents()...)
			}
			return evs
		}
		v.TraceDropped = func() uint64 {
			var n uint64
			for _, sh := range st.shards {
				n += sh.t.TraceDropped()
			}
			return n
		}
	}
	if opts.PhaseSampleEvery > 0 || opts.FlightRecorderSize > 0 {
		v.MetricHists = func() []obs.HistFeed {
			var depth obs.HistSnapshot
			for _, sh := range st.shards {
				snap := sh.t.ChainDepths()
				depth.Merge(&snap)
			}
			feeds := []obs.HistFeed{{
				Name: "bwtree_chain_depth",
				Help: "Leaf delta-chain depth observed per operation, all shards.",
				Snap: depth,
			}}
			if st.Durable() {
				var fsync, batch obs.HistSnapshot
				for _, sh := range st.shards {
					ws := sh.d.WALStats()
					fsync.Merge(&ws.Fsync)
					batch.Merge(&ws.Batch)
				}
				feeds = append(feeds,
					obs.HistFeed{
						Name: "bwtree_wal_fsync_seconds",
						Help: "WAL fsync wall time per group commit, all shard logs.",
						Snap: fsync, Seconds: true,
					},
					obs.HistFeed{
						Name: "bwtree_wal_batch_records",
						Help: "Records committed per WAL fsync, all shard logs.",
						Snap: batch,
					})
			}
			return feeds
		}
	}
	if opts.FlightRecorderSize > 0 {
		v.Flight = func(n int) []obs.OpSummary {
			var sums []obs.OpSummary
			for _, sh := range st.shards {
				sums = append(sums, sh.t.FlightRecent(n)...)
			}
			return sums
		}
	}
	if opts.PhaseSampleEvery > 0 {
		v.PhaseTraces = func() []obs.OpTrace {
			var trs []obs.OpTrace
			for _, sh := range st.shards {
				trs = append(trs, sh.t.PhaseTraces()...)
			}
			return trs
		}
	}
	return v
}

// PhaseTraces drains every shard's sampled phase traces (for -trace-out
// style exports outside the debug server).
func (st *Store) PhaseTraces() []bwtree.OpTrace {
	var trs []bwtree.OpTrace
	for _, sh := range st.shards {
		trs = append(trs, sh.t.PhaseTraces()...)
	}
	return trs
}
