package shard

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/bwtree"
)

func key64(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func smallTreeOpts() bwtree.Options {
	o := bwtree.DefaultOptions()
	o.LeafNodeSize = 16
	o.InnerNodeSize = 8
	o.LeafChainLength = 4
	o.LeafMergeSize = 4
	o.InnerMergeSize = 2
	return o
}

func TestRouterConsistency(t *testing.T) {
	for _, scheme := range []string{"hash", "range"} {
		r, err := NewRouter(scheme, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r.NumShards() != 8 {
			t.Fatalf("%s: NumShards = %d", scheme, r.NumShards())
		}
		seen := make(map[int]int)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10000; i++ {
			// Full-width random keys: the uniform range router cuts on the
			// 2-byte prefix, so only spanning keys exercise every shard.
			k := key64(rng.Uint64())
			s := r.Shard(k)
			if s < 0 || s >= 8 {
				t.Fatalf("%s: shard %d out of range", scheme, s)
			}
			if s2 := r.Shard(k); s2 != s {
				t.Fatalf("%s: unstable routing %d vs %d", scheme, s, s2)
			}
			seen[s]++
		}
		for s := 0; s < 8; s++ {
			if seen[s] == 0 {
				t.Errorf("%s: shard %d never routed", scheme, s)
			}
		}
	}
}

func TestRangeRouterOrder(t *testing.T) {
	r := NewRangeRouter(8)
	// Routing must be monotone in the key: ascending keys never route to
	// a lower shard (the property scatter-gather skipping relies on).
	prev := 0
	for i := uint64(0); i < 1 << 16; i += 97 {
		k := []byte{byte(i >> 8), byte(i), 0xab}
		s := r.Shard(k)
		if s < prev {
			t.Fatalf("routing not monotone: key %x -> shard %d after %d", k, s, prev)
		}
		prev = s
	}
	if _, err := NewRangeRouterBounds([][]byte{{0x02}, {0x01}}); err == nil {
		t.Fatal("descending bounds accepted")
	}
	rr, err := NewRangeRouterBounds([][]byte{{0x40}, {0x80}, {0xc0}})
	if err != nil {
		t.Fatal(err)
	}
	if rr.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", rr.NumShards())
	}
	if got := rr.Shard([]byte{0x00}); got != 0 {
		t.Fatalf("Shard(00) = %d", got)
	}
	if got := rr.Shard([]byte{0xc0}); got != 3 {
		t.Fatalf("Shard(c0) = %d", got)
	}
}

// TestScanChunkBoundaries verifies the merged iterator is exact across
// chunk refills: more keys per shard than one chunk, scans landing on
// every alignment.
func TestScanChunkBoundaries(t *testing.T) {
	st, err := Open(Options{Shards: 4, Tree: smallTreeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := st.NewSession()
	defer s.Release()

	const n = 4 * scanChunk // forces multiple refills per shard
	for i := uint64(0); i < n; i++ {
		if ok, err := s.Insert(key64(i), i*3); err != nil || !ok {
			t.Fatalf("insert %d: ok=%v err=%v", i, ok, err)
		}
	}
	for _, start := range []uint64{0, 1, scanChunk - 1, scanChunk, scanChunk + 1, n - 5, n} {
		for _, limit := range []int{1, 7, scanChunk, scanChunk + 1, n} {
			want := uint64(start)
			got := 0
			s.Scan(key64(start), limit, func(k []byte, v uint64) bool {
				ku := binary.BigEndian.Uint64(k)
				if ku != want {
					t.Fatalf("scan(start=%d,n=%d): got key %d, want %d", start, limit, ku, want)
				}
				if v != ku*3 {
					t.Fatalf("scan: key %d value %d, want %d", ku, v, ku*3)
				}
				want++
				got++
				return true
			})
			expect := int(n - start)
			if expect > limit {
				expect = limit
			}
			if expect < 0 {
				expect = 0
			}
			if got != expect {
				t.Fatalf("scan(start=%d,n=%d): visited %d, want %d", start, limit, got, expect)
			}
		}
	}
	// Early stop: visit returning false ends the merge immediately.
	visited := 0
	got := s.Scan(key64(0), 100, func(k []byte, v uint64) bool {
		visited++
		return visited < 3
	})
	if visited != 3 || got != 3 {
		t.Fatalf("early stop: visited=%d ret=%d, want 3", visited, got)
	}
}

// TestScatterGatherOracle is the satellite's concurrency test: a merged
// scan over 8 shards racing inserts/deletes/updates that churn enough to
// drive splits and merges, compared against a single-tree oracle holding
// the stable keys. Every scan must be strictly ascending, duplicate-free,
// and exactly agree with the oracle on the stable subsequence of the
// covered range; after the churn stops, a full merged sweep must equal
// the union of the stable keys and each worker's exact mirror.
func TestScatterGatherOracle(t *testing.T) {
	for _, scheme := range []string{"hash", "range"} {
		t.Run(scheme, func(t *testing.T) {
			r, _ := NewRouter(scheme, 8)
			if scheme == "range" {
				// The workload keys live in [0, stableMax): data-aware bounds
				// are what a real range deployment would use (the uniform
				// prefix cuts would put every small big-endian key in shard 0).
				var bounds [][]byte
				for i := uint64(1); i < 8; i++ {
					bounds = append(bounds, key64(i*8192/8))
				}
				rr, err := NewRangeRouterBounds(bounds)
				if err != nil {
					t.Fatal(err)
				}
				r = rr
			}
			st, err := Open(Options{Shards: 8, Router: r, Tree: smallTreeOpts()})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			// Stable keys (even) go into the store and the oracle and are
			// never touched again. The small keyspace + tiny nodes mean the
			// churn constantly splits and merges the leaves around them.
			oracle := bwtree.New(smallTreeOpts())
			defer oracle.Close()
			os := oracle.NewSession()
			defer os.Release()
			loader := st.NewSession()
			const stableMax = 8192
			for k := uint64(0); k < stableMax; k += 2 {
				if ok, _ := loader.Insert(key64(k), k); !ok {
					t.Fatalf("stable insert %d failed", k)
				}
				if !os.Insert(key64(k), k) {
					t.Fatalf("oracle insert %d failed", k)
				}
			}
			loader.Release()

			const workers = 4
			var stop atomic.Bool
			var wg sync.WaitGroup
			mirrors := make([]map[uint64]uint64, workers)
			for w := 0; w < workers; w++ {
				mirrors[w] = make(map[uint64]uint64)
				wg.Add(1)
				go func(w int, mine map[uint64]uint64) {
					defer wg.Done()
					ss := st.NewSession()
					defer ss.Release()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					for !stop.Load() {
						// Odd keys, partitioned per worker: k ≡ 2w+1 (mod 2·workers).
						k := uint64(2*w+1) + 2*workers*uint64(rng.Intn(stableMax/(2*workers)))
						switch rng.Intn(3) {
						case 0:
							v := rng.Uint64()
							ok, err := ss.Insert(key64(k), v)
							if err != nil {
								t.Errorf("insert: %v", err)
								return
							}
							_, had := mine[k]
							if ok == had {
								t.Errorf("insert %d: ok=%v had=%v", k, ok, had)
								return
							}
							if ok {
								mine[k] = v
							}
						case 1:
							ok, err := ss.Delete(key64(k), 0)
							if err != nil {
								t.Errorf("delete: %v", err)
								return
							}
							_, had := mine[k]
							if ok != had {
								t.Errorf("delete %d: ok=%v had=%v", k, ok, had)
								return
							}
							delete(mine, k)
						default:
							v := rng.Uint64()
							ok, err := ss.Update(key64(k), v)
							if err != nil {
								t.Errorf("update: %v", err)
								return
							}
							_, had := mine[k]
							if ok != had {
								t.Errorf("update %d: ok=%v had=%v", k, ok, had)
								return
							}
							if had {
								mine[k] = v
							}
						}
					}
				}(w, mirrors[w])
			}

			// Scanner: merged scans racing the churn.
			scans := 200
			if testing.Short() {
				scans = 50
			}
			sc := st.NewSession()
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < scans; i++ {
				start := uint64(rng.Intn(stableMax))
				limit := 1 + rng.Intn(512)
				var keys []uint64
				sc.Scan(key64(start), limit, func(k []byte, v uint64) bool {
					keys = append(keys, binary.BigEndian.Uint64(k))
					return true
				})
				for j := 1; j < len(keys); j++ {
					if keys[j] <= keys[j-1] {
						t.Fatalf("scan %d: order violation %d after %d", i, keys[j], keys[j-1])
					}
				}
				if len(keys) == 0 {
					continue
				}
				// Oracle comparison over the covered range [start, last].
				last := keys[len(keys)-1]
				var wantStable []uint64
				os.Scan(key64(start), stableMax, func(k []byte, v uint64) bool {
					ku := binary.BigEndian.Uint64(k)
					if ku > last {
						return false
					}
					wantStable = append(wantStable, ku)
					return true
				})
				var gotStable []uint64
				for _, k := range keys {
					if k%2 == 0 {
						gotStable = append(gotStable, k)
					}
				}
				if len(gotStable) != len(wantStable) {
					t.Fatalf("scan %d [%d,%d]: stable keys %v, oracle %v", i, start, last, gotStable, wantStable)
				}
				for j := range gotStable {
					if gotStable[j] != wantStable[j] {
						t.Fatalf("scan %d: stable key[%d] = %d, oracle %d", i, j, gotStable[j], wantStable[j])
					}
				}
			}
			sc.Release()

			stop.Store(true)
			wg.Wait()
			if t.Failed() {
				return
			}

			// Quiescent full sweep: the merged iterator must now equal the
			// union of stable keys and the workers' exact mirrors.
			expect := make(map[uint64]uint64)
			for k := uint64(0); k < stableMax; k += 2 {
				expect[k] = k
			}
			for _, m := range mirrors {
				for k, v := range m {
					expect[k] = v
				}
			}
			fs := st.NewSession()
			defer fs.Release()
			seen := 0
			var prev uint64
			first := true
			fs.Scan([]byte{0}, stableMax*2, func(k []byte, v uint64) bool {
				ku := binary.BigEndian.Uint64(k)
				if !first && ku <= prev {
					t.Errorf("final sweep order violation: %d after %d", ku, prev)
				}
				prev, first = ku, false
				want, ok := expect[ku]
				if !ok {
					t.Errorf("final sweep: unexpected key %d", ku)
				} else if v != want {
					t.Errorf("final sweep: key %d = %d, want %d", ku, v, want)
				}
				seen++
				return true
			})
			if seen != len(expect) {
				t.Errorf("final sweep saw %d keys, want %d", seen, len(expect))
			}
			if err := st.Validate(); err != nil {
				t.Errorf("validate: %v", err)
			}
			// The churn must actually have exercised SMOs for the test to
			// mean anything.
			stats := st.Stats()
			if stats.Splits == 0 || stats.Consolidations == 0 {
				t.Errorf("churn too gentle: splits=%d consolidations=%d", stats.Splits, stats.Consolidations)
			}
		})
	}
}

// TestDurableShardRecovery exercises per-shard WALs: write through a
// sharded durable store, checkpoint, write more, close, reopen, and
// verify every acknowledged key recovered into the right shard.
func TestDurableShardRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() *Store {
		st, err := Open(Options{Shards: 4, Tree: smallTreeOpts(), WALDir: dir, SyncOnCommit: true})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := open()
	s := st.NewSession()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if ok, err := s.Insert(key64(i), i+7); err != nil || !ok {
			t.Fatalf("insert %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(n); i < n+500; i++ {
		if ok, err := s.Insert(key64(i), i+7); err != nil || !ok {
			t.Fatalf("post-checkpoint insert %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		if ok, err := s.Delete(key64(i), 0); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	s.Release()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := open()
	defer st2.Close()
	rec := st2.RecoveryStats()
	if rec.SnapshotKeys == 0 {
		t.Error("no snapshot keys recovered; checkpoint did not land")
	}
	if rec.Replayed == 0 {
		t.Error("no log records replayed; tail writes lost")
	}
	s2 := st2.NewSession()
	defer s2.Release()
	var out []uint64
	for i := uint64(0); i < n+500; i++ {
		out = s2.Lookup(key64(i), out[:0])
		if i < 100 {
			if len(out) != 0 {
				t.Fatalf("deleted key %d present after recovery", i)
			}
			continue
		}
		if len(out) != 1 || out[0] != i+7 {
			t.Fatalf("key %d = %v after recovery, want %d", i, out, i+7)
		}
	}
	if got := st2.Count(); got != n+500-100 {
		t.Fatalf("recovered count %d, want %d", got, n+500-100)
	}
	// Every shard must own only keys its router maps to it.
	for _, sh := range st2.Shards() {
		ts := sh.Tree().NewSession()
		ts.Scan([]byte{0}, n+500, func(k []byte, v uint64) bool {
			if got := st2.Router().Shard(k); got != sh.ID {
				t.Errorf("key %x in shard %d, routed to %d", k, sh.ID, got)
				return false
			}
			return true
		})
		ts.Release()
	}
}

// TestStoreStatsAggregation sanity-checks counter aggregation and the
// per-shard surfaces in DebugVars.
func TestStoreStatsAggregation(t *testing.T) {
	opts := smallTreeOpts()
	opts.LatencyHistograms = true
	st, err := Open(Options{Shards: 3, Tree: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := st.NewSession()
	defer s.Release()
	for i := uint64(0); i < 3000; i++ {
		s.Insert(key64(i), i)
	}
	if got := st.Count(); got != 3000 {
		t.Fatalf("Count = %d, want 3000", got)
	}
	if stats := st.Stats(); stats.Ops < 3000 {
		t.Fatalf("aggregate Ops = %d, want >= 3000", stats.Ops)
	}
	v := DebugVars(st)
	counters := v.Counters()
	var perShard uint64
	for i := 0; i < 3; i++ {
		c, ok := counters[fmt.Sprintf("shard%02d_ops", i)]
		if !ok {
			t.Fatalf("missing per-shard counter for shard %d", i)
		}
		perShard += c
	}
	if perShard != counters["ops"] {
		t.Fatalf("per-shard ops sum %d != aggregate %d", perShard, counters["ops"])
	}
	if g := v.Gauges(); g["shards"] != 3 {
		t.Fatalf("shards gauge = %v", g["shards"])
	}
	if v.Latency == nil {
		t.Fatal("latency feed missing with LatencyHistograms on")
	}
	if total := v.Latency().Total(); total == 0 {
		t.Fatal("merged latency snapshot empty")
	}
	shape := v.Shape()
	if shape["leaf_nodes"].(uint64) == 0 {
		t.Fatal("aggregated shape reports zero leaves")
	}
}

var _ = bytes.Compare // keep bytes imported if assertions above change
