package shard

import (
	"bytes"

	"repro/bwtree"
)

// subSession is one shard's per-goroutine operation surface: the plain
// tree session adapted with nil errors, or the shard's durable session
// whose errors signal writer shutdown/crash.
type subSession interface {
	Insert(key []byte, value uint64) (bool, error)
	Update(key []byte, value uint64) (bool, error)
	Delete(key []byte, value uint64) (bool, error)
	Lookup(key []byte, out []uint64) []uint64
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	Release()
}

// plainSub adapts an in-memory tree session to subSession.
type plainSub struct{ s *bwtree.Session }

func (p plainSub) Insert(k []byte, v uint64) (bool, error) { return p.s.Insert(k, v), nil }
func (p plainSub) Update(k []byte, v uint64) (bool, error) { return p.s.Update(k, v), nil }
func (p plainSub) Delete(k []byte, v uint64) (bool, error) { return p.s.Delete(k, v), nil }
func (p plainSub) Lookup(k []byte, out []uint64) []uint64  { return p.s.Lookup(k, out) }
func (p plainSub) Scan(start []byte, n int, visit func([]byte, uint64) bool) int {
	return p.s.Scan(start, n, visit)
}
func (p plainSub) Release() { p.s.Release() }

// Session is one goroutine's handle to every shard: point operations
// route to the owning shard's sub-session, scans scatter-gather. Like a
// tree session it must be used by at most one goroutine.
type Session struct {
	st     *Store
	subs   []subSession
	curs   []cursor  // scan state, reused across Scan calls
	active []*cursor // merge working set, reused across Scan calls
}

// NewSession opens a sub-session on every shard. Sessions are the unit of
// stickiness: a connection (or worker) holds one and reuses its per-shard
// epoch handles and scratch buffers for its whole lifetime.
func (st *Store) NewSession() *Session {
	s := &Session{st: st, subs: make([]subSession, len(st.shards))}
	for i, sh := range st.shards {
		if sh.d != nil {
			s.subs[i] = sh.d.NewSession()
		} else {
			s.subs[i] = plainSub{sh.t.NewSession()}
		}
	}
	return s
}

// Release returns every shard sub-session.
func (s *Session) Release() {
	for _, sub := range s.subs {
		sub.Release()
	}
}

// route returns the sub-session owning key.
func (s *Session) route(key []byte) subSession {
	return s.subs[s.st.router.Shard(key)]
}

// Insert adds (key, value) on the owning shard. The error is non-nil
// only for durable stores whose writer is gone (closed or crashed).
func (s *Session) Insert(key []byte, value uint64) (bool, error) {
	return s.route(key).Insert(key, value)
}

// Update replaces key's value on the owning shard.
func (s *Session) Update(key []byte, value uint64) (bool, error) {
	return s.route(key).Update(key, value)
}

// Delete removes key from the owning shard.
func (s *Session) Delete(key []byte, value uint64) (bool, error) {
	return s.route(key).Delete(key, value)
}

// Lookup reads key from the owning shard.
func (s *Session) Lookup(key []byte, out []uint64) []uint64 {
	return s.route(key).Lookup(key, out)
}

// minStartKey substitutes for an empty scan start key.
var minStartKey = []byte{0}

// scanChunk is how many pairs a cursor pulls from its shard per refill:
// large enough to amortize the descend per chunk, small enough that a
// short scan doesn't over-fetch from every shard.
const scanChunk = 256

// cursor is one shard's pull-stream of ordered pairs, fetched in chunks
// through the ordinary Scan entry point (so it works over plain and
// durable sessions alike). Keys are copied into a per-cursor arena:
// callback keys are only valid during the visit, but merge order means
// a buffered key outlives its chunk's callbacks.
type cursor struct {
	sub    subSession
	arena  []byte
	starts []int
	vals   []uint64
	pos    int
	// resume is the exclusive restart point: the last emitted key + 0x00,
	// the immediate successor in bytewise order.
	resume []byte
	// tail is set when the shard returned fewer pairs than requested, so
	// the current buffer is the stream's end.
	tail bool
}

func (c *cursor) len() int { return len(c.starts) }

func (c *cursor) key(i int) []byte {
	end := len(c.arena)
	if i+1 < len(c.starts) {
		end = c.starts[i+1]
	}
	return c.arena[c.starts[i]:end]
}

// fill pulls the next chunk from the shard. Reports whether the cursor
// has a head afterwards.
func (c *cursor) fill(chunk int) bool {
	if c.tail {
		return false
	}
	c.arena, c.starts, c.vals, c.pos = c.arena[:0], c.starts[:0], c.vals[:0], 0
	got := c.sub.Scan(c.resume, chunk, func(k []byte, v uint64) bool {
		c.starts = append(c.starts, len(c.arena))
		c.arena = append(c.arena, k...)
		c.vals = append(c.vals, v)
		return true
	})
	if got < chunk {
		c.tail = true
	} else {
		last := c.key(got - 1)
		c.resume = append(append(c.resume[:0], last...), 0)
	}
	return got > 0
}

// Scan visits at most n pairs in ascending key order from the smallest
// key >= start, gathered across every shard through a merged k-way
// iterator: each shard contributes an ordered chunk stream and the merge
// emits the minimum head until n pairs are out or all streams dry up.
//
// Ordering rule under concurrency: each chunk is one atomic shard scan,
// and chunks restart at the successor of the last emitted key, so the
// merged stream is strictly ascending and every key that exists for the
// whole scan in the visited range appears exactly once. Keys mutated
// concurrently may appear or not, exactly as with a single tree's
// node-at-a-time scan.
func (s *Session) Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int {
	if n <= 0 {
		return 0
	}
	if len(start) == 0 {
		// The tree requires non-empty keys; {0} is the minimum valid key,
		// so it means "from the beginning".
		start = minStartKey
	}
	chunk := scanChunk
	if n < chunk {
		chunk = n
	}
	from := scanFrom(s.st.router, start)
	if cap(s.curs) < len(s.subs) {
		s.curs = make([]cursor, len(s.subs))
	}
	// active holds pointers to the cursors with a live head.
	active := s.active[:0]
	for i := from; i < len(s.subs); i++ {
		c := &s.curs[i]
		c.tail = false
		c.sub = s.subs[i]
		c.resume = append(c.resume[:0], start...)
		if c.fill(chunk) {
			active = append(active, c)
		}
	}
	s.active = active[:0]
	count := 0
	for count < n && len(active) > 0 {
		// Linear min over the shard heads: shard counts are per-core small
		// (tens, not thousands), where a scan through a cache-resident
		// slice beats heap bookkeeping.
		min := 0
		for i := 1; i < len(active); i++ {
			if bytes.Compare(active[i].key(active[i].pos), active[min].key(active[min].pos)) < 0 {
				min = i
			}
		}
		c := active[min]
		if !visit(c.key(c.pos), c.vals[c.pos]) {
			return count + 1
		}
		count++
		c.pos++
		if c.pos >= c.len() {
			left := chunk
			if rem := n - count; rem < left {
				left = rem
			}
			if left == 0 || !c.fill(left) {
				active[min] = active[len(active)-1]
				active = active[:len(active)-1]
			}
		}
	}
	return count
}
