package btree

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestScanDuringSplits runs scans concurrently with a split storm; scans
// must stay sorted and never drop pre-existing keys.
func TestScanDuringSplits(t *testing.T) {
	tr := New(8)
	// Stable keys: even numbers, present throughout.
	const stable = 10000
	for i := uint64(0); i < stable; i++ {
		tr.Insert(key64(i*4), i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				k := uint64(rng.Intn(stable*4)) | 1 // odd keys churn
				if rng.Intn(2) == 0 {
					tr.Insert(key64(k), k)
				} else {
					tr.Delete(key64(k))
				}
			}
		}(w)
	}
	for round := 0; round < 10; round++ {
		var prev int64 = -1
		stableSeen := 0
		tr.Scan(key64(0), stable*2, func(k []byte, v uint64) bool {
			cur := int64(binary.BigEndian.Uint64(k))
			if cur <= prev {
				t.Errorf("scan order: %d after %d", cur, prev)
				return false
			}
			if cur%4 == 0 {
				stableSeen++
			}
			prev = cur
			return true
		})
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestConcurrentUpdates hammers updates on a fixed key set; lookups must
// always observe some written value.
func TestConcurrentUpdates(t *testing.T) {
	tr := New(16)
	const keys = 100
	for i := uint64(0); i < keys; i++ {
		tr.Insert(key64(i), i)
	}
	nw := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20000; i++ {
				k := uint64(rng.Intn(keys))
				if w%2 == 0 {
					tr.Update(key64(k), k+uint64(i)<<16)
				} else if v, ok := tr.Lookup(key64(k)); !ok || v&0xffff != k {
					t.Errorf("key %d: %d %v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEmptyAndSingleton covers degenerate shapes.
func TestEmptyAndSingleton(t *testing.T) {
	tr := New(0)
	if _, ok := tr.Lookup(key64(1)); ok {
		t.Fatal("empty lookup found something")
	}
	if tr.Delete(key64(1)) {
		t.Fatal("empty delete succeeded")
	}
	if tr.Scan(key64(0), 10, func(k []byte, v uint64) bool { return true }) != 0 {
		t.Fatal("empty scan visited items")
	}
	tr.Insert(key64(7), 70)
	if n := tr.Scan(key64(0), 10, func(k []byte, v uint64) bool { return true }); n != 1 {
		t.Fatalf("singleton scan %d", n)
	}
	if !tr.Delete(key64(7)) {
		t.Fatal("singleton delete failed")
	}
	if tr.Scan(key64(0), 10, func(k []byte, v uint64) bool { return true }) != 0 {
		t.Fatal("post-delete scan visited items")
	}
}

// TestVariableLengthKeys mixes key lengths (prefix relationships).
func TestVariableLengthKeys(t *testing.T) {
	tr := New(4)
	keys := []string{"a", "aa", "aaa", "ab", "b", "ba", "bb", "c"}
	for i, k := range keys {
		if !tr.Insert([]byte(k), uint64(i)) {
			t.Fatalf("insert %q failed", k)
		}
	}
	for i, k := range keys {
		if v, ok := tr.Lookup([]byte(k)); !ok || v != uint64(i) {
			t.Fatalf("lookup %q: %d %v", k, v, ok)
		}
	}
	var got []string
	tr.Scan([]byte("a"), 100, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan[%d]=%q want %q", i, got[i], keys[i])
		}
	}
}
