// Package btree implements the paper's lock-based baseline: a B+Tree
// synchronized with optimistic lock coupling (OLC) [Leis et al., DaMoN
// 2016]. Readers validate per-node version counters instead of acquiring
// locks; writers lock only the nodes they modify. The paper configures it
// with 4KB nodes (§6: "We configure the B+Tree to use 4KB node size"),
// which at 16 bytes per item is 256 entries.
//
// Node contents are immutable snapshots swapped atomically under the
// node's write lock (copy-on-write), so optimistic readers never observe
// torn state; leaf value updates write through an atomic store to avoid
// copying a whole node per YCSB-A update.
package btree

import (
	"bytes"
	"sync/atomic"

	"repro/internal/olc"
)

// DefaultCap is the per-node item capacity. The paper's C++ B+Tree uses
// in-place 4KB nodes (256 items), paying ~half a node of memmove per
// insert (~2KB). Copy-on-write pays a full node copy plus an allocation,
// so the calibrated equivalent here is a 64-item node (~2KB copied per
// insert) — keeping the insert-path work comparable to the paper's
// configuration under Go's memory model, which rules out in-place
// mutation beneath optimistic readers (see DESIGN.md substitutions).
const DefaultCap = 64

// Tree is a concurrent B+Tree with optimistic lock coupling. Create with
// New; safe for concurrent use.
type Tree struct {
	rootLock olc.Lock // serializes root replacement
	root     atomic.Pointer[node]
	cap      int
}

type node struct {
	lock  olc.Lock
	leaf  bool
	items atomic.Pointer[items]
	next  atomic.Pointer[node] // leaf-level sibling link for scans
}

// items is an immutable content snapshot. For inner nodes,
// len(kids) == len(keys)+1 and keys[i] separates kids[i] (< key) from
// kids[i+1] (>= key). vals elements are the only mutable cells: they are
// written with atomic stores under the node lock and read with atomic
// loads.
type items struct {
	keys [][]byte
	vals []uint64
	kids []*node
}

// New returns an empty tree with the given per-node capacity (0 uses
// DefaultCap).
func New(capacity int) *Tree {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	leaf := &node{leaf: true}
	leaf.items.Store(&items{})
	t := &Tree{cap: capacity}
	t.root.Store(leaf)
	return t
}

// upperBound returns the first index with keys[i] > key.
func upperBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index with keys[i] >= key and exactness.
func lowerBound(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], key)
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key []byte) (uint64, bool) {
restart:
	n := t.root.Load()
	v, ok := n.lock.ReadLock()
	if !ok {
		goto restart
	}
	for {
		it := n.items.Load()
		if n.leaf {
			pos, exact := lowerBound(it.keys, key)
			var val uint64
			if exact {
				val = atomic.LoadUint64(&it.vals[pos])
			}
			if !n.lock.ReadUnlock(v) {
				goto restart
			}
			return val, exact
		}
		child := it.kids[upperBound(it.keys, key)]
		if !n.lock.Check(v) {
			goto restart
		}
		cv, ok := child.lock.ReadLock()
		if !ok {
			goto restart
		}
		if !n.lock.ReadUnlock(v) {
			goto restart
		}
		n, v = child, cv
	}
}

// Insert adds (key, value), failing if the key is already present.
func (t *Tree) Insert(key []byte, value uint64) bool {
	for {
		if done, ok := t.insertOnce(key, value); done {
			return ok
		}
	}
}

// insertOnce performs one optimistic descent. done=false requests a
// restart.
func (t *Tree) insertOnce(key []byte, value uint64) (done, ok bool) {
	root := t.root.Load()
	v, lok := root.lock.ReadLock()
	if !lok {
		return false, false
	}
	// Preventive root split keeps the descent single-direction.
	if len(root.items.Load().keys) >= t.cap {
		t.splitRoot(root, v)
		return false, false
	}
	n, nv := root, v
	var parent *node
	var pv uint64
	for !n.leaf {
		it := n.items.Load()
		child := it.kids[upperBound(it.keys, key)]
		if !n.lock.Check(nv) {
			return false, false
		}
		cv, lok := child.lock.ReadLock()
		if !lok {
			return false, false
		}
		if len(child.items.Load().keys) >= t.cap {
			// Split the full child before entering it.
			if !n.lock.Check(nv) {
				return false, false
			}
			t.splitChild(n, nv, child, cv)
			return false, false
		}
		if parent != nil && !parent.lock.Check(pv) {
			return false, false
		}
		parent, pv = n, nv
		n, nv = child, cv
	}

	it := n.items.Load()
	pos, exact := lowerBound(it.keys, key)
	if exact {
		// Validate before reporting a duplicate.
		if !n.lock.ReadUnlock(nv) {
			return false, false
		}
		return true, false
	}
	if !n.lock.Upgrade(nv) {
		return false, false
	}
	defer n.lock.WriteUnlock()
	nit := &items{
		keys: make([][]byte, 0, len(it.keys)+1),
		vals: make([]uint64, 0, len(it.vals)+1),
	}
	nit.keys = append(append(append(nit.keys, it.keys[:pos]...), append([]byte(nil), key...)), it.keys[pos:]...)
	nit.vals = append(append(append(nit.vals, it.vals[:pos]...), value), it.vals[pos:]...)
	n.items.Store(nit)
	return true, true
}

// splitRoot replaces a full root under the tree's root lock.
func (t *Tree) splitRoot(root *node, v uint64) {
	if !t.rootLock.WriteLock() {
		return
	}
	defer t.rootLock.WriteUnlock()
	if t.root.Load() != root {
		return
	}
	if !root.lock.Upgrade(v) {
		return
	}
	it := root.items.Load()
	if len(it.keys) < t.cap {
		root.lock.WriteUnlock()
		return
	}
	left, right, sep := t.splitItems(root, it)
	newRoot := &node{}
	newRoot.items.Store(&items{keys: [][]byte{sep}, kids: []*node{left, right}})
	t.root.Store(newRoot)
	root.next.Store(left) // forwarding pointer for stale scan links
	root.lock.WriteUnlockObsolete()
}

// splitItems builds two fresh nodes from a full node's content and wires
// leaf sibling links. Caller holds n's write lock. Returns the separator
// key: the smallest key of the right node.
func (t *Tree) splitItems(n *node, it *items) (left, right *node, sep []byte) {
	if n.leaf {
		mid := len(it.keys) / 2
		left = &node{leaf: true}
		right = &node{leaf: true}
		left.items.Store(&items{keys: it.keys[:mid:mid], vals: it.vals[:mid:mid]})
		right.items.Store(&items{keys: it.keys[mid:], vals: it.vals[mid:]})
		right.next.Store(n.next.Load())
		left.next.Store(right)
		return left, right, it.keys[mid]
	}
	mid := len(it.keys) / 2
	left = &node{}
	right = &node{}
	left.items.Store(&items{keys: it.keys[:mid:mid], kids: it.kids[: mid+1 : mid+1]})
	right.items.Store(&items{keys: it.keys[mid+1:], kids: it.kids[mid+1:]})
	return left, right, it.keys[mid]
}

// splitChild splits a full child under parent+child write locks.
func (t *Tree) splitChild(parent *node, pv uint64, child *node, cv uint64) {
	if !parent.lock.Upgrade(pv) {
		return
	}
	defer parent.lock.WriteUnlock()
	if !child.lock.Upgrade(cv) {
		return
	}
	it := child.items.Load()
	if len(it.keys) < t.cap {
		child.lock.WriteUnlock()
		return
	}
	left, right, sep := t.splitItems(child, it)

	pit := parent.items.Load()
	pos := upperBound(pit.keys, sep)
	nk := make([][]byte, 0, len(pit.keys)+1)
	nk = append(append(append(nk, pit.keys[:pos]...), sep), pit.keys[pos:]...)
	// child sits at kids[pos']; find it to replace with left, right.
	ci := indexOfChild(pit.kids, child)
	if ci < 0 {
		child.lock.WriteUnlock()
		return
	}
	nc := make([]*node, 0, len(pit.kids)+1)
	nc = append(nc, pit.kids[:ci]...)
	nc = append(nc, left, right)
	nc = append(nc, pit.kids[ci+1:]...)
	parent.items.Store(&items{keys: nk, kids: nc})
	// Fix the left neighbour leaf's sibling link when it lives under the
	// same parent; other predecessors reach the replacement through the
	// obsolete node's forwarding pointer below.
	if child.leaf && ci > 0 {
		pit.kids[ci-1].next.Store(left)
	}
	// Forwarding pointer: scans that still hold a stale link to the
	// obsolete node continue at its left replacement (duplicates are
	// filtered by the scan's resume bound).
	child.next.Store(left)
	child.lock.WriteUnlockObsolete()
}

func indexOfChild(kids []*node, child *node) int {
	for i, k := range kids {
		if k == child {
			return i
		}
	}
	return -1
}

// Update replaces key's value, reporting whether the key was present.
func (t *Tree) Update(key []byte, value uint64) bool {
	for {
		n, nv, ok := t.descend(key)
		if !ok {
			continue
		}
		it := n.items.Load()
		pos, exact := lowerBound(it.keys, key)
		if !exact {
			if !n.lock.ReadUnlock(nv) {
				continue
			}
			return false
		}
		if !n.lock.Upgrade(nv) {
			continue
		}
		atomic.StoreUint64(&it.vals[pos], value)
		n.lock.WriteUnlock()
		return true
	}
}

// Delete removes key, reporting whether it was present. Underflowing
// leaves are not rebalanced (standard practice for in-memory B-trees;
// noted in DESIGN.md).
func (t *Tree) Delete(key []byte) bool {
	for {
		n, nv, ok := t.descend(key)
		if !ok {
			continue
		}
		it := n.items.Load()
		pos, exact := lowerBound(it.keys, key)
		if !exact {
			if !n.lock.ReadUnlock(nv) {
				continue
			}
			return false
		}
		if !n.lock.Upgrade(nv) {
			continue
		}
		nit := &items{
			keys: make([][]byte, 0, len(it.keys)-1),
			vals: make([]uint64, 0, len(it.vals)-1),
		}
		nit.keys = append(append(nit.keys, it.keys[:pos]...), it.keys[pos+1:]...)
		nit.vals = append(append(nit.vals, it.vals[:pos]...), it.vals[pos+1:]...)
		n.items.Store(nit)
		n.lock.WriteUnlock()
		return true
	}
}

// descend optimistically walks to the leaf covering key, returning the
// leaf and its read version.
func (t *Tree) descend(key []byte) (*node, uint64, bool) {
	n := t.root.Load()
	v, ok := n.lock.ReadLock()
	if !ok {
		return nil, 0, false
	}
	for !n.leaf {
		it := n.items.Load()
		child := it.kids[upperBound(it.keys, key)]
		if !n.lock.Check(v) {
			return nil, 0, false
		}
		cv, ok := child.lock.ReadLock()
		if !ok {
			return nil, 0, false
		}
		if !n.lock.ReadUnlock(v) {
			return nil, 0, false
		}
		n, v = child, cv
	}
	return n, v, true
}

// Scan visits up to max items with key >= start in ascending order,
// stopping early when visit returns false. It walks the leaf sibling
// chain, snapshotting one leaf at a time under version validation; writer
// interference or an obsolete leaf forces a re-descent from the last
// emitted key.
func (t *Tree) Scan(start []byte, max int, visit func(key []byte, value uint64) bool) int {
	count := 0
	resume := start   // next key bound to scan from
	inclusive := true // whether an exact match at resume should be emitted

	var n *node
	var v uint64
	descend := true
	for count < max {
		if descend {
			var ok bool
			n, v, ok = t.descend(resume)
			if !ok {
				continue
			}
			descend = false
		}
		it := n.items.Load()
		pos, exact := lowerBound(it.keys, resume)
		if exact && !inclusive {
			pos++
		}
		keys := it.keys[pos:]
		vals := make([]uint64, len(keys))
		for i := range vals {
			vals[i] = atomic.LoadUint64(&it.vals[pos+i])
		}
		next := n.next.Load()
		if !n.lock.Check(v) {
			descend = true
			continue
		}
		for i := range keys {
			if count >= max {
				return count
			}
			count++
			resume, inclusive = keys[i], false
			if !visit(keys[i], vals[i]) {
				return count
			}
		}
		if next == nil {
			return count
		}
		// Hop to the sibling, chasing forwarding pointers through any
		// obsolete (split-away) nodes; write-locked live nodes are
		// retried briefly via a fresh descent.
		for next != nil && next.lock.IsObsolete() {
			next = next.next.Load()
		}
		if next == nil {
			return count
		}
		nv, ok := next.lock.ReadLock()
		if !ok {
			descend = true
			continue
		}
		n, v = next, nv
	}
	return count
}
