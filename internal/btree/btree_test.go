package btree

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func key64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestSplitsSmallCap(t *testing.T) {
	// Capacity 4 forces splits constantly, exercising root and child
	// splits and leaf-link wiring.
	tr := New(4)
	const n = 5000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if !tr.Insert(key64(uint64(i)), uint64(i)*2) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Lookup(key64(i))
		if !ok || v != i*2 {
			t.Fatalf("lookup %d: %d %v", i, v, ok)
		}
	}
	// Scan sees everything in order despite heavy splitting.
	var prev int64 = -1
	count := tr.Scan(key64(0), n+10, func(k []byte, v uint64) bool {
		cur := int64(binary.BigEndian.Uint64(k))
		if cur <= prev {
			t.Fatalf("scan order: %d after %d", cur, prev)
		}
		prev = cur
		return true
	})
	if count != n {
		t.Fatalf("scan count %d", count)
	}
}

func TestDeleteLeavesNoGhost(t *testing.T) {
	tr := New(8)
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(key64(i), i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !tr.Delete(key64(i)) {
			t.Fatalf("delete %d", i)
		}
	}
	count := tr.Scan(key64(0), 2000, func(k []byte, v uint64) bool {
		if binary.BigEndian.Uint64(k)%2 == 0 {
			t.Fatalf("deleted key %d in scan", binary.BigEndian.Uint64(k))
		}
		return true
	})
	if count != 500 {
		t.Fatalf("scan count %d", count)
	}
}

func TestUpdateInPlace(t *testing.T) {
	tr := New(0)
	tr.Insert([]byte("k"), 1)
	if !tr.Update([]byte("k"), 2) {
		t.Fatal("update failed")
	}
	if tr.Update([]byte("missing"), 1) {
		t.Fatal("update of absent key succeeded")
	}
	if v, _ := tr.Lookup([]byte("k")); v != 2 {
		t.Fatalf("value %d", v)
	}
}

func TestConcurrentSplitStorm(t *testing.T) {
	tr := New(4) // tiny nodes -> constant splitting under contention
	nw := runtime.GOMAXPROCS(0) * 2
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * per
			for i := uint64(0); i < per; i++ {
				if !tr.Insert(key64(base+i), base+i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k := uint64(0); k < uint64(nw*per); k++ {
		if v, ok := tr.Lookup(key64(k)); !ok || v != k {
			t.Fatalf("lookup %d: %d %v", k, v, ok)
		}
	}
}

func TestQuickModel(t *testing.T) {
	tr := New(6)
	model := map[uint64]uint64{}
	f := func(k uint16, v uint64, op uint8) bool {
		key := key64(uint64(k))
		switch op % 3 {
		case 0:
			_, exists := model[uint64(k)]
			if tr.Insert(key, v) == exists {
				return false
			}
			if !exists {
				model[uint64(k)] = v
			}
		case 1:
			_, exists := model[uint64(k)]
			if tr.Delete(key) != exists {
				return false
			}
			delete(model, uint64(k))
		default:
			want, exists := model[uint64(k)]
			got, ok := tr.Lookup(key)
			if ok != exists || ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}
