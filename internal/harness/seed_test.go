package harness

import (
	"bytes"
	"testing"

	"repro/internal/ycsb"
)

// TestPhaseSeedDecorrelation pins the fix for the correlated-stream bug:
// the run phase used to be seeded with Seed+1, so seed S's run phase
// replayed seed S+1's load phase verbatim. Derived seeds must now be
// distinct across both phases and adjacent user seeds.
func TestPhaseSeedDecorrelation(t *testing.T) {
	seen := map[uint64]uint64{}
	for s := uint64(0); s < 512; s++ {
		for p := uint64(0); p < 8; p++ {
			v := phaseSeed(s, p)
			if prev, dup := seen[v]; dup {
				t.Fatalf("phaseSeed collision: (%d,%d) and earlier key %d both map to %#x", s, p, prev, v)
			}
			seen[v] = s
		}
	}
	for s := uint64(0); s < 512; s++ {
		if phaseSeed(s, 1) == phaseSeed(s+1, 0) {
			t.Fatalf("seed %d run phase still equals seed %d load phase", s, s+1)
		}
	}
}

// opsFor reproduces one worker's run-phase operation sequence exactly as
// RunPhaseLat derives it: phase seed from the config seed, worker stream
// seed from the phase seed.
func opsFor(seed uint64, worker, n int) []ycsb.Op {
	ks := ycsb.NewKeySet(ycsb.RandInt, 256)
	stream := ycsb.NewStream(ycsb.ReadUpdate, ks, worker, phaseSeed(phaseSeed(seed, 1), uint64(worker)))
	ops := make([]ycsb.Op, n)
	for i := range ops {
		ops[i] = stream.Next()
	}
	return ops
}

func sameOps(a, b []ycsb.Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || !bytes.Equal(a[i].Key, b[i].Key) ||
			a[i].Value != b[i].Value || a[i].ScanLen != b[i].ScanLen {
			return false
		}
	}
	return true
}

// TestStreamDeterminism: the same config seed must reproduce the exact
// operation sequence; a different seed must produce a different one.
func TestStreamDeterminism(t *testing.T) {
	const n = 400
	a := opsFor(42, 0, n)
	b := opsFor(42, 0, n)
	if !sameOps(a, b) {
		t.Fatal("same seed produced different op sequences")
	}
	if sameOps(a, opsFor(43, 0, n)) {
		t.Fatal("different seeds produced identical op sequences")
	}
	if sameOps(a, opsFor(42, 1, n)) {
		t.Fatal("different workers produced identical op sequences")
	}
}
