package harness

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestTrendListsCommittedBaselines runs Trend over the repo's real bench/
// directory and asserts every committed baseline file shows up as a
// series with at least one point. This is the registry of gated
// experiments: adding a new BENCH_*.json without trend coverage, or
// renaming one, fails here.
func TestTrendListsCommittedBaselines(t *testing.T) {
	var b strings.Builder
	if err := Trend(&b, "../../bench", true); err != nil {
		t.Fatalf("trend over ../../bench: %v", err)
	}
	var series []TrendSeries
	if err := json.Unmarshal([]byte(b.String()), &series); err != nil {
		t.Fatalf("trend JSON: %v", err)
	}
	got := make(map[string]int)
	for _, s := range series {
		got[s.File] = len(s.Points)
	}
	for _, want := range []string{
		"BENCH_hotpath.json",
		"BENCH_flatnode.json",
		"BENCH_durability.json",
		"BENCH_obs.json",
		"BENCH_server.json",
		"BENCH_txn.json",
	} {
		if n, ok := got[want]; !ok {
			t.Errorf("trend missing baseline %s (have %v)", want, got)
		} else if n == 0 {
			t.Errorf("trend series %s has no points", want)
		}
	}
}
