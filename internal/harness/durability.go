package harness

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/bwtree"
	"repro/internal/core"
)

// DurabilityFile is the JSON report the durability experiment writes.
type DurabilityFile struct {
	Config struct {
		Keys    int    `json:"keys"`
		Tail    int    `json:"tail_ops"`
		Threads int    `json:"threads"`
		Seed    uint64 `json:"seed"`
	} `json:"config"`
	// WalOff/WalOn are insert throughputs (Mops/s) without and with the
	// log (asynchronous group commit); Ratio = WalOn / WalOff.
	WalOff float64 `json:"wal_off_mops"`
	WalOn  float64 `json:"wal_on_mops"`
	Ratio  float64 `json:"ratio"`
	// Replay is the full-log recovery rate in Mops/s (no checkpoint).
	Replay float64 `json:"replay_mops"`
	// SnapshotLoad and TailReplay are the two phases of a checkpointed
	// recovery: bulk-loading the snapshot (Mkeys/s) and replaying the tail
	// (Mops/s).
	SnapshotLoad float64 `json:"snapshot_load_mkeys"`
	TailReplay   float64 `json:"tail_replay_mops"`
	// Group-commit shape: fsync latency percentiles (µs) and mean records
	// per fsync during the WAL-on load.
	FsyncP50us float64 `json:"fsync_p50_us"`
	FsyncP99us float64 `json:"fsync_p99_us"`
	MeanBatch  float64 `json:"mean_batch"`
	Syncs      uint64  `json:"syncs"`
	LogBytes   uint64  `json:"log_bytes"`
}

// durKey renders the workload key for index i.
func durKey(buf []byte, i uint64) []byte {
	binary.BigEndian.PutUint64(buf, i)
	return buf
}

// durInsertRange inserts keys [lo, hi) through a durable session.
func durInsertRange(d *bwtree.Durable, lo, hi uint64) error {
	s := d.NewSession()
	defer s.Release()
	buf := make([]byte, 8)
	for i := lo; i < hi; i++ {
		if _, err := s.Insert(durKey(buf, i), i); err != nil {
			return err
		}
	}
	return nil
}

// Durability measures what the log layer costs and what recovery buys:
//
//   - insert throughput with the WAL off vs on (asynchronous group
//     commit — the sync-per-commit mode trades throughput for the
//     acknowledged-write guarantee and is bounded by fsync latency, not
//     by the tree),
//   - full-log replay rate into an empty tree,
//   - checkpointed recovery: snapshot bulk-load rate plus tail replay,
//   - the group-commit shape (fsync latency, records per fsync).
//
// The JSON report goes to BENCH_durability.json (override with
// DURABILITY_GATE_OUT). The gate fails when WAL-on throughput falls under
// DURABILITY_GATE_MIN_RATIO (default 0.5) of WAL-off, or the replay rate
// falls under DURABILITY_GATE_MIN_REPLAY Mops/s (default 1.0).
func Durability(w io.Writer, sc Scale) {
	var rep DurabilityFile
	keys := sc.Keys
	tail := keys / 10
	rep.Config.Keys = keys
	rep.Config.Tail = tail
	rep.Config.Threads = sc.Threads
	rep.Config.Seed = sc.Seed

	// Threads shard the key space into ranges; sequential-within-shard
	// insert order keeps the two modes comparable.
	shard := func(n int, run func(lo, hi uint64)) time.Duration {
		var wg sync.WaitGroup
		per := uint64(keys) / uint64(n)
		start := time.Now()
		for t := 0; t < n; t++ {
			lo := uint64(t) * per
			hi := lo + per
			if t == n-1 {
				hi = uint64(keys)
			}
			wg.Add(1)
			go func(lo, hi uint64) {
				defer wg.Done()
				run(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return time.Since(start)
	}

	// WAL off: the plain in-memory tree.
	{
		t := core.New(core.DefaultOptions())
		dur := shard(sc.Threads, func(lo, hi uint64) {
			s := t.NewSession()
			defer s.Release()
			buf := make([]byte, 8)
			for i := lo; i < hi; i++ {
				s.Insert(durKey(buf, i), i)
			}
		})
		t.Close()
		rep.WalOff = mops(keys, dur)
	}

	dir, err := os.MkdirTemp("", "bwtree-durability-*")
	if err != nil {
		fmt.Fprintf(w, "durability: cannot create scratch dir: %v\n", err)
		gateFailures.Add(1)
		return
	}
	defer os.RemoveAll(dir)

	// WAL on: same load, asynchronous group commit (appends are buffered,
	// the flusher fsyncs batches off the critical path; Close drains).
	fail := func(stage string, err error) {
		fmt.Fprintf(w, "durability: FAIL %s: %v\n", stage, err)
		gateFailures.Add(1)
	}
	d, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		fail("open", err)
		return
	}
	var firstErr error
	var errMu sync.Mutex
	dur := shard(sc.Threads, func(lo, hi uint64) {
		if err := durInsertRange(d, lo, hi); err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	})
	if firstErr != nil {
		fail("wal-on load", firstErr)
		return
	}
	if err := d.Sync(); err != nil {
		fail("sync", err)
		return
	}
	rep.WalOn = mops(keys, dur)
	if rep.WalOff > 0 {
		rep.Ratio = rep.WalOn / rep.WalOff
	}
	ws := d.WALStats()
	rep.FsyncP50us = ws.Fsync.Quantile(0.50) / 1e3
	rep.FsyncP99us = ws.Fsync.Quantile(0.99) / 1e3
	rep.MeanBatch = ws.Batch.Mean()
	rep.Syncs = ws.Syncs
	rep.LogBytes = ws.Bytes
	if err := d.Close(); err != nil {
		fail("close", err)
		return
	}

	// Full-log replay: reopen with no checkpoint; every insert re-applies.
	d, err = bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		fail("recover (log only)", err)
		return
	}
	rec := d.RecoveryStats()
	if rec.Replayed != keys {
		fail("recover (log only)", fmt.Errorf("replayed %d records, want %d", rec.Replayed, keys))
		d.Close()
		return
	}
	if rec.Replay > 0 {
		rep.Replay = mops(rec.Replayed, rec.Replay)
	}

	// Checkpoint, then write a tail of updates, then recover again: the
	// snapshot carries the bulk, the log only the tail.
	if _, err := d.Checkpoint(); err != nil {
		fail("checkpoint", err)
		d.Close()
		return
	}
	{
		s := d.NewSession()
		buf := make([]byte, 8)
		for i := 0; i < tail; i++ {
			if _, err := s.Update(durKey(buf, uint64(i)), uint64(i)+1); err != nil {
				s.Release()
				fail("tail", err)
				d.Close()
				return
			}
		}
		s.Release()
	}
	if err := d.Close(); err != nil {
		fail("close after tail", err)
		return
	}
	d, err = bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		fail("recover (checkpointed)", err)
		return
	}
	rec = d.RecoveryStats()
	if int(rec.SnapshotKeys) != keys || rec.Replayed != tail {
		fail("recover (checkpointed)", fmt.Errorf("loaded %d keys + %d records, want %d + %d", rec.SnapshotKeys, rec.Replayed, keys, tail))
		d.Close()
		return
	}
	if rec.SnapshotLoad > 0 {
		rep.SnapshotLoad = mops(int(rec.SnapshotKeys), rec.SnapshotLoad)
	}
	if rec.Replay > 0 {
		rep.TailReplay = mops(rec.Replayed, rec.Replay)
	}
	if err := d.Tree().Validate(); err != nil {
		fail("validate", err)
		d.Close()
		return
	}
	d.Close()

	out := os.Getenv("DURABILITY_GATE_OUT")
	if out == "" {
		out = "BENCH_durability.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "durability: cannot write %s: %v\n", out, err)
		}
	}

	tbl := NewTable(fmt.Sprintf("Durability: %d keys + %d tail ops, %d threads", keys, tail, sc.Threads),
		"Mops/s")
	tbl.AddRow("insert, WAL off", f3(rep.WalOff))
	tbl.AddRow("insert, WAL on (async)", f3(rep.WalOn))
	tbl.AddRow("recovery: full-log replay", f3(rep.Replay))
	tbl.AddRow("recovery: snapshot load", f3(rep.SnapshotLoad))
	tbl.AddRow("recovery: tail replay", f3(rep.TailReplay))
	tbl.Note("WAL-on/off ratio %.3f; %d fsyncs (p50 %.1fµs, p99 %.1fµs), mean batch %.0f records, %.1f MiB logged.",
		rep.Ratio, rep.Syncs, rep.FsyncP50us, rep.FsyncP99us, rep.MeanBatch, float64(rep.LogBytes)/(1<<20))
	tbl.Note("Report written to %s.", out)
	tbl.WriteTo(w)

	failed := false
	minRatio := envFloat("DURABILITY_GATE_MIN_RATIO", 0.5)
	if rep.Ratio < minRatio {
		failed = true
		fmt.Fprintf(w, "durability: FAIL WAL-on/off ratio %.3f < required %.2f\n", rep.Ratio, minRatio)
	} else {
		fmt.Fprintf(w, "durability: WAL-on/off ratio %.3f (>= %.2f)\n", rep.Ratio, minRatio)
	}
	minReplay := envFloat("DURABILITY_GATE_MIN_REPLAY", 1.0)
	if rep.Replay < minReplay {
		failed = true
		fmt.Fprintf(w, "durability: FAIL replay %.3f Mops/s < required %.2f\n", rep.Replay, minReplay)
	} else {
		fmt.Fprintf(w, "durability: replay %.3f Mops/s (>= %.2f)\n", rep.Replay, minReplay)
	}
	if failed {
		gateFailures.Add(1)
	}
}
