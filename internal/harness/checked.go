package harness

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/index"
)

// Checked is the correctness experiment: every index runs three mixed
// workloads with the history recorder attached, and the merged histories
// are verified against sequential semantics (per-key linearizability plus
// scan completeness; see internal/histcheck). The Bw-Tree additionally
// runs under both GC schemes, since epoch reclamation is where premature
// frees would surface as stale reads. The experiment's product is not a
// throughput number but a zero-violation gate.
func Checked(w io.Writer, sc Scale) {
	type entry struct {
		name string
		mk   func() index.Index
	}
	openCentral := core.DefaultOptions()
	openCentral.GC = core.GCCentralized
	baseDecentral := core.BaselineOptions()
	baseDecentral.GC = core.GCDecentralized
	openSlice := core.DefaultOptions()
	openSlice.FlatBaseNodes = false
	entries := []entry{
		{"OpenBwTree (decentralized GC)", index.NewOpenBwTree},
		{"OpenBwTree (centralized GC)", func() index.Index { return index.NewBwTreeWith("OpenBwTree-central", openCentral) }},
		{"OpenBwTree (slice bases)", func() index.Index { return index.NewBwTreeWith("OpenBwTree-slice", openSlice) }},
		{"BwTree (centralized GC)", index.NewBaselineBwTree},
		{"BwTree (decentralized GC)", func() index.Index { return index.NewBwTreeWith("BwTree-decentral", baseDecentral) }},
		{"SkipList", index.NewSkipList},
		{"Masstree", index.NewMasstree},
		{"B+Tree", index.NewBTree},
		{"ART", index.NewART},
	}

	mixes := histcheck.Mixes()
	cols := make([]string, len(mixes))
	for i, m := range mixes {
		cols[i] = m.Name
	}

	// Never drop below the default 4 worker goroutines: the point is
	// interleaving, which needs more goroutines than the benchmark thread
	// count on small machines (goroutines still preempt under GOMAXPROCS=1).
	cfg := histcheck.DefaultRunConfig(sc.Seed)
	if sc.Threads > cfg.Threads && sc.Threads <= 8 {
		cfg.Threads = sc.Threads
	}

	failures := 0
	runTable := func(title string, cfg histcheck.RunConfig) {
		tbl := NewTable(title, cols...)
		for _, e := range entries {
			cells := make([]string, len(mixes))
			for i, mix := range mixes {
				idx := e.mk()
				vs, h := histcheck.RunChecked(idx, false, mix, cfg)
				idx.Close()
				if len(vs) == 0 {
					cells[i] = fmt.Sprintf("%d ok", len(h.Ops))
					continue
				}
				failures += len(vs)
				cells[i] = fmt.Sprintf("%d FAIL(%d)", len(h.Ops), len(vs))
				for j, v := range vs {
					if j == 5 {
						fmt.Fprintf(w, "  ... %d more\n", len(vs)-5)
						break
					}
					fmt.Fprintf(w, "  %s / %s: %v\n", e.name, mix.Name, v)
				}
			}
			tbl.AddRow(e.name, cells...)
		}
		if cfg.Batch > 1 {
			tbl.Note("Inserts and lookups run through InsertBatch/LookupBatch (window %d); deletes, updates, and scans interleave single-op.", cfg.Batch)
		} else {
			tbl.Note("Each cell is one concurrent run (%d threads) verified for per-key linearizability and scan completeness.", cfg.Threads)
		}
		tbl.WriteTo(w)
	}
	runTable("Checked: history-checker verdict per index and mix (ops checked / violations)", cfg)
	// Batched variant: the same mixes with inserts and lookups routed
	// through the batch entry points, so the amortized-epoch hot path gets
	// the same linearizability verdict as the single-op path.
	bcfg := cfg
	bcfg.Batch = 16
	runTable("Checked (batched): InsertBatch/LookupBatch under the history checker", bcfg)
	if failures == 0 {
		fmt.Fprintf(w, "checked: zero violations across %d runs\n", 2*len(entries)*len(mixes))
	} else {
		fmt.Fprintf(w, "checked: %d VIOLATIONS — see above\n", failures)
		gateFailures.Add(1)
	}
}
