// Package harness drives the paper's experiments: it fans workloads out
// over worker goroutines, measures throughput and memory, and renders the
// text tables and series that mirror every figure and table of the
// evaluation (§5, §6).
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/ycsb"
)

// Config describes one benchmark run.
type Config struct {
	Workload ycsb.Workload
	KeyType  ycsb.KeyType
	// Keys is the load-phase population size.
	Keys int
	// Ops is the total run-phase operation count (ignored for
	// Insert-only, whose op count equals Keys).
	Ops int
	// Threads is the worker goroutine count.
	Threads int
	// Seed makes runs reproducible.
	Seed uint64
	// MeasureMemory enables live-heap measurement (forces GC twice).
	MeasureMemory bool
}

// Result is one run's measurements.
type Result struct {
	Index    string
	Workload ycsb.Workload
	KeyType  ycsb.KeyType
	Threads  int

	// LoadMops is the Insert-only (population) throughput in Mops/s.
	LoadMops float64
	// RunMops is the run-phase throughput in Mops/s. For Insert-only
	// configs it equals LoadMops.
	RunMops float64
	// Bytes is the live-heap delta attributable to the index, when
	// MeasureMemory is set.
	Bytes uint64
	// Ops is the number of operations the run phase completed.
	Ops int
}

// Run executes one benchmark: build the index with mk, load the
// population (timed), then run the workload mix (timed).
func Run(mk func() index.Index, cfg Config) Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	var before runtime.MemStats
	if cfg.MeasureMemory {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	idx := mk()
	defer idx.Close()

	res := Result{
		Index:    idx.Name(),
		Workload: cfg.Workload,
		KeyType:  cfg.KeyType,
		Threads:  cfg.Threads,
	}

	ks := ycsb.NewKeySet(cfg.KeyType, cfg.Keys)

	// Load phase: the whole population via Insert-only streams.
	loadOps := cfg.Keys
	if cfg.Workload == ycsb.InsertOnly && cfg.KeyType == ycsb.MonoHC {
		// HC keys are generated on the fly; load nothing.
		loadOps = 0
	}
	if loadOps > 0 {
		dur := RunPhase(idx, ks, ycsb.InsertOnly, loadOps, cfg.Threads, cfg.Seed)
		res.LoadMops = mops(loadOps, dur)
	}

	if cfg.Workload == ycsb.InsertOnly {
		if loadOps == 0 {
			// Mono-HC Insert-only: the run phase does the inserting.
			dur := RunPhase(idx, ks, ycsb.InsertOnly, cfg.Ops, cfg.Threads, cfg.Seed)
			res.RunMops = mops(cfg.Ops, dur)
			res.Ops = cfg.Ops
		} else {
			res.RunMops = res.LoadMops
			res.Ops = loadOps
		}
	} else {
		dur := RunPhase(idx, ks, cfg.Workload, cfg.Ops, cfg.Threads, cfg.Seed+1)
		res.RunMops = mops(cfg.Ops, dur)
		res.Ops = cfg.Ops
	}

	if cfg.MeasureMemory {
		var after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			res.Bytes = after.HeapAlloc - before.HeapAlloc
		}
	}
	return res
}

func mops(ops int, dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(ops) / dur.Seconds() / 1e6
}

// RunPhase executes ops operations of workload w across threads workers
// and returns the wall-clock duration.
func RunPhase(idx index.Index, ks *ycsb.KeySet, w ycsb.Workload, ops, threads int, seed uint64) time.Duration {
	perWorker := ops / threads
	extra := ops % threads
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		n := perWorker
		if t < extra {
			n++
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			s := idx.NewSession()
			defer s.Release()
			stream := ycsb.NewStream(w, ks, worker, seed+uint64(worker)*0x9E37)
			var out []uint64
			for i := 0; i < n; i++ {
				op := stream.Next()
				switch op.Kind {
				case ycsb.OpRead:
					out = s.Lookup(op.Key, out[:0])
				case ycsb.OpUpdate:
					s.Update(op.Key, op.Value)
				case ycsb.OpInsert:
					s.Insert(op.Key, op.Value)
				case ycsb.OpScan:
					s.Scan(op.Key, op.ScanLen, visitNop)
				}
			}
		}(t, n)
	}
	wg.Wait()
	return time.Since(start)
}

func visitNop(k []byte, v uint64) bool { return true }

// Preload builds an index and loads the population, returning the loaded
// index for experiments that need custom measurement phases.
func Preload(mk func() index.Index, kt ycsb.KeyType, keys, threads int, seed uint64) (index.Index, *ycsb.KeySet) {
	idx := mk()
	ks := ycsb.NewKeySet(kt, keys)
	RunPhase(idx, ks, ycsb.InsertOnly, keys, threads, seed)
	return idx, ks
}

// FormatBytes renders a byte count as GB with two decimals (the unit of
// Fig. 15).
func FormatBytes(b uint64) string {
	return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
}
