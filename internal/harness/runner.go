// Package harness drives the paper's experiments: it fans workloads out
// over worker goroutines, measures throughput and memory, and renders the
// text tables and series that mirror every figure and table of the
// evaluation (§5, §6).
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// Config describes one benchmark run.
type Config struct {
	Workload ycsb.Workload
	KeyType  ycsb.KeyType
	// Keys is the load-phase population size.
	Keys int
	// Ops is the total run-phase operation count (ignored for
	// Insert-only, whose op count equals Keys).
	Ops int
	// Threads is the worker goroutine count.
	Threads int
	// Seed makes runs reproducible.
	Seed uint64
	// MeasureMemory enables live-heap measurement (forces GC twice).
	MeasureMemory bool
	// MeasureLatency records per-operation latency histograms during the
	// run phase into Result.Lat. Independent of the index's own
	// histograms: the harness times each call at the session boundary, so
	// it works for every index, not just the Bw-Tree.
	MeasureLatency bool
	// BatchSize > 1 drives the run phase through the BatchSession
	// interface in windows of this many operations (see RunPhaseBatch).
	// The load phase of mixed workloads stays unbatched.
	BatchSize int
}

// Result is one run's measurements.
type Result struct {
	Index    string
	Workload ycsb.Workload
	KeyType  ycsb.KeyType
	Threads  int

	// LoadMops is the Insert-only (population) throughput in Mops/s.
	LoadMops float64
	// RunMops is the run-phase throughput in Mops/s. For Insert-only
	// configs it equals LoadMops.
	RunMops float64
	// Bytes is the live-heap delta attributable to the index, when
	// MeasureMemory is set.
	Bytes uint64
	// Ops is the number of operations the run phase completed.
	Ops int
	// Lat holds run-phase latency histograms when Config.MeasureLatency
	// was set; nil otherwise.
	Lat *obs.LatencySnapshot
}

// Run executes one benchmark: build the index with mk, load the
// population (timed), then run the workload mix (timed).
func Run(mk func() index.Index, cfg Config) Result {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	var before runtime.MemStats
	if cfg.MeasureMemory {
		runtime.GC()
		runtime.ReadMemStats(&before)
	}
	idx := mk()
	defer idx.Close()

	res := Result{
		Index:    idx.Name(),
		Workload: cfg.Workload,
		KeyType:  cfg.KeyType,
		Threads:  cfg.Threads,
	}

	ks := ycsb.NewKeySet(cfg.KeyType, cfg.Keys)

	// Load phase: the whole population via Insert-only streams.
	loadOps := cfg.Keys
	if cfg.Workload == ycsb.InsertOnly && cfg.KeyType == ycsb.MonoHC {
		// HC keys are generated on the fly; load nothing.
		loadOps = 0
	}
	var lat *obs.LatencySnapshot
	if cfg.MeasureLatency {
		lat = &obs.LatencySnapshot{}
	}
	if loadOps > 0 {
		// For Insert-only configs the load phase is the measured run, so
		// latency collection (when requested) must cover it and batching
		// (when requested) applies; for mixed workloads the load is just
		// setup and stays uninstrumented and unbatched.
		loadLat, loadBatch := lat, cfg.BatchSize
		if cfg.Workload != ycsb.InsertOnly {
			loadLat, loadBatch = nil, 0
		}
		dur := RunPhaseBatch(idx, ks, ycsb.InsertOnly, loadOps, cfg.Threads, phaseSeed(cfg.Seed, 0), loadBatch, loadLat)
		res.LoadMops = mops(loadOps, dur)
	}
	if cfg.Workload == ycsb.InsertOnly {
		if loadOps == 0 {
			// Mono-HC Insert-only: the run phase does the inserting.
			dur := RunPhaseBatch(idx, ks, ycsb.InsertOnly, cfg.Ops, cfg.Threads, phaseSeed(cfg.Seed, 0), cfg.BatchSize, lat)
			res.RunMops = mops(cfg.Ops, dur)
			res.Ops = cfg.Ops
		} else {
			res.RunMops = res.LoadMops
			res.Ops = loadOps
		}
	} else {
		dur := RunPhaseBatch(idx, ks, cfg.Workload, cfg.Ops, cfg.Threads, phaseSeed(cfg.Seed, 1), cfg.BatchSize, lat)
		res.RunMops = mops(cfg.Ops, dur)
		res.Ops = cfg.Ops
	}
	res.Lat = lat

	if cfg.MeasureMemory {
		var after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			res.Bytes = after.HeapAlloc - before.HeapAlloc
		}
	}
	return res
}

// phaseSeed derives an independent RNG stream for phase (or worker)
// number p of a run seeded with seed, via the SplitMix64 finalizer. The
// old derivation — run phase = Seed+1, worker streams = seed + worker ×
// 0x9E37 — made adjacent user seeds overlap: seed S's run phase replayed
// seed S+1's load phase, and nearby (seed, worker) pairs collided.
// Hashing (seed, p) through a full-avalanche bijection decorrelates every
// pair while keeping runs reproducible from Config.Seed alone.
func phaseSeed(seed, p uint64) uint64 {
	x := seed + (p+1)*0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func mops(ops int, dur time.Duration) float64 {
	if dur <= 0 {
		return 0
	}
	return float64(ops) / dur.Seconds() / 1e6
}

// RunPhase executes ops operations of workload w across threads workers
// and returns the wall-clock duration.
func RunPhase(idx index.Index, ks *ycsb.KeySet, w ycsb.Workload, ops, threads int, seed uint64) time.Duration {
	return RunPhaseLat(idx, ks, w, ops, threads, seed, nil)
}

// RunPhaseDist is RunPhase with an explicit request distribution —
// uniform requests are what memory-layout experiments need, where
// Zipfian skew would degenerate the probe stream into a hot-node cache
// benchmark (see ycsb.RequestDist).
func RunPhaseDist(idx index.Index, ks *ycsb.KeySet, w ycsb.Workload, dist ycsb.RequestDist, ops, threads int, seed uint64) time.Duration {
	return runPhaseDist(idx, ks, w, dist, ops, threads, seed, nil)
}

// RunPhaseLat is RunPhase with optional latency collection: when lat is
// non-nil each worker records every operation's duration into a private
// recorder, merged into lat after the barrier.
func RunPhaseLat(idx index.Index, ks *ycsb.KeySet, w ycsb.Workload, ops, threads int, seed uint64, lat *obs.LatencySnapshot) time.Duration {
	return runPhaseDist(idx, ks, w, ycsb.DistZipfian, ops, threads, seed, lat)
}

func runPhaseDist(idx index.Index, ks *ycsb.KeySet, w ycsb.Workload, dist ycsb.RequestDist, ops, threads int, seed uint64, lat *obs.LatencySnapshot) time.Duration {
	perWorker := ops / threads
	extra := ops % threads
	recs := make([]*obs.Recorder, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		n := perWorker
		if t < extra {
			n++
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			s := idx.NewSession()
			defer s.Release()
			stream := ycsb.NewStreamDist(w, ks, worker, phaseSeed(seed, uint64(worker)), dist)
			var rec *obs.Recorder
			if lat != nil {
				rec = &obs.Recorder{}
				recs[worker] = rec
			}
			var out []uint64
			if rec == nil {
				for i := 0; i < n; i++ {
					op := stream.Next()
					switch op.Kind {
					case ycsb.OpRead:
						out = s.Lookup(op.Key, out[:0])
					case ycsb.OpUpdate:
						s.Update(op.Key, op.Value)
					case ycsb.OpInsert:
						s.Insert(op.Key, op.Value)
					case ycsb.OpScan:
						s.Scan(op.Key, op.ScanLen, visitNop)
					}
				}
				return
			}
			for i := 0; i < n; i++ {
				op := stream.Next()
				t0 := obs.Now()
				var class obs.OpClass
				switch op.Kind {
				case ycsb.OpRead:
					out = s.Lookup(op.Key, out[:0])
					class = obs.OpRead
				case ycsb.OpUpdate:
					s.Update(op.Key, op.Value)
					class = obs.OpUpdate
				case ycsb.OpInsert:
					s.Insert(op.Key, op.Value)
					class = obs.OpInsert
				case ycsb.OpScan:
					s.Scan(op.Key, op.ScanLen, visitNop)
					class = obs.OpScan
				}
				rec.Record(class, obs.Now()-t0)
			}
		}(t, n)
	}
	wg.Wait()
	dur := time.Since(start)
	if lat != nil {
		for _, rec := range recs {
			if rec != nil {
				rec.AddTo(lat)
			}
		}
	}
	return dur
}

func visitNop(k []byte, v uint64) bool { return true }

// Preload builds an index and loads the population, returning the loaded
// index for experiments that need custom measurement phases.
func Preload(mk func() index.Index, kt ycsb.KeyType, keys, threads int, seed uint64) (index.Index, *ycsb.KeySet) {
	idx := mk()
	ks := ycsb.NewKeySet(kt, keys)
	RunPhase(idx, ks, ycsb.InsertOnly, keys, threads, seed)
	return idx, ks
}

// FormatBytes renders a byte count as GB with two decimals (the unit of
// Fig. 15).
func FormatBytes(b uint64) string {
	return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
}
