package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/bwtree"
	"repro/internal/bwproto"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/ycsb"
)

// ServerGateFile is the report the server experiment writes and the
// committed baseline it compares against.
type ServerGateFile struct {
	Config struct {
		Shards  int    `json:"shards"`
		Router  string `json:"router"`
		Keys    int    `json:"keys"`
		Ops     int    `json:"ops"`
		Threads int    `json:"threads"`
		Batch   int    `json:"batch"`
		Seed    uint64 `json:"seed"`
	} `json:"config"`
	// Load is the batched insert phase that populates the store.
	Load ServerGatePoint `json:"load"`
	// Pipelined is the batched YCSB-C run phase: the aggregate-throughput
	// number the gate protects. Latencies are per batch frame.
	Pipelined ServerGatePoint `json:"pipelined"`
	// Point is the unbatched YCSB-C phase: one frame per op, so its
	// latencies are client-observed request round-trip times.
	Point ServerGatePoint `json:"point"`
	// Scan is the YCSB-E (95% scan / 5% insert) phase, exercising the
	// cross-shard scatter-gather path over the wire.
	Scan ServerGatePoint `json:"scan"`
	// Server echoes the server-side counters after the run.
	Server struct {
		ConnsTotal  uint64 `json:"conns_total"`
		Frames      uint64 `json:"frames"`
		ProtoErrors uint64 `json:"proto_errors"`
	} `json:"server"`
}

// ServerGatePoint is one measured phase.
type ServerGatePoint struct {
	Ops   int     `json:"ops"`
	Mops  float64 `json:"mops"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

// serverGateBatch is the pipelining window: one OpBatch frame per window,
// large enough to amortize the round trip, small enough to stay a
// plausible request-level batch.
const serverGateBatch = 1024

// maxServerShards caps the shard count: past the core count extra shards
// only add merge width to every scan.
const maxServerShards = 16

// ServerGate measures the sharded serving tier end-to-end: an in-process
// bwproto server over loopback TCP fronting sc.Threads hash-routed
// shards, driven by one client connection per worker through the same
// phase runners as the in-process experiments. Three run phases follow a
// batched load: pipelined YCSB-C (OpBatch windows — the throughput the
// gate protects), point YCSB-C (one frame per op — client-observed
// round-trip percentiles), and YCSB-E (cross-shard scatter-gather scans).
//
// The report goes to BENCH_server.json (SERVER_GATE_OUT); with a
// committed baseline (SERVER_GATE_BASELINE, default
// bench/BENCH_server.json) the gate fails when pipelined throughput
// drops more than SERVER_GATE_TOLERANCE (default 0.30 — loopback
// scheduling is noisier than in-process runs) below baseline, or point
// round-trip p99 rises more than twice that tolerance above it. Any
// server-side protocol error or a store count that disagrees with the
// loaded key population fails the gate unconditionally.
func ServerGate(w io.Writer, sc Scale) {
	shards := sc.Threads
	if shards < 1 {
		shards = 1
	}
	if shards > maxServerShards {
		shards = maxServerShards
	}
	// Network round trips dominate; a fraction of the in-process op count
	// measures the same steady state in CI-friendly time.
	keys := sc.Keys / 5
	if keys < 10_000 {
		keys = 10_000
	}
	pipeOps := sc.Ops / 2
	if pipeOps < 50_000 {
		pipeOps = 50_000
	}
	pointOps := pipeOps / 20
	scanOps := pipeOps / 100

	var rep ServerGateFile
	rep.Config.Shards = shards
	rep.Config.Router = "hash"
	rep.Config.Keys = keys
	rep.Config.Ops = pipeOps
	rep.Config.Threads = sc.Threads
	rep.Config.Batch = serverGateBatch
	rep.Config.Seed = sc.Seed

	router, err := shard.NewRouter("hash", shards)
	if err != nil {
		fmt.Fprintf(w, "server: %v\n", err)
		gateFailures.Add(1)
		return
	}
	st, err := shard.Open(shard.Options{Shards: shards, Router: router, Tree: bwtree.DefaultOptions()})
	if err != nil {
		fmt.Fprintf(w, "server: %v\n", err)
		gateFailures.Add(1)
		return
	}
	defer st.Close()
	srv := bwproto.NewServer(st)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		fmt.Fprintf(w, "server: listen: %v\n", err)
		gateFailures.Add(1)
		return
	}
	defer srv.Shutdown(2 * time.Second)
	ix, err := bwproto.DialIndex(srv.Addr())
	if err != nil {
		fmt.Fprintf(w, "server: dial: %v\n", err)
		gateFailures.Add(1)
		return
	}
	defer ix.Close()

	ks := ycsb.NewKeySet(ycsb.RandInt, keys)
	point := func(ops int, dur time.Duration, lat *obs.LatencySnapshot, class obs.OpClass) ServerGatePoint {
		pt := ServerGatePoint{Ops: ops, Mops: mops(ops, dur)}
		if lat != nil {
			h := lat.Class(class)
			pt.P50us = h.Quantile(0.50) / 1e3
			pt.P99us = h.Quantile(0.99) / 1e3
		}
		return pt
	}

	var loadLat obs.LatencySnapshot
	dur := RunPhaseBatch(ix, ks, ycsb.InsertOnly, keys, sc.Threads, phaseSeed(sc.Seed, 0), serverGateBatch, &loadLat)
	rep.Load = point(keys, dur, &loadLat, obs.OpBatch)

	failed := false
	if got := st.Count(); got != keys {
		failed = true
		fmt.Fprintf(w, "server: FAIL store holds %d keys after loading %d\n", got, keys)
	}

	var pipeLat obs.LatencySnapshot
	dur = RunPhaseBatch(ix, ks, ycsb.ReadOnly, pipeOps, sc.Threads, phaseSeed(sc.Seed, 1), serverGateBatch, &pipeLat)
	rep.Pipelined = point(pipeOps, dur, &pipeLat, obs.OpBatch)

	var pointLat obs.LatencySnapshot
	dur = RunPhaseLat(ix, ks, ycsb.ReadOnly, pointOps, sc.Threads, phaseSeed(sc.Seed, 2), &pointLat)
	rep.Point = point(pointOps, dur, &pointLat, obs.OpRead)

	var scanLat obs.LatencySnapshot
	dur = RunPhaseLat(ix, ks, ycsb.ScanInsert, scanOps, sc.Threads, phaseSeed(sc.Seed, 3), &scanLat)
	rep.Scan = point(scanOps, dur, &scanLat, obs.OpScan)

	ss := srv.Stats()
	rep.Server.ConnsTotal = ss.ConnsTotal
	rep.Server.Frames = ss.Frames
	rep.Server.ProtoErrors = ss.ProtoErrors
	if ss.ProtoErrors != 0 {
		failed = true
		fmt.Fprintf(w, "server: FAIL %d protocol errors during the run\n", ss.ProtoErrors)
	}
	if err := st.Validate(); err != nil {
		failed = true
		fmt.Fprintf(w, "server: FAIL store validation: %v\n", err)
	}

	out := os.Getenv("SERVER_GATE_OUT")
	if out == "" {
		out = "BENCH_server.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "server: cannot write %s: %v\n", out, err)
		}
	}

	tbl := NewTable(fmt.Sprintf("Serving tier: %d shards over loopback TCP, %d conns, batch=%d",
		shards, sc.Threads, serverGateBatch), "ops", "Mops/s", "p50 µs", "p99 µs")
	for _, row := range []struct {
		name string
		pt   ServerGatePoint
	}{{"load (batched)", rep.Load}, {"pipelined C", rep.Pipelined}, {"point C", rep.Point}, {"scan E", rep.Scan}} {
		tbl.AddRow(row.name, fmt.Sprint(row.pt.Ops), f3(row.pt.Mops),
			fmt.Sprintf("%.2f", row.pt.P50us), fmt.Sprintf("%.2f", row.pt.P99us))
	}
	tbl.Note("Pipelined/load latencies are per %d-op batch frame; point/scan are per-request round trips.", serverGateBatch)
	tbl.Note("Report written to %s.", out)
	tbl.WriteTo(w)

	baselinePath := os.Getenv("SERVER_GATE_BASELINE")
	if baselinePath == "" {
		baselinePath = "bench/BENCH_server.json"
	}
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base ServerGateFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(w, "server: unreadable baseline %s: %v\n", baselinePath, err)
		} else {
			tol := envFloat("SERVER_GATE_TOLERANCE", 0.30)
			if floor := base.Pipelined.Mops * (1 - tol); rep.Pipelined.Mops < floor {
				failed = true
				fmt.Fprintf(w, "server: FAIL pipelined %.3f Mops/s under baseline floor %.3f (baseline %.3f, tolerance %.0f%%)\n",
					rep.Pipelined.Mops, floor, base.Pipelined.Mops, tol*100)
			}
			if ceil := base.Point.P99us * (1 + 2*tol); base.Point.P99us > 0 && rep.Point.P99us > ceil {
				failed = true
				fmt.Fprintf(w, "server: FAIL point p99 %.2fµs over baseline ceiling %.2fµs (baseline %.2fµs)\n",
					rep.Point.P99us, ceil, base.Point.P99us)
			}
			if !failed {
				fmt.Fprintf(w, "server: within tolerance of baseline %s (pipelined %.3f vs %.3f Mops/s)\n",
					baselinePath, rep.Pipelined.Mops, base.Pipelined.Mops)
			}
		}
	} else {
		fmt.Fprintf(w, "server: no baseline at %s; correctness checks only\n", baselinePath)
	}
	if failed {
		gateFailures.Add(1)
	}
}
