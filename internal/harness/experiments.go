package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// Scale controls experiment sizes. The defaults (1M keys, 2M ops) run a
// full sweep on a laptop in minutes; the paper's scale is ~52M keys.
type Scale struct {
	Keys    int
	Ops     int
	Threads int
	Seed    uint64
}

// DefaultScale returns laptop-friendly sizes.
func DefaultScale() Scale {
	threads := runtime.GOMAXPROCS(0)
	if threads > 20 {
		threads = 20 // the paper's single-socket configuration
	}
	return Scale{Keys: 1_000_000, Ops: 2_000_000, Threads: threads, Seed: 2018}
}

// Experiment is a runnable reproduction of one paper table or figure.
type Experiment struct {
	Name  string
	Brief string
	Run   func(w io.Writer, sc Scale)
}

// Experiments returns every experiment, keyed as in DESIGN.md.
func Experiments() []Experiment {
	return []Experiment{
		{"fig8", "Delta-record pre-allocation on/off, single thread", Fig8},
		{"fig9", "Fast consolidation & search shortcuts on/off, single thread", Fig9},
		{"fig10", "Centralized vs decentralized GC scaling", Fig10},
		{"fig11", "Delta chain length x node size sweep", Fig11},
		{"table2", "OpenBw-Tree structural statistics", Table2},
		{"fig12a", "Optimizations applied one at a time", Fig12a},
		{"fig12b", "Bw-Tree vs OpenBw-Tree, all workloads", Fig12b},
		{"fig13", "Six-index comparison, single thread", Fig13},
		{"fig14", "Six-index comparison, multi-threaded", Fig14},
		{"fig15", "Peak memory usage", Fig15},
		{"table3", "Microbenchmark counters (software proxies)", Table3},
		{"fig16", "High-contention (Mono-HC) insert throughput", Fig16},
		{"fig17", "Normal vs high-contention Insert-only", Fig17},
		{"fig18", "Feature decomposition (-DC, -CAS, -MT, -DU)", Fig18},
		{"latency", "Operation latency percentiles, Bw-Tree vs OpenBw-Tree", Latency},
		{"checked", "History-checked correctness sweep: all indexes, three mixes, both GC schemes", Checked},
		{"bench-gate", "Benchmark-regression gate: batched vs unbatched hot path, JSON report + baseline check", BenchGate},
		{"flatnode", "Flat vs slice base-node layout, leaf and inner arms: consolidated Lookup speedups + allocs + inner GC pointers (gated), read-mostly/scan mixes, JSON report", FlatNode},
		{"durability", "WAL cost, group-commit shape, and recovery rates, JSON report + gates", Durability},
		{"obs-overhead", "Observability-overhead gate: disabled probes vs -tags notrace build (<2%), sampled-tracing cost, JSON report", ObsOverhead},
		{"server", "Sharded serving tier over loopback TCP: pipelined vs point round trips, scan mix, JSON report + gate", ServerGate},
		{"txn", "OCC multi-key transactions: bank transfers at two contention levels, read-only audits, OpTxn over loopback, serializability check, JSON report + gate", TxnGate},
	}
}

var keyTypes3 = []ycsb.KeyType{ycsb.MonoInt, ycsb.RandInt, ycsb.Email}

// onOffExperiment renders a Fig. 8/9-style on/off comparison of two
// Bw-Tree option sets over the 4x3 workload/key grid, single-threaded.
func onOffExperiment(w io.Writer, sc Scale, title, offLabel, onLabel string, off, on core.Options) {
	for _, kt := range keyTypes3 {
		tbl := NewTable(fmt.Sprintf("%s — %s keys (Mops/s, 1 thread)", title, kt), offLabel, onLabel)
		for _, wl := range ycsb.AllWorkloads() {
			cfg := Config{Workload: wl, KeyType: kt, Keys: sc.Keys, Ops: sc.Ops, Threads: 1, Seed: sc.Seed}
			a := Run(func() index.Index { return index.NewBwTreeWith("off", off) }, cfg)
			b := Run(func() index.Index { return index.NewBwTreeWith("on", on) }, cfg)
			tbl.AddFloats(wl.String(), a.RunMops, b.RunMops)
		}
		tbl.WriteTo(w)
	}
}

// Fig8 reproduces the delta pre-allocation study (§5.2).
func Fig8(w io.Writer, sc Scale) {
	off := core.DefaultOptions()
	off.Preallocate = false
	on := core.DefaultOptions()
	onOffExperiment(w, sc, "Fig. 8: Delta Record Pre-allocation",
		"IndependentAlloc", "PreAlloc", off, on)
}

// Fig9 reproduces the fast consolidation + search shortcut study (§5.3).
func Fig9(w io.Writer, sc Scale) {
	off := core.DefaultOptions()
	off.FastConsolidate = false
	off.SearchShortcuts = false
	on := core.DefaultOptions()
	onOffExperiment(w, sc, "Fig. 9: Fast Consolidation & Search Shortcuts",
		"No FC & SS", "FC & SS", off, on)
}

// Fig10 reproduces the GC scalability study (§5.4): Read/Update
// throughput as worker threads grow, centralized vs decentralized epochs.
func Fig10(w io.Writer, sc Scale) {
	central := core.DefaultOptions()
	central.GC = core.GCCentralized
	distributed := core.DefaultOptions()
	for _, kt := range keyTypes3 {
		tbl := NewTable(fmt.Sprintf("Fig. 10: GC Scalability — %s keys, Read/Update (Mops/s)", kt),
			"CentralizedGC", "DistributedGC")
		for _, threads := range threadSteps(sc.Threads) {
			cfg := Config{Workload: ycsb.ReadUpdate, KeyType: kt, Keys: sc.Keys, Ops: sc.Ops, Threads: threads, Seed: sc.Seed}
			a := Run(func() index.Index { return index.NewBwTreeWith("central", central) }, cfg)
			b := Run(func() index.Index { return index.NewBwTreeWith("dist", distributed) }, cfg)
			tbl.AddFloats(fmt.Sprintf("%d threads", threads), a.RunMops, b.RunMops)
		}
		tbl.WriteTo(w)
	}
}

func threadSteps(max int) []int {
	steps := []int{1, 2, 4, 8, 12, 16, 20}
	var out []int
	for _, s := range steps {
		if s <= max {
			out = append(out, s)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Fig11 reproduces the chain length x node size sweep (§5.5) on Mono-Int
// keys with the full thread count.
func Fig11(w io.Writer, sc Scale) {
	nodeSizes := []int{32, 64, 128}
	chainLens := []int{8, 16, 24, 32, 40}
	for _, wl := range []ycsb.Workload{ycsb.InsertOnly, ycsb.ReadUpdate} {
		cols := make([]string, len(nodeSizes))
		for i, n := range nodeSizes {
			cols[i] = fmt.Sprintf("node=%d", n)
		}
		tbl := NewTable(fmt.Sprintf("Fig. 11: Chain Length & Node Size — Mono-Int %s (Mops/s, %d threads)", wl, sc.Threads), cols...)
		for _, cl := range chainLens {
			vals := make([]float64, len(nodeSizes))
			for i, ns := range nodeSizes {
				opts := core.DefaultOptions()
				opts.LeafNodeSize = ns
				opts.LeafChainLength = cl
				opts.LeafMergeSize = ns / 4
				cfg := Config{Workload: wl, KeyType: ycsb.MonoInt, Keys: sc.Keys, Ops: sc.Ops, Threads: sc.Threads, Seed: sc.Seed}
				vals[i] = Run(func() index.Index { return index.NewBwTreeWith("bw", opts) }, cfg).RunMops
			}
			tbl.AddFloats(fmt.Sprintf("chain=%d", cl), vals...)
		}
		tbl.WriteTo(w)
	}
}

// Table2 reproduces the OpenBw-Tree statistics table: chain lengths, node
// sizes, abort rate, and pre-allocation utilization after Insert-only.
func Table2(w io.Writer, sc Scale) {
	kts := []ycsb.KeyType{ycsb.MonoInt, ycsb.RandInt, ycsb.MonoHC}
	cols := make([]string, len(kts))
	for i, kt := range kts {
		cols[i] = kt.String()
	}
	tbl := NewTable(fmt.Sprintf("Table 2: OpenBw-Tree Statistics — Insert-only, %d threads", sc.Threads), cols...)

	type snap struct {
		st  core.StructureStats
		sts core.Stats
	}
	snaps := make([]snap, len(kts))
	for i, kt := range kts {
		mk := func() index.Index { return index.NewOpenBwTree() }
		var idx index.Index
		if kt == ycsb.MonoHC {
			cfg := Config{Workload: ycsb.InsertOnly, KeyType: kt, Keys: sc.Keys, Ops: sc.Ops, Threads: sc.Threads, Seed: sc.Seed}
			idx = mk()
			ks := ycsb.NewKeySet(kt, 0)
			RunPhase(idx, ks, ycsb.InsertOnly, cfg.Ops, cfg.Threads, cfg.Seed)
		} else {
			idx, _ = Preload(mk, kt, sc.Keys, sc.Threads, sc.Seed)
		}
		bt := idx.(index.BwBacked).Tree()
		snaps[i] = snap{st: bt.StructureStats(), sts: bt.Stats()}
		idx.Close()
	}
	row := func(label string, f func(s snap) float64, format string) {
		cells := make([]string, len(snaps))
		for i, s := range snaps {
			cells[i] = fmt.Sprintf(format, f(s))
		}
		tbl.AddRow(label, cells...)
	}
	row("Avg. IDCL", func(s snap) float64 { return s.st.AvgInnerChainLen }, "%.2f")
	row("Avg. LDCL", func(s snap) float64 { return s.st.AvgLeafChainLen }, "%.2f")
	row("Avg. INS", func(s snap) float64 { return s.st.AvgInnerNodeSize }, "%.2f")
	row("Avg. LNS", func(s snap) float64 { return s.st.AvgLeafNodeSize }, "%.2f")
	row("Abort Rate", func(s snap) float64 { return s.sts.AbortRate() * 100 }, "%.2f%%")
	row("Avg. IPU", func(s snap) float64 { return s.sts.InnerPreallocUtilization() * 100 }, "%.2f%%")
	row("Avg. LPU", func(s snap) float64 { return s.sts.LeafPreallocUtilization() * 100 }, "%.2f%%")
	tbl.WriteTo(w)
}

// Fig12a reproduces the one-at-a-time optimization study (§5.6): starting
// from the baseline Bw-Tree, enable decentralized GC, then pre-allocation,
// then fast consolidation + shortcuts, then non-unique key support.
func Fig12a(w io.Writer, sc Scale) {
	variants := fig12aVariants()
	labels := make([]string, len(variants))
	for i := range variants {
		labels[i] = variants[i].name
	}
	tbl := NewTable("Fig. 12a: Optimization Stack — Rand-Int Read/Update (Mops/s)", labels...)
	for _, threads := range []int{1, sc.Threads} {
		vals := make([]float64, len(variants))
		for i, v := range variants {
			opts := v.opts
			cfg := Config{Workload: ycsb.ReadUpdate, KeyType: ycsb.RandInt, Keys: sc.Keys, Ops: sc.Ops, Threads: threads, Seed: sc.Seed}
			vals[i] = Run(func() index.Index { return index.NewBwTreeWith(v.name, opts) }, cfg).RunMops
		}
		tbl.AddFloats(fmt.Sprintf("%d thread(s)", threads), vals...)
	}
	tbl.WriteTo(w)
}

type namedOpts struct {
	name string
	opts core.Options
}

func fig12aVariants() []namedOpts {
	bw := core.BaselineOptions()
	gc := bw
	gc.GC = core.GCDecentralized
	pa := gc
	pa.Preallocate = true
	pa.LeafChainLength = core.DefaultOptions().LeafChainLength
	pa.InnerChainLength = core.DefaultOptions().InnerChainLength
	fc := pa
	fc.FastConsolidate = true
	fc.SearchShortcuts = true
	nk := fc
	nk.NonUnique = true
	return []namedOpts{
		{"Bw-Tree", bw}, {"+GC", gc}, {"+PA", pa}, {"+FC&SS", fc}, {"+NK", nk},
	}
}

// Fig12b compares the baseline Bw-Tree against the OpenBw-Tree on all
// four workloads with Mono-Int keys at full thread count.
func Fig12b(w io.Writer, sc Scale) {
	tbl := NewTable(fmt.Sprintf("Fig. 12b: Bw-Tree vs OpenBw-Tree — Mono-Int (%d threads, Mops/s)", sc.Threads),
		"Bw-Tree", "OpenBw-Tree")
	for _, wl := range ycsb.AllWorkloads() {
		cfg := Config{Workload: wl, KeyType: ycsb.MonoInt, Keys: sc.Keys, Ops: sc.Ops, Threads: sc.Threads, Seed: sc.Seed}
		a := Run(index.NewBaselineBwTree, cfg)
		b := Run(index.NewOpenBwTree, cfg)
		tbl.AddFloats(wl.String(), a.RunMops, b.RunMops)
	}
	tbl.WriteTo(w)
}

// sixIndexComparison renders a Fig. 13/14-style grid.
func sixIndexComparison(w io.Writer, sc Scale, threads int, title string) {
	mks := index.All()
	cols := make([]string, len(mks))
	for i, mk := range mks {
		idx := mk()
		cols[i] = idx.Name()
		idx.Close()
	}
	for _, kt := range keyTypes3 {
		tbl := NewTable(fmt.Sprintf("%s — %s keys (Mops/s, %d thread(s))", title, kt, threads), cols...)
		for _, wl := range ycsb.AllWorkloads() {
			vals := make([]float64, len(mks))
			for i, mk := range mks {
				cfg := Config{Workload: wl, KeyType: kt, Keys: sc.Keys, Ops: sc.Ops, Threads: threads, Seed: sc.Seed}
				vals[i] = Run(mk, cfg).RunMops
			}
			tbl.AddFloats(wl.String(), vals...)
		}
		tbl.WriteTo(w)
	}
}

// Fig13 is the single-threaded six-index comparison (§6.1).
func Fig13(w io.Writer, sc Scale) {
	sixIndexComparison(w, sc, 1, "Fig. 13: In-Memory Index Comparison (Single-Threaded)")
}

// Fig14 is the multi-threaded six-index comparison (§6.1).
func Fig14(w io.Writer, sc Scale) {
	sixIndexComparison(w, sc, sc.Threads, "Fig. 14: In-Memory Index Comparison (Multi-Threaded)")
}

// Fig15 measures live-heap consumption after the Read/Update workload
// (§6.1, memory usage).
func Fig15(w io.Writer, sc Scale) {
	mks := index.All()
	cols := make([]string, len(mks))
	for i, mk := range mks {
		idx := mk()
		cols[i] = idx.Name()
		idx.Close()
	}
	for _, threads := range []int{1, sc.Threads} {
		tbl := NewTable(fmt.Sprintf("Fig. 15: Memory Usage — Read/Update (%d thread(s))", threads), cols...)
		for _, kt := range keyTypes3 {
			cells := make([]string, len(mks))
			for i, mk := range mks {
				cfg := Config{Workload: ycsb.ReadUpdate, KeyType: kt, Keys: sc.Keys, Ops: sc.Ops, Threads: threads, Seed: sc.Seed, MeasureMemory: true}
				cells[i] = FormatBytes(Run(mk, cfg).Bytes)
			}
			tbl.AddRow(kt.String(), cells...)
		}
		tbl.WriteTo(w)
	}
}

// Table3 reproduces the microbenchmark table with software proxies for
// the paper's hardware counters: ns/op and allocation counters stand in
// for cycles and cache misses (see DESIGN.md substitutions).
func Table3(w io.Writer, sc Scale) {
	mks := index.All()
	cols := make([]string, len(mks))
	for i, mk := range mks {
		idx := mk()
		cols[i] = idx.Name()
		idx.Close()
	}
	tbl := NewTable(fmt.Sprintf("Table 3: Rand-Int Insert-only Microbenchmarks — %d threads (software proxies)", sc.Threads), cols...)
	type m struct {
		nsPerOp     float64
		bytesPerOp  float64
		allocsPerOp float64
	}
	ms := make([]m, len(mks))
	for i, mk := range mks {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		idx := mk()
		ks := ycsb.NewKeySet(ycsb.RandInt, sc.Keys)
		start := time.Now()
		RunPhase(idx, ks, ycsb.InsertOnly, sc.Keys, sc.Threads, sc.Seed)
		dur := time.Since(start)
		runtime.ReadMemStats(&after)
		idx.Close()
		ms[i] = m{
			nsPerOp:     float64(dur.Nanoseconds()) / float64(sc.Keys),
			bytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(sc.Keys),
			allocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(sc.Keys),
		}
	}
	row := func(label string, f func(m) float64) {
		cells := make([]string, len(ms))
		for i := range ms {
			cells[i] = fmt.Sprintf("%.1f", f(ms[i]))
		}
		tbl.AddRow(label, cells...)
	}
	row("ns/op (∝ cycles)", func(x m) float64 { return x.nsPerOp })
	row("B/op (∝ cache traffic)", func(x m) float64 { return x.bytesPerOp })
	row("allocs/op", func(x m) float64 { return x.allocsPerOp })
	tbl.Note("Hardware PMCs are not readable from portable Go; ns/op, B/op and allocs/op are the proxies (DESIGN.md).")
	tbl.WriteTo(w)
}

// Fig16 reproduces the high-contention study (§6.2): Mono-HC Insert-only
// throughput under growing thread counts (the NUMA tiers become thread
// tiers; see DESIGN.md substitutions).
func Fig16(w io.Writer, sc Scale) {
	mks := index.All()
	cols := make([]string, len(mks))
	for i, mk := range mks {
		idx := mk()
		cols[i] = idx.Name()
		idx.Close()
	}
	tbl := NewTable("Fig. 16a: High-Contention Insert-only — Mono-HC keys (Mops/s)", cols...)
	// Fig. 16b/c report local/remote DRAM access rates; the portable
	// proxy for memory-system pressure is the allocation rate.
	allocTbl := NewTable("Fig. 16b: Memory-Pressure Proxy — allocations per second (M/s)", cols...)
	tiers := []int{sc.Threads, 2 * sc.Threads}
	for _, threads := range tiers {
		vals := make([]float64, len(mks))
		allocs := make([]float64, len(mks))
		for i, mk := range mks {
			cfg := Config{Workload: ycsb.InsertOnly, KeyType: ycsb.MonoHC, Keys: 0, Ops: sc.Ops, Threads: threads, Seed: sc.Seed}
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res := Run(mk, cfg)
			dur := time.Since(start)
			runtime.ReadMemStats(&after)
			vals[i] = res.RunMops
			allocs[i] = float64(after.Mallocs-before.Mallocs) / dur.Seconds() / 1e6
		}
		label := fmt.Sprintf("%d threads", threads)
		tbl.AddFloats(label, vals...)
		allocTbl.AddFloats(label, allocs...)
	}
	tbl.Note("The paper's 20thr/1-socket, 20thr/2-socket, 40thr/2-socket tiers become %v worker threads on one shared-memory node.", tiers)
	allocTbl.Note("Stands in for the paper's DRAM access-rate counters (Fig. 16b/16c), which portable Go cannot read.")
	tbl.WriteTo(w)
	allocTbl.WriteTo(w)
}

// Fig17 contrasts normal (Mono-Int) and high-contention (Mono-HC)
// Insert-only throughput at full thread count (§6.2).
func Fig17(w io.Writer, sc Scale) {
	mks := index.All()
	cols := make([]string, len(mks))
	for i, mk := range mks {
		idx := mk()
		cols[i] = idx.Name()
		idx.Close()
	}
	tbl := NewTable(fmt.Sprintf("Fig. 17: Normal vs High-Contention Insert-only (%d threads, Mops/s)", sc.Threads), cols...)
	for _, kt := range []ycsb.KeyType{ycsb.MonoInt, ycsb.MonoHC} {
		vals := make([]float64, len(mks))
		for i, mk := range mks {
			cfg := Config{Workload: ycsb.InsertOnly, KeyType: kt, Keys: sc.Keys, Ops: sc.Ops, Threads: sc.Threads, Seed: sc.Seed}
			vals[i] = Run(mk, cfg).RunMops
		}
		tbl.AddFloats(kt.String(), vals...)
	}
	tbl.WriteTo(w)
}

// Fig18 reproduces the feature decomposition (§6.3): disable the delta
// chains, CaS, the mapping table, and delta updates one at a time,
// single-threaded, Rand-Int keys, against a B+Tree reference.
func Fig18(w io.Writer, sc Scale) {
	tbl := NewTable("Fig. 18: Feature Decomposition — Rand-Int, 1 thread (Mops/s)",
		"Insert-only", "Read-only")
	seed := sc.Seed

	// OpenBw-Tree reference.
	insert := Run(index.NewOpenBwTree, Config{Workload: ycsb.InsertOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Threads: 1, Seed: seed})
	read := Run(index.NewOpenBwTree, Config{Workload: ycsb.ReadOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Ops: sc.Ops, Threads: 1, Seed: seed})
	tbl.AddRow("OpenBw-Tree", f3(insert.RunMops), f3(read.RunMops))

	// -DC: consolidate every chain, then measure Read-only.
	{
		idx, ks := Preload(index.NewOpenBwTree, ycsb.RandInt, sc.Keys, 1, seed)
		idx.(index.BwBacked).Tree().ConsolidateAll()
		dur := RunPhase(idx, ks, ycsb.ReadOnly, sc.Ops, 1, seed+1)
		idx.Close()
		tbl.AddRow("-DC (no delta chains)", "N/A", f3(mops(sc.Ops, dur)))
	}

	// -CAS: non-atomic mapping-table publication.
	{
		opts := core.DefaultOptions()
		opts.UnsafeNoCAS = true
		mk := func() index.Index { return index.NewBwTreeWith("noCAS", opts) }
		ins := Run(mk, Config{Workload: ycsb.InsertOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Threads: 1, Seed: seed})
		rd := Run(mk, Config{Workload: ycsb.ReadOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Ops: sc.Ops, Threads: 1, Seed: seed})
		tbl.AddRow("-CAS (plain stores)", f3(ins.RunMops), f3(rd.RunMops))
	}

	// -MT: frozen snapshot with direct pointers, Read-only.
	{
		idx, ks := Preload(index.NewOpenBwTree, ycsb.RandInt, sc.Keys, 1, seed)
		frozen := idx.(index.BwBacked).Tree().Freeze()
		zipf := ycsb.NewScrambledZipfian(uint64(len(ks.Keys)), seed+2)
		start := time.Now()
		for i := 0; i < sc.Ops; i++ {
			frozen.Lookup(ks.Keys[zipf.Next()])
		}
		dur := time.Since(start)
		idx.Close()
		tbl.AddRow("-MT (direct pointers)", "N/A", f3(mops(sc.Ops, dur)))
	}

	// -DU: in-place leaf updates, Insert-only.
	{
		opts := core.DefaultOptions()
		opts.UnsafeNoCAS = true
		opts.InPlaceLeafUpdates = true
		mk := func() index.Index { return index.NewBwTreeWith("inplace", opts) }
		ins := Run(mk, Config{Workload: ycsb.InsertOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Threads: 1, Seed: seed})
		tbl.AddRow("-DU (in-place updates)", f3(ins.RunMops), "N/A")
	}

	// B+Tree(OLC) reference.
	{
		ins := Run(index.NewBTree, Config{Workload: ycsb.InsertOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Threads: 1, Seed: seed})
		rd := Run(index.NewBTree, Config{Workload: ycsb.ReadOnly, KeyType: ycsb.RandInt, Keys: sc.Keys, Ops: sc.Ops, Threads: 1, Seed: seed})
		tbl.AddRow("B+Tree (OLC)", f3(ins.RunMops), f3(rd.RunMops))
	}
	tbl.WriteTo(w)
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Latency reports operation latency percentiles (the tail behaviour the
// throughput figures hide) for the baseline Bw-Tree and the OpenBw-Tree
// across all workloads on Rand-Int keys. The harness times every call at
// the session boundary, so the numbers include the full abort/retry
// cost of each public operation.
func Latency(w io.Writer, sc Scale) {
	variants := []struct {
		label string
		mk    func() index.Index
	}{
		{"Bw-Tree", index.NewBaselineBwTree},
		{"OpenBw-Tree", index.NewOpenBwTree},
	}
	for _, v := range variants {
		tbl := NewTable(fmt.Sprintf("Latency: %s — Rand-Int (%d threads, µs)", v.label, sc.Threads),
			"Mops/s", "p50", "p90", "p99", "p99.9")
		for _, wl := range ycsb.AllWorkloads() {
			cfg := Config{Workload: wl, KeyType: ycsb.RandInt, Keys: sc.Keys, Ops: sc.Ops,
				Threads: sc.Threads, Seed: sc.Seed, MeasureLatency: true}
			res := Run(v.mk, cfg)
			var all obs.HistSnapshot
			for c := obs.OpClass(0); c < obs.NumOpClasses; c++ {
				all.Merge(res.Lat.Class(c))
			}
			tbl.AddRow(wl.String(), f3(res.RunMops),
				fmt.Sprintf("%.2f", all.Quantile(0.50)/1e3),
				fmt.Sprintf("%.2f", all.Quantile(0.90)/1e3),
				fmt.Sprintf("%.2f", all.Quantile(0.99)/1e3),
				fmt.Sprintf("%.2f", all.Quantile(0.999)/1e3))
		}
		tbl.Note("Percentiles from log-bucketed histograms (≤6.25%% bucket width), recorded per call at the session boundary.")
		tbl.WriteTo(w)
	}
}

// RunAll executes every experiment in order.
func RunAll(w io.Writer, sc Scale) {
	for _, e := range Experiments() {
		fmt.Fprintf(w, "### %s — %s\n\n", e.Name, e.Brief)
		e.Run(w, sc)
	}
}
