package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// gateFailures counts acceptance-gate failures (bench-gate regressions,
// checked-experiment violations) so command frontends can turn them into
// a non-zero exit without parsing report text.
var gateFailures atomic.Int64

// GateFailures returns the number of gate failures recorded by
// experiments run in this process.
func GateFailures() int { return int(gateFailures.Load()) }

// BenchGateFile is the report the bench-gate experiment writes and the
// committed baseline it compares against.
type BenchGateFile struct {
	// Config pins what was measured, for report readers; runs with a
	// different config are compared anyway (the gate is a regression
	// tripwire, not a lab instrument).
	Config struct {
		Workload string `json:"workload"`
		KeyType  string `json:"keytype"`
		Keys     int    `json:"keys"`
		Ops      int    `json:"ops"`
		Threads  int    `json:"threads"`
		Batch    int    `json:"batch"`
		Seed     uint64 `json:"seed"`
	} `json:"config"`
	Unbatched BenchGatePoint `json:"unbatched"`
	Batched   BenchGatePoint `json:"batched"`
	// Speedup is Batched.Mops / Unbatched.Mops.
	Speedup float64 `json:"speedup"`
}

// BenchGatePoint is one measured mode.
type BenchGatePoint struct {
	Mops  float64 `json:"mops"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
	// AllocsPerOp/BytesPerOp are process-wide heap-allocation deltas
	// (runtime.MemStats) across the measured phase divided by its op
	// count, so a PR that reintroduces per-lookup allocations trips the
	// gate even when throughput hides it.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// LeafHits/ParentHits report how often the batched traversal reused
	// its cache instead of descending from the root (zero when unbatched).
	LeafHits   uint64 `json:"leaf_hits,omitempty"`
	ParentHits uint64 `json:"parent_hits,omitempty"`
}

// benchGateBatch is the window size the gate measures with: large enough
// that sorted keys cluster per leaf (leaves hold ~128 keys, so the window
// must sample the key space densely), small enough to be a plausible
// request-level batch.
const benchGateBatch = 2048

// envFloat reads a float64 override from the environment.
func envFloat(name string, def float64) float64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return def
}

// BenchGate is the benchmark-regression gate: it measures the OpenBw-Tree
// on the read-heavy YCSB-C mix unbatched and batched (window of 2048),
// writes the result to BENCH_hotpath.json (override with BENCH_GATE_OUT),
// and fails the gate when
//
//   - the batched path is not at least BENCH_GATE_MIN_SPEEDUP (default
//     1.15) times faster than the unbatched path measured in the same
//     process, or
//   - a committed baseline exists (BENCH_GATE_BASELINE, default
//     bench/BENCH_hotpath.json) and batched throughput dropped more than
//     BENCH_GATE_TOLERANCE (default 0.25) below it, or batched p99 rose
//     more than twice that tolerance above it, or batched allocs/op rose
//     more than BENCH_GATE_ALLOC_SLACK (default 0.5, absolute) above it,
//     or batched bytes/op rose past baseline*(1+tolerance) +
//     BENCH_GATE_BYTES_SLACK (default 64).
//
// The tolerance is deliberately generous: the gate runs on shared CI
// machines and must only catch real regressions, not scheduler noise.
// Both modes run with the tree's internal latency histograms enabled so
// the p99 comparison carries equal instrumentation overhead.
func BenchGate(w io.Writer, sc Scale) {
	var rep BenchGateFile
	rep.Config.Workload = ycsb.ReadOnly.String()
	rep.Config.KeyType = ycsb.RandInt.String()
	rep.Config.Keys = sc.Keys
	rep.Config.Ops = sc.Ops
	rep.Config.Threads = sc.Threads
	rep.Config.Batch = benchGateBatch
	rep.Config.Seed = sc.Seed

	opts := core.DefaultOptions()
	opts.LatencyHistograms = true
	measure := func(batch int) BenchGatePoint {
		idx := index.NewBwTreeWith("gate", opts)
		defer idx.Close()
		ks := ycsb.NewKeySet(ycsb.RandInt, sc.Keys)
		RunPhase(idx, ks, ycsb.InsertOnly, sc.Keys, sc.Threads, phaseSeed(sc.Seed, 0))
		tree := idx.(index.BwBacked).Tree()
		preStats := tree.Stats()
		runtime.GC()
		var mem0, mem1 runtime.MemStats
		runtime.ReadMemStats(&mem0)
		dur := RunPhaseBatch(idx, ks, ycsb.ReadOnly, sc.Ops, sc.Threads, phaseSeed(sc.Seed, 1), batch, nil)
		runtime.ReadMemStats(&mem1)
		var pt BenchGatePoint
		pt.Mops = mops(sc.Ops, dur)
		pt.AllocsPerOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(sc.Ops)
		pt.BytesPerOp = float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(sc.Ops)
		if lat := tree.Latencies(); lat != nil {
			reads := lat.Class(obs.OpRead)
			pt.P50us = reads.Quantile(0.50) / 1e3
			pt.P99us = reads.Quantile(0.99) / 1e3
		}
		st := tree.Stats()
		pt.LeafHits = st.BatchLeafHits - preStats.BatchLeafHits
		pt.ParentHits = st.BatchParentHits - preStats.BatchParentHits
		return pt
	}
	rep.Unbatched = measure(0)
	rep.Batched = measure(benchGateBatch)
	if rep.Unbatched.Mops > 0 {
		rep.Speedup = rep.Batched.Mops / rep.Unbatched.Mops
	}

	out := os.Getenv("BENCH_GATE_OUT")
	if out == "" {
		out = "BENCH_hotpath.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "bench-gate: cannot write %s: %v\n", out, err)
		}
	}

	tbl := NewTable(fmt.Sprintf("Bench gate: YCSB-C Rand-Int, %d threads, batch=%d", sc.Threads, benchGateBatch),
		"Mops/s", "p50 µs", "p99 µs", "allocs/op", "B/op", "leaf hits", "parent hits")
	tbl.AddRow("unbatched", f3(rep.Unbatched.Mops), fmt.Sprintf("%.2f", rep.Unbatched.P50us),
		fmt.Sprintf("%.2f", rep.Unbatched.P99us),
		fmt.Sprintf("%.3f", rep.Unbatched.AllocsPerOp), fmt.Sprintf("%.1f", rep.Unbatched.BytesPerOp), "-", "-")
	tbl.AddRow("batched", f3(rep.Batched.Mops), fmt.Sprintf("%.2f", rep.Batched.P50us),
		fmt.Sprintf("%.2f", rep.Batched.P99us),
		fmt.Sprintf("%.3f", rep.Batched.AllocsPerOp), fmt.Sprintf("%.1f", rep.Batched.BytesPerOp),
		fmt.Sprint(rep.Batched.LeafHits), fmt.Sprint(rep.Batched.ParentHits))
	tbl.Note("Report written to %s.", out)
	tbl.WriteTo(w)

	failed := false
	minSpeedup := envFloat("BENCH_GATE_MIN_SPEEDUP", 1.15)
	if rep.Speedup < minSpeedup {
		failed = true
		fmt.Fprintf(w, "bench-gate: FAIL batched speedup %.3fx < required %.2fx\n", rep.Speedup, minSpeedup)
	} else {
		fmt.Fprintf(w, "bench-gate: batched speedup %.3fx (>= %.2fx)\n", rep.Speedup, minSpeedup)
	}

	baselinePath := os.Getenv("BENCH_GATE_BASELINE")
	if baselinePath == "" {
		baselinePath = "bench/BENCH_hotpath.json"
	}
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base BenchGateFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(w, "bench-gate: unreadable baseline %s: %v\n", baselinePath, err)
		} else {
			tol := envFloat("BENCH_GATE_TOLERANCE", 0.25)
			if floor := base.Batched.Mops * (1 - tol); rep.Batched.Mops < floor {
				failed = true
				fmt.Fprintf(w, "bench-gate: FAIL batched %.3f Mops/s under baseline floor %.3f (baseline %.3f, tolerance %.0f%%)\n",
					rep.Batched.Mops, floor, base.Batched.Mops, tol*100)
			}
			if ceil := base.Batched.P99us * (1 + 2*tol); base.Batched.P99us > 0 && rep.Batched.P99us > ceil {
				failed = true
				fmt.Fprintf(w, "bench-gate: FAIL batched p99 %.2fµs over baseline ceiling %.2fµs (baseline %.2fµs)\n",
					rep.Batched.P99us, ceil, base.Batched.P99us)
			}
			// Allocation gates are absolute-slack, not relative: the
			// baseline sits near zero allocs/op, where a percentage
			// tolerance would permit nothing (or everything).
			allocSlack := envFloat("BENCH_GATE_ALLOC_SLACK", 0.5)
			if ceil := base.Batched.AllocsPerOp + allocSlack; rep.Batched.AllocsPerOp > ceil {
				failed = true
				fmt.Fprintf(w, "bench-gate: FAIL batched %.3f allocs/op over baseline ceiling %.3f (baseline %.3f)\n",
					rep.Batched.AllocsPerOp, ceil, base.Batched.AllocsPerOp)
			}
			bytesSlack := envFloat("BENCH_GATE_BYTES_SLACK", 64)
			if ceil := base.Batched.BytesPerOp*(1+tol) + bytesSlack; rep.Batched.BytesPerOp > ceil {
				failed = true
				fmt.Fprintf(w, "bench-gate: FAIL batched %.1f B/op over baseline ceiling %.1f (baseline %.1f)\n",
					rep.Batched.BytesPerOp, ceil, base.Batched.BytesPerOp)
			}
			if !failed {
				fmt.Fprintf(w, "bench-gate: within tolerance of baseline %s (batched %.3f vs %.3f Mops/s)\n",
					baselinePath, rep.Batched.Mops, base.Batched.Mops)
			}
		}
	} else {
		fmt.Fprintf(w, "bench-gate: no baseline at %s; speedup check only\n", baselinePath)
	}
	if failed {
		gateFailures.Add(1)
	}
}
