package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"
)

// TrendPoint is one committed snapshot of a benchmark baseline file.
type TrendPoint struct {
	Commit  string             `json:"commit"`
	Date    string             `json:"date"`
	Metrics map[string]float64 `json:"metrics"`
}

// TrendSeries is the full committed history of one bench/BENCH_*.json
// baseline, oldest first, ending with the working-tree state when it
// differs from the last commit.
type TrendSeries struct {
	File   string       `json:"file"`
	Points []TrendPoint `json:"points"`
}

// Trend aggregates every committed bench/BENCH_*.json baseline under dir
// into per-file metric trajectories: one column per commit that touched
// the file, one row per numeric metric. With jsonOut it emits the series
// as JSON instead of a table. Non-numeric leaves and the "config" block
// are skipped — configs describe the run, they aren't results.
func Trend(w io.Writer, dir string, jsonOut bool) error {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_*.json baselines under %s", dir)
	}
	sort.Strings(files)

	var all []TrendSeries
	for _, f := range files {
		s, err := trendSeries(f)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		all = append(all, s)
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	}
	for _, s := range all {
		writeTrendTable(w, s)
	}
	return nil
}

// trendSeries builds one file's trajectory from git history plus the
// working tree. Outside a git checkout (or with git missing) it degrades
// to a single working-tree point.
func trendSeries(path string) (TrendSeries, error) {
	s := TrendSeries{File: filepath.Base(path)}
	for _, rev := range gitRevs(path) {
		blob, err := gitShow(rev.hash, path)
		if err != nil {
			continue // e.g. file renamed; skip the unreadable revision
		}
		m, err := flattenMetrics(blob)
		if err != nil {
			continue // a malformed historical blob shouldn't kill the report
		}
		s.Points = append(s.Points, TrendPoint{Commit: rev.hash[:min(10, len(rev.hash))], Date: rev.date, Metrics: m})
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	m, err := flattenMetrics(cur)
	if err != nil {
		return s, err
	}
	if n := len(s.Points); n == 0 || !sameMetrics(s.Points[n-1].Metrics, m) {
		s.Points = append(s.Points, TrendPoint{Commit: "worktree", Metrics: m})
	}
	return s, nil
}

type trendRev struct{ hash, date string }

// gitRevs lists the commits that touched path, oldest first. Errors
// (not a repo, no git binary) return nil: the caller falls back to the
// working tree.
func gitRevs(path string) []trendRev {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil
	}
	cmd := exec.Command("git", "-C", filepath.Dir(abs), "log", "--reverse", "--format=%H %cs", "--", abs)
	out, err := cmd.Output()
	if err != nil {
		return nil
	}
	var revs []trendRev
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		h, d, ok := strings.Cut(line, " ")
		if ok && h != "" {
			revs = append(revs, trendRev{hash: h, date: d})
		}
	}
	return revs
}

// gitShow reads path's blob as of the given commit.
func gitShow(hash, path string) ([]byte, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(abs)
	cmd := exec.Command("git", "-C", dir, "rev-parse", "--show-toplevel")
	top, err := cmd.Output()
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(strings.TrimSpace(string(top)), abs)
	if err != nil {
		return nil, err
	}
	return exec.Command("git", "-C", dir, "show", hash+":"+filepath.ToSlash(rel)).Output()
}

// flattenMetrics extracts every numeric leaf of a baseline JSON document
// as a dotted-path metric, skipping the top-level "config" block.
func flattenMetrics(blob []byte) (map[string]float64, error) {
	var doc map[string]any
	if err := json.Unmarshal(blob, &doc); err != nil {
		return nil, err
	}
	delete(doc, "config")
	m := map[string]float64{}
	flattenInto(m, "", doc)
	return m, nil
}

func flattenInto(m map[string]float64, prefix string, v any) {
	switch t := v.(type) {
	case map[string]any:
		for k, sub := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flattenInto(m, p, sub)
		}
	case []any:
		for i, sub := range t {
			flattenInto(m, fmt.Sprintf("%s[%d]", prefix, i), sub)
		}
	case float64:
		m[prefix] = t
	}
}

func sameMetrics(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// writeTrendTable renders one baseline's trajectory: commits across,
// metrics down, with a trailing Δ% column comparing last to first.
func writeTrendTable(w io.Writer, s TrendSeries) {
	fmt.Fprintf(w, "### %s\n\n", s.File)
	names := map[string]bool{}
	for _, p := range s.Points {
		for k := range p.Metrics {
			names[k] = true
		}
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "metric")
	for _, p := range s.Points {
		col := p.Commit
		if p.Date != "" {
			col += " (" + p.Date + ")"
		}
		fmt.Fprintf(tw, "\t%s", col)
	}
	if len(s.Points) > 1 {
		fmt.Fprint(tw, "\tΔ%")
	}
	fmt.Fprintln(tw)
	for _, k := range keys {
		fmt.Fprint(tw, k)
		var first, last float64
		var haveFirst bool
		for _, p := range s.Points {
			if v, ok := p.Metrics[k]; ok {
				fmt.Fprintf(tw, "\t%s", trendNum(v))
				if !haveFirst {
					first, haveFirst = v, true
				}
				last = v
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		if len(s.Points) > 1 {
			if haveFirst && first != 0 {
				fmt.Fprintf(tw, "\t%+.1f%%", (last-first)/first*100)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// trendNum formats a metric compactly: integers without decimals, small
// ratios with enough precision to be meaningful.
func trendNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
