package harness

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/index"
	"repro/internal/ycsb"
)

func tinyScale() Scale {
	return Scale{Keys: 2000, Ops: 4000, Threads: 2, Seed: 7}
}

func TestRunInsertOnly(t *testing.T) {
	res := Run(index.NewOpenBwTree, Config{
		Workload: ycsb.InsertOnly, KeyType: ycsb.MonoInt,
		Keys: 5000, Threads: 2, Seed: 1,
	})
	if res.RunMops <= 0 || res.LoadMops != res.RunMops {
		t.Fatalf("result %+v", res)
	}
	if res.Ops != 5000 {
		t.Fatalf("ops %d", res.Ops)
	}
}

func TestRunEachWorkloadEachIndex(t *testing.T) {
	for _, mk := range index.All() {
		for _, wl := range ycsb.AllWorkloads() {
			res := Run(mk, Config{
				Workload: wl, KeyType: ycsb.RandInt,
				Keys: 1000, Ops: 2000, Threads: 2, Seed: 3,
			})
			if res.RunMops <= 0 {
				t.Fatalf("%s/%v: zero throughput", res.Index, wl)
			}
		}
	}
}

func TestRunMeasuresMemory(t *testing.T) {
	res := Run(index.NewOpenBwTree, Config{
		Workload: ycsb.ReadUpdate, KeyType: ycsb.MonoInt,
		Keys: 20000, Ops: 1000, Threads: 1, Seed: 1, MeasureMemory: true,
	})
	if res.Bytes == 0 {
		t.Fatal("no memory measured for a 20k-key tree")
	}
}

func TestRunHCWorkload(t *testing.T) {
	res := Run(index.NewOpenBwTree, Config{
		Workload: ycsb.InsertOnly, KeyType: ycsb.MonoHC,
		Keys: 0, Ops: 5000, Threads: 4, Seed: 1,
	})
	if res.RunMops <= 0 || res.Ops != 5000 {
		t.Fatalf("result %+v", res)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Title", "A", "B")
	tbl.AddFloats("row1", 1.5, 2.25)
	tbl.AddRow("row2", "x", "y")
	tbl.Note("note %d", 7)
	out := tbl.String()
	for _, want := range []string{"Title", "A", "B", "row1", "1.500", "2.250", "x", "y", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestExperimentsSmoke runs every experiment end-to-end at a tiny scale:
// the point is that each driver completes and produces a table.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	sc := tinyScale()
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			// bench-gate writes a JSON report and asserts a speedup that
			// tiny scales cannot show; point it at a scratch file and
			// disable the ratio assertion — this smoke only checks that
			// the driver completes.
			t.Setenv("BENCH_GATE_OUT", filepath.Join(t.TempDir(), "BENCH_hotpath.json"))
			t.Setenv("BENCH_GATE_MIN_SPEEDUP", "0")
			// Same deal for durability: scratch report, no rate floors.
			t.Setenv("DURABILITY_GATE_OUT", filepath.Join(t.TempDir(), "BENCH_durability.json"))
			t.Setenv("DURABILITY_GATE_MIN_RATIO", "0")
			t.Setenv("DURABILITY_GATE_MIN_REPLAY", "0")
			// And for flatnode: scratch report, no speedup floor.
			t.Setenv("FLATNODE_GATE_OUT", filepath.Join(t.TempDir(), "BENCH_flatnode.json"))
			t.Setenv("FLATNODE_GATE_MIN_SPEEDUP", "0")
			// obs-overhead: scratch report, one short round each, and no
			// tolerance — tiny scales only smoke the drivers, they cannot
			// measure a 2% effect.
			t.Setenv("BENCH_OBS_OUT", filepath.Join(t.TempDir(), "BENCH_obs.json"))
			t.Setenv("BENCH_OBS_ROUNDS", "1")
			t.Setenv("BENCH_OBS_INPROC_ROUNDS", "1")
			t.Setenv("BENCH_OBS_BENCHTIME", "10000x")
			t.Setenv("BENCH_OBS_TOLERANCE", "1000")
			t.Setenv("BENCH_OBS_ENABLED_TOLERANCE", "1000")
			// server: scratch report and no baseline, so the loopback run
			// only has to complete cleanly.
			t.Setenv("SERVER_GATE_OUT", filepath.Join(t.TempDir(), "BENCH_server.json"))
			t.Setenv("SERVER_GATE_BASELINE", filepath.Join(t.TempDir(), "absent.json"))
			// txn: same — the correctness checks (money conservation,
			// serializability) still run at full strength.
			t.Setenv("TXN_GATE_OUT", filepath.Join(t.TempDir(), "BENCH_txn.json"))
			t.Setenv("TXN_GATE_BASELINE", filepath.Join(t.TempDir(), "absent.json"))
			var b strings.Builder
			e.Run(&b, sc)
			if !strings.Contains(b.String(), "===") {
				t.Fatalf("experiment %s produced no table:\n%s", e.Name, b.String())
			}
		})
	}
}

func TestPreloadAndRunPhase(t *testing.T) {
	idx, ks := Preload(index.NewBTree, ycsb.MonoInt, 3000, 2, 5)
	defer idx.Close()
	s := idx.NewSession()
	defer s.Release()
	if got := s.Lookup(ks.Keys[100], nil); len(got) != 1 {
		t.Fatalf("preloaded key missing: %v", got)
	}
	dur := RunPhase(idx, ks, ycsb.ReadOnly, 1000, 2, 9)
	if dur <= 0 {
		t.Fatal("zero duration")
	}
}

func TestFormatBytes(t *testing.T) {
	if got := FormatBytes(1 << 30); got != "1.00 GB" {
		t.Fatalf("got %q", got)
	}
}

func TestRunMeasuresLatency(t *testing.T) {
	res := Run(index.NewOpenBwTree, Config{
		Workload: ycsb.ReadUpdate, KeyType: ycsb.RandInt,
		Keys: 2000, Ops: 4000, Threads: 2, Seed: 5, MeasureLatency: true,
	})
	if res.Lat == nil {
		t.Fatal("MeasureLatency set but Result.Lat is nil")
	}
	if got := res.Lat.Total(); got != 4000 {
		t.Fatalf("latency observations = %d, want 4000", got)
	}
	sum := res.Lat.Summary()
	if _, ok := sum["read"]; !ok {
		t.Fatalf("latency summary missing read class: %v", sum)
	}
	for class, q := range sum {
		if q["p99_us"] < q["p50_us"] {
			t.Fatalf("%s: p99 %v below p50 %v", class, q["p99_us"], q["p50_us"])
		}
	}

	// Latency off (default): no recorder allocated.
	res = Run(index.NewOpenBwTree, Config{
		Workload: ycsb.ReadOnly, KeyType: ycsb.RandInt,
		Keys: 1000, Ops: 1000, Threads: 1, Seed: 5,
	})
	if res.Lat != nil {
		t.Fatal("Result.Lat non-nil without MeasureLatency")
	}
}
