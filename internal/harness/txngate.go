package harness

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/bwtree"
	"repro/internal/bwproto"
	"repro/internal/histcheck"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/txn"
)

// TxnGateFile is the report the txn experiment writes and the committed
// baseline it compares against.
type TxnGateFile struct {
	Config struct {
		AccountsLow int    `json:"accounts_low"`
		AccountsHot int    `json:"accounts_hot"`
		Initial     uint64 `json:"initial"`
		Threads     int    `json:"threads"`
		Seed        uint64 `json:"seed"`
	} `json:"config"`
	// TransferLow is the low-contention bank-transfer phase (2-read/
	// 2-write OCC commits spread over a large account set): the
	// commit-throughput number the gate protects.
	TransferLow TxnGatePoint `json:"transfer_low"`
	// TransferHot hammers 64 accounts from every worker; its conflict
	// ratio is the interesting number, and its full history feeds the
	// serializability checker.
	TransferHot TxnGatePoint `json:"transfer_hot"`
	// ReadOnly is 8-key read-only audits: validation with no write
	// resolution or stamp installation.
	ReadOnly TxnGatePoint `json:"read_only"`
	// Wire is 2-key transfers through OpTxn frames over loopback TCP;
	// latencies are client-observed round trips.
	Wire TxnGatePoint `json:"wire"`
	// Engine echoes the in-process store's counters after the run.
	Engine struct {
		Commits       uint64  `json:"commits"`
		Conflicts     uint64  `json:"conflicts"`
		ReadOnly      uint64  `json:"read_only"`
		ValidateP99us float64 `json:"validate_p99_us"`
	} `json:"engine"`
}

// TxnGatePoint is one measured phase. Mcommits counts committed
// transactions only; Attempts includes conflicted retries.
type TxnGatePoint struct {
	Attempts  int     `json:"attempts"`
	Commits   int     `json:"commits"`
	Conflicts int     `json:"conflicts"`
	Mcommits  float64 `json:"mcommits_per_s"`
	P50us     float64 `json:"p50_us"`
	P99us     float64 `json:"p99_us"`
}

// txnAcctKey is an 8-byte big-endian account key (order-preserving).
func txnAcctKey(i int) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(i))
	return k[:]
}

// txnGatePhase drives attempts transfer/audit operations through fn from
// threads workers, each on its own session, and folds the results into
// one point. fn returns (committed, conflicted); infrastructure errors
// surface through errOut.
func txnGatePhase(attempts, threads int, seed uint64, newSession func() index.TxnSession,
	fn func(s index.TxnSession, rng *rand.Rand) (bool, bool, error)) (TxnGatePoint, time.Duration, error) {
	var commits, conflicts atomic.Uint64
	var firstErr atomic.Value
	var lat obs.Histogram
	var wg sync.WaitGroup
	per := attempts / threads
	start := time.Now()
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			s := newSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(phaseSeed(seed, uint64(t)))))
			for i := 0; i < per; i++ {
				opStart := time.Now()
				ok, conflict, err := fn(s, rng)
				lat.Record(time.Since(opStart))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				if ok {
					commits.Add(1)
				}
				if conflict {
					conflicts.Add(1)
				}
			}
		}(t)
	}
	wg.Wait()
	dur := time.Since(start)
	var snap obs.HistSnapshot
	lat.AddTo(&snap)
	pt := TxnGatePoint{
		Attempts:  per * threads,
		Commits:   int(commits.Load()),
		Conflicts: int(conflicts.Load()),
		Mcommits:  mops(int(commits.Load()), dur),
		P50us:     snap.Quantile(0.50) / 1e3,
		P99us:     snap.Quantile(0.99) / 1e3,
	}
	var err error
	if e := firstErr.Load(); e != nil {
		err = e.(error)
	}
	return pt, dur, err
}

// txnTransfer moves a random amount between two random accounts: read
// both versioned balances, skip if the source cannot cover it, commit
// both updated balances against the observed versions.
func txnTransfer(s index.TxnSession, rng *rand.Rand, accounts int, initial uint64) (bool, bool, error) {
	from := rng.Intn(accounts)
	to := rng.Intn(accounts - 1)
	if to >= from {
		to++
	}
	fk, tk := txnAcctKey(from), txnAcctKey(to)
	fv, fver, _, err := s.GetVersion(fk)
	if err != nil {
		return false, false, err
	}
	tv, tver, _, err := s.GetVersion(tk)
	if err != nil {
		return false, false, err
	}
	amount := 1 + uint64(rng.Intn(int(initial/10+1)))
	if fv < amount {
		return false, false, nil
	}
	res, err := s.CommitTxn(
		[]index.TxnRead{{Key: fk, Ver: fver}, {Key: tk, Ver: tver}},
		[]index.TxnWrite{
			{Op: index.TxnPut, Key: fk, Value: fv - amount},
			{Op: index.TxnPut, Key: tk, Value: tv + amount},
		})
	if err != nil {
		return false, false, err
	}
	return res.Status == index.TxnCommitted, res.Status == index.TxnConflict, nil
}

// txnSeedAccounts populates accounts with initial each through chunked
// write-only transactions on one session.
func txnSeedAccounts(s index.TxnSession, accounts int, initial uint64) error {
	const chunk = 1024
	for at := 0; at < accounts; at += chunk {
		end := at + chunk
		if end > accounts {
			end = accounts
		}
		writes := make([]index.TxnWrite, 0, end-at)
		for i := at; i < end; i++ {
			writes = append(writes, index.TxnWrite{Op: index.TxnPut, Key: txnAcctKey(i), Value: initial})
		}
		res, err := s.CommitTxn(nil, writes)
		if err != nil {
			return err
		}
		if res.Status != index.TxnCommitted {
			return fmt.Errorf("seeding txn conflicted with nothing else running")
		}
	}
	return nil
}

// txnSweepSum reads every account balance (non-transactionally; call
// only when the workers are quiescent).
func txnSweepSum(s index.TxnSession, accounts int) (uint64, error) {
	var sum uint64
	for i := 0; i < accounts; i++ {
		v, _, _, err := s.GetVersion(txnAcctKey(i))
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}

// TxnGate measures the OCC transaction engine (internal/txn) end to end
// and protects its hot path with a committed baseline. Three in-process
// phases run over a volatile tree — low-contention bank transfers (the
// gated commit throughput), a 64-account hot spot whose full history
// feeds the serializability checker, and read-only audits — followed by
// transfers through OpTxn frames against a bwproto server over loopback
// TCP. Money conservation after every phase, a clean serialization
// graph, and zero infrastructure errors are unconditional; with a
// committed baseline (TXN_GATE_BASELINE, default bench/BENCH_txn.json)
// the gate also fails when low-contention commit throughput drops more
// than TXN_GATE_TOLERANCE (default 0.35 — conflict scheduling is
// noisier than plain reads) below baseline. The report goes to
// BENCH_txn.json (TXN_GATE_OUT).
func TxnGate(w io.Writer, sc Scale) {
	const initial = uint64(1000)
	accountsLow := sc.Keys / 20
	if accountsLow < 10_000 {
		accountsLow = 10_000
	}
	const accountsHot = 64
	opsLow := sc.Ops / 10
	if opsLow < 100_000 {
		opsLow = 100_000
	}
	opsHot := opsLow / 2
	opsRO := opsLow / 4
	wireOps := opsLow / 20

	var rep TxnGateFile
	rep.Config.AccountsLow = accountsLow
	rep.Config.AccountsHot = accountsHot
	rep.Config.Initial = initial
	rep.Config.Threads = sc.Threads
	rep.Config.Seed = sc.Seed

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(w, "txn: FAIL "+format+"\n", args...)
	}

	st := txn.NewForTree(bwtree.New(bwtree.DefaultOptions()))
	seedSess := st.NewSession()
	if err := txnSeedAccounts(seedSess, accountsLow, initial); err != nil {
		seedSess.Release()
		fail("seeding: %v", err)
		gateFailures.Add(1)
		return
	}
	seedSess.Release()

	checkSum := func(phase string, s index.TxnSession, accounts int) {
		want := uint64(accounts) * initial
		got, err := txnSweepSum(s, accounts)
		if err != nil {
			fail("%s: balance sweep: %v", phase, err)
		} else if got != want {
			fail("%s: total balance %d, want %d (commit atomicity broken)", phase, got, want)
		}
	}

	// Phase 1: low contention — the gated throughput.
	low, _, err := txnGatePhase(opsLow, sc.Threads, phaseSeed(sc.Seed, 10),
		func() index.TxnSession { return st.NewSession() },
		func(s index.TxnSession, rng *rand.Rand) (bool, bool, error) {
			return txnTransfer(s, rng, accountsLow, initial)
		})
	if err != nil {
		fail("transfer-low: %v", err)
	}
	rep.TransferLow = low
	ss := st.NewSession()
	checkSum("transfer-low", ss, accountsLow)
	ss.Release()

	// Phase 2: hot spot on its own store, every commit recorded for the
	// serialization-graph check.
	hotStore := txn.NewForTree(bwtree.New(bwtree.DefaultOptions()))
	chk := histcheck.NewTxnChecker()
	hotSeed := chk.Wrap(hotStore.NewSession())
	if err := txnSeedAccounts(hotSeed, accountsHot, initial); err != nil {
		fail("hot seeding: %v", err)
	}
	hotSeed.Release()
	hot, _, err := txnGatePhase(opsHot, sc.Threads, phaseSeed(sc.Seed, 11),
		func() index.TxnSession { return chk.Wrap(hotStore.NewSession()) },
		func(s index.TxnSession, rng *rand.Rand) (bool, bool, error) {
			return txnTransfer(s, rng, accountsHot, initial)
		})
	if err != nil {
		fail("transfer-hot: %v", err)
	}
	rep.TransferHot = hot
	hs := hotStore.NewSession()
	checkSum("transfer-hot", hs, accountsHot)
	hs.Release()
	if violations := chk.Check(); len(violations) > 0 {
		for i, v := range violations {
			if i >= 5 {
				fail("serializability: ... and %d more violations", len(violations)-i)
				break
			}
			fail("serializability: %s: %s", v.Kind, v.Msg)
		}
	} else {
		fmt.Fprintf(w, "txn: serialization graph over %d hot-spot commits is acyclic\n", hot.Commits)
	}

	// Phase 3: read-only audits over the low-contention store.
	ro, _, err := txnGatePhase(opsRO, sc.Threads, phaseSeed(sc.Seed, 12),
		func() index.TxnSession { return st.NewSession() },
		func(s index.TxnSession, rng *rand.Rand) (bool, bool, error) {
			reads := make([]index.TxnRead, 0, 8)
			for i := 0; i < 8; i++ {
				k := txnAcctKey(rng.Intn(accountsLow))
				_, ver, _, err := s.GetVersion(k)
				if err != nil {
					return false, false, err
				}
				reads = append(reads, index.TxnRead{Key: k, Ver: ver})
			}
			res, err := s.CommitTxn(reads, nil)
			if err != nil {
				return false, false, err
			}
			return res.Status == index.TxnCommitted, res.Status == index.TxnConflict, nil
		})
	if err != nil {
		fail("read-only: %v", err)
	}
	rep.ReadOnly = ro

	est := st.Stats()
	rep.Engine.Commits = est.Commits
	rep.Engine.Conflicts = est.Conflicts
	rep.Engine.ReadOnly = est.ReadOnly
	rep.Engine.ValidateP99us = est.Validate.Quantile(0.99) / 1e3

	// Phase 4: the same transfers through OpTxn frames over loopback.
	rep.Wire = txnGateWire(w, sc, wireOps, initial, fail)

	out := os.Getenv("TXN_GATE_OUT")
	if out == "" {
		out = "BENCH_txn.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "txn: cannot write %s: %v\n", out, err)
		}
	}

	tbl := NewTable(fmt.Sprintf("OCC transactions: %d workers, %d/%d accounts",
		sc.Threads, accountsLow, accountsHot), "attempts", "commits", "conflicts", "Mtxn/s", "p50 µs", "p99 µs")
	for _, row := range []struct {
		name string
		pt   TxnGatePoint
	}{{"transfer (low contention)", rep.TransferLow}, {"transfer (64-acct hot spot)", rep.TransferHot},
		{"read-only audit (8 keys)", rep.ReadOnly}, {"transfer over loopback TCP", rep.Wire}} {
		tbl.AddRow(row.name, fmt.Sprint(row.pt.Attempts), fmt.Sprint(row.pt.Commits),
			fmt.Sprint(row.pt.Conflicts), f3(row.pt.Mcommits),
			fmt.Sprintf("%.2f", row.pt.P50us), fmt.Sprintf("%.2f", row.pt.P99us))
	}
	tbl.Note("Each transfer is 2 versioned reads + a validated 2-write commit; latencies are per attempt.")
	tbl.Note("Report written to %s.", out)
	tbl.WriteTo(w)

	baselinePath := os.Getenv("TXN_GATE_BASELINE")
	if baselinePath == "" {
		baselinePath = "bench/BENCH_txn.json"
	}
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base TxnGateFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(w, "txn: unreadable baseline %s: %v\n", baselinePath, err)
		} else {
			tol := envFloat("TXN_GATE_TOLERANCE", 0.35)
			if floor := base.TransferLow.Mcommits * (1 - tol); rep.TransferLow.Mcommits < floor {
				fail("low-contention commit rate %.3f Mtxn/s under baseline floor %.3f (baseline %.3f, tolerance %.0f%%)",
					rep.TransferLow.Mcommits, floor, base.TransferLow.Mcommits, tol*100)
			} else {
				fmt.Fprintf(w, "txn: within tolerance of baseline %s (transfer-low %.3f vs %.3f Mtxn/s)\n",
					baselinePath, rep.TransferLow.Mcommits, base.TransferLow.Mcommits)
			}
		}
	} else {
		fmt.Fprintf(w, "txn: no baseline at %s; correctness checks only\n", baselinePath)
	}
	if failed {
		gateFailures.Add(1)
	}
}

// txnGateWire runs the loopback-TCP transfer phase against a fresh
// sharded store fronted by a bwproto server: one connection per worker,
// 2-key transfers as OpTxn frames.
func txnGateWire(w io.Writer, sc Scale, ops int, initial uint64, fail func(string, ...any)) TxnGatePoint {
	const accounts = 4096
	shards := sc.Threads
	if shards < 1 {
		shards = 1
	}
	if shards > maxServerShards {
		shards = maxServerShards
	}
	router, err := shard.NewRouter("hash", shards)
	if err != nil {
		fail("wire: %v", err)
		return TxnGatePoint{}
	}
	st, err := shard.Open(shard.Options{Shards: shards, Router: router, Tree: bwtree.DefaultOptions()})
	if err != nil {
		fail("wire: %v", err)
		return TxnGatePoint{}
	}
	defer st.Close()
	srv := bwproto.NewServer(st)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		fail("wire: listen: %v", err)
		return TxnGatePoint{}
	}
	defer srv.Shutdown(2 * time.Second)
	ix, err := bwproto.DialIndex(srv.Addr())
	if err != nil {
		fail("wire: dial: %v", err)
		return TxnGatePoint{}
	}
	defer ix.Close()

	seed := ix.NewTxnSession()
	err = txnSeedAccounts(seed, accounts, initial)
	seed.Release()
	if err != nil {
		fail("wire: seeding: %v", err)
		return TxnGatePoint{}
	}

	pt, _, err := txnGatePhase(ops, sc.Threads, phaseSeed(sc.Seed, 13),
		func() index.TxnSession { return ix.NewTxnSession() },
		func(s index.TxnSession, rng *rand.Rand) (bool, bool, error) {
			return txnTransfer(s, rng, accounts, initial)
		})
	if err != nil {
		fail("wire: %v", err)
	}
	sum := ix.NewTxnSession()
	got, err := txnSweepSum(sum, accounts)
	sum.Release()
	if err != nil {
		fail("wire: balance sweep: %v", err)
	} else if want := uint64(accounts) * initial; got != want {
		fail("wire: total balance %d, want %d", got, want)
	}
	if ss := srv.Stats(); ss.ProtoErrors != 0 {
		fail("wire: %d protocol errors during the run", ss.ProtoErrors)
	}
	return pt
}
