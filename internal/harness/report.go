package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table renders aligned text tables in the style of the paper's figures:
// one row per configuration, one column per index or variant.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
	notes   []string
}

type tableRow struct {
	label string
	cells []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// AddFloats appends a row of numeric cells rendered with %.3f.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = fmt.Sprintf("%.3f", v)
	}
	t.AddRow(label, cells...)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("=", len(t.Title)))
	b.WriteByte('\n')

	widths := make([]int, len(t.Columns)+1)
	for _, r := range t.rows {
		if len(r.label) > widths[0] {
			widths[0] = len(r.label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r.cells {
			if i+1 < len(widths) && len(c) > widths[i+1] {
				widths[i+1] = len(c)
			}
		}
	}

	writeCells := func(label string, cells []string) {
		fmt.Fprintf(&b, "%-*s", widths[0], label)
		for i, c := range cells {
			w := 12
			if i+1 < len(widths) {
				w = widths[i+1]
			}
			fmt.Fprintf(&b, "  %*s", w, c)
		}
		b.WriteByte('\n')
	}
	writeCells("", t.Columns)
	total := widths[0]
	for _, w := range widths[1:] {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeCells(r.label, r.cells)
	}
	for _, n := range t.notes {
		b.WriteString("  * ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}
