package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ycsb"
)

// ObsOverheadFile is the obs-overhead experiment's JSON report.
type ObsOverheadFile struct {
	Config struct {
		Bench     string `json:"bench"`
		BenchTime string `json:"benchtime"`
		Rounds    int    `json:"rounds"`
		Keys      int    `json:"keys"`
		Ops       int    `json:"ops"`
		Seed      uint64 `json:"seed"`
	} `json:"config"`
	// Cross-build comparison: the same benchmark binary built normally
	// (probes present, deep tracing disabled at runtime) and with -tags
	// notrace (probes constant-folded away). DisabledOverhead is the
	// best-of-rounds ratio minus one: what the nil/flag checks cost.
	TraceNSOp        float64 `json:"trace_ns_op"`
	NotraceNSOp      float64 `json:"notrace_ns_op"`
	DisabledOverhead float64 `json:"disabled_overhead"`
	// In-process comparison: YCSB-C read throughput with deep tracing
	// off versus sampling 1-in-64 with the flight recorder on.
	DeepOffMops     float64 `json:"deep_off_mops"`
	DeepOnMops      float64 `json:"deep_on_mops"`
	EnabledOverhead float64 `json:"enabled_overhead"`
}

// obsBenchRE extracts ns/op from `go test -bench` output.
var obsBenchRE = regexp.MustCompile(`BenchmarkYCSBCHotPath\S*\s+\d+\s+([0-9.]+) ns/op`)

// ObsOverhead is the observability-overhead gate. It proves the deep
// tracing probes honor their two-regime contract:
//
//   - Disabled regime (the gate): BenchmarkYCSBCHotPath is compiled both
//     normally and with -tags notrace (which constant-folds every probe
//     away), the two binaries run alternately BENCH_OBS_ROUNDS times
//     (default 5), and the per-build minima are compared. The minimum is
//     the noise-robust statistic here: shared-machine interference only
//     ever adds time, so the best round is the closest view of each
//     build's true cost. The normal build must be within
//     BENCH_OBS_TOLERANCE (default 0.02, i.e. <2%) of the notrace build
//     — a probe that leaks real work into the disabled path fails the
//     gate.
//   - Enabled regime (reported, loosely gated): in-process YCSB-C read
//     throughput with deep tracing off versus sampling 1-in-64 with the
//     flight recorder on must stay within BENCH_OBS_ENABLED_TOLERANCE
//     (default 0.25).
//
// The report is written to BENCH_obs.json (override with BENCH_OBS_OUT).
// The cross-build half needs the go toolchain and a module checkout; when
// either is missing it is skipped with a note rather than failed, so the
// in-process half still runs everywhere.
func ObsOverhead(w io.Writer, sc Scale) {
	var rep ObsOverheadFile
	rounds := int(envFloat("BENCH_OBS_ROUNDS", 5))
	benchtime := os.Getenv("BENCH_OBS_BENCHTIME")
	if benchtime == "" {
		benchtime = "300000x"
	}
	rep.Config.Bench = "BenchmarkYCSBCHotPath"
	rep.Config.BenchTime = benchtime
	rep.Config.Rounds = rounds
	rep.Config.Keys = sc.Keys
	rep.Config.Ops = sc.Ops
	rep.Config.Seed = sc.Seed

	failed := false

	// Cross-build half.
	if root, err := moduleRoot(); err != nil {
		fmt.Fprintf(w, "obs-overhead: skipping cross-build gate: %v\n", err)
	} else if traceNS, notraceNS, err := crossBuildNSOp(root, benchtime, rounds); err != nil {
		fmt.Fprintf(w, "obs-overhead: skipping cross-build gate: %v\n", err)
	} else {
		rep.TraceNSOp = traceNS
		rep.NotraceNSOp = notraceNS
		rep.DisabledOverhead = traceNS/notraceNS - 1
		tol := envFloat("BENCH_OBS_TOLERANCE", 0.02)
		if rep.DisabledOverhead > tol {
			failed = true
			fmt.Fprintf(w, "obs-overhead: FAIL disabled probes cost %.2f%% (> %.1f%%): %.1f ns/op vs %.1f ns/op notrace\n",
				rep.DisabledOverhead*100, tol*100, traceNS, notraceNS)
		} else {
			fmt.Fprintf(w, "obs-overhead: disabled probes cost %.2f%% (<= %.1f%%): %.1f ns/op vs %.1f ns/op notrace\n",
				rep.DisabledOverhead*100, tol*100, traceNS, notraceNS)
		}
	}

	// In-process half: deep tracing off vs sampling with flight recorder,
	// alternated like the cross-build half, best round of each.
	measure := func(opts core.Options) float64 {
		idx := index.NewBwTreeWith("obs", opts)
		defer idx.Close()
		ks := ycsb.NewKeySet(ycsb.RandInt, sc.Keys)
		RunPhase(idx, ks, ycsb.InsertOnly, sc.Keys, sc.Threads, phaseSeed(sc.Seed, 0))
		dur := RunPhase(idx, ks, ycsb.ReadOnly, sc.Ops, sc.Threads, phaseSeed(sc.Seed, 1))
		return mops(sc.Ops, dur)
	}
	off := core.DefaultOptions()
	on := core.DefaultOptions()
	on.PhaseSampleEvery = 64
	on.PhaseTraceBuffer = 4096
	on.FlightRecorderSize = 512
	inRounds := int(envFloat("BENCH_OBS_INPROC_ROUNDS", 3))
	for i := 0; i < inRounds; i++ {
		if v := measure(off); v > rep.DeepOffMops {
			rep.DeepOffMops = v
		}
		if v := measure(on); v > rep.DeepOnMops {
			rep.DeepOnMops = v
		}
	}
	if rep.DeepOffMops > 0 {
		rep.EnabledOverhead = rep.DeepOffMops/rep.DeepOnMops - 1
	}
	enTol := envFloat("BENCH_OBS_ENABLED_TOLERANCE", 0.25)
	if rep.EnabledOverhead > enTol {
		failed = true
		fmt.Fprintf(w, "obs-overhead: FAIL sampling 1-in-64 cost %.1f%% (> %.0f%%): %.3f vs %.3f Mops/s\n",
			rep.EnabledOverhead*100, enTol*100, rep.DeepOnMops, rep.DeepOffMops)
	} else {
		fmt.Fprintf(w, "obs-overhead: sampling 1-in-64 cost %.1f%% (<= %.0f%%): %.3f vs %.3f Mops/s\n",
			rep.EnabledOverhead*100, enTol*100, rep.DeepOnMops, rep.DeepOffMops)
	}

	tbl := NewTable("Obs overhead: deep-tracing probes on the YCSB-C hot path",
		"with probes", "without", "cost")
	if rep.NotraceNSOp > 0 {
		tbl.AddRow("disabled regime (ns/op, best of rounds)",
			fmt.Sprintf("%.1f", rep.TraceNSOp), fmt.Sprintf("%.1f", rep.NotraceNSOp),
			fmt.Sprintf("%+.2f%%", rep.DisabledOverhead*100))
	}
	tbl.AddRow("enabled 1-in-64 + flight (Mops/s, best of rounds)",
		f3(rep.DeepOnMops), f3(rep.DeepOffMops),
		fmt.Sprintf("%+.1f%%", rep.EnabledOverhead*100))
	tbl.Note("Disabled regime compares the normal build (probes compiled in, tracing off) against -tags notrace.")
	tbl.WriteTo(w)

	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		out = "BENCH_obs.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "obs-overhead: cannot write %s: %v\n", out, err)
		} else {
			fmt.Fprintf(w, "obs-overhead: report written to %s\n", out)
		}
	}
	if failed {
		gateFailures.Add(1)
	}
}

// crossBuildNSOp compiles the core test binary with and without -tags
// notrace and runs them alternately, returning the minimum ns/op of
// each. Alternation cancels slow machine-wide drift (thermal, noisy
// neighbors) that back-to-back batches would attribute to one build.
func crossBuildNSOp(root, benchtime string, rounds int) (traceNS, notraceNS float64, err error) {
	tmp, err := os.MkdirTemp("", "obsgate")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(tmp)

	traceBin := filepath.Join(tmp, "core_trace.test")
	notraceBin := filepath.Join(tmp, "core_notrace.test")
	for _, b := range []struct {
		out  string
		args []string
	}{
		{traceBin, []string{"test", "-c", "-o", traceBin, "./internal/core"}},
		{notraceBin, []string{"test", "-c", "-tags", "notrace", "-o", notraceBin, "./internal/core"}},
	} {
		cmd := exec.Command("go", b.args...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			return 0, 0, fmt.Errorf("go %v: %v\n%s", b.args, err, out)
		}
	}

	runOne := func(bin string) (float64, error) {
		cmd := exec.Command(bin, "-test.run=^$", "-test.bench=BenchmarkYCSBCHotPath", "-test.benchtime="+benchtime)
		cmd.Dir = root
		out, err := cmd.CombinedOutput()
		if err != nil {
			return 0, fmt.Errorf("%s: %v\n%s", filepath.Base(bin), err, out)
		}
		m := obsBenchRE.FindSubmatch(out)
		if m == nil {
			return 0, fmt.Errorf("%s: no benchmark result in output:\n%s", filepath.Base(bin), out)
		}
		return strconv.ParseFloat(string(m[1]), 64)
	}

	var traceRuns, notraceRuns []float64
	for i := 0; i < rounds; i++ {
		t, err := runOne(traceBin)
		if err != nil {
			return 0, 0, err
		}
		n, err := runOne(notraceBin)
		if err != nil {
			return 0, 0, err
		}
		traceRuns = append(traceRuns, t)
		notraceRuns = append(notraceRuns, n)
	}
	return minOf(traceRuns), minOf(notraceRuns), nil
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// moduleRoot locates the directory holding go.mod, walking up from the
// working directory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
