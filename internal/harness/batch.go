package harness

import (
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// RunPhaseBatch is RunPhaseLat driving sessions through the
// index.BatchSession interface: each worker accumulates operations from
// its stream into a window of batch ops, groups the window's reads into
// one LookupBatch call and its inserts into one InsertBatch call, and
// runs updates and scans (which have no batched form) singly in stream
// order. Indexes without a native batch path go through the per-op loop
// adapter, so the same phase works for all six indexes.
//
// When lat is non-nil, each batch call is recorded once under the
// obs.OpBatch class and single ops under their own classes. Per-op
// latencies inside a native batch are the index's own business (the
// Bw-Tree records them internally when built with LatencyHistograms).
func RunPhaseBatch(idx index.Index, ks *ycsb.KeySet, w ycsb.Workload, ops, threads int, seed uint64, batch int, lat *obs.LatencySnapshot) time.Duration {
	if batch <= 1 {
		return RunPhaseLat(idx, ks, w, ops, threads, seed, lat)
	}
	perWorker := ops / threads
	extra := ops % threads
	recs := make([]*obs.Recorder, threads)
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		n := perWorker
		if t < extra {
			n++
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			s := index.AsBatch(idx.NewSession())
			defer s.Release()
			stream := ycsb.NewStream(w, ks, worker, phaseSeed(seed, uint64(worker)))
			var rec *obs.Recorder
			if lat != nil {
				rec = &obs.Recorder{}
				recs[worker] = rec
			}
			rkeys := make([][]byte, 0, batch)
			ikeys := make([][]byte, 0, batch)
			ivals := make([]uint64, 0, batch)
			var ok []bool
			flush := func() {
				if len(ikeys) > 0 {
					t0 := int64(0)
					if rec != nil {
						t0 = obs.Now()
					}
					ok = s.InsertBatch(ikeys, ivals, ok)
					if rec != nil {
						rec.Record(obs.OpBatch, obs.Now()-t0)
					}
					ikeys, ivals = ikeys[:0], ivals[:0]
				}
				if len(rkeys) > 0 {
					t0 := int64(0)
					if rec != nil {
						t0 = obs.Now()
					}
					s.LookupBatch(rkeys, visitBatchNop)
					if rec != nil {
						rec.Record(obs.OpBatch, obs.Now()-t0)
					}
					rkeys = rkeys[:0]
				}
			}
			for i := 0; i < n; i++ {
				op := stream.Next()
				switch op.Kind {
				case ycsb.OpRead:
					// Stream keys are stable slices (population keys or fresh
					// allocations), so deferring them to the flush is safe.
					rkeys = append(rkeys, op.Key)
				case ycsb.OpInsert:
					ikeys = append(ikeys, op.Key)
					ivals = append(ivals, op.Value)
				case ycsb.OpUpdate:
					t0 := int64(0)
					if rec != nil {
						t0 = obs.Now()
					}
					s.Update(op.Key, op.Value)
					if rec != nil {
						rec.Record(obs.OpUpdate, obs.Now()-t0)
					}
				case ycsb.OpScan:
					t0 := int64(0)
					if rec != nil {
						t0 = obs.Now()
					}
					s.Scan(op.Key, op.ScanLen, visitNop)
					if rec != nil {
						rec.Record(obs.OpScan, obs.Now()-t0)
					}
				}
				if len(rkeys)+len(ikeys) >= batch {
					flush()
				}
			}
			flush()
		}(t, n)
	}
	wg.Wait()
	dur := time.Since(start)
	if lat != nil {
		for _, rec := range recs {
			if rec != nil {
				rec.AddTo(lat)
			}
		}
	}
	return dur
}

func visitBatchNop(i int, vals []uint64) {}
