package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ycsb"
)

// FlatNodeFile is the report the flatnode experiment writes and the
// committed baseline it compares against: the same tree measured with
// the flat arena base-node layout and with the slice layout.
type FlatNodeFile struct {
	Config struct {
		Workload string `json:"workload"`
		KeyType  string `json:"keytype"`
		Keys     int    `json:"keys"`
		Ops      int    `json:"ops"`
		Threads  int    `json:"threads"`
		Seed     uint64 `json:"seed"`
	} `json:"config"`
	Flat  FlatNodePoint `json:"flat"`
	Slice FlatNodePoint `json:"slice"`
	// LookupSpeedup is Flat.LookupMops / Slice.LookupMops — the gated
	// ratio. ReadMostlySpeedup and ScanSpeedup are the same ratio for the
	// mixed phases (reported, not gated: the mixes spend much of their
	// time in delta-chain replay and update appends, which cost the same
	// under both layouts and dilute the base-probe difference).
	LookupSpeedup     float64 `json:"lookup_speedup"`
	ReadMostlySpeedup float64 `json:"read_mostly_speedup"`
	ScanSpeedup       float64 `json:"scan_speedup"`
}

// FlatNodePoint is one measured layout.
type FlatNodePoint struct {
	// ReadMops is read-mostly (YCSB-B, uniform requests) throughput;
	// ScanMops is scan-heavy (YCSB-E) throughput.
	ReadMops float64 `json:"read_mops"`
	ScanMops float64 `json:"scan_mops"`
	// LookupMops is single-threaded unique-key Lookup throughput over a
	// fully consolidated tree — the pure base-probe regime the layout
	// targets, with no delta-chain replay diluting it. LookupAllocsPerOp/
	// LookupBytesPerOp are heap-allocation deltas per op over the same
	// probe loop.
	LookupMops        float64 `json:"lookup_mops"`
	LookupAllocsPerOp float64 `json:"lookup_allocs_per_op"`
	LookupBytesPerOp  float64 `json:"lookup_bytes_per_op"`
	// Structure footprint after the read phase (see StructureStats).
	FlatBases         int     `json:"flat_bases"`
	ArenaBytes        int64   `json:"arena_bytes"`
	KeyBytes          int64   `json:"key_bytes"`
	GCPtrsPerLeaf     float64 `json:"gc_ptrs_per_leaf"`
	LeafBytesPerEntry float64 `json:"leaf_bytes_per_entry"`
}

// runReadMostly drives the read-mostly mix (95% point lookups, 5%
// updates — YCSB-B) with a *uniform* request distribution (YCSB's
// requestdistribution=uniform knob). The layout under test changes how
// base nodes are probed from memory; under Zipfian skew most requests
// hit a handful of cache-resident hot nodes and the phase degenerates
// into an L1 benchmark of neither layout. Uniform requests keep the
// probe stream cold — the same regime the paper's Rand-Int read
// workloads measure.
func runReadMostly(idx index.Index, ks *ycsb.KeySet, ops, threads int, seed uint64) time.Duration {
	perWorker := ops / threads
	extra := ops % threads
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < threads; t++ {
		n := perWorker
		if t < extra {
			n++
		}
		wg.Add(1)
		go func(worker, n int) {
			defer wg.Done()
			s := idx.NewSession()
			defer s.Release()
			rng := ycsb.NewRand(phaseSeed(seed, uint64(worker)))
			var out []uint64
			for i := 0; i < n; i++ {
				k := ks.Keys[rng.Intn(len(ks.Keys))]
				if rng.Intn(100) < 5 {
					s.Update(k, uint64(i))
				} else {
					out = s.Lookup(k, out[:0])
				}
			}
		}(t, n)
	}
	wg.Wait()
	return time.Since(start)
}

// FlatNode is the flat base-node layout gate: on Email keys it measures,
// under the flat arena layout and the slice layout in one process, (a)
// single-threaded unique-key Lookup throughput and allocations over a
// fully consolidated tree — the pure base-probe regime the layout
// changes — and (b) the read-mostly (YCSB-B, uniform requests — see
// runReadMostly) and scan (YCSB-E) mixes for context. It writes the
// result to BENCH_flatnode.json
// (override with FLATNODE_GATE_OUT), and fails the gate when
//
//   - the flat layout is not at least FLATNODE_GATE_MIN_SPEEDUP (default
//     1.15) times the slice layout's consolidated Lookup throughput
//     measured in the same process (the mixed-phase ratios are reported,
//     not gated: delta-chain replay and update appends cost the same
//     under both layouts and dilute them toward 1), or
//   - flat unique-key Lookup allocates (more than FLATNODE_GATE_MAX_ALLOCS
//     allocs/op, default 0.01), or
//   - a committed baseline exists (FLATNODE_GATE_BASELINE, default
//     bench/BENCH_flatnode.json) and flat Lookup throughput dropped
//     more than FLATNODE_GATE_TOLERANCE (default 0.25) below it.
//
// Email keys are the interesting case for a layout experiment: variable
// string-like keys with long shared prefixes, where the slice layout
// pays a pointer chase per probe and the flat layout skips the common
// prefix entirely. The in-process flat/slice ratio is machine-
// independent; the baseline comparison is the noise-tolerant tripwire.
func FlatNode(w io.Writer, sc Scale) {
	var rep FlatNodeFile
	rep.Config.Workload = ycsb.ReadMostly.String() + " (uniform)"
	rep.Config.KeyType = ycsb.Email.String()
	rep.Config.Keys = sc.Keys
	rep.Config.Ops = sc.Ops
	rep.Config.Threads = sc.Threads
	rep.Config.Seed = sc.Seed

	flatOpts := core.DefaultOptions()
	flatOpts.FlatBaseNodes = true
	sliceOpts := core.DefaultOptions()
	sliceOpts.FlatBaseNodes = false

	// Measure with the collector active: the layout's GC cost — tracing
	// one pointer per key versus three per node — is part of what the
	// experiment exists to show, and at the default GOGC the 5% update
	// churn never triggers a collection mid-phase, silently excluding
	// mark work from both sides. FLATNODE_GC_PERCENT (default 20, 0
	// disables the override) pins GC pacing identically for both layouts.
	if pct := int(envFloat("FLATNODE_GC_PERCENT", 20)); pct > 0 {
		defer debug.SetGCPercent(debug.SetGCPercent(pct))
	}

	scanOps := sc.Ops / 8 // scans visit ~48 pairs each
	if scanOps < 1 {
		scanOps = 1
	}

	// Both trees are built up front and stay resident for the whole
	// experiment, so every measured phase below runs against the same
	// live heap and the same machine conditions.
	type side struct {
		idx  index.Index
		tree *core.Tree
		sess *core.Session
		buf  []uint64
		pt   FlatNodePoint
	}
	ks := ycsb.NewKeySet(ycsb.Email, sc.Keys)
	build := func(label string, opts core.Options) *side {
		s := &side{idx: index.NewBwTreeWith(label, opts)}
		RunPhase(s.idx, ks, ycsb.InsertOnly, sc.Keys, sc.Threads, phaseSeed(sc.Seed, 0))
		s.tree = s.idx.(index.BwBacked).Tree()
		s.tree.ConsolidateAll()
		s.buf = make([]uint64, 0, 8)
		return s
	}
	slice := build("slice", sliceOpts)
	flat := build("flat", flatOpts)
	defer slice.idx.Close()
	defer flat.idx.Close()

	// Mixed phases, reported for context. Consolidating first makes the
	// phase probe base nodes rather than the load phase's leftover delta
	// chains; the 5% update stream then regrows chains the same way under
	// both layouts, and a final consolidation restores the pure-base state
	// the lookup duel below wants.
	mixes := func(s *side) {
		dur := runReadMostly(s.idx, ks, sc.Ops, sc.Threads, phaseSeed(sc.Seed, 1))
		s.pt.ReadMops = mops(sc.Ops, dur)
		dur = RunPhase(s.idx, ks, ycsb.ScanInsert, scanOps, sc.Threads, phaseSeed(sc.Seed, 2))
		s.pt.ScanMops = mops(scanOps, dur)
		s.tree.ConsolidateAll()
	}
	mixes(slice)
	mixes(flat)

	// Quiescent single-threaded Lookup allocation count per layout,
	// probing loaded keys with a reused value buffer. The keyset is
	// generated in random order, so walking it sequentially is a uniform
	// probe stream over the sorted tree.
	allocs := func(s *side) {
		s.sess = s.tree.NewSession()
		const probes = 100_000
		for i := 0; i < 1024; i++ { // warm up lazy paths before counting
			s.buf = s.sess.Lookup(ks.Keys[i%len(ks.Keys)], s.buf[:0])
		}
		runtime.GC()
		var mem0, mem1 runtime.MemStats
		runtime.ReadMemStats(&mem0)
		for i := 0; i < probes; i++ {
			s.buf = s.sess.Lookup(ks.Keys[i%len(ks.Keys)], s.buf[:0])
		}
		runtime.ReadMemStats(&mem1)
		s.pt.LookupAllocsPerOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(probes)
		s.pt.LookupBytesPerOp = float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(probes)
	}
	allocs(slice)
	allocs(flat)

	// The gated measurement: an interleaved lookup duel. The two layouts
	// alternate short probe segments over identical key sequences, so a
	// shared machine's slow minutes land on both sides about equally
	// instead of on whichever layout happened to be running — cross-phase
	// drift is what made a measure-one-then-the-other design produce
	// ratios swinging ±15% between runs of identical code.
	probes := sc.Ops
	if probes > 500_000 {
		probes = 500_000
	}
	segOps := probes / 10
	if segOps < 1 {
		segOps = 1
	}
	segments := probes / segOps
	var sliceDur, flatDur time.Duration
	segment := func(s *side, seg int) time.Duration {
		t0 := time.Now()
		for j := 0; j < segOps; j++ {
			s.buf = s.sess.Lookup(ks.Keys[(seg*segOps+j)%len(ks.Keys)], s.buf[:0])
		}
		return time.Since(t0)
	}
	for seg := 0; seg < segments; seg++ {
		sliceDur += segment(slice, seg)
		flatDur += segment(flat, seg)
	}
	slice.sess.Release()
	flat.sess.Release()
	slice.pt.LookupMops = mops(segments*segOps, sliceDur)
	flat.pt.LookupMops = mops(segments*segOps, flatDur)

	footprint := func(s *side) {
		st := s.tree.StructureStats()
		s.pt.FlatBases = st.FlatBases
		s.pt.ArenaBytes = st.ArenaBytes
		s.pt.KeyBytes = st.KeyBytes
		s.pt.GCPtrsPerLeaf = st.GCPtrsPerLeaf
		s.pt.LeafBytesPerEntry = st.LeafBytesPerEntry
	}
	footprint(slice)
	footprint(flat)

	rep.Slice, rep.Flat = slice.pt, flat.pt
	if rep.Slice.LookupMops > 0 {
		rep.LookupSpeedup = rep.Flat.LookupMops / rep.Slice.LookupMops
	}
	if rep.Slice.ReadMops > 0 {
		rep.ReadMostlySpeedup = rep.Flat.ReadMops / rep.Slice.ReadMops
	}
	if rep.Slice.ScanMops > 0 {
		rep.ScanSpeedup = rep.Flat.ScanMops / rep.Slice.ScanMops
	}

	out := os.Getenv("FLATNODE_GATE_OUT")
	if out == "" {
		out = "BENCH_flatnode.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "flatnode: cannot write %s: %v\n", out, err)
		}
	}

	tbl := NewTable(fmt.Sprintf("Flatnode gate: Email keys, %d threads", sc.Threads),
		"lookup Mops/s", "read Mops/s", "scan Mops/s", "lookup allocs/op",
		"GC ptrs/leaf", "leaf B/entry")
	addRow := func(label string, pt FlatNodePoint) {
		tbl.AddRow(label, f3(pt.LookupMops), f3(pt.ReadMops), f3(pt.ScanMops),
			fmt.Sprintf("%.4f", pt.LookupAllocsPerOp),
			fmt.Sprintf("%.1f", pt.GCPtrsPerLeaf), fmt.Sprintf("%.1f", pt.LeafBytesPerEntry))
	}
	addRow("slice", rep.Slice)
	addRow("flat", rep.Flat)
	tbl.Note("Report written to %s.", out)
	tbl.WriteTo(w)

	failed := false
	minSpeedup := envFloat("FLATNODE_GATE_MIN_SPEEDUP", 1.15)
	if rep.LookupSpeedup < minSpeedup {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL flat/slice lookup speedup %.3fx < required %.2fx\n",
			rep.LookupSpeedup, minSpeedup)
	} else {
		fmt.Fprintf(w, "flatnode: flat/slice lookup speedup %.3fx (>= %.2fx), read-mostly %.3fx, scan %.3fx\n",
			rep.LookupSpeedup, minSpeedup, rep.ReadMostlySpeedup, rep.ScanSpeedup)
	}
	maxAllocs := envFloat("FLATNODE_GATE_MAX_ALLOCS", 0.01)
	if rep.Flat.LookupAllocsPerOp > maxAllocs {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL flat Lookup allocates %.4f allocs/op (max %.4f)\n",
			rep.Flat.LookupAllocsPerOp, maxAllocs)
	} else {
		fmt.Fprintf(w, "flatnode: flat Lookup %.4f allocs/op (max %.4f)\n",
			rep.Flat.LookupAllocsPerOp, maxAllocs)
	}

	baselinePath := os.Getenv("FLATNODE_GATE_BASELINE")
	if baselinePath == "" {
		baselinePath = "bench/BENCH_flatnode.json"
	}
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base FlatNodeFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(w, "flatnode: unreadable baseline %s: %v\n", baselinePath, err)
		} else {
			tol := envFloat("FLATNODE_GATE_TOLERANCE", 0.25)
			if floor := base.Flat.LookupMops * (1 - tol); rep.Flat.LookupMops < floor {
				failed = true
				fmt.Fprintf(w, "flatnode: FAIL flat lookup %.3f Mops/s under baseline floor %.3f (baseline %.3f, tolerance %.0f%%)\n",
					rep.Flat.LookupMops, floor, base.Flat.LookupMops, tol*100)
			} else {
				fmt.Fprintf(w, "flatnode: within tolerance of baseline %s (flat lookup %.3f vs %.3f Mops/s)\n",
					baselinePath, rep.Flat.LookupMops, base.Flat.LookupMops)
			}
		}
	} else {
		fmt.Fprintf(w, "flatnode: no baseline at %s; in-process checks only\n", baselinePath)
	}
	if failed {
		gateFailures.Add(1)
	}
}
