package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/ycsb"
)

// FlatNodeFile is the report the flatnode experiment writes and the
// committed baseline it compares against: the same tree measured with
// the flat arena base-node layout and with the slice layout.
type FlatNodeFile struct {
	Config struct {
		Workload string `json:"workload"`
		KeyType  string `json:"keytype"`
		Keys     int    `json:"keys"`
		Ops      int    `json:"ops"`
		Threads  int    `json:"threads"`
		Seed     uint64 `json:"seed"`
	} `json:"config"`
	Flat  FlatNodePoint `json:"flat"`
	Slice FlatNodePoint `json:"slice"`
	// LookupSpeedup is Flat.LookupMops / Slice.LookupMops — the gated
	// ratio. ReadMostlySpeedup and ScanSpeedup are the same ratio for the
	// mixed phases (reported, not gated: the mixes spend much of their
	// time in delta-chain replay and update appends, which cost the same
	// under both layouts and dilute the base-probe difference).
	LookupSpeedup     float64 `json:"lookup_speedup"`
	ReadMostlySpeedup float64 `json:"read_mostly_speedup"`
	ScanSpeedup       float64 `json:"scan_speedup"`
	// Inner is the inner-node arm: the same duel design on a deliberately
	// deep tree, FlatInnerNodes on vs off (both sides leaf-flat).
	Inner FlatInnerArm `json:"inner"`
}

// FlatInnerArm reports the inner-node layout arm: small leaf nodes force
// several inner levels, so every lookup pays multiple routing probes and
// the inner layout dominates the descent cost.
type FlatInnerArm struct {
	// KeyType names the separator population: Path keys (hierarchical,
	// long shared prefixes within a node) are the regime the prefix-skip
	// arena layout and its suffix-word search plane target.
	KeyType string `json:"keytype"`
	// InnerNodeSize is the arm's inner fanout.
	InnerNodeSize int `json:"inner_node_size"`
	// InnerLevels is the number of inner levels of the measured trees
	// (tree height minus the leaf level); the gate design wants >= 3.
	InnerLevels int            `json:"inner_levels"`
	On          FlatInnerPoint `json:"on"`
	Off         FlatInnerPoint `json:"off"`
	// LookupSpeedup is the On/Off consolidated-lookup speedup, estimated
	// as the median of per-segment-pair duration ratios from the
	// interleaved duel (robust against machine-noise phases and GC-pause
	// outliers; gated >= FLATNODE_GATE_MIN_INNER_SPEEDUP). ScanRatio is
	// On/Off YCSB-E throughput (gated not to regress). GCPtrsReduction
	// is Off/On GC-visible pointers per inner node (gated >=
	// FLATNODE_GATE_MIN_INNER_GC_REDUCTION).
	LookupSpeedup   float64 `json:"lookup_speedup"`
	ScanRatio       float64 `json:"scan_ratio"`
	GCPtrsReduction float64 `json:"gc_ptrs_reduction"`
}

// FlatInnerPoint is one measured inner-layout side (FlatInnerNodes on or
// off; leaf bases are flat on both).
type FlatInnerPoint struct {
	LookupMops        float64 `json:"lookup_mops"`
	LookupAllocsPerOp float64 `json:"lookup_allocs_per_op"`
	ScanMops          float64 `json:"scan_mops"`
	GCPtrsPerInner    float64 `json:"gc_ptrs_per_inner"`
	InnerFlatBases    int     `json:"inner_flat_bases"`
	InnerArenaBytes   int64   `json:"inner_arena_bytes"`
}

// FlatNodePoint is one measured layout.
type FlatNodePoint struct {
	// ReadMops is read-mostly (YCSB-B, uniform requests) throughput;
	// ScanMops is scan-heavy (YCSB-E) throughput.
	ReadMops float64 `json:"read_mops"`
	ScanMops float64 `json:"scan_mops"`
	// LookupMops is single-threaded unique-key Lookup throughput over a
	// fully consolidated tree — the pure base-probe regime the layout
	// targets, with no delta-chain replay diluting it. LookupAllocsPerOp/
	// LookupBytesPerOp are heap-allocation deltas per op over the same
	// probe loop.
	LookupMops        float64 `json:"lookup_mops"`
	LookupAllocsPerOp float64 `json:"lookup_allocs_per_op"`
	LookupBytesPerOp  float64 `json:"lookup_bytes_per_op"`
	// Structure footprint after the read phase (see StructureStats).
	FlatBases         int     `json:"flat_bases"`
	ArenaBytes        int64   `json:"arena_bytes"`
	KeyBytes          int64   `json:"key_bytes"`
	GCPtrsPerLeaf     float64 `json:"gc_ptrs_per_leaf"`
	LeafBytesPerEntry float64 `json:"leaf_bytes_per_entry"`
}

// The read-mostly phase runs ycsb.ReadMostly (YCSB-B) with
// ycsb.DistUniform requests (YCSB's requestdistribution=uniform knob)
// via RunPhaseDist. The layout under test changes how base nodes are
// probed from memory; under Zipfian skew most requests hit a handful of
// cache-resident hot nodes and the phase degenerates into an L1
// benchmark of neither layout. Uniform requests keep the probe stream
// cold — the same regime the paper's Rand-Int read workloads measure.

// FlatNode is the flat base-node layout gate: on Email keys it measures,
// under the flat arena layout and the slice layout in one process, (a)
// single-threaded unique-key Lookup throughput and allocations over a
// fully consolidated tree — the pure base-probe regime the layout
// changes — and (b) the read-mostly (YCSB-B, uniform requests — see the
// note above) and scan (YCSB-E) mixes for context. It writes the
// result to BENCH_flatnode.json
// (override with FLATNODE_GATE_OUT), and fails the gate when
//
//   - the flat layout is not at least FLATNODE_GATE_MIN_SPEEDUP (default
//     1.15) times the slice layout's consolidated Lookup throughput
//     measured in the same process (the mixed-phase ratios are reported,
//     not gated: delta-chain replay and update appends cost the same
//     under both layouts and dilute them toward 1), or
//   - flat unique-key Lookup allocates (more than FLATNODE_GATE_MAX_ALLOCS
//     allocs/op, default 0.01), or
//   - a committed baseline exists (FLATNODE_GATE_BASELINE, default
//     bench/BENCH_flatnode.json) and flat Lookup throughput dropped
//     more than FLATNODE_GATE_TOLERANCE (default 0.25) below it.
//
// Email keys are the interesting case for a layout experiment: variable
// string-like keys with long shared prefixes, where the slice layout
// pays a pointer chase per probe and the flat layout skips the common
// prefix entirely. The in-process flat/slice ratio is machine-
// independent; the baseline comparison is the noise-tolerant tripwire.
func FlatNode(w io.Writer, sc Scale) {
	var rep FlatNodeFile
	rep.Config.Workload = ycsb.ReadMostly.String() + " (uniform)"
	rep.Config.KeyType = ycsb.Email.String()
	rep.Config.Keys = sc.Keys
	rep.Config.Ops = sc.Ops
	rep.Config.Threads = sc.Threads
	rep.Config.Seed = sc.Seed

	flatOpts := core.DefaultOptions()
	flatOpts.FlatBaseNodes = true
	sliceOpts := core.DefaultOptions()
	sliceOpts.FlatBaseNodes = false

	// Measure with the collector active: the layout's GC cost — tracing
	// one pointer per key versus three per node — is part of what the
	// experiment exists to show, and at the default GOGC the 5% update
	// churn never triggers a collection mid-phase, silently excluding
	// mark work from both sides. FLATNODE_GC_PERCENT (default 20, 0
	// disables the override) pins GC pacing identically for both layouts.
	if pct := int(envFloat("FLATNODE_GC_PERCENT", 20)); pct > 0 {
		defer debug.SetGCPercent(debug.SetGCPercent(pct))
	}

	scanOps := sc.Ops / 8 // scans visit ~48 pairs each
	if scanOps < 1 {
		scanOps = 1
	}

	// Both trees are built up front and stay resident for the whole
	// experiment, so every measured phase below runs against the same
	// live heap and the same machine conditions.
	type side struct {
		idx  index.Index
		tree *core.Tree
		sess *core.Session
		buf  []uint64
		pt   FlatNodePoint
	}
	ks := ycsb.NewKeySet(ycsb.Email, sc.Keys)
	build := func(label string, opts core.Options) *side {
		s := &side{idx: index.NewBwTreeWith(label, opts)}
		// The load cursor is a one-shot atomic deal-out; rewind it so every
		// side loads the same population. (Without this, the second build
		// got ExtraKeys instead and the lookup duel probed one side with
		// all hits and the other with all misses.)
		ks.ResetLoad()
		RunPhase(s.idx, ks, ycsb.InsertOnly, sc.Keys, sc.Threads, phaseSeed(sc.Seed, 0))
		s.tree = s.idx.(index.BwBacked).Tree()
		s.tree.ConsolidateAll()
		s.buf = make([]uint64, 0, 8)
		return s
	}
	slice := build("slice", sliceOpts)
	flat := build("flat", flatOpts)
	defer slice.idx.Close()
	defer flat.idx.Close()

	// Mixed phases, reported for context. Consolidating first makes the
	// phase probe base nodes rather than the load phase's leftover delta
	// chains; the 5% update stream then regrows chains the same way under
	// both layouts, and a final consolidation restores the pure-base state
	// the lookup duel below wants.
	mixes := func(s *side) {
		dur := RunPhaseDist(s.idx, ks, ycsb.ReadMostly, ycsb.DistUniform, sc.Ops, sc.Threads, phaseSeed(sc.Seed, 1))
		s.pt.ReadMops = mops(sc.Ops, dur)
		dur = RunPhase(s.idx, ks, ycsb.ScanInsert, scanOps, sc.Threads, phaseSeed(sc.Seed, 2))
		s.pt.ScanMops = mops(scanOps, dur)
		s.tree.ConsolidateAll()
	}
	mixes(slice)
	mixes(flat)

	// Quiescent single-threaded Lookup allocation count per layout,
	// probing loaded keys with a reused value buffer. The keyset is
	// generated in random order, so walking it sequentially is a uniform
	// probe stream over the sorted tree.
	allocs := func(s *side) {
		s.sess = s.tree.NewSession()
		const probes = 100_000
		for i := 0; i < 1024; i++ { // warm up lazy paths before counting
			s.buf = s.sess.Lookup(ks.Keys[i%len(ks.Keys)], s.buf[:0])
		}
		runtime.GC()
		var mem0, mem1 runtime.MemStats
		runtime.ReadMemStats(&mem0)
		for i := 0; i < probes; i++ {
			s.buf = s.sess.Lookup(ks.Keys[i%len(ks.Keys)], s.buf[:0])
		}
		runtime.ReadMemStats(&mem1)
		s.pt.LookupAllocsPerOp = float64(mem1.Mallocs-mem0.Mallocs) / float64(probes)
		s.pt.LookupBytesPerOp = float64(mem1.TotalAlloc-mem0.TotalAlloc) / float64(probes)
	}
	allocs(slice)
	allocs(flat)

	// The gated measurement: an interleaved lookup duel. The two layouts
	// alternate short probe segments over identical key sequences, so a
	// shared machine's slow minutes land on both sides about equally
	// instead of on whichever layout happened to be running — cross-phase
	// drift is what made a measure-one-then-the-other design produce
	// ratios swinging ±15% between runs of identical code.
	probes := sc.Ops
	if probes > 500_000 {
		probes = 500_000
	}
	segOps := probes / 10
	if segOps < 1 {
		segOps = 1
	}
	segments := probes / segOps
	var sliceDur, flatDur time.Duration
	segment := func(s *side, seg int) time.Duration {
		t0 := time.Now()
		for j := 0; j < segOps; j++ {
			s.buf = s.sess.Lookup(ks.Keys[(seg*segOps+j)%len(ks.Keys)], s.buf[:0])
		}
		return time.Since(t0)
	}
	for seg := 0; seg < segments; seg++ {
		sliceDur += segment(slice, seg)
		flatDur += segment(flat, seg)
	}
	slice.sess.Release()
	flat.sess.Release()
	slice.pt.LookupMops = mops(segments*segOps, sliceDur)
	flat.pt.LookupMops = mops(segments*segOps, flatDur)

	footprint := func(s *side) {
		st := s.tree.StructureStats()
		s.pt.FlatBases = st.FlatBases
		s.pt.ArenaBytes = st.ArenaBytes
		s.pt.KeyBytes = st.KeyBytes
		s.pt.GCPtrsPerLeaf = st.GCPtrsPerLeaf
		s.pt.LeafBytesPerEntry = st.LeafBytesPerEntry
	}
	footprint(slice)
	footprint(flat)

	rep.Slice, rep.Flat = slice.pt, flat.pt
	if rep.Slice.LookupMops > 0 {
		rep.LookupSpeedup = rep.Flat.LookupMops / rep.Slice.LookupMops
	}
	if rep.Slice.ReadMops > 0 {
		rep.ReadMostlySpeedup = rep.Flat.ReadMops / rep.Slice.ReadMops
	}
	if rep.Slice.ScanMops > 0 {
		rep.ScanSpeedup = rep.Flat.ScanMops / rep.Slice.ScanMops
	}
	rep.Inner = flatInnerArm(sc)

	out := os.Getenv("FLATNODE_GATE_OUT")
	if out == "" {
		out = "BENCH_flatnode.json"
	}
	if data, err := json.MarshalIndent(&rep, "", "  "); err == nil {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(w, "flatnode: cannot write %s: %v\n", out, err)
		}
	}

	tbl := NewTable(fmt.Sprintf("Flatnode gate: Email keys, %d threads", sc.Threads),
		"lookup Mops/s", "read Mops/s", "scan Mops/s", "lookup allocs/op",
		"GC ptrs/leaf", "leaf B/entry")
	addRow := func(label string, pt FlatNodePoint) {
		tbl.AddRow(label, f3(pt.LookupMops), f3(pt.ReadMops), f3(pt.ScanMops),
			fmt.Sprintf("%.4f", pt.LookupAllocsPerOp),
			fmt.Sprintf("%.1f", pt.GCPtrsPerLeaf), fmt.Sprintf("%.1f", pt.LeafBytesPerEntry))
	}
	addRow("slice", rep.Slice)
	addRow("flat", rep.Flat)
	tbl.Note("Report written to %s.", out)
	tbl.WriteTo(w)

	failed := false
	minSpeedup := envFloat("FLATNODE_GATE_MIN_SPEEDUP", 1.15)
	if rep.LookupSpeedup < minSpeedup {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL flat/slice lookup speedup %.3fx < required %.2fx\n",
			rep.LookupSpeedup, minSpeedup)
	} else {
		fmt.Fprintf(w, "flatnode: flat/slice lookup speedup %.3fx (>= %.2fx), read-mostly %.3fx, scan %.3fx\n",
			rep.LookupSpeedup, minSpeedup, rep.ReadMostlySpeedup, rep.ScanSpeedup)
	}
	maxAllocs := envFloat("FLATNODE_GATE_MAX_ALLOCS", 0.01)
	if rep.Flat.LookupAllocsPerOp > maxAllocs {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL flat Lookup allocates %.4f allocs/op (max %.4f)\n",
			rep.Flat.LookupAllocsPerOp, maxAllocs)
	} else {
		fmt.Fprintf(w, "flatnode: flat Lookup %.4f allocs/op (max %.4f)\n",
			rep.Flat.LookupAllocsPerOp, maxAllocs)
	}

	baselinePath := os.Getenv("FLATNODE_GATE_BASELINE")
	if baselinePath == "" {
		baselinePath = "bench/BENCH_flatnode.json"
	}
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base FlatNodeFile
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(w, "flatnode: unreadable baseline %s: %v\n", baselinePath, err)
		} else {
			tol := envFloat("FLATNODE_GATE_TOLERANCE", 0.25)
			if floor := base.Flat.LookupMops * (1 - tol); rep.Flat.LookupMops < floor {
				failed = true
				fmt.Fprintf(w, "flatnode: FAIL flat lookup %.3f Mops/s under baseline floor %.3f (baseline %.3f, tolerance %.0f%%)\n",
					rep.Flat.LookupMops, floor, base.Flat.LookupMops, tol*100)
			} else {
				fmt.Fprintf(w, "flatnode: within tolerance of baseline %s (flat lookup %.3f vs %.3f Mops/s)\n",
					baselinePath, rep.Flat.LookupMops, base.Flat.LookupMops)
			}
		}
	} else {
		fmt.Fprintf(w, "flatnode: no baseline at %s; in-process checks only\n", baselinePath)
	}
	if failed {
		gateFailures.Add(1)
	}

	flatInnerGates(w, &rep)
}

// flatInnerArm runs the inner-node layout arm: the same interleaved-duel
// design as the leaf arm, but on a deliberately deep tree (inner fanout
// shrunk to 8, so Email-scale populations stand 4-5 inner levels tall)
// and with FlatInnerNodes+ScanPipelining as the on/off axis. Both sides
// keep FlatBaseNodes on, so the duel isolates the inner layout: every
// lookup pays InnerLevels routing probes before it ever touches a leaf.
func flatInnerArm(sc Scale) FlatInnerArm {
	var arm FlatInnerArm
	// Fanout 64 makes each inner search a real multi-compare probe (a
	// slice-layout node at ~45 GC pointers) across 3+ inner levels;
	// wider nodes concentrate descent time in the search itself — where
	// the layouts differ: a cold slice probe touches a header line and a
	// scattered key line, a cold arena probe one contiguous line —
	// instead of in the per-level fixed costs (mapping-table load, chain
	// checks) that are identical on both sides. Leaf nodes shrink to 16
	// so the leaf probe (identical on both sides) stops dominating the
	// descent. Path keys give the separator sets the long within-node
	// common prefixes (30-40 of 48 bytes at the bottom inner level) that
	// hierarchical key spaces produce: the slice side re-compares those
	// bytes on every probe, the arena side compares them once per node
	// and binary-searches suffixes.
	const innerFanout, leafSize = 64, 16
	arm.InnerNodeSize = innerFanout
	arm.KeyType = ycsb.Path.String()

	type side struct {
		idx  index.Index
		tree *core.Tree
		sess *core.Session
		buf  []uint64
		pt   FlatInnerPoint
	}
	ks := ycsb.NewKeySet(ycsb.Path, sc.Keys)
	build := func(label string, on bool) *side {
		opts := core.DefaultOptions()
		opts.FlatBaseNodes = true
		opts.FlatInnerNodes = on
		opts.ScanPipelining = on
		opts.InnerNodeSize = innerFanout
		opts.LeafNodeSize = leafSize
		s := &side{idx: index.NewBwTreeWith(label, opts)}
		ks.ResetLoad() // each side loads the full population (see build above)
		RunPhase(s.idx, ks, ycsb.InsertOnly, sc.Keys, sc.Threads, phaseSeed(sc.Seed, 3))
		s.tree = s.idx.(index.BwBacked).Tree()
		s.tree.ConsolidateAll()
		s.buf = make([]uint64, 0, 8)
		return s
	}
	off := build("inner-off", false)
	on := build("inner-on", true)
	defer off.idx.Close()
	defer on.idx.Close()

	// Scan-heavy phase (YCSB-E): every scan descends through the inner
	// levels once, then walks right-sibling leaves — the path scan
	// pipelining targets. Interleaved in alternating segments, like the
	// lookup duel below, so clock drift and GC waves hit both sides
	// equally. Consolidating afterwards restores the pure-base state the
	// lookup duel wants.
	scanOps := sc.Ops / 8
	if scanOps < 1 {
		scanOps = 1
	}
	const scanSegs = 8
	segScan := scanOps / scanSegs
	if segScan < 1 {
		segScan = 1
	}
	var offScan, onScan time.Duration
	for seg := 0; seg < scanSegs; seg++ {
		offScan += RunPhase(off.idx, ks, ycsb.ScanInsert, segScan, sc.Threads, phaseSeed(sc.Seed, uint64(4+seg)))
		onScan += RunPhase(on.idx, ks, ycsb.ScanInsert, segScan, sc.Threads, phaseSeed(sc.Seed, uint64(4+seg)))
	}
	off.pt.ScanMops = mops(scanSegs*segScan, offScan)
	on.pt.ScanMops = mops(scanSegs*segScan, onScan)
	off.tree.ConsolidateAll()
	on.tree.ConsolidateAll()

	allocs := func(s *side) {
		s.sess = s.tree.NewSession()
		const probes = 100_000
		for i := 0; i < 1024; i++ {
			s.buf = s.sess.Lookup(ks.Keys[i%len(ks.Keys)], s.buf[:0])
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < probes; i++ {
			s.buf = s.sess.Lookup(ks.Keys[i%len(ks.Keys)], s.buf[:0])
		}
		runtime.ReadMemStats(&m1)
		s.pt.LookupAllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(probes)
	}
	allocs(off)
	allocs(on)

	// Interleaved lookup duel, same drift-cancelling design as the leaf
	// arm: alternating short segments over identical key sequences. The
	// two sides of a segment pair run adjacent in time, so machine-wide
	// throughput phases (scheduler noise, neighbor load) hit both and
	// cancel in the pair's ratio; the speedup below is the median of the
	// per-pair ratios, which also discards segments a GC pause landed in.
	probes := sc.Ops
	if probes > 500_000 {
		probes = 500_000
	}
	segOps := probes / 25
	if segOps < 1 {
		segOps = 1
	}
	segments := probes / segOps
	var onDur, offDur time.Duration
	ratios := make([]float64, 0, segments)
	segment := func(s *side, seg int) time.Duration {
		t0 := time.Now()
		for j := 0; j < segOps; j++ {
			s.buf = s.sess.Lookup(ks.Keys[(seg*segOps+j)%len(ks.Keys)], s.buf[:0])
		}
		return time.Since(t0)
	}
	for seg := 0; seg < segments; seg++ {
		// Alternate which side leads the pair, so whatever cache state a
		// segment inherits from its predecessor is handed to both sides
		// equally often.
		var o, n time.Duration
		if seg%2 == 0 {
			o = segment(off, seg)
			n = segment(on, seg)
		} else {
			n = segment(on, seg)
			o = segment(off, seg)
		}
		offDur += o
		onDur += n
		if n > 0 {
			ratios = append(ratios, float64(o)/float64(n))
		}
	}
	off.sess.Release()
	on.sess.Release()
	off.pt.LookupMops = mops(segments*segOps, offDur)
	on.pt.LookupMops = mops(segments*segOps, onDur)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		arm.LookupSpeedup = ratios[len(ratios)/2]
	}

	foot := func(s *side) {
		st := s.tree.StructureStats()
		s.pt.GCPtrsPerInner = st.GCPtrsPerInner
		s.pt.InnerFlatBases = st.InnerFlatBases
		s.pt.InnerArenaBytes = st.InnerArenaBytes
		if lv := st.Height - 1; lv > arm.InnerLevels {
			arm.InnerLevels = lv
		}
	}
	foot(off)
	foot(on)

	arm.On, arm.Off = on.pt, off.pt
	if arm.LookupSpeedup == 0 && arm.Off.LookupMops > 0 {
		// Degenerate scale (no segment pairs): fall back to the raw ratio.
		arm.LookupSpeedup = arm.On.LookupMops / arm.Off.LookupMops
	}
	if arm.Off.ScanMops > 0 {
		arm.ScanRatio = arm.On.ScanMops / arm.Off.ScanMops
	}
	if arm.On.GCPtrsPerInner > 0 {
		arm.GCPtrsReduction = arm.Off.GCPtrsPerInner / arm.On.GCPtrsPerInner
	}
	return arm
}

// flatInnerGates renders the inner arm's table and applies its gates:
//
//   - On/Off consolidated-lookup speedup >= FLATNODE_GATE_MIN_INNER_SPEEDUP
//     (default 1.10) on a tree at least 3 inner levels deep,
//   - scan throughput no worse than leaf-only flat beyond
//     FLATNODE_GATE_SCAN_TOLERANCE (default 0.15),
//   - GC-visible pointers per inner node reduced at least
//     FLATNODE_GATE_MIN_INNER_GC_REDUCTION times (default 5),
//   - flat-inner Lookup stays allocation-free (FLATNODE_GATE_MAX_ALLOCS),
//   - and a committed baseline's inner-arm lookup throughput holds within
//     FLATNODE_GATE_INNER_TOLERANCE (default 0.35 — more relaxed than the
//     leaf arm: the deep-tree duel runs fewer probes per level and is
//     noisier on shared machines).
func flatInnerGates(w io.Writer, rep *FlatNodeFile) {
	arm := rep.Inner
	tbl := NewTable(fmt.Sprintf("Flatnode inner arm: fanout %d, %d inner levels",
		arm.InnerNodeSize, arm.InnerLevels),
		"lookup Mops/s", "scan Mops/s", "lookup allocs/op",
		"GC ptrs/inner", "inner flat bases", "inner arena MB")
	addRow := func(label string, pt FlatInnerPoint) {
		tbl.AddRow(label, f3(pt.LookupMops), f3(pt.ScanMops),
			fmt.Sprintf("%.4f", pt.LookupAllocsPerOp),
			fmt.Sprintf("%.1f", pt.GCPtrsPerInner),
			fmt.Sprintf("%d", pt.InnerFlatBases),
			fmt.Sprintf("%.2f", float64(pt.InnerArenaBytes)/(1<<20)))
	}
	addRow("inner-off", arm.Off)
	addRow("inner-on", arm.On)
	tbl.WriteTo(w)

	failed := false
	if arm.InnerLevels < 3 {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL inner arm tree only %d inner levels deep (need >= 3)\n",
			arm.InnerLevels)
	}
	minInner := envFloat("FLATNODE_GATE_MIN_INNER_SPEEDUP", 1.10)
	if arm.LookupSpeedup < minInner {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL inner on/off lookup speedup %.3fx < required %.2fx\n",
			arm.LookupSpeedup, minInner)
	} else {
		fmt.Fprintf(w, "flatnode: inner on/off lookup speedup %.3fx (>= %.2fx) over %d inner levels\n",
			arm.LookupSpeedup, minInner, arm.InnerLevels)
	}
	scanTol := envFloat("FLATNODE_GATE_SCAN_TOLERANCE", 0.15)
	if arm.ScanRatio < 1-scanTol {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL inner-on scan ratio %.3fx regressed below %.3fx of leaf-only flat\n",
			arm.ScanRatio, 1-scanTol)
	} else {
		fmt.Fprintf(w, "flatnode: inner-on scan ratio %.3fx (floor %.3fx)\n", arm.ScanRatio, 1-scanTol)
	}
	minGC := envFloat("FLATNODE_GATE_MIN_INNER_GC_REDUCTION", 5)
	if arm.GCPtrsReduction < minGC {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL inner GC-pointer reduction %.1fx < required %.1fx (%.1f -> %.1f ptrs/inner)\n",
			arm.GCPtrsReduction, minGC, arm.Off.GCPtrsPerInner, arm.On.GCPtrsPerInner)
	} else {
		fmt.Fprintf(w, "flatnode: inner GC pointers %.1f -> %.1f per node (%.1fx reduction)\n",
			arm.Off.GCPtrsPerInner, arm.On.GCPtrsPerInner, arm.GCPtrsReduction)
	}
	maxAllocs := envFloat("FLATNODE_GATE_MAX_ALLOCS", 0.01)
	if arm.On.LookupAllocsPerOp > maxAllocs {
		failed = true
		fmt.Fprintf(w, "flatnode: FAIL inner-on Lookup allocates %.4f allocs/op (max %.4f)\n",
			arm.On.LookupAllocsPerOp, maxAllocs)
	}

	baselinePath := os.Getenv("FLATNODE_GATE_BASELINE")
	if baselinePath == "" {
		baselinePath = "bench/BENCH_flatnode.json"
	}
	if data, err := os.ReadFile(baselinePath); err == nil {
		var base FlatNodeFile
		// Baselines predating the inner arm have a zero Inner block; only
		// compare once a regenerated baseline carries real numbers.
		if json.Unmarshal(data, &base) == nil && base.Inner.On.LookupMops > 0 {
			tol := envFloat("FLATNODE_GATE_INNER_TOLERANCE", 0.35)
			if floor := base.Inner.On.LookupMops * (1 - tol); arm.On.LookupMops < floor {
				failed = true
				fmt.Fprintf(w, "flatnode: FAIL inner-on lookup %.3f Mops/s under baseline floor %.3f (baseline %.3f, tolerance %.0f%%)\n",
					arm.On.LookupMops, floor, base.Inner.On.LookupMops, tol*100)
			} else {
				fmt.Fprintf(w, "flatnode: inner arm within tolerance of baseline (%.3f vs %.3f Mops/s)\n",
					arm.On.LookupMops, base.Inner.On.LookupMops)
			}
		}
	}
	if failed {
		gateFailures.Add(1)
	}
}
