package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBucketBoundsCoverValue(t *testing.T) {
	vals := []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 34, 1 << 40}
	for _, v := range vals {
		idx := bucketIndex(v)
		if lo := bucketLow(idx); v < lo {
			t.Errorf("value %d below its bucket %d low bound %d", v, idx, lo)
		}
		if idx < NumBuckets-1 {
			if hi := bucketHigh(idx); v >= hi {
				t.Errorf("value %d at/above its bucket %d high bound %d", v, idx, hi)
			}
		}
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<16; v++ {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestQuantileAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	n := 20000
	vals := make([]uint64, n)
	for i := range vals {
		// Log-uniform spread over ~6 decades, like real latencies.
		v := uint64(100 * (1 << uint(rng.Intn(20))))
		v += uint64(rng.Intn(int(v/8 + 1)))
		vals[i] = v
		h.RecordNS(int64(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	var s HistSnapshot
	h.AddTo(&s)
	if got := s.Total(); got != uint64(n) {
		t.Fatalf("Total = %d, want %d", got, n)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		oracle := float64(vals[int(q*float64(n-1))])
		got := s.Quantile(q)
		// The estimate must fall within the oracle's bucket: relative
		// error bounded by one bucket width (6.25%) plus interpolation.
		if got < oracle*0.9 || got > oracle*1.1 {
			t.Errorf("Quantile(%v) = %.0f, oracle %.0f (>10%% off)", q, got, oracle)
		}
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.RecordNS(int64(i))
		b.RecordNS(int64(i * 1000))
	}
	var sa, sb HistSnapshot
	a.AddTo(&sa)
	b.AddTo(&sb)
	merged := sa
	merged.Merge(&sb)
	if got, want := merged.Total(), sa.Total()+sb.Total(); got != want {
		t.Fatalf("merged Total = %d, want %d", got, want)
	}
	if got, want := merged.Sum, sa.Sum+sb.Sum; got != want {
		t.Fatalf("merged Sum = %d, want %d", got, want)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty Mean = %v, want 0", got)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	var rec Recorder
	const records = 100000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < records; i++ {
			rec.Record(OpClass(i%int64(NumOpClasses)), i%100000)
		}
	}()
	for i := 0; i < 200; i++ {
		var s LatencySnapshot
		rec.AddTo(&s)
		_ = s.Total()
		_ = s.Class(OpRead).Quantile(0.99)
	}
	wg.Wait()

	var final LatencySnapshot
	rec.AddTo(&final)
	if final.Total() == 0 {
		t.Fatal("no observations recorded")
	}
	if len(final.Summary()) == 0 {
		t.Fatal("empty summary")
	}
}

func TestRecorderClasses(t *testing.T) {
	var rec Recorder
	rec.Record(OpInsert, 1000)
	rec.Record(OpScan, 2000)
	var s LatencySnapshot
	rec.AddTo(&s)
	if got := s.Class(OpInsert).Total(); got != 1 {
		t.Fatalf("insert count = %d, want 1", got)
	}
	if got := s.Class(OpRead).Total(); got != 0 {
		t.Fatalf("read count = %d, want 0", got)
	}
	sum := s.Summary()
	if _, ok := sum["insert"]; !ok {
		t.Fatal("summary missing insert class")
	}
	if _, ok := sum["read"]; ok {
		t.Fatal("summary includes empty read class")
	}
}
