package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HdrHistogram-style): values below
// 2*subCount map to their own bucket exactly; above that, each power of
// two is divided into subCount sub-buckets, bounding the relative width
// of any bucket by 1/subCount (6.25%). With NumBuckets = 512 the top
// bucket starts at 2^34 ns (~17 s); larger values clamp into it.
const (
	subBits    = 4
	subCount   = 1 << subBits // sub-buckets per power of two
	firstSplit = 2 * subCount // below this, bucket index == value
	// NumBuckets is the fixed bucket count of every histogram.
	NumBuckets = 512
)

// bucketIndex maps a non-negative value (nanoseconds) to its bucket.
func bucketIndex(v uint64) int {
	if v < firstSplit {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading one, >= 5
	idx := (exp-subBits+1)<<subBits + int((v>>(exp-subBits))&(subCount-1))
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// bucketLow returns the inclusive lower bound of bucket idx.
func bucketLow(idx int) uint64 {
	if idx < firstSplit {
		return uint64(idx)
	}
	exp := idx>>subBits + subBits - 1
	return 1<<exp + uint64(idx&(subCount-1))<<(exp-subBits)
}

// bucketHigh returns the exclusive upper bound of bucket idx.
func bucketHigh(idx int) uint64 {
	if idx >= NumBuckets-1 {
		// The top bucket is open-ended; report its nominal width.
		return bucketLow(idx) * 2
	}
	return bucketLow(idx + 1)
}

// Histogram is a fixed-size log-bucketed histogram. One goroutine
// records (lock-free, allocation-free: two uncontended atomic adds);
// any number of goroutines may snapshot concurrently. The zero value is
// ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// RecordNS adds one observation of ns nanoseconds (negative clamps to 0).
func (h *Histogram) RecordNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(uint64(ns))].Add(1)
	h.sum.Add(uint64(ns))
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) { h.RecordNS(int64(d)) }

// AddTo accumulates the histogram's current contents into s. The read is
// race-free but not atomic across buckets; concurrent records may or may
// not be included, which is the usual monitoring contract.
func (h *Histogram) AddTo(s *HistSnapshot) {
	for i := range h.counts {
		s.Counts[i] += h.counts[i].Load()
	}
	s.Sum += h.sum.Load()
}

// HistSnapshot is an immutable copy of a histogram, mergeable with
// others and queryable for quantiles.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Sum    uint64
}

// Merge accumulates o into s.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
}

// Total returns the number of recorded observations.
func (s *HistSnapshot) Total() uint64 {
	var n uint64
	for i := range s.Counts {
		n += s.Counts[i]
	}
	return n
}

// Mean returns the mean observation in nanoseconds, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	n := s.Total()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in nanoseconds by
// linear interpolation inside the covering bucket. The estimate is
// always within that bucket's bounds, so the relative error is bounded
// by the bucket width (6.25% above 32 ns, exact below).
func (s *HistSnapshot) Quantile(q float64) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic to report.
	rank := uint64(q*float64(total-1)) + 1
	var cum uint64
	for i := range s.Counts {
		c := s.Counts[i]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := float64(bucketLow(i)), float64(bucketHigh(i))
			frac := (float64(rank-cum) - 0.5) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return float64(bucketHigh(NumBuckets - 1))
}

// Recorder bundles one histogram per operation class — the per-session
// latency state. The zero value is ready to use.
type Recorder struct {
	hists [NumOpClasses]Histogram
}

// Record adds one observation of ns nanoseconds to class c.
func (r *Recorder) Record(c OpClass, ns int64) { r.hists[c].RecordNS(ns) }

// Hist returns the class's histogram (for direct Record calls).
func (r *Recorder) Hist(c OpClass) *Histogram { return &r.hists[c] }

// AddTo accumulates the recorder's contents into s.
func (r *Recorder) AddTo(s *LatencySnapshot) {
	for c := range r.hists {
		r.hists[c].AddTo(&s.Ops[c])
	}
}

// LatencySnapshot is a point-in-time copy of per-class histograms,
// mergeable across sessions and workers.
type LatencySnapshot struct {
	Ops [NumOpClasses]HistSnapshot
}

// Merge accumulates o into s.
func (s *LatencySnapshot) Merge(o *LatencySnapshot) {
	for c := range s.Ops {
		s.Ops[c].Merge(&o.Ops[c])
	}
}

// Class returns the snapshot for one operation class.
func (s *LatencySnapshot) Class(c OpClass) *HistSnapshot { return &s.Ops[c] }

// Total returns the observation count across every class.
func (s *LatencySnapshot) Total() uint64 {
	var n uint64
	for c := range s.Ops {
		n += s.Ops[c].Total()
	}
	return n
}

// Summary renders the snapshot as nested maps (class -> metric -> value,
// microseconds) for JSON/expvar surfaces. Empty classes are omitted.
func (s *LatencySnapshot) Summary() map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for c := OpClass(0); c < NumOpClasses; c++ {
		h := &s.Ops[c]
		n := h.Total()
		if n == 0 {
			continue
		}
		out[c.String()] = map[string]float64{
			"count":   float64(n),
			"mean_us": h.Mean() / 1e3,
			"p50_us":  h.Quantile(0.50) / 1e3,
			"p90_us":  h.Quantile(0.90) / 1e3,
			"p99_us":  h.Quantile(0.99) / 1e3,
			"p999_us": h.Quantile(0.999) / 1e3,
		}
	}
	return out
}
