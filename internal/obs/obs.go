// Package obs is the tree's observability layer: allocation-free
// log-bucketed latency histograms, a structured SMO/GC event tracer, a
// counter-delta rate sampler, and a live /debug HTTP surface built from
// expvar and net/http/pprof.
//
// The package is stdlib-only and imports nothing from the rest of the
// module, so every layer (core, epoch, harness, commands) can depend on
// it without cycles. Everything here is designed for two regimes:
//
//   - disabled (the default): zero allocations and a single nil check on
//     the hot path;
//   - enabled: recording stays allocation-free and lock-free (atomic
//     adds into per-session fixed-size arrays), with aggregation cost
//     paid only by the reader.
package obs

import "time"

// OpClass partitions public index operations for latency accounting.
type OpClass uint8

const (
	OpInsert OpClass = iota
	OpUpdate
	OpDelete
	OpRead
	OpScan
	// OpBatch records whole batch-call latencies (one observation per
	// InsertBatch/DeleteBatch/LookupBatch call), alongside the per-op
	// classes above — the visible cost of epoch amortization.
	OpBatch
	// NumOpClasses bounds arrays indexed by OpClass.
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{"insert", "update", "delete", "read", "scan", "batch"}

// String returns the lower-case class name used in reports and JSON.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "unknown"
}

// epoch anchors Now; time.Since reads the monotonic clock.
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start. It is the
// timestamp source for histograms and trace events: cheap (one vDSO
// clock read), monotonic, and comparable across goroutines.
func Now() int64 { return int64(time.Since(epoch)) }
