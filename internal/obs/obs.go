// Package obs is the tree's observability layer: allocation-free
// log-bucketed latency histograms, a structured SMO/GC event tracer,
// sampled per-operation phase traces with an always-on flight recorder
// (phase.go), Chrome trace-event export (chrometrace.go), a
// counter-delta rate sampler, and a live /debug + /metrics HTTP surface
// built from expvar, net/http/pprof, and a Prometheus text renderer
// (prom.go).
//
// The package is stdlib-only and imports nothing from the rest of the
// module, so every layer (core, epoch, harness, commands) can depend on
// it without cycles. Everything here is designed for two regimes:
//
//   - disabled (the default): zero allocations and a single nil check on
//     the hot path;
//   - enabled: recording stays allocation-free and lock-free (atomic
//     adds into per-session fixed-size arrays), with aggregation cost
//     paid only by the reader.
package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// OpClass partitions public index operations for latency accounting.
type OpClass uint8

const (
	OpInsert OpClass = iota
	OpUpdate
	OpDelete
	OpRead
	OpScan
	// OpBatch records whole batch-call latencies (one observation per
	// InsertBatch/DeleteBatch/LookupBatch call), alongside the per-op
	// classes above — the visible cost of epoch amortization.
	OpBatch
	// NumOpClasses bounds arrays indexed by OpClass.
	NumOpClasses
)

var opClassNames = [NumOpClasses]string{"insert", "update", "delete", "read", "scan", "batch"}

// String returns the lower-case class name used in reports and JSON.
func (c OpClass) String() string {
	if int(c) < len(opClassNames) {
		return opClassNames[c]
	}
	return "unknown"
}

// MarshalJSON renders the class as its name.
func (c OpClass) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON accepts a class name (the MarshalJSON form) or a raw
// numeric value, so flight-recorder dumps round-trip through JSON.
func (c *OpClass) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		for i, n := range opClassNames {
			if n == name {
				*c = OpClass(i)
				return nil
			}
		}
		return fmt.Errorf("obs: unknown op class %q", name)
	}
	var v uint8
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*c = OpClass(v)
	return nil
}

// epoch anchors Now; time.Since reads the monotonic clock.
var epoch = time.Now()

// Now returns monotonic nanoseconds since process start. It is the
// timestamp source for histograms and trace events: cheap (one vDSO
// clock read), monotonic, and comparable across goroutines.
func Now() int64 { return int64(time.Since(epoch)) }
