package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Vars is the pull-based data source behind a debug server. Any field
// may be nil; the corresponding surface is simply absent.
type Vars struct {
	// Counters returns monotonic counters; the sampler derives
	// "<name>_per_sec" rates from their deltas.
	Counters func() map[string]uint64
	// Gauges returns point-in-time values (ratios, utilizations).
	Gauges func() map[string]float64
	// Latency returns the current latency snapshot.
	Latency func() *LatencySnapshot
	// Shape returns structural statistics (tree shape and base-node
	// memory footprint). Served on demand at /debug/shape only — the
	// underlying tree walk is too expensive for the periodic sampler.
	Shape func() map[string]any
	// Trace drains the event tracer. Draining is destructive, so the
	// /debug/trace endpoint consumes events.
	Trace func() []Event
	// TraceDropped returns the cumulative wraparound-loss count.
	TraceDropped func() uint64
	// MetricHists returns histogram feeds rendered as summaries on
	// /metrics (WAL fsync latency, chain-depth distribution, ...).
	MetricHists func() []HistFeed
	// Flight returns the newest n flight-recorder op summaries across
	// sessions (all when n <= 0), oldest first. Non-destructive; backs
	// /debug/flightrec.
	Flight func(n int) []OpSummary
	// PhaseTraces drains the sampled per-op phase traces (destructive);
	// /debug/phasetrace serves them as Chrome trace-event JSON.
	PhaseTraces func() []OpTrace
}

// expvarHolder lets the process-global expvar name "bwtree" follow the
// most recently started debug server (expvar cannot unpublish).
var expvarHolder struct {
	mu   sync.Mutex
	fn   func() any
	once sync.Once
}

func publishExpvar(fn func() any) {
	expvarHolder.mu.Lock()
	expvarHolder.fn = fn
	expvarHolder.mu.Unlock()
	expvarHolder.once.Do(func() {
		expvar.Publish("bwtree", expvar.Func(func() any {
			expvarHolder.mu.Lock()
			f := expvarHolder.fn
			expvarHolder.mu.Unlock()
			if f == nil {
				return nil
			}
			return f()
		}))
	})
}

// Server is a live debug surface: expvar at /debug/vars, pprof under
// /debug/pprof/, and JSON endpoints for stats, latency quantiles, and
// the event trace.
type Server struct {
	srv     *http.Server
	ln      net.Listener
	sampler *Sampler
	closeOn sync.Once
}

// Serve starts a debug server on addr (host:port; port 0 picks a free
// one) backed by v, sampling counter rates every sampleEvery (0 → 1s).
func Serve(addr string, v Vars, sampleEvery time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	var sampler *Sampler
	if v.Counters != nil {
		sampler = NewSampler(sampleEvery, v.Counters)
	}
	s := &Server{ln: ln, sampler: sampler}
	mux := Mux(v, sampler)
	s.srv = &http.Server{Handler: mux}
	publishExpvar(func() any { return debugSnapshot(v, sampler) })
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its sampler.
func (s *Server) Close() error {
	var err error
	s.closeOn.Do(func() {
		if s.sampler != nil {
			s.sampler.Close()
		}
		err = s.srv.Close()
	})
	return err
}

// debugSnapshot assembles the composite JSON value served under the
// expvar name "bwtree" and at /debug/stats.
func debugSnapshot(v Vars, sampler *Sampler) map[string]any {
	out := map[string]any{}
	if v.Counters != nil {
		out["counters"] = v.Counters()
	}
	if v.Gauges != nil {
		out["gauges"] = v.Gauges()
	}
	if sampler != nil {
		out["rates"] = sampler.Rates()
	}
	if v.Latency != nil {
		if snap := v.Latency(); snap != nil {
			out["latency"] = snap.Summary()
		}
	}
	if v.TraceDropped != nil {
		out["trace_dropped"] = v.TraceDropped()
	}
	return out
}

// Mux builds the debug request router; exposed separately so servers
// embedding the surface into an existing listener can mount it.
func Mux(v Vars, sampler *Sampler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	writeJSON := func(w http.ResponseWriter, val any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(val)
	}
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, debugSnapshot(Vars{Counters: v.Counters, Gauges: v.Gauges,
			Latency: v.Latency, TraceDropped: v.TraceDropped}, sampler))
	})
	mux.HandleFunc("/debug/latency", func(w http.ResponseWriter, r *http.Request) {
		if v.Latency == nil {
			http.Error(w, "latency histograms disabled", http.StatusNotFound)
			return
		}
		snap := v.Latency()
		if snap == nil {
			http.Error(w, "latency histograms disabled", http.StatusNotFound)
			return
		}
		writeJSON(w, snap.Summary())
	})
	mux.HandleFunc("/debug/shape", func(w http.ResponseWriter, r *http.Request) {
		if v.Shape == nil {
			http.Error(w, "shape statistics unavailable", http.StatusNotFound)
			return
		}
		writeJSON(w, v.Shape())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if v.Trace == nil {
			http.Error(w, "event tracing disabled", http.StatusNotFound)
			return
		}
		events := v.Trace()
		if n := intQuery(r, "n"); n > 0 && n < len(events) {
			events = events[len(events)-n:]
		}
		resp := map[string]any{"events": events}
		if v.TraceDropped != nil {
			resp["dropped"] = v.TraceDropped()
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, v, sampler)
	})
	mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, r *http.Request) {
		if v.Flight == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		ops := v.Flight(intQuery(r, "n"))
		writeJSON(w, map[string]any{"ops": ops, "count": len(ops)})
	})
	mux.HandleFunc("/debug/phasetrace", func(w http.ResponseWriter, r *http.Request) {
		if v.PhaseTraces == nil {
			http.Error(w, "phase sampling disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		WriteChromeTrace(w, v.PhaseTraces())
	})
	mux.HandleFunc("/debug", func(w http.ResponseWriter, r *http.Request) {
		paths := []string{
			"/debug/vars", "/debug/stats", "/debug/latency", "/debug/shape",
			"/debug/trace", "/debug/flightrec", "/debug/phasetrace",
			"/debug/pprof/", "/metrics",
		}
		sort.Strings(paths)
		w.Header().Set("Content-Type", "text/plain")
		for _, p := range paths {
			fmt.Fprintln(w, p)
		}
	})
	return mux
}

func intQuery(r *http.Request, key string) int {
	var n int
	fmt.Sscanf(r.URL.Query().Get(key), "%d", &n)
	return n
}
