package obs

import (
	"sync"
	"testing"
)

func TestTracerOrderedDrain(t *testing.T) {
	tr := NewTracer(64)
	r1, r2 := tr.Ring(), tr.Ring()
	// Interleave emissions across two rings.
	for i := uint64(0); i < 10; i++ {
		r1.Emit(EvSplit, i, 0, 0)
		r2.Emit(EvMerge, i, 0, 0)
	}
	events := tr.Drain()
	if len(events) != 20 {
		t.Fatalf("drained %d events, want 20", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("drain not ordered: seq %d after %d", events[i].Seq, events[i-1].Seq)
		}
	}
	if again := tr.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(again))
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(8)
	r := tr.Ring()
	for i := uint64(0); i < 20; i++ {
		r.Emit(EvConsolidate, i, 0, 0)
	}
	events := tr.Drain()
	if len(events) != 8 {
		t.Fatalf("drained %d events, want ring size 8", len(events))
	}
	// The survivors must be the newest 8, oldest first.
	for i, ev := range events {
		if want := uint64(12 + i); ev.Node != want {
			t.Fatalf("event %d: node %d, want %d", i, ev.Node, want)
		}
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
}

func TestTracerRingRecycling(t *testing.T) {
	tr := NewTracer(16)
	r := tr.Ring()
	r.Emit(EvAbort, 1, 0, 0)
	tr.Release(r)
	// Undrained events in a released ring must stay drainable.
	r2 := tr.Ring()
	if r2 != r {
		t.Fatal("released ring not reused")
	}
	r2.Emit(EvAbort, 2, 0, 0)
	events := tr.Drain()
	if len(events) != 2 {
		t.Fatalf("drained %d events, want 2", len(events))
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	const workers = 4
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tr.Ring()
			defer tr.Release(r)
			for i := 0; i < perWorker; i++ {
				r.Emit(EvSplit, uint64(w), uint64(i), 0)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tr.Drain()
		}
	}()
	wg.Wait()
	<-done
	rest := tr.Drain()
	// Total events seen across all drains plus drops must be exact;
	// here just check nothing deadlocked and sequences stay ordered.
	for i := 1; i < len(rest); i++ {
		if rest[i].Seq <= rest[i-1].Seq {
			t.Fatalf("unordered drain under concurrency")
		}
	}
}

func TestEventKindString(t *testing.T) {
	if EvSplit.String() != "split" || EvEpochAdvance.String() != "epoch-advance" {
		t.Fatal("unexpected kind names")
	}
	b, err := EvMerge.MarshalJSON()
	if err != nil || string(b) != `"merge"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}
