package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition rendering for the /metrics endpoint, plus a
// strict parser used by tests and the CI smoke job to prove the output
// is machine-readable. Counters become *_total counters, gauges become
// gauges, and histograms (per-class latency plus any HistFeeds) are
// rendered as summaries with fixed quantiles — our log-bucketed
// histograms have 512 buckets, far too many to expose as a native
// Prometheus histogram.

// HistFeed is one histogram exposed on /metrics as a summary.
type HistFeed struct {
	// Name is the full metric name, e.g. "bwtree_wal_fsync_seconds".
	Name string
	// Help is the one-line HELP text.
	Help string
	// Seconds marks the recorded values as nanoseconds to be rendered in
	// seconds (the Prometheus base unit); false renders raw values.
	Seconds bool
	Snap    HistSnapshot
}

var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999},
}

// promName sanitizes s into a valid Prometheus metric-name fragment.
func promName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && r >= '0' && r <= '9'
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSummary(w io.Writer, name, help string, labels string, snap *HistSnapshot, seconds bool) {
	scale := 1.0
	if seconds {
		scale = 1e-9
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	for _, pq := range promQuantiles {
		sep := "{"
		if labels != "" {
			sep = "{" + labels + ","
		}
		fmt.Fprintf(w, "%s%squantile=%q} %s\n", name, sep, pq.label,
			promFloat(snap.Quantile(pq.q)*scale))
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, promFloat(float64(snap.Sum)*scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, snap.Total())
}

// WritePrometheus renders v (and the sampler's rates, if any) to w in
// the Prometheus text exposition format, namespaced under bwtree_.
func WritePrometheus(w io.Writer, v Vars, sampler *Sampler) {
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if v.Counters != nil {
		c := v.Counters()
		names := make([]string, 0, len(c))
		for k := range c {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			n := "bwtree_" + promName(k) + "_total"
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", n, n, c[k])
		}
	}
	if v.Gauges != nil {
		g := v.Gauges()
		names := make([]string, 0, len(g))
		for k := range g {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			n := "bwtree_" + promName(k)
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(g[k]))
		}
	}
	if sampler != nil {
		r := sampler.Rates()
		names := make([]string, 0, len(r))
		for k := range r {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			n := "bwtree_" + promName(k)
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(r[k]))
		}
	}
	if v.Latency != nil {
		if snap := v.Latency(); snap != nil {
			name := "bwtree_op_latency_seconds"
			for c := OpClass(0); c < NumOpClasses; c++ {
				h := snap.Class(c)
				if h.Total() == 0 {
					continue
				}
				writeSummary(bw, name, "per-operation latency by class",
					fmt.Sprintf("class=%q", c.String()), h, true)
			}
		}
	}
	if v.MetricHists != nil {
		for _, f := range v.MetricHists() {
			if f.Snap.Total() == 0 {
				continue
			}
			writeSummary(bw, promName(f.Name), f.Help, "", &f.Snap, f.Seconds)
		}
	}
}

// ParsePrometheus is a strict validator for the text exposition format:
// it checks every line is a well-formed comment or sample and returns
// the number of samples. It exists so tests and the CI smoke job can
// prove /metrics output is parseable without a prometheus dependency.
func ParsePrometheus(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, "TYPE ") {
				f := strings.Fields(rest)
				if len(f) != 3 || !validPromName(f[1]) || !validPromType(f[2]) {
					return samples, fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
			}
			// HELP and free comments are unconstrained.
			continue
		}
		if err := validSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %v: %q", lineNo, err, line)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

func validPromType(t string) bool {
	switch t {
	case "counter", "gauge", "summary", "histogram", "untyped":
		return true
	}
	return false
}

func validPromName(n string) bool {
	if n == "" {
		return false
	}
	for i, r := range n {
		ok := r == '_' || r == ':' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// validSample checks one sample line: name[{labels}] value [timestamp].
func validSample(line string) error {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return fmt.Errorf("missing metric name or value")
	}
	if !validPromName(line[:i]) {
		return fmt.Errorf("invalid metric name")
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return err
		}
		rest = rest[end:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return fmt.Errorf("missing value separator")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value and optional timestamp")
	}
	switch fields[0] {
	case "NaN", "+Inf", "-Inf", "Inf":
	default:
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			return fmt.Errorf("invalid value %q", fields[0])
		}
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return nil
}

// scanLabels validates a {name="value",...} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// label name
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validPromName(s[start:i]) {
			return 0, fmt.Errorf("invalid label name")
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value must be quoted")
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		i++ // closing quote
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
