package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// endOp closes one op with a synthetic start/duration.
func endOp(p *Probe, c OpClass, dur int64) {
	start := Now() - dur
	p.OpEnd(c, start, dur)
}

func TestProbeSamplingCadence(t *testing.T) {
	d := NewDeep(DeepConfig{SampleEvery: 4, TraceBuf: 1024})
	p := d.Probe()
	const ops = 100
	for i := 0; i < ops; i++ {
		p.OpBegin()
		if p.Active() {
			t0 := Now()
			p.Span(PhaseDescend, t0, 0)
		}
		endOp(p, OpRead, 10)
	}
	traces := d.Traces()
	if want := ops / 4; len(traces) != want {
		t.Fatalf("sampled %d traces out of %d ops at 1-in-4, want %d", len(traces), ops, want)
	}
	for i, tr := range traces {
		if tr.Class != OpRead || tr.NSpans != 1 || tr.Spans[0].Phase != PhaseDescend {
			t.Fatalf("trace %d = %+v, want one descend span on a read", i, tr)
		}
	}
	// Destructive drain: a second call returns nothing.
	if again := d.Traces(); len(again) != 0 {
		t.Fatalf("second drain returned %d traces, want 0", len(again))
	}
}

func TestProbeNilReceiver(t *testing.T) {
	var p *Probe
	// Every probe entry point must be a no-op on the disabled (nil) path.
	p.OpBegin()
	p.NoteChain(3)
	p.NoteCASFail()
	p.NoteAbort()
	p.OpEnd(OpInsert, 0, 0)
	if p.Active() {
		t.Fatal("nil probe reports Active")
	}
}

func TestProbeNesting(t *testing.T) {
	d := NewDeep(DeepConfig{SampleEvery: 1, TraceBuf: 64, FlightBuf: 64})
	p := d.Probe()
	// A durable commit wraps the in-memory apply: two OpBegins, two
	// OpEnds, but only the outermost finalizes (one trace, one flight
	// entry, the outer class).
	p.OpBegin()
	p.OpBegin()
	p.NoteChain(5)
	endOp(p, OpRead, 1) // inner end: must not finalize
	endOp(p, OpUpdate, 100)
	traces := d.Traces()
	if len(traces) != 1 {
		t.Fatalf("nested op produced %d traces, want 1", len(traces))
	}
	if traces[0].Class != OpUpdate || traces[0].ChainLen != 5 {
		t.Fatalf("outermost trace = %+v, want update with chain 5", traces[0])
	}
	fl := d.Flight(0)
	if len(fl) != 1 || fl[0].Class != OpUpdate {
		t.Fatalf("flight = %+v, want one update entry", fl)
	}
}

func TestTraceRingWrapCountsDropped(t *testing.T) {
	d := NewDeep(DeepConfig{SampleEvery: 1, TraceBuf: 8})
	p := d.Probe()
	const ops = 20
	for i := 0; i < ops; i++ {
		p.OpBegin()
		endOp(p, OpInsert, int64(i))
	}
	if got := d.TracesDropped(); got != ops-8 {
		t.Fatalf("TracesDropped = %d, want %d", got, ops-8)
	}
	traces := d.Traces()
	if len(traces) != 8 {
		t.Fatalf("drained %d traces from an 8-slot ring, want 8", len(traces))
	}
	// The ring keeps the newest ops and the drain sorts by Seq.
	for i := 1; i < len(traces); i++ {
		if traces[i].Seq <= traces[i-1].Seq {
			t.Fatalf("drain not Seq-sorted: %d after %d", traces[i].Seq, traces[i-1].Seq)
		}
	}
	if traces[len(traces)-1].Seq != ops {
		t.Fatalf("newest trace Seq = %d, want %d", traces[len(traces)-1].Seq, ops)
	}
}

func TestFlightRingKeepsNewest(t *testing.T) {
	d := NewDeep(DeepConfig{FlightBuf: 4})
	p := d.Probe()
	for i := 0; i < 10; i++ {
		p.OpBegin()
		endOp(p, OpDelete, int64(i))
	}
	fl := d.Flight(0)
	if len(fl) != 4 {
		t.Fatalf("flight holds %d entries, want 4", len(fl))
	}
	if fl[0].Seq != 7 || fl[3].Seq != 10 {
		t.Fatalf("flight seqs = [%d..%d], want [7..10]", fl[0].Seq, fl[3].Seq)
	}
	// Tail request trims from the front; the copy is non-destructive.
	if tail := d.Flight(2); len(tail) != 2 || tail[1].Seq != 10 {
		t.Fatalf("Flight(2) = %+v, want the two newest", tail)
	}
	if again := d.Flight(0); len(again) != 4 {
		t.Fatalf("flight drained by read: %d entries left", len(again))
	}
}

func TestAnomalyRateLimitAndNoteBypass(t *testing.T) {
	d := NewDeep(DeepConfig{FlightBuf: 16, LatencyAnomalyNS: 1000})
	var dumps atomic.Int64
	d.SetAnomalySink(func(reason string, recent []OpSummary) {
		dumps.Add(1)
	})
	p := d.Probe()
	// A storm of over-threshold ops triggers many anomalies but at most
	// one dump per rate-limit window.
	for i := 0; i < 50; i++ {
		p.OpBegin()
		endOp(p, OpScan, 5000)
	}
	if got := d.Anomalies(); got != 50 {
		t.Fatalf("Anomalies = %d, want 50", got)
	}
	if got := dumps.Load(); got != 1 {
		t.Fatalf("sink ran %d times during the storm, want 1 (rate-limited)", got)
	}
	// Note bypasses the limit even immediately after a dump.
	d.Note("recovery start")
	d.Note("second note")
	if got := dumps.Load(); got != 3 {
		t.Fatalf("sink ran %d times after two Notes, want 3", got)
	}
}

func TestAnomalyChainTrigger(t *testing.T) {
	d := NewDeep(DeepConfig{FlightBuf: 8, ChainAnomaly: 16})
	var reason atomic.Pointer[string]
	d.SetAnomalySink(func(r string, recent []OpSummary) { reason.Store(&r) })
	p := d.Probe()
	p.OpBegin()
	p.NoteChain(40)
	endOp(p, OpInsert, 10)
	r := reason.Load()
	if r == nil || !strings.Contains(*r, "chain depth 40") {
		t.Fatalf("chain anomaly reason = %v, want mention of chain depth 40", r)
	}
}

func TestProbeReusePreservesTraces(t *testing.T) {
	d := NewDeep(DeepConfig{SampleEvery: 1, TraceBuf: 64})
	p := d.Probe()
	p.OpBegin()
	endOp(p, OpInsert, 10)
	d.Release(p)
	p2 := d.Probe()
	if p2 != p {
		t.Fatal("released probe not reused")
	}
	if traces := d.Traces(); len(traces) != 1 {
		t.Fatalf("undrained trace lost across release/reuse: got %d", len(traces))
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	d := NewDeep(DeepConfig{SampleEvery: 1, TraceBuf: 64})
	p := d.Probe()
	p.OpBegin()
	if p.Active() {
		t0 := Now() - int64(2*time.Microsecond)
		p.Span(PhaseChainWalk, t0, 7)
		p.Span(PhaseCAS, Now()-int64(time.Microsecond), 1)
	}
	p.NoteChain(7)
	p.NoteCASFail()
	endOp(p, OpUpdate, int64(5*time.Microsecond))

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, d.Traces()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var sawOp, sawWalk, sawCAS bool
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X" && e.Name == "update":
			sawOp = true
			if e.Args["chain_len"] != float64(7) || e.Args["cas_retries"] != float64(1) {
				t.Fatalf("op args = %v, want chain_len 7 and cas_retries 1", e.Args)
			}
		case e.Ph == "X" && e.Name == "chain-walk":
			sawWalk = true
		case e.Ph == "X" && e.Name == "cas":
			sawCAS = true
		}
	}
	if !sawOp || !sawWalk || !sawCAS {
		t.Fatalf("missing events: op=%v walk=%v cas=%v\n%s", sawOp, sawWalk, sawCAS, buf.Bytes())
	}
}

func TestOpSummaryJSONRoundTrip(t *testing.T) {
	in := OpSummary{Seq: 9, Class: OpScan, Start: 100, Dur: 200, ChainLen: 3}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out OpSummary
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	var hist Histogram
	for i := int64(1); i <= 1000; i++ {
		hist.RecordNS(i * 1000)
	}
	var snap HistSnapshot
	hist.AddTo(&snap)
	var buf bytes.Buffer
	WritePrometheus(&buf, Vars{
		Counters:    func() map[string]uint64 { return map[string]uint64{"ops": 123} },
		Gauges:      func() map[string]float64 { return map[string]float64{"epoch_lag": 2} },
		MetricHists: func() []HistFeed { return []HistFeed{{Name: "bwtree_chain_depth", Help: "test", Snap: snap}} },
	}, nil)
	n, err := ParsePrometheus(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("own output failed validation: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("no samples parsed")
	}
	for _, want := range []string{"bwtree_ops_total 123", "bwtree_epoch_lag 2", "bwtree_chain_depth_count 1000"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, buf.String())
		}
	}
}
