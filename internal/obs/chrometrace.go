package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: renders sampled OpTraces in the JSON object
// format understood by chrome://tracing and Perfetto. Each operation
// becomes one complete ("X") event on (pid 1, tid = worker), with its
// recorded phases as nested complete events; chain length, CaS retries,
// and abort counts ride along as args. Timestamps are microseconds since
// process start (obs.Now / 1000), so spans line up across sessions.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders traces (as drained from a Deep) to w as
// Chrome trace-event JSON. The export path allocates freely; it runs
// offline, never on the hot path.
func WriteChromeTrace(w io.Writer, traces []OpTrace) error {
	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "bwtree"},
	})
	seenTID := map[int]bool{}
	for _, t := range traces {
		tid := int(t.Worker)
		if !seenTID[tid] {
			seenTID[tid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": "session"},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: t.Class.String(),
			Cat:  "op",
			Ph:   "X",
			TS:   float64(t.Start) / 1e3,
			Dur:  float64(t.Dur) / 1e3,
			PID:  1,
			TID:  tid,
			Args: map[string]any{
				"seq":         t.Seq,
				"chain_len":   t.ChainLen,
				"cas_retries": t.CASRetries,
				"aborts":      t.Aborts,
			},
		})
		for i := int32(0); i < t.NSpans; i++ {
			sp := t.Spans[i]
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sp.Phase.String(),
				Cat:  "phase",
				Ph:   "X",
				TS:   float64(sp.Start) / 1e3,
				Dur:  float64(sp.Dur) / 1e3,
				PID:  1,
				TID:  tid,
				Args: map[string]any{"arg": sp.Arg, "op_seq": t.Seq},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
