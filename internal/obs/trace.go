package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// EventKind enumerates the structural events the tracer records.
type EventKind uint8

const (
	// EvSplit: a node published a ∆split (node = left, A = new right
	// sibling's ID, B = left-half item count).
	EvSplit EventKind = iota
	// EvMerge: a node was merged away (node = victim, A = absorbing left
	// sibling's ID).
	EvMerge
	// EvConsolidate: a chain was folded into a fresh base (node = ID,
	// A = chain depth folded, B = resulting item count).
	EvConsolidate
	// EvAbort: a traversal restarted from the root.
	EvAbort
	// EvEpochAdvance: the GC's global epoch advanced (A = epoch/advance
	// count).
	EvEpochAdvance
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"split", "merge", "consolidate", "abort", "epoch-advance",
}

// String returns the kind's report name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name produced by MarshalJSON.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range eventKindNames {
		if n == name {
			*k = EventKind(i)
			return nil
		}
	}
	return fmt.Errorf("unknown event kind %q", name)
}

// Event is one structural-modification or GC occurrence. Seq is drawn
// from the tracer's global counter, so sorting a drained batch by Seq
// reconstructs the tree-wide order in which events were initiated.
type Event struct {
	Seq  uint64    `json:"seq"`
	Time int64     `json:"time_ns"` // obs.Now() at emission
	Kind EventKind `json:"kind"`
	Node uint64    `json:"node"`
	A    uint64    `json:"a,omitempty"`
	B    uint64    `json:"b,omitempty"`
}

// Tracer owns a set of fixed-size per-session event rings and a global
// sequence counter. Sessions emit into their private ring (one short
// uncontended critical section per event — events are SMO-rate, not
// op-rate); Drain gathers every ring into one stream ordered by Seq.
type Tracer struct {
	ringSize int
	seq      atomic.Uint64
	dropped  atomic.Uint64

	mu    sync.Mutex
	rings []*Ring
	free  []*Ring
}

// NewTracer returns a tracer whose rings hold ringSize events each.
func NewTracer(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	return &Tracer{ringSize: ringSize}
}

// RingSize returns the per-ring capacity.
func (t *Tracer) RingSize() int { return t.ringSize }

// Ring returns a ring for one emitting goroutine, reusing a released
// one when available (its undrained events are preserved).
func (t *Tracer) Ring() *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.free); n > 0 {
		r := t.free[n-1]
		t.free = t.free[:n-1]
		return r
	}
	r := &Ring{tr: t, buf: make([]Event, t.ringSize)}
	t.rings = append(t.rings, r)
	return r
}

// Release returns a ring to the reuse pool. Its events stay drainable.
func (t *Tracer) Release(r *Ring) {
	if r == nil {
		return
	}
	t.mu.Lock()
	t.free = append(t.free, r)
	t.mu.Unlock()
}

// Drain removes every buffered event from every ring and returns them as
// one stream sorted by sequence number. Events overwritten before a
// drain are counted by Dropped.
func (t *Tracer) Drain() []Event {
	t.mu.Lock()
	rings := make([]*Ring, len(t.rings))
	copy(rings, t.rings)
	t.mu.Unlock()

	var out []Event
	for _, r := range rings {
		out = r.drain(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dropped returns the cumulative count of events lost to ring
// wraparound before they could be drained.
func (t *Tracer) Dropped() uint64 { return t.dropped.Load() }

// Ring is a fixed-size event buffer owned by one emitting goroutine.
// Emission and draining synchronize on a private mutex; the critical
// sections are a few stores long, and events are rare relative to
// operations, so the lock is effectively uncontended.
type Ring struct {
	tr *Tracer

	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted into this ring
}

// Emit records one event. The sequence number is drawn from the
// tracer's global counter before the slot is filled, so per-ring slot
// order matches sequence order (one writer per ring).
func (r *Ring) Emit(kind EventKind, node, a, b uint64) {
	ev := Event{
		Seq:  r.tr.seq.Add(1),
		Time: Now(),
		Kind: kind,
		Node: node,
		A:    a,
		B:    b,
	}
	r.mu.Lock()
	if r.next >= uint64(len(r.buf)) {
		r.tr.dropped.Add(1)
	}
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// drain appends the ring's buffered events (oldest first) to out and
// resets it.
func (r *Ring) drain(out []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	n := r.next
	if n > size {
		n = size
	}
	// Oldest surviving event first: the ring holds the last n emissions,
	// ending at position (r.next-1)%size.
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(r.next-n+i)%size])
	}
	r.next = 0
	return out
}
