package obs

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSamplerRates(t *testing.T) {
	var ctr atomic.Uint64
	s := NewSampler(time.Hour, func() map[string]uint64 {
		return map[string]uint64{"ops": ctr.Load()}
	})
	defer s.Close()

	// Drive sample() directly for determinism: 1000 ops over 2 seconds.
	base := time.Now()
	ctr.Store(1000)
	s.sample(base.Add(2 * time.Second))
	rates := s.Rates()
	got := rates["ops_per_sec"]
	if got < 499 || got > 501 {
		t.Fatalf("ops_per_sec = %v, want ~500", got)
	}

	// No growth → zero rate.
	s.sample(base.Add(3 * time.Second))
	if got := s.Rates()["ops_per_sec"]; got != 0 {
		t.Fatalf("idle ops_per_sec = %v, want 0", got)
	}
}

func TestSamplerBackground(t *testing.T) {
	var ctr atomic.Uint64
	s := NewSampler(5*time.Millisecond, func() map[string]uint64 {
		return map[string]uint64{"ops": ctr.Add(100)}
	})
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.Rates()["ops_per_sec"] > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background sampler never produced a positive rate")
}

func TestSamplerCloseIdempotent(t *testing.T) {
	s := NewSampler(time.Hour, func() map[string]uint64 { return nil })
	s.Close()
	s.Close()
}
