package obs

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the deep-path tracing layer: sampled per-operation phase
// traces and the always-on flight recorder.
//
// A Deep instance owns a set of per-session Probes, mirroring how Tracer
// owns Rings. Each probe keeps two ring buffers:
//
//   - traces: full phase breakdowns of sampled operations (1 in
//     SampleEvery), drained destructively for Chrome-trace export;
//   - flight: compact summaries of *every* completed operation, kept for
//     post-hoc inspection and dumped automatically on anomaly.
//
// The recording discipline matches the package contract: when tracing is
// disabled the tree holds no Deep at all and every probe call is a single
// nil check on a nil *Probe receiver. When enabled, the per-op state
// (span array, counters) is owner-private plain memory; the only shared
// work per op is one global sequence fetch plus one short uncontended
// mutex section to publish the flight entry (and, for the 1-in-N sampled
// ops, a second one for the trace ring). The mutexes exist solely so the
// HTTP dump endpoints can copy entries without torn reads.

// Phase enumerates the hot-path segments a sampled operation is broken
// into. The Arg a span carries is phase-specific (see the constants).
type Phase uint8

const (
	// PhaseDescend: root-to-leaf traversal — mapping-table lookups plus
	// inner-chain routing. Arg is unused.
	PhaseDescend Phase = iota
	// PhaseChainWalk: leaf delta-chain replay. Arg is the observed chain
	// depth (delta records above the base node).
	PhaseChainWalk
	// PhaseBaseSearch: binary search over the base node. Arg is the
	// search-window width in items (narrowed by offset shortcuts).
	PhaseBaseSearch
	// PhaseCAS: one mapping-table publish attempt. Arg is 0 when the CaS
	// won, 1 when it lost and the operation will retry.
	PhaseCAS
	// PhaseConsolidate: consolidation work stolen by this operation
	// (folding a chain it found over threshold). Arg is the chain depth
	// folded.
	PhaseConsolidate
	// PhaseWALAppend: appending the logical redo record (durable trees).
	// Arg is the assigned LSN.
	PhaseWALAppend
	// PhaseFsyncWait: blocking on the group-commit fsync (durable trees
	// with SyncOnCommit). Arg is the LSN waited for.
	PhaseFsyncWait
	// NumPhases bounds arrays indexed by Phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"descend", "chain-walk", "base-search", "cas", "consolidate",
	"wal-append", "fsync-wait",
}

// String returns the phase's report name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Span is one timed phase inside a sampled operation.
type Span struct {
	Phase Phase
	Start int64 // obs.Now at phase start
	Dur   int64
	Arg   uint64
}

// MaxOpSpans bounds the spans recorded per sampled operation; an op that
// retries past the cap keeps its counters exact but drops further spans.
const MaxOpSpans = 16

// OpTrace is one sampled operation's phase breakdown. Spans[:NSpans] are
// valid; the array is fixed-size so recording never allocates.
type OpTrace struct {
	Seq        uint64
	Class      OpClass
	Worker     int32 // probe (session) index, the Chrome-trace tid
	Start      int64
	Dur        int64
	ChainLen   uint32 // deepest leaf chain observed
	CASRetries uint32 // mapping-table publish attempts that lost
	Aborts     uint32 // traversal restarts
	NSpans     int32
	Spans      [MaxOpSpans]Span
}

// OpSummary is one flight-recorder entry: the compact always-on record
// of a completed operation.
type OpSummary struct {
	Seq        uint64  `json:"seq"`
	Class      OpClass `json:"class"`
	Start      int64   `json:"start_ns"`
	Dur        int64   `json:"dur_ns"`
	ChainLen   uint32  `json:"chain_len"`
	CASRetries uint32  `json:"cas_retries"`
	Aborts     uint32  `json:"aborts"`
}

// AnomalySink receives automatic flight-recorder dumps: a one-line
// reason and the dumping session's most recent op summaries (oldest
// first).
type AnomalySink func(reason string, recent []OpSummary)

// DeepConfig configures a Deep tracing instance.
type DeepConfig struct {
	// SampleEvery samples every Nth operation per session into a full
	// phase trace; 0 disables phase sampling (the flight recorder can
	// still run).
	SampleEvery int
	// TraceBuf is the per-session sampled-trace ring capacity
	// (default 256).
	TraceBuf int
	// FlightBuf is the per-session flight-recorder capacity; 0 disables
	// the flight recorder.
	FlightBuf int
	// LatencyAnomalyNS auto-dumps the flight recorder when an op takes
	// longer than this many nanoseconds; 0 disables the latency trigger.
	LatencyAnomalyNS int64
	// ChainAnomaly auto-dumps when an op observes a leaf chain deeper
	// than this (the consolidation trigger is the natural setting); 0
	// disables the chain trigger.
	ChainAnomaly int
}

func (c *DeepConfig) sanitize() {
	if c.SampleEvery < 0 {
		c.SampleEvery = 0
	}
	if c.TraceBuf <= 0 {
		c.TraceBuf = 256
	}
	if c.FlightBuf < 0 {
		c.FlightBuf = 0
	}
}

// Deep owns the deep-path tracing state for one tree: the probe pool,
// the global op sequence, and the anomaly sink.
type Deep struct {
	cfg DeepConfig

	seq       atomic.Uint64
	dropped   atomic.Uint64 // sampled traces lost to ring wraparound
	anomalies atomic.Uint64 // anomaly triggers (dumped or rate-limited)
	lastDump  atomic.Int64  // obs.Now of the last sink invocation
	sink      atomic.Pointer[AnomalySink]

	mu     sync.Mutex
	probes []*Probe
	free   []*Probe
}

// NewDeep returns a tracing instance with cfg (zero fields defaulted).
func NewDeep(cfg DeepConfig) *Deep {
	cfg.sanitize()
	return &Deep{cfg: cfg}
}

// Config returns the sanitized configuration.
func (d *Deep) Config() DeepConfig { return d.cfg }

// SetAnomalySink replaces the automatic-dump destination. A nil sink
// restores the default, which logs a compact rendering to stderr.
func (d *Deep) SetAnomalySink(fn AnomalySink) {
	if fn == nil {
		d.sink.Store(nil)
		return
	}
	d.sink.Store(&fn)
}

// Probe returns a probe for one session, reusing a released one when
// available (its undrained traces are preserved).
func (d *Deep) Probe() *Probe {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.free); n > 0 {
		p := d.free[n-1]
		d.free = d.free[:n-1]
		return p
	}
	p := &Probe{d: d, worker: int32(len(d.probes))}
	if d.cfg.SampleEvery > 0 {
		p.traces = make([]OpTrace, d.cfg.TraceBuf)
	}
	if d.cfg.FlightBuf > 0 {
		p.flight = make([]OpSummary, d.cfg.FlightBuf)
	}
	d.probes = append(d.probes, p)
	return p
}

// Release returns a probe to the reuse pool. Its recorded state stays
// drainable.
func (d *Deep) Release(p *Probe) {
	if p == nil {
		return
	}
	d.mu.Lock()
	d.free = append(d.free, p)
	d.mu.Unlock()
}

// snapshotProbes copies the probe registry for lock-free iteration.
func (d *Deep) snapshotProbes() []*Probe {
	d.mu.Lock()
	probes := make([]*Probe, len(d.probes))
	copy(probes, d.probes)
	d.mu.Unlock()
	return probes
}

// Traces drains every probe's sampled phase traces into one stream
// sorted by sequence number. Destructive: each trace is returned once.
func (d *Deep) Traces() []OpTrace {
	var out []OpTrace
	for _, p := range d.snapshotProbes() {
		out = p.drainTraces(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TracesDropped returns how many sampled traces were lost to ring
// wraparound before they could be drained.
func (d *Deep) TracesDropped() uint64 { return d.dropped.Load() }

// Flight returns the newest n flight-recorder entries across every
// session (all entries when n <= 0), oldest first. Non-destructive.
func (d *Deep) Flight(n int) []OpSummary {
	var out []OpSummary
	for _, p := range d.snapshotProbes() {
		out = p.flightCopy(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && n < len(out) {
		out = out[len(out)-n:]
	}
	return out
}

// Anomalies returns the cumulative anomaly-trigger count (including
// triggers suppressed by the dump rate limit).
func (d *Deep) Anomalies() uint64 { return d.anomalies.Load() }

// ChainDepths merges every probe's observed leaf-chain-depth histogram.
func (d *Deep) ChainDepths() HistSnapshot {
	var s HistSnapshot
	for _, p := range d.snapshotProbes() {
		p.depth.AddTo(&s)
	}
	return s
}

// Note pushes an out-of-band event (e.g. recovery start) through the
// anomaly sink, bypassing the rate limit, with the current tree-wide
// flight tail attached.
func (d *Deep) Note(reason string) {
	d.anomalies.Add(1)
	d.lastDump.Store(Now())
	d.emit(reason, d.Flight(64))
}

// anomalyDumpGap is the minimum spacing between automatic dumps, so an
// anomaly storm (every op over threshold) degrades to one dump a second
// instead of a stderr flood.
const anomalyDumpGap = int64(time.Second)

// anomaly handles one triggered condition from p's session: count it,
// and dump that session's recent entries unless rate-limited.
func (d *Deep) anomaly(reason string, p *Probe) {
	d.anomalies.Add(1)
	now := Now()
	last := d.lastDump.Load()
	// last == 0 means no dump yet: without the explicit check, an anomaly
	// in the process's first rate-limit window would be suppressed.
	if (last != 0 && now-last < anomalyDumpGap) || !d.lastDump.CompareAndSwap(last, now) {
		return
	}
	d.emit(reason, p.flightCopy(nil))
}

func (d *Deep) emit(reason string, recent []OpSummary) {
	if fn := d.sink.Load(); fn != nil {
		(*fn)(reason, recent)
		return
	}
	defaultAnomalySink(reason, recent)
}

// defaultAnomalySink logs the reason and a tail of the ring to stderr.
func defaultAnomalySink(reason string, recent []OpSummary) {
	const tail = 8
	if len(recent) > tail {
		recent = recent[len(recent)-tail:]
	}
	line := fmt.Sprintf("bwtree flightrec: %s; last %d ops:", reason, len(recent))
	for _, s := range recent {
		line += fmt.Sprintf(" [%s %dus chain=%d cas=%d ab=%d]",
			s.Class, s.Dur/1000, s.ChainLen, s.CASRetries, s.Aborts)
	}
	log.Print(line)
}

// Probe is one session's deep-tracing state. All Op*/Note*/Span methods
// are called only by the owning session goroutine; a nil receiver is
// valid everywhere and makes each call a single nil check — the
// disabled-mode contract.
type Probe struct {
	d      *Deep
	worker int32

	// Owner-private per-op state: plain fields, single writer.
	ctr      uint64 // outermost ops begun, drives sampling
	nest     int32  // OpBegin depth (a durable commit wraps a tree op)
	active   bool   // current outermost op is sampled
	opChain  uint32
	opCAS    uint32
	opAborts uint32
	cur      OpTrace

	// depth is the live leaf-chain-depth distribution (atomic adds; read
	// concurrently by ChainDepths).
	depth Histogram

	// Ring publication is mutex-guarded so dump endpoints never see torn
	// entries; both locks are uncontended except during a dump.
	tmu    sync.Mutex
	traces []OpTrace // nil unless sampling enabled
	tnext  uint64

	fmu    sync.Mutex
	flight []OpSummary // nil unless the flight recorder is enabled
	fnext  uint64
}

// Active reports whether the current operation is being phase-sampled;
// span probes gate their clock reads on it.
func (p *Probe) Active() bool { return p != nil && p.active }

// OpBegin opens one public operation. Nested calls (a durable commit
// wrapping the in-memory apply, or per-op accounting inside a batch)
// attach to the outermost operation; only it is sampled and summarized.
func (p *Probe) OpBegin() {
	if p == nil {
		return
	}
	p.nest++
	if p.nest > 1 {
		return
	}
	p.opChain, p.opCAS, p.opAborts = 0, 0, 0
	if p.traces != nil {
		p.ctr++
		if every := uint64(p.d.cfg.SampleEvery); p.ctr%every == 0 {
			p.active = true
			p.cur = OpTrace{Worker: p.worker}
		}
	}
}

// Span records one timed phase of the sampled operation. Callers must
// have checked Active (and captured start) before doing the phase work.
func (p *Probe) Span(ph Phase, start int64, arg uint64) {
	if int(p.cur.NSpans) >= len(p.cur.Spans) {
		return
	}
	p.cur.Spans[p.cur.NSpans] = Span{Phase: ph, Start: start, Dur: Now() - start, Arg: arg}
	p.cur.NSpans++
}

// NoteChain records one observed leaf-chain depth: it feeds the live
// depth distribution and the current op's summary.
func (p *Probe) NoteChain(n uint32) {
	if p == nil {
		return
	}
	if n > p.opChain {
		p.opChain = n
	}
	p.depth.RecordNS(int64(n))
}

// NoteCASFail counts one lost mapping-table publish.
func (p *Probe) NoteCASFail() {
	if p == nil {
		return
	}
	p.opCAS++
}

// NoteAbort counts one traversal restart.
func (p *Probe) NoteAbort() {
	if p == nil {
		return
	}
	p.opAborts++
}

// OpEnd closes the operation opened by the matching OpBegin. At the
// outermost level it publishes the flight entry, checks the anomaly
// triggers, and finalizes the sampled trace if the op was sampled.
func (p *Probe) OpEnd(c OpClass, start, dur int64) {
	if p == nil {
		return
	}
	p.nest--
	if p.nest > 0 {
		return
	}
	if p.nest < 0 {
		p.nest = 0 // tolerate an unmatched OpEnd rather than corrupt state
	}
	seq := p.d.seq.Add(1)
	if p.flight != nil {
		sum := OpSummary{
			Seq: seq, Class: c, Start: start, Dur: dur,
			ChainLen: p.opChain, CASRetries: p.opCAS, Aborts: p.opAborts,
		}
		p.fmu.Lock()
		p.flight[p.fnext%uint64(len(p.flight))] = sum
		p.fnext++
		p.fmu.Unlock()
		cfg := &p.d.cfg
		switch {
		case cfg.LatencyAnomalyNS > 0 && dur > cfg.LatencyAnomalyNS:
			p.d.anomaly(fmt.Sprintf("%s op took %dus (threshold %dus)",
				c, dur/1000, cfg.LatencyAnomalyNS/1000), p)
		case cfg.ChainAnomaly > 0 && p.opChain > uint32(cfg.ChainAnomaly):
			p.d.anomaly(fmt.Sprintf("%s op saw chain depth %d (consolidation trigger %d)",
				c, p.opChain, cfg.ChainAnomaly), p)
		}
	}
	if p.active {
		p.active = false
		p.cur.Seq = seq
		p.cur.Class = c
		p.cur.Start = start
		p.cur.Dur = dur
		p.cur.ChainLen = p.opChain
		p.cur.CASRetries = p.opCAS
		p.cur.Aborts = p.opAborts
		p.tmu.Lock()
		if p.tnext >= uint64(len(p.traces)) {
			p.d.dropped.Add(1)
		}
		p.traces[p.tnext%uint64(len(p.traces))] = p.cur
		p.tnext++
		p.tmu.Unlock()
	}
}

// drainTraces appends the probe's buffered traces (oldest first) to out
// and resets the ring.
func (p *Probe) drainTraces(out []OpTrace) []OpTrace {
	if p.traces == nil {
		return out
	}
	p.tmu.Lock()
	defer p.tmu.Unlock()
	size := uint64(len(p.traces))
	n := p.tnext
	if n > size {
		n = size
	}
	for i := uint64(0); i < n; i++ {
		out = append(out, p.traces[(p.tnext-n+i)%size])
	}
	p.tnext = 0
	return out
}

// flightCopy appends the ring's current entries (oldest first) to out
// without consuming them.
func (p *Probe) flightCopy(out []OpSummary) []OpSummary {
	if p.flight == nil {
		return out
	}
	p.fmu.Lock()
	defer p.fmu.Unlock()
	size := uint64(len(p.flight))
	n := p.fnext
	if n > size {
		n = size
	}
	for i := uint64(0); i < n; i++ {
		out = append(out, p.flight[(p.fnext-n+i)%size])
	}
	return out
}
