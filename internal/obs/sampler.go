package obs

import (
	"sync"
	"time"
)

// Sampler turns monotonic counters into rates: a background goroutine
// fetches a counter map every interval and publishes the per-second
// delta of each key under "<key>_per_sec".
type Sampler struct {
	fetch    func() map[string]uint64
	interval time.Duration

	mu     sync.Mutex
	prev   map[string]uint64
	prevAt time.Time
	rates  map[string]float64

	stop    chan struct{}
	done    chan struct{}
	closeOn sync.Once
}

// NewSampler starts a sampler over fetch. A zero interval defaults to
// one second.
func NewSampler(interval time.Duration, fetch func() map[string]uint64) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{
		fetch:    fetch,
		interval: interval,
		rates:    map[string]float64{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample(time.Now()) // baseline
	go s.run()
	return s
}

func (s *Sampler) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C:
			s.sample(now)
		}
	}
}

// sample fetches the counters and folds deltas into rates.
func (s *Sampler) sample(now time.Time) {
	cur := s.fetch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prev != nil {
		dt := now.Sub(s.prevAt).Seconds()
		if dt > 0 {
			rates := make(map[string]float64, len(cur))
			for k, v := range cur {
				rates[k+"_per_sec"] = float64(v-s.prev[k]) / dt
			}
			s.rates = rates
		}
	}
	s.prev = cur
	s.prevAt = now
}

// Rates returns the most recent per-second rates (a copy).
func (s *Sampler) Rates() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.rates))
	for k, v := range s.rates {
		out[k] = v
	}
	return out
}

// Close stops the background goroutine.
func (s *Sampler) Close() {
	s.closeOn.Do(func() {
		close(s.stop)
		<-s.done
	})
}
