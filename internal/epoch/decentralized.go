package epoch

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Decentralized is the OpenBw-Tree GC scheme (Fig. 5b of the paper),
// adopted from Silo and Deuteronomy. A single global epoch counter is
// advanced periodically by a background goroutine. Each worker keeps a
// private local epoch — published with a plain atomic store, never
// contended — and a private garbage list whose entries are tagged with the
// global epoch at retire time. A worker reclaims its own garbage whenever
// every registered worker's local epoch has advanced past a tag.
type Decentralized struct {
	global   atomic.Uint64
	interval time.Duration
	// threshold is the local-garbage length that triggers a reclamation
	// scan (the paper's "GC threshold", default 1024).
	threshold int

	mu      sync.Mutex // guards handles registry and orphans (cold path)
	handles map[*decentralHandle]struct{}
	orphans []taggedGarbage // garbage from unregistered handles

	stop    chan struct{}
	done    chan struct{}
	stats   centralStats
	closeOn sync.Once

	// advanceHook is invoked by the background goroutine after each epoch
	// advance; stored atomically because it is installed after run() has
	// started.
	advanceHook atomic.Pointer[func(uint64)]
}

// idleEpoch marks a worker as outside any critical section; it never
// blocks reclamation.
const idleEpoch = math.MaxUint64

// NewDecentralized starts a decentralized GC whose global epoch advances
// every interval. threshold is the per-worker garbage-list length that
// triggers a reclamation attempt; the paper's default is 1024.
func NewDecentralized(interval time.Duration, threshold int) *Decentralized {
	if threshold <= 0 {
		threshold = 1024
	}
	d := &Decentralized{
		interval:  interval,
		threshold: threshold,
		handles:   make(map[*decentralHandle]struct{}),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	d.global.Store(1)
	go d.run()
	return d
}

func (d *Decentralized) run() {
	defer close(d.done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.global.Add(1)
			n := d.stats.advances.Add(1)
			if fn := d.advanceHook.Load(); fn != nil {
				(*fn)(n)
			}
			d.reclaimOrphans()
		}
	}
}

// Register implements GC.
func (d *Decentralized) Register() Handle {
	h := &decentralHandle{gc: d}
	h.local.Store(idleEpoch)
	d.mu.Lock()
	d.handles[h] = struct{}{}
	d.mu.Unlock()
	return h
}

// minLocal returns the smallest local epoch across all registered workers
// (idle workers do not constrain it).
func (d *Decentralized) minLocal() uint64 {
	min := uint64(idleEpoch)
	d.mu.Lock()
	for h := range d.handles {
		if e := h.local.Load(); e < min {
			min = e
		}
	}
	d.mu.Unlock()
	return min
}

// reclaimOrphans frees adopted garbage from unregistered handles whose
// tags have fallen below every live worker's local epoch.
func (d *Decentralized) reclaimOrphans() {
	min := d.minLocal()
	d.mu.Lock()
	kept := d.orphans[:0]
	var ready []taggedGarbage
	for _, g := range d.orphans {
		if g.epoch < min {
			ready = append(ready, g)
		} else {
			kept = append(kept, g)
		}
	}
	for i := len(kept); i < len(d.orphans); i++ {
		d.orphans[i] = taggedGarbage{}
	}
	d.orphans = kept
	d.mu.Unlock()
	for _, g := range ready {
		g.fn()
	}
	d.stats.reclaimed.Add(uint64(len(ready)))
}

// Close implements GC.
func (d *Decentralized) Close() {
	d.closeOn.Do(func() {
		close(d.stop)
		<-d.done
		d.mu.Lock()
		hs := make([]*decentralHandle, 0, len(d.handles))
		for h := range d.handles {
			hs = append(hs, h)
		}
		d.mu.Unlock()
		for _, h := range hs {
			h.Unregister()
		}
		// By contract every worker is quiescent at Close, so all orphans
		// are reclaimable.
		d.mu.Lock()
		orphans := d.orphans
		d.orphans = nil
		d.mu.Unlock()
		for _, g := range orphans {
			g.fn()
		}
		d.stats.reclaimed.Add(uint64(len(orphans)))
	})
}

// SetAdvanceHook implements GC.
func (d *Decentralized) SetAdvanceHook(fn func(uint64)) {
	if fn == nil {
		d.advanceHook.Store(nil)
		return
	}
	d.advanceHook.Store(&fn)
}

// Stats implements GC.
func (d *Decentralized) Stats() Stats {
	st := Stats{
		Retired:   d.stats.retired.Load(),
		Reclaimed: d.stats.reclaimed.Load(),
		Advances:  d.stats.advances.Load(),
	}
	// Reclamation lag: how many epochs the slowest in-flight worker
	// trails the global counter. Idle workers report idleEpoch and never
	// constrain the minimum, so an idle tree reads 0.
	g := d.global.Load()
	if min := d.minLocal(); min < g {
		st.EpochLag = g - min
	}
	return st
}

type taggedGarbage struct {
	epoch uint64
	fn    func()
}

type decentralHandle struct {
	gc    *Decentralized
	local atomic.Uint64
	// garbage is worker-private; only Unregister (after the worker is
	// done) and the worker itself touch it.
	garbage []taggedGarbage
	gone    bool
}

// Enter publishes the worker's view of the global epoch. This is a single
// uncontended store to a cache line owned by this worker.
func (h *decentralHandle) Enter() {
	if h.gone {
		panic("epoch: Enter on unregistered handle")
	}
	h.local.Store(h.gc.global.Load())
}

// Exit marks the worker idle and, when enough local garbage has
// accumulated, reclaims entries older than every worker's local epoch.
func (h *decentralHandle) Exit() {
	h.local.Store(idleEpoch)
	if len(h.garbage) >= h.gc.threshold {
		h.reclaim()
	}
}

// Retire tags fn with the current global epoch and appends it to the
// worker-private garbage list — no shared-memory writes.
func (h *decentralHandle) Retire(fn func()) {
	if h.gone {
		panic("epoch: Retire on unregistered handle")
	}
	h.gc.stats.retired.Add(1)
	h.garbage = append(h.garbage, taggedGarbage{epoch: h.gc.global.Load(), fn: fn})
}

// reclaim frees every local entry tagged strictly below the minimum local
// epoch of all workers. A tag below the minimum means every operation that
// could have observed the object has since finished.
func (h *decentralHandle) reclaim() {
	min := h.gc.minLocal()
	kept := h.garbage[:0]
	var freed uint64
	for _, g := range h.garbage {
		if g.epoch < min {
			g.fn()
			freed++
		} else {
			kept = append(kept, g)
		}
	}
	// Zero the tail so reclaimed closures are collectible.
	for i := len(kept); i < len(h.garbage); i++ {
		h.garbage[i] = taggedGarbage{}
	}
	h.garbage = kept
	h.gc.stats.reclaimed.Add(freed)
}

// Unregister removes the handle from the registry and hands its pending
// garbage to the GC's orphan list, where the background goroutine reclaims
// it once every remaining worker's local epoch has moved past its tags.
func (h *decentralHandle) Unregister() {
	if h.gone {
		return
	}
	h.gone = true
	h.local.Store(idleEpoch)
	h.gc.mu.Lock()
	delete(h.gc.handles, h)
	h.gc.orphans = append(h.gc.orphans, h.garbage...)
	h.gc.mu.Unlock()
	h.garbage = nil
}
