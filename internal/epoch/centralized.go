package epoch

import (
	"sync"
	"sync/atomic"
	"time"
)

// Centralized is the original Bw-Tree GC scheme (Fig. 5a of the paper): a
// list of global epoch objects, each holding a shared counter of the
// threads enrolled in it, plus that epoch's garbage list. A background
// goroutine installs a new epoch every interval and reclaims epochs whose
// counters have drained to zero.
//
// Every worker increments and decrements the *shared* counter of the
// current epoch on entry/exit — the cache-coherence hot spot that limits
// its scalability.
type Centralized struct {
	current atomic.Pointer[centralEpoch]
	// oldest is advanced only by the background goroutine but read
	// concurrently by Stats (epoch-lag gauge), hence atomic.
	oldest   atomic.Pointer[centralEpoch]
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	stats    centralStats
	closeOn  sync.Once

	// advanceHook mirrors Decentralized.advanceHook.
	advanceHook atomic.Pointer[func(uint64)]
}

type centralStats struct {
	retired   atomic.Uint64
	reclaimed atomic.Uint64
	advances  atomic.Uint64
}

type centralEpoch struct {
	active  atomic.Int64
	garbage garbageStack
	next    atomic.Pointer[centralEpoch]
}

// garbageStack is a lock-free Treiber stack of retire callbacks.
type garbageStack struct {
	head atomic.Pointer[garbageNode]
}

type garbageNode struct {
	fn   func()
	next *garbageNode
}

func (g *garbageStack) push(fn func()) {
	n := &garbageNode{fn: fn}
	for {
		h := g.head.Load()
		n.next = h
		if g.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// drain runs and discards every callback, returning the count.
func (g *garbageStack) drain() uint64 {
	n := g.head.Swap(nil)
	var count uint64
	for ; n != nil; n = n.next {
		n.fn()
		count++
	}
	return count
}

// NewCentralized starts a centralized GC whose background goroutine
// installs a fresh epoch every interval (the paper uses 40ms).
func NewCentralized(interval time.Duration) *Centralized {
	c := &Centralized{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	e := &centralEpoch{}
	c.current.Store(e)
	c.oldest.Store(e)
	go c.run()
	return c
}

func (c *Centralized) run() {
	defer close(c.done)
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.advance()
		}
	}
}

// advance installs a new current epoch and reclaims drained old epochs.
func (c *Centralized) advance() {
	fresh := &centralEpoch{}
	cur := c.current.Load()
	cur.next.Store(fresh)
	c.current.Store(fresh)
	n := c.stats.advances.Add(1)
	if fn := c.advanceHook.Load(); fn != nil {
		(*fn)(n)
	}

	// Reclaim every leading epoch whose counter has drained. An epoch may
	// only be reclaimed once it is no longer current (threads can no
	// longer enroll) and its active count is zero.
	for e := c.oldest.Load(); e != cur && e.active.Load() == 0; e = c.oldest.Load() {
		c.stats.reclaimed.Add(e.garbage.drain())
		c.oldest.Store(e.next.Load())
	}
}

// Register implements GC.
func (c *Centralized) Register() Handle { return &centralHandle{gc: c} }

// Close implements GC.
func (c *Centralized) Close() {
	c.closeOn.Do(func() {
		close(c.stop)
		<-c.done
		// Final sweep: everything is quiescent by contract.
		for e := c.oldest.Load(); e != nil; e = e.next.Load() {
			c.stats.reclaimed.Add(e.garbage.drain())
		}
	})
}

// SetAdvanceHook implements GC.
func (c *Centralized) SetAdvanceHook(fn func(uint64)) {
	if fn == nil {
		c.advanceHook.Store(nil)
		return
	}
	c.advanceHook.Store(&fn)
}

// Stats implements GC.
func (c *Centralized) Stats() Stats {
	st := Stats{
		Retired:   c.stats.retired.Load(),
		Reclaimed: c.stats.reclaimed.Load(),
		Advances:  c.stats.advances.Load(),
	}
	// Reclamation lag: epochs installed but not yet drained, oldest to
	// current. The walk races with advance(), so the count is
	// gauge-grade; the list is at most a few entries long unless a
	// worker is stuck inside an old epoch. Bounded defensively in case a
	// torn walk observes an in-progress append.
	cur := c.current.Load()
	for e := c.oldest.Load(); e != nil && e != cur && st.EpochLag < 1<<20; e = e.next.Load() {
		st.EpochLag++
	}
	return st
}

type centralHandle struct {
	gc       *Centralized
	enrolled *centralEpoch
	gone     bool
}

// Enter enrolls the worker in the current epoch by incrementing its shared
// counter — the coherence traffic the decentralized scheme eliminates.
func (h *centralHandle) Enter() {
	if h.gone {
		panic("epoch: Enter on unregistered handle")
	}
	for {
		e := h.gc.current.Load()
		e.active.Add(1)
		// The epoch may have been swapped between Load and Add; re-check
		// so we never enroll in an epoch the collector believes drained.
		if h.gc.current.Load() == e {
			h.enrolled = e
			return
		}
		e.active.Add(-1)
	}
}

// Exit removes the worker from the epoch it enrolled in.
func (h *centralHandle) Exit() {
	h.enrolled.active.Add(-1)
	h.enrolled = nil
}

// Retire adds garbage to the current epoch's shared garbage list.
func (h *centralHandle) Retire(fn func()) {
	if h.gone {
		panic("epoch: Retire on unregistered handle")
	}
	h.gc.stats.retired.Add(1)
	h.gc.current.Load().garbage.push(fn)
}

// Unregister implements Handle. Centralized handles hold no local garbage
// (it lives in the shared epoch lists), so unregistering only marks the
// handle dead to catch post-Unregister use.
func (h *centralHandle) Unregister() { h.gone = true }
