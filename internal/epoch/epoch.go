// Package epoch provides safe memory reclamation for lock-free data
// structures via epoch-based garbage collection.
//
// Two schemes are implemented, mirroring §4.2 of the paper:
//
//   - Centralized: the original Bw-Tree design. A linked list of epoch
//     objects, each with a shared active-thread counter that every worker
//     increments on entry and decrements on exit; a background goroutine
//     appends new epochs at a fixed interval and reclaims fully-drained
//     ones. The shared counters are the scalability bottleneck the paper
//     measures in Fig. 10.
//
//   - Decentralized: the OpenBw-Tree (Silo/Deuteronomy-style) design. One
//     global epoch counter advanced by a background goroutine; each worker
//     keeps a private local epoch and a private garbage list, and reclaims
//     its own garbage once every other worker's local epoch has passed the
//     garbage's tag. Workers never write shared memory on the hot path.
//
// Go's runtime GC would keep retired nodes alive anyway; the point of this
// package is to reproduce the *synchronization cost* of each scheme
// faithfully and to give the tree a place to recycle node IDs and slabs
// only once they are provably unreachable.
package epoch

// GC is the interface both schemes implement.
type GC interface {
	// Register returns a handle for one worker goroutine. Handles must not
	// be shared between goroutines.
	Register() Handle
	// Close stops background goroutines and reclaims everything. The
	// caller must guarantee no handle is inside a critical section.
	Close()
	// Stats reports cumulative reclamation counters.
	Stats() Stats
	// SetAdvanceHook installs fn to be called from the background
	// goroutine after every epoch advance, with the cumulative advance
	// count. fn must be fast and must not call back into the GC. A nil fn
	// removes the hook. Safe to call while the GC is running.
	SetAdvanceHook(fn func(advances uint64))
}

// Handle is a per-worker capability to enter epochs and retire garbage.
//
// # Reuse contract
//
// A Handle is built for reuse: after Exit it may be re-Entered any number
// of times, and a cached handle (e.g. one held by a long-lived session or
// recycled through a Pool) stays valid across arbitrarily many Enter/Exit
// cycles, including across epoch advances and across other handles being
// registered and unregistered concurrently. Garbage retired in an earlier
// cycle survives the idle gap and is reclaimed on a later Exit (or by the
// parent GC once the handle unregisters).
//
// Unregister is terminal and idempotent: calling it twice is a no-op, but
// after the first call the handle must never Enter or Retire again — both
// schemes detect this and panic, because a post-Unregister Enter would be
// invisible to reclamation scans and could let protected memory be freed
// underfoot. Ownership of a handle may move between goroutines (a pool
// hand-off) as long as the transfer itself establishes happens-before and
// at most one goroutine uses the handle at a time.
type Handle interface {
	// Enter marks the start of an operation on the protected structure.
	// Every Enter must be paired with exactly one Exit before the next
	// Enter. Panics after Unregister.
	Enter()
	// Exit marks the end of the operation and may trigger reclamation.
	Exit()
	// Retire schedules fn to run once no concurrent operation can still
	// observe the retired object. fn must be cheap and must not re-enter
	// the GC. Panics after Unregister.
	Retire(fn func())
	// Unregister releases the handle. Pending garbage is handed to the
	// parent GC for eventual reclamation. Idempotent; any other use of
	// the handle afterwards is a contract violation.
	Unregister()
}

// Stats are cumulative counters for a GC instance.
type Stats struct {
	// Retired is the number of objects passed to Retire.
	Retired uint64
	// Reclaimed is the number of retire callbacks that have run.
	Reclaimed uint64
	// Advances is the number of epoch advances performed.
	Advances uint64
	// EpochLag gauges how far reclamation trails the present: in the
	// decentralized scheme, global epoch minus the slowest worker's local
	// epoch (0 when every worker is idle or current); in the centralized
	// scheme, the number of epoch objects still awaiting drain. A lag
	// that grows without bound means a stalled worker is pinning garbage.
	EpochLag uint64
}
