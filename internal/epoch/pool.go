package epoch

import "sync"

// Pool recycles registered handles so short-lived sessions don't pay the
// Register/Unregister round-trip (a mutex acquisition and registry churn
// in the decentralized scheme) on every construction. Handles in the pool
// stay registered with the parent GC: an idle decentralized handle never
// blocks reclamation (its local epoch is idle), and its pending garbage is
// reclaimed the next time a borrower's Exit crosses the threshold, or by
// GC.Close.
//
// Get and Put are safe for concurrent use; the pool's internal lock is the
// happens-before edge that lets a handle move between goroutines without
// violating the single-owner rule in the Handle contract.
type Pool struct {
	gc   GC
	mu   sync.Mutex
	free []Handle
}

// NewPool returns an empty pool drawing fresh handles from gc.
func NewPool(gc GC) *Pool { return &Pool{gc: gc} }

// Get returns a pooled handle, or registers a fresh one when the pool is
// empty. The handle is outside any critical section.
func (p *Pool) Get() Handle {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		h := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return h
	}
	p.mu.Unlock()
	return p.gc.Register()
}

// Put returns a handle for reuse. The handle must be outside any critical
// section (Exit called) and must not have been unregistered; the caller
// must not use it afterwards.
func (p *Pool) Put(h Handle) {
	p.mu.Lock()
	p.free = append(p.free, h)
	p.mu.Unlock()
}

// Drain unregisters every pooled handle, handing their pending garbage to
// the parent GC. Call before GC.Close (Close also unregisters registered
// handles, so Drain is belt-and-braces, but it makes the pool reusable
// state explicit and idempotent).
func (p *Pool) Drain() {
	p.mu.Lock()
	free := p.free
	p.free = nil
	p.mu.Unlock()
	for _, h := range free {
		h.Unregister()
	}
}
