package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func gcs(t *testing.T) map[string]func() GC {
	return map[string]func() GC{
		"centralized":   func() GC { return NewCentralized(time.Millisecond) },
		"decentralized": func() GC { return NewDecentralized(time.Millisecond, 16) },
	}
}

func TestRetireReclaim(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			var freed atomic.Int64
			h := gc.Register()
			for i := 0; i < 100; i++ {
				h.Enter()
				h.Retire(func() { freed.Add(1) })
				h.Exit()
			}
			h.Unregister()
			gc.Close()
			if got := freed.Load(); got != 100 {
				t.Fatalf("freed %d of 100", got)
			}
			st := gc.Stats()
			if st.Retired != 100 || st.Reclaimed != 100 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

// TestNoEarlyReclaim is the central safety property: an object retired
// while another worker is inside a critical section that began before the
// retire must not be reclaimed until that worker exits.
func TestNoEarlyReclaim(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			defer gc.Close()

			reader := gc.Register()
			writer := gc.Register()

			reader.Enter() // reader pins the current epoch

			var freed atomic.Bool
			writer.Enter()
			writer.Retire(func() { freed.Store(true) })
			writer.Exit()

			// Give the background epoch plenty of chances to advance and
			// the writer plenty of reclamation attempts.
			for i := 0; i < 50; i++ {
				time.Sleep(2 * time.Millisecond)
				writer.Enter()
				writer.Exit()
				if freed.Load() {
					t.Fatal("object reclaimed while reader held its epoch")
				}
			}

			reader.Exit()
			deadline := time.Now().Add(5 * time.Second)
			for !freed.Load() && time.Now().Before(deadline) {
				writer.Enter()
				writer.Retire(func() {}) // churn to trigger reclamation
				writer.Exit()
				time.Sleep(2 * time.Millisecond)
			}
			if !freed.Load() {
				t.Fatal("object never reclaimed after reader exit")
			}
			reader.Unregister()
			writer.Unregister()
		})
	}
}

func TestUnregisterHandsOffGarbage(t *testing.T) {
	gc := NewDecentralized(time.Millisecond, 1<<30) // never self-reclaims
	var freed atomic.Int64
	h := gc.Register()
	h.Enter()
	for i := 0; i < 10; i++ {
		h.Retire(func() { freed.Add(1) })
	}
	h.Exit()
	h.Unregister()
	// The background goroutine adopts and reclaims the orphans.
	deadline := time.Now().Add(5 * time.Second)
	for freed.Load() != 10 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if freed.Load() != 10 {
		t.Fatalf("orphans reclaimed: %d of 10", freed.Load())
	}
	gc.Close()
}

func TestConcurrentChurn(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			var retired, freed atomic.Int64
			nw := runtime.GOMAXPROCS(0) * 2
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					h := gc.Register()
					defer h.Unregister()
					for i := 0; i < 5000; i++ {
						h.Enter()
						retired.Add(1)
						h.Retire(func() { freed.Add(1) })
						h.Exit()
					}
				}()
			}
			wg.Wait()
			gc.Close()
			if retired.Load() != freed.Load() {
				t.Fatalf("retired %d, freed %d", retired.Load(), freed.Load())
			}
		})
	}
}

func TestCloseIdempotent(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			gc.Close()
			gc.Close()
		})
	}
}

func TestStatsAdvance(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			defer gc.Close()
			time.Sleep(20 * time.Millisecond)
			if gc.Stats().Advances == 0 {
				t.Fatal("epoch never advanced")
			}
		})
	}
}
