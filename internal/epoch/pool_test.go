package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHandleReuseAfterExit pins the reuse contract: a cached handle may be
// re-Entered after Exit arbitrarily many times, across epoch advances, and
// garbage retired in an earlier Enter/Exit cycle is still reclaimed.
func TestHandleReuseAfterExit(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			var freed atomic.Int64
			h := gc.Register()
			h.Enter()
			h.Retire(func() { freed.Add(1) })
			h.Exit()
			// Idle gap with epoch advances in between.
			time.Sleep(5 * time.Millisecond)
			for i := 0; i < 1000; i++ {
				h.Enter()
				if i%3 == 0 {
					h.Retire(func() { freed.Add(1) })
				}
				h.Exit()
			}
			h.Unregister()
			gc.Close()
			want := int64(1 + 334)
			if freed.Load() != want {
				t.Fatalf("freed %d, want %d", freed.Load(), want)
			}
		})
	}
}

// TestUnregisterWithPendingGarbage pins the other half of the contract:
// Unregister with garbage still pending hands it to the parent GC, and the
// GC reclaims it while other workers keep running (no quiescence needed).
func TestUnregisterWithPendingGarbage(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			defer gc.Close()
			var freed atomic.Int64

			// A bystander that keeps entering/exiting so reclamation has a
			// live registry to scan against.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				b := gc.Register()
				defer b.Unregister()
				for {
					select {
					case <-stop:
						return
					default:
						b.Enter()
						b.Retire(func() {}) // churn triggers reclamation scans
						b.Exit()
					}
				}
			}()

			h := gc.Register()
			h.Enter()
			for i := 0; i < 10; i++ {
				h.Retire(func() { freed.Add(1) })
			}
			h.Exit()
			h.Unregister()
			h.Unregister() // idempotent

			deadline := time.Now().Add(5 * time.Second)
			for freed.Load() != 10 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
			close(stop)
			wg.Wait()
			if freed.Load() != 10 {
				t.Fatalf("pending garbage reclaimed: %d of 10", freed.Load())
			}
		})
	}
}

// TestUseAfterUnregisterPanics verifies the terminal half of the contract
// is enforced, not just documented.
func TestUseAfterUnregisterPanics(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			defer gc.Close()
			h := gc.Register()
			h.Enter()
			h.Exit()
			h.Unregister()
			mustPanic(t, "Enter", func() { h.Enter() })
			mustPanic(t, "Retire", func() { h.Retire(func() {}) })
		})
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s after Unregister did not panic", what)
		}
	}()
	f()
}

// TestPoolRecycles verifies a pooled handle is actually reused rather than
// re-registered, and that garbage retired through one borrower is
// reclaimed under a later borrower.
func TestPoolRecycles(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			p := NewPool(gc)
			h1 := p.Get()
			var freed atomic.Int64
			h1.Enter()
			h1.Retire(func() { freed.Add(1) })
			h1.Exit()
			p.Put(h1)
			h2 := p.Get()
			if h2 != h1 {
				t.Fatal("pool did not recycle the handle")
			}
			for i := 0; i < 100; i++ {
				h2.Enter()
				h2.Retire(func() { freed.Add(1) })
				h2.Exit()
				time.Sleep(time.Millisecond / 5)
			}
			p.Put(h2)
			p.Drain()
			gc.Close()
			if freed.Load() != 101 {
				t.Fatalf("freed %d of 101", freed.Load())
			}
		})
	}
}

// TestPoolUnregisterChurn is the safety test the Pool exists for: handles
// cycling through the pool concurrently with other handles registering and
// unregistering (with pending garbage) must neither race, nor deadlock,
// nor lose garbage.
func TestPoolUnregisterChurn(t *testing.T) {
	for name, mk := range gcs(t) {
		t.Run(name, func(t *testing.T) {
			gc := mk()
			p := NewPool(gc)
			var retired, freed atomic.Int64
			nw := runtime.GOMAXPROCS(0) * 2
			if nw < 4 {
				nw = 4
			}
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						if w%2 == 0 {
							// Pool borrower.
							h := p.Get()
							h.Enter()
							retired.Add(1)
							h.Retire(func() { freed.Add(1) })
							h.Exit()
							p.Put(h)
						} else {
							// Register/Unregister churn with garbage pending.
							h := gc.Register()
							h.Enter()
							retired.Add(1)
							h.Retire(func() { freed.Add(1) })
							h.Exit()
							h.Unregister()
						}
					}
				}(w)
			}
			wg.Wait()
			p.Drain()
			gc.Close()
			if retired.Load() != freed.Load() {
				t.Fatalf("retired %d, freed %d", retired.Load(), freed.Load())
			}
		})
	}
}
