// Package txn layers optimistic multi-key transactions over the
// repository's stores — a single durable tree, a plain in-memory tree,
// or the sharded serving tier — with Silo-style OCC validation
// (Tu et al., SOSP 2013) and WAL-atomic commit.
//
// # Protocol
//
// A transaction reads through versioned lookups (every published leaf
// record carries a stamp from a tree-global counter; see
// core.Session.LookupVersion) and buffers its writes. Commit then runs:
//
//  1. Lock the write set's stripes in sorted global order (the same
//     256-way stripes the durability layer orders single-key commits
//     with, so transactional and plain writers exclude each other).
//  2. Validate the read set: try-lock each read stripe not already held
//     (a failed try is a conservative abort — never block on a reader's
//     behalf, never deadlock), then recheck that each key still carries
//     the version the transaction observed. Absent keys validate at
//     version 0.
//  3. Resolve the write set into guarded sub-operations
//     (insert/update/delete) under the held locks, append one WAL
//     record spanning all of them, apply in memory, and release.
//
// Deadlock freedom: write stripes are acquired in sorted order and read
// stripes only with try-lock, so no cycle of waits can form. Atomicity
// across a crash comes from the log record being a single CRC-framed
// entry — recovery replays all of it or truncates all of it (see
// wal.OpTxn; cross-shard commits use the two-phase OpTxnPrep/OpTxnCommit
// shape with presumed abort).
//
// Serializability: validation happens while every write stripe is held,
// so the commit point is atomic; a read validated at the commit point
// either still holds its observed version forever-after-this-instant or
// the transaction aborts. This is exactly Silo's argument, with stripe
// try-locks standing in for per-record lock words.
package txn

import (
	"errors"
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Backend is the store-side contract the OCC engine drives. Implemented
// for durable trees, plain trees, and sharded stores in this package;
// the engine itself never knows which it is running over.
type Backend interface {
	// NStripes is the global stripe-lock count.
	NStripes() int
	// StripeOf maps a key to its global stripe in [0, NStripes).
	StripeOf(key []byte) int
	// Lock, Unlock, and TryLock operate on one global stripe.
	Lock(i int)
	Unlock(i int)
	TryLock(i int) bool
	// MaxRecoveredTxnID is the highest transaction ID surviving in the
	// store's logs at open (0 for fresh or non-durable stores). The
	// engine seeds its ID counter above it so a new prepare can never
	// collide with a stale decision record.
	MaxRecoveredTxnID() uint64
	// NewSession returns a per-worker read/log/apply handle.
	NewSession() BackendSession
}

// BackendSession is one worker's handle to a Backend. At most one
// goroutine may use it at a time.
type BackendSession interface {
	// ReadVersion reads key's value and version stamp (ver 0, found
	// false for absent keys).
	ReadVersion(key []byte) (value uint64, ver uint64, found bool)
	// LogApply durably logs the resolved write set as one atomic commit
	// and applies it in memory. The caller holds every write stripe
	// across the call. A non-nil wait postpones the durability wait so
	// the caller can release the stripes first; LogApply returning an
	// error means the commit outcome is unresolved exactly as in
	// bwtree.DurableSession (possible only on a closed or crashed log).
	LogApply(txnID uint64, ops []wal.TxnOp) (wait func() error, err error)
	// Release returns the session's resources.
	Release()
}

// ErrDuplicateWriteKey is returned by CommitTxn when the write set names
// one key twice; buffer writes through Tx to coalesce them instead.
var ErrDuplicateWriteKey = errors.New("txn: duplicate key in write set")

// validateBarrier, when non-nil, runs after read validation succeeds and
// before the write set is resolved and logged. Tests use it to hold two
// racing commits at the validated-but-unapplied point — the
// deterministic schedule that exposes write skew when the txnbug build
// tag disables read-stripe locking.
var validateBarrier func()

// Store is the OCC engine over one Backend. Safe for any number of
// concurrent Sessions.
type Store struct {
	b      Backend
	nextID atomic.Uint64

	commits   atomic.Uint64
	conflicts atomic.Uint64
	readOnly  atomic.Uint64
	validate  obs.Histogram
}

// NewStore builds an engine over b, seeding the transaction-ID counter
// above every ID the store's recovery saw.
func NewStore(b Backend) *Store {
	s := &Store{b: b}
	s.nextID.Store(b.MaxRecoveredTxnID())
	return s
}

// Stats is a point-in-time aggregate of the engine's counters.
type Stats struct {
	// Commits counts committed transactions (including read-only).
	Commits uint64
	// Conflicts counts commits rejected by validation.
	Conflicts uint64
	// ReadOnly counts commits whose resolved write set was empty.
	ReadOnly uint64
	// Validate is the commit-path latency up to the log append: stripe
	// acquisition, read validation, and write resolution.
	Validate obs.HistSnapshot
}

// Stats snapshots the engine's counters.
func (st *Store) Stats() Stats {
	s := Stats{
		Commits:   st.commits.Load(),
		Conflicts: st.conflicts.Load(),
		ReadOnly:  st.readOnly.Load(),
	}
	st.validate.AddTo(&s.Validate)
	return s
}

// NewTxnSession implements index.TxnStore.
func (st *Store) NewTxnSession() index.TxnSession { return st.NewSession() }

// NewSession returns a per-worker transactional handle.
func (st *Store) NewSession() *Session {
	return &Session{
		st:  st,
		bs:  st.b.NewSession(),
		dup: make(map[string]struct{}),
	}
}

// Session is one worker's handle to a Store. It implements
// index.TxnSession; use Begin/RunTxn for the buffered-transaction
// surface on top of it.
type Session struct {
	st *Store
	bs BackendSession

	// commit scratch, reused across transactions
	dup      map[string]struct{}
	wStripes []int
	rStripes []int
	ops      []wal.TxnOp
	noop     []bool
}

// Release returns the session's resources.
func (s *Session) Release() { s.bs.Release() }

// GetVersion reads key and its version stamp — the observation to
// record in a read set. Implements index.TxnSession.
func (s *Session) GetVersion(key []byte) (value uint64, ver uint64, found bool, err error) {
	value, ver, found = s.bs.ReadVersion(key)
	return value, ver, found, nil
}

// CommitTxn validates reads and, if they hold, atomically applies
// writes. See index.TxnSession for the contract. Conflicts return
// Status == index.TxnConflict with a nil error; a non-nil error means
// infrastructure failure (closed store, crashed log) and the outcome of
// an already-logged commit is unresolved.
func (s *Session) CommitTxn(reads []index.TxnRead, writes []index.TxnWrite) (index.TxnResult, error) {
	b := s.st.b
	if len(writes) > 1 {
		clear(s.dup)
		for i := range writes {
			k := string(writes[i].Key)
			if _, ok := s.dup[k]; ok {
				return index.TxnResult{}, ErrDuplicateWriteKey
			}
			s.dup[k] = struct{}{}
		}
	}
	for i := range writes {
		if writes[i].Op != index.TxnPut && writes[i].Op != index.TxnDel {
			return index.TxnResult{}, fmt.Errorf("txn: unknown write op %q", writes[i].Op)
		}
	}

	t0 := obs.Now()

	// Phase 1: write stripes, sorted unique, acquired blocking. Sorted
	// order is the global lock order — the deadlock-freedom invariant.
	s.wStripes = s.wStripes[:0]
	for i := range writes {
		s.wStripes = append(s.wStripes, b.StripeOf(writes[i].Key))
	}
	slices.Sort(s.wStripes)
	s.wStripes = slices.Compact(s.wStripes)
	for _, i := range s.wStripes {
		b.Lock(i)
	}
	unlockWrites := func() {
		for _, i := range s.wStripes {
			b.Unlock(i)
		}
	}

	// Phase 2: read validation at the commit point.
	if !s.validateReads(reads) {
		unlockWrites()
		s.st.conflicts.Add(1)
		return index.TxnResult{Status: index.TxnConflict}, nil
	}
	if h := validateBarrier; h != nil {
		h()
	}

	// Phase 3: resolve writes into guarded sub-operations under the held
	// stripes — the presence check is stable until we unlock, so the
	// resolved ops replay deterministically during recovery.
	s.ops = s.ops[:0]
	s.noop = append(s.noop[:0], make([]bool, len(writes))...)
	for i := range writes {
		cur, _, found := s.bs.ReadVersion(writes[i].Key)
		switch writes[i].Op {
		case index.TxnPut:
			if found && cur == writes[i].Value {
				// Value unchanged: the tree would install no new record
				// (and therefore no new stamp), so the write is logically
				// a no-op. Dropping it here keeps the invariant that
				// every entry in the logged write set advanced its key's
				// version — the serializability checker depends on it.
				s.noop[i] = true
				continue
			}
			op := wal.OpInsert
			if found {
				op = wal.OpUpdate
			}
			s.ops = append(s.ops, wal.TxnOp{Op: op, Key: writes[i].Key, Value: writes[i].Value})
		case index.TxnDel:
			if found {
				s.ops = append(s.ops, wal.TxnOp{Op: wal.OpDelete, Key: writes[i].Key})
			} else {
				s.noop[i] = true
			}
		}
	}
	id := s.st.nextID.Add(1)
	s.st.validate.RecordNS(obs.Now() - t0)

	if len(s.ops) == 0 {
		// Read-only (or every delete targeted an absent key): validation
		// alone is the commit; nothing to log or apply.
		unlockWrites()
		s.st.commits.Add(1)
		s.st.readOnly.Add(1)
		return index.TxnResult{Status: index.TxnCommitted, TxnID: id, WriteVers: make([]uint64, len(writes))}, nil
	}

	wait, err := s.bs.LogApply(id, s.ops)
	if err != nil {
		unlockWrites()
		return index.TxnResult{}, err
	}

	// Collect post-apply version stamps under the stripes (stable there)
	// — the serializability checker keys its write history off these.
	vers := make([]uint64, len(writes))
	for i := range writes {
		if writes[i].Op == index.TxnDel || s.noop[i] {
			continue
		}
		_, v, _ := s.bs.ReadVersion(writes[i].Key)
		vers[i] = v
	}
	unlockWrites()
	s.st.commits.Add(1)
	res := index.TxnResult{Status: index.TxnCommitted, TxnID: id, WriteVers: vers}
	if wait != nil {
		if werr := wait(); werr != nil {
			return res, werr
		}
	}
	return res, nil
}

// validateReads rechecks every read-set observation under try-locked
// stripes. Returns false on any mismatch or failed try-lock (both are
// conservative aborts). The caller holds s.wStripes throughout.
func (s *Session) validateReads(reads []index.TxnRead) bool {
	b := s.st.b
	s.rStripes = s.rStripes[:0]
	if !bugSkipReadLocks {
		for i := range reads {
			st := b.StripeOf(reads[i].Key)
			if _, held := slices.BinarySearch(s.wStripes, st); held {
				continue // already ours, exclusively
			}
			s.rStripes = append(s.rStripes, st)
		}
		slices.Sort(s.rStripes)
		s.rStripes = slices.Compact(s.rStripes)
		for n, st := range s.rStripes {
			if !b.TryLock(st) {
				// A concurrent commit owns a stripe we read under — its
				// writes may invalidate ours mid-validation. Abort rather
				// than wait: waiting could deadlock (it may want our write
				// stripes), and a retry re-reads fresh state anyway. This
				// try-lock is also what closes the write-skew window: two
				// transactions that each read what the other writes cannot
				// both pass validation, because each one's read stripe is
				// the other's held write stripe.
				for _, u := range s.rStripes[:n] {
					b.Unlock(u)
				}
				s.rStripes = s.rStripes[:0]
				return false
			}
		}
	}
	ok := true
	for i := range reads {
		if _, v, _ := s.bs.ReadVersion(reads[i].Key); v != reads[i].Ver {
			ok = false
			break
		}
	}
	for _, u := range s.rStripes {
		b.Unlock(u)
	}
	return ok
}
