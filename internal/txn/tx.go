package txn

import (
	"repro/internal/index"
)

// Tx is one buffered transaction over any index.TxnSession — a local
// Store session or a network connection implementing the same contract.
// Reads record (key, version) observations; writes buffer until Commit.
// Within the transaction, Get is repeatable (the first observation of a
// key is returned again) and reads its own writes.
//
// A Tx is not safe for concurrent use. After Commit it may be reused via
// Reset (RunTxn does this for its retry loop).
type Tx struct {
	ts     index.TxnSession
	reads  []index.TxnRead
	seen   map[string]seenRead
	writes []index.TxnWrite
	widx   map[string]int
}

type seenRead struct {
	val   uint64
	found bool
}

// Begin starts a buffered transaction on ts.
func Begin(ts index.TxnSession) *Tx {
	return &Tx{
		ts:   ts,
		seen: make(map[string]seenRead),
		widx: make(map[string]int),
	}
}

// Reset discards all buffered state so the Tx can run again.
func (t *Tx) Reset() {
	t.reads = t.reads[:0]
	t.writes = t.writes[:0]
	clear(t.seen)
	clear(t.widx)
}

// Get reads key. The first read of each key goes to the store and is
// recorded in the read set; later reads return the same observation.
// Reads of keys this transaction has written return the buffered write.
func (t *Tx) Get(key []byte) (value uint64, found bool, err error) {
	if i, ok := t.widx[string(key)]; ok {
		w := t.writes[i]
		if w.Op == index.TxnDel {
			return 0, false, nil
		}
		return w.Value, true, nil
	}
	if r, ok := t.seen[string(key)]; ok {
		return r.val, r.found, nil
	}
	val, ver, found, err := t.ts.GetVersion(key)
	if err != nil {
		return 0, false, err
	}
	k := append([]byte(nil), key...)
	t.reads = append(t.reads, index.TxnRead{Key: k, Ver: ver})
	t.seen[string(k)] = seenRead{val: val, found: found}
	return val, found, nil
}

// Put buffers a write of (key, value); a later write to the same key
// replaces it.
func (t *Tx) Put(key []byte, value uint64) {
	t.write(index.TxnWrite{Op: index.TxnPut, Key: append([]byte(nil), key...), Value: value})
}

// Delete buffers a deletion of key.
func (t *Tx) Delete(key []byte) {
	t.write(index.TxnWrite{Op: index.TxnDel, Key: append([]byte(nil), key...)})
}

func (t *Tx) write(w index.TxnWrite) {
	if i, ok := t.widx[string(w.Key)]; ok {
		t.writes[i] = w
		return
	}
	t.widx[string(w.Key)] = len(t.writes)
	t.writes = append(t.writes, w)
}

// Reads returns the recorded read set (live until Reset).
func (t *Tx) Reads() []index.TxnRead { return t.reads }

// Writes returns the buffered write set (live until Reset).
func (t *Tx) Writes() []index.TxnWrite { return t.writes }

// Commit submits the transaction. A TxnConflict result leaves the store
// untouched; Reset and re-run to retry.
func (t *Tx) Commit() (index.TxnResult, error) {
	return t.ts.CommitTxn(t.reads, t.writes)
}

// RunTxn runs fn inside a transaction, retrying from scratch on
// optimistic conflicts: up to attempts tries when attempts > 0,
// indefinitely otherwise. An error from fn aborts without committing
// (nothing buffered ever reached the store). The returned result is the
// final attempt's — check Status: a conflicting final attempt returns
// index.TxnConflict with a nil error.
func RunTxn(ts index.TxnSession, attempts int, fn func(*Tx) error) (index.TxnResult, error) {
	tx := Begin(ts)
	for i := 0; ; i++ {
		tx.Reset()
		if err := fn(tx); err != nil {
			return index.TxnResult{}, err
		}
		res, err := tx.Commit()
		if err != nil || res.Status == index.TxnCommitted {
			return res, err
		}
		if attempts > 0 && i+1 >= attempts {
			return res, nil
		}
	}
}
