//go:build !txnbug

package txn

// bugSkipReadLocks is the production value: read validation try-locks
// each read stripe before rechecking its version. The constant false
// lets the compiler erase the seeded-bug branch entirely.
const bugSkipReadLocks = false
