//go:build txnbug

package txn

// bugSkipReadLocks deliberately reintroduces the classic OCC write-skew
// bug: read validation rechecks versions WITHOUT try-locking the read
// stripes first. Two transactions that each read what the other writes
// can then both validate before either applies — both commit, and the
// result is a history no serial order explains. The serializability
// checker's red self-test builds with this tag to prove the checker
// catches exactly this class of bug; see internal/histcheck.
const bugSkipReadLocks = true
