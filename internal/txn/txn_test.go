package txn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/bwtree"
	"repro/internal/index"
	"repro/internal/shard"
)

func tkey(i uint64) []byte {
	var b [8]byte
	return index.EncodeUint64(b[:0], i)
}

func TestTxnBasic(t *testing.T) {
	dir := t.TempDir()
	d, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st := NewForDurable(d)
	s := st.NewSession()
	defer s.Release()

	tx := Begin(s)
	if _, found, _ := tx.Get(tkey(1)); found {
		t.Fatal("fresh store has key 1")
	}
	tx.Put(tkey(1), 10)
	tx.Put(tkey(2), 20)
	// Read-your-writes inside the buffer.
	if v, found, _ := tx.Get(tkey(1)); !found || v != 10 {
		t.Fatalf("read-your-writes: %d %v", v, found)
	}
	res, err := tx.Commit()
	if err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("commit: %+v %v", res, err)
	}
	if len(res.WriteVers) != 2 || res.WriteVers[0] == 0 || res.WriteVers[1] == 0 {
		t.Fatalf("write versions missing: %v", res.WriteVers)
	}

	tx.Reset()
	if v, found, _ := tx.Get(tkey(2)); !found || v != 20 {
		t.Fatalf("committed value lost: %d %v", v, found)
	}
	tx.Delete(tkey(2))
	if _, found, _ := tx.Get(tkey(2)); found {
		t.Fatal("buffered delete visible as present")
	}
	tx.Put(tkey(1), 11)
	if res, err = tx.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("second commit: %+v %v", res, err)
	}
	tx.Reset()
	if _, found, _ := tx.Get(tkey(2)); found {
		t.Fatal("delete did not apply")
	}
	if v, _, _ := tx.Get(tkey(1)); v != 11 {
		t.Fatalf("update did not apply: %d", v)
	}
}

func TestTxnConflictOnStaleRead(t *testing.T) {
	d := bwtree.New(bwtree.DefaultOptions())
	defer d.Close()
	st := NewForTree(d)
	s1, s2 := st.NewSession(), st.NewSession()
	defer s1.Release()
	defer s2.Release()

	seed := Begin(s1)
	seed.Put(tkey(1), 1)
	if res, err := seed.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("seed: %+v %v", res, err)
	}

	// t1 observes key 1, then t2 overwrites it and commits; t1's commit
	// must fail validation.
	t1 := Begin(s1)
	if _, _, err := t1.Get(tkey(1)); err != nil {
		t.Fatal(err)
	}
	t1.Put(tkey(2), 2)

	t2 := Begin(s2)
	t2.Put(tkey(1), 99)
	if res, err := t2.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("t2: %+v %v", res, err)
	}

	res, err := t1.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != index.TxnConflict {
		t.Fatalf("stale read committed: %+v", res)
	}
	if st.Stats().Conflicts == 0 {
		t.Fatal("conflict not counted")
	}
	// And an absent-key observation conflicts when the key appears.
	t3 := Begin(s1)
	if _, found, _ := t3.Get(tkey(7)); found {
		t.Fatal("key 7 present")
	}
	t3.Put(tkey(8), 8)
	t4 := Begin(s2)
	t4.Put(tkey(7), 7)
	if res, err := t4.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("t4: %+v %v", res, err)
	}
	if res, err := t3.Commit(); err != nil || res.Status != index.TxnConflict {
		t.Fatalf("absence observation survived a concurrent insert: %+v %v", res, err)
	}
}

func TestTxnWriteSkewBlocked(t *testing.T) {
	// Sequential write-skew shape: t1 reads A and B, writes A; t2 reads A
	// and B, writes B. Interleaved so both read before either writes —
	// with correct validation exactly one commits.
	d := bwtree.New(bwtree.DefaultOptions())
	defer d.Close()
	st := NewForTree(d)
	s1, s2 := st.NewSession(), st.NewSession()
	defer s1.Release()
	defer s2.Release()

	seed := Begin(s1)
	seed.Put(tkey(1), 50)
	seed.Put(tkey(2), 50)
	if res, err := seed.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("seed: %+v %v", res, err)
	}

	t1, t2 := Begin(s1), Begin(s2)
	for _, k := range []uint64{1, 2} {
		if _, _, err := t1.Get(tkey(k)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := t2.Get(tkey(k)); err != nil {
			t.Fatal(err)
		}
	}
	t1.Put(tkey(1), 0)
	t2.Put(tkey(2), 0)
	r1, err := t1.Commit()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := t2.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != index.TxnCommitted {
		t.Fatalf("first committer failed: %+v", r1)
	}
	if r2.Status != index.TxnConflict {
		t.Fatalf("write skew: both committed (%+v, %+v)", r1, r2)
	}
}

func TestTxnDuplicateWriteKey(t *testing.T) {
	d := bwtree.New(bwtree.DefaultOptions())
	defer d.Close()
	st := NewForTree(d)
	s := st.NewSession()
	defer s.Release()
	_, err := s.CommitTxn(nil, []index.TxnWrite{
		{Op: index.TxnPut, Key: tkey(1), Value: 1},
		{Op: index.TxnPut, Key: tkey(1), Value: 2},
	})
	if err != ErrDuplicateWriteKey {
		t.Fatalf("got %v, want ErrDuplicateWriteKey", err)
	}
}

// runBank drives concurrent random transfers over a transactional store
// and returns the expected total. The invariant — the sum of all account
// balances never changes — is what multi-key atomicity plus
// serializability buys; either bug class breaks it.
func runBank(t *testing.T, st *Store, accounts, workers, transfers int) uint64 {
	t.Helper()
	const initial = 1000
	seed := st.NewSession()
	stx := Begin(seed)
	for i := 0; i < accounts; i++ {
		stx.Put(tkey(uint64(i)), initial)
	}
	if res, err := stx.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("seed: %+v %v", res, err)
	}
	seed.Release()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			s := st.NewSession()
			defer s.Release()
			for i := 0; i < transfers; i++ {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				amt := uint64(rng.Intn(10) + 1)
				_, err := RunTxn(s, 0, func(tx *Tx) error {
					fv, _, err := tx.Get(tkey(from))
					if err != nil {
						return err
					}
					if fv < amt {
						return nil // insufficient funds: commit read-only
					}
					tv, _, err := tx.Get(tkey(to))
					if err != nil {
						return err
					}
					tx.Put(tkey(from), fv-amt)
					tx.Put(tkey(to), tv+amt)
					return nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return uint64(accounts) * initial
}

func bankSum(t *testing.T, st *Store, accounts int) uint64 {
	t.Helper()
	s := st.NewSession()
	defer s.Release()
	var sum uint64
	for i := 0; i < accounts; i++ {
		v, _, found, err := s.GetVersion(tkey(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("account %d missing", i)
		}
		sum += v
	}
	return sum
}

func TestTxnBankPlainTree(t *testing.T) {
	d := bwtree.New(bwtree.DefaultOptions())
	defer d.Close()
	st := NewForTree(d)
	want := runBank(t, st, 32, 8, 300)
	if got := bankSum(t, st, 32); got != want {
		t.Fatalf("sum %d, want %d", got, want)
	}
	if st.Stats().Commits == 0 {
		t.Fatal("no commits counted")
	}
}

func TestTxnBankDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := NewForDurable(d)
	want := runBank(t, st, 32, 8, 200)
	if got := bankSum(t, st, 32); got != want {
		t.Fatalf("pre-close sum %d, want %d", got, want)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery must land on the same conserved total.
	d2, err := bwtree.OpenDurable(dir, bwtree.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	st2 := NewForDurable(d2)
	if got := bankSum(t, st2, 32); got != want {
		t.Fatalf("post-recovery sum %d, want %d", got, want)
	}
}

func openBankShard(t *testing.T, walDir string) *shard.Store {
	t.Helper()
	ss, err := shard.Open(shard.Options{Shards: 4, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func TestTxnBankShardDurable(t *testing.T) {
	walDir := t.TempDir()
	ss := openBankShard(t, walDir)
	st := NewForShard(ss)
	want := runBank(t, st, 32, 8, 200)
	if got := bankSum(t, st, 32); got != want {
		t.Fatalf("pre-close sum %d, want %d", got, want)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	ss2 := openBankShard(t, walDir)
	defer ss2.Close()
	st2 := NewForShard(ss2)
	if got := bankSum(t, st2, 32); got != want {
		t.Fatalf("post-recovery sum %d, want %d", got, want)
	}
	// The recovered ID counter sits above every logged transaction ID.
	if ss2.RecoveryStats().MaxTxnID == 0 {
		t.Fatal("recovered MaxTxnID is zero after transactional load")
	}
}

// TestTxnBankShardCrash kills the logs mid-workload (simulated power
// failure: all unsynced buffers dropped) and checks the recovered store
// conserved the total — commits apply all-or-nothing on every shard even
// when the crash lands inside the cross-shard two-phase window.
func TestTxnBankShardCrash(t *testing.T) {
	walDir := t.TempDir()
	ss := openBankShard(t, walDir)
	st := NewForShard(ss)

	const accounts = 32
	const initial = 1000
	seed := st.NewSession()
	stx := Begin(seed)
	for i := 0; i < accounts; i++ {
		stx.Put(tkey(uint64(i)), initial)
	}
	if res, err := stx.Commit(); err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("seed: %+v %v", res, err)
	}
	seed.Release()
	for _, sh := range ss.Shards() {
		if err := sh.Durable().Sync(); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			s := st.NewSession()
			defer s.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				_, err := RunTxn(s, 3, func(tx *Tx) error {
					fv, _, err := tx.Get(tkey(from))
					if err != nil {
						return err
					}
					if fv < 5 {
						return nil
					}
					tv, _, err := tx.Get(tkey(to))
					if err != nil {
						return err
					}
					tx.Put(tkey(from), fv-5)
					tx.Put(tkey(to), tv+5)
					return nil
				})
				if err != nil {
					return // post-crash errors are expected
				}
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)
	for _, sh := range ss.Shards() {
		if err := sh.Durable().Crash(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	ss2 := openBankShard(t, walDir)
	defer ss2.Close()
	st2 := NewForShard(ss2)
	if got := bankSum(t, st2, accounts); got != accounts*initial {
		t.Fatalf("crash recovery broke conservation: sum %d, want %d", got, accounts*initial)
	}
}

func TestTxnReadOnlyAndStats(t *testing.T) {
	d := bwtree.New(bwtree.DefaultOptions())
	defer d.Close()
	st := NewForTree(d)
	s := st.NewSession()
	defer s.Release()
	tx := Begin(s)
	tx.Put(tkey(1), 1)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx.Reset()
	if _, _, err := tx.Get(tkey(1)); err != nil {
		t.Fatal(err)
	}
	res, err := tx.Commit() // read-only: validation is the whole commit
	if err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("read-only commit: %+v %v", res, err)
	}
	stats := st.Stats()
	if stats.Commits != 2 || stats.ReadOnly != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Validate.Total() != 2 {
		t.Fatalf("validation histogram count = %d", stats.Validate.Total())
	}
}
