//go:build txnbug

package txn

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/index"
)

// TestWriteSkewEscapesAndCheckerCatches is the serializability gate's
// red self-test (build with -tags txnbug). The seeded bug skips the
// read-stripe try-locks during validation, reopening the classic OCC
// write-skew window: two transactions read a two-account invariant,
// each writes the account the other one read, and both pass validation
// because neither's version recheck sees the other's (not yet applied)
// write. The deterministic interleaving is forced with validateBarrier:
// neither commit may apply until both have validated.
//
// The test then proves the external checker catches what the engine
// missed: the recorded history must contain a serialization-graph
// cycle. A checker that stays green here would be vacuous.
func TestWriteSkewEscapesAndCheckerCatches(t *testing.T) {
	if !bugSkipReadLocks {
		t.Fatal("built without the txnbug tag?")
	}
	tr := core.New(core.DefaultOptions())
	st := NewForTree(tr)
	chk := histcheck.NewTxnChecker()

	// Two accounts on different stripes (same stripe would serialize the
	// two commits and close the window by WW ordering alone).
	x := []byte("acct-x")
	y := []byte("acct-y")
	for i := 0; st.b.StripeOf(x) == st.b.StripeOf(y); i++ {
		y = append(y[:6], byte('0'+i%10), byte('0'+i/10))
	}

	// Invariant: x + y >= 0. Seed both with 50; each transaction
	// withdraws 80 from one account after checking the combined balance
	// covers it — serializable executions allow at most one withdrawal.
	seed := chk.Wrap(st.NewSession())
	res, err := seed.CommitTxn(nil, []index.TxnWrite{
		{Op: index.TxnPut, Key: x, Value: 50},
		{Op: index.TxnPut, Key: y, Value: 50},
	})
	if err != nil || res.Status != index.TxnCommitted {
		t.Fatalf("seed: %v %v", res.Status, err)
	}
	seed.Release()

	barrier := make(chan struct{})
	var arrived sync.Once
	var n int
	var mu sync.Mutex
	validateBarrier = func() {
		mu.Lock()
		n++
		if n == 2 {
			arrived.Do(func() { close(barrier) })
		}
		mu.Unlock()
		<-barrier
	}
	defer func() { validateBarrier = nil }()

	withdraw := func(target []byte) index.TxnStatus {
		s := chk.Wrap(st.NewSession())
		defer s.Release()
		xv, xver, _, _ := s.GetVersion(x)
		yv, yver, _, _ := s.GetVersion(y)
		if int64(xv)+int64(yv)-80 < 0 {
			t.Error("seeded balance cannot cover the withdrawal")
			return index.TxnConflict
		}
		var cur uint64
		if string(target) == string(x) {
			cur = xv
		} else {
			cur = yv
		}
		res, err := s.CommitTxn(
			[]index.TxnRead{{Key: x, Ver: xver}, {Key: y, Ver: yver}},
			[]index.TxnWrite{{Op: index.TxnPut, Key: target, Value: cur - 80}},
		)
		if err != nil {
			t.Errorf("commit: %v", err)
			return index.TxnConflict
		}
		return res.Status
	}

	var wg sync.WaitGroup
	results := make([]index.TxnStatus, 2)
	for i, target := range [][]byte{x, y} {
		wg.Add(1)
		go func(i int, target []byte) {
			defer wg.Done()
			results[i] = withdraw(target)
		}(i, target)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if results[0] != index.TxnCommitted || results[1] != index.TxnCommitted {
		t.Fatalf("bug did not fire: statuses %v %v (expected both to commit)", results[0], results[1])
	}

	// The engine let a non-serializable execution through: the combined
	// balance went negative (uint64 wraparound on one account).
	s := st.NewSession()
	xv, _, _, _ := s.GetVersion(x)
	yv, _, _, _ := s.GetVersion(y)
	s.Release()
	if int64(xv)+int64(yv) >= 0 && xv < 1<<62 && yv < 1<<62 {
		t.Fatalf("invariant survived (x=%d y=%d); write skew did not manifest", xv, yv)
	}

	violations := chk.Check()
	found := false
	for _, v := range violations {
		if v.Kind == "txn-cycle" {
			found = true
			t.Logf("checker diagnosis: %s", v.Msg)
		}
	}
	if !found {
		t.Fatalf("checker missed the write skew; violations: %v", violations)
	}
}
