package txn

import "repro/internal/obs"

// AugmentVars adds the engine's counters and validation-latency summary
// to an existing observability source (a tree's or sharded store's
// DebugVars), so a transactional server's /metrics carries
// txn_commits_total, txn_conflicts_total, txn_readonly_total, and the
// bwtree_txn_validate_seconds summary next to the store's own series.
func AugmentVars(v obs.Vars, st *Store) obs.Vars {
	baseCounters := v.Counters
	v.Counters = func() map[string]uint64 {
		var m map[string]uint64
		if baseCounters != nil {
			m = baseCounters()
		} else {
			m = make(map[string]uint64)
		}
		s := st.Stats()
		m["txn_commits"] = s.Commits
		m["txn_conflicts"] = s.Conflicts
		m["txn_readonly"] = s.ReadOnly
		return m
	}
	baseHists := v.MetricHists
	v.MetricHists = func() []obs.HistFeed {
		var feeds []obs.HistFeed
		if baseHists != nil {
			feeds = baseHists()
		}
		s := st.Stats()
		return append(feeds, obs.HistFeed{
			Name:    "bwtree_txn_validate_seconds",
			Help:    "Transaction commit latency through validation and write resolution (excludes log append and fsync).",
			Seconds: true,
			Snap:    s.Validate,
		})
	}
	return v
}
