package txn

import (
	"hash/maphash"
	"sync"

	"repro/bwtree"
	"repro/internal/shard"
	"repro/internal/wal"
)

// NewForShard builds the engine over a sharded store. The global stripe
// space is the concatenation of every shard's 256 stripes (shard i owns
// indices [i*256, (i+1)*256)), so sorted-order acquisition yields one
// deadlock-free total order across shards.
//
// Commits whose write set lands on one shard use that shard's log alone
// (a self-contained OpTxn record). Cross-shard commits run two-phase
// with presumed abort: each participant logs an OpTxnPrep carrying its
// local sub-writes; once EVERY prep is durable, an OpTxnCommit decision
// is appended to every participant. Recovery applies a prep iff a
// decision bearing its transaction ID survives in any shard's log
// (shard.Open merges the per-shard decision scans), so the commit takes
// effect on all shards or none — even when the crash lands between the
// per-participant appends.
//
// For in-memory stores (no WALDir) the stripes are engine-private and
// the same mixing restriction as NewForTree applies.
func NewForShard(st *shard.Store) *Store {
	b := &shardBackend{st: st, shards: st.Shards(), durable: st.Durable()}
	if !b.durable {
		b.seed = maphash.MakeSeed()
		b.plain = make([]sync.Mutex, len(b.shards)*bwtree.NStripes)
	}
	return NewStore(b)
}

type shardBackend struct {
	st      *shard.Store
	shards  []*shard.Shard
	durable bool

	// plain-store stripes (unused when every shard has a Durable)
	seed  maphash.Seed
	plain []sync.Mutex
}

func (b *shardBackend) NStripes() int { return len(b.shards) * bwtree.NStripes }

func (b *shardBackend) StripeOf(key []byte) int {
	sh := b.st.Router().Shard(key)
	if b.durable {
		return sh*bwtree.NStripes + b.shards[sh].Durable().StripeOf(key)
	}
	return sh*bwtree.NStripes + int(maphash.Bytes(b.seed, key)&0xff)
}

func (b *shardBackend) Lock(i int) {
	if b.durable {
		b.shards[i/bwtree.NStripes].Durable().StripeLock(i % bwtree.NStripes)
		return
	}
	b.plain[i].Lock()
}

func (b *shardBackend) Unlock(i int) {
	if b.durable {
		b.shards[i/bwtree.NStripes].Durable().StripeUnlock(i % bwtree.NStripes)
		return
	}
	b.plain[i].Unlock()
}

func (b *shardBackend) TryLock(i int) bool {
	if b.durable {
		return b.shards[i/bwtree.NStripes].Durable().StripeTryLock(i % bwtree.NStripes)
	}
	return b.plain[i].TryLock()
}

func (b *shardBackend) MaxRecoveredTxnID() uint64 {
	return b.st.RecoveryStats().MaxTxnID
}

func (b *shardBackend) NewSession() BackendSession {
	ss := &shardSession{b: b, sess: make([]*bwtree.Session, len(b.shards))}
	for i, sh := range b.shards {
		ss.sess[i] = sh.Tree().NewSession()
	}
	return ss
}

type shardSession struct {
	b    *shardBackend
	sess []*bwtree.Session
}

func (ss *shardSession) Release() {
	for _, s := range ss.sess {
		s.Release()
	}
}

func (ss *shardSession) ReadVersion(key []byte) (uint64, uint64, bool) {
	return ss.sess[ss.b.st.Router().Shard(key)].LookupVersion(key)
}

func (ss *shardSession) LogApply(txnID uint64, ops []wal.TxnOp) (func() error, error) {
	// Group the resolved write set by owning shard.
	groups := make(map[int][]wal.TxnOp, 2)
	for i := range ops {
		sh := ss.b.st.Router().Shard(ops[i].Key)
		groups[sh] = append(groups[sh], ops[i])
	}
	if !ss.b.durable {
		for sh, g := range groups {
			applyOps(ss.sess[sh], g)
		}
		return nil, nil
	}

	if len(groups) == 1 {
		// Single participant: self-contained commit on that shard's log,
		// identical to the single-tree fast path.
		for sh, g := range groups {
			d := ss.b.shards[sh].Durable()
			lsn, err := d.AppendTxn(wal.OpTxn, txnID, g)
			if err != nil {
				return nil, err
			}
			applyOps(ss.sess[sh], g)
			if d.SyncOnCommit() {
				return func() error { return d.WaitLSN(lsn) }, nil
			}
		}
		return nil, nil
	}

	// Two-phase, presumed abort. Deterministic participant order keeps
	// the trace readable; correctness doesn't depend on it.
	parts := make([]int, 0, len(groups))
	for sh := range groups {
		parts = append(parts, sh)
	}
	for i := 1; i < len(parts); i++ { // tiny insertion sort; len is shard count
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}

	// Phase A: prepares. An error anywhere before the first decision
	// append is a clean abort — surviving preps have no decision, and
	// recovery presumes them aborted; nothing was applied in memory.
	prepLSN := make([]uint64, len(parts))
	for i, sh := range parts {
		lsn, err := ss.b.shards[sh].Durable().AppendTxn(wal.OpTxnPrep, txnID, groups[sh])
		if err != nil {
			return nil, err
		}
		prepLSN[i] = lsn
	}
	// Every prep must be durable before ANY decision is appended — even
	// on async stores. A decision can become durable the instant it is
	// buffered (group commit runs concurrently), and a durable decision
	// with a lost prep would half-apply the transaction on recovery.
	for i, sh := range parts {
		if err := ss.b.shards[sh].Durable().WaitLSN(prepLSN[i]); err != nil {
			return nil, err
		}
	}

	// Phase B: decisions, one per participant. Once the first append
	// succeeds the commit is decided (a surviving decision anywhere
	// commits every prep), so later errors no longer abort: apply in
	// memory regardless and surface the error as an unresolved-commit
	// infrastructure failure, matching DurableSession semantics.
	decLSN := make([]uint64, len(parts))
	var decErr error
	decided := false
	for i, sh := range parts {
		lsn, err := ss.b.shards[sh].Durable().AppendTxn(wal.OpTxnCommit, txnID, nil)
		if err != nil {
			if !decided {
				return nil, err
			}
			if decErr == nil {
				decErr = err
			}
			continue
		}
		decided = true
		decLSN[i] = lsn
	}
	for _, sh := range parts {
		applyOps(ss.sess[sh], groups[sh])
	}
	if decErr != nil {
		return nil, decErr
	}
	if ss.b.st.Shards()[parts[0]].Durable().SyncOnCommit() {
		return func() error {
			for i, sh := range parts {
				if decLSN[i] == 0 {
					continue
				}
				if err := ss.b.shards[sh].Durable().WaitLSN(decLSN[i]); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	return nil, nil
}
