package txn

import (
	"hash/maphash"
	"sync"

	"repro/bwtree"
	"repro/internal/wal"
)

// NewForDurable builds the OCC engine over one durable tree. The engine
// shares the tree's 256 commit-ordering stripes, so transactional
// commits and plain DurableSession writes exclude each other — the two
// paths can be mixed freely on one store.
func NewForDurable(d *bwtree.Durable) *Store {
	return NewStore(&durableBackend{d: d})
}

type durableBackend struct{ d *bwtree.Durable }

func (b *durableBackend) NStripes() int            { return bwtree.NStripes }
func (b *durableBackend) StripeOf(key []byte) int  { return b.d.StripeOf(key) }
func (b *durableBackend) Lock(i int)               { b.d.StripeLock(i) }
func (b *durableBackend) Unlock(i int)             { b.d.StripeUnlock(i) }
func (b *durableBackend) TryLock(i int) bool       { return b.d.StripeTryLock(i) }
func (b *durableBackend) MaxRecoveredTxnID() uint64 {
	return b.d.RecoveryStats().MaxTxnID
}

func (b *durableBackend) NewSession() BackendSession {
	return &durableSession{d: b.d, s: b.d.Tree().NewSession()}
}

type durableSession struct {
	d *bwtree.Durable
	s *bwtree.Session
}

func (bs *durableSession) Release() { bs.s.Release() }

func (bs *durableSession) ReadVersion(key []byte) (uint64, uint64, bool) {
	return bs.s.LookupVersion(key)
}

func (bs *durableSession) LogApply(txnID uint64, ops []wal.TxnOp) (func() error, error) {
	// Single log: the whole write set rides one self-contained OpTxn
	// record — atomicity for free from frame CRC + torn-tail truncation.
	lsn, err := bs.d.AppendTxn(wal.OpTxn, txnID, ops)
	if err != nil {
		return nil, err
	}
	applyOps(bs.s, ops)
	if bs.d.SyncOnCommit() {
		return func() error { return bs.d.WaitLSN(lsn) }, nil
	}
	return nil, nil
}

// applyOps installs a resolved write set through a tree session. Each op
// was resolved against tree state under the still-held write stripes, so
// the guarded single-key semantics cannot fail here.
func applyOps(s *bwtree.Session, ops []wal.TxnOp) {
	for i := range ops {
		switch ops[i].Op {
		case wal.OpInsert:
			s.Insert(ops[i].Key, ops[i].Value)
		case wal.OpUpdate:
			s.Update(ops[i].Key, ops[i].Value)
		case wal.OpDelete:
			s.Delete(ops[i].Key, ops[i].Value)
		}
	}
}

// NewForTree builds the engine over a plain in-memory tree, with
// engine-private stripes (a plain tree has no commit-ordering locks of
// its own). Transactions serialize correctly against each other;
// non-transactional writers bypass the stripes, so mixing them with
// transactional writers on the same plain tree is unsupported — use a
// durable store for mixed workloads.
func NewForTree(t *bwtree.Tree) *Store {
	return NewStore(&plainBackend{t: t, seed: maphash.MakeSeed()})
}

type plainBackend struct {
	t       *bwtree.Tree
	seed    maphash.Seed
	stripes [bwtree.NStripes]sync.Mutex
}

func (b *plainBackend) NStripes() int { return bwtree.NStripes }
func (b *plainBackend) StripeOf(key []byte) int {
	return int(maphash.Bytes(b.seed, key) & 0xff)
}
func (b *plainBackend) Lock(i int)                { b.stripes[i].Lock() }
func (b *plainBackend) Unlock(i int)              { b.stripes[i].Unlock() }
func (b *plainBackend) TryLock(i int) bool        { return b.stripes[i].TryLock() }
func (b *plainBackend) MaxRecoveredTxnID() uint64 { return 0 }

func (b *plainBackend) NewSession() BackendSession {
	return &plainSession{s: b.t.NewSession()}
}

type plainSession struct{ s *bwtree.Session }

func (bs *plainSession) Release() { bs.s.Release() }

func (bs *plainSession) ReadVersion(key []byte) (uint64, uint64, bool) {
	return bs.s.LookupVersion(key)
}

func (bs *plainSession) LogApply(txnID uint64, ops []wal.TxnOp) (func() error, error) {
	applyOps(bs.s, ops) // nothing to log; memory is the only state
	return nil, nil
}
