package index

// Transactional capability interfaces. A store that can participate in
// optimistic multi-key transactions (internal/txn) exposes two
// primitives beyond the plain Session surface: a versioned read, and an
// atomic validate-log-apply commit of a whole read/write set. The txn
// package's Store/Tx machinery drives any implementation of these — a
// single durable tree, a sharded store, or a remote server over the
// wire protocol.

// TxnPut and TxnDel are the operation kinds of a transactional write.
// The engine resolves a TxnPut into insert-or-update (and drops a
// TxnDel of an absent key) at commit time, under the write locks.
const (
	TxnPut byte = 'p'
	TxnDel byte = 'd'
)

// TxnRead is one read-set entry: the caller observed key at version Ver
// (0 = observed absent) and the commit is valid only if that is still
// the key's state at commit time.
type TxnRead struct {
	Key []byte
	Ver uint64
}

// TxnWrite is one write-set entry. Op is TxnPut or TxnDel; Value is
// ignored for TxnDel.
type TxnWrite struct {
	Op    byte
	Key   []byte
	Value uint64
}

// TxnStatus is the outcome of a CommitTxn.
type TxnStatus uint8

const (
	// TxnCommitted: the write set is applied (and durable, under
	// sync-on-commit stores) and the read set validated.
	TxnCommitted TxnStatus = iota
	// TxnConflict: validation failed — some read-set key changed since it
	// was observed, or its stripe was write-locked by a concurrent
	// commit. Nothing was applied; the caller may retry from scratch.
	TxnConflict
)

// TxnResult reports a commit's outcome. TxnID and WriteVers are only
// meaningful when Status == TxnCommitted: TxnID is the engine-assigned
// transaction ID (unique per store incarnation, monotone in commit
// order per stripe set), and WriteVers[i] is the version stamp the i-th
// write-set entry's key carries after the commit — the hooks the
// serializability checker builds its history from. A zero entry marks a
// write that installed no new version: a TxnDel, a TxnDel of an absent
// key, or a TxnPut whose value matched what the key already held (the
// engine elides such writes entirely — they cannot invalidate any
// concurrent read).
type TxnResult struct {
	Status    TxnStatus
	TxnID     uint64
	WriteVers []uint64
}

// TxnSession is a per-worker handle for transactional access. Like
// Session, at most one goroutine may use it at a time.
type TxnSession interface {
	// GetVersion reads key and its version stamp. found=false reports
	// absence, with ver 0 — also a validatable observation.
	GetVersion(key []byte) (value uint64, ver uint64, found bool, err error)
	// CommitTxn atomically validates reads and, if they hold, applies
	// writes. Write keys must be distinct; a key in both sets validates
	// and is overwritten. An empty write set is a read-only validation.
	// The error return is for infrastructure failures (closed store,
	// crashed log, broken connection) — optimistic conflicts come back
	// as TxnConflict with a nil error.
	CommitTxn(reads []TxnRead, writes []TxnWrite) (TxnResult, error)
	// Release returns the session's resources.
	Release()
}

// TxnStore is implemented by stores that support transactions.
type TxnStore interface {
	NewTxnSession() TxnSession
}
