package index

import (
	"time"

	"repro/internal/art"
	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/masstree"
	"repro/internal/skiplist"
)

// NewOpenBwTree wraps the OpenBw-Tree (all optimizations on).
func NewOpenBwTree() Index { return NewBwTreeWith("OpenBwTree", core.DefaultOptions()) }

// NewBaselineBwTree wraps the "good-faith original Bw-Tree" configuration.
func NewBaselineBwTree() Index { return NewBwTreeWith("BwTree", core.BaselineOptions()) }

// NewBwTreeWith wraps a Bw-Tree with explicit options under the given
// report name.
func NewBwTreeWith(name string, opts core.Options) Index {
	return &bwAdapter{name: name, t: core.New(opts)}
}

// BwBacked is implemented by indexes backed by the Bw-Tree, exposing the
// underlying tree for statistics collection and decomposition hooks.
type BwBacked interface {
	Tree() *core.Tree
}

type bwAdapter struct {
	name string
	t    *core.Tree
}

// Tree exposes the underlying tree for statistics collection.
func (a *bwAdapter) Tree() *core.Tree    { return a.t }
func (a *bwAdapter) Name() string        { return a.name }
func (a *bwAdapter) Close()              { a.t.Close() }
func (a *bwAdapter) NewSession() Session { return &bwSession{s: a.t.NewSession()} }

type bwSession struct{ s *core.Session }

func (s *bwSession) Insert(key []byte, value uint64) bool { return s.s.Insert(key, value) }
func (s *bwSession) Delete(key []byte, value uint64) bool { return s.s.Delete(key, value) }
func (s *bwSession) Update(key []byte, value uint64) bool { return s.s.Update(key, value) }
func (s *bwSession) Lookup(key []byte, out []uint64) []uint64 {
	return s.s.Lookup(key, out)
}
func (s *bwSession) Scan(start []byte, n int, visit func([]byte, uint64) bool) int {
	return s.s.Scan(start, n, visit)
}
func (s *bwSession) Release() { s.s.Release() }

// bwSession implements BatchSession natively via the core batch path.
func (s *bwSession) InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	return s.s.InsertBatch(keys, vals, ok)
}
func (s *bwSession) DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	return s.s.DeleteBatch(keys, vals, ok)
}
func (s *bwSession) LookupBatch(keys [][]byte, visit func(i int, vals []uint64)) {
	s.s.LookupBatch(keys, visit)
}

// stateless adapts indexes whose operations need no per-goroutine state.
type stateless struct {
	name   string
	insert func(key []byte, value uint64) bool
	delete func(key []byte) bool
	update func(key []byte, value uint64) bool
	lookup func(key []byte) (uint64, bool)
	scan   func(start []byte, n int, visit func([]byte, uint64) bool) int
	close  func()
}

func (a *stateless) Name() string        { return a.name }
func (a *stateless) NewSession() Session { return (*statelessSession)(a) }
func (a *stateless) Close() {
	if a.close != nil {
		a.close()
	}
}

type statelessSession stateless

func (s *statelessSession) Insert(key []byte, value uint64) bool { return s.insert(key, value) }
func (s *statelessSession) Delete(key []byte, _ uint64) bool     { return s.delete(key) }
func (s *statelessSession) Update(key []byte, value uint64) bool { return s.update(key, value) }
func (s *statelessSession) Lookup(key []byte, out []uint64) []uint64 {
	if v, ok := s.lookup(key); ok {
		return append(out, v)
	}
	return out
}
func (s *statelessSession) Scan(start []byte, n int, visit func([]byte, uint64) bool) int {
	return s.scan(start, n, visit)
}
func (s *statelessSession) Release() {}

// NewBTree wraps the B+Tree with optimistic lock coupling (4KB nodes).
func NewBTree() Index {
	t := btree.New(0)
	return &stateless{
		name:   "B+Tree",
		insert: t.Insert,
		delete: t.Delete,
		update: t.Update,
		lookup: t.Lookup,
		scan:   t.Scan,
	}
}

// NewART wraps the Adaptive Radix Tree with optimistic lock coupling.
func NewART() Index {
	t := art.New()
	return &stateless{
		name:   "ART",
		insert: t.Insert,
		delete: t.Delete,
		update: t.Update,
		lookup: t.Lookup,
		scan:   t.Scan,
	}
}

// NewSkipList wraps the lock-free "No Hot Spot" skip list.
func NewSkipList() Index {
	l := skiplist.New(40*time.Millisecond, 32)
	return &stateless{
		name:   "SkipList",
		insert: l.Insert,
		delete: l.Delete,
		update: l.Update,
		lookup: l.Lookup,
		scan:   l.Scan,
		close:  l.Close,
	}
}

// NewMasstree wraps the trie-of-B+trees Masstree.
func NewMasstree() Index {
	t := masstree.New()
	return &stateless{
		name:   "Masstree",
		insert: t.Insert,
		delete: t.Delete,
		update: t.Update,
		lookup: t.Lookup,
		scan:   t.Scan,
	}
}

// All returns constructors for every index in the paper's §6 comparison,
// in the paper's presentation order.
func All() []func() Index {
	return []func() Index{
		NewBaselineBwTree,
		NewOpenBwTree,
		NewSkipList,
		NewMasstree,
		NewBTree,
		NewART,
	}
}
