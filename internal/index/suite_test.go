package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func key64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// forEachIndex runs f against every index implementation.
func forEachIndex(t *testing.T, f func(t *testing.T, idx Index)) {
	for _, mk := range All() {
		idx := mk()
		t.Run(idx.Name(), func(t *testing.T) {
			defer idx.Close()
			f(t, idx)
		})
	}
}

func TestSuiteInsertLookup(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		s := idx.NewSession()
		defer s.Release()
		const n = 10000
		for i := uint64(0); i < n; i++ {
			if !s.Insert(key64(i*3), i) {
				t.Fatalf("insert %d failed", i)
			}
		}
		for i := uint64(0); i < n; i++ {
			got := s.Lookup(key64(i*3), nil)
			if len(got) != 1 || got[0] != i {
				t.Fatalf("lookup %d: %v", i*3, got)
			}
			if got := s.Lookup(key64(i*3+1), nil); len(got) != 0 {
				t.Fatalf("phantom key %d: %v", i*3+1, got)
			}
		}
		if s.Insert(key64(3), 99) {
			t.Fatal("duplicate insert succeeded")
		}
	})
}

func TestSuiteDeleteUpdate(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		s := idx.NewSession()
		defer s.Release()
		const n = 5000
		for i := uint64(0); i < n; i++ {
			s.Insert(key64(i), i)
		}
		for i := uint64(0); i < n; i += 2 {
			if !s.Delete(key64(i), 0) {
				t.Fatalf("delete %d failed", i)
			}
		}
		if s.Delete(key64(0), 0) {
			t.Fatal("double delete succeeded")
		}
		for i := uint64(1); i < n; i += 2 {
			if !s.Update(key64(i), i+7) {
				t.Fatalf("update %d failed", i)
			}
		}
		if s.Update(key64(0), 1) {
			t.Fatal("update of deleted key succeeded")
		}
		for i := uint64(0); i < n; i++ {
			got := s.Lookup(key64(i), nil)
			if i%2 == 0 {
				if len(got) != 0 {
					t.Fatalf("deleted %d visible: %v", i, got)
				}
			} else if len(got) != 1 || got[0] != i+7 {
				t.Fatalf("updated %d: %v", i, got)
			}
		}
	})
}

func TestSuiteScan(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		s := idx.NewSession()
		defer s.Release()
		const n = 3000
		perm := rand.New(rand.NewSource(5)).Perm(n)
		for _, i := range perm {
			s.Insert(key64(uint64(i)*2+10), uint64(i))
		}
		// Full ordered scan.
		var keys []uint64
		s.Scan(key64(0), n+100, func(k []byte, v uint64) bool {
			keys = append(keys, binary.BigEndian.Uint64(k))
			return true
		})
		if len(keys) != n {
			t.Fatalf("scan visited %d items, want %d", len(keys), n)
		}
		for i, k := range keys {
			if want := uint64(i)*2 + 10; k != want {
				t.Fatalf("scan position %d: key %d want %d", i, k, want)
			}
		}
		// Bounded scan from the middle, starting between keys.
		var mid []uint64
		got := s.Scan(key64(1001), 5, func(k []byte, v uint64) bool {
			mid = append(mid, binary.BigEndian.Uint64(k))
			return true
		})
		if got != 5 {
			t.Fatalf("bounded scan visited %d", got)
		}
		for i, k := range mid {
			if want := uint64(1002 + i*2); k != want {
				t.Fatalf("bounded scan %d: key %d want %d", i, k, want)
			}
		}
		// Early termination.
		calls := 0
		s.Scan(key64(0), 100, func(k []byte, v uint64) bool {
			calls++
			return calls < 3
		})
		if calls != 3 {
			t.Fatalf("early-terminated scan made %d calls", calls)
		}
	})
}

func TestSuiteStringKeys(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		s := idx.NewSession()
		defer s.Release()
		var keys [][]byte
		for i := 0; i < 3000; i++ {
			keys = append(keys, []byte(fmt.Sprintf("user%07d@%03d.example.com", i*37%3000, i%50)))
		}
		for i, k := range keys {
			if !s.Insert(k, uint64(i)) {
				t.Fatalf("insert %q failed", k)
			}
		}
		for i, k := range keys {
			got := s.Lookup(k, nil)
			if len(got) != 1 || got[0] != uint64(i) {
				t.Fatalf("lookup %q: %v", k, got)
			}
		}
		// Ordered scan must return sorted keys.
		var prev []byte
		s.Scan([]byte(" "), len(keys)+10, func(k []byte, v uint64) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan order violated: %q then %q", prev, k)
			}
			prev = append(prev[:0], k...)
			return true
		})
	})
}

func TestSuiteRandomModel(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		s := idx.NewSession()
		defer s.Release()
		rng := rand.New(rand.NewSource(99))
		model := map[uint64]uint64{}
		for i := 0; i < 30000; i++ {
			k := uint64(rng.Intn(3000)) + 1
			switch rng.Intn(4) {
			case 0:
				_, exists := model[k]
				if got := s.Insert(key64(k), k); got == exists {
					t.Fatalf("op %d: insert %d returned %v (exists=%v)", i, k, got, exists)
				}
				if !exists {
					model[k] = k
				}
			case 1:
				_, exists := model[k]
				if got := s.Delete(key64(k), 0); got != exists {
					t.Fatalf("op %d: delete %d returned %v (exists=%v)", i, k, got, exists)
				}
				delete(model, k)
			case 2:
				_, exists := model[k]
				v := uint64(rng.Int63())
				if got := s.Update(key64(k), v); got != exists {
					t.Fatalf("op %d: update %d returned %v (exists=%v)", i, k, got, exists)
				}
				if exists {
					model[k] = v
				}
			default:
				want, exists := model[k]
				got := s.Lookup(key64(k), nil)
				if exists != (len(got) == 1) || exists && got[0] != want {
					t.Fatalf("op %d: lookup %d got %v want %d,%v", i, k, got, want, exists)
				}
			}
		}
	})
}

func TestSuiteConcurrent(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		nw := runtime.GOMAXPROCS(0)
		const perWorker = 10000
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := idx.NewSession()
				defer s.Release()
				base := uint64(w) * perWorker
				for i := uint64(0); i < perWorker; i++ {
					if !s.Insert(key64(base+i), base+i) {
						t.Errorf("worker %d: insert %d failed", w, base+i)
						return
					}
				}
				for i := uint64(0); i < perWorker; i += 3 {
					s.Delete(key64(base+i), 0)
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		s := idx.NewSession()
		defer s.Release()
		for w := 0; w < nw; w++ {
			base := uint64(w) * perWorker
			for i := uint64(0); i < perWorker; i++ {
				got := s.Lookup(key64(base+i), nil)
				deleted := i%3 == 0
				if deleted && len(got) != 0 {
					t.Fatalf("deleted %d visible: %v", base+i, got)
				}
				if !deleted && (len(got) != 1 || got[0] != base+i) {
					t.Fatalf("lookup %d: %v", base+i, got)
				}
			}
		}
	})
}

func TestSuiteConcurrentContended(t *testing.T) {
	forEachIndex(t, func(t *testing.T, idx Index) {
		nw := runtime.GOMAXPROCS(0)
		const keys = 5000
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s := idx.NewSession()
				defer s.Release()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 20000; i++ {
					k := uint64(rng.Intn(keys)) + 1
					switch rng.Intn(4) {
					case 0:
						s.Insert(key64(k), k)
					case 1:
						s.Delete(key64(k), 0)
					case 2:
						s.Update(key64(k), k*2)
					default:
						got := s.Lookup(key64(k), nil)
						if len(got) > 1 {
							t.Errorf("key %d has %d values", k, len(got))
							return
						}
						if len(got) == 1 && got[0] != k && got[0] != k*2 {
							t.Errorf("key %d has foreign value %d", k, got[0])
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
	})
}

func TestEncodeUint64(t *testing.T) {
	var buf []byte
	prev := []byte(nil)
	for _, v := range []uint64{0, 1, 255, 256, 1 << 20, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		buf = EncodeUint64(nil, v)
		if DecodeUint64(buf) != v {
			t.Fatalf("roundtrip %d", v)
		}
		if prev != nil && bytes.Compare(prev, buf) >= 0 {
			t.Fatalf("order violated at %d", v)
		}
		prev = append([]byte(nil), buf...)
	}
}
