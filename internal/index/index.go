// Package index defines the common interface implemented by every
// in-memory index in this repository — the OpenBw-Tree, the baseline
// Bw-Tree, the lock-free SkipList, Masstree, the B+Tree with optimistic
// lock coupling, and ART — so the benchmark harness and the differential
// test suite can drive them interchangeably.
//
// Keys are binary-comparable byte strings (integers must be big-endian
// encoded; see EncodeUint64). Values are 64-bit integers representing
// tuple pointers, exactly as in the paper's evaluation.
package index

import "encoding/binary"

// Index is the operation set the paper's YCSB harness exercises.
//
// Implementations must be safe for concurrent use by multiple sessions.
// Because several implementations (notably the Bw-Tree) require
// thread-local state — epoch handles, scratch buffers — all operations go
// through a Session obtained from NewSession. A Session must be used by at
// most one goroutine at a time.
type Index interface {
	// NewSession returns a handle for one worker goroutine.
	NewSession() Session
	// Name identifies the index in reports, e.g. "OpenBwTree".
	Name() string
	// Close releases background resources (GC goroutines, helpers).
	Close()
}

// Session is a per-worker view of an Index.
type Session interface {
	// Insert adds (key, value). For unique indexes it fails (returns
	// false) if the key is present; for non-unique indexes it fails only
	// if the exact (key, value) pair is present.
	Insert(key []byte, value uint64) bool
	// Delete removes (key, value), reporting whether it was present.
	// Unique indexes ignore value and remove the key outright.
	Delete(key []byte, value uint64) bool
	// Lookup appends all values for key to out and returns the extended
	// slice. A unique index appends at most one value.
	Lookup(key []byte, out []uint64) []uint64
	// Update replaces the value stored under key, reporting whether the
	// key was present. Non-unique indexes replace the pair (key, old).
	Update(key []byte, value uint64) bool
	// Scan visits at most n pairs in ascending key order starting from
	// the smallest key >= start, returning the number visited.
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	// Release returns the session's resources. The session must not be
	// used afterwards.
	Release()
}

// BatchSession extends Session with amortized batched operations: one
// call covers many keys, letting the implementation pay fixed costs
// (epoch protection, traversal) once per batch instead of once per op.
// Results are reported under the caller's original indices even if the
// implementation internally reorders the keys.
type BatchSession interface {
	Session
	// InsertBatch inserts every (keys[i], vals[i]) pair and returns
	// per-pair results in ok (reused when its capacity suffices), with
	// Insert's semantics per pair.
	InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool
	// DeleteBatch removes every (keys[i], vals[i]) pair with Delete's
	// semantics per pair.
	DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool
	// LookupBatch invokes visit exactly once per key — possibly out of
	// submission order — with i the key's original index and vals the
	// values found (empty on a miss). vals may alias internal scratch and
	// is only valid during the callback.
	LookupBatch(keys [][]byte, visit func(i int, vals []uint64))
}

// AsBatch returns s as a BatchSession: natively when the index
// implements batching (the Bw-Tree), otherwise through a per-op loop
// adapter so harness code can drive every index down one code path.
func AsBatch(s Session) BatchSession {
	if b, ok := s.(BatchSession); ok {
		return b
	}
	return &loopBatch{Session: s}
}

// loopBatch trivially implements BatchSession over single ops.
type loopBatch struct {
	Session
	scratch []uint64
}

func (b *loopBatch) InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	ok = resizeBools(ok, len(keys))
	for i, k := range keys {
		ok[i] = b.Insert(k, vals[i])
	}
	return ok
}

func (b *loopBatch) DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	ok = resizeBools(ok, len(keys))
	for i, k := range keys {
		ok[i] = b.Delete(k, vals[i])
	}
	return ok
}

func (b *loopBatch) LookupBatch(keys [][]byte, visit func(i int, vals []uint64)) {
	for i, k := range keys {
		b.scratch = b.Lookup(k, b.scratch[:0])
		visit(i, b.scratch)
	}
}

func resizeBools(ok []bool, n int) []bool {
	if cap(ok) < n {
		return make([]bool, n)
	}
	ok = ok[:n]
	for i := range ok {
		ok[i] = false
	}
	return ok
}

// EncodeUint64 writes v into an 8-byte big-endian buffer, the
// binary-comparable form required by the trie-based indexes (§6 of the
// paper: "keys must be preprocessed to have a totally ordered binary
// form").
func EncodeUint64(buf []byte, v uint64) []byte {
	buf = buf[:0]
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// DecodeUint64 is the inverse of EncodeUint64.
func DecodeUint64(key []byte) uint64 {
	return binary.BigEndian.Uint64(key)
}
