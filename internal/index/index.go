// Package index defines the common interface implemented by every
// in-memory index in this repository — the OpenBw-Tree, the baseline
// Bw-Tree, the lock-free SkipList, Masstree, the B+Tree with optimistic
// lock coupling, and ART — so the benchmark harness and the differential
// test suite can drive them interchangeably.
//
// Keys are binary-comparable byte strings (integers must be big-endian
// encoded; see EncodeUint64). Values are 64-bit integers representing
// tuple pointers, exactly as in the paper's evaluation.
package index

import "encoding/binary"

// Index is the operation set the paper's YCSB harness exercises.
//
// Implementations must be safe for concurrent use by multiple sessions.
// Because several implementations (notably the Bw-Tree) require
// thread-local state — epoch handles, scratch buffers — all operations go
// through a Session obtained from NewSession. A Session must be used by at
// most one goroutine at a time.
type Index interface {
	// NewSession returns a handle for one worker goroutine.
	NewSession() Session
	// Name identifies the index in reports, e.g. "OpenBwTree".
	Name() string
	// Close releases background resources (GC goroutines, helpers).
	Close()
}

// Session is a per-worker view of an Index.
type Session interface {
	// Insert adds (key, value). For unique indexes it fails (returns
	// false) if the key is present; for non-unique indexes it fails only
	// if the exact (key, value) pair is present.
	Insert(key []byte, value uint64) bool
	// Delete removes (key, value), reporting whether it was present.
	// Unique indexes ignore value and remove the key outright.
	Delete(key []byte, value uint64) bool
	// Lookup appends all values for key to out and returns the extended
	// slice. A unique index appends at most one value.
	Lookup(key []byte, out []uint64) []uint64
	// Update replaces the value stored under key, reporting whether the
	// key was present. Non-unique indexes replace the pair (key, old).
	Update(key []byte, value uint64) bool
	// Scan visits at most n pairs in ascending key order starting from
	// the smallest key >= start, returning the number visited.
	Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int
	// Release returns the session's resources. The session must not be
	// used afterwards.
	Release()
}

// EncodeUint64 writes v into an 8-byte big-endian buffer, the
// binary-comparable form required by the trie-based indexes (§6 of the
// paper: "keys must be preprocessed to have a totally ordered binary
// form").
func EncodeUint64(buf []byte, v uint64) []byte {
	buf = buf[:0]
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// DecodeUint64 is the inverse of EncodeUint64.
func DecodeUint64(key []byte) uint64 {
	return binary.BigEndian.Uint64(key)
}
