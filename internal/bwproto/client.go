package bwproto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/index"
)

// RemoteError is a StatusErr response: the server answered, the
// connection is still usable, but the request was rejected.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "bwproto: remote error: " + e.Msg }

// Conn is one client connection. Like an index session it must be used
// by at most one goroutine; open one Conn per worker.
type Conn struct {
	c     net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	reqID uint32
	wbuf  []byte // request build buffer
	rbuf  []byte // response payload buffer, valid until the next call
}

// Dial connects to a bwproto server.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection (tests hand in one end of a
// pipe or a raw socket).
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		c:  nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// roundTrip sends one request frame and reads its response, returning a
// payload reader positioned after the header. A *RemoteError means the
// server rejected the request; any other error means the connection is
// dead.
func (c *Conn) roundTrip(op byte, build func([]byte) []byte) (*reader, error) {
	c.reqID++
	id := c.reqID
	c.wbuf = appendFrame(c.wbuf[:0], id, op, build)
	if _, err := c.bw.Write(c.wbuf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return c.readResponse(id)
}

// readResponse reads one response frame and matches it to wantID.
func (c *Conn) readResponse(wantID uint32) (*reader, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < headerLen || n > MaxFrame {
		return nil, fmt.Errorf("bwproto: response frame length %d outside [%d, %d]", n, headerLen, MaxFrame)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.br, c.rbuf); err != nil {
		return nil, err
	}
	gotID := binary.LittleEndian.Uint32(c.rbuf)
	status := c.rbuf[4]
	r := &reader{buf: c.rbuf[headerLen:]}
	if status == StatusErr {
		msg := r.bytes(int(r.u16("error length")), "error message")
		if r.err != nil {
			return nil, fmt.Errorf("bwproto: undecodable error response: %w", r.err)
		}
		return nil, &RemoteError{Msg: string(msg)}
	}
	if gotID != wantID {
		return nil, fmt.Errorf("bwproto: response for request %d while awaiting %d (pipeline desync)", gotID, wantID)
	}
	if status != StatusOK {
		return nil, fmt.Errorf("bwproto: unknown response status 0x%02x", status)
	}
	return r, nil
}

// Ping round-trips an empty frame.
func (c *Conn) Ping() error {
	r, err := c.roundTrip(OpPing, func(b []byte) []byte { return b })
	if err != nil {
		return err
	}
	if r.rest() != 0 {
		return fmt.Errorf("bwproto: %d trailing bytes in ping response", r.rest())
	}
	return nil
}

// writeOp round-trips one mutating op and decodes the u8 outcome.
func (c *Conn) writeOp(op byte, key []byte, val uint64) (bool, error) {
	r, err := c.roundTrip(op, func(b []byte) []byte {
		b = appendKey(b, key)
		return binary.LittleEndian.AppendUint64(b, val)
	})
	if err != nil {
		return false, err
	}
	ok := r.u8("write outcome")
	if r.err != nil {
		return false, r.err
	}
	return ok == 1, nil
}

// Insert adds (key, value) with insert-if-absent semantics.
func (c *Conn) Insert(key []byte, val uint64) (bool, error) { return c.writeOp(OpSet, key, val) }

// Update replaces key's value if present.
func (c *Conn) Update(key []byte, val uint64) (bool, error) { return c.writeOp(OpUpd, key, val) }

// Delete removes (key, value).
func (c *Conn) Delete(key []byte, val uint64) (bool, error) { return c.writeOp(OpDel, key, val) }

// Lookup appends key's values to out.
func (c *Conn) Lookup(key []byte, out []uint64) ([]uint64, error) {
	r, err := c.roundTrip(OpGet, func(b []byte) []byte { return appendKey(b, key) })
	if err != nil {
		return out, err
	}
	nvals := int(r.u16("value count"))
	for i := 0; i < nvals; i++ {
		out = append(out, r.u64("value"))
	}
	if r.err != nil {
		return out, r.err
	}
	return out, nil
}

// Scan visits at most n pairs in ascending order from the smallest key
// >= start, issuing as many wire requests as the server's frame budget
// requires (each response carries a done flag; the client resumes from
// the successor of the last received key). Returns the number visited,
// counting a pair whose visit returned false, matching index.Session.
func (c *Conn) Scan(start []byte, n int, visit func(key []byte, value uint64) bool) (int, error) {
	count := 0
	resume := start
	var resumeBuf []byte
	for count < n {
		req := n - count
		if req > MaxScan {
			req = MaxScan
		}
		r, err := c.roundTrip(OpScan, func(b []byte) []byte {
			b = appendKey(b, resume)
			return binary.LittleEndian.AppendUint32(b, uint32(req))
		})
		if err != nil {
			return count, err
		}
		done := r.u8("scan done flag")
		got := int(r.u32("scan count"))
		var lastKey []byte
		for i := 0; i < got; i++ {
			klen := int(r.u16("scan key length"))
			k := r.bytes(klen, "scan key")
			v := r.u64("scan value")
			if r.err != nil {
				return count, r.err
			}
			count++
			if !visit(k, v) {
				return count, nil
			}
			lastKey = k
		}
		if r.err != nil {
			return count, r.err
		}
		if done == 1 {
			return count, nil
		}
		if got == 0 {
			return count, fmt.Errorf("bwproto: empty scan response without done flag")
		}
		// Resume at the successor of the last key. lastKey aliases rbuf,
		// which the next roundTrip overwrites, so copy.
		resumeBuf = append(append(resumeBuf[:0], lastKey...), 0)
		resume = resumeBuf
	}
	return count, nil
}

// BatchOp is one sub-operation of a Batch call: fill Op (OpGet, OpSet,
// OpUpd, OpDel), Key, and Val (writes only); Batch fills OK (writes) or
// Vals (gets, reusing capacity) in place.
type BatchOp struct {
	Op   byte
	Key  []byte
	Val  uint64
	OK   bool
	Vals []uint64
}

// Batch executes ops in order within one frame — one network round trip
// amortized over the whole window, the wire analogue of the tree's
// batched sessions.
func (c *Conn) Batch(ops []BatchOp) error {
	if len(ops) > MaxBatch {
		return fmt.Errorf("bwproto: batch of %d ops exceeds limit %d", len(ops), MaxBatch)
	}
	r, err := c.roundTrip(OpBatch, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(ops)))
		for i := range ops {
			op := &ops[i]
			b = append(b, op.Op)
			b = appendKey(b, op.Key)
			if op.Op != OpGet {
				b = binary.LittleEndian.AppendUint64(b, op.Val)
			}
		}
		return b
	})
	if err != nil {
		return err
	}
	count := int(r.u16("batch count"))
	if count != len(ops) {
		return fmt.Errorf("bwproto: batch response has %d results for %d ops", count, len(ops))
	}
	for i := range ops {
		op := &ops[i]
		sub := r.u8("batch sub-op")
		if r.err == nil && sub != op.Op {
			return fmt.Errorf("bwproto: batch result %d is op 0x%02x, expected 0x%02x", i, sub, op.Op)
		}
		if op.Op == OpGet {
			nvals := int(r.u16("batch value count"))
			op.Vals = op.Vals[:0]
			for j := 0; j < nvals; j++ {
				op.Vals = append(op.Vals, r.u64("batch value"))
			}
		} else {
			op.OK = r.u8("batch outcome") == 1
		}
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

// GetVersion reads key with its version stamp — the observation to
// record in a transactional read set (see index.TxnSession).
func (c *Conn) GetVersion(key []byte) (value uint64, ver uint64, found bool, err error) {
	r, err := c.roundTrip(OpGetV, func(b []byte) []byte { return appendKey(b, key) })
	if err != nil {
		return 0, 0, false, err
	}
	f := r.u8("getv found flag")
	value = r.u64("getv value")
	ver = r.u64("getv version")
	if r.err != nil {
		return 0, 0, false, r.err
	}
	return value, ver, f == 1, nil
}

// CommitTxn submits one transactional commit (see index.TxnSession for
// the contract) in a single round trip.
func (c *Conn) CommitTxn(reads []index.TxnRead, writes []index.TxnWrite) (index.TxnResult, error) {
	if len(reads)+len(writes) > MaxTxnOps {
		return index.TxnResult{}, fmt.Errorf("bwproto: txn of %d ops exceeds limit %d", len(reads)+len(writes), MaxTxnOps)
	}
	r, err := c.roundTrip(OpTxn, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(reads)))
		for i := range reads {
			b = appendKey(b, reads[i].Key)
			b = binary.LittleEndian.AppendUint64(b, reads[i].Ver)
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(writes)))
		for i := range writes {
			b = append(b, writes[i].Op)
			b = appendKey(b, writes[i].Key)
			b = binary.LittleEndian.AppendUint64(b, writes[i].Value)
		}
		return b
	})
	if err != nil {
		return index.TxnResult{}, err
	}
	status := r.u8("txn status")
	id := r.u64("txn id")
	nvers := int(r.u16("txn version count"))
	vers := make([]uint64, nvers)
	for i := 0; i < nvers; i++ {
		vers[i] = r.u64("txn write version")
	}
	if r.err != nil {
		return index.TxnResult{}, r.err
	}
	res := index.TxnResult{TxnID: id, WriteVers: vers}
	switch status {
	case TxnWireCommitted:
		res.Status = index.TxnCommitted
	case TxnWireConflict:
		res.Status = index.TxnConflict
	default:
		return index.TxnResult{}, fmt.Errorf("bwproto: unknown txn status 0x%02x", status)
	}
	return res, nil
}

// Stats fetches the server's aggregate stats JSON.
func (c *Conn) Stats() (json.RawMessage, error) {
	r, err := c.roundTrip(OpStats, func(b []byte) []byte { return b })
	if err != nil {
		return nil, err
	}
	blob := r.bytes(int(r.u32("stats length")), "stats json")
	if r.err != nil {
		return nil, r.err
	}
	out := make(json.RawMessage, len(blob))
	copy(out, blob)
	return out, nil
}

// NetIndex is an index.Index whose sessions are bwproto connections, so
// the harness, the mirror verifier, and histcheck drive a live server
// through the same code paths they use against an in-process tree.
// Session methods panic on transport errors: the callers are correctness
// and benchmark rigs that own the server's lifetime, where a vanished
// server is a rig bug, not a condition to handle.
type NetIndex struct {
	addr string

	mu    sync.Mutex
	conns []*Conn
}

// DialIndex connects to a bwproto server and verifies liveness with a
// ping.
func DialIndex(addr string) (*NetIndex, error) {
	probe, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer probe.Close()
	if err := probe.Ping(); err != nil {
		return nil, fmt.Errorf("bwproto: ping %s: %w", addr, err)
	}
	return &NetIndex{addr: addr}, nil
}

// Name identifies the index in reports.
func (ix *NetIndex) Name() string { return "BwServer(" + ix.addr + ")" }

// NewSession dials one connection per session.
func (ix *NetIndex) NewSession() index.Session {
	c, err := Dial(ix.addr)
	if err != nil {
		panic(fmt.Sprintf("bwproto: dial %s: %v", ix.addr, err))
	}
	ix.mu.Lock()
	ix.conns = append(ix.conns, c)
	ix.mu.Unlock()
	return &netSession{ix: ix, c: c}
}

// Close closes every session connection still open.
func (ix *NetIndex) Close() {
	ix.mu.Lock()
	conns := ix.conns
	ix.conns = nil
	ix.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// NewTxnSession dials one connection for transactional use, making
// NetIndex an index.TxnStore: transactions run against a live server
// through the same engine in-process callers use.
func (ix *NetIndex) NewTxnSession() index.TxnSession {
	c, err := Dial(ix.addr)
	if err != nil {
		panic(fmt.Sprintf("bwproto: dial %s: %v", ix.addr, err))
	}
	ix.mu.Lock()
	ix.conns = append(ix.conns, c)
	ix.mu.Unlock()
	return &netTxnSession{c: c}
}

// netTxnSession adapts a Conn to index.TxnSession. Unlike netSession it
// returns transport errors instead of panicking: the kill/recover soak
// drives transactions across deliberate server crashes.
type netTxnSession struct{ c *Conn }

func (s *netTxnSession) GetVersion(key []byte) (uint64, uint64, bool, error) {
	return s.c.GetVersion(key)
}

func (s *netTxnSession) CommitTxn(reads []index.TxnRead, writes []index.TxnWrite) (index.TxnResult, error) {
	return s.c.CommitTxn(reads, writes)
}

func (s *netTxnSession) Release() { s.c.Close() }

// netSession adapts a Conn to index.BatchSession.
type netSession struct {
	ix  *NetIndex
	c   *Conn
	ops []BatchOp
}

func (s *netSession) fatal(op string, err error) {
	panic(fmt.Sprintf("bwproto: %s against %s: %v", op, s.ix.addr, err))
}

func (s *netSession) Insert(key []byte, value uint64) bool {
	ok, err := s.c.Insert(key, value)
	if err != nil {
		s.fatal("Insert", err)
	}
	return ok
}

func (s *netSession) Update(key []byte, value uint64) bool {
	ok, err := s.c.Update(key, value)
	if err != nil {
		s.fatal("Update", err)
	}
	return ok
}

func (s *netSession) Delete(key []byte, value uint64) bool {
	ok, err := s.c.Delete(key, value)
	if err != nil {
		s.fatal("Delete", err)
	}
	return ok
}

func (s *netSession) Lookup(key []byte, out []uint64) []uint64 {
	out, err := s.c.Lookup(key, out)
	if err != nil {
		s.fatal("Lookup", err)
	}
	return out
}

func (s *netSession) Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int {
	got, err := s.c.Scan(start, n, visit)
	if err != nil {
		s.fatal("Scan", err)
	}
	return got
}

func (s *netSession) Release() { s.c.Close() }

// prepBatch sizes the scratch op window.
func (s *netSession) prepBatch(n int) []BatchOp {
	if cap(s.ops) < n {
		s.ops = make([]BatchOp, n)
	}
	return s.ops[:n]
}

// runWriteBatch ships one write batch and collects outcomes.
func (s *netSession) runWriteBatch(op byte, keys [][]byte, vals []uint64, ok []bool) []bool {
	if cap(ok) < len(keys) {
		ok = make([]bool, len(keys))
	}
	ok = ok[:len(keys)]
	for from := 0; from < len(keys); from += MaxBatch {
		to := from + MaxBatch
		if to > len(keys) {
			to = len(keys)
		}
		ops := s.prepBatch(to - from)
		for i := range ops {
			ops[i] = BatchOp{Op: op, Key: keys[from+i], Val: vals[from+i], Vals: ops[i].Vals}
		}
		if err := s.c.Batch(ops); err != nil {
			s.fatal("Batch", err)
		}
		for i := range ops {
			ok[from+i] = ops[i].OK
		}
	}
	return ok
}

func (s *netSession) InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	return s.runWriteBatch(OpSet, keys, vals, ok)
}

func (s *netSession) DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	return s.runWriteBatch(OpDel, keys, vals, ok)
}

func (s *netSession) LookupBatch(keys [][]byte, visit func(i int, vals []uint64)) {
	for from := 0; from < len(keys); from += MaxBatch {
		to := from + MaxBatch
		if to > len(keys) {
			to = len(keys)
		}
		ops := s.prepBatch(to - from)
		for i := range ops {
			ops[i] = BatchOp{Op: OpGet, Key: keys[from+i], Vals: ops[i].Vals}
		}
		if err := s.c.Batch(ops); err != nil {
			s.fatal("Batch", err)
		}
		for i := range ops {
			visit(from+i, ops[i].Vals)
		}
	}
}
