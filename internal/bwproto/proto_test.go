package bwproto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/bwtree"
	"repro/internal/shard"
)

// smallTreeOpts forces splits/consolidations at test scale.
func smallTreeOpts() bwtree.Options {
	o := bwtree.DefaultOptions()
	o.LeafNodeSize = 16
	o.InnerNodeSize = 8
	o.LeafChainLength = 4
	o.LeafMergeSize = 4
	o.InnerMergeSize = 2
	return o
}

// startServer spins up a volatile sharded server on a loopback port.
func startServer(t *testing.T, shards int) (*Server, string) {
	t.Helper()
	r, err := shard.NewRouter("hash", shards)
	if err != nil {
		t.Fatal(err)
	}
	st, err := shard.Open(shard.Options{Shards: shards, Router: r, Tree: smallTreeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	sv := NewServer(st)
	if err := sv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sv.Shutdown(2 * time.Second)
		st.Close()
	})
	return sv, sv.Addr()
}

func dialConn(t *testing.T, addr string) *Conn {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRoundTrip drives the whole op surface through real sockets.
func TestRoundTrip(t *testing.T) {
	_, addr := startServer(t, 4)
	c := dialConn(t, addr)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	mustWrite := func(what string, ok bool, err error, want bool) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if ok != want {
			t.Fatalf("%s = %v, want %v", what, ok, want)
		}
	}
	ok, err := c.Insert([]byte("apple"), 1)
	mustWrite("insert apple", ok, err, true)
	ok, err = c.Insert([]byte("banana"), 2)
	mustWrite("insert banana", ok, err, true)
	ok, err = c.Insert([]byte("cherry"), 3)
	mustWrite("insert cherry", ok, err, true)
	ok, err = c.Insert([]byte("apple"), 9)
	mustWrite("duplicate insert", ok, err, false)
	vals, err := c.Lookup([]byte("apple"), nil)
	if err != nil || len(vals) != 1 || vals[0] != 1 {
		t.Fatalf("lookup apple = %v (%v), want [1]", vals, err)
	}
	ok, err = c.Update([]byte("apple"), 10)
	mustWrite("update apple", ok, err, true)
	ok, err = c.Delete([]byte("banana"), 2)
	mustWrite("delete banana", ok, err, true)
	ok, err = c.Delete([]byte("banana"), 2)
	mustWrite("re-delete banana", ok, err, false)
	vals, err = c.Lookup([]byte("banana"), vals[:0])
	if err != nil || len(vals) != 0 {
		t.Fatalf("lookup banana = %v (%v), want absent", vals, err)
	}

	var got []string
	n, err := c.Scan([]byte("a"), 10, func(k []byte, v uint64) bool {
		got = append(got, fmt.Sprintf("%s=%d", k, v))
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	want := []string{"apple=10", "cherry=3"}
	if n != len(want) || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v (n=%d), want %v", got, n, want)
	}

	// Batch: mixed window, results in order.
	ops := []BatchOp{
		{Op: OpSet, Key: []byte("date"), Val: 4},
		{Op: OpGet, Key: []byte("date")},
		{Op: OpUpd, Key: []byte("date"), Val: 40},
		{Op: OpGet, Key: []byte("date")},
		{Op: OpDel, Key: []byte("date"), Val: 40},
		{Op: OpGet, Key: []byte("date")},
	}
	if err := c.Batch(ops); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !ops[0].OK || !ops[2].OK || !ops[4].OK {
		t.Fatalf("batch writes = %v %v %v, want all true", ops[0].OK, ops[2].OK, ops[4].OK)
	}
	if len(ops[1].Vals) != 1 || ops[1].Vals[0] != 4 {
		t.Fatalf("batch get after set = %v, want [4]", ops[1].Vals)
	}
	if len(ops[3].Vals) != 1 || ops[3].Vals[0] != 40 {
		t.Fatalf("batch get after upd = %v, want [40]", ops[3].Vals)
	}
	if len(ops[5].Vals) != 0 {
		t.Fatalf("batch get after del = %v, want absent", ops[5].Vals)
	}

	blob, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var stats struct {
		Shards int    `json:"shards"`
		Router string `json:"router"`
	}
	if err := json.Unmarshal(blob, &stats); err != nil {
		t.Fatalf("stats json: %v\n%s", err, blob)
	}
	if stats.Shards != 4 || stats.Router != "hash" {
		t.Fatalf("stats = %+v, want 4 hash shards", stats)
	}
}

// rawConn is a byte-level protocol driver for conformance tests.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, br: bufio.NewReader(conn)}
}

// frame assembles one wire frame from op and payload.
func frame(reqID uint32, op byte, payload []byte) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(1+4+len(payload)))
	b = binary.LittleEndian.AppendUint32(b, reqID)
	b = append(b, op)
	return append(b, payload...)
}

// send writes raw bytes.
func (rc *rawConn) send(b []byte) {
	rc.t.Helper()
	if _, err := rc.conn.Write(b); err != nil {
		rc.t.Fatalf("write: %v", err)
	}
}

// recv reads one response frame.
func (rc *rawConn) recv() (reqID uint32, status byte, payload []byte, err error) {
	rc.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var lenBuf [4]byte
	if _, err = io.ReadFull(rc.br, lenBuf[:]); err != nil {
		return
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	buf := make([]byte, n)
	if _, err = io.ReadFull(rc.br, buf); err != nil {
		return
	}
	return binary.LittleEndian.Uint32(buf), buf[4], buf[headerLen:], nil
}

// expectErr reads one response and asserts StatusErr with the given reqID.
func (rc *rawConn) expectErr(wantID uint32) string {
	rc.t.Helper()
	id, status, payload, err := rc.recv()
	if err != nil {
		rc.t.Fatalf("reading error response: %v", err)
	}
	if id != wantID || status != StatusErr {
		rc.t.Fatalf("response = (id=%d, status=0x%02x), want (id=%d, StatusErr)", id, status, wantID)
	}
	r := &reader{buf: payload}
	msg := r.bytes(int(r.u16("len")), "msg")
	return string(msg)
}

// expectClosed asserts the server closes the connection.
func (rc *rawConn) expectClosed() {
	rc.t.Helper()
	rc.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadAll(rc.br); err != nil {
		rc.t.Fatalf("connection not closed cleanly: %v", err)
	}
}

// TestProtocolConformance drives malformed frames at the server: every
// decodable-but-invalid request must produce StatusErr in request order
// with the connection still usable; only an unframeable stream closes it.
func TestProtocolConformance(t *testing.T) {
	_, addr := startServer(t, 2)

	key := func(s string) []byte {
		var b []byte
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		return append(b, s...)
	}

	recoverable := []struct {
		name    string
		payload []byte
		op      byte
	}{
		{"unknown opcode", key("k"), 0x99},
		{"empty key", key(""), OpGet},
		{"oversized key", key(string(make([]byte, MaxKey+1))), OpGet},
		{"truncated key", []byte{10, 0, 'a', 'b'}, OpGet},
		{"set missing value", key("k"), OpSet},
		{"trailing bytes", append(key("k"), 0xEE), OpGet},
		{"scan missing limit", key("k"), OpScan},
		{"scan over limit", append(key("k"), binary.LittleEndian.AppendUint32(nil, MaxScan+1)...), OpScan},
		{"batch truncated count", []byte{7}, OpBatch},
		{"batch over limit", binary.LittleEndian.AppendUint16(nil, MaxBatch+1), OpBatch},
		{"batch bad sub-op", append(binary.LittleEndian.AppendUint16(nil, 1), append([]byte{0x55}, key("k")...)...), OpBatch},
		{"batch truncated tail", append(binary.LittleEndian.AppendUint16(nil, 2), append([]byte{OpGet}, key("k")...)...), OpBatch},
		{"stats trailing bytes", []byte{1, 2, 3}, OpStats},
		{"ping trailing bytes", []byte{9}, 0x99},
	}
	for _, tc := range recoverable {
		t.Run(tc.name, func(t *testing.T) {
			rc := dialRaw(t, addr)
			// Malformed frame and a valid ping in one write: the error
			// response must come first, then the pong — request order.
			burst := append(frame(1, tc.op, tc.payload), frame(2, OpPing, nil)...)
			rc.send(burst)
			if msg := rc.expectErr(1); msg == "" {
				t.Fatal("empty error message")
			}
			id, status, _, err := rc.recv()
			if err != nil || id != 2 || status != StatusOK {
				t.Fatalf("ping after error = (id=%d, status=0x%02x, err=%v), want OK", id, status, err)
			}
		})
	}

	fatal := []struct {
		name string
		raw  []byte
	}{
		{"zero length prefix", binary.LittleEndian.AppendUint32(nil, 0)},
		{"undersized length prefix", binary.LittleEndian.AppendUint32(nil, 3)},
		{"oversized length prefix", binary.LittleEndian.AppendUint32(nil, MaxFrame+1)},
	}
	for _, tc := range fatal {
		t.Run(tc.name, func(t *testing.T) {
			rc := dialRaw(t, addr)
			rc.send(tc.raw)
			rc.expectErr(0)
			rc.expectClosed()
		})
	}
}

// TestPartialFrames drips a valid request across many small writes; the
// server must wait for the full frame and then answer normally.
func TestPartialFrames(t *testing.T) {
	_, addr := startServer(t, 2)
	rc := dialRaw(t, addr)
	full := frame(7, OpSet, append([]byte{3, 0, 'k', 'e', 'y'}, binary.LittleEndian.AppendUint64(nil, 42)...))
	for _, b := range full {
		rc.send([]byte{b})
		time.Sleep(time.Millisecond)
	}
	id, status, payload, err := rc.recv()
	if err != nil || id != 7 || status != StatusOK || len(payload) != 1 || payload[0] != 1 {
		t.Fatalf("dripped set = (id=%d, status=0x%02x, payload=%v, err=%v), want OK true", id, status, payload, err)
	}
}

// TestMidRequestDisconnect tears connections mid-frame at every prefix
// length of a valid request; the server must survive (no panic, no leaked
// connection) and keep serving others.
func TestMidRequestDisconnect(t *testing.T) {
	sv, addr := startServer(t, 2)
	full := frame(1, OpSet, append([]byte{3, 0, 'a', 'b', 'c'}, binary.LittleEndian.AppendUint64(nil, 1)...))
	for cut := 1; cut < len(full); cut++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(full[:cut])
		conn.Close()
	}
	// The server still answers a healthy client.
	c := dialConn(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after torn connections: %v", err)
	}
	// Every torn connection drains from the registry.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sv.Stats().ConnsLive <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still live after teardown", sv.Stats().ConnsLive)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipelinedBurst writes a thousand requests before reading anything;
// responses must come back complete and in request order.
func TestPipelinedBurst(t *testing.T) {
	_, addr := startServer(t, 4)
	rc := dialRaw(t, addr)

	const nReq = 1000
	var burst []byte
	var keyBuf [8]byte
	for i := 0; i < nReq; i++ {
		binary.BigEndian.PutUint64(keyBuf[:], uint64(i))
		payload := binary.LittleEndian.AppendUint16(nil, 8)
		payload = append(payload, keyBuf[:]...)
		if i%2 == 0 {
			payload = binary.LittleEndian.AppendUint64(payload, uint64(i)*3)
			burst = append(burst, frame(uint32(i), OpSet, payload)...)
		} else {
			burst = append(burst, frame(uint32(i), OpGet, payload)...)
		}
	}
	go rc.send(burst) // concurrent write: the burst exceeds socket buffers

	for i := 0; i < nReq; i++ {
		id, status, payload, err := rc.recv()
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if id != uint32(i) || status != StatusOK {
			t.Fatalf("response %d = (id=%d, status=0x%02x), want in-order OK", i, id, status)
		}
		if i%2 == 0 {
			if len(payload) != 1 || payload[0] != 1 {
				t.Fatalf("pipelined set %d = %v, want accepted", i, payload)
			}
		} else {
			// Odd keys were never inserted: empty lookup.
			if len(payload) != 2 || binary.LittleEndian.Uint16(payload) != 0 {
				t.Fatalf("pipelined get %d = %v, want empty", i, payload)
			}
		}
	}
}

// TestRemoteErrorSurfacing checks the client maps StatusErr to
// *RemoteError and keeps the connection usable.
func TestRemoteErrorSurfacing(t *testing.T) {
	_, addr := startServer(t, 2)
	c := dialConn(t, addr)
	_, err := c.Lookup(make([]byte, MaxKey+1), nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversized key error = %v, want *RemoteError", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after remote error: %v", err)
	}
}

// TestScanTruncationResume pushes a scan past the frame byte budget so
// the server truncates mid-scan (done=0) and the client transparently
// resumes; the merged result must be the exact ordered key set.
func TestScanTruncationResume(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk load over socket")
	}
	_, addr := startServer(t, 4)
	c := dialConn(t, addr)

	// 70k pairs × ~18 bytes ≈ 1.26 MB > MaxFrame, guaranteeing at least
	// one truncated response even at the MaxScan request size.
	const total = 70000
	var keys [total][8]byte
	ops := make([]BatchOp, 0, MaxBatch)
	for i := 0; i < total; i++ {
		binary.BigEndian.PutUint64(keys[i][:], uint64(i))
		ops = append(ops, BatchOp{Op: OpSet, Key: keys[i][:], Val: uint64(i)})
		if len(ops) == MaxBatch || i == total-1 {
			if err := c.Batch(ops); err != nil {
				t.Fatalf("bulk batch: %v", err)
			}
			for j := range ops {
				if !ops[j].OK {
					t.Fatalf("bulk insert rejected at %d", j)
				}
			}
			ops = ops[:0]
		}
	}

	next := uint64(0)
	n, err := c.Scan(nil, total+1000, func(k []byte, v uint64) bool {
		if got := binary.BigEndian.Uint64(k); got != next || v != next {
			t.Fatalf("scan out of order: got key %d val %d, want %d", got, v, next)
		}
		next++
		return true
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if n != total {
		t.Fatalf("scan visited %d, want %d", n, total)
	}

	// Early stop: the count includes the pair that said stop.
	seen := 0
	n, err = c.Scan(nil, total, func(k []byte, v uint64) bool {
		seen++
		return seen < 10
	})
	if err != nil || n != 10 {
		t.Fatalf("early-stop scan = %d (%v), want 10", n, err)
	}
}

// TestDurableRoundTripAndShutdown ports the old examples/kvserver
// coverage: a durable sharded store behind the server, graceful shutdown
// with an idle connection force-closed at the drain deadline, and a fresh
// recovery finding the exact final state in the shutdown checkpoint.
func TestDurableRoundTripAndShutdown(t *testing.T) {
	dir := t.TempDir()
	open := func() *shard.Store {
		t.Helper()
		r, err := shard.NewRouter("hash", 4)
		if err != nil {
			t.Fatal(err)
		}
		st, err := shard.Open(shard.Options{
			Shards: 4, Router: r, Tree: smallTreeOpts(),
			WALDir: dir, SyncOnCommit: false,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := open()
	sv := NewServer(st)
	if err := sv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := sv.Addr()

	c := dialConn(t, addr)
	for key, val := range map[string]uint64{"apple": 1, "banana": 2, "cherry": 3} {
		if ok, err := c.Insert([]byte(key), val); err != nil || !ok {
			t.Fatalf("insert %s: ok=%v err=%v", key, ok, err)
		}
	}
	if ok, err := c.Update([]byte("apple"), 10); err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	if ok, err := c.Delete([]byte("banana"), 2); err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}

	// An idle connection must not block shutdown past the drain timeout.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	done := make(chan struct{})
	go func() { sv.Shutdown(200 * time.Millisecond); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on the idle connection")
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("dial succeeded after shutdown")
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recovery: the checkpoint carries the whole state, no log replay.
	st2 := open()
	defer st2.Close()
	rec := st2.RecoveryStats()
	if rec.SnapshotKeys != 2 || rec.Replayed != 0 {
		t.Errorf("recovery stats = %+v, want 2 snapshot keys and 0 replayed", rec)
	}
	sess := st2.NewSession()
	defer sess.Release()
	for key, want := range map[string]uint64{"apple": 10, "cherry": 3} {
		out := sess.Lookup([]byte(key), nil)
		if len(out) != 1 || out[0] != want {
			t.Errorf("%s = %v, want [%d]", key, out, want)
		}
	}
	if out := sess.Lookup([]byte("banana"), nil); len(out) != 0 {
		t.Errorf("banana = %v, want absent", out)
	}
	if err := st2.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestWriterBackpressure fills the response queue with scan traffic from
// a client that reads slowly, making sure bounded buffering (not
// unbounded memory) absorbs the burst and everything still arrives.
func TestWriterBackpressure(t *testing.T) {
	_, addr := startServer(t, 2)
	c := dialConn(t, addr)
	var keyBuf [8]byte
	ops := make([]BatchOp, 0, 4096)
	for i := 0; i < 4096; i++ {
		binary.BigEndian.PutUint64(keyBuf[:], uint64(i))
		ops = append(ops, BatchOp{Op: OpSet, Key: bytes.Clone(keyBuf[:]), Val: uint64(i)})
	}
	if err := c.Batch(ops); err != nil {
		t.Fatal(err)
	}

	rc := dialRaw(t, addr)
	// Many scans queued at once, read back slowly.
	var burst []byte
	const nScans = 512
	for i := 0; i < nScans; i++ {
		payload := binary.LittleEndian.AppendUint16(nil, 1)
		payload = append(payload, 0)
		payload = binary.LittleEndian.AppendUint32(payload, 4096)
		burst = append(burst, frame(uint32(i), OpScan, payload)...)
	}
	go rc.send(burst)
	for i := 0; i < nScans; i++ {
		id, status, _, err := rc.recv()
		if err != nil || id != uint32(i) || status != StatusOK {
			t.Fatalf("scan response %d = (id=%d, status=0x%02x, err=%v)", i, id, status, err)
		}
		if i%64 == 0 {
			time.Sleep(5 * time.Millisecond) // slow reader
		}
	}
}
