package bwproto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/txn"
)

// ServerStats are the network tier's own counters, aggregated across
// connections.
type ServerStats struct {
	ConnsTotal  uint64 `json:"conns_total"`
	ConnsLive   int64  `json:"conns_live"`
	Frames      uint64 `json:"frames"`
	ProtoErrors uint64 `json:"proto_errors"`
}

// Server fronts a sharded store with the bwproto protocol. One Server
// handles any number of concurrent connections; each connection gets its
// own store session (per-shard epoch handles and scratch), a reader
// goroutine that executes requests in arrival order, and a writer
// goroutine so response serialization never blocks request execution —
// request pipelining with strict per-connection response ordering.
type Server struct {
	st  *shard.Store
	txs *txn.Store
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	wg       sync.WaitGroup // live connections
	accept   sync.WaitGroup // the accept loop

	connsTotal  atomic.Uint64
	connsLive   atomic.Int64
	frames      atomic.Uint64
	protoErrors atomic.Uint64
}

// NewServer wraps st; call Serve (usually in a goroutine) to accept.
// The server owns the store's transaction engine: it must be the only
// txn.Store over st, since transaction IDs are allocated per engine.
func NewServer(st *shard.Store) *Server {
	return &Server{st: st, txs: txn.NewForShard(st), conns: make(map[net.Conn]struct{})}
}

// Store returns the store the server fronts.
func (sv *Server) Store() *shard.Store { return sv.st }

// Txn returns the server's transaction engine (for stats/metrics).
func (sv *Server) Txn() *txn.Store { return sv.txs }

// Stats snapshots the network-tier counters.
func (sv *Server) Stats() ServerStats {
	return ServerStats{
		ConnsTotal:  sv.connsTotal.Load(),
		ConnsLive:   sv.connsLive.Load(),
		Frames:      sv.frames.Load(),
		ProtoErrors: sv.protoErrors.Load(),
	}
}

// Listen starts listening on addr (port 0 picks a free one) and serves
// in a background goroutine. Use Addr for the bound address.
func (sv *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	sv.setListener(ln)
	go sv.Serve(ln)
	return nil
}

// setListener records ln once (Listen already did for its goroutine).
func (sv *Server) setListener(ln net.Listener) {
	sv.mu.Lock()
	if sv.ln == nil {
		sv.ln = ln
	}
	sv.mu.Unlock()
}

// Addr returns the bound address after Listen.
func (sv *Server) Addr() string {
	sv.mu.Lock()
	ln := sv.ln
	sv.mu.Unlock()
	if ln == nil {
		return ""
	}
	return ln.Addr().String()
}

// Serve accepts connections on ln until the listener closes.
func (sv *Server) Serve(ln net.Listener) {
	sv.setListener(ln)
	sv.accept.Add(1)
	defer sv.accept.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sv.mu.Lock()
		if sv.draining.Load() {
			sv.mu.Unlock()
			conn.Close()
			continue
		}
		sv.conns[conn] = struct{}{}
		sv.mu.Unlock()
		sv.connsTotal.Add(1)
		sv.connsLive.Add(1)
		sv.wg.Add(1)
		go func() {
			defer sv.wg.Done()
			sv.serve(conn)
			sv.mu.Lock()
			delete(sv.conns, conn)
			sv.mu.Unlock()
			sv.connsLive.Add(-1)
		}()
	}
}

// Shutdown stops accepting, waits up to timeout for live connections to
// drain, then force-closes stragglers. The store itself is left open;
// the owner closes (and checkpoints) it.
func (sv *Server) Shutdown(timeout time.Duration) {
	sv.draining.Store(true)
	sv.mu.Lock()
	ln := sv.ln
	sv.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	sv.accept.Wait()
	drained := make(chan struct{})
	go func() { sv.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(timeout):
		sv.mu.Lock()
		for conn := range sv.conns {
			conn.Close()
		}
		sv.mu.Unlock()
		<-drained
	}
}

// outQueue is the per-connection response backlog: deep enough that a
// pipelined burst keeps executing while earlier responses serialize,
// bounded so one slow reader cannot hold unbounded memory.
const outQueue = 256

// serve runs one connection: read → execute → enqueue response, with a
// dedicated writer goroutine coalescing flushes across the pipeline.
func (sv *Server) serve(conn net.Conn) {
	defer conn.Close()
	sess := sv.st.NewSession()
	defer sess.Release()
	// The transaction session is built lazily: most connections never
	// issue OpGetV/OpTxn, and the session pins per-shard tree sessions.
	var txs *txn.Session
	defer func() {
		if txs != nil {
			txs.Release()
		}
	}()

	out := make(chan []byte, outQueue)
	var ww sync.WaitGroup
	ww.Add(1)
	go func() {
		defer ww.Done()
		bw := bufio.NewWriterSize(conn, 64<<10)
		for frame := range out {
			if _, err := bw.Write(frame); err != nil {
				conn.Close() // unblock the reader
				for range out {
				}
				return
			}
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					conn.Close()
					for range out {
					}
					return
				}
			}
		}
		bw.Flush()
	}()
	defer ww.Wait()
	defer close(out)

	br := bufio.NewReaderSize(conn, 64<<10)
	var lenBuf [4]byte
	var frame []byte
	var scratch []uint64
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return // clean close or mid-frame disconnect; nothing to answer
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n < headerLen || n > MaxFrame {
			// The stream is unframeable from here on: answer with a
			// best-effort error and hang up.
			sv.protoErrors.Add(1)
			out <- errFrame(0, fmt.Sprintf("frame length %d outside [%d, %d]", n, headerLen, MaxFrame))
			return
		}
		if cap(frame) < int(n) {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return // torn frame: the client vanished mid-request
		}
		sv.frames.Add(1)
		reqID := binary.LittleEndian.Uint32(frame)
		op := frame[4]
		getTxs := func() *txn.Session {
			if txs == nil {
				txs = sv.txs.NewSession()
			}
			return txs
		}
		resp, fatal := sv.handle(sess, getTxs, reqID, op, frame[headerLen:], &scratch)
		out <- resp
		if fatal {
			return
		}
	}
}

// errFrame builds a StatusErr response.
func errFrame(reqID uint32, msg string) []byte {
	return appendFrame(nil, reqID, StatusErr, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(msg)))
		return append(b, msg...)
	})
}

// handle executes one decoded request and renders its response frame.
// fatal reports that the connection must close after the response is
// written (the store is going away).
func (sv *Server) handle(sess *shard.Session, getTxs func() *txn.Session, reqID uint32, op byte, payload []byte, scratch *[]uint64) (resp []byte, fatal bool) {
	r := &reader{buf: payload}
	fail := func(err error) []byte {
		sv.protoErrors.Add(1)
		return errFrame(reqID, err.Error())
	}
	switch op {
	case OpPing:
		return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte { return b }), false

	case OpGet:
		key, err := r.key()
		if err != nil {
			return fail(err), false
		}
		if r.rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes after Get", r.rest())), false
		}
		*scratch = sess.Lookup(key, (*scratch)[:0])
		vals := *scratch
		return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(vals)))
			for _, v := range vals {
				b = binary.LittleEndian.AppendUint64(b, v)
			}
			return b
		}), false

	case OpSet, OpUpd, OpDel:
		key, err := r.key()
		if err != nil {
			return fail(err), false
		}
		val := r.u64("value")
		if r.err != nil {
			return fail(r.err), false
		}
		if r.rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes after write op", r.rest())), false
		}
		ok, werr := sv.write(sess, op, key, val)
		if werr != nil {
			return errFrame(reqID, "store shutting down: "+werr.Error()), true
		}
		return okFrame(reqID, ok), false

	case OpScan:
		start, err := r.startKey()
		if err != nil {
			return fail(err), false
		}
		n := int(r.u32("scan limit"))
		if r.err != nil {
			return fail(r.err), false
		}
		if r.rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes after Scan", r.rest())), false
		}
		if n > MaxScan {
			return fail(fmt.Errorf("scan of %d items exceeds limit %d", n, MaxScan)), false
		}
		return sv.scan(sess, reqID, start, n), false

	case OpBatch:
		return sv.batch(sess, reqID, r, scratch)

	case OpGetV:
		key, err := r.key()
		if err != nil {
			return fail(err), false
		}
		if r.rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes after GetV", r.rest())), false
		}
		val, ver, found, gerr := getTxs().GetVersion(key)
		if gerr != nil {
			return errFrame(reqID, "store shutting down: "+gerr.Error()), true
		}
		return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
			if found {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.LittleEndian.AppendUint64(b, val)
			return binary.LittleEndian.AppendUint64(b, ver)
		}), false

	case OpTxn:
		return sv.txnCommit(getTxs(), reqID, r)

	case OpStats:
		if r.rest() != 0 {
			return fail(fmt.Errorf("%d trailing bytes after Stats", r.rest())), false
		}
		blob, err := json.Marshal(map[string]any{
			"tree":   sv.st.Stats(),
			"server": sv.Stats(),
			"shards": sv.st.NumShards(),
			"router": sv.st.Router().Name(),
		})
		if err != nil {
			return fail(err), false
		}
		return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
			return append(b, blob...)
		}), false
	}
	return fail(fmt.Errorf("unknown opcode 0x%02x", op)), false
}

// write dispatches one mutating op.
func (sv *Server) write(sess *shard.Session, op byte, key []byte, val uint64) (bool, error) {
	switch op {
	case OpSet:
		return sess.Insert(key, val)
	case OpUpd:
		return sess.Update(key, val)
	default:
		return sess.Delete(key, val)
	}
}

// okFrame renders a write op's boolean outcome.
func okFrame(reqID uint32, ok bool) []byte {
	return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
		if ok {
			return append(b, 1)
		}
		return append(b, 0)
	})
}

// scan runs a merged cross-shard scan, bounding the response to one
// frame: when the byte budget fills before n pairs, the response is cut
// at the last whole pair with done=0 and the client resumes from the
// successor key. done=1 means the key space itself ran out.
func (sv *Server) scan(sess *shard.Session, reqID uint32, start []byte, n int) []byte {
	const budget = MaxFrame - 64
	return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
		doneAt := len(b)
		b = append(b, 0) // done flag, patched below
		countAt := len(b)
		b = append(b, 0, 0, 0, 0)
		count := 0
		truncated := false
		got := sess.Scan(start, n, func(k []byte, v uint64) bool {
			if len(b)+2+len(k)+8 > budget {
				truncated = true
				return false
			}
			b = appendKey(b, k)
			b = binary.LittleEndian.AppendUint64(b, v)
			count++
			return true
		})
		if !truncated && got < n {
			b[doneAt] = 1
		}
		binary.LittleEndian.PutUint32(b[countAt:], uint32(count))
		return b
	})
}

// batch executes one OpBatch frame: sub-operations run sequentially in
// frame order against the per-connection session (one network round trip
// amortized over the whole window) and the response carries one result
// per sub-op in the same order.
func (sv *Server) batch(sess *shard.Session, reqID uint32, r *reader, scratch *[]uint64) ([]byte, bool) {
	count := int(r.u16("batch count"))
	if r.err != nil {
		sv.protoErrors.Add(1)
		return errFrame(reqID, r.err.Error()), false
	}
	if count > MaxBatch {
		sv.protoErrors.Add(1)
		return errFrame(reqID, fmt.Sprintf("batch of %d ops exceeds limit %d", count, MaxBatch)), false
	}
	var werr error
	resp := appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint16(b, uint16(count))
		for i := 0; i < count; i++ {
			sub := r.u8("batch sub-op")
			key, err := r.key()
			if err != nil {
				r.err = fmt.Errorf("batch op %d: %w", i, err)
				return b
			}
			switch sub {
			case OpGet:
				*scratch = sess.Lookup(key, (*scratch)[:0])
				b = append(b, OpGet)
				b = binary.LittleEndian.AppendUint16(b, uint16(len(*scratch)))
				for _, v := range *scratch {
					b = binary.LittleEndian.AppendUint64(b, v)
				}
			case OpSet, OpUpd, OpDel:
				val := r.u64("batch value")
				if r.err != nil {
					return b
				}
				var ok bool
				ok, werr = sv.write(sess, sub, key, val)
				if werr != nil {
					return b
				}
				b = append(b, sub)
				if ok {
					b = append(b, 1)
				} else {
					b = append(b, 0)
				}
			default:
				r.err = fmt.Errorf("batch op %d: unknown sub-opcode 0x%02x", i, sub)
				return b
			}
		}
		if r.rest() != 0 {
			r.err = fmt.Errorf("%d trailing bytes after batch", r.rest())
		}
		return b
	})
	if werr != nil {
		return errFrame(reqID, "store shutting down: "+werr.Error()), true
	}
	if r.err != nil {
		// A malformed tail invalidates the whole frame: writes executed
		// before the parse error have landed (the client learns that from
		// the error and must treat the batch as indeterminate), but the
		// response must be well-formed, so it degrades to StatusErr.
		sv.protoErrors.Add(1)
		return errFrame(reqID, r.err.Error()), false
	}
	return resp, false
}

// txnCommit decodes one OpTxn frame and runs it through the store's
// transaction engine. Read and write keys alias the request frame —
// CommitTxn does not retain them past the call.
func (sv *Server) txnCommit(txs *txn.Session, reqID uint32, r *reader) ([]byte, bool) {
	nreads := int(r.u16("txn read count"))
	if r.err != nil {
		sv.protoErrors.Add(1)
		return errFrame(reqID, r.err.Error()), false
	}
	reads := make([]index.TxnRead, 0, nreads)
	for i := 0; i < nreads; i++ {
		key, err := r.key()
		if err != nil {
			sv.protoErrors.Add(1)
			return errFrame(reqID, fmt.Sprintf("txn read %d: %v", i, err)), false
		}
		ver := r.u64("txn read version")
		if r.err != nil {
			sv.protoErrors.Add(1)
			return errFrame(reqID, r.err.Error()), false
		}
		reads = append(reads, index.TxnRead{Key: key, Ver: ver})
	}
	nwrites := int(r.u16("txn write count"))
	if r.err != nil {
		sv.protoErrors.Add(1)
		return errFrame(reqID, r.err.Error()), false
	}
	if nreads+nwrites > MaxTxnOps {
		sv.protoErrors.Add(1)
		return errFrame(reqID, fmt.Sprintf("txn of %d ops exceeds limit %d", nreads+nwrites, MaxTxnOps)), false
	}
	writes := make([]index.TxnWrite, 0, nwrites)
	for i := 0; i < nwrites; i++ {
		op := r.u8("txn write op")
		key, err := r.key()
		if err != nil {
			sv.protoErrors.Add(1)
			return errFrame(reqID, fmt.Sprintf("txn write %d: %v", i, err)), false
		}
		val := r.u64("txn write value")
		if r.err != nil {
			sv.protoErrors.Add(1)
			return errFrame(reqID, r.err.Error()), false
		}
		if op != index.TxnPut && op != index.TxnDel {
			sv.protoErrors.Add(1)
			return errFrame(reqID, fmt.Sprintf("txn write %d: unknown op 0x%02x", i, op)), false
		}
		writes = append(writes, index.TxnWrite{Op: op, Key: key, Value: val})
	}
	if r.rest() != 0 {
		sv.protoErrors.Add(1)
		return errFrame(reqID, fmt.Sprintf("%d trailing bytes after Txn", r.rest())), false
	}
	res, err := txs.CommitTxn(reads, writes)
	if err != nil {
		if err == txn.ErrDuplicateWriteKey {
			sv.protoErrors.Add(1)
			return errFrame(reqID, err.Error()), false
		}
		return errFrame(reqID, "store shutting down: "+err.Error()), true
	}
	return appendFrame(nil, reqID, StatusOK, func(b []byte) []byte {
		status := byte(TxnWireCommitted)
		if res.Status == index.TxnConflict {
			status = TxnWireConflict
		}
		b = append(b, status)
		b = binary.LittleEndian.AppendUint64(b, res.TxnID)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(writes)))
		for i := 0; i < len(writes); i++ {
			var v uint64
			if i < len(res.WriteVers) {
				v = res.WriteVers[i]
			}
			b = binary.LittleEndian.AppendUint64(b, v)
		}
		return b
	}), false
}

// ErrServerClosed mirrors net.ErrClosed for callers that race Shutdown.
var ErrServerClosed = errors.New("bwproto: server closed")
