package bwproto

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/histcheck"
	"repro/internal/index"
)

// TestConnectionChurn cycles a thousand connections through the server
// under concurrent load: every dial does real work, overlapping with
// dozens of live peers, and every close must drain from the registry.
// Run under -race this doubles as the serving tier's data-race probe.
func TestConnectionChurn(t *testing.T) {
	sv, addr := startServer(t, 4)

	workers, dials := 50, 20
	if testing.Short() {
		workers, dials = 20, 10
	}
	totalConns := workers * dials
	var peak atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var key [8]byte
			for d := 0; d < dials; d++ {
				c, err := Dial(addr)
				if err != nil {
					t.Errorf("worker %d dial %d: %v", w, d, err)
					return
				}
				if live := sv.Stats().ConnsLive; live > peak.Load() {
					peak.Store(live)
				}
				for i := 0; i < 50; i++ {
					binary.BigEndian.PutUint64(key[:], rng.Uint64()%4096)
					var opErr error
					switch rng.Intn(4) {
					case 0:
						_, opErr = c.Insert(key[:], uint64(w))
					case 1:
						_, opErr = c.Delete(key[:], uint64(w))
					case 2:
						_, opErr = c.Lookup(key[:], nil)
					default:
						_, opErr = c.Scan(key[:], 10, func([]byte, uint64) bool { return true })
					}
					if opErr != nil {
						t.Errorf("worker %d op: %v", w, opErr)
						c.Close()
						return
					}
				}
				c.Close()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	s := sv.Stats()
	if s.ConnsTotal < uint64(totalConns) {
		t.Errorf("ConnsTotal = %d, want >= %d", s.ConnsTotal, totalConns)
	}
	if s.ProtoErrors != 0 {
		t.Errorf("ProtoErrors = %d, want 0", s.ProtoErrors)
	}
	t.Logf("churned %d connections (peak %d live), %d frames", s.ConnsTotal, peak.Load(), s.Frames)

	// Every closed connection leaves the registry.
	deadline := time.Now().Add(10 * time.Second)
	for sv.Stats().ConnsLive > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still registered after close", sv.Stats().ConnsLive)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := sv.Store().Validate(); err != nil {
		t.Errorf("store validate after churn: %v", err)
	}
}

// TestHistcheckOverWire runs the history checker against a live server
// through the NetIndex adapter: the same recorder that gates in-process
// stress runs verifies client-visible linearizability over real sockets.
func TestHistcheckOverWire(t *testing.T) {
	_, addr := startServer(t, 8)
	ix, err := DialIndex(addr)
	if err != nil {
		t.Fatal(err)
	}
	checked := histcheck.Wrap(ix, false)
	defer checked.Close()

	workers, opsPer := 8, 3000
	if testing.Short() {
		workers, opsPer = 4, 800
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := index.AsBatch(checked.NewSession())
			defer sess.Release()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			var key [8]byte
			for i := 0; i < opsPer; i++ {
				binary.BigEndian.PutUint64(key[:], rng.Uint64()%512)
				switch rng.Intn(10) {
				case 0, 1, 2:
					sess.Insert(key[:], uint64(w*opsPer+i))
				case 3:
					sess.Delete(key[:], uint64(rng.Intn(workers*opsPer)))
				case 4:
					sess.Update(key[:], uint64(w*opsPer+i))
				case 5:
					sess.Scan(key[:], 20, func([]byte, uint64) bool { return true })
				default:
					sess.Lookup(key[:], nil)
				}
			}
		}(w)
	}
	wg.Wait()

	violations := checked.Check()
	for _, v := range violations {
		t.Errorf("violation: %v", v)
	}
	if len(violations) == 0 {
		t.Logf("history clean: %d ops over the wire", len(checked.History().Ops))
	}
}

// TestNetIndexBatchSession covers the adapter's batched entry points
// (windowed OpBatch frames) against direct results.
func TestNetIndexBatchSession(t *testing.T) {
	_, addr := startServer(t, 4)
	ix, err := DialIndex(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	sess, ok := ix.NewSession().(index.BatchSession)
	if !ok {
		t.Fatal("NetIndex session does not implement BatchSession")
	}
	defer sess.Release()

	const n = 1000
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = binary.BigEndian.AppendUint64(nil, uint64(i))
		vals[i] = uint64(i) * 7
	}
	ok1 := sess.InsertBatch(keys, vals, nil)
	for i, got := range ok1 {
		if !got {
			t.Fatalf("InsertBatch[%d] rejected", i)
		}
	}
	// Second insert of the same keys must be rejected pairwise.
	ok2 := sess.InsertBatch(keys, vals, ok1)
	for i, got := range ok2 {
		if got {
			t.Fatalf("duplicate InsertBatch[%d] accepted", i)
		}
	}
	seen := 0
	sess.LookupBatch(keys, func(i int, got []uint64) {
		seen++
		if len(got) != 1 || got[0] != uint64(i)*7 {
			t.Fatalf("LookupBatch[%d] = %v, want [%d]", i, got, uint64(i)*7)
		}
	})
	if seen != n {
		t.Fatalf("LookupBatch visited %d keys, want %d", seen, n)
	}
	del := sess.DeleteBatch(keys[:n/2], vals[:n/2], nil)
	for i, got := range del {
		if !got {
			t.Fatalf("DeleteBatch[%d] rejected", i)
		}
	}
	if got := sess.Scan(nil, n+10, func([]byte, uint64) bool { return true }); got != n/2 {
		t.Fatalf("post-delete scan = %d pairs, want %d", got, n/2)
	}
}
