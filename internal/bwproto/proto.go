// Package bwproto is the serving tier's network layer: a length-prefixed
// binary protocol (RESP-in-spirit, binary-on-the-wire) over TCP, a
// pipelined server fronting a sharded store (internal/shard), and a
// client whose sessions satisfy index.Index — so every harness workload,
// mirror verifier, and the history checker can drive a server over real
// sockets through the exact code paths they use in-process.
//
// # Wire format
//
// Every request and response is one frame:
//
//	uint32  length   (bytes that follow, little-endian; max MaxFrame)
//	uint32  reqID    (echoed verbatim in the response)
//	uint8   opcode / status
//	payload (opcode-specific, see below)
//
// Requests (client → server):
//
//	OpPing                                            liveness probe
//	OpGet   u16 klen, key                             point lookup
//	OpSet   u16 klen, key, u64 val                    insert-if-absent
//	OpUpd   u16 klen, key, u64 val                    update-if-present
//	OpDel   u16 klen, key, u64 val                    delete
//	OpScan  u16 klen, start, u32 n                    ordered range read
//	OpBatch u16 count, count×(u8 sub, u16 klen, key[, u64 val])
//	OpStats                                           aggregate counters
//	OpGetV  u16 klen, key                             versioned lookup
//	OpTxn   u16 nreads,  nreads×(u16 klen, key, u64 ver),
//	        u16 nwrites, nwrites×(u8 op, u16 klen, key, u64 val)
//	                                                  transactional commit
//	        (op is index.TxnPut or index.TxnDel; a read's ver is the
//	        stamp OpGetV reported, 0 for an observed-absent key)
//
// Responses (server → client) carry a status byte in the opcode slot:
//
//	StatusOK   + payload:
//	    Get:   u16 nvals, nvals×u64
//	    Set/Upd/Del: u8 ok
//	    Scan:  u8 done, u32 count, count×(u16 klen, key, u64 val) — done=1
//	        means the key space ended before the limit; done=0 with
//	        count<n means the response hit the frame budget and the
//	        client resumes from the successor of the last key
//	    Batch: u16 count, count×(u8 sub, result as above)
//	    Stats: u32 jsonlen, json
//	    GetV:  u8 found, u64 val, u64 ver
//	    Txn:   u8 status (0 committed, 1 conflict), u64 txnID,
//	        u16 nvers, nvers×u64 — post-commit write versions in write
//	        order; a zero entry marks a write that installed no new
//	        version (a delete, or a put whose value was unchanged);
//	        all zero on conflict
//	StatusErr  + u16 msglen, msg — the request was malformed or exceeded
//	    a limit; the connection stays usable and responses stay in
//	    request order. Only an undecodable stream (bogus length prefix)
//	    closes the connection, after a best-effort error frame.
//
// Responses are always written in request order per connection, so
// clients may pipeline arbitrarily many requests before reading.
package bwproto

import (
	"encoding/binary"
	"fmt"
)

// Opcodes.
const (
	OpPing  = 0x01
	OpGet   = 0x02
	OpSet   = 0x03
	OpUpd   = 0x04
	OpDel   = 0x05
	OpScan  = 0x06
	OpBatch = 0x07
	OpStats = 0x08
	OpGetV  = 0x09
	OpTxn   = 0x0A
)

// Txn response status bytes (the u8 after StatusOK in an OpTxn reply).
const (
	TxnWireCommitted = 0x00
	TxnWireConflict  = 0x01
)

// Response status codes.
const (
	StatusOK  = 0x00
	StatusErr = 0xFF
)

// Protocol limits. Violations get a StatusErr response, never a panic.
const (
	// MaxFrame bounds one frame's post-length bytes. Large enough for a
	// full scan chunk, small enough that a hostile length prefix cannot
	// balloon server memory.
	MaxFrame = 1 << 20
	// MaxKey bounds one key. The tree itself would accept more; the
	// serving tier pins a contract.
	MaxKey = 4096
	// MaxScan bounds one scan request's item count.
	MaxScan = 1 << 16
	// MaxBatch bounds one batch frame's sub-operation count.
	MaxBatch = 1 << 14
	// MaxTxnOps bounds one transaction frame's combined read- and
	// write-set size.
	MaxTxnOps = 1 << 12
)

// header is the fixed part of every frame after the length prefix.
const headerLen = 4 + 1 // reqID + opcode

// appendFrame seals payload built by fn into buf as one frame:
// length prefix, reqID, op, payload.
func appendFrame(buf []byte, reqID uint32, op byte, fn func([]byte) []byte) []byte {
	lenAt := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.LittleEndian.AppendUint32(buf, reqID)
	buf = append(buf, op)
	buf = fn(buf)
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf
}

// appendKey appends u16 klen + key.
func appendKey(buf, key []byte) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key)))
	return append(buf, key...)
}

// reader walks one decoded frame payload.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated %s at offset %d", what, r.pos)
	}
}

func (r *reader) u8(what string) byte {
	if r.err != nil || r.pos+1 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *reader) u16(what string) uint16 {
	if r.err != nil || r.pos+2 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.pos+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.pos+8 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) bytes(n int, what string) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.buf) {
		r.fail(what)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// key reads u16 klen + key, enforcing the key contract.
func (r *reader) key() ([]byte, error) {
	klen := int(r.u16("key length"))
	k := r.bytes(klen, "key")
	if r.err != nil {
		return nil, r.err
	}
	if klen == 0 {
		return nil, fmt.Errorf("empty key")
	}
	if klen > MaxKey {
		return nil, fmt.Errorf("key of %d bytes exceeds limit %d", klen, MaxKey)
	}
	return k, nil
}

// startKey reads u16 klen + key for scan starts, where empty means
// "from the beginning of the key space".
func (r *reader) startKey() ([]byte, error) {
	klen := int(r.u16("start key length"))
	k := r.bytes(klen, "start key")
	if r.err != nil {
		return nil, r.err
	}
	if klen > MaxKey {
		return nil, fmt.Errorf("start key of %d bytes exceeds limit %d", klen, MaxKey)
	}
	return k, nil
}

// rest reports leftover bytes — a malformed frame signal (every opcode's
// payload is fully specified).
func (r *reader) rest() int { return len(r.buf) - r.pos }
