package bwproto

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/index"
)

func tkey(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

// TestTxnRoundTrip drives the transactional opcodes through a real
// socket: versioned reads, a multi-key commit, first-committer-wins
// conflict, and the malformed-frame error path.
func TestTxnRoundTrip(t *testing.T) {
	_, addr := startServer(t, 4)
	c := dialConn(t, addr)

	// Absent key: found=false, version 0 — the observation a transaction
	// records to assert continued absence at commit.
	_, ver, found, err := c.GetVersion(tkey(1))
	if err != nil {
		t.Fatal(err)
	}
	if found || ver != 0 {
		t.Fatalf("absent key: found=%v ver=%d, want false/0", found, ver)
	}

	// Multi-key commit against the absence we just observed.
	res, err := c.CommitTxn(
		[]index.TxnRead{{Key: tkey(1), Ver: 0}},
		[]index.TxnWrite{
			{Op: index.TxnPut, Key: tkey(1), Value: 10},
			{Op: index.TxnPut, Key: tkey(2), Value: 20},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != index.TxnCommitted {
		t.Fatalf("commit status = %v", res.Status)
	}
	if len(res.WriteVers) != 2 || res.WriteVers[0] == 0 || res.WriteVers[1] == 0 {
		t.Fatalf("write versions = %v, want two non-zero stamps", res.WriteVers)
	}

	// The committed values are visible with the stamps the commit reported.
	v, ver1, found, err := c.GetVersion(tkey(1))
	if err != nil {
		t.Fatal(err)
	}
	if !found || v != 10 || ver1 != res.WriteVers[0] {
		t.Fatalf("key 1 = (%d, %d, %v), want (10, %d, true)", v, ver1, found, res.WriteVers[0])
	}

	// A stale read (the pre-commit version 0) must now conflict.
	res2, err := c.CommitTxn(
		[]index.TxnRead{{Key: tkey(1), Ver: 0}},
		[]index.TxnWrite{{Op: index.TxnPut, Key: tkey(3), Value: 30}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != index.TxnConflict {
		t.Fatalf("stale-read commit status = %v, want conflict", res2.Status)
	}
	if _, _, found, _ := c.GetVersion(tkey(3)); found {
		t.Fatal("conflicted transaction's write is visible")
	}

	// Duplicate write key is a client bug: StatusErr, connection survives.
	_, err = c.CommitTxn(nil, []index.TxnWrite{
		{Op: index.TxnPut, Key: tkey(9), Value: 1},
		{Op: index.TxnDel, Key: tkey(9)},
	})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("duplicate write key: err = %v, want RemoteError", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after StatusErr: %v", err)
	}

	// Deleting through a transaction removes the key atomically with the
	// rest of the write set.
	cur, curVer, _, err := c.GetVersion(tkey(2))
	if err != nil {
		t.Fatal(err)
	}
	res3, err := c.CommitTxn(
		[]index.TxnRead{{Key: tkey(2), Ver: curVer}},
		[]index.TxnWrite{
			{Op: index.TxnDel, Key: tkey(2)},
			{Op: index.TxnPut, Key: tkey(4), Value: cur},
		},
	)
	if err != nil || res3.Status != index.TxnCommitted {
		t.Fatalf("move commit: %v %v", res3.Status, err)
	}
	if _, _, found, _ := c.GetVersion(tkey(2)); found {
		t.Fatal("transactional delete left the key behind")
	}
	if v, _, found, _ := c.GetVersion(tkey(4)); !found || v != cur {
		t.Fatalf("moved value = (%d, %v), want (%d, true)", v, found, cur)
	}
}

// TestTxnBankOverSocket runs the bank-transfer invariant across the wire:
// concurrent clients move money between accounts sharded over four trees,
// and the total is conserved — cross-shard atomicity observed end to end.
func TestTxnBankOverSocket(t *testing.T) {
	_, addr := startServer(t, 4)

	const accounts = 64
	const initial = 1000
	setup := dialConn(t, addr)
	for i := 0; i < accounts; i++ {
		if _, err := setup.Insert(tkey(uint64(i)), initial); err != nil {
			t.Fatal(err)
		}
	}

	workers, transfers := 8, 200
	if testing.Short() {
		workers, transfers = 4, 50
	}
	var wg sync.WaitGroup
	var commits, conflicts int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ix, err := DialIndex(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer ix.Close()
			ts := ix.NewTxnSession()
			defer ts.Release()
			rng := rand.New(rand.NewSource(int64(w)))
			var myCommits, myConflicts int64
			for i := 0; i < transfers; i++ {
				from := uint64(rng.Intn(accounts))
				to := uint64(rng.Intn(accounts))
				if from == to {
					continue
				}
				fv, fver, ok1, err1 := ts.GetVersion(tkey(from))
				tv, tver, ok2, err2 := ts.GetVersion(tkey(to))
				if err1 != nil || err2 != nil || !ok1 || !ok2 {
					t.Errorf("read accounts: %v %v %v %v", ok1, ok2, err1, err2)
					return
				}
				amount := uint64(rng.Intn(10))
				if fv < amount {
					continue
				}
				res, err := ts.CommitTxn(
					[]index.TxnRead{{Key: tkey(from), Ver: fver}, {Key: tkey(to), Ver: tver}},
					[]index.TxnWrite{
						{Op: index.TxnPut, Key: tkey(from), Value: fv - amount},
						{Op: index.TxnPut, Key: tkey(to), Value: tv + amount},
					},
				)
				if err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				if res.Status == index.TxnCommitted {
					myCommits++
				} else {
					myConflicts++
				}
			}
			mu.Lock()
			commits += myCommits
			conflicts += myConflicts
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var sum uint64
	for i := 0; i < accounts; i++ {
		v, _, found, err := setup.GetVersion(tkey(uint64(i)))
		if err != nil || !found {
			t.Fatalf("account %d: found=%v err=%v", i, found, err)
		}
		sum += v
	}
	if sum != accounts*initial {
		t.Fatalf("bank sum = %d, want %d (money not conserved)", sum, accounts*initial)
	}
	t.Logf("bank over socket: %d commits, %d conflicts, sum conserved", commits, conflicts)
}
