package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestOptionsMatrix runs a concurrent smoke workload on every combination
// of the four switchable paper optimizations (§4.1 pre-allocation, §4.3
// fast consolidation, §4.4 search shortcuts, §3.1 non-unique keys) plus
// the flat leaf and inner base-node layouts, under both GC schemes — 64
// flag combinations × 2 schemes — so no combination can silently rot
// (every FlatBaseNodes × FlatInnerNodes pairing is covered). Nodes are
// tiny so the smoke forces splits, merges, and consolidations; the
// workload mixes the single-op and batch paths. Scan pipelining rides
// along with either flat flag, so the prefetch path runs under
// contention and -race here too.
func TestOptionsMatrix(t *testing.T) {
	gcName := map[GCScheme]string{GCDecentralized: "decentralized", GCCentralized: "centralized"}
	for mask := 0; mask < 64; mask++ {
		opts := DefaultOptions()
		opts.Preallocate = mask&1 != 0
		opts.FastConsolidate = mask&2 != 0
		opts.SearchShortcuts = mask&4 != 0
		opts.NonUnique = mask&8 != 0
		opts.FlatBaseNodes = mask&16 != 0
		opts.FlatInnerNodes = mask&32 != 0
		opts.ScanPipelining = opts.anyFlatNodes()
		opts.LeafNodeSize = 16
		opts.InnerNodeSize = 8
		opts.LeafChainLength = 4
		opts.InnerChainLength = 2
		opts.LeafMergeSize = 4
		opts.InnerMergeSize = 2
		for _, gc := range []GCScheme{GCDecentralized, GCCentralized} {
			opts.GC = gc
			name := fmt.Sprintf("prealloc=%t,fastcons=%t,shortcuts=%t,nonuniq=%t,flat=%t,flatinner=%t/%s",
				opts.Preallocate, opts.FastConsolidate, opts.SearchShortcuts,
				opts.NonUnique, opts.FlatBaseNodes, opts.FlatInnerNodes, gcName[gc])
			t.Run(name, func(t *testing.T) {
				optionsMatrixSmoke(t, opts)
			})
		}
	}
}

func optionsMatrixSmoke(t *testing.T, opts Options) {
	tr := New(opts)
	defer tr.Close()
	const (
		nw         = 4
		stripe     = 512
		sharedBase = uint64(1 << 20)
		sharedSpan = 256
		mixedOps   = 2500
	)
	workers(nw, func(w int) {
		s := tr.NewSession()
		defer s.Release()

		// Private stripe through the batch path: insert all, verify all.
		base := uint64(w) * stripe
		keys := make([][]byte, stripe)
		vals := make([]uint64, stripe)
		for i := range keys {
			keys[i] = key64(base + uint64(i))
			vals[i] = base + uint64(i)
		}
		for i, ok := range s.InsertBatch(keys, vals, nil) {
			if !ok {
				t.Errorf("worker %d: batch insert of private key %d failed", w, base+uint64(i))
				return
			}
		}
		seen := 0
		s.LookupBatch(keys, func(i int, vs []uint64) {
			if len(vs) != 1 || vs[0] != vals[i] {
				t.Errorf("worker %d: private key %d = %v, want [%d]", w, base+uint64(i), vs, vals[i])
			}
			seen++
		})
		if seen != stripe {
			t.Errorf("worker %d: batch lookup visited %d of %d keys", w, seen, stripe)
			return
		}

		// Contended single-op mix on a shared range.
		rng := rand.New(rand.NewSource(int64(w)*31 + 7))
		var out []uint64
		for i := 0; i < mixedOps; i++ {
			k := sharedBase + uint64(rng.Intn(sharedSpan))
			switch rng.Intn(6) {
			case 0, 1:
				s.Insert(key64(k), uint64(w))
			case 2:
				s.Delete(key64(k), uint64(w))
			case 3:
				s.Update(key64(k), uint64(w))
			default:
				out = s.Lookup(key64(k), out[:0])
				if !opts.NonUnique && len(out) > 1 {
					t.Errorf("worker %d: shared key %d has %d values in unique mode", w, k, len(out))
					return
				}
			}
		}

		// Delete the odd half of the stripe through the batch path.
		var oddKeys [][]byte
		var oddVals []uint64
		for i := 1; i < stripe; i += 2 {
			oddKeys = append(oddKeys, keys[i])
			oddVals = append(oddVals, vals[i])
		}
		for i, ok := range s.DeleteBatch(oddKeys, oddVals, nil) {
			if !ok {
				t.Errorf("worker %d: batch delete of private key %x failed", w, oddKeys[i])
				return
			}
		}
	})
	if t.Failed() {
		return
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Every even private key must survive with its value; every odd one
	// must be gone.
	s := tr.NewSession()
	defer s.Release()
	for w := 0; w < nw; w++ {
		base := uint64(w) * stripe
		for i := 0; i < stripe; i++ {
			k := base + uint64(i)
			got := s.Lookup(key64(k), nil)
			if i%2 == 1 {
				if len(got) != 0 {
					t.Fatalf("deleted key %d still has %v", k, got)
				}
			} else if len(got) != 1 || got[0] != k {
				t.Fatalf("key %d = %v, want [%d]", k, got, k)
			}
		}
	}
	if tr.Stats().Splits == 0 {
		t.Error("smoke workload recorded no splits; nodes not tiny enough")
	}
}
