// This file carries the opt-in soak for a CLOSED bug: under an extreme
// configuration (8 workers on one CPU, 16-entry leaves, a 16k-key space
// churned by inserts/deletes, i.e. constant split+merge pressure), a
// split whose Stage III separator post was delayed could watch its
// unposted right sibling drain and merge away; the bogus merge posted a
// ∆separator-delete for a separator that was never posted (final
// validation: size attribute undercounting materialized content by one)
// and the late post then installed a route to the recycled node (every
// worker wedged restarting). Roughly one 45-second run in three hit one
// of the two modes. A third mode surfaced once those were fixed: a split
// abandoned by postSeparator still folds, and merging its shrunken left
// half posts a ∆separator-delete narrower than the separator's base
// coverage, stranding the tail of the range on the recycled victim (the
// same all-workers wedge, via a stale route instead of a late post).
// Root causes and fixes — tryMerge's routing and coverage guards,
// completeSplitParts's liveness guard, and mergeIntoLeft's left-overlap
// guard — are documented in DESIGN.md ("The unposted-separator race",
// "The folded-split tail") and pinned deterministically by
// schedule_smo_{green,red}_test.go, which replay the exact interleavings
// through the sync-point schedule layer in milliseconds. This soak stays
// as the statistical backstop: BWTREE_REPRO=1 opts in, BWTREE_REPRO_SECS
// overrides the 45s budget (CI's nightly lane time-boxes it).
package core

import (
	"encoding/binary"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReproHighPressure(t *testing.T) {
	if os.Getenv("BWTREE_REPRO") == "" {
		t.Skip("opt-in high-pressure SMO soak; set BWTREE_REPRO=1 (see README Known Issues)")
	}
	secs := 45
	if v := os.Getenv("BWTREE_REPRO_SECS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad BWTREE_REPRO_SECS=%q", v)
		}
		secs = n
	}
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()

	const nw = 8
	const keyspace = 2000
	deadline := time.Now().Add(time.Duration(secs) * time.Second)
	var stop atomic.Bool
	var wg sync.WaitGroup
	var curKeys [16]atomic.Uint64 // key each worker is operating on
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 5))
			owned := map[uint64]uint64{}
			var out []uint64
			for !stop.Load() {
				k := uint64(w) + uint64(rng.Intn(keyspace))*nw + 1
				curKeys[w].Store(k)
				switch rng.Intn(6) {
				case 0:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Insert(key64(k), v) == had {
						t.Errorf("worker %d: insert key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					if !had {
						owned[k] = v
					}
				case 1:
					_, had := owned[k]
					if s.Delete(key64(k), 0) != had {
						t.Errorf("worker %d: delete key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					delete(owned, k)
				case 2:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Update(key64(k), v) != had {
						t.Errorf("worker %d: update key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					if had {
						owned[k] = v
					}
				case 3, 4:
					want, had := owned[k]
					out = s.Lookup(key64(k), out[:0])
					if had != (len(out) == 1) || had && out[0] != want {
						t.Errorf("worker %d: lookup key %d got %v want %d,%v", w, k, out, want, had)
						stop.Store(true)
						return
					}
				default:
					var prev uint64
					first := true
					s.Scan(key64(k), 32, func(kk []byte, v uint64) bool {
						cur := binary.BigEndian.Uint64(kk)
						if !first && cur <= prev {
							t.Errorf("worker %d: scan order violation %d after %d", w, cur, prev)
							stop.Store(true)
							return false
						}
						prev, first = cur, false
						return true
					})
				}
			}
		}(w)
	}
	lastOps := uint64(0)
	stalls := 0
	for time.Now().Before(deadline) && !stop.Load() {
		time.Sleep(1 * time.Second)
		cur := tr.Stats().Ops
		if cur == lastOps {
			stalls++
			if stalls >= 4 {
				// Wedged: autopsy the path for an arbitrary key.
				t.Logf("STALL detected; stats=%+v", tr.Stats())
				for w := 0; w < nw; w++ {
					k := curKeys[w].Load()
					t.Logf("worker %d stuck on key %d:\n%s", w, k, FormatPath(tr.DescendPath(key64(k))))
				}
				stop.Store(true)
			}
		} else {
			stalls = 0
		}
		lastOps = cur
	}
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		// Autopsy: find duplicate keys via the leaf sibling chain.
		seen := map[string]int{}
		s2 := tr.NewSession()
		it := s2.NewIterator()
		for it.SeekFirst(); it.Valid(); it.Next() {
			seen[string(it.Key())]++
		}
		for k, n := range seen {
			if n > 1 {
				t.Logf("duplicate key %x appears %d times", k, n)
			}
		}
		s2.Release()
		t.Fatalf("validate: %v", err)
	}
}
