// This file carries the opt-in reproducer for a KNOWN OPEN BUG: under an
// extreme configuration (8 workers on one CPU, 16-entry leaves, a 16k-key
// space churned by inserts/deletes, i.e. constant split+merge pressure),
// roughly one 45-second run in three either (a) fails final validation
// with a node whose size attribute undercounts its materialized content
// by one — the signature of a ∆delete accepted for a key that a racing
// SMO had already moved — or (b) wedges with every worker restarting.
// The paper-default configuration and all other stress configurations
// pass repeatedly (see the rest of the suite and cmd/bwstress). The
// diagnostic scaffolding below (stall autopsy, duplicate scan, stuck-key
// dumps) is deliberately kept for whoever hunts it down.
package core

import (
	"encoding/binary"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// diagnoseDescend manually walks the tree for key, printing each node's
// head state, to locate permanently poisoned nodes.
func diagnoseDescend(t *testing.T, tr *Tree, key []byte) {
	id := tr.root
	for hops := 0; hops < 64; hops++ {
		head := tr.load(id)
		if head == nil {
			t.Logf("  [%d] <nil>", int64(id))
			return
		}
		t.Logf("  [%d] %v depth=%d size=%d low=%x high=%x sib=%d", int64(id), head.kind, head.depth, head.size, head.lowKey, head.highKey, int64(head.rightSib))
		switch head.kind {
		case kAbort:
			t.Logf("  ^^ ABORT-POISONED NODE")
			return
		case kRemove:
			t.Logf("  ^^ REMOVE-POISONED NODE (lowKey=%x)", head.lowKey)
			return
		}
		if head.highKey != nil && keyGE(key, head.highKey) {
			id = head.rightSib
			continue
		}
		if head.isLeaf {
			t.Logf("  reached leaf OK")
			return
		}
		d := head
		var next nodeID
		found := false
		for !found {
			switch d.kind {
			case kInnerInsert:
				if keyGE(key, d.key) && keyLT(key, d.nextKey) {
					next, found = d.child, true
				}
			case kInnerDelete:
				if keyGE(key, d.leftKey) && keyLT(key, d.nextKey) {
					next, found = d.leftChild, true
				}
			case kSplit:
				if keyGE(key, d.key) {
					t.Logf("  ^^ SPLIT-ROUTING DEAD END key>=%x", d.key)
					return
				}
			case kMerge:
				if keyGE(key, d.key) {
					d = d.mergeContent
					continue
				}
			case kInnerBase:
				next, found = routeBaseInner(d, key), true
			default:
				t.Logf("  ^^ unexpected kind %v in inner chain", d.kind)
				return
			}
			if !found {
				d = d.next
			}
		}
		id = next
	}
	t.Logf("  hop limit reached (CYCLE?)")
}

func TestReproHighPressure(t *testing.T) {
	if os.Getenv("BWTREE_REPRO") == "" {
		t.Skip("opt-in reproducer for the open high-pressure SMO bug; set BWTREE_REPRO=1 (see README Known Issues)")
	}
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()

	const nw = 8
	const keyspace = 2000
	deadline := time.Now().Add(45 * time.Second)
	var stop atomic.Bool
	var wg sync.WaitGroup
	var curKeys [16]atomic.Uint64 // key each worker is operating on
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 5))
			owned := map[uint64]uint64{}
			var out []uint64
			for !stop.Load() {
				k := uint64(w) + uint64(rng.Intn(keyspace))*nw + 1
				curKeys[w].Store(k)
				switch rng.Intn(6) {
				case 0:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Insert(key64(k), v) == had {
						t.Errorf("worker %d: insert key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					if !had {
						owned[k] = v
					}
				case 1:
					_, had := owned[k]
					if s.Delete(key64(k), 0) != had {
						t.Errorf("worker %d: delete key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					delete(owned, k)
				case 2:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Update(key64(k), v) != had {
						t.Errorf("worker %d: update key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					if had {
						owned[k] = v
					}
				case 3, 4:
					want, had := owned[k]
					out = s.Lookup(key64(k), out[:0])
					if had != (len(out) == 1) || had && out[0] != want {
						t.Errorf("worker %d: lookup key %d got %v want %d,%v", w, k, out, want, had)
						stop.Store(true)
						return
					}
				default:
					var prev uint64
					first := true
					s.Scan(key64(k), 32, func(kk []byte, v uint64) bool {
						cur := binary.BigEndian.Uint64(kk)
						if !first && cur <= prev {
							t.Errorf("worker %d: scan order violation %d after %d", w, cur, prev)
							stop.Store(true)
							return false
						}
						prev, first = cur, false
						return true
					})
				}
			}
		}(w)
	}
	lastOps := uint64(0)
	stalls := 0
	for time.Now().Before(deadline) && !stop.Load() {
		time.Sleep(1 * time.Second)
		cur := tr.Stats().Ops
		if cur == lastOps {
			stalls++
			if stalls >= 4 {
				// Wedged: autopsy the path for an arbitrary key.
				t.Logf("STALL detected; stats=%+v", tr.Stats())
				for w := 0; w < nw; w++ {
					k := curKeys[w].Load()
					t.Logf("worker %d stuck on key %d:", w, k)
					diagnoseDescend(t, tr, key64(k))
				}
				stop.Store(true)
			}
		} else {
			stalls = 0
		}
		lastOps = cur
	}
	stop.Store(true)
	wg.Wait()
	if err := tr.Validate(); err != nil {
		// Autopsy: find duplicate keys via the leaf sibling chain.
		seen := map[string]int{}
		s2 := tr.NewSession()
		it := s2.NewIterator()
		for it.SeekFirst(); it.Valid(); it.Next() {
			seen[string(it.Key())]++
		}
		for k, n := range seen {
			if n > 1 {
				t.Logf("duplicate key %x appears %d times", k, n)
			}
		}
		s2.Release()
		t.Fatalf("validate: %v", err)
	}
}
