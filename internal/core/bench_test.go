package core

import (
	"bytes"
	"fmt"
	"testing"
)

// Micro-benchmarks for the shared window-search helper (flatnode.go).
// BenchmarkBaseSearch/slice-* vs BenchmarkBaseSearch/handrolled-* proves
// deduplicating the four hand-rolled binary searches behind windowSearch
// cost the slice path nothing; the flat-* variants show the arena layout
// with prefix-skip comparisons.

// handrolledSearch is the pre-deduplication searchKeys, kept verbatim as
// the regression reference.
func handrolledSearch(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], k)
}

func benchKeySet(n int, prefix string) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s%08d", prefix, i*7))
	}
	return keys
}

func BenchmarkBaseSearch(b *testing.B) {
	for _, size := range []int{128, 1024} {
		for _, prefix := range []string{"", "user:profile:v2:"} {
			keys := benchKeySet(size, prefix)
			flat := flatBaseFromKeys(keys)
			probes := make([][]byte, 64)
			for i := range probes {
				probes[i] = keys[(i*31)%len(keys)]
			}
			tag := fmt.Sprintf("n=%d,pfx=%d", size, len(prefix))
			b.Run("handrolled/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					handrolledSearch(keys, probes[i&63])
				}
			})
			b.Run("slice/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					searchKeys(keys, probes[i&63])
				}
			})
			b.Run("flat/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					flat.baseSearch(probes[i&63])
				}
			})
		}
	}
}
