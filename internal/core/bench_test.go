package core

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
)

// Micro-benchmarks for the shared window-search helper (flatnode.go).
// BenchmarkBaseSearch/slice-* vs BenchmarkBaseSearch/handrolled-* proves
// deduplicating the four hand-rolled binary searches behind windowSearch
// cost the slice path nothing; the flat-* variants show the arena layout
// with prefix-skip comparisons.

// handrolledSearch is the pre-deduplication searchKeys, kept verbatim as
// the regression reference.
func handrolledSearch(keys [][]byte, k []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(keys[mid], k) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], k)
}

func benchKeySet(n int, prefix string) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("%s%08d", prefix, i*7))
	}
	return keys
}

func BenchmarkBaseSearch(b *testing.B) {
	for _, size := range []int{128, 1024} {
		for _, prefix := range []string{"", "user:profile:v2:"} {
			keys := benchKeySet(size, prefix)
			flat := flatBaseFromKeys(keys)
			probes := make([][]byte, 64)
			for i := range probes {
				probes[i] = keys[(i*31)%len(keys)]
			}
			tag := fmt.Sprintf("n=%d,pfx=%d", size, len(prefix))
			b.Run("handrolled/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					handrolledSearch(keys, probes[i&63])
				}
			})
			b.Run("slice/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					searchKeys(keys, probes[i&63])
				}
			})
			b.Run("flat/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					flat.baseSearch(probes[i&63])
				}
			})
			// The same probes through the conditional-move variant inner
			// routing uses (flatSearch dispatches on isLeaf).
			inner := flatBaseFromKeys(keys)
			inner.kind, inner.isLeaf = kInnerBase, false
			b.Run("branchfree/"+tag, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					inner.baseSearch(probes[i&63])
				}
			})
		}
	}
}

// BenchmarkDeepDescent is the end-to-end regime the flatnode inner arm
// gates: consolidated lookups on a deliberately deep tree (fanout 64,
// leaf size 16 — 3+ inner levels at this population, matching the
// harness inner arm), with the inner arena layout on or off and flat
// leaves on both sides. The guard for the suffix-word routing path:
// flatinner=true must not lose to flatinner=false.
func BenchmarkDeepDescent(b *testing.B) {
	const n = 200_000
	keys := make([][]byte, n)
	for i := range keys {
		j := (i * 7919) % n // insertion order unrelated to sort order
		keys[i] = []byte(fmt.Sprintf("user%08d@bench.example.com......", j))
	}
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("flatinner=%t", on), func(b *testing.B) {
			opts := DefaultOptions()
			opts.FlatBaseNodes = true
			opts.FlatInnerNodes = on
			opts.ScanPipelining = false
			opts.InnerNodeSize = 64
			opts.LeafNodeSize = 16
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()
			for i, k := range keys {
				s.Insert(k, uint64(i))
			}
			tr.ConsolidateAll()
			runtime.GC() // clear construction garbage before timing
			var out []uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = s.Lookup(keys[i%n], out[:0])
			}
		})
	}
}
