package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// opScript is a randomly-generated operation sequence for quick.Check.
type opScript struct {
	ops []scriptOp
}

type scriptOp struct {
	kind uint8 // 0 insert, 1 delete, 2 update, 3 lookup
	key  uint16
	val  uint64
}

// Generate implements quick.Generator with small key spaces so splits,
// merges, and consolidations all trigger.
func (opScript) Generate(r *rand.Rand, size int) reflect.Value {
	n := 2000 + r.Intn(3000)
	s := opScript{ops: make([]scriptOp, n)}
	for i := range s.ops {
		s.ops[i] = scriptOp{
			kind: uint8(r.Intn(4)),
			key:  uint16(r.Intn(600) + 1),
			val:  r.Uint64(),
		}
	}
	return reflect.ValueOf(s)
}

// TestQuickTreeMatchesMap: a tree configured with tiny nodes behaves
// exactly like a map under arbitrary operation sequences — the
// fundamental correctness property.
func TestQuickTreeMatchesMap(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 12
	opts.InnerNodeSize = 6
	opts.LeafChainLength = 5
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 3
	opts.InnerMergeSize = 2

	f := func(script opScript) bool {
		tr := New(opts)
		defer tr.Close()
		s := tr.NewSession()
		defer s.Release()
		model := map[uint16]uint64{}
		for _, op := range script.ops {
			k := key64(uint64(op.key))
			switch op.kind {
			case 0:
				_, exists := model[op.key]
				if s.Insert(k, op.val) == exists {
					return false
				}
				if !exists {
					model[op.key] = op.val
				}
			case 1:
				_, exists := model[op.key]
				if s.Delete(k, 0) != exists {
					return false
				}
				delete(model, op.key)
			case 2:
				_, exists := model[op.key]
				if s.Update(k, op.val) != exists {
					return false
				}
				if exists {
					model[op.key] = op.val
				}
			default:
				want, exists := model[op.key]
				got := s.Lookup(k, nil)
				if exists != (len(got) == 1) || exists && got[0] != want {
					return false
				}
			}
		}
		if tr.Validate() != nil {
			return false
		}
		return tr.Count() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScanMatchesSortedModel: after any operation sequence, a full
// scan returns exactly the model's pairs in sorted key order.
func TestQuickScanMatchesSortedModel(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.LeafChainLength = 6
	opts.LeafMergeSize = 4

	f := func(script opScript) bool {
		tr := New(opts)
		defer tr.Close()
		s := tr.NewSession()
		defer s.Release()
		model := map[uint16]uint64{}
		for _, op := range script.ops {
			k := key64(uint64(op.key))
			switch op.kind {
			case 0:
				if s.Insert(k, op.val) {
					model[op.key] = op.val
				}
			case 1:
				s.Delete(k, 0)
				delete(model, op.key)
			case 2:
				if s.Update(k, op.val) {
					model[op.key] = op.val
				}
			}
		}
		var wantKeys []uint16
		for k := range model {
			wantKeys = append(wantKeys, k)
		}
		sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })

		i := 0
		ok := true
		s.Scan(key64(0), len(model)+10, func(k []byte, v uint64) bool {
			if i >= len(wantKeys) {
				ok = false
				return false
			}
			want := wantKeys[i]
			if !bytes.Equal(k, key64(uint64(want))) || v != model[want] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(wantKeys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSearchKeysInvariants: the binary-search helpers agree with a
// linear scan on arbitrary sorted inputs.
func TestQuickSearchKeys(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		keys := make([][]byte, 0, len(raw))
		for i, v := range raw {
			if i > 0 && raw[i-1] == v {
				continue // unique
			}
			keys = append(keys, key64(uint64(v)))
		}
		k := key64(uint64(probe))
		pos, exact := searchKeys(keys, k)
		// Linear reference.
		lpos := 0
		for lpos < len(keys) && bytes.Compare(keys[lpos], k) < 0 {
			lpos++
		}
		lexact := lpos < len(keys) && bytes.Equal(keys[lpos], k)
		return pos == lpos && exact == lexact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWindowedSearchAgrees: the shortcut-window search returns the
// same result as the full search whenever the window brackets the key.
func TestQuickWindowedSearch(t *testing.T) {
	f := func(raw []uint16, probe uint16, loRaw, hiRaw uint8) bool {
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		keys := make([][]byte, 0, len(raw))
		for i, v := range raw {
			if i > 0 && raw[i-1] == v {
				continue
			}
			keys = append(keys, key64(uint64(v)))
		}
		k := key64(uint64(probe))
		full, fexact := searchKeys(keys, k)
		// Any window [lo, hi] that contains the true position must agree.
		lo := int(loRaw) % (full + 1)
		hi := full + int(hiRaw)%8
		lo, hi = clampWindow(lo, hi, len(keys))
		pos, exact := searchKeysRange(keys, k, lo, hi)
		return pos == full && exact == fexact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNonUniqueMultiset: non-unique trees behave like a multiset of
// (key, value) pairs.
func TestQuickNonUniqueMultiset(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.LeafNodeSize = 16
	opts.LeafChainLength = 6

	type pair struct {
		K uint16
		V uint8 // small value space forces duplicate-pair collisions
	}
	f := func(ops []pair, deletes []pair) bool {
		tr := New(opts)
		defer tr.Close()
		s := tr.NewSession()
		defer s.Release()
		model := map[pair]bool{}
		for _, p := range ops {
			inserted := s.Insert(key64(uint64(p.K)+1), uint64(p.V))
			if inserted == model[p] {
				return false
			}
			model[p] = true
		}
		for _, p := range deletes {
			deleted := s.Delete(key64(uint64(p.K)+1), uint64(p.V))
			if deleted != model[p] {
				return false
			}
			delete(model, p)
		}
		// Verify per-key value sets.
		byKey := map[uint16]map[uint64]bool{}
		for p := range model {
			if byKey[p.K] == nil {
				byKey[p.K] = map[uint64]bool{}
			}
			byKey[p.K][uint64(p.V)] = true
		}
		for k, want := range byKey {
			got := s.Lookup(key64(uint64(k)+1), nil)
			if len(got) != len(want) {
				return false
			}
			for _, v := range got {
				if !want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
