package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// TestFastConsolidationDifferential cross-checks the fast (§4.3) and
// baseline consolidation algorithms on every consolidation a random
// workload performs.
func TestFastConsolidationDifferential(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 4
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 2
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	old := fcDiffHook
	defer func() { fcDiffHook = old }()
	fcDiffHook = func(head *delta, fast collected) {
		base := s.collectLeafBaseline(head)
		if err := sameItems(fast, base); err != nil {
			t.Fatalf("fast/baseline divergence: %v\nfast: %s\nbase: %s",
				err, fmtItems(fast), fmtItems(base))
		}
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4000; i++ {
		k := uint64(rng.Intn(400)) + 1
		switch rng.Intn(4) {
		case 0:
			s.Insert(key64(k), k*10)
		case 1:
			s.Delete(key64(k), 0)
		case 2:
			s.Update(key64(k), uint64(rng.Int63()))
		default:
			s.Lookup(key64(k), nil)
		}
	}
}

func sameItems(a, b collected) error {
	if len(a.keys) != len(b.keys) {
		return fmt.Errorf("length %d vs %d", len(a.keys), len(b.keys))
	}
	// Compare as multisets sorted by (key, value): duplicate-value order
	// is unspecified between the algorithms.
	type kv struct {
		k []byte
		v uint64
	}
	mk := func(c collected) []kv {
		out := make([]kv, len(c.keys))
		for i := range c.keys {
			out[i] = kv{c.keys[i], c.vals[i]}
		}
		sort.Slice(out, func(x, y int) bool {
			if cmp := bytes.Compare(out[x].k, out[y].k); cmp != 0 {
				return cmp < 0
			}
			return out[x].v < out[y].v
		})
		return out
	}
	av, bv := mk(a), mk(b)
	for i := range av {
		if !bytes.Equal(av[i].k, bv[i].k) || av[i].v != bv[i].v {
			return fmt.Errorf("item %d: (%q,%d) vs (%q,%d)", i, av[i].k, av[i].v, bv[i].k, bv[i].v)
		}
	}
	return nil
}

func fmtItems(c collected) string {
	var b bytes.Buffer
	for i := range c.keys {
		fmt.Fprintf(&b, "(%x,%d) ", c.keys[i], c.vals[i])
	}
	return b.String()
}
