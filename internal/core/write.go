package core

import (
	"runtime"
	"time"

	"repro/internal/obs"
)

// abortBackoff records a traversal abort and, after a couple of
// consecutive failures, yields the processor: the restart is usually
// waiting on another goroutine's unfinished SMO (e.g. a ∆abort-locked
// parent), and on hosts with few cores a tight restart loop can starve
// the very goroutine it is waiting for. Past a few hundred consecutive
// restarts the op is in a genuine storm — escalate from yielding to
// short sleeps so SMO owners get real CPU time even on GOMAXPROCS=1,
// and leave one flight-recorder note so a structural wedge produces an
// autopsy (via /debug/flightrec) instead of a silent spin.
func (s *Session) abortBackoff(spins *int) {
	s.stats.aborts.Add(1)
	s.emit(obs.EvAbort, 0, 0, 0)
	if deepProbes {
		s.probe.NoteAbort()
	}
	schedPoint(SPBackoff, 0, 0, nil)
	*spins++
	if *spins > 2 {
		runtime.Gosched()
	}
	if *spins > 256 {
		if *spins == 1024 {
			s.t.AnomalyNote("abortBackoff: operation restarted 1024 times without progress")
		}
		time.Sleep(time.Duration(min(*spins-256, 100)) * time.Microsecond)
	}
}

// descendProbed is descend plus the deep-path probes: a PhaseDescend span
// when this op is phase-sampled, and the observed chain depth of the leaf
// it lands on (feeds the flight recorder and the chain-depth
// distribution). Disabled cost over plain descend: two predictable
// branches.
func (s *Session) descendProbed(key []byte, tr *traversal) bool {
	t0 := s.phStart()
	ok := s.descend(key, tr)
	s.phEnd(obs.PhaseDescend, t0, 0)
	if deepProbes && ok {
		s.probe.NoteChain(uint32(tr.head.depth))
	}
	return ok
}

// cloneKey copies k so the tree never retains caller-owned memory.
func cloneKey(k []byte) []byte { return append([]byte(nil), k...) }

// checkKey panics on empty keys: the empty byte string is reserved as the
// internal -inf sentinel.
func checkKey(k []byte) {
	if len(k) == 0 {
		panic("core: keys must be non-empty")
	}
}

// allocDelta returns a delta record for appending to head's chain: a slot
// from the base node's pre-allocated slab when the Preallocate
// optimization is on (§4.1), otherwise a heap allocation. nil means the
// slab is exhausted and the caller must consolidate.
func (s *Session) allocDelta(head *delta) *delta {
	if sl := head.base.slab; sl != nil {
		return sl.claim()
	}
	return &delta{}
}

// appendLeaf builds and publishes one leaf delta record. It returns false
// when the operation must restart (lost CaS or exhausted slab).
func (s *Session) appendLeaf(tr *traversal, k kind, key []byte, value, oldValue uint64, sizeDelta, off int32) bool {
	head := tr.head
	d := s.allocDelta(head)
	if d == nil {
		// Slab exhaustion triggers a consolidation (§4.1) and a restart.
		s.stats.slabFull.Add(1)
		s.consolidate(tr, head)
		return false
	}
	d.inheritFrom(head)
	d.kind = k
	d.key = cloneKey(key)
	d.value = value
	d.oldValue = oldValue
	d.size = head.size + sizeDelta
	d.offset = off
	// Stamp before publication: once the CaS lands, any reader of this
	// record observes a version no earlier state of the key ever carried.
	// A failed CaS wastes the stamp, which is harmless (stamps need only
	// be fresh, not dense).
	d.ver = s.t.verCtr.Add(1)
	schedPoint(SPLeafPrepend, tr.id, 0, key)
	// Boundary invariant (DESIGN.md "The delta-prepend boundary
	// invariant"): the CaS below validates against the exact head the
	// descent range-checked, and any SMO that moves this node's
	// [lowKey, highKey) must first publish a new head — so a successful
	// prepend is always in range and no re-check is needed between
	// locating the leaf and the CaS. This assertion pins the invariant
	// (and catches any future caller handing in an unvalidated head).
	if head.lowKey != nil && !keyGE(key, head.lowKey) ||
		head.highKey != nil && keyGE(key, head.highKey) {
		s.stats.aborts.Add(1)
		return false
	}
	t0 := s.phStart()
	if !s.t.cas(tr.id, head, d) {
		s.phEnd(obs.PhaseCAS, t0, 1)
		s.stats.casFailures.Add(1)
		if deepProbes {
			s.probe.NoteCASFail()
		}
		return false
	}
	s.phEnd(obs.PhaseCAS, t0, 0)
	s.maybeConsolidateTr(tr, d)
	return true
}

// Insert adds (key, value) to the tree. Under unique-key semantics it
// returns false if the key is already present; under non-unique semantics
// (Options.NonUnique) it returns false only if the exact pair is present.
func (s *Session) Insert(key []byte, value uint64) bool {
	checkKey(key)
	s.h.Enter()
	defer s.h.Exit()
	defer s.opDone(obs.OpInsert, s.opStart())
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		if s.t.opts.InPlaceLeafUpdates {
			ok, inserted := s.insertInPlace(&tr, key, value)
			if ok {
				return inserted
			}
			s.stats.aborts.Add(1)
			continue
		}
		if s.t.opts.NonUnique {
			r := s.leafSeekPairProbed(tr.head, key, value)
			if r.found {
				return false
			}
			if s.appendLeaf(&tr, kLeafInsert, key, value, 0, +1, r.baseOff) {
				return true
			}
		} else {
			r := s.leafSeekProbed(tr.head, key)
			if r.found {
				return false
			}
			if s.appendLeaf(&tr, kLeafInsert, key, value, 0, +1, r.baseOff) {
				return true
			}
		}
		s.abortBackoff(&spins)
	}
}

// Delete removes key (unique mode) or the exact (key, value) pair
// (non-unique mode), reporting whether anything was removed.
func (s *Session) Delete(key []byte, value uint64) bool {
	checkKey(key)
	s.h.Enter()
	defer s.h.Exit()
	defer s.opDone(obs.OpDelete, s.opStart())
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		if s.t.opts.InPlaceLeafUpdates {
			ok, deleted := s.deleteInPlace(&tr, key, value)
			if ok {
				return deleted
			}
			s.stats.aborts.Add(1)
			continue
		}
		if s.t.opts.NonUnique {
			r := s.leafSeekPairProbed(tr.head, key, value)
			if !r.found {
				return false
			}
			if s.appendLeaf(&tr, kLeafDelete, key, value, 0, -1, r.baseOff) {
				return true
			}
		} else {
			r := s.leafSeekProbed(tr.head, key)
			if !r.found {
				return false
			}
			if s.appendLeaf(&tr, kLeafDelete, key, r.value, 0, -1, r.baseOff) {
				return true
			}
		}
		s.abortBackoff(&spins)
	}
}

// Update replaces the value stored under key (unique mode) and reports
// whether the key was present. In non-unique mode it replaces the pair
// (key, oldValue) for the first visible value; use UpdateValue for an
// explicit pair.
func (s *Session) Update(key []byte, value uint64) bool {
	checkKey(key)
	s.h.Enter()
	defer s.h.Exit()
	defer s.opDone(obs.OpUpdate, s.opStart())
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		var old uint64
		var off int32
		if s.t.opts.NonUnique {
			r := s.leafSeekFirstVisible(tr.head, key)
			if !r.found {
				return false
			}
			old, off = r.value, r.baseOff
			if old != value {
				if nr := s.leafSeekPairProbed(tr.head, key, value); nr.found {
					// The replacement pair already exists: an update delta
					// would create a duplicate, so reduce to a delete of
					// the old pair.
					if s.appendLeaf(&tr, kLeafDelete, key, old, 0, -1, off) {
						return true
					}
					s.abortBackoff(&spins)
					continue
				}
			}
		} else {
			r := s.leafSeekProbed(tr.head, key)
			if !r.found {
				return false
			}
			old, off = r.value, r.baseOff
		}
		if old == value {
			return true
		}
		if s.appendLeaf(&tr, kLeafUpdate, key, value, old, 0, off) {
			return true
		}
		s.abortBackoff(&spins)
	}
}

// UpdateValue replaces the exact pair (key, oldValue) with (key, newValue)
// under non-unique semantics, reporting whether the old pair was visible.
func (s *Session) UpdateValue(key []byte, oldValue, newValue uint64) bool {
	checkKey(key)
	s.h.Enter()
	defer s.h.Exit()
	defer s.opDone(obs.OpUpdate, s.opStart())
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		r := s.leafSeekPairProbed(tr.head, key, oldValue)
		if !r.found {
			return false
		}
		if oldValue == newValue {
			return true
		}
		if nr := s.leafSeekPairProbed(tr.head, key, newValue); nr.found {
			// The target pair already exists: reduce to a delete of the
			// old pair.
			if s.appendLeaf(&tr, kLeafDelete, key, oldValue, 0, -1, r.baseOff) {
				return true
			}
		} else if s.appendLeaf(&tr, kLeafUpdate, key, newValue, oldValue, 0, r.baseOff) {
			return true
		}
		s.abortBackoff(&spins)
	}
}

// Lookup appends every value stored under key to out and returns the
// extended slice. Unique mode appends at most one value.
func (s *Session) Lookup(key []byte, out []uint64) []uint64 {
	checkKey(key)
	s.h.Enter()
	defer s.h.Exit()
	defer s.opDone(obs.OpRead, s.opStart())
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		if s.t.opts.NonUnique {
			out, _ = s.collectValuesProbed(tr.head, key, out)
			return out
		}
		r := s.leafSeekProbed(tr.head, key)
		if r.found {
			return append(out, r.value)
		}
		return out
	}
}

// insertInPlace mutates the leaf base node directly — the Fig. 18
// "disable delta updates" decomposition. Single-threaded use only.
func (s *Session) insertInPlace(tr *traversal, key []byte, value uint64) (ok, inserted bool) {
	head := tr.head
	if head.kind != kLeafBase {
		// A split delta may briefly top the chain; consolidate and retry.
		s.consolidate(tr, head)
		return false, false
	}
	pos, exact := searchKeys(head.keys, key)
	if exact && !s.t.opts.NonUnique {
		return true, false
	}
	head.keys = append(head.keys, nil)
	copy(head.keys[pos+1:], head.keys[pos:])
	head.keys[pos] = cloneKey(key)
	head.vals = append(head.vals, 0)
	copy(head.vals[pos+1:], head.vals[pos:])
	head.vals[pos] = value
	head.vers = append(head.vers, 0)
	copy(head.vers[pos+1:], head.vers[pos:])
	head.vers[pos] = s.t.verCtr.Add(1)
	head.size++
	if int(head.size) > s.t.opts.LeafNodeSize {
		s.consolidate(tr, head)
	}
	return true, true
}

// deleteInPlace is the removal counterpart of insertInPlace.
func (s *Session) deleteInPlace(tr *traversal, key []byte, value uint64) (ok, deleted bool) {
	head := tr.head
	if head.kind != kLeafBase {
		s.consolidate(tr, head)
		return false, false
	}
	pos, exact := searchKeys(head.keys, key)
	if !exact {
		return true, false
	}
	head.keys = append(head.keys[:pos], head.keys[pos+1:]...)
	head.vals = append(head.vals[:pos], head.vals[pos+1:]...)
	if len(head.vers) > pos {
		head.vers = append(head.vers[:pos], head.vers[pos+1:]...)
	}
	head.size--
	return true, true
}
