package core

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// This file implements the flat base-node layout (Options.FlatBaseNodes
// for leaf bases, Options.FlatInnerNodes for inner and root bases) and
// the window-search helpers shared by both layouts.
//
// The slice layout stores base keys as keys [][]byte: one 24-byte slice
// header plus a pointer chase per key, so every binary-search probe eats a
// dependent cache miss and Go's GC must scan ~LeafNodeSize pointers per
// leaf. The flat layout materializes all keys of a base into one immutable
// []byte arena plus a []uint32 offset array (key i = arena[offs[i]:
// offs[i+1]], len(offs) = n+1), with the node's common key prefix length
// computed at build time so binary-search comparisons skip it. A flat leaf
// carries ~4 GC-visible payload pointers instead of ~130 and each search
// probe is a sequential read of adjacent arena bytes.
//
// Keys are stored whole (prefix included) so accessors hand out zero-copy
// full-key subslices; the prefix is skipped only during comparisons. A
// leftmost inner base's -inf separator (nil key) is preserved by the nil0
// flag: nil participates in prefix computation as the empty string, which
// forces pfx = 0 for any node containing it, and baseKey(0) returns nil so
// separator semantics (sameKey, sortInnerItems, Validate) are unchanged.

// buildFlat materializes a sorted key set as a flat arena. The offset
// array always has len(keys)+1 entries; a non-nil offs is what marks a
// base node as flat. stride is the uniform key length when every key has
// the same non-zero length (the common case for padded fixed-width keys),
// 0 otherwise; a nil -inf separator has length 0 and so always forces the
// variable-width layout.
func buildFlat(keys [][]byte) (arena []byte, offs []uint32, pfx uint32, stride uint32, nil0 bool) {
	n := len(keys)
	offs = make([]uint32, n+1)
	if n == 0 {
		return nil, offs, 0, 0, false
	}
	nil0 = keys[0] == nil
	// Keys are sorted, so the prefix shared by all of them is the prefix
	// shared by the first and last.
	p := commonPrefix(keys[0], keys[n-1])
	total := 0
	uniform := len(keys[0])
	for _, k := range keys {
		total += len(k)
		if len(k) != uniform {
			uniform = 0
		}
	}
	arena = make([]byte, 0, total)
	for i, k := range keys {
		offs[i] = uint32(len(arena))
		arena = append(arena, k...)
	}
	offs[n] = uint32(len(arena))
	return arena, offs, uint32(p), uint32(uniform), nil0
}

// commonPrefix returns the length of the longest common prefix of a and b
// (nil behaves as the empty string).
func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// setBaseKeys installs a materialized key set into base node nb using the
// tree's configured layout for nb's level: FlatBaseNodes governs leaf
// bases, FlatInnerNodes governs inner and root bases. Every
// base-construction site funnels through here (consolidation via
// buildBase, splits, BulkLoad, New) and sets nb.isLeaf first.
func (t *Tree) setBaseKeys(nb *delta, keys [][]byte) {
	flat := t.opts.FlatBaseNodes
	if !nb.isLeaf {
		flat = t.opts.FlatInnerNodes
	}
	if flat {
		nb.arena, nb.offs, nb.pfx, nb.stride, nb.nil0 = buildFlat(keys)
		if !nb.isLeaf {
			nb.sfx = buildSuffixWords(keys, nb.pfx)
		}
		return
	}
	nb.keys = keys
}

// buildSuffixWords packs the first 8 post-prefix bytes of every key into
// a big-endian word (shorter suffixes are zero padded; the nil -inf
// separator packs to 0). The words order-embed the suffixes: because the
// pad byte 0x00 is the minimum byte, two words compare unequal exactly
// when the underlying suffixes' first 8 bytes order them, and compare
// equal only when those bytes are identical — so a word comparison either
// decides the probe outright or flags the (rare) tie that needs the
// arena. Inner bases only: a descent probes every level's separator set,
// and for fanout-64 nodes the whole plane is ~8 cache lines against ~40
// scattered arena lines, while leaf probes happen once per operation and
// keep the plain arena search.
func buildSuffixWords(keys [][]byte, pfx uint32) []uint64 {
	sfx := make([]uint64, len(keys))
	for i, k := range keys {
		var b [8]byte
		if int(pfx) < len(k) {
			copy(b[:], k[pfx:])
		}
		sfx[i] = binary.BigEndian.Uint64(b[:])
	}
	return sfx
}

// keyWord packs a probe key's first 8 bytes the same way buildSuffixWords
// packs suffixes.
func keyWord(k []byte) uint64 {
	var b [8]byte
	copy(b[:], k)
	return binary.BigEndian.Uint64(b[:])
}

// anyFlatNodes reports whether either level's bases use the arena layout,
// in which case collected keys can alias a retired chain's arena and
// boundary keys must be cloned before being installed as node attributes.
func (o *Options) anyFlatNodes() bool {
	return o.FlatBaseNodes || o.FlatInnerNodes
}

// cloneBound copies a boundary key, preserving nil (-inf/+inf). Flat-mode
// base construction clones its low/high keys because the collected keys
// they would otherwise alias can point into the replaced chain's arena,
// and a node attribute must not pin its predecessor's arena for the
// node's whole lifetime.
func cloneBound(k []byte) []byte {
	if k == nil {
		return nil
	}
	return append([]byte(nil), k...)
}

// baseLen returns the number of keys in base node n under either layout.
func (n *delta) baseLen() int {
	if n.offs != nil {
		return len(n.offs) - 1
	}
	return len(n.keys)
}

// baseKey returns key i of base node n: a zero-copy subslice of the arena
// for flat bases, the stored slice otherwise. The -inf separator of a
// leftmost inner base is nil under both layouts.
func (n *delta) baseKey(i int) []byte {
	if n.offs != nil {
		if n.nil0 && i == 0 {
			return nil
		}
		return n.arena[n.offs[i]:n.offs[i+1]]
	}
	return n.keys[i]
}

// baseSearch returns the position of the first key of base n >= k and
// whether an exact match exists there, under either layout.
func (n *delta) baseSearch(k []byte) (int, bool) {
	if n.offs != nil {
		return n.flatSearch(k, 0, len(n.offs)-1, false)
	}
	return searchKeys(n.keys, k)
}

// baseSearchRange is baseSearch restricted to the window [lo, hi) — the
// micro-indexed binary search of §4.4.
func (n *delta) baseSearchRange(k []byte, lo, hi int) (int, bool) {
	if n.offs != nil {
		return n.flatSearch(k, lo, hi, false)
	}
	return searchKeysRange(n.keys, k, lo, hi)
}

// flatSearch returns the position of the first key of flat base n within
// [lo, hi) that is >= k (strict=false) or > k (strict=true), plus whether
// that position holds an exact match. The node's common prefix is
// compared once up front; the binary search itself touches suffixes only.
func (n *delta) flatSearch(k []byte, lo, hi int, strict bool) (int, bool) {
	if p := int(n.pfx); p > 0 {
		m := min(len(k), p)
		// pfx > 0 implies key 0 is not the nil separator, so the shared
		// prefix is the first pfx bytes at offs[0].
		o0 := n.offs[0]
		c := bytes.Compare(k[:m], n.arena[o0:o0+uint32(m)])
		if c < 0 || c == 0 && len(k) < p {
			return lo, false // k sorts before every key of the node
		}
		if c > 0 {
			return hi, false // k sorts after every key of the node
		}
		k = k[p:]
	}
	var pos int
	if n.isLeaf {
		pos = windowSearch(nil, n.arena, n.offs, n.pfx, k, lo, hi, strict)
	} else {
		// Inner windows have a small fixed fanout and every routing probe
		// descends through several of them; the branch-free variant keeps
		// the pipeline from flushing on the unpredictable comparison.
		limit := 0
		if strict {
			limit = 1
		}
		pos = branchFreeSearch(n.arena, n.offs, n.pfx, k, lo, hi, limit)
	}
	exact := pos < len(n.offs)-1 &&
		bytes.Equal(n.arena[n.offs[pos]+n.pfx:n.offs[pos+1]], k)
	return pos, exact
}

// routeSearch is flatSearch for inner routing probes, which never use the
// exactness bit: it returns the position alone and skips the equality
// check. The node's common prefix is compared once up front (a probe that
// sorts outside the prefix is resolved by that compare alone); the search
// proper then runs over the suffix-word plane when the base carries one,
// falling back to the fixed-stride or variable-width arena search
// otherwise. All dispatch branches are node-constant, so the predictor
// eats them. Keys are stored whole in the arena, so the fallback's
// full-suffix comparison is always correct; a leftmost inner base's nil
// -inf separator reads as the empty key (word 0), which compares below
// every real key — the same routing decision the slice layout makes.
func (n *delta) routeSearch(k []byte, strict bool) int {
	limit := 0
	if strict {
		limit = 1
	}
	hi := len(n.offs) - 1
	if p := int(n.pfx); p > 0 {
		m := min(len(k), p)
		// pfx > 0 implies key 0 is not the nil separator.
		o0 := n.offs[0]
		c := bytes.Compare(k[:m], n.arena[o0:o0+uint32(m)])
		if c < 0 || c == 0 && len(k) < p {
			return 0 // k sorts before every key of the node
		}
		if c > 0 {
			return hi // k sorts after every key of the node
		}
		k = k[p:]
	}
	if n.sfx != nil {
		return n.wordSearch(k, hi, limit)
	}
	if n.stride != 0 {
		return strideSearch(n.arena, n.stride, n.pfx, hi, k, limit)
	}
	return branchFreeSearch(n.arena, n.offs, n.pfx, k, 0, hi, limit)
}

// wordSearch is the routing search over a flat inner base's suffix-word
// plane: the same fixed-trip power-of-two descent as branchFreeSearch,
// but each probe is one load from a pointer-free []uint64 and a register
// compare instead of a bytes.Compare against scattered arena lines — the
// whole plane of a fanout-64 node spans 8 cache lines. An unequal word
// decides the probe outright (buildSuffixWords' packing order-embeds the
// suffixes); an equal word means the first 8 suffix bytes are identical
// and the tie falls back to the full suffix in the arena — rare for
// separator sets, whose neighbours are whole leaves apart, and the branch
// predictor treats the fallback as never-taken. k arrives with the node's
// common prefix already stripped.
func (n *delta) wordSearch(k []byte, hi, limit int) int {
	if hi <= 0 {
		return 0
	}
	kw := keyWord(k)
	sfx := n.sfx
	i := 0
	for b := 1 << (bits.Len(uint(hi)) - 1); b != 0; b >>= 1 {
		if m := i + b; m <= hi {
			if w := sfx[m-1]; w != kw {
				if w < kw {
					i = m
				}
			} else if bytes.Compare(n.arena[n.offs[m-1]+n.pfx:n.offs[m]], k) < limit {
				i = m
			}
		}
	}
	return i
}

// strideSearch is branchFreeSearch for a fixed-width arena: when every key
// of the base has the same length (delta.stride), probe addresses are pure
// arithmetic — the dependent offs load between computing a probe index and
// touching arena bytes disappears, so the comparison's memory access can
// issue as soon as the index is known. Separator sets made of padded
// fixed-width keys hit this path on every inner probe of a descent. pfx
// skips the node's common prefix (k must arrive pre-stripped); pass 0 to
// compare whole keys.
func strideSearch(arena []byte, stride, pfx uint32, n int, k []byte, limit int) int {
	if n <= 0 {
		return 0
	}
	i := 0
	for b := 1 << (bits.Len(uint(n)) - 1); b != 0; b >>= 1 {
		if m := i + b; m <= n {
			o := uint32(m-1) * stride
			if bytes.Compare(arena[o+pfx:o+stride], k) < limit {
				i = m
			}
		}
	}
	return i
}

// branchFreeSearch is windowSearch's arena arm restructured as a
// branchless lower/upper bound (Knuth's uniform binary search): the
// stride runs through the descending powers of two from the window width,
// so the trip count is fixed by the width alone, and the body's
// data-dependent decision is a conditional add the compiler lowers to a
// conditional move — no branch for the predictor to miss on the 50/50
// comparison outcome. Total comparisons are floor(log2(n))+1, the same as
// the early-exit-free bisection in windowSearch — a naive fixed-trip
// halving loop pays one extra (cache-cold) probe whenever the width is
// not a power of two, which measurably loses on deep trees. limit folds
// the bound kind exactly as in windowSearch: 0 finds the first key >= k,
// 1 the first key > k. k arrives with the node's common prefix already
// stripped, as in windowSearch.
func branchFreeSearch(arena []byte, offs []uint32, pfx uint32, k []byte, lo, hi int, limit int) int {
	i, n := lo, hi-lo
	if n <= 0 {
		return lo
	}
	for b := 1 << (bits.Len(uint(n)) - 1); b != 0; b >>= 1 {
		if m := i + b; m <= hi {
			if bytes.Compare(arena[offs[m-1]+pfx:offs[m]], k) < limit {
				i = m
			}
		}
	}
	return i
}

// windowSearch returns the smallest position in [lo, hi) whose key is
// >= k (strict=false) or > k (strict=true); hi when no key qualifies.
// This is the one binary search behind every base-probe site:
// searchKeys/searchKeysRange, flatSearch, and both routeBaseInner
// variants reduce to a lower or upper bound over one of the layouts.
// Slice probes pass keys (offs nil); flat probes pass arena/offs/pfx with
// k already stripped of the node's common prefix. The layout branch sits
// inside the loop but always takes the same arm for a given node, so the
// predictor eats it — unlike an interface or generic comparator, which
// would cost a non-inlinable call per probe.
func windowSearch(keys [][]byte, arena []byte, offs []uint32, pfx uint32, k []byte, lo, hi int, strict bool) int {
	// c < limit folds the lower/upper-bound distinction into the one
	// comparison already in the loop: limit 0 advances on c < 0 (first
	// >= k), limit 1 also advances on equality (first > k).
	limit := 0
	if strict {
		limit = 1
	}
	if offs == nil {
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bytes.Compare(keys[mid], k) < limit {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(arena[offs[mid]+pfx:offs[mid+1]], k) < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
