package core

import "bytes"

// This file implements the flat base-node layout (Options.FlatBaseNodes)
// and the single window-search helper shared by both layouts.
//
// The slice layout stores base keys as keys [][]byte: one 24-byte slice
// header plus a pointer chase per key, so every binary-search probe eats a
// dependent cache miss and Go's GC must scan ~LeafNodeSize pointers per
// leaf. The flat layout materializes all keys of a base into one immutable
// []byte arena plus a []uint32 offset array (key i = arena[offs[i]:
// offs[i+1]], len(offs) = n+1), with the node's common key prefix length
// computed at build time so binary-search comparisons skip it. A flat leaf
// carries ~4 GC-visible payload pointers instead of ~130 and each search
// probe is a sequential read of adjacent arena bytes.
//
// Keys are stored whole (prefix included) so accessors hand out zero-copy
// full-key subslices; the prefix is skipped only during comparisons. A
// leftmost inner base's -inf separator (nil key) is preserved by the nil0
// flag: nil participates in prefix computation as the empty string, which
// forces pfx = 0 for any node containing it, and baseKey(0) returns nil so
// separator semantics (sameKey, sortInnerItems, Validate) are unchanged.

// buildFlat materializes a sorted key set as a flat arena. The offset
// array always has len(keys)+1 entries; a non-nil offs is what marks a
// base node as flat.
func buildFlat(keys [][]byte) (arena []byte, offs []uint32, pfx uint32, nil0 bool) {
	n := len(keys)
	offs = make([]uint32, n+1)
	if n == 0 {
		return nil, offs, 0, false
	}
	nil0 = keys[0] == nil
	// Keys are sorted, so the prefix shared by all of them is the prefix
	// shared by the first and last.
	p := commonPrefix(keys[0], keys[n-1])
	total := 0
	for _, k := range keys {
		total += len(k)
	}
	arena = make([]byte, 0, total)
	for i, k := range keys {
		offs[i] = uint32(len(arena))
		arena = append(arena, k...)
	}
	offs[n] = uint32(len(arena))
	return arena, offs, uint32(p), nil0
}

// commonPrefix returns the length of the longest common prefix of a and b
// (nil behaves as the empty string).
func commonPrefix(a, b []byte) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// setBaseKeys installs a materialized key set into base node nb using the
// tree's configured layout. Every base-construction site funnels through
// here (consolidation via buildBase, splits, BulkLoad, New).
func (t *Tree) setBaseKeys(nb *delta, keys [][]byte) {
	if t.opts.FlatBaseNodes {
		nb.arena, nb.offs, nb.pfx, nb.nil0 = buildFlat(keys)
		return
	}
	nb.keys = keys
}

// cloneBound copies a boundary key, preserving nil (-inf/+inf). Flat-mode
// base construction clones its low/high keys because the collected keys
// they would otherwise alias can point into the replaced chain's arena,
// and a node attribute must not pin its predecessor's arena for the
// node's whole lifetime.
func cloneBound(k []byte) []byte {
	if k == nil {
		return nil
	}
	return append([]byte(nil), k...)
}

// baseLen returns the number of keys in base node n under either layout.
func (n *delta) baseLen() int {
	if n.offs != nil {
		return len(n.offs) - 1
	}
	return len(n.keys)
}

// baseKey returns key i of base node n: a zero-copy subslice of the arena
// for flat bases, the stored slice otherwise. The -inf separator of a
// leftmost inner base is nil under both layouts.
func (n *delta) baseKey(i int) []byte {
	if n.offs != nil {
		if n.nil0 && i == 0 {
			return nil
		}
		return n.arena[n.offs[i]:n.offs[i+1]]
	}
	return n.keys[i]
}

// baseSearch returns the position of the first key of base n >= k and
// whether an exact match exists there, under either layout.
func (n *delta) baseSearch(k []byte) (int, bool) {
	if n.offs != nil {
		return n.flatSearch(k, 0, len(n.offs)-1, false)
	}
	return searchKeys(n.keys, k)
}

// baseSearchRange is baseSearch restricted to the window [lo, hi) — the
// micro-indexed binary search of §4.4.
func (n *delta) baseSearchRange(k []byte, lo, hi int) (int, bool) {
	if n.offs != nil {
		return n.flatSearch(k, lo, hi, false)
	}
	return searchKeysRange(n.keys, k, lo, hi)
}

// flatSearch returns the position of the first key of flat base n within
// [lo, hi) that is >= k (strict=false) or > k (strict=true), plus whether
// that position holds an exact match. The node's common prefix is
// compared once up front; the binary search itself touches suffixes only.
func (n *delta) flatSearch(k []byte, lo, hi int, strict bool) (int, bool) {
	if p := int(n.pfx); p > 0 {
		m := min(len(k), p)
		// pfx > 0 implies key 0 is not the nil separator, so the shared
		// prefix is the first pfx bytes at offs[0].
		o0 := n.offs[0]
		c := bytes.Compare(k[:m], n.arena[o0:o0+uint32(m)])
		if c < 0 || c == 0 && len(k) < p {
			return lo, false // k sorts before every key of the node
		}
		if c > 0 {
			return hi, false // k sorts after every key of the node
		}
		k = k[p:]
	}
	pos := windowSearch(nil, n.arena, n.offs, n.pfx, k, lo, hi, strict)
	exact := pos < len(n.offs)-1 &&
		bytes.Equal(n.arena[n.offs[pos]+n.pfx:n.offs[pos+1]], k)
	return pos, exact
}

// windowSearch returns the smallest position in [lo, hi) whose key is
// >= k (strict=false) or > k (strict=true); hi when no key qualifies.
// This is the one binary search behind every base-probe site:
// searchKeys/searchKeysRange, flatSearch, and both routeBaseInner
// variants reduce to a lower or upper bound over one of the layouts.
// Slice probes pass keys (offs nil); flat probes pass arena/offs/pfx with
// k already stripped of the node's common prefix. The layout branch sits
// inside the loop but always takes the same arm for a given node, so the
// predictor eats it — unlike an interface or generic comparator, which
// would cost a non-inlinable call per probe.
func windowSearch(keys [][]byte, arena []byte, offs []uint32, pfx uint32, k []byte, lo, hi int, strict bool) int {
	// c < limit folds the lower/upper-bound distinction into the one
	// comparison already in the loop: limit 0 advances on c < 0 (first
	// >= k), limit 1 also advances on equality (first > k).
	limit := 0
	if strict {
		limit = 1
	}
	if offs == nil {
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bytes.Compare(keys[mid], k) < limit {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(arena[offs[mid]+pfx:offs[mid+1]], k) < limit {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
