package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// flatBaseFromKeys builds a flat-layout base node over keys for direct
// search testing.
func flatBaseFromKeys(keys [][]byte) *delta {
	n := &delta{kind: kLeafBase, isLeaf: true, size: int32(len(keys))}
	n.arena, n.offs, n.pfx, n.stride, n.nil0 = buildFlat(keys)
	n.base = n
	return n
}

func TestBuildFlat(t *testing.T) {
	cases := []struct {
		name   string
		keys   [][]byte
		pfx    uint32
		stride uint32
		nil0   bool
	}{
		{"empty", nil, 0, 0, false},
		{"single", [][]byte{[]byte("hello")}, 5, 5, false},
		{"shared-prefix", [][]byte{[]byte("user123"), []byte("user456"), []byte("user789")}, 4, 7, false},
		{"no-prefix", [][]byte{[]byte("alpha"), []byte("beta")}, 0, 0, false},
		{"nil-separator", [][]byte{nil, []byte("m")}, 0, 0, true},
		{"duplicates", [][]byte{[]byte("dup"), []byte("dup"), []byte("dup")}, 3, 3, false},
		{"prefix-is-a-key", [][]byte{[]byte("ab"), []byte("abc"), []byte("abd")}, 2, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := flatBaseFromKeys(tc.keys)
			if n.pfx != tc.pfx || n.stride != tc.stride || n.nil0 != tc.nil0 {
				t.Fatalf("pfx=%d stride=%d nil0=%t, want %d/%d/%t",
					n.pfx, n.stride, n.nil0, tc.pfx, tc.stride, tc.nil0)
			}
			if got := n.baseLen(); got != len(tc.keys) {
				t.Fatalf("baseLen=%d, want %d", got, len(tc.keys))
			}
			for i, k := range tc.keys {
				got := n.baseKey(i)
				if (got == nil) != (k == nil) || !bytes.Equal(got, k) {
					t.Fatalf("baseKey(%d)=%q (nil=%t), want %q (nil=%t)",
						i, got, got == nil, k, k == nil)
				}
			}
		})
	}
}

// TestFlatSearchMatchesSlice drives the flat prefix-skip search and the
// slice search with identical key sets and probes — including probes
// shorter than, equal to, and extending the common prefix — and demands
// byte-identical (position, exact) results.
func TestFlatSearchMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prefixes := []string{"", "k", "user:profile:", "aa"}
	for trial := 0; trial < 200; trial++ {
		pfx := prefixes[rng.Intn(len(prefixes))]
		n := rng.Intn(40) + 1
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("%s%03d", pfx, rng.Intn(500))] = true
		}
		var keys [][]byte
		for k := range set {
			keys = append(keys, []byte(k))
		}
		for i := range keys {
			for j := i + 1; j < len(keys); j++ {
				if bytes.Compare(keys[j], keys[i]) < 0 {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		flat := flatBaseFromKeys(keys)

		probes := [][]byte{[]byte("0"), []byte("zzz"), []byte(pfx), []byte(pfx + "5")}
		if len(pfx) > 1 {
			probes = append(probes, []byte(pfx[:1]), []byte(pfx+"999999"))
		}
		for _, k := range keys {
			probes = append(probes, k, append(append([]byte(nil), k...), 0))
		}
		for _, p := range probes {
			if len(p) == 0 {
				continue
			}
			wantPos, wantExact := searchKeys(keys, p)
			gotPos, gotExact := flat.baseSearch(p)
			if gotPos != wantPos || gotExact != wantExact {
				t.Fatalf("pfx=%q keys=%d probe=%q: flat (%d,%t), slice (%d,%t)",
					pfx, len(keys), p, gotPos, gotExact, wantPos, wantExact)
			}
			// Windowed search with a random valid window must agree too.
			lo := rng.Intn(len(keys) + 1)
			hi := lo + rng.Intn(len(keys)+1-lo)
			wp, we := searchKeysRange(keys, p, lo, hi)
			gp, ge := flat.baseSearchRange(p, lo, hi)
			if gp != wp || ge != we {
				t.Fatalf("pfx=%q probe=%q window [%d,%d): flat (%d,%t), slice (%d,%t)",
					pfx, p, lo, hi, gp, ge, wp, we)
			}
		}
	}
}

// TestFlatRouteMatchesSlice checks that inner-node routing (upper-bound
// and lower-bound variants) agrees between the layouts, including on the
// nil -inf separator of a leftmost inner node.
func TestFlatRouteMatchesSlice(t *testing.T) {
	keys := [][]byte{nil, []byte("e"), []byte("ee"), []byte("k"), []byte("r")}
	kids := []nodeID{10, 20, 30, 40, 50}
	slice := &delta{kind: kInnerBase, keys: keys, kids: kids}
	flat := &delta{kind: kInnerBase, kids: kids}
	flat.arena, flat.offs, flat.pfx, flat.stride, flat.nil0 = buildFlat(keys)

	probes := []string{"a", "e", "e0", "ee", "eee", "j", "k", "k1", "q", "r", "z"}
	for _, p := range probes {
		k := []byte(p)
		if got, want := routeBaseInner(flat, k), routeBaseInner(slice, k); got != want {
			t.Errorf("routeBaseInner(%q): flat %d, slice %d", p, got, want)
		}
		if got, want := routeBaseInnerLeft(flat, k), routeBaseInnerLeft(slice, k); got != want {
			t.Errorf("routeBaseInnerLeft(%q): flat %d, slice %d", p, got, want)
		}
	}
}

// TestFlatLayoutDifferential runs one random operation stream against an
// arena-layout tree (each combination of leaf/inner flat flags) and an
// all-slice tree with tiny nodes (forcing splits, merges, and
// consolidations) and demands identical results. The flat side also runs
// with scan pipelining on, so the sibling prefetch is exercised under
// every layout combination.
func TestFlatLayoutDifferential(t *testing.T) {
	combos := []struct{ leaf, inner bool }{
		{true, false}, {false, true}, {true, true},
	}
	for _, nonUnique := range []bool{false, true} {
		for _, combo := range combos {
			t.Run(fmt.Sprintf("nonUnique=%t/leafFlat=%t/innerFlat=%t", nonUnique, combo.leaf, combo.inner), func(t *testing.T) {
				mk := func(leafFlat, innerFlat bool) (*Tree, *Session) {
					opts := DefaultOptions()
					opts.FlatBaseNodes = leafFlat
					opts.FlatInnerNodes = innerFlat
					opts.ScanPipelining = leafFlat || innerFlat
					opts.NonUnique = nonUnique
					opts.LeafNodeSize = 16
					opts.InnerNodeSize = 8
					opts.LeafChainLength = 4
					opts.InnerChainLength = 2
					opts.LeafMergeSize = 4
					opts.InnerMergeSize = 2
					tr := New(opts)
					return tr, tr.NewSession()
				}
				ft, fs := mk(combo.leaf, combo.inner)
				defer ft.Close()
				st, ss := mk(false, false)
				defer st.Close()

				rng := rand.New(rand.NewSource(7))
				key := func() []byte {
					// Shared prefix plus a short tail: exercises prefix-skip.
					return []byte(fmt.Sprintf("key:%04d", rng.Intn(400)))
				}
				for op := 0; op < 8000; op++ {
					k := key()
					v := uint64(rng.Intn(4))
					switch rng.Intn(10) {
					case 0, 1, 2:
						if got, want := fs.Insert(k, v), ss.Insert(k, v); got != want {
							t.Fatalf("op %d: Insert(%q,%d) flat=%t slice=%t", op, k, v, got, want)
						}
					case 3:
						if got, want := fs.Delete(k, v), ss.Delete(k, v); got != want {
							t.Fatalf("op %d: Delete(%q,%d) flat=%t slice=%t", op, k, v, got, want)
						}
					case 4:
						if got, want := fs.Update(k, v), ss.Update(k, v); got != want {
							t.Fatalf("op %d: Update(%q,%d) flat=%t slice=%t", op, k, v, got, want)
						}
					case 5:
						var fgot, sgot []uint64
						fgot = fs.Lookup(k, fgot)
						sgot = ss.Lookup(k, sgot)
						sortU64(fgot)
						sortU64(sgot)
						if fmt.Sprint(fgot) != fmt.Sprint(sgot) {
							t.Fatalf("op %d: Lookup(%q) flat=%v slice=%v", op, k, fgot, sgot)
						}
					default:
						count := rng.Intn(30) + 1
						var fk, sk []string
						fs.Scan(k, count, func(kk []byte, vv uint64) bool {
							fk = append(fk, fmt.Sprintf("%s=%d", kk, vv))
							return true
						})
						ss.Scan(k, count, func(kk []byte, vv uint64) bool {
							sk = append(sk, fmt.Sprintf("%s=%d", kk, vv))
							return true
						})
						if fmt.Sprint(fk) != fmt.Sprint(sk) {
							t.Fatalf("op %d: Scan(%q,%d)\nflat:  %v\nslice: %v", op, k, count, fk, sk)
						}
					}
				}
				if err := ft.Validate(); err != nil {
					t.Fatalf("flat tree validate: %v", err)
				}
				if err := st.Validate(); err != nil {
					t.Fatalf("slice tree validate: %v", err)
				}
				if got, want := ft.Count(), st.Count(); got != want {
					t.Fatalf("count: flat %d, slice %d", got, want)
				}
			})
		}
	}
}

func sortU64(vs []uint64) {
	for i := range vs {
		for j := i + 1; j < len(vs); j++ {
			if vs[j] < vs[i] {
				vs[i], vs[j] = vs[j], vs[i]
			}
		}
	}
}

// TestFlatBulkLoad bulk-loads a flat-layout tree and checks structure,
// content, and that the bases actually use the flat layout.
func TestFlatBulkLoad(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	tr := New(opts)
	defer tr.Close()

	const n = 5000
	i := 0
	err := tr.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= n {
			return nil, 0, false
		}
		k := []byte(fmt.Sprintf("bulk:%06d", i))
		v := uint64(i)
		i++
		return k, v, true
	})
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := tr.NewSession()
	defer s.Release()
	for j := 0; j < n; j += 37 {
		k := []byte(fmt.Sprintf("bulk:%06d", j))
		got := s.Lookup(k, nil)
		if len(got) != 1 || got[0] != uint64(j) {
			t.Fatalf("Lookup(%q) = %v, want [%d]", k, got, j)
		}
	}
	st := tr.StructureStats()
	if st.FlatBases == 0 {
		t.Fatal("bulk-loaded tree reports no flat bases")
	}
	if st.FlatBases != st.LeafNodes+st.InnerNodes {
		t.Errorf("FlatBases=%d, want every base flat (%d leaves + %d inner)",
			st.FlatBases, st.LeafNodes, st.InnerNodes)
	}
	if st.InnerFlatBases != st.InnerNodes {
		t.Errorf("InnerFlatBases=%d, want every inner base flat (%d)", st.InnerFlatBases, st.InnerNodes)
	}
	if st.InnerArenaBytes == 0 || st.InnerArenaBytes >= st.ArenaBytes {
		t.Errorf("InnerArenaBytes=%d out of range (ArenaBytes=%d)", st.InnerArenaBytes, st.ArenaBytes)
	}
	if st.ArenaBytes == 0 || st.KeyBytes == 0 || st.LeafBytesPerEntry == 0 {
		t.Errorf("footprint metrics missing: %+v", st)
	}
	// A flat base carries a constant 3 payload pointers.
	if st.GCPtrsPerLeaf != 3 {
		t.Errorf("GCPtrsPerLeaf=%v, want 3 for all-flat leaves", st.GCPtrsPerLeaf)
	}
}

// TestStructureStatsSliceFootprint pins the slice-layout pointer
// accounting: 2 + one pointer per key.
func TestStructureStatsSliceFootprint(t *testing.T) {
	opts := DefaultOptions()
	opts.FlatBaseNodes = false
	opts.FlatInnerNodes = false
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := 0; i < 50; i++ {
		s.Insert(key64(uint64(i)), uint64(i))
	}
	tr.ConsolidateAll()
	st := tr.StructureStats()
	if st.FlatBases != 0 {
		t.Errorf("FlatBases=%d on a slice-layout tree", st.FlatBases)
	}
	if st.LeafNodes == 1 && st.GCPtrsPerLeaf != float64(2+50) {
		t.Errorf("GCPtrsPerLeaf=%v, want %d", st.GCPtrsPerLeaf, 2+50)
	}
	if st.KeyBytes != 50*8 {
		t.Errorf("KeyBytes=%d, want %d", st.KeyBytes, 50*8)
	}
}

// TestLeafChainUnexpectedKind is the regression test for the stale
// fallback fixed in leaf.go: all four leaf replay loops must skip an
// unexpected record kind and fall through to the base search instead of
// reporting not-found, and must terminate on a baseless chain.
func TestLeafChainUnexpectedKind(t *testing.T) {
	for _, flat := range []bool{true, false} {
		t.Run(fmt.Sprintf("flat=%t", flat), func(t *testing.T) {
			opts := DefaultOptions()
			opts.FlatBaseNodes = flat
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()
			for i := 0; i < 8; i++ {
				s.Insert(key64(uint64(i)), uint64(100+i))
			}
			tr.ConsolidateAll()

			root := tr.load(tr.root)
			leaf := tr.load(root.kids[0])
			if leaf.kind != kLeafBase {
				t.Fatalf("expected consolidated leaf base, got %v", leaf.kind)
			}
			// An inner-only kind can never legally appear in a leaf chain;
			// splice one in above the base.
			bogus := &delta{kind: kInnerInsert}
			bogus.inheritFrom(leaf)
			bogus.offset = -1

			k := key64(3)
			if r := s.leafSeek(bogus, k); !r.found || r.value != 103 {
				t.Errorf("leafSeek through unexpected kind: %+v, want found value 103", r)
			}
			if vs, off := s.collectValues(bogus, k, nil); len(vs) != 1 || vs[0] != 103 || off < 0 {
				t.Errorf("collectValues through unexpected kind: %v off=%d", vs, off)
			}
			if r := s.leafSeekPair(bogus, k, 103); !r.found {
				t.Errorf("leafSeekPair through unexpected kind: %+v", r)
			}
			if r := s.leafSeekFirstVisible(bogus, k); !r.found || r.value != 103 {
				t.Errorf("leafSeekFirstVisible through unexpected kind: %+v", r)
			}

			// A baseless chain of unexpected records must terminate with
			// not-found and no offset.
			orphan := &delta{kind: kInnerInsert, isLeaf: true}
			if r := s.leafSeek(orphan, k); r.found || r.baseOff != -1 {
				t.Errorf("leafSeek on baseless chain: %+v", r)
			}
			if vs, off := s.collectValues(orphan, k, nil); len(vs) != 0 || off != -1 {
				t.Errorf("collectValues on baseless chain: %v off=%d", vs, off)
			}
			if r := s.leafSeekPair(orphan, k, 103); r.found || r.baseOff != -1 {
				t.Errorf("leafSeekPair on baseless chain: %+v", r)
			}
			if r := s.leafSeekFirstVisible(orphan, k); r.found || r.baseOff != -1 {
				t.Errorf("leafSeekFirstVisible on baseless chain: %+v", r)
			}
		})
	}
}

// TestFlatLookupNoAllocs pins the zero-allocation contract of the flat
// read path: unique-key lookups against consolidated flat bases must not
// allocate.
func TestFlatLookupNoAllocs(t *testing.T) {
	opts := DefaultOptions()
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	const n = 4096
	for i := 0; i < n; i++ {
		s.Insert(key64(uint64(i)), uint64(i))
	}
	tr.ConsolidateAll()

	out := make([]uint64, 0, 4)
	k := make([]byte, 8)
	copy(k, key64(uint64(n/2)))
	avg := testing.AllocsPerRun(2000, func() {
		out = s.Lookup(k, out[:0])
	})
	if avg > 0.01 {
		t.Errorf("Lookup allocates %.3f per op on flat bases, want 0", avg)
	}
}
