package core

import (
	"encoding/binary"
	"testing"
)

// BenchmarkYCSBCHotPath is the read-only (YCSB-C) hot path the
// obs-overhead gate measures across build tags: Lookups against a
// preloaded, consolidated tree with deep tracing *disabled*. Compiled
// normally, every probe site costs its nil/flag check; compiled with
// -tags notrace the probes are constant-folded away. The harness
// obs-overhead experiment runs this benchmark under both tags and fails
// the gate when the normal build is more than ~2% slower — i.e. when a
// probe leaks real work into the disabled path.
func BenchmarkYCSBCHotPath(b *testing.B) {
	const keys = 200_000
	t := New(DefaultOptions())
	defer t.Close()
	s := t.NewSession()
	defer s.Release()

	key := make([]byte, 8)
	for i := 0; i < keys; i++ {
		binary.BigEndian.PutUint64(key, uint64(i)*0x9e3779b97f4a7c15)
		s.Insert(key, uint64(i))
	}
	t.ConsolidateAll()

	var out []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(key, uint64(i%keys)*0x9e3779b97f4a7c15)
		out = s.Lookup(key, out[:0])
	}
	_ = out
}
