package core

import (
	"bytes"
	"fmt"
	"strings"
)

// Validate checks the structural invariants of a quiescent tree and
// returns a descriptive error on the first violation. It is meant for
// tests and debugging; it must not run concurrently with mutations.
//
// Checked invariants:
//   - every leaf's materialized keys are sorted and inside [low, high)
//   - sibling links stitch leaves into one ordered chain
//   - inner separators route exactly onto their children's low keys
//   - the item count attribute matches the materialized content
func (t *Tree) Validate() error {
	s := t.NewSession()
	defer s.Release()
	return t.validateNode(s, t.root, nil, nil)
}

func (t *Tree) validateNode(s *Session, id nodeID, low, high []byte) error {
	head := t.load(id)
	if head == nil {
		return fmt.Errorf("node %d: nil mapping entry", id)
	}
	if head.kind == kRemove || head.kind == kAbort {
		return fmt.Errorf("node %d: dangling %v at head", id, head.kind)
	}
	if !sameKey(head.lowKey, low) {
		return fmt.Errorf("node %d: low key %q, parent separator %q", id, head.lowKey, low)
	}
	c := s.collect(head)
	if int(head.size) != len(c.keys) {
		return fmt.Errorf("node %d: size attribute %d, materialized %d items", id, head.size, len(c.keys))
	}
	var prev []byte
	for i, k := range c.keys {
		if i == 0 && k == nil {
			continue // -inf separator of a leftmost inner node
		}
		if k == nil {
			return fmt.Errorf("node %d: nil key at position %d", id, i)
		}
		if prev != nil && bytes.Compare(prev, k) > 0 {
			return fmt.Errorf("node %d: keys out of order at %d (%q > %q)", id, i, prev, k)
		}
		if low != nil && bytes.Compare(k, low) < 0 {
			return fmt.Errorf("node %d: key %q below low bound %q", id, k, low)
		}
		if high != nil && bytes.Compare(k, high) >= 0 {
			return fmt.Errorf("node %d: key %q at/above high bound %q", id, k, high)
		}
		prev = k
	}
	if !head.isLeaf {
		if len(c.keys) == 0 {
			return fmt.Errorf("inner node %d: empty", id)
		}
		if !sameKey(c.keys[0], low) {
			return fmt.Errorf("inner node %d: first separator %q != low bound %q", id, c.keys[0], low)
		}
		for i := range c.keys {
			childHigh := high
			if i+1 < len(c.keys) {
				childHigh = c.keys[i+1]
			}
			if err := t.validateNode(s, c.kids[i], c.keys[i], childHigh); err != nil {
				return err
			}
		}
	}
	return nil
}

// Count returns the number of items by scanning leaf nodes through the
// sibling chain. Quiescent use only.
func (t *Tree) Count() int {
	s := t.NewSession()
	defer s.Release()
	total := 0
	it := s.NewIterator()
	for it.SeekFirst(); it.Valid(); it.Next() {
		total++
	}
	return total
}

// Dump renders the tree's structure for debugging.
func (t *Tree) Dump() string {
	s := t.NewSession()
	defer s.Release()
	var b strings.Builder
	t.dumpNode(s, &b, t.root, 0)
	return b.String()
}

func (t *Tree) dumpNode(s *Session, b *strings.Builder, id nodeID, indent int) {
	head := t.load(id)
	pad := strings.Repeat("  ", indent)
	if head == nil {
		fmt.Fprintf(b, "%s[%d] <nil>\n", pad, id)
		return
	}
	fmt.Fprintf(b, "%s[%d] %v depth=%d size=%d low=%q high=%q sib=%d\n",
		pad, id, head.kind, head.depth, head.size, head.lowKey, head.highKey, int64(head.rightSib))
	c := s.collect(head)
	if head.isLeaf {
		for i := range c.keys {
			if i >= 8 {
				fmt.Fprintf(b, "%s  … %d more\n", pad, len(c.keys)-i)
				break
			}
			fmt.Fprintf(b, "%s  %q = %d\n", pad, c.keys[i], c.vals[i])
		}
		return
	}
	for i := range c.keys {
		fmt.Fprintf(b, "%s  sep %q:\n", pad, c.keys[i])
		t.dumpNode(s, b, c.kids[i], indent+2)
	}
}

// ConsolidateAll folds every delta chain in the tree into plain base
// nodes. Quiescent use only; exists for the Fig. 18 "disable delta
// chains" decomposition and for iterator/benchmark warm-up.
func (t *Tree) ConsolidateAll() {
	s := t.NewSession()
	defer s.Release()
	t.consolidateAllNode(s, t.root)
}

func (t *Tree) consolidateAllNode(s *Session, id nodeID) {
	head := t.load(id)
	if head == nil {
		return
	}
	// Children first: a child's split or merge posts separators into this
	// node, which the final self-consolidation folds away.
	if !head.isLeaf {
		c := s.collect(head)
		for _, kid := range c.kids {
			t.consolidateAllNode(s, kid)
		}
	}
	for range [4]struct{}{} {
		head = t.load(id)
		if head == nil || head.depth == 0 && (head.kind == kLeafBase || head.kind == kInnerBase) {
			return
		}
		s.consolidateID(id, head, invalidNode, nil)
	}
}

// FrozenTree is a read-only snapshot with direct child pointers — the
// mapping-table indirection removed. It implements the Fig. 18 "disable
// mapping table" decomposition: point lookups walk physical pointers only.
type FrozenTree struct {
	root *frozenNode
}

type frozenNode struct {
	keys [][]byte
	vals []uint64
	kids []*frozenNode
	leaf bool
}

// Freeze materializes a read-only snapshot of the tree with node IDs
// replaced by physical pointers. Quiescent use only.
func (t *Tree) Freeze() *FrozenTree {
	s := t.NewSession()
	defer s.Release()
	return &FrozenTree{root: t.freezeNode(s, t.root)}
}

func (t *Tree) freezeNode(s *Session, id nodeID) *frozenNode {
	head := t.load(id)
	c := s.collect(head)
	fn := &frozenNode{keys: c.keys, leaf: head.isLeaf}
	if head.isLeaf {
		fn.vals = c.vals
		return fn
	}
	fn.kids = make([]*frozenNode, len(c.kids))
	for i, kid := range c.kids {
		fn.kids[i] = t.freezeNode(s, kid)
	}
	return fn
}

// Lookup returns the value for key in the snapshot.
func (f *FrozenTree) Lookup(key []byte) (uint64, bool) {
	n := f.root
	for !n.leaf {
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if n.keys[mid] == nil || bytes.Compare(n.keys[mid], key) <= 0 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			lo = 1
		}
		n = n.kids[lo-1]
	}
	pos, exact := searchKeys(n.keys, key)
	if !exact {
		return 0, false
	}
	return n.vals[pos], true
}
