package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func batchKey(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

// TestBatchBasic exercises the batched entry points against their
// single-op equivalents on one session: results must land under the
// caller's original indices despite the internal sort, and duplicate
// keys inside one batch must resolve in submission order.
func TestBatchBasic(t *testing.T) {
	for _, gc := range []GCScheme{GCDecentralized, GCCentralized} {
		t.Run(fmt.Sprint(gc), func(t *testing.T) {
			opts := DefaultOptions()
			opts.GC = gc
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()

			const n = 10_000
			rng := rand.New(rand.NewSource(42))
			keys := make([][]byte, n)
			vals := make([]uint64, n)
			for i := range keys {
				keys[i] = batchKey(uint64(rng.Intn(n / 2))) // ~50% duplicates
				vals[i] = uint64(i)
			}
			ok := s.InsertBatch(keys, vals, nil)
			// First submission of each key wins; later duplicates fail.
			seen := make(map[string]uint64, n)
			for i, k := range keys {
				_, dup := seen[string(k)]
				if ok[i] == dup {
					t.Fatalf("InsertBatch[%d] ok=%v, want %v", i, ok[i], !dup)
				}
				if !dup {
					seen[string(k)] = vals[i]
				}
			}

			// LookupBatch must report every present key exactly once, under
			// its original index, with the winning value.
			lk := make([][]byte, 0, n)
			for i := 0; i < n/2+100; i++ { // include some misses
				lk = append(lk, batchKey(uint64(i)))
			}
			visited := make(map[int]bool, len(lk))
			s.LookupBatch(lk, func(i int, got []uint64) {
				if visited[i] {
					t.Fatalf("LookupBatch visited index %d twice", i)
				}
				visited[i] = true
				want, present := seen[string(lk[i])]
				if present != (len(got) == 1) || (present && got[0] != want) {
					t.Fatalf("LookupBatch[%d] = %v, want present=%v val=%d", i, got, present, want)
				}
			})
			if len(visited) != len(lk) {
				t.Fatalf("LookupBatch visited %d of %d keys", len(visited), len(lk))
			}

			// DeleteBatch: delete everything once (duplicates in the batch
			// fail after the first occurrence deletes the key).
			ok = s.DeleteBatch(keys, vals, ok)
			gone := make(map[string]bool, n)
			for i, k := range keys {
				if ok[i] == gone[string(k)] {
					t.Fatalf("DeleteBatch[%d] ok=%v, want %v", i, ok[i], !gone[string(k)])
				}
				gone[string(k)] = true
			}
			if got := s.Lookup(keys[0], nil); len(got) != 0 {
				t.Fatalf("key survived DeleteBatch: %v", got)
			}

			st := tr.Stats()
			if st.BatchLeafHits == 0 {
				t.Fatal("sorted batches produced zero leaf-cache hits")
			}
		})
	}
}

// TestBatchNonUnique pins batched semantics under multi-value keys: exact
// (key, value) pair matching for insert/delete and full value sets from
// LookupBatch.
func TestBatchNonUnique(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const keys = 300
	var ks [][]byte
	var vs []uint64
	for i := 0; i < keys; i++ {
		for v := 0; v < 3; v++ {
			ks = append(ks, batchKey(uint64(i)))
			vs = append(vs, uint64(v))
		}
	}
	ok := s.InsertBatch(ks, vs, nil)
	for i, o := range ok {
		if !o {
			t.Fatalf("InsertBatch[%d] failed", i)
		}
	}
	if ok := s.InsertBatch(ks[:1], vs[:1], ok); ok[0] {
		t.Fatal("re-inserting an existing pair succeeded")
	}
	s.LookupBatch(ks[:3], func(i int, got []uint64) {
		if len(got) != 3 {
			t.Fatalf("LookupBatch[%d]: %d values, want 3", i, len(got))
		}
	})
	// Delete value 1 of every key; the other two survive.
	var dk [][]byte
	var dv []uint64
	for i := 0; i < keys; i++ {
		dk = append(dk, batchKey(uint64(i)))
		dv = append(dv, 1)
	}
	ok = s.DeleteBatch(dk, dv, ok)
	for i, o := range ok {
		if !o {
			t.Fatalf("DeleteBatch[%d] failed", i)
		}
	}
	got := s.Lookup(batchKey(0), nil)
	if len(got) != 2 {
		t.Fatalf("after pair delete: %v, want 2 values", got)
	}
}

// TestBatchConcurrent runs batched writers and readers against
// single-op sessions on the same tree; run under -race this checks the
// shared traversal caching publishes through the same synchronization as
// the single-op path.
func TestBatchConcurrent(t *testing.T) {
	opts := DefaultOptions()
	tr := New(opts)
	defer tr.Close()

	const (
		workers = 4
		rounds  = 30
		batch   = 256
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)))
			keys := make([][]byte, batch)
			vals := make([]uint64, batch)
			var ok []bool
			for r := 0; r < rounds; r++ {
				for i := range keys {
					keys[i] = batchKey(uint64(rng.Intn(4096)))
					vals[i] = uint64(w)
				}
				switch r % 3 {
				case 0:
					ok = s.InsertBatch(keys, vals, ok)
				case 1:
					s.LookupBatch(keys, func(i int, got []uint64) {
						if len(got) > 1 {
							t.Errorf("unique lookup returned %d values", len(got))
						}
					})
				case 2:
					ok = s.DeleteBatch(keys, vals, ok)
				}
			}
		}(w)
	}
	// A single-op mutator runs alongside to force splits/merges under the
	// batched traversals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := tr.NewSession()
		defer s.Release()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < workers*rounds*batch/4; i++ {
			k := batchKey(uint64(rng.Intn(4096)))
			if i%2 == 0 {
				s.Insert(k, 7)
			} else {
				s.Delete(k, 7)
			}
		}
	}()
	wg.Wait()
}

// TestBatchEpochRefresh drives one batch well past batchEpochRefresh so
// the mid-batch Exit/Enter + cache-invalidation path executes.
func TestBatchEpochRefresh(t *testing.T) {
	opts := DefaultOptions()
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	n := batchEpochRefresh*2 + 123
	keys := make([][]byte, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = batchKey(uint64(i))
		vals[i] = uint64(i)
	}
	ok := s.InsertBatch(keys, vals, nil)
	for i, o := range ok {
		if !o {
			t.Fatalf("insert %d failed", i)
		}
	}
	misses := 0
	s.LookupBatch(keys, func(i int, got []uint64) {
		if len(got) != 1 || got[0] != uint64(i) {
			misses++
		}
	})
	if misses != 0 {
		t.Fatalf("%d lookups wrong after refresh-crossing batch", misses)
	}
}
