package core

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestPointerChasesAfterChainedRead verifies the pointerChases counter is
// actually wired through the delta-chain walk: a lookup that traverses a
// non-empty chain must bump it.
func TestPointerChasesAfterChainedRead(t *testing.T) {
	opts := DefaultOptions()
	// Long chain limits so the deltas survive until we read them.
	opts.LeafChainLength = 64
	opts.InnerChainLength = 64
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	// Stack insert deltas on one leaf (the limits above defer
	// consolidation), then read the oldest key: the seek must walk past
	// every newer delta to reach it, chasing a pointer per hop.
	for i := uint64(0); i < 20; i++ {
		if !s.Insert(key64(i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if got := s.Lookup(key64(0), nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("lookup got %v, want [0]", got)
	}
	if st := tr.Stats(); st.PointerChases == 0 {
		t.Fatal("PointerChases = 0 after reading a chained leaf; counter not wired")
	}
}

// TestStatsConcurrentWithWrites calls Stats while writers are mutating
// counters. Under -race this fails if any counter is read non-atomically.
func TestStatsConcurrentWithWrites(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()

	const workers = 4
	const perWorker = 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			base := uint64(w) * perWorker
			for i := uint64(0); i < perWorker; i++ {
				s.Insert(key64(base+i), i)
				s.Lookup(key64(base+i), nil)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			st := tr.Stats()
			_ = st.AbortRate()
		}
	}()
	wg.Wait()
	<-done

	st := tr.Stats()
	if want := uint64(workers * perWorker * 2); st.Ops != want {
		t.Fatalf("Ops = %d, want %d", st.Ops, want)
	}
	if st.PointerChases == 0 {
		t.Fatal("PointerChases = 0 after chained reads")
	}
}

// TestLatencyHistograms verifies the opt-in latency recorder: enabled
// trees report per-class counts and quantiles, disabled trees report nil.
func TestLatencyHistograms(t *testing.T) {
	opts := DefaultOptions()
	opts.LatencyHistograms = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()

	const n = 1000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i)
	}
	for i := uint64(0); i < n; i++ {
		s.Lookup(key64(i), nil)
	}
	s.Scan(key64(0), 100, func([]byte, uint64) bool { return true })

	// Live sessions must be visible...
	snap := tr.Latencies()
	if snap == nil {
		t.Fatal("Latencies() = nil with LatencyHistograms enabled")
	}
	if got := snap.Class(obs.OpInsert).Total(); got != n {
		t.Fatalf("insert latency count = %d, want %d", got, n)
	}
	if got := snap.Class(obs.OpRead).Total(); got != n {
		t.Fatalf("read latency count = %d, want %d", got, n)
	}
	if got := snap.Class(obs.OpScan).Total(); got != 1 {
		t.Fatalf("scan latency count = %d, want 1", got)
	}
	if p99 := snap.Class(obs.OpRead).Quantile(0.99); p99 <= 0 {
		t.Fatalf("read p99 = %v, want > 0", p99)
	}

	// ...and released sessions must fold into the closed snapshot.
	s.Release()
	snap = tr.Latencies()
	if got := snap.Total(); got != 2*n+1 {
		t.Fatalf("total after release = %d, want %d", got, 2*n+1)
	}
	sum := snap.Summary()
	if _, ok := sum["insert"]; !ok {
		t.Fatal("summary missing insert class")
	}

	// Disabled by default: nil snapshot, near-zero overhead path.
	tr2 := New(DefaultOptions())
	defer tr2.Close()
	if tr2.Latencies() != nil {
		t.Fatal("Latencies() non-nil with histograms disabled")
	}
}

// TestTraceEvents churns a tiny-node tree so SMOs fire, then checks the
// drained stream is ordered and contains the structural kinds.
func TestTraceEvents(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 4
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.TraceRingSize = 4096
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	for i := uint64(0); i < 2000; i++ {
		s.Insert(key64(i), i)
	}

	events := tr.TraceEvents()
	if len(events) == 0 {
		t.Fatal("no trace events after SMO churn")
	}
	kinds := map[obs.EventKind]int{}
	for i, ev := range events {
		kinds[ev.Kind]++
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Fatalf("trace not ordered: seq %d after %d", ev.Seq, events[i-1].Seq)
		}
	}
	if kinds[obs.EvSplit] == 0 {
		t.Fatal("no split events despite tiny nodes")
	}
	if kinds[obs.EvConsolidate] == 0 {
		t.Fatal("no consolidate events despite short chains")
	}

	// Disabled by default.
	tr2 := New(DefaultOptions())
	defer tr2.Close()
	if tr2.TraceEvents() != nil {
		t.Fatal("TraceEvents non-nil with tracing disabled")
	}
}
