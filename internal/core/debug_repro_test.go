package core

import (
	"math/rand"
	"testing"
)

// TestModelSweep replays the random workload and verifies the entire key
// space after every mutation, pinpointing the first corrupting operation.
// It is slower than TestRandomModel but invaluable when that test fails.
func TestModelSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()

			rng := rand.New(rand.NewSource(42))
			model := make(map[uint64]uint64)
			const ops = 4000
			const keySpace = 400
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keySpace)) + 1
				switch rng.Intn(4) {
				case 0:
					if s.Insert(key64(k), k*10) {
						model[k] = k * 10
					}
				case 1:
					s.Delete(key64(k), 0)
					delete(model, k)
				case 2:
					v := uint64(rng.Int63())
					if s.Update(key64(k), v) {
						model[k] = v
					}
				default:
					s.Lookup(key64(k), nil)
				}
				for q := uint64(1); q <= keySpace; q++ {
					want, exists := model[q]
					got := s.Lookup(key64(q), nil)
					if exists && (len(got) != 1 || got[0] != want) {
						t.Fatalf("after op %d (key %d): lookup %d got %v want %d\n%s", i, k, q, got, want, tr.Dump())
					}
					if !exists && len(got) != 0 {
						t.Fatalf("after op %d (key %d): lookup %d got %v want empty\n%s", i, k, q, got, tr.Dump())
					}
				}
			}
		})
	}
}
