package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Tests for the inner-node arena layout (Options.FlatInnerNodes): the
// branch-free window search and the scan-pipelining prefetch.

// TestWindowSearchDifferential is the three-way search differential: for
// random key sets (with and without shared prefixes, with and without a
// leading nil -inf separator) the slice path, the flat-arena path, and
// the branch-free path must return the same position for every (lo, hi,
// strict) window and probe — including probes shorter than the node's
// common prefix and probes outside the key range.
func TestWindowSearchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	// The longer prefixes drive routeSearch's prefix pre-check and leave
	// short suffixes whose first 8 bytes collide often (word-tie
	// fallback); the empty prefix drives the no-pre-check arm.
	prefixes := []string{"", "x", "sep:inner:v1:", "tenant/000042/rack/17/object/"}
	for trial := 0; trial < 120; trial++ {
		pfx := prefixes[rng.Intn(len(prefixes))]
		n := rng.Intn(24) + 1
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("%s%03d", pfx, rng.Intn(300))] = true
		}
		var keys [][]byte
		for k := range set {
			keys = append(keys, []byte(k))
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		if trial%3 == 0 {
			// Leftmost inner base: -inf separator first, which forces
			// pfx = 0 and exercises the nil0 path.
			keys = append([][]byte{nil}, keys...)
		}

		leafD := flatBaseFromKeys(keys) // isLeaf: windowSearch arena arm
		innerD := flatBaseFromKeys(keys)
		innerD.kind, innerD.isLeaf = kInnerBase, false  // branch-free arm
		innerD.sfx = buildSuffixWords(keys, innerD.pfx) // word-plane arm
		innerRaw := flatBaseFromKeys(keys)
		innerRaw.kind, innerRaw.isLeaf = kInnerBase, false // stride / variable-width fallback arms

		probes := [][]byte{[]byte("0"), []byte("zzzz"), []byte(pfx + "150")}
		if len(pfx) > 1 {
			// Shorter than, exactly, and extending the common prefix.
			probes = append(probes, []byte(pfx[:1]), []byte(pfx), []byte(pfx+"~"))
		}
		for _, k := range keys {
			if k == nil {
				continue
			}
			probes = append(probes, k, append(append([]byte(nil), k...), 0))
		}
		for _, p := range probes {
			if len(p) == 0 {
				continue
			}
			for lo := 0; lo <= len(keys); lo++ {
				for hi := lo; hi <= len(keys); hi++ {
					for _, strict := range []bool{false, true} {
						want := windowSearch(keys, nil, nil, 0, p, lo, hi, strict)
						gotLeaf, _ := leafD.flatSearch(p, lo, hi, strict)
						gotInner, _ := innerD.flatSearch(p, lo, hi, strict)
						if gotLeaf != want || gotInner != want {
							t.Fatalf("pfx=%q n=%d probe=%q window [%d,%d) strict=%t: slice %d, flat %d, branch-free %d",
								pfx, len(keys), p, lo, hi, strict, want, gotLeaf, gotInner)
						}
					}
				}
			}
			// routeSearch is the full-window routing probe: same answer as
			// the slice search through the suffix-word plane (innerD —
			// exact-key and key+\x00 probes force word ties, exercising
			// the arena fallback) and through the planeless fixed-stride /
			// variable-width fallbacks (innerRaw).
			for _, strict := range []bool{false, true} {
				want := windowSearch(keys, nil, nil, 0, p, 0, len(keys), strict)
				if got := innerD.routeSearch(p, strict); got != want {
					t.Fatalf("pfx=%q n=%d probe=%q strict=%t: word routeSearch %d, slice %d",
						pfx, len(keys), p, strict, got, want)
				}
				if got := innerRaw.routeSearch(p, strict); got != want {
					t.Fatalf("pfx=%q n=%d probe=%q strict=%t stride=%d: raw routeSearch %d, slice %d",
						pfx, len(keys), p, strict, innerRaw.stride, got, want)
				}
			}
		}
	}
}

// TestBranchFreeSearchPrimitive pins branchFreeSearch directly against
// windowSearch's arena arm on the raw (arena, offs) representation for
// both bound kinds, without flatSearch's prefix pre-check in the way.
func TestBranchFreeSearchPrimitive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(65)
		set := map[string]bool{}
		for len(set) < n {
			set[fmt.Sprintf("%04d", rng.Intn(2000))] = true
		}
		keys := make([][]byte, 0, n)
		for k := range set {
			keys = append(keys, []byte(k))
		}
		sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
		arena, offs, _, stride, _ := buildFlat(keys)

		for probe := 0; probe < 32; probe++ {
			p := []byte(fmt.Sprintf("%04d", rng.Intn(2000)))
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			for limit := 0; limit <= 1; limit++ {
				want := windowSearch(nil, arena, offs, 0, p, lo, hi, limit == 1)
				got := branchFreeSearch(arena, offs, 0, p, lo, hi, limit)
				if got != want {
					t.Fatalf("n=%d probe=%q window [%d,%d) limit=%d: windowSearch %d, branchFreeSearch %d",
						n, p, lo, hi, limit, want, got)
				}
				// The %04d keys are uniform-width, so the fixed-stride
				// variant applies over the full window and must agree.
				if stride != 0 {
					full := windowSearch(nil, arena, offs, 0, p, 0, n, limit == 1)
					if got := strideSearch(arena, stride, 0, n, p, limit); got != full {
						t.Fatalf("n=%d probe=%q limit=%d: windowSearch %d, strideSearch %d",
							n, p, limit, full, got)
					}
				}
			}
		}
	}
}

// TestScanPipelining checks the sibling prefetch end to end: a multi-leaf
// scan with ScanPipelining on visits exactly the same sequence as with it
// off, under both base layouts, and full scans cross enough leaves that
// prefetchRight ran against real siblings.
func TestScanPipelining(t *testing.T) {
	for _, flat := range []bool{true, false} {
		t.Run(fmt.Sprintf("flat=%t", flat), func(t *testing.T) {
			mk := func(pipeline bool) *Tree {
				opts := DefaultOptions()
				opts.FlatBaseNodes = flat
				opts.FlatInnerNodes = flat
				opts.ScanPipelining = pipeline
				opts.LeafNodeSize = 16
				opts.InnerNodeSize = 8
				tr := New(opts)
				s := tr.NewSession()
				defer s.Release()
				for i := 0; i < 2000; i++ {
					s.Insert([]byte(fmt.Sprintf("scan:%05d", i*3)), uint64(i))
				}
				tr.ConsolidateAll()
				return tr
			}
			on := mk(true)
			defer on.Close()
			off := mk(false)
			defer off.Close()

			collect := func(tr *Tree) []string {
				s := tr.NewSession()
				defer s.Release()
				var got []string
				s.Scan([]byte("scan:"), 1<<30, func(k []byte, v uint64) bool {
					got = append(got, fmt.Sprintf("%s=%d", k, v))
					return true
				})
				return got
			}
			a, b := collect(on), collect(off)
			if len(a) != 2000 || len(b) != 2000 {
				t.Fatalf("scan lengths: pipelined %d, plain %d, want 2000", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("item %d: pipelined %q, plain %q", i, a[i], b[i])
				}
			}
		})
	}
}
