package core

import (
	"testing"
)

func loadSeq(t *testing.T, tr *Tree, n uint64, stride uint64) {
	t.Helper()
	i := uint64(0)
	err := tr.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= n {
			return nil, 0, false
		}
		k := key64(i * stride)
		v := i
		i++
		return k, v, true
	})
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
}

func TestBulkLoadBasic(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	const n = 100000
	loadSeq(t, tr, n, 2)
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(0); i < n; i += 111 {
		got := s.Lookup(key64(i*2), nil)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("lookup %d: %v", i*2, got)
		}
		if got := s.Lookup(key64(i*2+1), nil); len(got) != 0 {
			t.Fatalf("phantom %d", i*2+1)
		}
	}
	if got := tr.Count(); got != n {
		t.Fatalf("count %d", got)
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	tr := New(opts)
	defer tr.Close()
	const n = 20000
	loadSeq(t, tr, n, 2)
	s := tr.NewSession()
	defer s.Release()
	// Inserts into the gaps, deletes, updates — the loaded tree must be a
	// fully functional tree, splitting as it grows.
	for i := uint64(0); i < n; i += 2 {
		if !s.Insert(key64(i*2+1), i) {
			t.Fatalf("insert %d failed", i*2+1)
		}
	}
	for i := uint64(0); i < n; i += 4 {
		if !s.Delete(key64(i*2), 0) {
			t.Fatalf("delete %d failed", i*2)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := tr.Count(); got != n+n/2-n/4 {
		t.Fatalf("count %d want %d", got, n+n/2-n/4)
	}
}

func TestBulkLoadTiny(t *testing.T) {
	for _, n := range []uint64{0, 1, 2, 5} {
		tr := New(DefaultOptions())
		loadSeq(t, tr, n, 1)
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d validate: %v", n, err)
		}
		if got := tr.Count(); got != int(n) {
			t.Fatalf("n=%d count %d", n, got)
		}
		tr.Close()
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	s.Insert(key64(1), 1)
	s.Release()
	err := tr.BulkLoad(func() ([]byte, uint64, bool) { return nil, 0, false })
	if err != ErrNotEmpty {
		t.Fatalf("err %v", err)
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	seq := [][]byte{key64(5), key64(3)}
	i := 0
	err := tr.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= len(seq) {
			return nil, 0, false
		}
		k := seq[i]
		i++
		return k, 0, true
	})
	if err == nil {
		t.Fatal("unsorted load accepted")
	}
	// Duplicates rejected in unique mode.
	tr2 := New(DefaultOptions())
	defer tr2.Close()
	i = 0
	seq = [][]byte{key64(5), key64(5)}
	if err := tr2.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= len(seq) {
			return nil, 0, false
		}
		k := seq[i]
		i++
		return k, 0, true
	}); err == nil {
		t.Fatal("duplicate load accepted in unique mode")
	}
}

func TestBulkLoadNonUniqueDuplicateRuns(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.LeafNodeSize = 8
	tr := New(opts)
	defer tr.Close()
	// Long duplicate runs crossing would-be leaf boundaries.
	type kv struct {
		k uint64
		v uint64
	}
	var items []kv
	for k := uint64(1); k <= 40; k++ {
		for v := uint64(0); v < 20; v++ {
			items = append(items, kv{k, v})
		}
	}
	i := 0
	err := tr.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= len(items) {
			return nil, 0, false
		}
		it := items[i]
		i++
		return key64(it.k), it.v, true
	})
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	s := tr.NewSession()
	defer s.Release()
	for k := uint64(1); k <= 40; k++ {
		got := s.Lookup(key64(k), nil)
		if len(got) != 20 {
			t.Fatalf("key %d: %d values", k, len(got))
		}
	}
}

func TestCompactShrinksMappingTable(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if i%10 != 0 {
			s.Delete(key64(i), 0)
		}
	}
	s.Release()

	ct, err := tr.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	defer ct.Close()
	if err := ct.Validate(); err != nil {
		t.Fatalf("validate compacted: %v", err)
	}
	if got, want := ct.Count(), tr.Count(); got != want {
		t.Fatalf("compacted count %d, original %d", got, want)
	}
	cs := ct.NewSession()
	defer cs.Release()
	for i := uint64(0); i < n; i += 10 {
		got := cs.Lookup(key64(i), nil)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("compacted lookup %d: %v", i, got)
		}
	}
	if ct.MappingEntries() >= tr.MappingEntries() {
		t.Fatalf("compaction did not shrink mapping: %d -> %d",
			tr.MappingEntries(), ct.MappingEntries())
	}
}
