package core

// StructureStats summarizes the tree's physical shape: average delta chain
// lengths, base node sizes, and pre-allocation utilization — the
// quantities reported in Table 2 of the paper (IDCL, LDCL, INS, LNS, IPU,
// LPU) — plus memory-footprint metrics for the base-node key layout
// (FlatBaseNodes). Collect with Tree.StructureStats on a quiescent tree.
type StructureStats struct {
	InnerNodes int
	LeafNodes  int
	Height     int

	AvgInnerChainLen float64 // IDCL
	AvgLeafChainLen  float64 // LDCL
	AvgInnerNodeSize float64 // INS (separator items per inner base)
	AvgLeafNodeSize  float64 // LNS (key-value items per leaf base)
	InnerPreallocUse float64 // IPU (fraction of slab slots claimed)
	LeafPreallocUse  float64 // LPU

	// Memory-footprint metrics (flat base-node layout):

	// FlatBases counts base nodes stored in the flat arena layout.
	FlatBases int
	// ArenaBytes is the total footprint of flat key storage: arena bytes
	// plus 4 bytes per offset-array entry.
	ArenaBytes int64
	// InnerFlatBases / InnerArenaBytes are the inner-node share of the
	// two totals above (FlatInnerNodes); the leaf share is the difference.
	InnerFlatBases  int
	InnerArenaBytes int64
	// KeyBytes is the total key payload across all base nodes (both
	// layouts), excluding per-key slice headers and offset arrays.
	KeyBytes int64
	// GCPtrsPerLeaf / GCPtrsPerInner are the average GC-visible payload
	// pointers per base node: what Go's collector must trace to mark the
	// node's keys and values/children. The slice layout costs 2 + one
	// pointer per key; the flat layout costs a constant 3 (arena, offsets,
	// vals/kids).
	GCPtrsPerLeaf  float64
	GCPtrsPerInner float64
	// LeafBytesPerEntry is average key+value payload bytes per leaf item.
	LeafBytesPerEntry float64
}

// StructureStats walks the tree and aggregates shape statistics. The walk
// holds an epoch pin so concurrently retired chains stay safe to read,
// but the numbers are only exact on a quiescent tree.
func (t *Tree) StructureStats() StructureStats {
	var st StructureStats
	var innerChain, leafChain, innerSize, leafSize float64
	var innerSlabUsed, innerSlabCap, leafSlabUsed, leafSlabCap float64
	var leafPtrs, innerPtrs float64
	var leafItems, leafPayload int64
	s := t.NewSession()
	defer s.Release()
	s.h.Enter()
	defer s.h.Exit()

	// footprint accumulates the layout metrics for one base node and
	// returns its GC-visible payload pointer count.
	footprint := func(base *delta) float64 {
		n := base.baseLen()
		if base.offs != nil {
			st.FlatBases++
			fb := int64(len(base.arena)) + 4*int64(len(base.offs)) + 8*int64(len(base.sfx))
			st.ArenaBytes += fb
			st.KeyBytes += int64(len(base.arena))
			if !base.isLeaf {
				st.InnerFlatBases++
				st.InnerArenaBytes += fb
			}
			if base.sfx != nil {
				return 4 // arena, offs, sfx, kids
			}
			return 3 // arena, offs, vals-or-kids
		}
		for i := 0; i < n; i++ {
			st.KeyBytes += int64(len(base.keys[i]))
		}
		return float64(2 + n) // keys header, per-key data pointers, vals-or-kids
	}

	var walk func(id nodeID, depth int)
	walk = func(id nodeID, depth int) {
		head := t.load(id)
		if head == nil {
			return
		}
		if depth+1 > st.Height {
			st.Height = depth + 1
		}
		base := head.base
		if head.isLeaf {
			st.LeafNodes++
			leafChain += float64(head.depth)
			n := base.baseLen()
			leafSize += float64(n)
			leafItems += int64(n)
			before := st.KeyBytes
			leafPtrs += footprint(base)
			leafPayload += st.KeyBytes - before + 8*int64(n)
			if base.slab != nil {
				leafSlabUsed += float64(base.slab.used())
				leafSlabCap += float64(len(base.slab.slots))
			}
			return
		}
		st.InnerNodes++
		innerChain += float64(head.depth)
		innerSize += float64(base.baseLen())
		innerPtrs += footprint(base)
		if base.slab != nil {
			innerSlabUsed += float64(base.slab.used())
			innerSlabCap += float64(len(base.slab.slots))
		}
		c := s.collect(head)
		for _, kid := range c.kids {
			walk(kid, depth+1)
		}
	}
	walk(t.root, 0)

	if st.InnerNodes > 0 {
		st.AvgInnerChainLen = innerChain / float64(st.InnerNodes)
		st.AvgInnerNodeSize = innerSize / float64(st.InnerNodes)
		st.GCPtrsPerInner = innerPtrs / float64(st.InnerNodes)
	}
	if st.LeafNodes > 0 {
		st.AvgLeafChainLen = leafChain / float64(st.LeafNodes)
		st.AvgLeafNodeSize = leafSize / float64(st.LeafNodes)
		st.GCPtrsPerLeaf = leafPtrs / float64(st.LeafNodes)
	}
	if leafItems > 0 {
		st.LeafBytesPerEntry = float64(leafPayload) / float64(leafItems)
	}
	if innerSlabCap > 0 {
		st.InnerPreallocUse = innerSlabUsed / innerSlabCap
	}
	if leafSlabCap > 0 {
		st.LeafPreallocUse = leafSlabUsed / leafSlabCap
	}
	return st
}
