package core

// StructureStats summarizes the tree's physical shape: average delta chain
// lengths, base node sizes, and pre-allocation utilization — the
// quantities reported in Table 2 of the paper (IDCL, LDCL, INS, LNS, IPU,
// LPU). Collect with Tree.StructureStats on a quiescent tree.
type StructureStats struct {
	InnerNodes int
	LeafNodes  int
	Height     int

	AvgInnerChainLen float64 // IDCL
	AvgLeafChainLen  float64 // LDCL
	AvgInnerNodeSize float64 // INS (separator items per inner base)
	AvgLeafNodeSize  float64 // LNS (key-value items per leaf base)
	InnerPreallocUse float64 // IPU (fraction of slab slots claimed)
	LeafPreallocUse  float64 // LPU
}

// StructureStats walks the tree and aggregates shape statistics.
// Quiescent use only.
func (t *Tree) StructureStats() StructureStats {
	var st StructureStats
	var innerChain, leafChain, innerSize, leafSize float64
	var innerSlabUsed, innerSlabCap, leafSlabUsed, leafSlabCap float64
	s := t.NewSession()
	defer s.Release()

	var walk func(id nodeID, depth int)
	walk = func(id nodeID, depth int) {
		head := t.load(id)
		if head == nil {
			return
		}
		if depth+1 > st.Height {
			st.Height = depth + 1
		}
		base := head.base
		if head.isLeaf {
			st.LeafNodes++
			leafChain += float64(head.depth)
			leafSize += float64(len(base.keys))
			if base.slab != nil {
				leafSlabUsed += float64(base.slab.used())
				leafSlabCap += float64(len(base.slab.slots))
			}
			return
		}
		st.InnerNodes++
		innerChain += float64(head.depth)
		innerSize += float64(len(base.keys))
		if base.slab != nil {
			innerSlabUsed += float64(base.slab.used())
			innerSlabCap += float64(len(base.slab.slots))
		}
		c := s.collect(head)
		for _, kid := range c.kids {
			walk(kid, depth+1)
		}
	}
	walk(t.root, 0)

	if st.InnerNodes > 0 {
		st.AvgInnerChainLen = innerChain / float64(st.InnerNodes)
		st.AvgInnerNodeSize = innerSize / float64(st.InnerNodes)
	}
	if st.LeafNodes > 0 {
		st.AvgLeafChainLen = leafChain / float64(st.LeafNodes)
		st.AvgLeafNodeSize = leafSize / float64(st.LeafNodes)
	}
	if innerSlabCap > 0 {
		st.InnerPreallocUse = innerSlabUsed / innerSlabCap
	}
	if leafSlabCap > 0 {
		st.LeafPreallocUse = leafSlabUsed / leafSlabCap
	}
	return st
}
