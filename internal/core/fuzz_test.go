package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"
	"testing"
)

// FuzzTreeVsModel replays a byte-encoded operation stream against both
// the tree and a reference map model and fails on any divergence. The
// stream drives every public operation — insert, delete, update, lookup,
// scan — plus the batched entry points, in unique and non-unique mode
// and under both GC schemes, on a tree with tiny nodes so a few hundred
// keys force splits, merges, and consolidations.
//
// Stream format: byte 0 is a config header (bit 0 non-unique, bit 1
// centralized GC); the rest is a sequence of operations, each one opcode
// byte followed by its operands (see fuzzStep). Truncated operands end
// the stream.
func FuzzTreeVsModel(f *testing.F) {
	f.Add([]byte{0x00})
	// A little of everything, unique + decentralized.
	f.Add(fuzzSeed(0x00))
	// Non-unique + centralized, and the two mixed combinations.
	f.Add(fuzzSeed(0x03))
	f.Add(fuzzSeed(0x01))
	f.Add(fuzzSeed(0x02))
	// The four leaf × inner layout combinations (bits 2 and 3 are
	// inverted: set means slice). 0x00 above is flat/flat.
	f.Add(fuzzSeed(0x04)) // slice leaf, flat inner
	f.Add(fuzzSeed(0x08)) // flat leaf, slice inner
	f.Add(fuzzSeed(0x0C)) // slice leaf, slice inner
	f.Add(fuzzSeed(0x0D)) // slice/slice + non-unique
	f.Fuzz(func(t *testing.T, data []byte) {
		runFuzzStream(t, data)
	})
}

// fuzzSeed builds a deterministic seed stream under config header hdr:
// enough inserts to split leaves, then a mix of every opcode.
func fuzzSeed(hdr byte) []byte {
	s := []byte{hdr}
	put := func(bs ...byte) { s = append(s, bs...) }
	for i := 0; i < 120; i++ {
		k := i * 7 % 512
		put(0, byte(k>>8), byte(k), byte(i)) // insert
	}
	for i := 0; i < 60; i++ {
		k := i * 11 % 512
		switch i % 5 {
		case 0:
			put(1, byte(k>>8), byte(k), byte(i)) // delete
		case 1:
			put(2, byte(k>>8), byte(k), byte(i)) // update
		case 2:
			put(3, byte(k>>8), byte(k)) // lookup
		case 3:
			put(4, byte(k>>8), byte(k), 17) // scan
		case 4:
			put(5, 3, // insert-batch of 4
				byte(k>>8), byte(k), byte(i),
				byte(k>>8), byte(k), byte(i+1),
				0, byte(i), byte(i),
				1, byte(i), byte(i))
		}
	}
	put(7, 3, 0, 1, 0, 2, 0, 3, 0, 4) // lookup-batch
	put(6, 1, 0, 1, 5, 0, 2, 6)       // delete-batch
	return s
}

// fuzzModel is the reference: key bytes -> set of values. Unique mode
// keeps each set at size <= 1.
type fuzzModel struct {
	nonUnique bool
	m         map[string]map[uint64]bool
}

func (fm *fuzzModel) insert(k string, v uint64) bool {
	set := fm.m[k]
	if fm.nonUnique {
		if set[v] {
			return false
		}
	} else if len(set) > 0 {
		return false
	}
	if set == nil {
		set = make(map[uint64]bool)
		fm.m[k] = set
	}
	set[v] = true
	return true
}

func (fm *fuzzModel) delete(k string, v uint64) bool {
	set := fm.m[k]
	if fm.nonUnique {
		if !set[v] {
			return false
		}
		delete(set, v)
	} else {
		if len(set) == 0 {
			return false
		}
		clear(set)
	}
	if len(set) == 0 {
		delete(fm.m, k)
	}
	return true
}

func (fm *fuzzModel) vals(k string) []uint64 {
	var out []uint64
	for v := range fm.m[k] {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// pairs returns every (key, value) with key >= start, ordered by key
// (values within a key sorted for comparison purposes).
func (fm *fuzzModel) pairs(start string) (keys []string, count int) {
	for k := range fm.m {
		if k >= start {
			keys = append(keys, k)
			count += len(fm.m[k])
		}
	}
	slices.Sort(keys)
	return keys, count
}

// fuzzKey maps a 16-bit key id to its byte-string form. Ids divisible by
// five get a suffix byte so the key set exercises prefix ordering.
func fuzzKey(id uint16) []byte {
	id %= 512
	var b [3]byte
	binary.BigEndian.PutUint16(b[:2], id)
	if id%5 == 0 {
		b[2] = byte(id)
		return b[:3]
	}
	return b[:2]
}

const fuzzMaxBatch = 8

func runFuzzStream(t *testing.T, data []byte) {
	if len(data) == 0 {
		return
	}
	hdr := data[0]
	data = data[1:]
	opts := DefaultOptions()
	opts.NonUnique = hdr&1 != 0
	if hdr&2 != 0 {
		opts.GC = GCCentralized
	}
	// Bits 2 and 3 select the slice layout per level, so most of the
	// existing corpus (arbitrary header bytes) exercises both flat
	// layouts; all four leaf × inner combinations are reachable.
	opts.FlatBaseNodes = hdr&4 == 0
	opts.FlatInnerNodes = hdr&8 == 0
	opts.ScanPipelining = opts.anyFlatNodes()
	// Tiny nodes and short chains so a 512-key space drives splits,
	// merges, and consolidations.
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2

	tree := New(opts)
	defer tree.Close()
	s := tree.NewSession()
	defer s.Release()
	fm := &fuzzModel{nonUnique: opts.NonUnique, m: make(map[string]map[uint64]bool)}

	for len(data) > 0 {
		var ok bool
		data, ok = fuzzStep(t, s, fm, data)
		if !ok {
			return
		}
	}

	// Final sweep: the tree and the model must agree on every key the
	// stream ever touched (misses included, via the full id space) and on
	// a full scan.
	for id := uint16(0); id < 512; id++ {
		k := fuzzKey(id)
		checkLookup(t, fm, string(k), s.Lookup(k, nil))
	}
	checkScan(t, s, fm, []byte{0}, 1<<30)
}

// fuzzStep decodes and executes one operation, returning the remaining
// stream. A truncated operand list ends the stream (ok=false) without
// failing.
func fuzzStep(t *testing.T, s *Session, fm *fuzzModel, data []byte) (rest []byte, ok bool) {
	op := data[0] % 8
	data = data[1:]
	need := func(n int) bool { return len(data) >= n }
	switch op {
	case 0, 1, 2: // insert / delete / update: key(2) value(1)
		if !need(3) {
			return nil, false
		}
		k := fuzzKey(binary.BigEndian.Uint16(data[:2]))
		v := uint64(data[2])
		data = data[3:]
		ks := string(k)
		switch op {
		case 0:
			if got, want := s.Insert(k, v), fm.insert(ks, v); got != want {
				t.Fatalf("Insert(%x, %d) = %v, model %v", k, v, got, want)
			}
		case 1:
			if got, want := s.Delete(k, v), fm.delete(ks, v); got != want {
				t.Fatalf("Delete(%x, %d) = %v, model %v", k, v, got, want)
			}
		case 2:
			if fm.nonUnique {
				// Non-unique Update replaces an unspecified visible pair;
				// use the exact-pair UpdateValue so the model stays
				// deterministic.
				want := fm.m[ks][v]
				if want {
					fm.delete(ks, v)
					fm.insert(ks, v+1)
				}
				if got := s.UpdateValue(k, v, v+1); got != want {
					t.Fatalf("UpdateValue(%x, %d, %d) = %v, model %v", k, v, v+1, got, want)
				}
			} else {
				want := len(fm.m[ks]) > 0
				if want {
					clear(fm.m[ks])
					fm.m[ks][v] = true
				}
				if got := s.Update(k, v); got != want {
					t.Fatalf("Update(%x, %d) = %v, model %v", k, v, got, want)
				}
			}
		}
	case 3: // lookup: key(2)
		if !need(2) {
			return nil, false
		}
		k := fuzzKey(binary.BigEndian.Uint16(data[:2]))
		data = data[2:]
		checkLookup(t, fm, string(k), s.Lookup(k, nil))
	case 4: // scan: start(2) count(1)
		if !need(3) {
			return nil, false
		}
		k := fuzzKey(binary.BigEndian.Uint16(data[:2]))
		n := int(data[2]%32) + 1
		data = data[3:]
		checkScan(t, s, fm, k, n)
	case 5, 6: // insert-batch / delete-batch: m(1) then m x key(2) value(1)
		if !need(1) {
			return nil, false
		}
		m := int(data[0]%fuzzMaxBatch) + 1
		data = data[1:]
		if !need(3 * m) {
			return nil, false
		}
		keys := make([][]byte, m)
		vals := make([]uint64, m)
		for i := 0; i < m; i++ {
			keys[i] = fuzzKey(binary.BigEndian.Uint16(data[:2]))
			vals[i] = uint64(data[2])
			data = data[3:]
		}
		// Per-key results are order-independent across distinct keys, and
		// the batch is stable for equal keys, so the model applies the
		// pairs in submission order.
		want := make([]bool, m)
		for i := range keys {
			if op == 5 {
				want[i] = fm.insert(string(keys[i]), vals[i])
			} else {
				want[i] = fm.delete(string(keys[i]), vals[i])
			}
		}
		var got []bool
		if op == 5 {
			got = s.InsertBatch(keys, vals, nil)
		} else {
			got = s.DeleteBatch(keys, vals, nil)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch op %d [%d](%x, %d) = %v, model %v", op, i, keys[i], vals[i], got[i], want[i])
			}
		}
	case 7: // lookup-batch: m(1) then m x key(2)
		if !need(1) {
			return nil, false
		}
		m := int(data[0]%fuzzMaxBatch) + 1
		data = data[1:]
		if !need(2 * m) {
			return nil, false
		}
		keys := make([][]byte, m)
		for i := 0; i < m; i++ {
			keys[i] = fuzzKey(binary.BigEndian.Uint16(data[:2]))
			data = data[2:]
		}
		visited := make([]bool, m)
		s.LookupBatch(keys, func(i int, vals []uint64) {
			if visited[i] {
				t.Fatalf("LookupBatch visited %d twice", i)
			}
			visited[i] = true
			checkLookup(t, fm, string(keys[i]), vals)
		})
		for i, v := range visited {
			if !v {
				t.Fatalf("LookupBatch skipped index %d", i)
			}
		}
	}
	return data, true
}

func checkLookup(t *testing.T, fm *fuzzModel, k string, got []uint64) {
	t.Helper()
	gs := append([]uint64(nil), got...)
	slices.Sort(gs)
	want := fm.vals(k)
	if !slices.Equal(gs, want) {
		t.Fatalf("Lookup(%x) = %v, model %v", k, gs, want)
	}
}

// checkScan verifies a scan of up to n pairs from start: the visit count
// must match the model, keys must be non-decreasing, and every visited
// pair must exist in the model. Within-key value order is unspecified,
// so pairs are checked by membership plus a no-duplicates rule.
func checkScan(t *testing.T, s *Session, fm *fuzzModel, start []byte, n int) {
	t.Helper()
	_, total := fm.pairs(string(start))
	wantCount := min(n, total)
	seen := make(map[string]bool)
	var prev []byte
	count := s.Scan(start, n, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(k, prev) < 0 {
			t.Fatalf("scan went backwards: %x after %x", k, prev)
		}
		prev = append(prev[:0], k...)
		if !fm.m[string(k)][v] {
			t.Fatalf("scan visited (%x, %d) not in model", k, v)
		}
		pk := fmt.Sprintf("%x/%d", k, v)
		if seen[pk] {
			t.Fatalf("scan visited (%x, %d) twice", k, v)
		}
		seen[pk] = true
		return true
	})
	if count != wantCount || len(seen) != wantCount {
		t.Fatalf("Scan(%x, %d) visited %d (%d distinct), model %d", start, n, count, len(seen), wantCount)
	}
}
