package core

import (
	"bytes"
	"runtime"

	"repro/internal/obs"
)

// split performs the three-stage node split of Appendix A.1 on a node
// whose consolidated content c exceeds the maximum node size.
//
//	Stage I:   materialize the upper half as a new base node and publish
//	           it in the mapping table under a fresh logical ID.
//	Stage II:  append a ∆split to the node, shrinking its key range to
//	           [lowKey, splitKey) and pointing its right-sibling link at
//	           the new node ("half-split").
//	Stage III: post the ∆separator to the parent so the new node becomes
//	           reachable without chasing sibling links.
//
// The root is handled by splitRoot: it is replaced wholesale, so split
// deltas never appear on the root.
func (s *Session) split(id nodeID, head *delta, c collected, parentID nodeID, parentHead *delta) {
	t := s.t
	if id == t.root {
		s.splitRoot(head, c)
		return
	}
	mid, ok := splitPoint(c.keys)
	if !ok {
		// Every key is identical (non-unique pile-up): splitting is
		// impossible, so install the oversized base and move on.
		nb := s.buildBase(c, head)
		if t.cas(id, head, nb) {
			s.stats.consolidations.Add(1)
			s.emit(obs.EvConsolidate, id, uint64(head.depth), uint64(nb.size))
			s.retireChain(head)
		} else {
			s.stats.casFailures.Add(1)
		}
		return
	}
	splitKey := c.keys[mid]
	if t.opts.anyFlatNodes() {
		// c.keys may alias the retired chain's arena; the split key
		// outlives it as node bounds and separator keys.
		splitKey = cloneBound(splitKey)
	}

	// Stage I: the new right sibling.
	rid := t.mt.Allocate()
	right := s.buildBase(collected{
		keys: c.keys[mid:], vals: sliceVals(c.vals, mid), vers: sliceVals(c.vers, mid), kids: sliceKids(c.kids, mid), leaf: c.leaf,
	}, head)
	right.lowKey = splitKey
	schedPoint(SPSplitPublish, id, rid, splitKey)
	t.mt.Store(rid, right)

	// Stage II: the ∆split.
	sd := &delta{kind: kSplit}
	sd.inheritFrom(head)
	sd.key = splitKey
	sd.child = rid
	sd.nextKey = head.highKey
	sd.highKey = splitKey
	sd.rightSib = rid
	sd.size = int32(mid)
	sd.offset = -1
	schedPoint(SPSplitDelta, id, rid, splitKey)
	if !t.cas(id, head, sd) {
		// Nobody has seen rid; recycle it immediately.
		t.mt.Recycle(rid)
		s.stats.casFailures.Add(1)
		return
	}
	s.stats.splits.Add(1)
	s.emit(obs.EvSplit, id, rid, uint64(mid))

	// Stage III: make the new node reachable from the parent.
	s.postSeparator(splitKey, rid, sd.nextKey, id, parentID, parentHead, c.leaf)

	// Fold the left half into a consolidated base. Failure just means a
	// concurrent append; a later consolidation will fold the split.
	left := s.buildBase(collected{
		keys: c.keys[:mid], vals: sliceVals(c.vals, -mid), vers: sliceVals(c.vers, -mid), kids: sliceKids(c.kids, -mid), leaf: c.leaf,
	}, head)
	left.highKey = splitKey
	left.rightSib = rid
	schedPoint(SPSplitLeftFold, id, rid, nil)
	if t.cas(id, sd, left) {
		s.stats.consolidations.Add(1)
		s.retireChain(head)
	}
}

// sliceVals returns vals[mid:] for mid >= 0 or vals[:-mid] for mid < 0,
// tolerating nil slices (inner nodes have no vals; leaves have no kids).
func sliceVals(vals []uint64, mid int) []uint64 {
	if vals == nil {
		return nil
	}
	if mid >= 0 {
		return vals[mid:]
	}
	return vals[:-mid]
}

func sliceKids(kids []nodeID, mid int) []nodeID {
	if kids == nil {
		return nil
	}
	if mid >= 0 {
		return kids[mid:]
	}
	return kids[:-mid]
}

// splitPoint picks the middle position whose key differs from its left
// neighbour, so equal keys (non-unique mode) never straddle a split.
func splitPoint(keys [][]byte) (int, bool) {
	n := len(keys)
	mid := n / 2
	for i := mid; i < n; i++ {
		if !bytes.Equal(keys[i], keys[i-1]) {
			return i, true
		}
	}
	for i := mid - 1; i > 0; i-- {
		if !bytes.Equal(keys[i], keys[i-1]) {
			return i, true
		}
	}
	return 0, false
}

// splitRoot replaces an oversized root with a new root over two fresh
// halves in a single CaS on the root's mapping entry. The root keeps its
// logical ID forever, so no other node's routing is affected.
func (s *Session) splitRoot(head *delta, c collected) {
	t := s.t
	mid, ok := splitPoint(c.keys)
	if !ok {
		return
	}
	splitKey := c.keys[mid]
	if t.opts.anyFlatNodes() {
		splitKey = cloneBound(splitKey)
	}
	lid, rid := t.mt.Allocate(), t.mt.Allocate()

	left := s.buildBase(collected{
		keys: c.keys[:mid], vals: sliceVals(c.vals, -mid), vers: sliceVals(c.vers, -mid), kids: sliceKids(c.kids, -mid), leaf: c.leaf,
	}, head)
	left.highKey = splitKey
	left.rightSib = rid
	right := s.buildBase(collected{
		keys: c.keys[mid:], vals: sliceVals(c.vals, mid), vers: sliceVals(c.vers, mid), kids: sliceKids(c.kids, mid), leaf: c.leaf,
	}, head)
	right.lowKey = splitKey
	t.mt.Store(lid, left)
	t.mt.Store(rid, right)

	newRoot := &delta{
		kind:     kInnerBase,
		size:     2,
		rightSib: invalidNode,
		kids:     []nodeID{lid, rid},
	}
	t.setBaseKeys(newRoot, [][]byte{nil, splitKey})
	newRoot.base = newRoot
	if s.t.opts.Preallocate {
		newRoot.slab = s.t.getSlab(false)
	}
	schedPoint(SPSplitRoot, t.root, rid, splitKey)
	if !t.cas(t.root, head, newRoot) {
		t.mt.Recycle(lid)
		t.mt.Recycle(rid)
		s.stats.casFailures.Add(1)
		return
	}
	s.stats.splits.Add(1)
	s.emit(obs.EvSplit, t.root, rid, uint64(mid))
	s.retireChain(head)
}

// postSeparator publishes the (splitKey → rightID) separator in the
// parent, retrying with fresh parent discovery until it lands or is found
// already present. Giving up is safe — the new node stays reachable via
// the sibling link — but each retry re-descends from the root, so in
// practice the loop finishes in one or two rounds.
func (s *Session) postSeparator(splitKey []byte, rightID nodeID, nextKey []byte, leftID, parentID nodeID, parentHead *delta, childIsLeaf bool) {
	const maxAttempts = 64
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if parentID != invalidNode && parentHead != nil {
			if s.completeSplitParts(parentID, parentHead, splitKey, rightID, nextKey, childIsLeaf) {
				return
			}
		}
		schedPoint(SPSepRetry, leftID, rightID, splitKey)
		parentID, parentHead = invalidNode, nil
		pid, phead, done, ok := s.findParent(splitKey, leftID, rightID)
		if done {
			return
		}
		if ok {
			parentID, parentHead = pid, phead
			continue
		}
		s.stats.aborts.Add(1)
		runtime.Gosched()
	}
}

// findParent descends from the root looking for the inner node that
// currently routes splitKey to leftID (the unposted-parent) or rightID
// (separator already posted; done=true).
func (s *Session) findParent(splitKey []byte, leftID, rightID nodeID) (nodeID, *delta, bool, bool) {
	t := s.t
	id := t.root
	for hops := 0; hops < maxTraversalHops; hops++ {
		head := t.load(id)
		if head == nil || head.kind == kAbort || head.kind == kRemove {
			return 0, nil, false, false
		}
		if head.isLeaf {
			return 0, nil, false, false
		}
		if head.highKey != nil && keyGE(splitKey, head.highKey) {
			if head.rightSib == invalidNode {
				return 0, nil, false, false
			}
			id = head.rightSib
			continue
		}
		child, ok := s.routeInner(head, splitKey)
		if !ok {
			return 0, nil, false, false
		}
		switch child {
		case rightID:
			return 0, nil, true, false
		case leftID:
			return id, head, false, true
		}
		id = child
	}
	return 0, nil, false, false
}

// completeSplitParts posts a ∆separator (sepKey → child, bounded by
// nextKey) into the parent if absent. Reports success (posted, already
// present, or moot); false means the snapshot went stale and the caller
// must rediscover the parent. childIsLeaf is the level of the node the
// separator routes to, used to recognize ID reuse.
func (s *Session) completeSplitParts(parentID nodeID, parentHead *delta, sepKey []byte, child nodeID, nextKey []byte, childIsLeaf bool) bool {
	if got, ok := s.routeInner(parentHead, sepKey); ok && got == child {
		return true
	}
	if parentHead.highKey != nil && keyGE(sepKey, parentHead.highKey) {
		return false
	}
	switch parentHead.kind {
	case kAbort, kRemove:
		return false
	}
	if smoRaceGuards {
		// Liveness guard (fix for the unposted-separator race, mode b):
		// a delayed Stage III must never post a separator for a node
		// that has meanwhile been merged away — the victim's ID may
		// already be recycled (nil mapping entry, or reused by an
		// unrelated node), and the post would install a permanently
		// dangling route that wedges every traversal of the range. The
		// node is gone exactly when its mapping entry is nil, carries a
		// ∆remove, or no longer matches the split that created it
		// (different low key or level after ID reuse). Declaring the
		// post moot is safe: a separator's only job is reachability,
		// and the node no longer exists to be reached.
		//
		// The check is not a racy best-effort: any merge that removes
		// child must first ∆abort-lock and then ∆separator-delete the
		// one inner node currently routing child's low key — the same
		// node this post is about to CaS. Either the load below already
		// sees the ∆remove, or the merge's parent update invalidates
		// parentHead and the CaS fails into rediscovery.
		ch := s.t.load(child)
		if ch == nil || ch.kind == kRemove ||
			ch.isLeaf != childIsLeaf || !sameKey(ch.lowKey, sepKey) {
			return true
		}
	}
	sep := s.allocDelta(parentHead)
	if sep == nil {
		// Parent slab exhausted: consolidate it, then rediscover.
		s.stats.slabFull.Add(1)
		s.consolidateID(parentID, parentHead, invalidNode, nil)
		return false
	}
	sep.inheritFrom(parentHead)
	sep.kind = kInnerInsert
	sep.size = parentHead.size + 1
	sep.key = sepKey
	sep.child = child
	sep.nextKey = nextKey
	sep.offset = -1
	schedPoint(SPSepPost, parentID, child, sepKey)
	if !s.t.cas(parentID, parentHead, sep) {
		s.stats.casFailures.Add(1)
		return false
	}
	s.maybeConsolidate(parentID, sep)
	return true
}

// tryMerge initiates the node-merge SMO of Appendix A.2, serialized on the
// parent with the ∆abort protocol of Appendix B:
//
//	Stage 0:   write-lock the parent by appending a ∆abort.
//	Stage I:   append a ∆remove to the victim, diverting all traffic to
//	           the left sibling.
//	Stage II:  append a ∆merge to the left sibling, absorbing the
//	           victim's content.
//	Stage III: replace the ∆abort with a ∆separator-delete in one CaS,
//	           removing the victim from the parent and unlocking it.
//
// Failure before Stage I unwinds by removing the ∆abort; failure is
// impossible afterwards because the parent lock stabilizes both siblings.
func (s *Session) tryMerge(parentID nodeID, parentHead *delta, id nodeID, head *delta) {
	t := s.t
	if id == t.root || head.lowKey == nil {
		return
	}
	// The victim must not be its parent's leftmost child: merging is only
	// allowed into a left sibling under the same parent.
	if sameKey(head.lowKey, parentHead.lowKey) {
		return
	}
	switch parentHead.kind {
	case kAbort, kRemove:
		return
	}

	// Stage 0: lock the parent.
	ab := &delta{kind: kAbort}
	ab.inheritFrom(parentHead)
	schedPoint(SPMergeLock, parentID, id, head.lowKey)
	if !t.cas(parentID, parentHead, ab) {
		s.stats.casFailures.Add(1)
		return
	}
	unlock := func() {
		schedPoint(SPMergeUnlock, parentID, id, nil)
		if !t.cas(parentID, ab, parentHead) {
			panic("core: lost ∆abort ownership")
		}
	}

	// Stage I: remove the victim. Reload: deltas may have landed since
	// consolidation; if the node regrew past the merge threshold, or is
	// itself mid-SMO, abandon.
	h := t.load(id)
	if h == nil {
		unlock()
		return
	}
	switch h.kind {
	case kRemove, kAbort, kSplit:
		unlock()
		return
	}
	mergeSize := s.t.opts.InnerMergeSize
	if h.isLeaf {
		mergeSize = s.t.opts.LeafMergeSize
	}
	if int(h.size) >= mergeSize {
		unlock()
		return
	}
	if smoRaceGuards {
		// Routing guard (fix for the unposted-separator race, mode a):
		// a node is mergeable only if the parent actually routes its
		// low key to it — i.e. the separator created with it has been
		// posted. A half-split's right sibling is reachable through
		// sibling links alone while its split's Stage III is still in
		// flight, and a traversal that chased into it hands tryMerge a
		// parent that has never heard of it. Merging it would post a
		// ∆separator-delete for a separator that does not exist
		// (undercounting the parent's size attribute — the lost-∆delete
		// validation failure) and leave the late separator post to
		// resurrect a route to the recycled victim (the all-workers
		// wedge). The parent's chain is frozen under our ∆abort, so
		// routing parentHead here is stable until Stage III.
		if got, ok := s.routeInner(parentHead, h.lowKey); !ok || got != id {
			unlock()
			return
		}
		// Coverage guard (fix for the folded-split tail wedge, mode c):
		// the parent must not still route the victim's HIGH key back to
		// the victim. If it does, the separator created with the victim
		// covers more than the victim's current range — the victim once
		// split, folded its ∆split, and the new sibling's separator was
		// never posted (postSeparator gave up), leaving the tail of the
		// range reachable only through the victim's sibling link. Merging
		// such a victim is unsound: Stage III's ∆separator-delete routes
		// only [leftKey, rm.highKey) to the left sibling, so the tail
		// [rm.highKey, next separator) falls through to the stale base
		// separator and lands on the recycled victim — a permanent stale
		// route that wedges every operation on those keys until the
		// parent happens to consolidate (which the wedge itself then
		// starves; this was the all-workers bwstress/soak livelock).
		// Refusing is safe: the half-split state stays fully reachable
		// via sibling links, exactly like an unposted sibling under the
		// routing guard above.
		if h.highKey != nil && keyLT(h.highKey, parentHead.highKey) {
			if got, ok := s.routeInner(parentHead, h.highKey); !ok || got == id {
				unlock()
				return
			}
		}
	}
	rm := &delta{kind: kRemove}
	rm.inheritFrom(h)
	schedPoint(SPMergeRemove, id, 0, h.lowKey)
	if !t.cas(id, h, rm) {
		s.stats.casFailures.Add(1)
		unlock()
		return
	}

	// Stage II: absorb into the left sibling. The parent lock keeps the
	// left sibling from merging away, so failures here are transient
	// (e.g. the left sibling is itself the ∆abort-locked parent of a
	// lower-level merge that is about to finish) and the loop retries.
	leftID, leftSepKey, ok := s.mergeIntoLeft(parentHead, id, rm)
	if !ok {
		// The merge cannot proceed (the left sibling is busy with its
		// own SMO). Retract the ∆remove and give up — leaving it behind
		// would wedge the node forever. The retraction is safe because
		// only the initiator ever posts the ∆merge (helpers observing
		// the ∆remove restart instead of helping Stage II), so nothing
		// can have absorbed the victim; and the CaS cannot lose because
		// nothing else publishes onto a removed node's chain.
		schedPoint(SPRemoveRetract, id, 0, nil)
		if !t.cas(id, rm, h) {
			panic("core: ∆remove retraction lost an impossible race")
		}
		unlock()
		return
	}

	// Stage III: drop the victim's separator and unlock in one CaS. The
	// ∆separator-delete links directly to the pre-lock head, so the
	// published chain never contains the ∆abort.
	sd := &delta{kind: kInnerDelete}
	sd.inheritFrom(parentHead)
	sd.size = parentHead.size - 1
	sd.key = rm.lowKey
	sd.leftKey = leftSepKey
	sd.leftChild = leftID
	sd.nextKey = rm.highKey
	sd.offset = -1
	schedPoint(SPSepDelete, parentID, id, rm.lowKey)
	if !t.cas(parentID, ab, sd) {
		panic("core: lost ∆abort ownership during merge")
	}
	s.stats.merges.Add(1)
	s.emit(obs.EvMerge, id, leftID, 0)

	// The victim's ID is recycled once no traversal can still hold it.
	s.h.Retire(func() { t.mt.Recycle(id) })
	s.maybeConsolidate(parentID, sd)
}

// mergeIntoLeft locates the node directly left-adjacent to the victim —
// starting from the parent's routing and chasing sibling links past any
// unposted splits — and posts the ∆merge (or finds it already posted by a
// helper). It returns the parent-routed left child and its separator key,
// which Stage III needs for the ∆separator-delete's fast-path interval.
func (s *Session) mergeIntoLeft(parentHead *delta, victim nodeID, rm *delta) (nodeID, []byte, bool) {
	origLeft, ok := s.routeInnerLeft(parentHead, rm.lowKey)
	if !ok || origLeft == victim {
		return 0, nil, false
	}
	var leftSepKey []byte
	cur := origLeft
	first := true
	transient := 0
	for spins := 0; ; spins++ {
		if spins > 0 && spins%1024 == 0 {
			runtime.Gosched()
		}
		lhead := s.t.load(cur)
		if lhead == nil {
			return 0, nil, false
		}
		if first {
			leftSepKey = lhead.lowKey
			first = false
		}
		switch lhead.kind {
		case kAbort, kRemove:
			// The left sibling is locked by another SMO or mid-removal.
			// Waiting could form a cycle of merge initiators waiting on
			// each other's locks, so give up quickly: the caller retracts
			// the ∆remove and the merge is retried on a later
			// consolidation.
			transient++
			if transient > 64 {
				return 0, nil, false
			}
			schedPoint(SPMergeLeftSpin, cur, victim, rm.lowKey)
			runtime.Gosched()
			continue
		}
		cmp := 1
		if lhead.highKey != nil {
			cmp = bytes.Compare(lhead.highKey, rm.lowKey)
		}
		switch {
		case cmp < 0:
			if lhead.rightSib == invalidNode || lhead.rightSib == victim {
				return 0, nil, false
			}
			cur = lhead.rightSib
		case cmp > 0:
			// The left node's range extends past the victim's low key.
			// Helpers never post Stage II ∆merges in this protocol (they
			// restart on ∆remove instead), so no node can legitimately
			// cover the victim's range: this is a stale snapshot or a
			// stale route. Claiming success here without a posted ∆merge
			// would let Stage III recycle the victim with its content
			// never absorbed — silent data loss. Abandon; the caller
			// retracts the ∆remove and the merge is retried later.
			if smoRaceGuards {
				return 0, nil, false
			}
			return origLeft, leftSepKey, true
		default:
			m := &delta{kind: kMerge}
			m.inheritFrom(lhead)
			m.key = rm.lowKey
			m.mergeContent = rm.next
			m.deleteID = victim
			m.highKey = rm.highKey
			m.rightSib = rm.rightSib
			m.size = lhead.size + rm.size
			m.offset = -1
			schedPoint(SPMergeDelta, cur, victim, rm.lowKey)
			if s.t.cas(cur, lhead, m) {
				s.maybeConsolidate(cur, m)
				return origLeft, leftSepKey, true
			}
			s.stats.casFailures.Add(1)
		}
	}
}

// sameKey compares keys where nil means -inf.
func sameKey(a, b []byte) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return bytes.Equal(a, b)
}

// findParentByChild descends from the root to locate the inner node that
// currently routes lowKey to child, returning its snapshot for a merge
// attempt. Used when a consolidation discovers an undersized node but has
// no parent snapshot (inner-node chains are consolidated from separator
// posts, which carry none).
func (s *Session) findParentByChild(lowKey []byte, child nodeID) (nodeID, *delta) {
	t := s.t
	id := t.root
	for hops := 0; hops < maxTraversalHops; hops++ {
		head := t.load(id)
		if head == nil || head.kind == kAbort || head.kind == kRemove || head.isLeaf {
			return invalidNode, nil
		}
		if head.highKey != nil && keyGE(lowKey, head.highKey) {
			if head.rightSib == invalidNode {
				return invalidNode, nil
			}
			id = head.rightSib
			continue
		}
		next, ok := s.routeInner(head, lowKey)
		if !ok {
			return invalidNode, nil
		}
		if next == child {
			return id, head
		}
		id = next
	}
	return invalidNode, nil
}
