package core

// Sync-point schedule-control layer.
//
// This generalizes the CAS fault-injection hook (testhooks.go) from
// "make this CaS fail" to "observe and reorder the interesting instants
// of the SMO protocol". Every mapping-table publication, split/merge
// delta post, parent update, consolidation swap, delta prepend, and
// retry/spin edge announces itself through schedPoint just before it
// happens. A test installs a hook with SetSchedHook and can then:
//
//   - block the calling goroutine at a chosen point (building an exact
//     targeted interleaving out of channels), or
//   - hand control to CoopSched (coopsched.go), which serializes all
//     registered goroutines and explores seeded random PCT-style
//     schedules.
//
// This is how the once-in-45-seconds SMO races of zz_repro_test.go are
// replayed in milliseconds (schedule_smo_test.go), and it is permanent
// tooling: any future protocol change (the OCC-transactions roadmap
// item in particular) gets its interleavings pinned the same way.
//
// Production cost: one nil check of a package-level function variable
// per site — the same cost class as casFailHook, and nothing is
// allocated unless a hook is installed. The bench gate
// (bench/BENCH_hotpath.json) holds this to tolerance.

// SyncPoint names one instrumented instant of the write/SMO protocol.
// All points fire immediately BEFORE the action they name (so a hook
// that blocks there delays the action), except the *Spin/*Retry/
// SPBackoff points, which fire inside wait loops so a serializing
// scheduler regains control from goroutines that are waiting on
// somebody else's unfinished SMO.
type SyncPoint uint8

const (
	// SPLeafPrepend fires before a leaf delta (insert/delete/update)
	// is published onto node Node.
	SPLeafPrepend SyncPoint = iota
	// SPConsolidateSwap fires before a consolidated base replaces node
	// Node's chain.
	SPConsolidateSwap
	// SPSplitPublish fires after the new right sibling (Child) of a
	// split of Node has been built, before it is stored in the mapping
	// table (split Stage I).
	SPSplitPublish
	// SPSplitDelta fires before the ∆split publishing the half-split
	// of Node (Stage II); Child is the new right sibling.
	SPSplitDelta
	// SPSplitLeftFold fires before the split initiator folds Node's
	// left half into a consolidated base.
	SPSplitLeftFold
	// SPSplitRoot fires before an oversized root is replaced wholesale.
	SPSplitRoot
	// SPSepPost fires before a separator (Key → Child) is posted into
	// parent Node (split Stage III, both the initiator's post and a
	// traversal's help-along).
	SPSepPost
	// SPSepRetry fires on each retry round of postSeparator, after a
	// failed post or parent rediscovery; Child is the unposted node.
	SPSepRetry
	// SPMergeLock fires before a merge initiator write-locks parent
	// Node with a ∆abort (merge Stage 0); Child is the merge victim.
	SPMergeLock
	// SPMergeRemove fires before the ∆remove is published on the merge
	// victim Node (Stage I).
	SPMergeRemove
	// SPMergeDelta fires before the ∆merge absorbing Child is
	// published on left sibling Node (Stage II).
	SPMergeDelta
	// SPMergeUnlock fires before an abandoned merge retracts the
	// parent Node's ∆abort.
	SPMergeUnlock
	// SPRemoveRetract fires before a blocked merge retracts the
	// victim Node's ∆remove.
	SPRemoveRetract
	// SPSepDelete fires before the one-CaS ∆separator-delete +
	// parent-unlock of merge Stage III; Node is the parent, Child the
	// victim.
	SPSepDelete
	// SPDescendRemove fires when a traversal lands on ∆remove-headed
	// node Node and is about to help the merge along.
	SPDescendRemove
	// SPMergeLeftSpin fires inside mergeIntoLeft's wait loop while the
	// left sibling Node is locked by another SMO.
	SPMergeLeftSpin
	// SPBackoff fires inside every operation's restart loop after a
	// failed descent or lost CaS.
	SPBackoff

	numSyncPoints
)

var syncPointNames = [numSyncPoints]string{
	SPLeafPrepend:     "LeafPrepend",
	SPConsolidateSwap: "ConsolidateSwap",
	SPSplitPublish:    "SplitPublish",
	SPSplitDelta:      "SplitDelta",
	SPSplitLeftFold:   "SplitLeftFold",
	SPSplitRoot:       "SplitRoot",
	SPSepPost:         "SepPost",
	SPSepRetry:        "SepRetry",
	SPMergeLock:       "MergeLock",
	SPMergeRemove:     "MergeRemove",
	SPMergeDelta:      "MergeDelta",
	SPMergeUnlock:     "MergeUnlock",
	SPRemoveRetract:   "RemoveRetract",
	SPSepDelete:       "SepDelete",
	SPDescendRemove:   "DescendRemove",
	SPMergeLeftSpin:   "MergeLeftSpin",
	SPBackoff:         "Backoff",
}

func (p SyncPoint) String() string {
	if int(p) < len(syncPointNames) {
		return syncPointNames[p]
	}
	return "SyncPoint(?)"
}

// PointInfo describes one sync-point crossing: which point, the logical
// node it concerns, the other node involved (a split's right sibling, a
// merge's victim — zero when there is none), and the separator/search
// key in flight (nil when there is none). Key aliases tree-internal
// memory and must not be mutated or retained past the hook call.
type PointInfo struct {
	Point SyncPoint
	Node  uint64
	Child uint64
	Key   []byte
}

// schedHook, when non-nil, is invoked at every sync point on the
// goroutine crossing it. Like casFailHook it is read without
// synchronization: install it before tree goroutines start and restore
// it after they are joined.
var schedHook func(PointInfo)

// schedPoint is the instrumentation shim. It must stay trivially
// inlinable — the production cost of the whole layer is this one
// predictable nil check.
func schedPoint(p SyncPoint, node, child nodeID, key []byte) {
	if schedHook != nil {
		schedEmit(p, node, child, key)
	}
}

//go:noinline
func schedEmit(p SyncPoint, node, child nodeID, key []byte) {
	schedHook(PointInfo{Point: p, Node: uint64(node), Child: uint64(child), Key: key})
}

// SetSchedHook installs hook as the global sync-point observer and
// returns a function restoring the previous one. The hook runs on the
// goroutine crossing the point and may block it (that is the point);
// it must not call back into the same Session, but MAY operate on the
// tree through other Sessions to inject a racing operation at an exact
// protocol instant.
func SetSchedHook(hook func(PointInfo)) (restore func()) {
	prev := schedHook
	schedHook = hook
	return func() { schedHook = prev }
}
