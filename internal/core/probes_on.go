//go:build !notrace

package core

// deepProbes gates every deep-path tracing probe in the hot path. The
// default build compiles them in (each one costs a single nil check when
// tracing is disabled at runtime); building with -tags notrace sets this
// to false so the compiler eliminates the probes entirely. The
// obs-overhead bench gate compares the two builds to enforce the <2%
// disabled-mode budget.
const deepProbes = true
