package core

// Deterministic replay of the (closed) high-pressure SMO bug: a split's
// Stage III separator post is delayed, the unposted right sibling
// drains and merges away, and the late post lands on a node that no
// longer exists. runUnpostedSeparatorRace drives that exact
// interleaving through the sync-point schedule layer in milliseconds —
// the scenario the 45-second zz_repro_test.go flake needed luck to hit.
//
// The driver is shared by the green regression test
// (schedule_smo_green_test.go: with the SMO race guards the merge is
// refused and the tree stays valid) and the red self-test
// (schedule_smo_red_test.go, -tags smoracebug: with the guards compiled
// out both historical failure modes reproduce, proving the harness
// actually replays the bug).

import (
	"bytes"
	"encoding/binary"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// sepRaceOutcome captures the checkpoints of the unposted-separator
// interleaving.
type sepRaceOutcome struct {
	sepKey []byte // separator key of the parked split
	victim uint64 // the split's right sibling (reachable only via sibling links)

	// Observed while the separator post was parked and the victim's
	// range was drained:
	mergeLocks    int64  // merge attempts on the victim (SPMergeLock crossings)
	merges        uint64 // merges that actually completed
	errAfterMerge error  // Validate() after the drain/merge phase

	// deleted records which keys the drain phase actually removed
	// (i.e. which inserts had landed before the writer parked).
	deleted map[uint64]bool

	// Observed after releasing the parked post and joining the writer:
	errAfterPost  error // Validate() right after the late post could land
	routeDangling bool  // does the tree route sepKey to a nil/∆remove node?
	finalContent  map[uint64]uint64
	errFinal      error // Validate() at the very end
}

// runUnpostedSeparatorRace builds a two-goroutine targeted
// interleaving:
//
//  1. A writer inserts keys 1..64; its first leaf split parks at
//     SPSepPost, leaving the right sibling published but unposted.
//  2. The main goroutine deletes the low half first (folding the left
//     node's ∆split, so later descents reach the victim purely via
//     sibling links with no help-along separator post), then drains the
//     victim's range until consolidation attempts to merge it away.
//  3. The parked separator post is released and the writer finishes.
//
// Pre-fix, step 2 merges the never-posted sibling (parent size
// undercount — the lost-∆delete signature) and step 3 resurrects a
// route to the dead node (the all-workers wedge). Post-fix, the merge
// is refused while the separator is in flight and the late post lands
// normally.
func runUnpostedSeparatorRace(t *testing.T) sepRaceOutcome {
	t.Helper()
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2

	var out sepRaceOutcome
	hold := make(chan struct{})
	parked := make(chan []byte, 1)
	var parkedOnce atomic.Bool
	var victim atomic.Uint64
	var mergeLocks atomic.Int64

	restore := SetSchedHook(func(pi PointInfo) {
		switch pi.Point {
		case SPSepPost:
			if parkedOnce.CompareAndSwap(false, true) {
				victim.Store(pi.Child)
				parked <- append([]byte(nil), pi.Key...)
				<-hold // Stage III parks here
			}
		case SPMergeLock:
			if pi.Child != 0 && pi.Child == victim.Load() {
				mergeLocks.Add(1)
			}
		}
	})
	defer restore()

	tr := New(opts)
	defer tr.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s := tr.NewSession()
		defer s.Release()
		for i := uint64(1); i <= 64; i++ {
			s.Insert(key64(i), i)
		}
	}()

	select {
	case out.sepKey = <-parked:
	case <-time.After(10 * time.Second):
		t.Fatal("split initiator never reached SPSepPost")
	}
	out.victim = victim.Load()

	s := tr.NewSession()
	defer s.Release()
	out.deleted = map[uint64]bool{}
	for i := uint64(1); i <= 64; i++ {
		if s.Delete(key64(i), 0) {
			out.deleted[i] = true
		}
	}
	out.mergeLocks = mergeLocks.Load()
	out.merges = tr.Stats().Merges
	out.errAfterMerge = tr.Validate()

	close(hold)
	<-done

	out.errAfterPost = tr.Validate()
	if path := tr.DescendPath(out.sepKey); len(path) > 0 {
		last := path[len(path)-1]
		out.routeDangling = last.Kind == "<nil>" || last.Kind == kRemove.String()
		if out.routeDangling {
			t.Logf("poisoned path for %x:\n%s", out.sepKey, FormatPath(path))
		}
	}
	out.finalContent = map[uint64]uint64{}
	var vals []uint64
	for i := uint64(1); i <= 64; i++ {
		vals = s.Lookup(key64(i), vals[:0])
		for _, v := range vals {
			out.finalContent[i] = v
		}
	}
	out.errFinal = tr.Validate()
	return out
}

// foldedTailOutcome captures the checkpoints of the folded-split-tail
// interleaving (mode c of the high-pressure bug): a leaf's split folds
// with its separator permanently unposted, and the leaf then drains and
// becomes a merge candidate. Merging it is unsound — the parent's base
// separator covers the whole pre-split range, but the merge's
// ∆separator-delete re-routes only the left part, leaving the tail
// routed into the recycled victim.
type foldedTailOutcome struct {
	victim   uint64 // the leaf that half-split and then drained
	splitKey uint64 // its fold point; [splitKey, high) lives in the unposted sibling
	high     uint64 // its pre-split high key
	sepFails int64  // separator-post CaSes failed by injection

	mergeLocks int64  // merge attempts on the victim (SPMergeLock crossings)
	merges     uint64 // merges that completed during the drain

	errAfterDrain error // Validate() after the drain/merge phase
	tailDangling  bool  // does the tree route a tail key to a dead node?
	survivors     map[uint64]uint64
	model         map[uint64]uint64
	errFinal      error
}

// runFoldedSplitTailRace deterministically builds the folded-split-tail
// scenario in a single goroutine:
//
//  1. Build a stable tree over sparse keys and pick a mid-tree victim
//     leaf (not its parent's leftmost child).
//  2. Arm SetCASFailHook to fail every separator post for the victim's
//     next split sibling, then insert fresh in-range keys until the
//     victim splits. postSeparator exhausts its attempts, the ∆split
//     folds, and the new sibling is reachable only via sibling links —
//     while the parent's base separator still covers the victim's
//     ENTIRE pre-split range.
//  3. Drain the victim's remaining left half until consolidation tries
//     to merge it away.
//
// Pre-fix, step 3 merges the victim: Stage III's ∆separator-delete
// covers only [leftKey, splitKey), so tail keys [splitKey, high) fall
// through to the stale base separator and route into the recycled
// victim — the permanent all-workers wedge seen in bwstress and the
// BWTREE_REPRO soak. Post-fix, the coverage guard refuses the merge and
// the half-split stays fully reachable.
func runFoldedSplitTailRace(t *testing.T) foldedTailOutcome {
	t.Helper()
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2

	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	var out foldedTailOutcome
	out.model = map[uint64]uint64{}

	// Step 1: sparse keyspace (multiples of 8) so leaves keep room for
	// fresh in-range inserts.
	for i := uint64(1); i <= 48; i++ {
		k := i * 8
		s.Insert(key64(k), k)
		out.model[k] = k
	}
	tr.ConsolidateAll()

	var victimID, m, h uint64
	for probe := uint64(64); probe <= 320; probe += 8 {
		path := tr.DescendPath(key64(probe))
		if len(path) < 2 {
			continue
		}
		leaf, parent := path[len(path)-1], path[len(path)-2]
		if leaf.Note != "reached leaf" || leaf.LowKey == nil || leaf.HighKey == nil {
			continue
		}
		// Leftmost children are never merge victims.
		if parent.LowKey != nil && bytes.Equal(leaf.LowKey, parent.LowKey) {
			continue
		}
		victimID = uint64(leaf.ID)
		m = binary.BigEndian.Uint64(leaf.LowKey)
		h = binary.BigEndian.Uint64(leaf.HighKey)
		break
	}
	if victimID == 0 {
		t.Fatal("no suitable victim leaf found")
	}

	// Step 2: capture the victim's split sibling the instant it is
	// published, and fail every separator post that would make it
	// parent-reachable.
	var rid atomic.Uint64
	var mergeLocks atomic.Int64
	restoreSched := SetSchedHook(func(pi PointInfo) {
		switch pi.Point {
		case SPSplitPublish:
			if pi.Node == victimID {
				rid.Store(pi.Child)
			}
		case SPMergeLock:
			if pi.Child != 0 && pi.Child == victimID {
				mergeLocks.Add(1)
			}
		}
	})
	defer restoreSched()
	_, sepIns, _, _, _, _ := DeltaKindNames()
	var sepFails atomic.Int64
	restoreCAS := SetCASFailHook(func(ci CASInfo) bool {
		if ci.NewKind == sepIns && ci.Child != 0 && ci.Child == rid.Load() {
			sepFails.Add(1)
			return true
		}
		return false
	})

	splitsBefore := tr.Stats().Splits
	for k := m + 1; tr.Stats().Splits == splitsBefore; k++ {
		if k >= h {
			t.Fatal("victim leaf never split")
		}
		if s.Insert(key64(k), k) {
			out.model[k] = k
		}
	}
	restoreCAS()
	out.sepFails = sepFails.Load()

	// The victim's head must now end at the fold point.
	path := tr.DescendPath(key64(m))
	last := path[len(path)-1]
	if uint64(last.ID) != victimID || last.HighKey == nil {
		t.Fatalf("expected the folded victim at key %d, got:\n%s", m, FormatPath(path))
	}
	splitKey := binary.BigEndian.Uint64(last.HighKey)
	if splitKey <= m || splitKey >= h {
		t.Fatalf("implausible fold point %d for victim [%d, %d)", splitKey, m, h)
	}
	out.victim, out.splitKey, out.high = victimID, splitKey, h

	// Step 3: drain the victim's left half until consolidation attempts
	// the merge.
	mergesBefore := tr.Stats().Merges
	for i := m; i < splitKey; i++ {
		if s.Delete(key64(i), 0) {
			delete(out.model, i)
		}
	}
	out.mergeLocks = mergeLocks.Load()
	out.merges = tr.Stats().Merges - mergesBefore
	out.errAfterDrain = tr.Validate()

	// Outcome: the fold point itself is the first key of the unposted
	// sibling and was never deleted — post-fix it must stay reachable,
	// pre-fix its route ends in the merged-away victim.
	tail := tr.DescendPath(key64(splitKey))
	tl := tail[len(tail)-1]
	out.tailDangling = tl.Kind == "<nil>" || tl.Kind == kRemove.String() ||
		strings.Contains(tl.Note, "stale route")
	if out.tailDangling {
		t.Logf("poisoned tail path for %d:\n%s", splitKey, FormatPath(tail))
	}

	// Content check — skipped when the route dangles: operations on the
	// poisoned range would livelock by design.
	out.survivors = map[uint64]uint64{}
	if !out.tailDangling {
		var vals []uint64
		for k, want := range out.model {
			vals = s.Lookup(key64(k), vals[:0])
			if len(vals) == 1 && vals[0] == want {
				out.survivors[k] = vals[0]
			}
		}
	}
	out.errFinal = tr.Validate()
	return out
}
