package core

import "bytes"

// traversal is the per-operation descent state: the current node and the
// parent snapshot needed to post or complete structural modifications.
// Restarting from the root (the paper's recovery strategy for every failed
// CaS, §2.2) simply re-runs descend.
type traversal struct {
	id         nodeID
	head       *delta
	parentID   nodeID
	parentHead *delta
}

// descend walks from the root to the leaf whose range covers key, helping
// any unfinished SMO it encounters. It returns false when the operation
// must restart from the root.
func (s *Session) descend(key []byte, tr *traversal) bool {
	t := s.t
	id := t.root
	parentID := invalidNode
	var parentHead *delta

	for hops := 0; ; hops++ {
		if hops > maxTraversalHops {
			// Defensive bound: an inconsistent traversal loops back to
			// the root rather than spinning forever.
			return false
		}
		head := t.load(id)
		if head == nil {
			return false // node recycled under us
		}
		switch head.kind {
		case kAbort:
			// A merge holds this node write-locked (Appendix B).
			return false
		case kRemove:
			// The node is being merged into its left sibling; help along
			// and continue at the left branch (Appendix A.2).
			schedPoint(SPDescendRemove, id, 0, key)
			leftID, ok := s.helpMerge(parentID, parentHead, id, head)
			if !ok {
				return false
			}
			id = leftID
			continue
		}

		// Fused route for a consolidated inner base — the common state
		// between SMOs. An interior routing position is itself the range
		// proof: separators sit inside [lowKey, highKey) with sep[0] ==
		// lowKey (Validate pins both), so sep[pos-1] <= key < sep[pos]
		// implies lowKey <= key < highKey and the two boundary-key
		// compares (each a touch of a separately-allocated key) can be
		// skipped along with the sibling-chase logic they guard. Boundary
		// positions prove nothing and fall through to the guarded path,
		// which re-routes; that re-search is rare (~2/fanout of levels).
		if head.kind == kInnerBase {
			if pos := innerRoutePos(head, key); pos > 0 && pos < head.baseLen() {
				parentID, parentHead = id, head
				id = head.kids[pos-1]
				continue
			}
		}

		// Range guards. A node whose low key exceeds the search key can
		// only be reached through a stale route (e.g. a recycled node ID
		// observed via an old parent snapshot); restart rather than
		// operate out of range.
		if head.lowKey != nil && !keyGE(key, head.lowKey) {
			return false
		}
		// Blink-tree high-key check: the logical node no longer covers
		// key, so chase the right-sibling link. If the head is an
		// unfinished split, help post its separator first (§2.4).
		if head.highKey != nil && keyGE(key, head.highKey) {
			if head.kind == kSplit && parentID != invalidNode && parentHead != nil {
				s.completeSplitParts(parentID, parentHead, head.key, head.child, head.nextKey, head.isLeaf)
			}
			if head.rightSib == invalidNode {
				return false
			}
			id = head.rightSib
			continue
		}

		if head.isLeaf {
			tr.id, tr.head = id, head
			tr.parentID, tr.parentHead = parentID, parentHead
			return true
		}

		child, ok := s.routeInner(head, key)
		if !ok {
			return false
		}
		parentID, parentHead = id, head
		id = child
	}
}

// maxTraversalHops bounds a single descent; generous enough for any sane
// tree (depth x sibling chases) while catching cycles in debug scenarios.
const maxTraversalHops = 4096

// routeInner resolves which child of an inner logical node covers key by
// walking its delta chain. It never dereferences the mapping table; all
// information lives in the chain (Table 1 attributes).
func (s *Session) routeInner(head *delta, key []byte) (nodeID, bool) {
	// Fast path: a consolidated inner node is a bare base — the common
	// case between SMOs with the default inner chain length of 2. Route
	// straight through the base probe without entering the chain loop.
	if head.kind == kInnerBase {
		return routeBaseInner(head, key), true
	}
	d := head
	for {
		switch d.kind {
		case kInnerInsert:
			// Separator posted by a split: routes [key, nextKey) to child.
			if keyGE(key, d.key) && keyLT(key, d.nextKey) {
				return d.child, true
			}
		case kInnerDelete:
			// Separator removed by a merge: the left sibling now covers
			// [leftKey, nextKey).
			if keyGE(key, d.leftKey) && keyLT(key, d.nextKey) {
				return d.leftChild, true
			}
		case kSplit:
			// Keys at or above the split key moved to the new sibling.
			// The caller's high-key check should have routed there, but a
			// racing consolidation can leave a stale head; restart.
			if keyGE(key, d.key) {
				return 0, false
			}
		case kMerge:
			// The absorbed right branch holds keys >= the merge key.
			if keyGE(key, d.key) {
				d = d.mergeContent
				continue
			}
		case kInnerBase:
			return routeBaseInner(d, key), true
		case kRemove, kAbort:
			return 0, false
		default:
			// Leaf kinds cannot appear in an inner chain.
			return 0, false
		}
		s.chases++
		d = d.next
	}
}

// routeInnerLeft resolves the child covering keys immediately below key —
// "always go left when a separator equals the search key" (Appendix C.2).
// Used by backward iteration and left-sibling discovery during merges.
func (s *Session) routeInnerLeft(head *delta, key []byte) (nodeID, bool) {
	d := head
	for {
		switch d.kind {
		case kInnerInsert:
			if keyGT(key, d.key) && keyLE(key, d.nextKey) {
				return d.child, true
			}
		case kInnerDelete:
			if keyGT(key, d.leftKey) && keyLE(key, d.nextKey) {
				return d.leftChild, true
			}
		case kSplit:
			if keyGT(key, d.key) {
				return 0, false
			}
		case kMerge:
			if keyGT(key, d.key) {
				d = d.mergeContent
				continue
			}
		case kInnerBase:
			return routeBaseInnerLeft(d, key), true
		default:
			return 0, false
		}
		s.chases++
		d = d.next
	}
}

// helpMerge redirects a traversal that hit a ∆remove record: it locates
// the left sibling through the parent snapshot, posts the ∆merge if no one
// has yet (Stage II), and returns the node now owning the removed range.
// Any ambiguity — stale snapshot, racing SMO — returns false and the
// operation restarts from the root; the merge initiator is guaranteed to
// finish independently because it owns the parent's ∆abort lock.
func (s *Session) helpMerge(parentID nodeID, parentHead *delta, id nodeID, rm *delta) (nodeID, bool) {
	if parentID == invalidNode || parentHead == nil {
		return 0, false
	}
	if rm.lowKey == nil {
		return 0, false // leftmost node is never merged
	}
	leftID, ok := s.routeInnerLeft(parentHead, rm.lowKey)
	if !ok || leftID == id {
		return 0, false
	}
	// The parent-routed left sibling may itself have split since; walk
	// right until we find the node whose high key meets the removed
	// node's range.
	for hops := 0; hops < maxTraversalHops; hops++ {
		lhead := s.t.load(leftID)
		if lhead == nil {
			return 0, false
		}
		switch lhead.kind {
		case kAbort, kRemove:
			return 0, false
		}
		cmp := 1
		if lhead.highKey != nil {
			cmp = bytes.Compare(lhead.highKey, rm.lowKey)
		}
		switch {
		case cmp < 0:
			// Still left of the removed node; chase the sibling link.
			if lhead.rightSib == invalidNode || lhead.rightSib == id {
				return 0, false
			}
			leftID = lhead.rightSib
		case cmp > 0:
			// The left sibling's range already covers the removed node's
			// low key: the ∆merge has been posted (or consolidated in).
			return leftID, true
		default:
			// Exactly adjacent: the merge's Stage II has not happened
			// yet. Only the initiator — who owns the parent's ∆abort —
			// posts the ∆merge: if helpers also posted it, an initiator
			// abandoning a blocked merge could never retract its ∆remove
			// safely (a helper might absorb the victim in the same
			// instant, leaving it doubly reachable). Restart and let the
			// initiator finish; it completes or retracts within a few
			// microseconds.
			return 0, false
		}
	}
	return 0, false
}
