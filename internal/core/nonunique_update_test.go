package core

import (
	"math/rand"
	"slices"
	"testing"
)

// TestNonUniqueUpdate covers Session.Update under duplicate-key
// semantics: it must replace the newest *visible* value, skipping values
// deleted by newer chain records.
func TestNonUniqueUpdate(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("dup")
	if s.Update(k, 1) {
		t.Fatal("update of absent key succeeded")
	}
	for v := uint64(1); v <= 3; v++ {
		s.Insert(k, v)
	}
	// The newest insert (3) is the first visible value; updating replaces
	// exactly that pair.
	if !s.Update(k, 30) {
		t.Fatal("update failed")
	}
	got := s.Lookup(k, nil)
	if len(got) != 3 || containsVal(got, 3) || !containsVal(got, 30) {
		t.Fatalf("after update: %v", got)
	}
	// Delete the newest visible value; Update must now pick an older one.
	if !s.Delete(k, 30) {
		t.Fatal("delete failed")
	}
	if !s.Update(k, 99) {
		t.Fatal("update after delete failed")
	}
	got = s.Lookup(k, nil)
	if len(got) != 2 || !containsVal(got, 99) {
		t.Fatalf("after second update: %v", got)
	}
	// Drain the key entirely; Update fails again.
	for _, v := range got {
		if !s.Delete(k, v) {
			t.Fatalf("drain delete %d failed", v)
		}
	}
	if s.Update(k, 1) {
		t.Fatal("update of drained key succeeded")
	}
}

// TestNonUniqueUpdateAcrossConsolidation repeats the dance with tiny
// chains so the first-visible seek crosses consolidated base nodes and
// (via the baseline path) merge-free replay in both algorithms.
func TestNonUniqueUpdateAcrossConsolidation(t *testing.T) {
	for _, fast := range []bool{true, false} {
		opts := DefaultOptions()
		opts.NonUnique = true
		opts.FastConsolidate = fast
		opts.LeafNodeSize = 16
		opts.LeafChainLength = 3
		tr := New(opts)
		s := tr.NewSession()

		k := []byte("hot")
		for v := uint64(0); v < 50; v++ {
			if !s.Insert(k, v) {
				t.Fatalf("fast=%v: insert %d failed", fast, v)
			}
		}
		// Interleave updates and deletes to stack update deltas.
		for i := 0; i < 30; i++ {
			if !s.Update(k, 1000+uint64(i)) {
				t.Fatalf("fast=%v: update %d failed", fast, i)
			}
		}
		got := s.Lookup(k, nil)
		if len(got) != 50 {
			t.Fatalf("fast=%v: %d values", fast, len(got))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		s.Release()
		tr.Close()
	}
}

// TestNonUniqueBaselineConsolidation forces the baseline (replay and
// sort) consolidation for duplicate keys including the survives() paths
// for pairs killed by deletes and re-inserted pairs.
func TestNonUniqueBaselineConsolidation(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.FastConsolidate = false
	opts.LeafNodeSize = 64
	opts.LeafChainLength = 4
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("x")
	// Build base with values 0..9.
	for v := uint64(0); v < 10; v++ {
		s.Insert(k, v)
	}
	// Delete evens, re-insert 0 and 2, delete 2 again — all through
	// multiple consolidation rounds.
	for v := uint64(0); v < 10; v += 2 {
		if !s.Delete(k, v) {
			t.Fatalf("delete %d failed", v)
		}
	}
	s.Insert(k, 0)
	s.Insert(k, 2)
	s.Delete(k, 2)
	got := s.Lookup(k, nil)
	want := map[uint64]bool{0: true, 1: true, 3: true, 5: true, 7: true, 9: true}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected value %d in %v", v, got)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNonUniqueUpdateToExistingPair updates a key to a value the key
// already holds. The update must collapse to a delete of the old pair —
// an update delta would leave the pair stored twice, which materializes
// deduplicated and desynchronizes the size attribute.
func TestNonUniqueUpdateToExistingPair(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("pair")
	s.Insert(k, 5)
	s.Insert(k, 1) // newest insert: first visible value is 1
	if !s.Update(k, 5) {
		t.Fatal("update failed")
	}
	got := s.Lookup(k, nil)
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("after update to existing pair: %v, want [5]", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNonUniqueUpdateValueReorder consolidates an update delta whose new
// value sorts BEFORE the replaced pair among the key's values. The fast
// consolidation path cannot place that insert at the old pair's offset;
// it must fall back to the baseline replay or the base node comes out
// unsorted.
func TestNonUniqueUpdateValueReorder(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.FastConsolidate = true
	opts.LeafNodeSize = 16
	opts.LeafChainLength = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := key64(7)
	for v := uint64(1); v <= 4; v++ {
		s.Insert(k, v)
	}
	// Consolidate so the four pairs sit in a base node.
	for i := uint64(100); i < 110; i++ {
		s.Insert(key64(i), i)
	}
	// Replace the largest value with one that sorts first.
	if !s.UpdateValue(k, 4, 0) {
		t.Fatal("UpdateValue failed")
	}
	// Drive more consolidations that fold the update delta.
	for i := uint64(110); i < 130; i++ {
		s.Insert(key64(i), i)
	}
	got := s.Lookup(k, nil)
	slices.Sort(got)
	if !slices.Equal(got, []uint64{0, 1, 2, 3}) {
		t.Fatalf("after reordering update: %v, want [0 1 2 3]", got)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestNonUniqueRandomizedValidate hammers one session with a random mix
// of every mutating operation over a small hot key space and validates
// the whole tree after each op, so any size-attribute or ordering drift
// is pinned to the exact operation that introduced it.
func TestNonUniqueRandomizedValidate(t *testing.T) {
	for _, fast := range []bool{true, false} {
		opts := DefaultOptions()
		opts.NonUnique = true
		opts.FastConsolidate = fast
		opts.LeafNodeSize = 16
		opts.InnerNodeSize = 8
		opts.LeafChainLength = 4
		opts.InnerChainLength = 2
		opts.LeafMergeSize = 4
		opts.InnerMergeSize = 2
		tr := New(opts)
		s := tr.NewSession()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 8000; i++ {
			k := uint64(rng.Intn(256))
			v := uint64(rng.Intn(4))
			var opname string
			switch rng.Intn(8) {
			case 0, 1:
				opname = "insert"
				s.Insert(key64(k), v)
			case 2:
				opname = "delete"
				s.Delete(key64(k), v)
			case 3:
				opname = "update"
				s.Update(key64(k), v)
			case 4:
				opname = "updatevalue"
				s.UpdateValue(key64(k), v, v+1)
			case 5:
				opname = "deletebatch"
				s.DeleteBatch([][]byte{key64(k), key64(k + 1)}, []uint64{v, v}, nil)
			default:
				opname = "lookup"
				s.Lookup(key64(k), nil)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("fast=%v: after op %d (%s k=%d v=%d): %v", fast, i, opname, k, v, err)
			}
		}
		s.Release()
		tr.Close()
	}
}
