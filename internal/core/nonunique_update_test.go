package core

import "testing"

// TestNonUniqueUpdate covers Session.Update under duplicate-key
// semantics: it must replace the newest *visible* value, skipping values
// deleted by newer chain records.
func TestNonUniqueUpdate(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("dup")
	if s.Update(k, 1) {
		t.Fatal("update of absent key succeeded")
	}
	for v := uint64(1); v <= 3; v++ {
		s.Insert(k, v)
	}
	// The newest insert (3) is the first visible value; updating replaces
	// exactly that pair.
	if !s.Update(k, 30) {
		t.Fatal("update failed")
	}
	got := s.Lookup(k, nil)
	if len(got) != 3 || containsVal(got, 3) || !containsVal(got, 30) {
		t.Fatalf("after update: %v", got)
	}
	// Delete the newest visible value; Update must now pick an older one.
	if !s.Delete(k, 30) {
		t.Fatal("delete failed")
	}
	if !s.Update(k, 99) {
		t.Fatal("update after delete failed")
	}
	got = s.Lookup(k, nil)
	if len(got) != 2 || !containsVal(got, 99) {
		t.Fatalf("after second update: %v", got)
	}
	// Drain the key entirely; Update fails again.
	for _, v := range got {
		if !s.Delete(k, v) {
			t.Fatalf("drain delete %d failed", v)
		}
	}
	if s.Update(k, 1) {
		t.Fatal("update of drained key succeeded")
	}
}

// TestNonUniqueUpdateAcrossConsolidation repeats the dance with tiny
// chains so the first-visible seek crosses consolidated base nodes and
// (via the baseline path) merge-free replay in both algorithms.
func TestNonUniqueUpdateAcrossConsolidation(t *testing.T) {
	for _, fast := range []bool{true, false} {
		opts := DefaultOptions()
		opts.NonUnique = true
		opts.FastConsolidate = fast
		opts.LeafNodeSize = 16
		opts.LeafChainLength = 3
		tr := New(opts)
		s := tr.NewSession()

		k := []byte("hot")
		for v := uint64(0); v < 50; v++ {
			if !s.Insert(k, v) {
				t.Fatalf("fast=%v: insert %d failed", fast, v)
			}
		}
		// Interleave updates and deletes to stack update deltas.
		for i := 0; i < 30; i++ {
			if !s.Update(k, 1000+uint64(i)) {
				t.Fatalf("fast=%v: update %d failed", fast, i)
			}
		}
		got := s.Lookup(k, nil)
		if len(got) != 50 {
			t.Fatalf("fast=%v: %d values", fast, len(got))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("fast=%v: %v", fast, err)
		}
		s.Release()
		tr.Close()
	}
}

// TestNonUniqueBaselineConsolidation forces the baseline (replay and
// sort) consolidation for duplicate keys including the survives() paths
// for pairs killed by deletes and re-inserted pairs.
func TestNonUniqueBaselineConsolidation(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.FastConsolidate = false
	opts.LeafNodeSize = 64
	opts.LeafChainLength = 4
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("x")
	// Build base with values 0..9.
	for v := uint64(0); v < 10; v++ {
		s.Insert(k, v)
	}
	// Delete evens, re-insert 0 and 2, delete 2 again — all through
	// multiple consolidation rounds.
	for v := uint64(0); v < 10; v += 2 {
		if !s.Delete(k, v) {
			t.Fatalf("delete %d failed", v)
		}
	}
	s.Insert(k, 0)
	s.Insert(k, 2)
	s.Delete(k, 2)
	got := s.Lookup(k, nil)
	want := map[uint64]bool{0: true, 1: true, 3: true, 5: true, 7: true, 9: true}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("unexpected value %d in %v", v, got)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
