//go:build !smobug

package core

// smobugDropInsert is the consolidation mutation hook. In normal builds it
// is a constant false the compiler erases; building with -tags smobug
// replaces it with a seeded bug that drops insert records during
// consolidation, so the history checker's self-test can prove it detects
// real lost updates. See smobug_on.go.
func smobugDropInsert(key []byte) bool { return false }
