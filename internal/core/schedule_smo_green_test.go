//go:build !smoracebug

package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestScheduleUnpostedSeparatorRace is the deterministic regression
// test for the closed high-pressure SMO bug (README "Known issues"):
// with the race guards in place, a merge attempt on a half-split's
// unposted right sibling must be refused, and the delayed separator
// post must land cleanly afterwards. Under -tags smoracebug the same
// driver reproduces the original corruption (schedule_smo_red_test.go).
func TestScheduleUnpostedSeparatorRace(t *testing.T) {
	out := runUnpostedSeparatorRace(t)
	if out.mergeLocks == 0 {
		t.Fatalf("scenario did not exercise the guard: no merge attempt on the unposted sibling %d", out.victim)
	}
	if out.merges != 0 {
		t.Errorf("merge of the unposted right sibling completed %d times; the routing guard must refuse it", out.merges)
	}
	if out.errAfterMerge != nil {
		t.Errorf("validate after refused merge: %v", out.errAfterMerge)
	}
	if out.errAfterPost != nil {
		t.Errorf("validate after the delayed separator post: %v", out.errAfterPost)
	}
	if out.routeDangling {
		t.Errorf("tree routes %x to a dead node after the delayed post", out.sepKey)
	}
	if out.errFinal != nil {
		t.Errorf("final validate: %v", out.errFinal)
	}
	// Keys that existed before the park were deleted by the drain; the
	// rest were inserted by the writer after the release. Sanity: the
	// drain must have deleted at least the split's left half.
	if len(out.deleted) < 4 {
		t.Fatalf("drain deleted only %d keys; the scenario never built the half-split", len(out.deleted))
	}
	for i := uint64(1); i <= 64; i++ {
		v, ok := out.finalContent[i]
		if out.deleted[i] {
			if ok {
				t.Errorf("deleted key %d still present (value %d)", i, v)
			}
		} else if !ok || v != i {
			t.Errorf("key %d: got (%d, %v), want (%d, true)", i, v, ok, i)
		}
	}
}

// TestScheduleCoopSchedSeeds explores seeded PCT-style random schedules
// over a merge-heavy configuration: three workers on disjoint key
// stripes run serialized by CoopSched, and every seed must end with a
// valid tree whose contents match each worker's model. A seed that
// fails here is a deterministic reproducer by construction.
func TestScheduleCoopSchedSeeds(t *testing.T) {
	for _, nonUnique := range []bool{false, true} {
		for seed := int64(1); seed <= 6; seed++ {
			t.Run(fmt.Sprintf("nonunique=%v/seed=%d", nonUnique, seed), func(t *testing.T) {
				runCoopSchedWorkload(t, seed, nonUnique)
			})
		}
	}
}

func runCoopSchedWorkload(t *testing.T, seed int64, nonUnique bool) {
	opts := DefaultOptions()
	opts.NonUnique = nonUnique
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 4
	opts.LeafChainLength = 2
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()

	const nw = 3
	const ops = 150
	const stripe = 40
	owned := make([]map[uint64]uint64, nw) // per-worker model: key → value
	cs := NewCoopSched(seed)
	for w := 0; w < nw; w++ {
		owned[w] = map[uint64]uint64{}
		mine := owned[w]
		rng := rand.New(rand.NewSource(seed*131 + int64(w)))
		cs.Go(func() {
			s := tr.NewSession()
			defer s.Release()
			var vals []uint64
			for i := 0; i < ops; i++ {
				// Disjoint stripes keep each worker's model exact no
				// matter how the schedule interleaves the workers.
				k := uint64(w) + uint64(rng.Intn(stripe))*nw + 1
				switch rng.Intn(4) {
				case 0, 1:
					v := uint64(i) + 1
					_, had := mine[k]
					if nonUnique && had {
						v = mine[k] // exact-pair duplicate: must be refused
					}
					if s.Insert(key64(k), v) == had {
						t.Errorf("worker %d: insert %d inconsistent (had=%v)", w, k, had)
						return
					}
					if !had {
						mine[k] = v
					}
				case 2:
					v, had := mine[k]
					if s.Delete(key64(k), v) != had {
						t.Errorf("worker %d: delete %d inconsistent (had=%v)", w, k, had)
						return
					}
					delete(mine, k)
				default:
					want, had := mine[k]
					vals = s.Lookup(key64(k), vals[:0])
					if had != (len(vals) == 1) || had && vals[0] != want {
						t.Errorf("worker %d: lookup %d got %v want (%d, %v)", w, k, vals, want, had)
						return
					}
				}
			}
		})
	}
	steps := cs.Run()
	if b := cs.Breaches(); b > 0 {
		t.Logf("watchdog breaches: %d (schedule was not fully serial)", b)
	}
	t.Logf("seed %d: %d sync-point steps, stats=%+v", seed, steps, tr.Stats())
	if err := tr.Validate(); err != nil {
		t.Fatalf("seed %d: validate: %v", seed, err)
	}
	s := tr.NewSession()
	defer s.Release()
	var vals []uint64
	for w := 0; w < nw; w++ {
		for k, want := range owned[w] {
			vals = s.Lookup(key64(k), vals[:0])
			if len(vals) != 1 || vals[0] != want {
				t.Errorf("seed %d: key %d got %v want [%d]", seed, k, vals, want)
			}
		}
	}
}

// TestScheduleNonUniqueInjectedRace pins the two non-unique-key fixes
// from PR 3 under exact schedule control.
//
// Fix 1 (write.go reduce-to-delete): a pair equal to an update's target
// is inserted by a second session at the precise instant between the
// updater's leaf seek and its CaS — the sync-point hook injects it at
// SPLeafPrepend. The updater's retry must then reduce to a delete of
// the old pair instead of creating a duplicate.
//
// Fix 2 (consolidate.go offset -1): the surviving update delta's insert
// half lands at a different sorted position than the pair it replaced,
// so fast consolidation must fall back to the baseline replay or the
// base comes out unsorted.
func TestScheduleNonUniqueInjectedRace(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.FastConsolidate = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	s2 := tr.NewSession()
	defer s2.Release()

	key := []byte("pair-key")
	if !s.Insert(key, 1) || !s.Insert(key, 9) {
		t.Fatal("setup inserts failed")
	}
	tr.ConsolidateAll() // materialize (key,1),(key,9) into the base

	injected := false
	restore := SetSchedHook(func(pi PointInfo) {
		if pi.Point == SPLeafPrepend && !injected {
			injected = true
			// The updater has sought (key,1), confirmed (key,5) absent,
			// and built its ∆update — and has not CaS'd yet. Make
			// (key,5) appear right now.
			if !s2.Insert(key, 5) {
				t.Error("injected insert of (key,5) failed")
			}
		}
	})
	if !s.UpdateValue(key, 1, 5) {
		t.Fatal("UpdateValue(1→5) reported the old pair missing")
	}
	restore()
	if !injected {
		t.Fatal("schedule hook never fired; the race was not exercised")
	}

	want := []uint64{5, 9}
	check := func(when string) {
		t.Helper()
		got := s.Lookup(key, nil)
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("%s: values = %v, want %v (duplicate-pair reduction broken)", when, got, want)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: validate: %v", when, err)
		}
	}
	check("after racing update")
	// Fix 2: consolidating the chain (∆insert(5) injected, ∆delete(1)
	// from the reduction, over base [(1),(9)]) must produce a sorted
	// base — the update/insert offsets cannot be reused verbatim.
	tr.ConsolidateAll()
	check("after consolidation")
}

// TestScheduleFoldedSplitTailRace is the deterministic regression test
// for mode (c) of the high-pressure SMO bug — the folded-split-tail
// wedge found by the bwstress stall detector: a victim whose own split
// folded with its separator unposted must be refused by the merge
// coverage guard, because the merge's ∆separator-delete cannot cover
// the separator's full base range. Under -tags smoracebug the same
// driver reproduces the permanent stale route
// (schedule_smo_red_test.go).
func TestScheduleFoldedSplitTailRace(t *testing.T) {
	out := runFoldedSplitTailRace(t)
	if out.sepFails == 0 {
		t.Fatal("scenario never failed a separator post; the split was not left unposted")
	}
	if out.mergeLocks == 0 {
		t.Fatalf("scenario did not exercise the guard: no merge attempt on the folded victim %d", out.victim)
	}
	if out.merges != 0 {
		t.Errorf("merge of the folded victim completed %d times; the coverage guard must refuse it", out.merges)
	}
	if out.errAfterDrain != nil {
		t.Errorf("validate after refused merge: %v", out.errAfterDrain)
	}
	if out.tailDangling {
		t.Errorf("tree routes tail key %d to a dead node", out.splitKey)
	}
	if out.errFinal != nil {
		t.Errorf("final validate: %v", out.errFinal)
	}
	for k, want := range out.model {
		if got, ok := out.survivors[k]; !ok || got != want {
			t.Errorf("key %d: got (%d, %v), want (%d, true)", k, got, ok, want)
		}
	}
}
