package core

import (
	"bytes"
	"runtime"

	"repro/internal/obs"
)

// Iterator provides ordered forward and backward traversal (§3.2). It
// never operates on live tree nodes: each positioning step materializes a
// private, consolidated copy of one logical leaf node, so concurrent
// inserts, deletes, and SMOs cannot invalidate the cursor. Moving past
// either end of the copy re-traverses the tree using the copy's low or
// high key (Appendix C).
//
// An Iterator is owned by its Session and must not outlive it or be used
// concurrently with it from another goroutine.
type Iterator struct {
	s *Session

	keys    [][]byte
	vals    []uint64
	lowKey  []byte
	highKey []byte
	pos     int
	valid   bool

	// warm absorbs the bytes read by the scan-pipelining prefetch
	// (Options.ScanPipelining); storing them into the iterator keeps the
	// touch loop from being optimized away. Each iterator is owned by one
	// session/goroutine, so the write is race-free.
	warm byte
}

// NewIterator returns an unpositioned iterator; call Seek, SeekFirst, or
// SeekToLast before use.
func (s *Session) NewIterator() *Iterator { return &Iterator{s: s} }

// Valid reports whether the iterator is positioned on an item. It is the
// precondition for Key and Value: it holds after a Seek variant or a
// Next/Prev that found an item, and stays false on a freshly created
// iterator and after the cursor moves past either end of the tree. Key
// and Value panic with a descriptive message when it does not hold.
func (it *Iterator) Valid() bool { return it.valid }

// mustBePositioned panics with an actionable message when the iterator is
// not on an item. Without this guard the access below would fail with a
// bare index-out-of-range that names neither the iterator nor the broken
// contract.
func (it *Iterator) mustBePositioned(method string) {
	if !it.valid || it.pos < 0 || it.pos >= len(it.keys) {
		panic("core: Iterator." + method + " called while not positioned on an item; " +
			"position with Seek/SeekFirst/SeekToLast and check Valid() before every access")
	}
}

// Key returns the current item's key. The slice is shared with the
// iterator's private copy and must not be modified. Key panics unless
// Valid() holds.
func (it *Iterator) Key() []byte {
	it.mustBePositioned("Key")
	return it.keys[it.pos]
}

// Value returns the current item's value. Value panics unless Valid()
// holds.
func (it *Iterator) Value() uint64 {
	it.mustBePositioned("Value")
	return it.vals[it.pos]
}

// loadNode materializes the logical leaf covering key into the iterator.
func (it *Iterator) loadNode(key []byte) bool {
	s := it.s
	s.h.Enter()
	defer s.h.Exit()
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		t0 := s.phStart()
		c := s.collect(tr.head)
		s.phEnd(obs.PhaseChainWalk, t0, uint64(tr.head.depth))
		it.keys, it.vals = c.keys, c.vals
		it.lowKey, it.highKey = tr.head.lowKey, tr.head.highKey
		if s.t.opts.ScanPipelining {
			it.prefetchRight(tr.head)
		}
		return true
	}
}

// prefetchRight pipelines a forward scan: while the caller is about to
// emit the just-materialized leaf, resolve the right sibling's mapping
// entry and touch its base keys at cache-line stride so the next
// advanceNode finds them warm instead of paying a cold miss per probe.
// It runs inside loadNode's epoch pin, so the sibling's chain cannot be
// reclaimed mid-touch; a sibling mid-SMO is simply skipped — this is an
// optimization, never a correctness dependency.
func (it *Iterator) prefetchRight(head *delta) {
	sib := head.rightSib
	if sib == invalidNode {
		return
	}
	shead := it.s.t.load(sib)
	if shead == nil {
		return
	}
	base := shead.base
	if base == nil {
		return
	}
	// Cap the touch at a few KB: a leaf arena is typically smaller, and a
	// scan that stops inside the current leaf shouldn't have dragged an
	// unbounded sibling through the cache.
	const stride, budget = 64, 4096
	var w byte
	if base.offs != nil {
		a := base.arena
		n := min(len(a), budget)
		for i := 0; i < n; i += stride {
			w ^= a[i]
		}
	} else {
		// Slice layout: touching every key defeats the purpose, but the
		// header array itself is the first dependent load of every probe.
		n := min(len(base.keys), budget/stride)
		for i := 0; i < n; i++ {
			if k := base.keys[i]; len(k) > 0 {
				w ^= k[0]
			}
		}
	}
	it.warm = w
}

// loadNodeLeft materializes the logical leaf immediately left of key
// (i.e. covering key-ε), using the backward traversal rule of Appendix
// C.2: when a separator equals the search key, take the next-smaller one.
func (it *Iterator) loadNodeLeft(key []byte) bool {
	s := it.s
	t := s.t
	s.h.Enter()
	defer s.h.Exit()
	spins := 0
restart:
	for {
		if spins > 2 {
			runtime.Gosched()
		}
		spins++
		id := t.root
		parentID := invalidNode
		var parentHead *delta
		for hops := 0; hops < maxTraversalHops; hops++ {
			head := t.load(id)
			if head == nil || head.kind == kAbort {
				s.stats.aborts.Add(1)
				continue restart
			}
			if head.kind == kRemove {
				leftID, ok := s.helpMerge(parentID, parentHead, id, head)
				if !ok {
					s.stats.aborts.Add(1)
					continue restart
				}
				id = leftID
				continue
			}
			// The target covers key-ε: it needs highKey >= key. A node
			// with highKey < key lies too far left; chase right.
			if head.highKey != nil && keyGT(key, head.highKey) {
				if head.rightSib == invalidNode {
					s.stats.aborts.Add(1)
					continue restart
				}
				id = head.rightSib
				continue
			}
			// Appendix C.2 abort rule: a concurrent SMO can hand us a
			// node that no longer lies strictly left of the search key.
			if head.lowKey != nil && !keyGT(key, head.lowKey) {
				s.stats.aborts.Add(1)
				continue restart
			}
			if head.isLeaf {
				c := s.collect(head)
				it.keys, it.vals = c.keys, c.vals
				it.lowKey, it.highKey = head.lowKey, head.highKey
				return true
			}
			child, ok := s.routeInnerLeft(head, key)
			if !ok {
				s.stats.aborts.Add(1)
				continue restart
			}
			parentID, parentHead = id, head
			id = child
		}
		s.stats.aborts.Add(1)
	}
}

// Seek positions the iterator at the smallest item with key >= key.
func (it *Iterator) Seek(key []byte) {
	checkKey(key)
	it.loadNode(key)
	pos, _ := searchKeys(it.keys, key)
	it.pos = pos
	it.valid = true
	if pos >= len(it.keys) {
		it.advanceNode()
	}
}

// SeekFirst positions the iterator at the tree's smallest item.
func (it *Iterator) SeekFirst() {
	it.loadNode([]byte{0})
	// The leftmost leaf has a nil low key; an empty or drained copy
	// advances to the right.
	it.pos = 0
	it.valid = true
	if len(it.keys) == 0 {
		it.advanceNode()
	}
}

// SeekToLast positions the iterator at the tree's largest item.
func (it *Iterator) SeekToLast() {
	// Walk to the rightmost leaf by always taking the last child: loading
	// with +inf is impossible, so chase high keys from the leftmost leaf
	// would be O(n); instead reuse backward stepping from beyond every
	// key: start at the rightmost node via repeated right-sibling chase.
	it.loadNode([]byte{0})
	for it.highKey != nil {
		if !it.loadNode(it.highKey) {
			it.valid = false
			return
		}
	}
	it.pos = len(it.keys) - 1
	it.valid = it.pos >= 0
	if !it.valid && it.lowKey != nil {
		it.valid = true
		it.pos = 0
		it.retreatNode()
	}
}

// Next moves to the next item in ascending key order.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	it.pos++
	if it.pos >= len(it.keys) {
		it.advanceNode()
	}
}

// Prev moves to the previous item in descending key order.
func (it *Iterator) Prev() {
	if !it.valid {
		return
	}
	it.pos--
	if it.pos < 0 {
		it.retreatNode()
	}
}

// advanceNode jumps to the next logical leaf (Appendix C.1): re-traverse
// with the exhausted copy's high key and binary-search it, which lands
// correctly even if the next node merged or split meanwhile.
func (it *Iterator) advanceNode() {
	for {
		if it.highKey == nil {
			it.valid = false
			return
		}
		bound := it.highKey
		it.loadNode(bound)
		pos, _ := searchKeys(it.keys, bound)
		if pos < len(it.keys) {
			it.pos = pos
			return
		}
		// The node is empty past the bound (e.g. everything deleted);
		// keep walking right.
	}
}

// retreatNode jumps to the previous logical leaf (Appendix C.2).
func (it *Iterator) retreatNode() {
	for {
		if it.lowKey == nil {
			it.valid = false
			return
		}
		bound := it.lowKey
		it.loadNodeLeft(bound)
		// Position on the largest item strictly below bound.
		pos, _ := searchKeys(it.keys, bound)
		if pos > 0 {
			it.pos = pos - 1
			return
		}
		// Nothing below the bound in this copy; continue left.
	}
}

// Scan visits at most n items in ascending order starting at the smallest
// key >= start, stopping early when visit returns false. It returns the
// number of items visited. This is the YCSB-E range-scan entry point.
func (s *Session) Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int {
	defer s.opDone(obs.OpScan, s.opStart())
	it := s.NewIterator()
	it.Seek(start)
	count := 0
	for it.Valid() && count < n {
		count++
		if !visit(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return count
}

// Range visits every item with start <= key < end in ascending order,
// stopping early when visit returns false. It returns the number of
// items visited. A nil end means +inf.
func (s *Session) Range(start, end []byte, visit func(key []byte, value uint64) bool) int {
	defer s.opDone(obs.OpScan, s.opStart())
	it := s.NewIterator()
	it.Seek(start)
	count := 0
	for it.Valid() && keyLT(it.Key(), end) {
		count++
		if !visit(it.Key(), it.Value()) {
			break
		}
		it.Next()
	}
	return count
}

// ScanReverse visits at most n items in descending order starting at the
// largest key <= start.
func (s *Session) ScanReverse(start []byte, n int, visit func(key []byte, value uint64) bool) int {
	defer s.opDone(obs.OpScan, s.opStart())
	it := s.NewIterator()
	it.Seek(start)
	if !it.Valid() {
		it.SeekToLast()
	} else if !bytes.Equal(it.Key(), start) {
		it.Prev()
	}
	count := 0
	for it.Valid() && count < n {
		count++
		if !visit(it.Key(), it.Value()) {
			break
		}
		it.Prev()
	}
	return count
}
