//go:build smoracebug

package core

// Red self-tests of the schedule harness, mirroring PR 2's smobug
// pattern: build with -tags smoracebug to compile out the SMO race
// guards (raceguard_off.go) and these tests must reproduce ALL the
// failure modes of the high-pressure bug deterministically — modes (a)
// and (b) of the unposted-separator race plus mode (c), the
// folded-split tail — proving the harness replays the real races, not
// strawmen. The normal build runs the green half
// (schedule_smo_green_test.go) instead.
//
//	go test -tags smoracebug -run TestScheduleRed ./internal/core/

import (
	"strings"
	"testing"
)

func TestScheduleRedUnpostedSeparator(t *testing.T) {
	out := runUnpostedSeparatorRace(t)
	if out.mergeLocks == 0 {
		t.Fatalf("scenario never attempted to merge the unposted sibling %d", out.victim)
	}
	if out.merges == 0 {
		t.Fatalf("unguarded tree refused the bogus merge; the harness no longer reproduces the race")
	}
	// Mode (a): the merge posted a ∆separator-delete for a separator
	// that was never posted, so the parent's size attribute undercounts
	// its materialized content — the lost-∆delete signature.
	if out.errAfterMerge == nil {
		t.Fatalf("expected the lost-∆delete validation failure after merging the unposted sibling")
	}
	if !strings.Contains(out.errAfterMerge.Error(), "size attribute") {
		t.Errorf("mode (a) error = %q, want a size-attribute undercount", out.errAfterMerge)
	}
	t.Logf("mode (a) reproduced: %v", out.errAfterMerge)
	// Mode (b): the delayed Stage III post installed a route to the
	// merged-away node — the poisoned state behind the all-workers
	// wedge (the autopsy's "nil mapping entry" route).
	if !out.routeDangling {
		t.Errorf("expected a dangling route to the dead sibling after the late separator post")
	}
	t.Logf("mode (b): validate=%v dangling=%v", out.errAfterPost, out.routeDangling)
}

// TestScheduleRedFoldedSplitTail proves the folded-split-tail harness
// replays the real mode (c) corruption: with the guards compiled out,
// the drained victim of a folded-but-unposted split is merged away and
// the parent's base separator keeps routing the tail of the range into
// the recycled node — the permanent stale route behind the all-workers
// bwstress/soak livelock.
func TestScheduleRedFoldedSplitTail(t *testing.T) {
	out := runFoldedSplitTailRace(t)
	if out.sepFails == 0 {
		t.Fatal("scenario never failed a separator post; the split was not left unposted")
	}
	if out.mergeLocks == 0 {
		t.Fatalf("scenario never attempted to merge the folded victim %d", out.victim)
	}
	if out.merges == 0 {
		t.Fatalf("unguarded tree refused the bogus merge; the harness no longer reproduces mode (c)")
	}
	if !out.tailDangling {
		t.Errorf("expected the tail route %d → recycled victim after the merge", out.splitKey)
	}
	t.Logf("mode (c) reproduced: merges=%d validate=%v dangling=%v",
		out.merges, out.errAfterDrain, out.tailDangling)
}
