//go:build smobug

package core

// smobugDropInsert re-introduces a classic consolidation bug for checker
// self-tests: a deterministic subset of leaf-insert records silently
// vanishes when the chain is consolidated, exactly as if the consolidator
// had replayed the delta chain incorrectly. The insert was already
// acknowledged to the client, so any later lookup of an affected key is a
// client-visible lost update — which the history checker must flag as
// non-linearizable. The predicate hashes only the key so the bug is
// deterministic for a given workload, independent of scheduling.
func smobugDropInsert(key []byte) bool {
	// FNV-1a over the key; drop ~1 in 8.
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h&7 == 0
}
