package core

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func workers(n int, fn func(worker int)) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

func concurrencyConfigs() map[string]Options {
	def := DefaultOptions()
	base := BaselineOptions()
	tiny := def
	tiny.LeafNodeSize = 16
	tiny.InnerNodeSize = 8
	tiny.LeafChainLength = 4
	tiny.InnerChainLength = 2
	tiny.LeafMergeSize = 4
	tiny.InnerMergeSize = 2
	return map[string]Options{"default": def, "baseline": base, "tinyNodes": tiny}
}

// TestConcurrentDisjointInserts has every worker insert a private key
// range; afterwards every key must be present exactly once.
func TestConcurrentDisjointInserts(t *testing.T) {
	for name, opts := range concurrencyConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			nw := runtime.GOMAXPROCS(0)
			const perWorker = 20000
			workers(nw, func(w int) {
				s := tr.NewSession()
				defer s.Release()
				for i := 0; i < perWorker; i++ {
					k := uint64(w)*perWorker + uint64(i)
					if !s.Insert(key64(k), k) {
						t.Errorf("worker %d: insert %d failed", w, k)
						return
					}
				}
			})
			if t.Failed() {
				return
			}
			s := tr.NewSession()
			defer s.Release()
			for k := uint64(0); k < uint64(nw*perWorker); k++ {
				got := s.Lookup(key64(k), nil)
				if len(got) != 1 || got[0] != k {
					t.Fatalf("lookup %d: %v", k, got)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tr.Count(); got != nw*perWorker {
				t.Fatalf("count %d want %d", got, nw*perWorker)
			}
		})
	}
}

// TestConcurrentContendedInserts races every worker on the SAME key
// space: exactly one insert per key may win.
func TestConcurrentContendedInserts(t *testing.T) {
	for name, opts := range concurrencyConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			const keys = 20000
			var wins atomic.Int64
			workers(runtime.GOMAXPROCS(0), func(w int) {
				s := tr.NewSession()
				defer s.Release()
				for i := 0; i < keys; i++ {
					if s.Insert(key64(uint64(i)), uint64(w)) {
						wins.Add(1)
					}
				}
			})
			if wins.Load() != keys {
				t.Fatalf("%d winning inserts for %d keys", wins.Load(), keys)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := tr.Count(); got != keys {
				t.Fatalf("count %d", got)
			}
		})
	}
}

// TestConcurrentMixed runs a read/update/insert/delete mix over a shared
// key space and then validates structural invariants and per-key
// sanity: every surviving value must be one some worker wrote.
func TestConcurrentMixed(t *testing.T) {
	for name, opts := range concurrencyConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			const keySpace = 8192
			const opsPerWorker = 40000
			workers(runtime.GOMAXPROCS(0), func(w int) {
				s := tr.NewSession()
				defer s.Release()
				rng := rand.New(rand.NewSource(int64(w) + 1))
				var out []uint64
				for i := 0; i < opsPerWorker; i++ {
					k := uint64(rng.Intn(keySpace)) + 1
					switch rng.Intn(10) {
					case 0, 1, 2:
						s.Insert(key64(k), k*1000+uint64(w))
					case 3:
						s.Delete(key64(k), 0)
					case 4, 5:
						s.Update(key64(k), k*1000+uint64(w))
					default:
						out = s.Lookup(key64(k), out[:0])
						if len(out) > 1 {
							t.Errorf("key %d has %d values in unique mode", k, len(out))
							return
						}
						if len(out) == 1 && out[0]%1000 != 0 && out[0]/1000 != k {
							t.Errorf("key %d has foreign value %d", k, out[0])
							return
						}
					}
				}
			})
			if t.Failed() {
				return
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

// TestConcurrentHighContention mimics the paper's Mono-HC workload: every
// worker appends monotonically increasing keys at the right edge of the
// tree, maximizing CaS contention on a single delta chain (§6.2).
func TestConcurrentHighContention(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	var clock atomic.Uint64
	nw := runtime.GOMAXPROCS(0)
	const perWorker = 20000
	workers(nw, func(w int) {
		s := tr.NewSession()
		defer s.Release()
		for i := 0; i < perWorker; i++ {
			k := clock.Add(1)<<8 | uint64(w)
			if !s.Insert(key64(k), k) {
				t.Errorf("hc insert collision for %d", k)
				return
			}
		}
	})
	if t.Failed() {
		return
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Count(); got != nw*perWorker {
		t.Fatalf("count %d want %d", got, nw*perWorker)
	}
	// Contention must be visible in the abort counters (the paper reports
	// abort rates above 1000% at 20 threads).
	if nw > 1 && tr.Stats().Aborts == 0 {
		t.Log("warning: no aborts recorded under high contention")
	}
}

// TestConcurrentIteration runs scans concurrently with mutations. The
// iterator operates on private copies, so every scan must observe a
// sorted, duplicate-free key sequence.
func TestConcurrentIteration(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	{
		s := tr.NewSession()
		for i := uint64(0); i < 50000; i += 2 {
			s.Insert(key64(i), i)
		}
		s.Release()
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Mutators toggle odd keys.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)))
			for !stop.Load() {
				k := uint64(rng.Intn(25000))*2 + 1
				if rng.Intn(2) == 0 {
					s.Insert(key64(k), k)
				} else {
					s.Delete(key64(k), 0)
				}
			}
		}(w)
	}
	// Scanners verify ordering.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			for round := 0; round < 20; round++ {
				var prev uint64
				first := true
				s.Scan(key64(1), 5000, func(k []byte, v uint64) bool {
					cur := binary.BigEndian.Uint64(k)
					if !first && cur <= prev {
						t.Errorf("scan out of order: %d after %d", cur, prev)
						return false
					}
					prev, first = cur, false
					return true
				})
			}
		}(w)
	}
	// Let scanners finish, then stop mutators.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Scanners exit on their own; mutators need the flag. Wait for the
	// scanner portion by re-joining after setting stop once scans finish.
	// Simplest: give scanners their rounds, then stop.
	for i := 0; i < 4*20; i++ {
		runtime.Gosched()
	}
	stop.Store(true)
	<-done
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDeleteHeavy drives nodes into merges while other workers
// read and re-insert, exercising the remove/merge help-along paths.
func TestConcurrentDeleteHeavy(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 32
	opts.InnerNodeSize = 16
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 8
	opts.InnerMergeSize = 4
	tr := New(opts)
	defer tr.Close()

	const keySpace = 30000
	{
		s := tr.NewSession()
		for i := uint64(1); i <= keySpace; i++ {
			s.Insert(key64(i), i)
		}
		s.Release()
	}
	workers(runtime.GOMAXPROCS(0), func(w int) {
		s := tr.NewSession()
		defer s.Release()
		rng := rand.New(rand.NewSource(int64(w) * 17))
		for i := 0; i < 30000; i++ {
			k := uint64(rng.Intn(keySpace)) + 1
			switch rng.Intn(3) {
			case 0:
				s.Delete(key64(k), 0)
			case 1:
				s.Insert(key64(k), k)
			default:
				s.Lookup(key64(k), nil)
			}
		}
	})
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v\n", err)
	}
	if tr.Stats().Merges == 0 {
		t.Log("warning: delete-heavy run recorded no merges")
	}
}
