package core

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSoakOwnership is the in-test version of cmd/bwstress: workers churn
// a shared tree while each exactly tracks the state of a private slice of
// the key space. Any mismatch is a real linearizability violation.
func TestSoakOwnership(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow")
	}
	opts := DefaultOptions()
	opts.LeafNodeSize = 32
	opts.InnerNodeSize = 16
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 8
	opts.InnerMergeSize = 4
	tr := New(opts)
	defer tr.Close()

	const nw = 6
	const keyspace = 20000
	deadline := time.Now().Add(8 * time.Second)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)*97 + 1))
			owned := map[uint64]uint64{}
			var out []uint64
			for !stop.Load() {
				k := uint64(w) + uint64(rng.Intn(keyspace))*nw + 1
				switch rng.Intn(6) {
				case 0:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Insert(key64(k), v) == had {
						t.Errorf("worker %d: insert key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					if !had {
						owned[k] = v
					}
				case 1:
					_, had := owned[k]
					if s.Delete(key64(k), 0) != had {
						t.Errorf("worker %d: delete key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					delete(owned, k)
				case 2:
					v := rng.Uint64()
					_, had := owned[k]
					if s.Update(key64(k), v) != had {
						t.Errorf("worker %d: update key %d inconsistent (had=%v)", w, k, had)
						stop.Store(true)
						return
					}
					if had {
						owned[k] = v
					}
				case 3, 4:
					want, had := owned[k]
					out = s.Lookup(key64(k), out[:0])
					if had != (len(out) == 1) || had && out[0] != want {
						t.Errorf("worker %d: lookup key %d got %v want %d,%v", w, k, out, want, had)
						stop.Store(true)
						return
					}
				default:
					var prev uint64
					first := true
					s.Scan(key64(k), 32, func(kk []byte, v uint64) bool {
						cur := binary.BigEndian.Uint64(kk)
						if !first && cur <= prev {
							t.Errorf("worker %d: scan order violation %d after %d", w, cur, prev)
							stop.Store(true)
							return false
						}
						prev, first = cur, false
						return true
					})
				}
			}
		}(w)
	}
	for time.Now().Before(deadline) && !stop.Load() {
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
