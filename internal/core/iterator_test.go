package core

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestIteratorSeekSemantics(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(10); i <= 100; i += 10 {
		s.Insert(key64(i), i)
	}
	it := s.NewIterator()

	// Exact seek.
	it.Seek(key64(50))
	if !it.Valid() || binary.BigEndian.Uint64(it.Key()) != 50 {
		t.Fatalf("seek 50: valid=%v", it.Valid())
	}
	// Between keys: lands on the next larger.
	it.Seek(key64(55))
	if binary.BigEndian.Uint64(it.Key()) != 60 {
		t.Fatalf("seek 55 landed on %d", binary.BigEndian.Uint64(it.Key()))
	}
	// Past the end.
	it.Seek(key64(1000))
	if it.Valid() {
		t.Fatal("seek past end is valid")
	}
	// SeekFirst / SeekToLast.
	it.SeekFirst()
	if binary.BigEndian.Uint64(it.Key()) != 10 {
		t.Fatalf("first %d", binary.BigEndian.Uint64(it.Key()))
	}
	it.SeekToLast()
	if binary.BigEndian.Uint64(it.Key()) != 100 {
		t.Fatalf("last %d", binary.BigEndian.Uint64(it.Key()))
	}
	// Prev from first invalidates.
	it.SeekFirst()
	it.Prev()
	if it.Valid() {
		t.Fatal("prev before first is valid")
	}
	// Next from last invalidates.
	it.SeekToLast()
	it.Next()
	if it.Valid() {
		t.Fatal("next after last is valid")
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	it := s.NewIterator()
	it.SeekFirst()
	if it.Valid() {
		t.Fatal("empty tree iterator valid")
	}
	it.SeekToLast()
	if it.Valid() {
		t.Fatal("empty tree SeekToLast valid")
	}
	it.Seek(key64(1))
	if it.Valid() {
		t.Fatal("empty tree Seek valid")
	}
}

func TestIteratorBidirectional(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i*2+2), i)
	}
	it := s.NewIterator()
	// Walk to the middle, then reverse, then forward again.
	it.Seek(key64(n)) // middle
	mid := binary.BigEndian.Uint64(it.Key())
	it.Next()
	it.Prev()
	if got := binary.BigEndian.Uint64(it.Key()); got != mid {
		t.Fatalf("next+prev moved: %d -> %d", mid, got)
	}
	it.Prev()
	if got := binary.BigEndian.Uint64(it.Key()); got != mid-2 {
		t.Fatalf("prev: %d", got)
	}
}

// TestIteratorUnderConcurrentMerges runs backward iteration while other
// goroutines delete whole regions (forcing merges) — the Appendix C.2
// scenario where separators vanish mid-traversal.
func TestIteratorUnderConcurrentMerges(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 32
	opts.InnerNodeSize = 16
	opts.LeafChainLength = 8
	opts.LeafMergeSize = 8
	opts.InnerMergeSize = 4
	tr := New(opts)
	defer tr.Close()
	{
		s := tr.NewSession()
		for i := uint64(1); i <= 40000; i++ {
			s.Insert(key64(i), i)
		}
		s.Release()
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Deleters drain random 256-key regions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			s := tr.NewSession()
			defer s.Release()
			for !stop.Load() {
				base := uint64(rng.Intn(39000))
				for i := uint64(0); i < 256; i++ {
					s.Delete(key64(base+i+1), 0)
				}
				for i := uint64(0); i < 256; i++ {
					s.Insert(key64(base+i+1), base+i+1)
				}
			}
		}(w)
	}
	// Backward iterators must always observe strictly decreasing keys.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := tr.NewSession()
			defer s.Release()
			for round := 0; round < 10; round++ {
				it := s.NewIterator()
				prev := uint64(1 << 62)
				count := 0
				for it.SeekToLast(); it.Valid() && count < 3000; it.Prev() {
					cur := binary.BigEndian.Uint64(it.Key())
					if cur >= prev {
						t.Errorf("backward order violated: %d then %d", prev, cur)
						return
					}
					prev = cur
					count++
				}
			}
		}(w)
	}
	// Forward scanners too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := tr.NewSession()
		defer s.Release()
		for round := 0; round < 20; round++ {
			prev := uint64(0)
			s.Scan(key64(1), 5000, func(k []byte, v uint64) bool {
				cur := binary.BigEndian.Uint64(k)
				if cur <= prev {
					t.Errorf("forward order violated: %d then %d", prev, cur)
					return false
				}
				prev = cur
				return true
			})
		}
	}()
	// Give iterators a moment of overlap, then stop deleters once the
	// iterator goroutines have finished their rounds.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	stop.Store(true)
	<-done
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScanReverse(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(0); i < 100; i++ {
		s.Insert(key64(i*2), i)
	}
	var got []uint64
	// From an existing key: inclusive.
	s.ScanReverse(key64(50), 3, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	want := []uint64{50, 48, 46}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rscan: %v", got)
		}
	}
	// From between keys: starts below.
	got = got[:0]
	s.ScanReverse(key64(51), 2, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if len(got) != 2 || got[0] != 50 || got[1] != 48 {
		t.Fatalf("rscan from 51: %v", got)
	}
}

func TestOptionsSanitize(t *testing.T) {
	var o Options
	o.sanitize()
	d := DefaultOptions()
	if o.LeafNodeSize != d.LeafNodeSize || o.InnerChainLength != d.InnerChainLength {
		t.Fatalf("sanitized zero options: %+v", o)
	}
	// Merge sizes are clamped below half the node size.
	o = DefaultOptions()
	o.LeafMergeSize = 1000
	o.sanitize()
	if o.LeafMergeSize > o.LeafNodeSize/2 {
		t.Fatalf("merge size not clamped: %d", o.LeafMergeSize)
	}
}

func TestStatsAggregation(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s1 := tr.NewSession()
	s2 := tr.NewSession()
	for i := uint64(0); i < 1000; i++ {
		s1.Insert(key64(i), i)
		s2.Lookup(key64(i), nil)
	}
	live := tr.Stats()
	if live.Ops != 2000 {
		t.Fatalf("live ops %d", live.Ops)
	}
	s1.Release()
	s2.Release()
	after := tr.Stats()
	if after.Ops != 2000 {
		t.Fatalf("post-release ops %d", after.Ops)
	}
	if after.GC.Retired == 0 {
		t.Fatal("no retires recorded")
	}
}

func TestGCSchemesBothWork(t *testing.T) {
	for _, scheme := range []GCScheme{GCCentralized, GCDecentralized} {
		opts := DefaultOptions()
		opts.GC = scheme
		opts.LeafChainLength = 4
		tr := New(opts)
		s := tr.NewSession()
		for i := uint64(0); i < 20000; i++ {
			s.Insert(key64(i), i)
		}
		for i := uint64(0); i < 20000; i += 2 {
			s.Delete(key64(i), 0)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("scheme %v: %v", scheme, err)
		}
		s.Release()
		tr.Close()
		if st := tr.Stats(); st.GC.Reclaimed != st.GC.Retired {
			t.Fatalf("scheme %v: retired %d reclaimed %d", scheme, st.GC.Retired, st.GC.Reclaimed)
		}
	}
}
