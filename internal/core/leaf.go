package core

import (
	"bytes"

	"repro/internal/obs"
)

// seekResult is the outcome of a unique-key leaf chain replay.
type seekResult struct {
	found bool
	value uint64
	// baseOff is the record's base-node offset (Table 1): for an absent
	// key, where it would be inserted; for a present key found in the
	// base, its position; for a key decided by a delta record, that
	// record's offset. Negative when unknown.
	baseOff int32
	// ver is the version stamp of the record that decided the seek: the
	// delta's stamp, or the base record's preserved stamp. Absent keys
	// report 0 ("no state"), including keys decided by a delete delta —
	// absence has no version, so a reader validating an absent key only
	// needs the key to still be absent.
	ver uint64
}

// leafSeek replays a leaf Delta Chain for key under unique-key semantics:
// the first matching record decides (§3.1, first paragraph). While
// replaying it narrows the base binary-search window with delta offsets
// when the SearchShortcuts optimization is on (§4.4).
func (s *Session) leafSeek(head *delta, key []byte) seekResult {
	shortcuts := s.t.opts.SearchShortcuts
	lo, hi := 0, int(^uint(0)>>1) // [lo, hi] inclusive insertion-point bounds

	d := head
	for {
		switch d.kind {
		case kLeafInsert:
			c := bytes.Compare(key, d.key)
			if c == 0 {
				return seekResult{found: true, value: d.value, baseOff: d.offset, ver: d.ver}
			}
			if shortcuts && d.offset >= 0 {
				// d.key is absent from the base; d.offset is its would-be
				// insertion point.
				if c > 0 {
					lo = max(lo, int(d.offset))
				} else {
					hi = min(hi, int(d.offset))
				}
			}
		case kLeafDelete:
			c := bytes.Compare(key, d.key)
			if c == 0 {
				return seekResult{found: false, baseOff: d.offset}
			}
			if shortcuts && d.offset >= 0 {
				// A delete's offset usually names d.key's base position,
				// but when the record chain created the key the offset
				// was copied from the original insert (a would-be
				// position), so only the insert-safe bounds apply.
				if c > 0 {
					lo = max(lo, int(d.offset))
				} else {
					hi = min(hi, int(d.offset))
				}
			}
		case kLeafUpdate:
			c := bytes.Compare(key, d.key)
			if c == 0 {
				return seekResult{found: true, value: d.value, baseOff: d.offset, ver: d.ver}
			}
			if shortcuts && d.offset >= 0 {
				if c > 0 {
					lo = max(lo, int(d.offset))
				} else {
					hi = min(hi, int(d.offset))
				}
			}
		case kSplit:
			// Keys >= the split key are filtered by the high-key check
			// before the replay starts; nothing to do.
		case kMerge:
			// Offsets recorded above a merge may reference either
			// branch's base node, so the accumulated window is unreliable
			// for whichever base this replay ends at: reset it.
			lo, hi = 0, int(^uint(0)>>1)
			if keyGE(key, d.key) {
				s.chases++
				d = d.mergeContent
				continue
			}
		case kLeafBase:
			n := d.baseLen()
			l, h := 0, n
			if shortcuts {
				l, h = clampWindow(lo, hi, n)
			}
			t0 := s.phStart()
			pos, exact := d.baseSearchRange(key, l, h)
			s.phEnd(obs.PhaseBaseSearch, t0, uint64(h-l))
			if exact {
				return seekResult{found: true, value: d.vals[pos], baseOff: int32(pos), ver: d.baseVer(pos)}
			}
			return seekResult{found: false, baseOff: int32(pos)}
		default:
			// Inner kinds cannot appear in a leaf chain; skip the
			// unexpected record and fall through to the base search
			// conservatively. Its offset cannot be trusted, so the
			// accumulated search window is reset. A chain that never
			// reaches a base reports not-found with no offset.
			lo, hi = 0, int(^uint(0)>>1)
			if d.next == nil {
				return seekResult{found: false, baseOff: -1}
			}
		}
		s.chases++
		d = d.next
	}
}

// leafSeekProbed wraps leafSeek with a PhaseChainWalk span carrying the
// chain depth walked; the base search inside records its own nested
// PhaseBaseSearch span. Disabled cost: one nil check per call.
func (s *Session) leafSeekProbed(head *delta, key []byte) seekResult {
	t0 := s.phStart()
	r := s.leafSeek(head, key)
	s.phEnd(obs.PhaseChainWalk, t0, uint64(head.depth))
	return r
}

// leafSeekPairProbed is leafSeekProbed for the exact-pair replay.
func (s *Session) leafSeekPairProbed(head *delta, key []byte, value uint64) seekResult {
	t0 := s.phStart()
	r := s.leafSeekPair(head, key, value)
	s.phEnd(obs.PhaseChainWalk, t0, uint64(head.depth))
	return r
}

// collectValuesProbed is leafSeekProbed for the non-unique full replay.
func (s *Session) collectValuesProbed(head *delta, key []byte, out []uint64) ([]uint64, int32) {
	t0 := s.phStart()
	res, baseOff := s.collectValues(head, key, out)
	s.phEnd(obs.PhaseChainWalk, t0, uint64(head.depth))
	return res, baseOff
}

// clampWindow converts inclusive insertion-point bounds into a valid
// binary-search window over n base items.
func clampWindow(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// collectValues replays a leaf Delta Chain for key under non-unique
// semantics (§3.1): S_present accumulates values proven present,
// S_deleted values proven deleted, and the result is
// S_present ∪ (S_base − S_deleted). Values are appended to out. baseOff is
// the smallest base offset of items with the key (the paper's offset
// simplification for non-unique indexes, §4.3).
func (s *Session) collectValues(head *delta, key []byte, out []uint64) (res []uint64, baseOff int32) {
	present := s.present[:0]
	deleted := s.deleted[:0]

	d := head
	for {
		switch d.kind {
		case kLeafInsert:
			if bytes.Equal(key, d.key) && !containsVal(deleted, d.value) && !containsVal(present, d.value) {
				present = append(present, d.value)
			}
		case kLeafDelete:
			if bytes.Equal(key, d.key) && !containsVal(present, d.value) {
				deleted = append(deleted, d.value)
			}
		case kLeafUpdate:
			// An update is an insert of the new value followed by a
			// delete of the old one (§3.1).
			if bytes.Equal(key, d.key) {
				if !containsVal(deleted, d.value) && !containsVal(present, d.value) {
					present = append(present, d.value)
				}
				if !containsVal(present, d.oldValue) {
					deleted = append(deleted, d.oldValue)
				}
			}
		case kSplit:
			// Filtered by the high-key check; nothing to do.
		case kMerge:
			if keyGE(key, d.key) {
				s.chases++
				d = d.mergeContent
				continue
			}
		case kLeafBase:
			pos, _ := d.baseSearch(key)
			out = append(out, present...)
			for i, n := pos, d.baseLen(); i < n && bytes.Equal(d.baseKey(i), key); i++ {
				if v := d.vals[i]; !containsVal(deleted, v) && !containsVal(present, v) {
					out = append(out, v)
				}
			}
			s.present, s.deleted = present, deleted // return scratch space
			return out, int32(pos)
		default:
			// Skip the unexpected record and keep replaying toward the
			// base (see leafSeek); a chain with no base reports no values.
			if d.next == nil {
				s.present, s.deleted = present, deleted
				return out, -1
			}
		}
		s.chases++
		d = d.next
	}
}

// leafSeekPair replays a leaf chain for the visibility of one exact
// (key, value) pair under non-unique semantics. Unlike collectValues it
// stops at the first record that decides the pair — newer records always
// override older ones for the same pair — which gives the write paths
// (Insert/Delete/UpdateValue) the same early-exit cost profile as the
// unique-key seek. §3.1's full set computation is only needed when every
// value must be returned.
func (s *Session) leafSeekPair(head *delta, key []byte, value uint64) seekResult {
	d := head
	for {
		switch d.kind {
		case kLeafInsert:
			if d.value == value && bytes.Equal(key, d.key) {
				return seekResult{found: true, value: value, baseOff: d.offset}
			}
		case kLeafDelete:
			if d.value == value && bytes.Equal(key, d.key) {
				return seekResult{found: false, baseOff: d.offset}
			}
		case kLeafUpdate:
			if bytes.Equal(key, d.key) {
				if d.value == value {
					return seekResult{found: true, value: value, baseOff: d.offset}
				}
				if d.oldValue == value {
					return seekResult{found: false, baseOff: d.offset}
				}
			}
		case kSplit:
			// Filtered by the high-key check; nothing to do.
		case kMerge:
			if keyGE(key, d.key) {
				s.chases++
				d = d.mergeContent
				continue
			}
		case kLeafBase:
			pos, _ := d.baseSearch(key)
			for i, n := pos, d.baseLen(); i < n && bytes.Equal(d.baseKey(i), key); i++ {
				if d.vals[i] == value {
					return seekResult{found: true, value: value, baseOff: int32(pos)}
				}
			}
			return seekResult{found: false, baseOff: int32(pos)}
		default:
			// Skip the unexpected record and keep replaying toward the
			// base (see leafSeek).
			if d.next == nil {
				return seekResult{found: false, baseOff: -1}
			}
		}
		s.chases++
		d = d.next
	}
}

// leafSeekFirstVisible returns the newest visible value for key under
// non-unique semantics, stopping as soon as one value is proven present
// (an insert or update whose value no newer record deleted). Only the
// deleted set is tracked, so the common case exits within a few records.
func (s *Session) leafSeekFirstVisible(head *delta, key []byte) seekResult {
	deleted := s.deleted[:0]
	defer func() { s.deleted = deleted[:0] }()
	d := head
	for {
		switch d.kind {
		case kLeafInsert:
			if bytes.Equal(key, d.key) && !containsVal(deleted, d.value) {
				return seekResult{found: true, value: d.value, baseOff: d.offset}
			}
		case kLeafDelete:
			if bytes.Equal(key, d.key) {
				deleted = append(deleted, d.value)
			}
		case kLeafUpdate:
			if bytes.Equal(key, d.key) {
				if !containsVal(deleted, d.value) {
					return seekResult{found: true, value: d.value, baseOff: d.offset}
				}
				deleted = append(deleted, d.oldValue)
			}
		case kSplit:
			// Filtered by the high-key check; nothing to do.
		case kMerge:
			if keyGE(key, d.key) {
				s.chases++
				d = d.mergeContent
				continue
			}
		case kLeafBase:
			pos, _ := d.baseSearch(key)
			for i, n := pos, d.baseLen(); i < n && bytes.Equal(d.baseKey(i), key); i++ {
				if !containsVal(deleted, d.vals[i]) {
					return seekResult{found: true, value: d.vals[i], baseOff: int32(pos)}
				}
			}
			return seekResult{found: false, baseOff: int32(pos)}
		default:
			// Skip the unexpected record and keep replaying toward the
			// base (see leafSeek).
			if d.next == nil {
				return seekResult{found: false, baseOff: -1}
			}
		}
		s.chases++
		d = d.next
	}
}

func containsVal(vs []uint64, v uint64) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
