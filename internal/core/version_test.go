package core

import (
	"encoding/binary"
	"testing"
)

func vkey(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

func TestLookupVersionBasics(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	if _, ver, found := s.LookupVersion(vkey(1)); found || ver != 0 {
		t.Fatalf("absent key: ver=%d found=%v, want 0,false", ver, found)
	}
	s.Insert(vkey(1), 10)
	_, v1, found := s.LookupVersion(vkey(1))
	if !found || v1 == 0 {
		t.Fatalf("after insert: ver=%d found=%v", v1, found)
	}
	s.Update(vkey(1), 20)
	val, v2, found := s.LookupVersion(vkey(1))
	if !found || val != 20 {
		t.Fatalf("after update: val=%d found=%v", val, found)
	}
	if v2 <= v1 {
		t.Fatalf("update version %d not above insert version %d", v2, v1)
	}
	// Stability: re-reading an untouched key returns the same stamp.
	if _, v3, _ := s.LookupVersion(vkey(1)); v3 != v2 {
		t.Fatalf("version moved without a write: %d -> %d", v2, v3)
	}
	s.Delete(vkey(1), 0)
	if _, ver, found := s.LookupVersion(vkey(1)); found || ver != 0 {
		t.Fatalf("after delete: ver=%d found=%v, want 0,false", ver, found)
	}
	// Reinsert gets a fresh, larger stamp.
	s.Insert(vkey(1), 30)
	if _, v4, _ := s.LookupVersion(vkey(1)); v4 <= v2 {
		t.Fatalf("reinsert version %d not above %d", v4, v2)
	}
}

// TestLookupVersionSurvivesConsolidation drives enough writes through
// small nodes that records migrate delta -> consolidated base -> split
// children, and checks every key still reports the stamp observed right
// after its last write. A lost or reassigned stamp would make the
// transaction layer abort (or worse, validate) spuriously.
func TestLookupVersionSurvivesConsolidation(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), BaselineOptions()} {
		opts.LeafNodeSize = 16
		opts.InnerNodeSize = 16
		opts.LeafChainLength = 4
		tr := New(opts)
		s := tr.NewSession()

		const n = 4000
		want := make(map[uint64]uint64, n)
		for i := uint64(0); i < n; i++ {
			s.Insert(vkey(i), i)
			_, v, found := s.LookupVersion(vkey(i))
			if !found {
				t.Fatalf("key %d missing after insert", i)
			}
			want[i] = v
		}
		for i := uint64(0); i < n; i += 3 {
			s.Update(vkey(i), i*2)
			_, v, _ := s.LookupVersion(vkey(i))
			want[i] = v
		}
		// More inserts to force additional consolidations over the updated
		// records.
		for i := uint64(n); i < n+1000; i++ {
			s.Insert(vkey(i), i)
			_, v, _ := s.LookupVersion(vkey(i))
			want[i] = v
		}
		for i, wv := range want {
			_, v, found := s.LookupVersion(vkey(i))
			if !found {
				t.Fatalf("key %d lost", i)
			}
			if v != wv {
				t.Fatalf("key %d version drifted: got %d want %d", i, v, wv)
			}
		}
		s.Release()
		tr.Close()
	}
}

func TestLookupVersionBulkLoad(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	i := uint64(0)
	if err := tr.BulkLoad(func() ([]byte, uint64, bool) {
		if i >= 100 {
			return nil, 0, false
		}
		k, v := vkey(i), i
		i++
		return k, v, true
	}); err != nil {
		t.Fatal(err)
	}
	s := tr.NewSession()
	defer s.Release()
	_, v0, found := s.LookupVersion(vkey(0))
	if !found || v0 == 0 {
		t.Fatalf("bulk-loaded key has ver=%d found=%v", v0, found)
	}
	for i := uint64(1); i < 100; i++ {
		if _, v, _ := s.LookupVersion(vkey(i)); v != v0 {
			t.Fatalf("bulk-loaded keys differ in stamp: %d vs %d", v, v0)
		}
	}
	// A post-load write moves past the load stamp.
	s.Update(vkey(5), 99)
	if _, v, _ := s.LookupVersion(vkey(5)); v <= v0 {
		t.Fatalf("post-load update stamp %d not above load stamp %d", v, v0)
	}
}
