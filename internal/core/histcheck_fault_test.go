// Fault-injection schedules verified for client-visible correctness, not
// just structural validity: each test installs a deterministic CaS-failure
// schedule and drives a concurrent mixed workload through the history
// checker. The quiescent oracles in faultinject_test.go prove the tree
// *ends up* consistent; these prove no client ever *observed* an
// inconsistency while SMOs were being failed and retried underneath it.
//
// This lives in an external test package because histcheck imports core
// (via the index adapters), so package core itself cannot import it.
package core_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/index"
)

// smallTreeOpts shrinks nodes and chains so the checked workload crosses
// every SMO path thousands of times.
func smallTreeOpts() core.Options {
	opts := core.DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	return opts
}

// runCheckedFaulty drives a split-heavy churn mix under the given fault
// hook and requires a clean history.
func runCheckedFaulty(t *testing.T, hook func(core.CASInfo) bool) {
	mix := histcheck.Mix{Name: "churn", Insert: 35, Delete: 30, Update: 10, Lookup: 20, Scan: 5}
	runCheckedFaultyMix(t, hook, mix, histcheck.DefaultRunConfig(7))
}

// runCheckedFaultyDraining is the merge-path variant: the keyspace starts
// fully populated and deletes dominate inserts, so leaves reliably drain
// below the merge threshold and the merge protocol fires even in -short
// runs.
func runCheckedFaultyDraining(t *testing.T, hook func(core.CASInfo) bool) {
	mix := histcheck.Mix{Name: "drain", Insert: 15, Delete: 50, Update: 5, Lookup: 25, Scan: 5}
	cfg := histcheck.DefaultRunConfig(7)
	cfg.Keys = 256
	cfg.Preload = 256
	runCheckedFaultyMix(t, hook, mix, cfg)
}

func runCheckedFaultyMix(t *testing.T, hook func(core.CASInfo) bool, mix histcheck.Mix, cfg histcheck.RunConfig) {
	restore := core.SetCASFailHook(hook)
	defer restore()

	idx := index.NewBwTreeWith("OpenBwTree-faulty", smallTreeOpts())
	defer idx.Close()

	if testing.Short() {
		cfg.OpsPerThread = 700
	}
	vs, h := histcheck.RunChecked(idx, false, mix, cfg)
	for _, v := range vs {
		t.Errorf("client-visible violation under fault injection: %v", v)
	}
	if t.Failed() {
		t.Logf("history: %d ops", len(h.Ops))
	}
}

// TestCheckedSplitSeparatorFailures fails the first few ∆separator posts
// for every split child: splits stay half-finished while clients race
// through them.
func TestCheckedSplitSeparatorFailures(t *testing.T) {
	_, sepIns, _, _, _, _ := core.DeltaKindNames()
	var mu sync.Mutex
	failures := map[uint64]int{}
	fired := atomic.Int64{}
	runCheckedFaulty(t, func(ci core.CASInfo) bool {
		if ci.NewKind != sepIns {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if failures[ci.Child] < 3 {
			failures[ci.Child]++
			fired.Add(1)
			return true
		}
		return false
	})
	if fired.Load() == 0 {
		t.Fatal("injection never fired")
	}
}

// TestCheckedSplitDeltaFailures fails every other ∆split publication:
// splits abandon and are retried while clients observe the node.
func TestCheckedSplitDeltaFailures(t *testing.T) {
	split, _, _, _, _, _ := core.DeltaKindNames()
	var count atomic.Int64
	runCheckedFaulty(t, func(ci core.CASInfo) bool {
		if ci.NewKind != split {
			return false
		}
		return count.Add(1)%2 == 1
	})
	if count.Load() == 0 {
		t.Fatal("injection never fired")
	}
}

// TestCheckedMergeFailures fails half of all merge-protocol publications
// (∆abort, ∆remove, ∆merge) so merges abandon at every stage boundary
// under concurrent clients.
func TestCheckedMergeFailures(t *testing.T) {
	_, _, abort, remove, merge, _ := core.DeltaKindNames()
	var count atomic.Int64
	runCheckedFaultyDraining(t, func(ci core.CASInfo) bool {
		if ci.NewKind != abort && ci.NewKind != remove && ci.NewKind != merge {
			return false
		}
		return count.Add(1)%2 == 1
	})
	if count.Load() == 0 {
		t.Fatal("injection never fired")
	}
}

// TestCheckedRandomChaos sprays deterministic pseudo-random failures over
// every CaS class at once.
func TestCheckedRandomChaos(t *testing.T) {
	var state atomic.Uint64
	state.Store(99)
	runCheckedFaulty(t, func(ci core.CASInfo) bool {
		// splitmix64 step; thread-safe and deterministic in aggregate.
		x := state.Add(0x9E3779B97F4A7C15)
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		x ^= x >> 31
		return x%10 == 0
	})
}
