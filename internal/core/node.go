package core

import (
	"bytes"
	"sync/atomic"
)

// nodeID is a logical node identifier resolved through the mapping table.
type nodeID = uint64

const invalidNode nodeID = ^nodeID(0)

// kind tags every element of a Delta Chain.
type kind uint8

const (
	kLeafBase kind = iota
	kInnerBase
	kLeafInsert
	kLeafDelete
	kLeafUpdate
	kInnerInsert // ∆separator posted by a split (Appendix A.1, Stage III)
	kInnerDelete // ∆separator removal posted by a merge (Appendix A.2, Stage III)
	kSplit       // half-split marker on the split node (Stage II)
	kMerge       // merge marker on the surviving left sibling (Stage II)
	kRemove      // removal marker on the node being merged away (Stage I)
	kAbort       // write-lock on a parent during a merge (Appendix B)
)

var kindNames = [...]string{
	"LeafBase", "InnerBase", "LeafInsert", "LeafDelete", "LeafUpdate",
	"InnerInsert", "InnerDelete", "Split", "Merge", "Remove", "Abort",
}

func (k kind) String() string { return kindNames[k] }

// delta is one element of a logical node: either a base node or a delta
// record. A single struct with a kind tag keeps chain traversal free of
// interface dispatch. Every element carries the logical node's attributes
// as of the moment it was appended (Table 1 of the paper), so navigation
// and SMO decisions never need to replay the chain.
type delta struct {
	kind   kind
	isLeaf bool
	// depth is the number of delta records above the base (0 for bases).
	depth uint16
	// size is the logical node's item count at this point in time.
	size int32
	// offset is the base-node position associated with the record's key:
	// for an insert, where the key would land in the base; for a delete,
	// where the existing key sits. Drives fast consolidation (§4.3) and
	// search shortcuts (§4.4). Negative when unknown.
	offset int32

	// lowKey is the smallest key of the logical node (nil = -inf).
	lowKey []byte
	// highKey is the smallest key of the right sibling (nil = +inf).
	highKey []byte
	// rightSib is the logical ID of the right sibling (invalidNode if none).
	rightSib nodeID

	// next points toward the base node; nil for base nodes.
	next *delta
	// base points directly at the chain's base node (itself for bases),
	// giving O(1) access to the pre-allocation slab.
	base *delta

	// key is the record's key: the inserted/deleted/updated key for leaf
	// records, the separator key for inner records, the split key for
	// kSplit, and the merge key (right branch's low key) for kMerge.
	key []byte
	// value is the leaf record's value.
	value uint64
	// oldValue is the value replaced by a kLeafUpdate.
	oldValue uint64
	// ver is the record's version stamp, drawn from the tree-global
	// counter when a leaf insert/update/delete is published. Versions are
	// the observation primitive of the optimistic transaction layer
	// (internal/txn): a reader records the version it saw and a validator
	// re-reads it, so any intervening publish — which necessarily drew a
	// fresh counter value — is detected. Absent keys read as version 0.
	// Versions are in-memory only; recovery restamps from fresh counters.
	ver uint64
	// child is the routed node: the new separator's child for
	// kInnerInsert, and the new right sibling for kSplit.
	child nodeID
	// nextKey bounds the routing interval of kInnerInsert/kInnerDelete
	// records on the right (nil = the node's high key).
	nextKey []byte
	// leftKey/leftChild describe the separator immediately left of a
	// deleted separator: a kInnerDelete routes [leftKey, nextKey) to
	// leftChild.
	leftKey   []byte
	leftChild nodeID
	// mergeContent is the physical pointer to the absorbed right branch's
	// chain (kMerge); deleteID is the right branch's logical ID, recycled
	// once the merge completes.
	mergeContent *delta
	deleteID     nodeID

	// Base-node payload. keys/vals for leaves; keys/kids for inner nodes,
	// where kids[i] covers [keys[i], keys[i+1]). keys[0] of an inner base
	// equals the node's low key.
	//
	// Keys use one of two layouts (see flatnode.go): the slice layout
	// fills keys; the flat layout (Options.FlatBaseNodes) leaves keys nil
	// and fills arena/offs/pfx/nil0 instead — key i is
	// arena[offs[i]:offs[i+1]], pfx is the length of the prefix shared by
	// every key, and nil0 marks a leftmost inner base whose key 0 is the
	// nil -inf separator. A non-nil offs identifies a flat base. Access
	// goes through baseLen/baseKey/baseSearch*.
	keys  [][]byte
	arena []byte
	offs  []uint32
	pfx   uint32
	// stride is the uniform key length of a flat base whose keys all have
	// the same length (0 when lengths vary): key i starts at i*stride, so
	// fixed-width probes skip the offs load entirely (see routeSearch).
	stride uint32
	// sfx is the partial-key search plane of a flat inner base: sfx[i] is
	// the first 8 post-prefix bytes of key i packed big-endian (zero
	// padded), so a routing probe binary-searches one pointer-free,
	// line-sequential word array with register compares and touches the
	// arena only on the rare word tie (see wordSearch).
	sfx  []uint64
	nil0 bool
	vals []uint64
	kids []nodeID
	// vers carries the per-record version stamps of a leaf base, parallel
	// to vals; consolidation preserves each surviving record's stamp so a
	// record's version only changes when its value may have.
	vers []uint64

	// slab is the node's pre-allocated delta area (bases only, when the
	// Preallocate optimization is on).
	slab *slab
}

// slab is the pre-allocated delta area attached to a base node (§4.1).
// Threads claim slots with a single atomic add on marker; the slots array
// is contiguous, so chain traversal touches adjacent memory. When the slab
// is exhausted the claiming thread triggers a consolidation, which installs
// a fresh base node with a fresh slab.
type slab struct {
	marker atomic.Int32
	slots  []delta
}

// newSlab returns a slab with n delta slots.
func newSlab(n int) *slab {
	return &slab{slots: make([]delta, n)}
}

// claim reserves one slot, or returns nil when the slab is full. A slot
// claimed by a thread whose subsequent CaS fails is simply wasted, exactly
// as in the paper (it lowers the utilization reported in Table 2). The
// slot is cleared here because slabs are recycled through the epoch GC.
func (s *slab) claim() *delta {
	i := s.marker.Add(1) - 1
	if int(i) >= len(s.slots) {
		return nil
	}
	d := &s.slots[i]
	*d = delta{}
	return d
}

// slabPool recycles retired slabs: a Treiber stack fed by epoch-GC
// reclamation callbacks. This is the moral equivalent of the paper's
// allocator returning node chunks once their epoch drains — and it is
// what makes pre-allocation pay off under Go's GC, where allocating a
// fresh pointer-dense slab per consolidation would dwarf the delta
// allocations it saves.
type slabPool struct {
	head atomic.Pointer[pooledSlab]
}

type pooledSlab struct {
	s    *slab
	next *pooledSlab
}

func (p *slabPool) put(s *slab) {
	n := &pooledSlab{s: s}
	for {
		h := p.head.Load()
		n.next = h
		if p.head.CompareAndSwap(h, n) {
			return
		}
	}
}

// get pops a recycled slab with at least n slots, or allocates a fresh
// one. Pool entries always have the tree's configured size, so a size
// check is only needed defensively.
func (p *slabPool) get(n int) *slab {
	for {
		h := p.head.Load()
		if h == nil {
			return newSlab(n)
		}
		if p.head.CompareAndSwap(h, h.next) {
			if len(h.s.slots) < n {
				return newSlab(n)
			}
			h.s.marker.Store(0)
			return h.s
		}
	}
}

// used reports how many slots have been claimed (clamped to capacity).
func (s *slab) used() int {
	u := int(s.marker.Load())
	if u > len(s.slots) {
		u = len(s.slots)
	}
	return u
}

// baseVer returns the version stamp of base record i, tolerating bases
// built before version threading existed (nil vers reads as 0, the
// "no observation" stamp).
func (n *delta) baseVer(i int) uint64 {
	if i < len(n.vers) {
		return n.vers[i]
	}
	return 0
}

// inheritFrom copies the logical node's attributes from the current chain
// head into a new delta record and links it.
func (d *delta) inheritFrom(head *delta) {
	d.isLeaf = head.isLeaf
	d.depth = head.depth + 1
	d.size = head.size
	d.offset = head.offset
	d.lowKey = head.lowKey
	d.highKey = head.highKey
	d.rightSib = head.rightSib
	d.next = head
	d.base = head.base
}

// keyGE reports k >= bound where bound may be nil (-inf).
func keyGE(k, bound []byte) bool {
	if bound == nil {
		return true
	}
	return bytes.Compare(k, bound) >= 0
}

// keyGT reports k > bound where bound may be nil (-inf).
func keyGT(k, bound []byte) bool {
	if bound == nil {
		return true
	}
	return bytes.Compare(k, bound) > 0
}

// keyLT reports k < bound where bound may be nil (+inf).
func keyLT(k, bound []byte) bool {
	if bound == nil {
		return true
	}
	return bytes.Compare(k, bound) < 0
}

// keyLE reports k <= bound where bound may be nil (+inf).
func keyLE(k, bound []byte) bool {
	if bound == nil {
		return true
	}
	return bytes.Compare(k, bound) <= 0
}

// searchKeys returns the position of the first element of keys >= k and
// whether an exact match exists there.
func searchKeys(keys [][]byte, k []byte) (int, bool) {
	lo := windowSearch(keys, nil, nil, 0, k, 0, len(keys), false)
	return lo, lo < len(keys) && bytes.Equal(keys[lo], k)
}

// searchKeysRange is searchKeys restricted to the window [lo, hi) — the
// micro-indexed binary search of §4.4.
func searchKeysRange(keys [][]byte, k []byte, lo, hi int) (int, bool) {
	pos := windowSearch(keys, nil, nil, 0, k, lo, hi, false)
	return pos, pos < len(keys) && bytes.Equal(keys[pos], k)
}

// innerRoutePos returns the strict-upper-bound routing position within
// inner base n: the index of the first separator > k, under either
// layout. The covering child is kids[pos-1] (kids[0] on underflow).
func innerRoutePos(n *delta, k []byte) int {
	if n.offs != nil {
		return n.routeSearch(k, true)
	}
	return windowSearch(n.keys, nil, nil, 0, k, 0, len(n.keys), true)
}

// routeBaseInner returns the child of an inner base node that covers k:
// the child of the largest separator <= k (the first separator > k, minus
// one). The caller guarantees k >= node.lowKey, so position 0 always
// covers underflow. A nil separator at position 0 (-inf) compares below
// any valid key under both layouts.
func routeBaseInner(n *delta, k []byte) nodeID {
	lo := innerRoutePos(n, k)
	if lo == 0 {
		return n.kids[0]
	}
	return n.kids[lo-1]
}

// routeBaseInnerLeft returns the child covering keys immediately below k
// (the largest separator strictly < k) — the backward-iteration rule of
// Appendix C.2.
func routeBaseInnerLeft(n *delta, k []byte) nodeID {
	var lo int
	if n.offs != nil {
		lo = n.routeSearch(k, false)
	} else {
		lo = windowSearch(n.keys, nil, nil, 0, k, 0, len(n.keys), false)
	}
	if lo == 0 {
		return n.kids[0]
	}
	return n.kids[lo-1]
}
