//go:build smoracebug

package core

// smoracebug: compile out the SMO race guards to restore the
// unposted-separator bug for the schedule-harness red self-test. Never
// set in production builds. See raceguard_on.go.
const smoRaceGuards = false
