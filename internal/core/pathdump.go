package core

import (
	"fmt"
	"strings"
)

// Diagnostic path dump: the read-only descent walker originally grown
// inside the high-pressure reproducer (zz_repro_test.go) to autopsy
// wedged trees, promoted to a reusable debug surface. It is used by the
// reproducer's stall autopsy, cmd/bwstress's stall detector, and
// bwtree-cli's "path" command.

// PathStep describes one hop of a diagnostic descent.
type PathStep struct {
	ID       int64
	Kind     string
	Depth    int
	Size     int
	LowKey   []byte
	HighKey  []byte
	RightSib int64
	Leaf     bool
	// Note is empty for an ordinary hop; otherwise it names the
	// anomaly (or terminal state) that ended the walk at this step.
	Note string
}

// DescendPath walks from the root toward the leaf covering key exactly
// as a traversal would — chain routing, sibling chases — but without
// helping SMOs, restarting, or giving up on poisoned nodes: it records
// every hop and stops AT the anomaly (nil mapping entry, ∆abort/∆remove
// head, routing dead end, hop cycle) instead of retrying past it. That
// makes it the tool for answering "why does every operation on this key
// restart forever": the last step's Note names the poisoned state.
//
// The walk is read-only and safe against concurrent writers (it holds
// an epoch guard), but the path it reports is a snapshot — on a healthy
// tree under churn, transient ∆abort/∆remove sightings are normal.
func (t *Tree) DescendPath(key []byte) []PathStep {
	s := t.NewSession()
	defer s.Release()
	s.h.Enter()
	defer s.h.Exit()

	var steps []PathStep
	id := t.root
	for hops := 0; hops < 128; hops++ {
		head := t.load(id)
		if head == nil {
			steps = append(steps, PathStep{ID: int64(id), Kind: "<nil>",
				Note: "nil mapping entry (dangling route to a recycled node)"})
			return steps
		}
		st := PathStep{
			ID: int64(id), Kind: head.kind.String(),
			Depth: int(head.depth), Size: int(head.size),
			LowKey: head.lowKey, HighKey: head.highKey,
			RightSib: int64(head.rightSib), Leaf: head.isLeaf,
		}
		switch head.kind {
		case kAbort:
			st.Note = "∆abort head: node is write-locked by a merge (transient unless permanent)"
			return append(steps, st)
		case kRemove:
			st.Note = "∆remove head: node is being merged into its left sibling"
			return append(steps, st)
		}
		if head.lowKey != nil && !keyGE(key, head.lowKey) {
			st.Note = "key below node's low key (stale route)"
			return append(steps, st)
		}
		if head.highKey != nil && keyGE(key, head.highKey) {
			if head.rightSib == invalidNode {
				st.Note = "key above high key but no right sibling"
				return append(steps, st)
			}
			st.Note = "chasing right sibling"
			steps = append(steps, st)
			id = head.rightSib
			continue
		}
		if head.isLeaf {
			st.Note = "reached leaf"
			return append(steps, st)
		}
		child, ok := s.routeInner(head, key)
		if !ok {
			st.Note = "inner routing dead end (unfinished split or poisoned chain)"
			return append(steps, st)
		}
		steps = append(steps, st)
		id = child
	}
	steps = append(steps, PathStep{ID: int64(id), Kind: "?", Note: "hop limit reached (routing cycle?)"})
	return steps
}

// FormatPath renders a DescendPath result as an indented multi-line
// dump, one hop per line.
func FormatPath(steps []PathStep) string {
	var b strings.Builder
	for _, st := range steps {
		fmt.Fprintf(&b, "  [%d] %s depth=%d size=%d low=%x high=%x sib=%d",
			st.ID, st.Kind, st.Depth, st.Size, st.LowKey, st.HighKey, st.RightSib)
		if st.Note != "" {
			fmt.Fprintf(&b, " — %s", st.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
