package core

import (
	"bytes"
	"testing"
)

// halfMergeFixture builds a tree with several leaves, then manually
// drives a merge through Stage I only (∆remove posted, nothing else):
// the exact half-merged state a concurrent thread observes when it
// reaches the victim through a pre-SMO parent snapshot.
func halfMergeFixture(t *testing.T) (tr *Tree, s *Session, victimID nodeID, rm *delta, parentID nodeID, parentHead *delta) {
	t.Helper()
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 64 // keep all leaves under one parent
	opts.LeafChainLength = 4
	opts.LeafMergeSize = 0 // no automatic merges
	tr = New(opts)
	s = tr.NewSession()
	for i := uint64(1); i <= 64; i++ {
		s.Insert(key64(i), i)
	}
	tr.ConsolidateAll()

	// Locate a middle leaf and its parent.
	var tv traversal
	if !s.descend(key64(30), &tv) {
		t.Fatal("descend failed")
	}
	if tv.head.lowKey == nil {
		t.Fatal("picked the leftmost leaf; adjust the probe key")
	}
	victimID, parentID, parentHead = tv.id, tv.parentID, tv.parentHead

	// Stage I by hand: post the ∆remove.
	head := tr.load(victimID)
	rm = &delta{kind: kRemove}
	rm.inheritFrom(head)
	if !tr.cas(victimID, head, rm) {
		t.Fatal("remove CAS failed")
	}
	return tr, s, victimID, rm, parentID, parentHead
}

// TestHelpMergeRedirects: with Stage II unposted, a traversal hitting
// the ∆remove must restart (only the initiator posts the ∆merge — see
// tryMerge); once the initiator's ∆merge is in place, helpers redirect
// to the absorbing left sibling, and lookups in the victim's range work.
func TestHelpMergeRedirects(t *testing.T) {
	tr, s, victimID, rm, parentID, parentHead := halfMergeFixture(t)
	defer tr.Close()
	defer s.Release()

	// Unposted Stage II: helpers must not act, only restart.
	if _, ok := s.helpMerge(parentID, parentHead, victimID, rm); ok {
		t.Fatal("helper acted on an unposted merge")
	}

	// Post Stage II the way the initiator does.
	leftID, _, ok := s.mergeIntoLeft(parentHead, victimID, rm)
	if !ok {
		t.Fatal("mergeIntoLeft failed")
	}
	lhead := tr.load(leftID)
	if lhead.kind != kMerge || lhead.deleteID != victimID {
		t.Fatalf("left head %v deleteID %d", lhead.kind, int64(lhead.deleteID))
	}
	if !bytes.Equal(lhead.highKey, rm.highKey) {
		t.Fatalf("merge high key %q want %q", lhead.highKey, rm.highKey)
	}

	// Helpers now redirect to the absorbing node.
	left2, ok := s.helpMerge(parentID, parentHead, victimID, rm)
	if !ok || left2 != leftID {
		t.Fatalf("redirect: %d %v", int64(left2), ok)
	}

	// The victim's keys remain reachable through the merged left node —
	// public lookups route via helpMerge on every traversal.
	for i := uint64(1); i <= 64; i++ {
		got := s.Lookup(key64(i), nil)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("lookup %d during half-merge: %v", i, got)
		}
	}

	// Writes to the absorbed range land on the surviving node.
	if !s.Update(key64(30), 999) {
		t.Fatal("update in merged range failed")
	}
	if got := s.Lookup(key64(30), nil); len(got) != 1 || got[0] != 999 {
		t.Fatalf("after update: %v", got)
	}

	// Finish Stage III by hand so the structural validator passes:
	// replace the victim's separator with a ∆separator-delete.
	ph := tr.load(parentID)
	sd := &delta{kind: kInnerDelete}
	sd.inheritFrom(ph)
	sd.size = ph.size - 1
	sd.key = rm.lowKey
	sd.leftKey = parentHead.lowKey // left sibling is the leftmost child here? use routing instead
	lsep, ok := s.routeInnerLeft(parentHead, rm.lowKey)
	if !ok {
		t.Fatal("routeInnerLeft failed")
	}
	_ = lsep
	sd.leftKey = tr.load(leftID).lowKey
	sd.leftChild = leftID
	sd.nextKey = rm.highKey
	sd.offset = -1
	if !tr.cas(parentID, ph, sd) {
		t.Fatal("separator delete CAS failed")
	}
	tr.mt.Recycle(victimID)
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate after manual stage III: %v", err)
	}
}

// TestHelpMergeRejectsLeftmost: the leftmost node can never be merged;
// a ∆remove there (which tryMerge refuses to create) makes helpers bail
// out rather than misroute.
func TestHelpMergeRejectsLeftmost(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.LeafMergeSize = 0
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(1); i <= 64; i++ {
		s.Insert(key64(i), i)
	}
	tr.ConsolidateAll()
	var tv traversal
	if !s.descend(key64(1), &tv) {
		t.Fatal("descend failed")
	}
	if tv.head.lowKey != nil {
		t.Fatal("expected the leftmost leaf")
	}
	rm := &delta{kind: kRemove}
	rm.inheritFrom(tv.head)
	if _, ok := s.helpMerge(tv.parentID, tv.parentHead, tv.id, rm); ok {
		t.Fatal("helpMerge accepted a leftmost victim")
	}
}

func TestUpdateValueNonUnique(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("key")
	for v := uint64(1); v <= 5; v++ {
		s.Insert(k, v)
	}
	// Replace pair (key,3) with (key,30).
	if !s.UpdateValue(k, 3, 30) {
		t.Fatal("UpdateValue failed")
	}
	got := s.Lookup(k, nil)
	if containsVal(got, 3) || !containsVal(got, 30) || len(got) != 5 {
		t.Fatalf("after update: %v", got)
	}
	// Updating a missing pair fails.
	if s.UpdateValue(k, 3, 40) {
		t.Fatal("UpdateValue of absent pair succeeded")
	}
	// Updating onto an existing value collapses to a delete.
	if !s.UpdateValue(k, 30, 5) {
		t.Fatal("UpdateValue onto existing failed")
	}
	got = s.Lookup(k, nil)
	if len(got) != 4 || containsVal(got, 30) {
		t.Fatalf("after collapsing update: %v", got)
	}
	// No-op update (old == new).
	if !s.UpdateValue(k, 5, 5) {
		t.Fatal("identity UpdateValue failed")
	}
}

func TestDumpAndKindString(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(0); i < 300; i++ {
		s.Insert(key64(i), i)
	}
	out := tr.Dump()
	if len(out) == 0 || !bytes.Contains([]byte(out), []byte("LeafBase")) && !bytes.Contains([]byte(out), []byte("LeafInsert")) {
		t.Fatalf("dump:\n%s", out)
	}
	for k := kLeafBase; k <= kAbort; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if tr.Options().LeafNodeSize != DefaultOptions().LeafNodeSize {
		t.Fatal("Options accessor")
	}
	st := tr.Stats()
	_ = st.AbortRate()
	_ = st.InnerPreallocUtilization()
}
