package core

import (
	"encoding/binary"
	"testing"
)

func TestRange(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(0); i < 1000; i++ {
		s.Insert(key64(i*2), i)
	}

	var got []uint64
	n := s.Range(key64(100), key64(120), func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("range visited %d: %v", n, got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range[%d] = %d want %d", i, got[i], want[i])
		}
	}

	// Half-open: end key itself excluded even when present.
	n = s.Range(key64(100), key64(102), func(k []byte, v uint64) bool { return true })
	if n != 1 {
		t.Fatalf("half-open range visited %d", n)
	}

	// nil end = +inf.
	n = s.Range(key64(1990), nil, func(k []byte, v uint64) bool { return true })
	if n != 5 {
		t.Fatalf("open-ended range visited %d", n)
	}

	// Empty range.
	n = s.Range(key64(101), key64(102), func(k []byte, v uint64) bool { return true })
	if n != 0 {
		t.Fatalf("empty range visited %d", n)
	}

	// Early termination.
	calls := 0
	s.Range(key64(0), nil, func(k []byte, v uint64) bool {
		calls++
		return calls < 4
	})
	if calls != 4 {
		t.Fatalf("early-exit range made %d calls", calls)
	}
}
