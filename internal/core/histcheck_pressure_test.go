// The high-pressure SMO configuration — 16-entry leaves, deep chains,
// aggressive merge thresholds, a churned keyspace — is the geometry that
// hid the (now closed) unposted-separator race for six PRs. This test
// attaches internal/histcheck to that exact geometry and runs it in the
// default `go test` suite: fixed op counts (deterministic in size, a few
// seconds long), every operation recorded, and the merged history checked
// against sequential semantics at exit. The 45-second statistical soak
// (zz_repro_test.go) stays opt-in behind BWTREE_REPRO; this is the
// always-on slice of it.
//
// Lives in the external test package because histcheck imports core via
// the index adapters.
package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/histcheck"
	"repro/internal/index"
)

// pressureTreeOpts is the reproducer's geometry (zz_repro_test.go): one
// consolidation in ~8 writes per hot leaf, splits at 16 entries, merges
// at 4 — constant split+merge interleaving under a churned keyspace.
func pressureTreeOpts() core.Options {
	opts := core.DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 8
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	return opts
}

func TestCheckedHighPressure(t *testing.T) {
	idx := index.NewBwTreeWith("OpenBwTree-pressure", pressureTreeOpts())
	defer idx.Close()

	// Delete-biased churn over a preloaded keyspace: leaves drain below
	// the merge threshold while fresh inserts split their neighbors, so
	// both SMO protocols run the whole time (asserted below).
	mix := histcheck.Mix{Name: "smo-churn", Insert: 30, Delete: 30, Update: 10, Lookup: 25, Scan: 5}
	cfg := histcheck.DefaultRunConfig(17)
	cfg.Threads = 8
	cfg.Keys = 2000
	cfg.Preload = 1000
	cfg.OpsPerThread = 2500
	if testing.Short() {
		cfg.OpsPerThread = 600
	}
	vs, h := histcheck.RunChecked(idx, false, mix, cfg)
	for _, v := range vs {
		t.Errorf("client-visible violation under high pressure: %v", v)
	}
	if t.Failed() {
		t.Logf("history: %d ops", len(h.Ops))
	}

	tr := idx.(index.BwBacked).Tree()
	if err := tr.Validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
	st := tr.Stats()
	if st.Splits == 0 || st.Merges == 0 {
		t.Errorf("workload did not exercise both SMO paths: splits=%d merges=%d", st.Splits, st.Merges)
	}
}
