//go:build notrace

package core

// deepProbes is false under -tags notrace: every deep-path tracing probe
// becomes dead code and is eliminated by the compiler. This build is the
// reference point for the obs-overhead bench gate; see probes_on.go.
const deepProbes = false
