package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/mapping"
	"repro/internal/obs"
)

// Tree is a lock-free Bw-Tree mapping non-empty byte-string keys to uint64
// values. All structural state lives behind the mapping table; every
// mutation is published with a single compare-and-swap.
//
// Operations are performed through per-goroutine Sessions (NewSession).
// The Tree itself is safe for concurrent use by any number of sessions.
type Tree struct {
	opts Options
	mt   *mapping.Table[delta]
	gc   epoch.GC
	// hpool recycles epoch handles across sessions so NewSession/Release
	// churn (one session per batch in some callers) skips the GC
	// registry round-trip.
	hpool *epoch.Pool
	root  nodeID

	// leafSlabs/innerSlabs recycle pre-allocation slabs whose chains
	// have drained from all epochs.
	leafSlabs  slabPool
	innerSlabs slabPool

	// tracer collects structural events when Options.TraceRingSize > 0;
	// gcRing receives epoch-advance events from the GC goroutine.
	tracer *obs.Tracer
	gcRing *obs.Ring
	// deep owns the deep-path tracing state (sampled phase traces and
	// the flight recorder) when Options.PhaseSampleEvery or
	// Options.FlightRecorderSize is set; nil otherwise.
	deep *obs.Deep

	// verCtr issues version stamps for leaf records: every published leaf
	// delta draws a fresh value, so two successive states of one key never
	// share a stamp — the inequality the optimistic transaction layer's
	// read validation relies on. See delta.ver.
	verCtr atomic.Uint64

	mu        sync.Mutex // guards sessions registry (cold path)
	sessions  map[*Session]struct{}
	closed    sessionStats        // counters absorbed from released sessions
	latClosed obs.LatencySnapshot // histograms absorbed from released sessions
}

// getSlab returns a recycled or fresh slab for a new base node.
func (t *Tree) getSlab(leaf bool) *slab {
	if leaf {
		return t.leafSlabs.get(t.opts.LeafChainLength)
	}
	return t.innerSlabs.get(t.opts.InnerChainLength)
}

// New returns an empty tree configured by opts. Per §2.1 of the paper the
// initial tree is an inner base node holding one separator that refers to
// an empty leaf base node.
func New(opts Options) *Tree {
	opts.sanitize()
	t := &Tree{
		opts:     opts,
		mt:       mapping.New[delta](1 << 16),
		sessions: make(map[*Session]struct{}),
	}
	switch opts.GC {
	case GCCentralized:
		t.gc = epoch.NewCentralized(opts.GCInterval)
	default:
		t.gc = epoch.NewDecentralized(opts.GCInterval, opts.GCThreshold)
	}
	t.hpool = epoch.NewPool(t.gc)
	if opts.TraceRingSize > 0 {
		t.tracer = obs.NewTracer(opts.TraceRingSize)
		t.gcRing = t.tracer.Ring()
		t.gc.SetAdvanceHook(func(e uint64) {
			t.gcRing.Emit(obs.EvEpochAdvance, 0, e, 0)
		})
	}
	if opts.PhaseSampleEvery > 0 || opts.FlightRecorderSize > 0 {
		t.deep = obs.NewDeep(obs.DeepConfig{
			SampleEvery:      opts.PhaseSampleEvery,
			TraceBuf:         opts.PhaseTraceBuffer,
			FlightBuf:        opts.FlightRecorderSize,
			LatencyAnomalyNS: int64(opts.FlightLatencyThreshold),
			// An op can legitimately observe a chain right at the
			// consolidation trigger; strictly deeper means consolidation
			// is losing its publish race repeatedly — worth a dump.
			ChainAnomaly: opts.LeafChainLength,
		})
	}

	t.root = t.mt.Allocate()
	leafID := t.mt.Allocate()
	leaf := &delta{kind: kLeafBase, isLeaf: true, rightSib: invalidNode}
	t.setBaseKeys(leaf, nil)
	leaf.base = leaf
	if opts.Preallocate {
		leaf.slab = t.getSlab(true)
	}
	t.mt.Store(leafID, leaf)

	root := &delta{
		kind:     kInnerBase,
		rightSib: invalidNode,
		kids:     []nodeID{leafID},
		size:     1,
	}
	t.setBaseKeys(root, [][]byte{nil}) // -inf separator
	root.base = root
	if opts.Preallocate {
		root.slab = t.getSlab(false)
	}
	t.mt.Store(t.root, root)
	return t
}

// Options returns the configuration the tree was built with.
func (t *Tree) Options() Options { return t.opts }

// Close stops the tree's background GC goroutine and releases every
// remaining session. The caller must guarantee no operation is in flight.
func (t *Tree) Close() {
	t.mu.Lock()
	ss := make([]*Session, 0, len(t.sessions))
	for s := range t.sessions {
		ss = append(ss, s)
	}
	t.mu.Unlock()
	for _, s := range ss {
		s.Release()
	}
	t.hpool.Drain()
	t.gc.Close()
}

// load resolves a logical node ID to its current chain head.
func (t *Tree) load(id nodeID) *delta { return t.mt.Load(id) }

// casFailHook, when non-nil, is consulted before every mapping-table
// publication; returning true makes the CaS report failure without
// executing. It exists so tests can deterministically drive the restart,
// help-along, and SMO-retry paths that normally need a racing thread.
var casFailHook func(id nodeID, old, new *delta) bool

// cas publishes a new chain head for id. With UnsafeNoCAS (Fig. 18
// decomposition) the compare and the store are performed non-atomically,
// which is only valid single-threaded.
func (t *Tree) cas(id nodeID, old, new *delta) bool {
	if casFailHook != nil && casFailHook(id, old, new) {
		return false
	}
	if t.opts.UnsafeNoCAS {
		if t.mt.Load(id) != old {
			return false
		}
		t.mt.Store(id, new)
		return true
	}
	return t.mt.CompareAndSwap(id, old, new)
}

// Session is a single worker goroutine's handle to the tree. It bundles
// the goroutine's epoch-GC handle, scratch buffers reused across
// operations, and private statistics counters — the moral equivalent of
// the thread-local state a DBMS worker thread would own (§2).
//
// A Session must not be used concurrently. Obtain one per goroutine.
type Session struct {
	t     *Tree
	h     epoch.Handle
	stats sessionStats

	// chases batches delta-chain pointer dereferences — the hottest
	// counter, bumped once per delta record walked. It is owner-private
	// (plain increments) and flushed into stats.pointerChases with one
	// atomic add per completed operation.
	chases uint64
	// lat records per-class operation latencies when
	// Options.LatencyHistograms is set; nil otherwise.
	lat *obs.Recorder
	// trace is the session's event ring when tracing is enabled.
	trace *obs.Ring
	// probe is the session's deep-path tracing probe (sampled phase
	// spans + flight recorder) when the tree was built with
	// PhaseSampleEvery or FlightRecorderSize; nil otherwise. Every use
	// is additionally gated by the deepProbes build-tag constant so
	// -tags notrace builds compile the probes out entirely.
	probe *obs.Probe

	// leafHits/parentHits batch the traversal-cache hit counters the same
	// way chases batches pointer dereferences; flushed by batchDone.
	leafHits   uint64
	parentHits uint64

	// Scratch space reused across operations to keep the hot path
	// allocation-free.
	present    []uint64
	deleted    []uint64
	scratch    []uint64
	insScratch []effRec
	delScratch []effRec
	batchOrd   []batchEnt
	released   bool
}

// sessionStats are the per-worker counters behind Stats and Table 2.
// Each counter is written by its owning session and read concurrently by
// Tree.Stats, so the fields are atomics; increments stay uncontended
// single-writer adds.
type sessionStats struct {
	ops            atomic.Uint64 // completed operations
	aborts         atomic.Uint64 // traversal restarts (failed CaS, ∆abort, ...)
	consolidations atomic.Uint64
	splits         atomic.Uint64
	merges         atomic.Uint64
	slabFull       atomic.Uint64 // pre-allocation slab exhaustion events
	pointerChases  atomic.Uint64 // delta-chain next-pointer dereferences
	casFailures    atomic.Uint64
	leafSlabUsed   atomic.Uint64 // slots claimed in retired leaf slabs
	leafSlabCap    atomic.Uint64 // slot capacity of retired leaf slabs
	innerSlabUsed  atomic.Uint64
	innerSlabCap   atomic.Uint64
	// batchLeafHits/batchParentHits count batched operations that reused
	// the previous op's leaf (or routed one level from its parent) instead
	// of descending from the root.
	batchLeafHits   atomic.Uint64
	batchParentHits atomic.Uint64
}

func (a *sessionStats) add(b *sessionStats) {
	a.ops.Add(b.ops.Load())
	a.aborts.Add(b.aborts.Load())
	a.consolidations.Add(b.consolidations.Load())
	a.splits.Add(b.splits.Load())
	a.merges.Add(b.merges.Load())
	a.slabFull.Add(b.slabFull.Load())
	a.pointerChases.Add(b.pointerChases.Load())
	a.casFailures.Add(b.casFailures.Load())
	a.leafSlabUsed.Add(b.leafSlabUsed.Load())
	a.leafSlabCap.Add(b.leafSlabCap.Load())
	a.innerSlabUsed.Add(b.innerSlabUsed.Load())
	a.innerSlabCap.Add(b.innerSlabCap.Load())
	a.batchLeafHits.Add(b.batchLeafHits.Load())
	a.batchParentHits.Add(b.batchParentHits.Load())
}

// NewSession registers a worker goroutine with the tree.
func (t *Tree) NewSession() *Session {
	s := &Session{t: t, h: t.hpool.Get()}
	if t.opts.LatencyHistograms {
		s.lat = &obs.Recorder{}
	}
	if t.tracer != nil {
		s.trace = t.tracer.Ring()
	}
	if deepProbes && t.deep != nil {
		s.probe = t.deep.Probe()
	}
	t.mu.Lock()
	t.sessions[s] = struct{}{}
	t.mu.Unlock()
	return s
}

// Release unregisters the session, folding its counters into the tree.
func (s *Session) Release() {
	if s.released {
		return
	}
	s.released = true
	if n := s.chases; n != 0 {
		s.chases = 0
		s.stats.pointerChases.Add(n)
	}
	s.t.mu.Lock()
	delete(s.t.sessions, s)
	s.t.closed.add(&s.stats)
	if s.lat != nil {
		s.lat.AddTo(&s.t.latClosed)
	}
	s.t.mu.Unlock()
	if s.trace != nil {
		s.t.tracer.Release(s.trace)
		s.trace = nil
	}
	if deepProbes && s.probe != nil {
		s.t.deep.Release(s.probe)
		s.probe = nil
	}
	s.t.hpool.Put(s.h)
}

// opStart returns the operation start timestamp, or 0 when neither
// latency histograms nor deep-path tracing is enabled (the common case:
// two predictable nil checks, no clock read).
func (s *Session) opStart() int64 {
	if deepProbes && s.probe != nil {
		s.probe.OpBegin()
		return obs.Now()
	}
	if s.lat == nil {
		return 0
	}
	return obs.Now()
}

// opDone closes out one public operation: it counts the op, flushes the
// batched pointer-chase counter, records the latency when enabled, and
// finalizes the deep-path probe (flight-recorder entry, sampled phase
// trace, anomaly checks).
func (s *Session) opDone(c obs.OpClass, start int64) {
	s.stats.ops.Add(1)
	if n := s.chases; n != 0 {
		s.chases = 0
		s.stats.pointerChases.Add(n)
	}
	if s.lat == nil && (!deepProbes || s.probe == nil) {
		return
	}
	end := obs.Now()
	if s.lat != nil {
		s.lat.Record(c, end-start)
	}
	if deepProbes && s.probe != nil {
		s.probe.OpEnd(c, start, end-start)
	}
}

// phStart returns a span start timestamp when this operation was chosen
// for phase sampling, else 0. Cost when not sampling: one nil check and
// one bool load — no clock read.
func (s *Session) phStart() int64 {
	if deepProbes && s.probe.Active() {
		return obs.Now()
	}
	return 0
}

// phEnd records one phase span for a sampled operation. t0 is the value
// phStart returned; zero means the op is not sampled and the call is a
// single branch.
func (s *Session) phEnd(ph obs.Phase, t0 int64, arg uint64) {
	if deepProbes && t0 != 0 {
		s.probe.Span(ph, t0, arg)
	}
}

// emit records a structural event into the session's trace ring, if any.
func (s *Session) emit(k obs.EventKind, node nodeID, a, b uint64) {
	if s.trace != nil {
		s.trace.Emit(k, node, a, b)
	}
}

// Stats is a point-in-time aggregate of the tree's operation counters.
// AbortRate matches Table 2 of the paper: aborts per completed operation
// (it exceeds 1.0 under heavy contention).
type Stats struct {
	Ops            uint64
	Aborts         uint64
	Consolidations uint64
	Splits         uint64
	Merges         uint64
	SlabFull       uint64
	PointerChases  uint64
	CASFailures    uint64
	// LeafSlabUsed/Cap accumulate claimed slots and capacity of every
	// retired leaf pre-allocation slab — the lifecycle LPU of Table 2.
	LeafSlabUsed  uint64
	LeafSlabCap   uint64
	InnerSlabUsed uint64
	InnerSlabCap  uint64
	// BatchLeafHits/BatchParentHits count batched operations that skipped
	// the root-to-leaf descent via the cached traversal.
	BatchLeafHits   uint64
	BatchParentHits uint64
	GC              epoch.Stats
}

// AbortRate returns aborts per completed operation.
func (st Stats) AbortRate() float64 {
	if st.Ops == 0 {
		return 0
	}
	return float64(st.Aborts) / float64(st.Ops)
}

// LeafPreallocUtilization returns the fraction of pre-allocated leaf delta
// slots that were actually claimed, measured over retired slabs (LPU).
func (st Stats) LeafPreallocUtilization() float64 {
	if st.LeafSlabCap == 0 {
		return 0
	}
	return float64(st.LeafSlabUsed) / float64(st.LeafSlabCap)
}

// InnerPreallocUtilization is the inner-node counterpart (IPU).
func (st Stats) InnerPreallocUtilization() float64 {
	if st.InnerSlabCap == 0 {
		return 0
	}
	return float64(st.InnerSlabUsed) / float64(st.InnerSlabCap)
}

// Stats aggregates counters across live and released sessions. Every
// counter is an atomic, so concurrent reads are race-free; the result is
// a consistent-enough aggregate while operations are in flight and exact
// once workers are quiescent.
func (t *Tree) Stats() Stats {
	var agg sessionStats
	t.mu.Lock()
	agg.add(&t.closed)
	for s := range t.sessions {
		agg.add(&s.stats)
	}
	t.mu.Unlock()
	return Stats{
		Ops:             agg.ops.Load(),
		Aborts:          agg.aborts.Load(),
		Consolidations:  agg.consolidations.Load(),
		Splits:          agg.splits.Load(),
		Merges:          agg.merges.Load(),
		SlabFull:        agg.slabFull.Load(),
		PointerChases:   agg.pointerChases.Load(),
		CASFailures:     agg.casFailures.Load(),
		LeafSlabUsed:    agg.leafSlabUsed.Load(),
		LeafSlabCap:     agg.leafSlabCap.Load(),
		InnerSlabUsed:   agg.innerSlabUsed.Load(),
		InnerSlabCap:    agg.innerSlabCap.Load(),
		BatchLeafHits:   agg.batchLeafHits.Load(),
		BatchParentHits: agg.batchParentHits.Load(),
		GC:              t.gc.Stats(),
	}
}

// Latencies merges every session's latency histograms (live and
// released) into one snapshot. Returns nil unless the tree was built
// with Options.LatencyHistograms.
func (t *Tree) Latencies() *obs.LatencySnapshot {
	if !t.opts.LatencyHistograms {
		return nil
	}
	snap := &obs.LatencySnapshot{}
	t.mu.Lock()
	snap.Merge(&t.latClosed)
	for s := range t.sessions {
		if s.lat != nil {
			s.lat.AddTo(snap)
		}
	}
	t.mu.Unlock()
	return snap
}

// TraceEvents drains the structural event tracer into one stream ordered
// by sequence number. Returns nil unless Options.TraceRingSize > 0.
// Draining is destructive: each event is returned once.
func (t *Tree) TraceEvents() []obs.Event {
	if t.tracer == nil {
		return nil
	}
	return t.tracer.Drain()
}

// TraceDropped returns how many trace events were lost to ring
// wraparound before they could be drained.
func (t *Tree) TraceDropped() uint64 {
	if t.tracer == nil {
		return 0
	}
	return t.tracer.Dropped()
}

// PhaseTraces drains the sampled per-op phase traces from every session,
// ordered by completion sequence. Returns nil unless the tree was built
// with Options.PhaseSampleEvery > 0 (or under -tags notrace). Draining
// is destructive: each trace is returned once.
func (t *Tree) PhaseTraces() []obs.OpTrace {
	if !deepProbes || t.deep == nil {
		return nil
	}
	return t.deep.Traces()
}

// PhaseTraceDropped returns how many sampled phase traces were lost to
// ring wraparound before they could be drained.
func (t *Tree) PhaseTraceDropped() uint64 {
	if !deepProbes || t.deep == nil {
		return 0
	}
	return t.deep.TracesDropped()
}

// FlightRecent returns up to n of the most recent operation summaries
// from the flight recorder, oldest first, merged across sessions by
// completion sequence. Non-destructive. Returns nil unless the tree was
// built with Options.FlightRecorderSize > 0. n <= 0 means no limit.
func (t *Tree) FlightRecent(n int) []obs.OpSummary {
	if !deepProbes || t.deep == nil {
		return nil
	}
	return t.deep.Flight(n)
}

// ChainDepths returns the distribution of delta-chain depths observed by
// completed operations (one observation per op: the deepest chain it
// walked). Zero-valued snapshot unless deep-path tracing is enabled.
func (t *Tree) ChainDepths() obs.HistSnapshot {
	if !deepProbes || t.deep == nil {
		return obs.HistSnapshot{}
	}
	return t.deep.ChainDepths()
}

// SetAnomalySink replaces the flight recorder's anomaly handler (the
// default logs a compact line to stderr). Pass nil to restore the
// default. No-op unless deep-path tracing is enabled.
func (t *Tree) SetAnomalySink(sink obs.AnomalySink) {
	if !deepProbes || t.deep == nil {
		return
	}
	t.deep.SetAnomalySink(sink)
}

// AnomalyNote force-dumps the flight recorder with the given reason,
// bypassing the anomaly rate limit. Used by the durability layer to mark
// recovery starts. No-op unless deep-path tracing is enabled.
func (t *Tree) AnomalyNote(reason string) {
	if !deepProbes || t.deep == nil {
		return
	}
	t.deep.Note(reason)
}

// Anomalies returns the number of anomaly dumps emitted so far.
func (t *Tree) Anomalies() uint64 {
	if !deepProbes || t.deep == nil {
		return 0
	}
	return t.deep.Anomalies()
}

// MappingStats reports mapping-table occupancy (allocated, free-listed,
// live logical node IDs against total capacity).
func (t *Tree) MappingStats() mapping.TableStats {
	return t.mt.Stats()
}

// Probe exposes the session's deep-path probe so outer layers (the
// durability façade) can attach WAL-append and fsync-wait spans to the
// same sampled operation. Returns nil when tracing is disabled or under
// -tags notrace; *obs.Probe methods are nil-receiver-safe.
func (s *Session) Probe() *obs.Probe {
	if !deepProbes {
		return nil
	}
	return s.probe
}
