package core

import (
	"bytes"
	"errors"
	"fmt"
)

// bulkFill leaves nodes this fraction full so post-load inserts do not
// split immediately.
const bulkFillNum, bulkFillDen = 3, 4

// ErrNotEmpty is returned by BulkLoad on a tree that already has content.
var ErrNotEmpty = errors.New("core: BulkLoad requires an empty tree")

// BulkLoad populates an empty, quiescent tree from a sorted stream of
// pairs, building base nodes bottom-up without any delta records or CaS
// traffic. next must yield keys in strictly ascending order (ascending
// with duplicates when Options.NonUnique is set) and report ok=false at
// the end. The tree must not be accessed concurrently during the load.
//
// Loading n pairs costs O(n) with no tree traversals, against
// O(n log n) traversals plus consolidation work for one-by-one inserts —
// the standard way to build a 52M-key index for an experiment.
func (t *Tree) BulkLoad(next func() (key []byte, value uint64, ok bool)) error {
	head := t.load(t.root)
	if head.kind != kInnerBase || head.size != 1 {
		return ErrNotEmpty
	}
	oldLeafID := head.kids[0]
	if leaf := t.load(oldLeafID); leaf.kind != kLeafBase || leaf.size != 0 {
		return ErrNotEmpty
	}

	leafCap := t.opts.LeafNodeSize * bulkFillNum / bulkFillDen
	if leafCap < 2 {
		leafCap = 2
	}

	// Build the leaf level.
	type sep struct {
		key []byte // nil = -inf
		id  nodeID
	}
	var seps []sep
	var prevLeaf *delta
	var prevKey []byte
	first := true

	// All bulk-loaded records share one version stamp: each key has only
	// this single state, so freshness per publish is preserved.
	loadVer := t.verCtr.Add(1)
	flushLeaf := func(keys [][]byte, vals []uint64) {
		vers := make([]uint64, len(vals))
		for i := range vers {
			vers[i] = loadVer
		}
		nb := &delta{
			kind:     kLeafBase,
			isLeaf:   true,
			size:     int32(len(keys)),
			vals:     vals,
			vers:     vers,
			rightSib: invalidNode,
		}
		t.setBaseKeys(nb, keys)
		nb.base = nb
		if t.opts.Preallocate {
			nb.slab = t.getSlab(true)
		}
		id := t.mt.Allocate()
		if len(seps) == 0 {
			nb.lowKey = nil
		} else {
			nb.lowKey = keys[0]
		}
		t.mt.Store(id, nb)
		if prevLeaf != nil {
			prevLeaf.highKey = nb.lowKey
			prevLeaf.rightSib = id
		}
		prevLeaf = nb
		seps = append(seps, sep{key: nb.lowKey, id: id})
	}

	keys := make([][]byte, 0, leafCap)
	vals := make([]uint64, 0, leafCap)
	for {
		k, v, ok := next()
		if !ok {
			break
		}
		checkKey(k)
		if !first {
			cmp := bytes.Compare(prevKey, k)
			if cmp > 0 || cmp == 0 && !t.opts.NonUnique {
				return fmt.Errorf("core: BulkLoad keys out of order at %q", k)
			}
		}
		first = false
		// Flush before starting a new key so duplicate runs never
		// straddle a leaf boundary (their shared key must not become a
		// right node's low key).
		if len(keys) >= leafCap && !bytes.Equal(prevKey, k) {
			flushLeaf(keys, vals)
			keys = make([][]byte, 0, leafCap)
			vals = make([]uint64, 0, leafCap)
		}
		prevKey = cloneKey(k)
		keys = append(keys, prevKey)
		vals = append(vals, v)
	}
	if len(keys) > 0 || len(seps) == 0 {
		flushLeaf(keys, vals)
	}

	// Build inner levels until one node remains; it becomes the root.
	innerCap := t.opts.InnerNodeSize * bulkFillNum / bulkFillDen
	if innerCap < 2 {
		innerCap = 2
	}
	level := seps
	for len(level) > 1 {
		var up []sep
		var prevInner *delta
		for start := 0; start < len(level); start += innerCap {
			end := min(start+innerCap, len(level))
			// Avoid a dangling single-entry last node.
			if len(level)-start < 2*innerCap && len(level)-start > innerCap {
				end = start + (len(level)-start+1)/2
			}
			ks := make([][]byte, 0, end-start)
			kids := make([]nodeID, 0, end-start)
			for _, s := range level[start:end] {
				ks = append(ks, s.key)
				kids = append(kids, s.id)
			}
			nb := &delta{
				kind:     kInnerBase,
				size:     int32(len(ks)),
				kids:     kids,
				lowKey:   ks[0],
				rightSib: invalidNode,
			}
			t.setBaseKeys(nb, ks)
			nb.base = nb
			if t.opts.Preallocate {
				nb.slab = t.getSlab(false)
			}
			id := t.mt.Allocate()
			t.mt.Store(id, nb)
			if prevInner != nil {
				prevInner.highKey = nb.lowKey
				prevInner.rightSib = id
			}
			prevInner = nb
			up = append(up, sep{key: nb.lowKey, id: id})
		}
		level = up
	}

	// Install the top node's content at the fixed root ID.
	top := t.load(level[0].id)
	var newRoot *delta
	if top.isLeaf {
		// Tiny load: root must remain an inner node over the leaf level.
		newRoot = &delta{
			kind:     kInnerBase,
			size:     1,
			kids:     []nodeID{level[0].id},
			rightSib: invalidNode,
		}
		t.setBaseKeys(newRoot, [][]byte{nil})
	} else {
		// Adopt the top node's key payload wholesale, whichever layout it
		// was built with.
		newRoot = &delta{
			kind:     kInnerBase,
			size:     top.size,
			keys:     top.keys,
			arena:    top.arena,
			offs:     top.offs,
			pfx:      top.pfx,
			nil0:     top.nil0,
			kids:     top.kids,
			rightSib: invalidNode,
		}
		t.mt.Recycle(level[0].id)
	}
	newRoot.base = newRoot
	if t.opts.Preallocate {
		newRoot.slab = t.getSlab(false)
	}
	t.mt.Store(t.root, newRoot)
	t.mt.Recycle(oldLeafID)
	return nil
}

// Compact rebuilds the tree into a fresh instance with a minimal mapping
// table and fully-consolidated nodes. This is the paper's answer to
// shrinking the mapping table (§3.3): "The only way to shrink the Mapping
// Table is to block all worker threads and rebuild the index." The
// receiver must be quiescent; it remains valid (and unchanged) afterwards.
func (t *Tree) Compact() (*Tree, error) {
	nt := New(t.opts)
	s := t.NewSession()
	defer s.Release()
	it := s.NewIterator()
	it.SeekFirst()
	err := nt.BulkLoad(func() ([]byte, uint64, bool) {
		if !it.Valid() {
			return nil, 0, false
		}
		k, v := it.Key(), it.Value()
		it.Next()
		return k, v, true
	})
	if err != nil {
		nt.Close()
		return nil, err
	}
	return nt, nil
}

// MappingEntries reports how many logical node IDs the tree has ever
// allocated — the mapping table's high-water mark (§3.3).
func (t *Tree) MappingEntries() uint64 { return t.mt.Hwm() }
