package core

import (
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// CoopSched is a deterministic cooperative scheduler over the
// sync-point layer (schedule.go), in the spirit of PCT (probabilistic
// concurrency testing): every registered goroutine gets a random
// priority from a seeded source, exactly one registered goroutine runs
// at a time, and at every sync point control passes to the
// highest-priority runnable goroutine; periodic priority change points
// re-draw the running goroutine's priority so low-probability orderings
// get explored. A given seed replays the same schedule, so a failure
// found by seed sweep is a deterministic regression test.
//
// Usage:
//
//	cs := NewCoopSched(seed)
//	cs.Go(func() { ...tree ops... })
//	cs.Go(func() { ...tree ops... })
//	cs.Run() // releases the goroutines, waits for them, restores the hook
//
// Goroutines not registered through Go (the test's main goroutine,
// background runtime goroutines) pass through sync points untouched.
//
// A registered goroutine that blocks outside a sync point (it should
// not — every wait loop in the package is instrumented) would stall
// the whole schedule; a watchdog breaks such stalls by releasing an
// extra goroutine and counting a breach. Breaches() reporting zero
// after Run certifies the schedule really was serial.
type CoopSched struct {
	// ChangeEvery is the priority change-point period in sync-point
	// steps (PCT's d parameter, approximated by re-drawing the current
	// goroutine's priority). Set before Run; 0 disables change points.
	ChangeEvery int

	mu         sync.Mutex
	rng        *rand.Rand
	gs         map[uint64]*coopG
	running    *coopG
	steps      int
	breaches   int
	spawned    int
	registered int
	released   bool
	closed     bool
	nextSeq    int
	prios      []int // drawn in Go() call order so they are deterministic
	wg         sync.WaitGroup
	restore    func()
	stopWatch  chan struct{}
}

type coopG struct {
	seq    int
	prio   int
	gate   chan struct{}
	parked bool
}

// NewCoopSched creates a scheduler driven by seed and installs it as
// the global sync-point hook (restored by Run).
func NewCoopSched(seed int64) *CoopSched {
	cs := &CoopSched{
		ChangeEvery: 13,
		rng:         rand.New(rand.NewSource(seed)),
		gs:          make(map[uint64]*coopG),
		stopWatch:   make(chan struct{}),
	}
	cs.restore = SetSchedHook(cs.onPoint)
	return cs
}

// Go registers fn to run under the schedule. The goroutine starts
// parked; nothing executes until Run.
func (cs *CoopSched) Go(fn func()) {
	cs.mu.Lock()
	seq := cs.nextSeq
	cs.nextSeq++
	cs.spawned++
	// Priorities are drawn here, in Go() call order, so the schedule
	// does not depend on goroutine start-up order.
	cs.prios = append(cs.prios, cs.rng.Int())
	cs.mu.Unlock()

	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		g := &coopG{seq: seq, gate: make(chan struct{}, 1), parked: true}
		id := gid()
		cs.mu.Lock()
		g.prio = cs.prios[seq]
		cs.gs[id] = g
		cs.registered++
		cs.mu.Unlock()
		<-g.gate // wait for Run (or a dispatch) to grant the turn
		fn()
		cs.mu.Lock()
		delete(cs.gs, id)
		if cs.running == g {
			cs.running = nil
		}
		cs.dispatchLocked()
		cs.mu.Unlock()
	}()
}

// Run releases the registered goroutines under the schedule, waits for
// all of them to finish, and restores the previous sync-point hook. It
// returns the number of sync-point steps taken.
func (cs *CoopSched) Run() int {
	// Start barrier: every spawned goroutine must be registered before
	// the first dispatch, or the initial pick would race registration.
	for {
		cs.mu.Lock()
		ready := cs.registered == cs.spawned
		cs.mu.Unlock()
		if ready {
			break
		}
		runtime.Gosched()
	}
	go cs.watchdog()
	cs.mu.Lock()
	cs.released = true
	cs.dispatchLocked()
	cs.mu.Unlock()
	cs.wg.Wait()
	close(cs.stopWatch)
	cs.mu.Lock()
	cs.closed = true
	steps := cs.steps
	cs.mu.Unlock()
	cs.restore()
	return steps
}

// Breaches reports how many times the watchdog had to break the serial
// schedule to avoid a stall. Zero means the run was fully serialized.
func (cs *CoopSched) Breaches() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.breaches
}

// onPoint is the sync-point hook: park the calling goroutine, hand the
// turn to the highest-priority parked goroutine (possibly itself).
func (cs *CoopSched) onPoint(PointInfo) {
	id := gid()
	cs.mu.Lock()
	g := cs.gs[id]
	if g == nil || cs.closed || !cs.released {
		cs.mu.Unlock()
		return
	}
	cs.steps++
	if cs.ChangeEvery > 0 && cs.steps%cs.ChangeEvery == 0 {
		g.prio = cs.rng.Int() // PCT priority change point
	}
	g.parked = true
	if cs.running == g {
		cs.running = nil
	}
	cs.dispatchLocked()
	cs.mu.Unlock()
	<-g.gate
}

// dispatchLocked grants the turn to the highest-priority parked
// goroutine if none is running. Ties break on registration order;
// map iteration order does not influence the pick.
func (cs *CoopSched) dispatchLocked() {
	if cs.running != nil || !cs.released {
		return
	}
	var best *coopG
	for _, g := range cs.gs {
		if !g.parked {
			continue
		}
		if best == nil || g.prio > best.prio || (g.prio == best.prio && g.seq < best.seq) {
			best = g
		}
	}
	if best == nil {
		return
	}
	best.parked = false
	cs.running = best
	best.gate <- struct{}{}
}

// watchdog breaks schedule stalls: if no sync-point step happens for a
// while although goroutines are parked, something is blocked outside
// the instrumented points — release one extra goroutine rather than
// hang the test.
func (cs *CoopSched) watchdog() {
	last, quiet := -1, 0
	for {
		select {
		case <-cs.stopWatch:
			return
		case <-time.After(50 * time.Millisecond):
		}
		cs.mu.Lock()
		if cs.steps != last {
			last, quiet = cs.steps, 0
			cs.mu.Unlock()
			continue
		}
		quiet++
		if quiet >= 40 { // ~2s without progress
			quiet = 0
			var best *coopG
			for _, g := range cs.gs {
				if g.parked && (best == nil || g.prio > best.prio) {
					best = g
				}
			}
			if best != nil {
				cs.breaches++
				best.parked = false
				// Take over the turn: the stalled holder keeps executing
				// natively (the breach is already non-serial), but normal
				// dispatching continues from the released goroutine.
				cs.running = best
				best.gate <- struct{}{}
			}
		}
		cs.mu.Unlock()
	}
}

// gid returns the calling goroutine's runtime ID, parsed from the
// stack header ("goroutine N [running]:"). Test-path only — never on
// the hot path.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, b := range buf[prefix:n] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + uint64(b-'0')
	}
	return id
}
