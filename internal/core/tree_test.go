package core

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func key64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// allConfigs enumerates option sets that exercise every optimization
// combination a test should survive.
func allConfigs() map[string]Options {
	def := DefaultOptions()
	base := BaselineOptions()
	noPA := def
	noPA.Preallocate = false
	noFC := def
	noFC.FastConsolidate = false
	noSS := def
	noSS.SearchShortcuts = false
	tiny := def
	tiny.LeafNodeSize = 8
	tiny.InnerNodeSize = 4
	tiny.LeafChainLength = 4
	tiny.InnerChainLength = 2
	tiny.LeafMergeSize = 2
	tiny.InnerMergeSize = 2
	return map[string]Options{
		"default":           def,
		"baseline":          base,
		"noPrealloc":        noPA,
		"noFastConsolidate": noFC,
		"noShortcuts":       noSS,
		"tinyNodes":         tiny,
	}
}

func TestInsertLookup(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()

			const n = 5000
			for i := uint64(0); i < n; i++ {
				if !s.Insert(key64(i*2), i) {
					t.Fatalf("insert %d failed", i)
				}
			}
			for i := uint64(0); i < n; i++ {
				got := s.Lookup(key64(i*2), nil)
				if len(got) != 1 || got[0] != i {
					t.Fatalf("lookup %d: got %v want [%d]", i, got, i)
				}
				if got := s.Lookup(key64(i*2+1), nil); len(got) != 0 {
					t.Fatalf("lookup absent %d: got %v", i*2+1, got)
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

func TestInsertDuplicateKeyFails(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	if !s.Insert([]byte("a"), 1) {
		t.Fatal("first insert failed")
	}
	if s.Insert([]byte("a"), 2) {
		t.Fatal("duplicate insert succeeded in unique mode")
	}
	got := s.Lookup([]byte("a"), nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestDelete(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()

			const n = 3000
			for i := uint64(0); i < n; i++ {
				s.Insert(key64(i), i)
			}
			// Delete odd keys.
			for i := uint64(1); i < n; i += 2 {
				if !s.Delete(key64(i), 0) {
					t.Fatalf("delete %d failed", i)
				}
			}
			for i := uint64(0); i < n; i++ {
				got := s.Lookup(key64(i), nil)
				if i%2 == 0 {
					if len(got) != 1 || got[0] != i {
						t.Fatalf("lookup %d: got %v", i, got)
					}
				} else if len(got) != 0 {
					t.Fatalf("deleted key %d still visible: %v", i, got)
				}
			}
			if s.Delete(key64(1), 0) {
				t.Fatal("double delete succeeded")
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate: %v", err)
			}
		})
	}
}

func TestUpdate(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const n = 2000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if !s.Update(key64(i), i+1000) {
			t.Fatalf("update %d failed", i)
		}
	}
	if s.Update(key64(n+5), 1) {
		t.Fatal("update of absent key succeeded")
	}
	for i := uint64(0); i < n; i++ {
		got := s.Lookup(key64(i), nil)
		if len(got) != 1 || got[0] != i+1000 {
			t.Fatalf("lookup %d after update: got %v", i, got)
		}
	}
}

func TestRandomModel(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			tr := New(opts)
			defer tr.Close()
			s := tr.NewSession()
			defer s.Release()

			rng := rand.New(rand.NewSource(42))
			model := make(map[uint64]uint64)
			const ops = 20000
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(2000)) + 1
				switch rng.Intn(4) {
				case 0: // insert
					_, exists := model[k]
					got := s.Insert(key64(k), k*10)
					if got == exists {
						t.Fatalf("op %d: insert %d returned %v, model exists=%v", i, k, got, exists)
					}
					if !exists {
						model[k] = k * 10
					}
				case 1: // delete
					_, exists := model[k]
					got := s.Delete(key64(k), 0)
					if got != exists {
						t.Fatalf("op %d: delete %d returned %v, model exists=%v", i, k, got, exists)
					}
					delete(model, k)
				case 2: // update
					_, exists := model[k]
					v := uint64(rng.Int63())
					got := s.Update(key64(k), v)
					if got != exists {
						t.Fatalf("op %d: update %d returned %v, model exists=%v", i, k, got, exists)
					}
					if exists {
						model[k] = v
					}
				default: // lookup
					want, exists := model[k]
					got := s.Lookup(key64(k), nil)
					if exists && (len(got) != 1 || got[0] != want) {
						t.Fatalf("op %d: lookup %d got %v want %d", i, k, got, want)
					}
					if !exists && len(got) != 0 {
						t.Fatalf("op %d: lookup %d got %v want empty", i, k, got)
					}
				}
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("validate: %v\n%s", err, tr.Dump())
			}
			if got := tr.Count(); got != len(model) {
				t.Fatalf("count %d, model %d", got, len(model))
			}
		})
	}
}

func TestIteratorForward(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const n = 4000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		s.Insert(key64(uint64(i)+1), uint64(i))
	}
	it := s.NewIterator()
	count := 0
	for it.SeekFirst(); it.Valid(); it.Next() {
		want := uint64(count) + 1
		if got := binary.BigEndian.Uint64(it.Key()); got != want {
			t.Fatalf("position %d: key %d want %d", count, got, want)
		}
		if it.Value() != uint64(count) {
			t.Fatalf("position %d: value %d", count, it.Value())
		}
		count++
	}
	if count != n {
		t.Fatalf("visited %d items, want %d", count, n)
	}
}

func TestIteratorBackward(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const n = 4000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i+1), i)
	}
	it := s.NewIterator()
	count := 0
	for it.SeekToLast(); it.Valid(); it.Prev() {
		want := uint64(n - count)
		if got := binary.BigEndian.Uint64(it.Key()); got != want {
			t.Fatalf("position %d: key %d want %d", count, got, want)
		}
		count++
	}
	if count != n {
		t.Fatalf("visited %d items, want %d", count, n)
	}
}

func TestScan(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	for i := uint64(0); i < 1000; i++ {
		s.Insert(key64(i*2), i)
	}
	var got []uint64
	n := s.Scan(key64(100), 10, func(k []byte, v uint64) bool {
		got = append(got, binary.BigEndian.Uint64(k))
		return true
	})
	if n != 10 || len(got) != 10 {
		t.Fatalf("scan returned %d items", n)
	}
	for i, k := range got {
		if want := uint64(100 + i*2); k != want {
			t.Fatalf("scan item %d: key %d want %d", i, k, want)
		}
	}
	// Scan from between keys starts at the next key.
	n = s.Scan(key64(101), 1, func(k []byte, v uint64) bool {
		if binary.BigEndian.Uint64(k) != 102 {
			t.Fatalf("scan from 101 visited %d", binary.BigEndian.Uint64(k))
		}
		return true
	})
	if n != 1 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestNonUnique(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	k := []byte("dup")
	for v := uint64(1); v <= 20; v++ {
		if !s.Insert(k, v) {
			t.Fatalf("insert value %d failed", v)
		}
	}
	if s.Insert(k, 7) {
		t.Fatal("duplicate pair insert succeeded")
	}
	got := s.Lookup(k, nil)
	if len(got) != 20 {
		t.Fatalf("lookup returned %d values: %v", len(got), got)
	}
	seen := map[uint64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate value %d in result", v)
		}
		seen[v] = true
	}
	// Delete a specific pair.
	if !s.Delete(k, 7) {
		t.Fatal("delete pair failed")
	}
	if s.Delete(k, 7) {
		t.Fatal("double delete pair succeeded")
	}
	if got := s.Lookup(k, nil); len(got) != 19 || containsVal(got, 7) {
		t.Fatalf("after delete: %v", got)
	}
	// Re-insert the deleted value.
	if !s.Insert(k, 7) {
		t.Fatal("re-insert failed")
	}
	if got := s.Lookup(k, nil); len(got) != 20 {
		t.Fatalf("after re-insert: %v", got)
	}
}

func TestNonUniqueManyKeys(t *testing.T) {
	opts := DefaultOptions()
	opts.NonUnique = true
	opts.LeafNodeSize = 32
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const keys, dups = 300, 5
	for i := uint64(0); i < keys; i++ {
		for d := uint64(0); d < dups; d++ {
			if !s.Insert(key64(i), d) {
				t.Fatalf("insert (%d,%d) failed", i, d)
			}
		}
	}
	for i := uint64(0); i < keys; i++ {
		got := s.Lookup(key64(i), nil)
		if len(got) != dups {
			t.Fatalf("key %d: %d values: %v", i, len(got), got)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestEmptyKeyPanics(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty key")
		}
	}()
	s.Insert(nil, 1)
}

func TestMergeShrinksTree(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const n = 4000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i)
	}
	grown := tr.StructureStats()
	for i := uint64(0); i < n; i++ {
		if !s.Delete(key64(i), 0) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate after drain: %v", err)
	}
	if got := tr.Count(); got != 0 {
		t.Fatalf("count after drain: %d", got)
	}
	shrunk := tr.StructureStats()
	if shrunk.LeafNodes >= grown.LeafNodes/2 {
		t.Fatalf("merging did not shrink the tree: %d -> %d leaves", grown.LeafNodes, shrunk.LeafNodes)
	}
	if shrunk.InnerNodes >= grown.InnerNodes {
		t.Fatalf("inner nodes did not merge: %d -> %d", grown.InnerNodes, shrunk.InnerNodes)
	}
	if tr.Stats().Merges == 0 {
		t.Fatal("no merges recorded")
	}
	// The tree must remain fully usable after heavy merging.
	for i := uint64(0); i < 500; i++ {
		if !s.Insert(key64(i), i) {
			t.Fatalf("re-insert %d failed", i)
		}
	}
	if got := tr.Count(); got != 500 {
		t.Fatalf("count after refill: %d", got)
	}
}

func TestStructureStats(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	for i := uint64(0); i < 50000; i++ {
		s.Insert(key64(i), i)
	}
	st := tr.StructureStats()
	if st.LeafNodes == 0 || st.InnerNodes == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Height < 2 {
		t.Fatalf("height %d", st.Height)
	}
	if st.AvgLeafNodeSize <= 0 || st.AvgLeafNodeSize > float64(DefaultOptions().LeafNodeSize) {
		t.Fatalf("avg leaf size %f", st.AvgLeafNodeSize)
	}
	// Monotonic inserts should utilize retired slabs heavily (the paper
	// reports ~100% LPU for Mono-Int).
	if u := tr.Stats().LeafPreallocUtilization(); u < 0.5 {
		t.Fatalf("leaf prealloc utilization %f", u)
	}
}

func TestConsolidateAllAndFreeze(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i*3)
	}
	tr.ConsolidateAll()
	st := tr.StructureStats()
	if st.AvgLeafChainLen != 0 || st.AvgInnerChainLen != 0 {
		t.Fatalf("chains remain after ConsolidateAll: %+v", st)
	}
	f := tr.Freeze()
	for i := uint64(0); i < n; i++ {
		v, ok := f.Lookup(key64(i))
		if !ok || v != i*3 {
			t.Fatalf("frozen lookup %d: %d %v", i, v, ok)
		}
	}
	if _, ok := f.Lookup(key64(n + 1)); ok {
		t.Fatal("frozen lookup found absent key")
	}
}

func TestInPlaceLeafUpdates(t *testing.T) {
	opts := DefaultOptions()
	opts.InPlaceLeafUpdates = true
	opts.UnsafeNoCAS = true
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if !s.Insert(key64(i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		got := s.Lookup(key64(i), nil)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("lookup %d: %v", i, got)
		}
	}
	for i := uint64(0); i < n; i += 2 {
		if !s.Delete(key64(i), 0) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if got := tr.Count(); got != n/2 {
		t.Fatalf("count %d", got)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	var keys [][]byte
	for i := 0; i < 2000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("user%06d@example.com", i*7%2000)))
	}
	for i, k := range keys {
		if !s.Insert(k, uint64(i)) {
			t.Fatalf("insert %q failed", k)
		}
	}
	for i, k := range keys {
		got := s.Lookup(k, nil)
		if len(got) != 1 || got[0] != uint64(i) {
			t.Fatalf("lookup %q: %v", k, got)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
