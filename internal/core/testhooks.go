package core

// This file exports the package's fault-injection point for external test
// packages (notably the history-checker integration tests, which cannot
// live in package core because histcheck imports core via the index
// adapters). Production code never calls anything here; the hook costs one
// nil check per mapping-table publication.

// CASInfo describes one attempted mapping-table publication, in terms
// stable enough for external packages: the logical node ID, the delta-kind
// names of the old and new chain heads ("Split", "Merge", "LeafBase", ...;
// see kindNames), and the child node ID routed by SMO deltas (zero
// otherwise).
type CASInfo struct {
	ID      uint64
	OldKind string
	NewKind string
	Child   uint64
}

// SetCASFailHook installs a global fault-injection hook consulted before
// every mapping-table CaS; returning true makes that CaS report failure
// without executing, deterministically driving the retry, help-along, and
// SMO-abandonment paths that normally need a racing thread. It returns a
// restore function that reinstates the previous hook.
//
// Two CaS classes are exempted and never see the hook: those whose
// expected old head is a ∆abort or a ∆remove. Both are ownership-
// guaranteed by the merge protocol — exactly one thread can own the
// parent-abort or the remove retraction, so the code (correctly) treats
// their failure as impossible and panics. Injecting failures there would
// fault a scenario the protocol rules out.
//
// The hook may be called from every tree goroutine concurrently; install
// it before workers start and restore it after they are joined.
func SetCASFailHook(hook func(CASInfo) bool) (restore func()) {
	prev := casFailHook
	if hook == nil {
		casFailHook = nil
		return func() { casFailHook = prev }
	}
	casFailHook = func(id nodeID, old, new *delta) bool {
		if old != nil && (old.kind == kAbort || old.kind == kRemove) {
			return false
		}
		info := CASInfo{ID: uint64(id), Child: uint64(new.child)}
		if old != nil {
			info.OldKind = old.kind.String()
		}
		info.NewKind = new.kind.String()
		return hook(info)
	}
	return func() { casFailHook = prev }
}

// DeltaKindNames returns the printable names of the SMO delta kinds most
// useful to external fault schedules, in protocol order: ∆split,
// separator post (∆inner-insert), ∆abort, ∆remove, ∆merge, and separator
// delete (∆inner-delete).
func DeltaKindNames() (split, sepInsert, abort, remove, merge, sepDelete string) {
	return kSplit.String(), kInnerInsert.String(), kAbort.String(),
		kRemove.String(), kMerge.String(), kInnerDelete.String()
}
