//go:build !smoracebug

package core

// smoRaceGuards enables the SMO guards that close the high-pressure
// split/merge races (see DESIGN.md "The unposted-separator race" and
// "The folded-split tail"):
//
//   - the merge initiator's parent-routing check in tryMerge (mode a:
//     never merge a sibling whose separator was never posted),
//   - the child liveness check before a separator post in
//     completeSplitParts (mode b: a delayed Stage III must not install
//     a route to a merged-away node),
//   - the merge coverage check in tryMerge (mode c: never merge a
//     victim whose parent still routes the victim's high key to it —
//     its separator covers a folded, unposted split whose tail the
//     ∆separator-delete cannot re-route),
//   - the left-overlap check in mergeIntoLeft (helpers never post
//     Stage II ∆merges, so an overlapping left sibling is a stale
//     snapshot, not a completed merge).
//
// The smoracebug build tag compiles them out so the schedule-harness
// red self-tests (schedule_smo_red_test.go) can prove the harness still
// reproduces the original bugs — the same red/green pattern as PR 2's
// smobug checker self-test.
const smoRaceGuards = true
