package core

import (
	"bytes"
	"sort"

	"repro/internal/obs"
)

// collected is a logical node's materialized content: parallel key/value
// arrays for leaves, key/child arrays for inner nodes. Key slices are
// shared with the source records (keys are immutable by convention), so
// collection copies only headers.
type collected struct {
	keys [][]byte
	vals []uint64
	// vers carries each leaf record's preserved version stamp, parallel
	// to vals (see delta.ver).
	vers []uint64
	kids []nodeID
	leaf bool
}

// needsConsolidation reports whether the chain exceeds its configured
// length or the logical node has outgrown the maximum node size (the
// split trigger of Appendix A.1).
func (s *Session) needsConsolidation(head *delta) bool {
	limit, maxSize := s.t.opts.InnerChainLength, s.t.opts.InnerNodeSize
	if head.isLeaf {
		limit, maxSize = s.t.opts.LeafChainLength, s.t.opts.LeafNodeSize
	}
	return int(head.depth) >= limit || int(head.size) > maxSize && head.depth > 0
}

// maybeConsolidate consolidates the node when needed. Without parent
// information no merge can be initiated; the node will merge on a later
// consolidation that has it.
func (s *Session) maybeConsolidate(id nodeID, head *delta) {
	if s.needsConsolidation(head) {
		s.consolidateID(id, head, invalidNode, nil)
	}
}

// maybeConsolidateTr is maybeConsolidate with the traversal's parent
// snapshot, enabling the merge trigger.
func (s *Session) maybeConsolidateTr(tr *traversal, head *delta) {
	if s.needsConsolidation(head) {
		s.consolidateID(tr.id, head, tr.parentID, tr.parentHead)
	}
}

// consolidate folds tr's chain unconditionally (slab exhaustion path).
func (s *Session) consolidate(tr *traversal, head *delta) {
	s.consolidateID(tr.id, head, tr.parentID, tr.parentHead)
}

// consolidateID replays head's chain into a fresh base node and publishes
// it (§2.3). Oversized results split (Appendix A.1); undersized results
// trigger a merge when the parent is known (Appendix A.2). The
// PhaseConsolidate span captures consolidation work stolen by a sampled
// foreground operation (there is no background consolidator — all SMO
// work is cooperative).
func (s *Session) consolidateID(id nodeID, head *delta, parentID nodeID, parentHead *delta) {
	t0 := s.phStart()
	s.consolidateIDInner(id, head, parentID, parentHead)
	s.phEnd(obs.PhaseConsolidate, t0, uint64(head.depth))
}

func (s *Session) consolidateIDInner(id nodeID, head *delta, parentID nodeID, parentHead *delta) {
	switch head.kind {
	case kRemove, kAbort:
		return
	}
	c := s.collect(head)
	maxSize := s.t.opts.InnerNodeSize
	mergeSize := s.t.opts.InnerMergeSize
	if c.leaf {
		maxSize = s.t.opts.LeafNodeSize
		mergeSize = s.t.opts.LeafMergeSize
	}
	if len(c.keys) > maxSize {
		s.split(id, head, c, parentID, parentHead)
		return
	}
	nb := s.buildBase(c, head)
	schedPoint(SPConsolidateSwap, id, 0, nil)
	if !s.t.cas(id, head, nb) {
		s.stats.casFailures.Add(1)
		return
	}
	s.stats.consolidations.Add(1)
	s.emit(obs.EvConsolidate, id, uint64(head.depth), uint64(nb.size))
	s.retireChain(head)
	if mergeSize > 0 && len(c.keys) < mergeSize &&
		id != s.t.root && nb.lowKey != nil {
		if parentID == invalidNode || parentHead == nil {
			// Inner-node consolidations (and slab-exhaustion paths) carry
			// no parent snapshot; discover one so inner nodes can merge
			// too. Failure simply defers the merge.
			parentID, parentHead = s.findParentByChild(nb.lowKey, id)
		}
		if parentID != invalidNode && parentHead != nil {
			s.tryMerge(parentID, parentHead, id, nb)
		}
	}
}

// retireNoop is the reclamation callback for retired chains: in Go the
// memory itself is freed by the runtime once unreferenced; routing retired
// chains through the epoch GC preserves the scheme's synchronization cost
// and its counters.
func retireNoop() {}

// retireChain routes a replaced chain through the epoch GC, accounts the
// retiring slab's utilization (Table 2's IPU/LPU), and — once the epoch
// drains — returns the slab to the tree's recycling pool.
func (s *Session) retireChain(head *delta) {
	sl := head.base.slab
	if sl == nil {
		s.h.Retire(retireNoop)
		return
	}
	used, capacity := uint64(sl.used()), uint64(len(sl.slots))
	if head.isLeaf {
		s.stats.leafSlabUsed.Add(used)
		s.stats.leafSlabCap.Add(capacity)
	} else {
		s.stats.innerSlabUsed.Add(used)
		s.stats.innerSlabCap.Add(capacity)
	}
	t, leaf := s.t, head.isLeaf
	s.h.Retire(func() {
		if leaf {
			t.leafSlabs.put(sl)
		} else {
			t.innerSlabs.put(sl)
		}
	})
}

// buildBase materializes collected content as a fresh immutable base node
// carrying head's current attributes.
func (s *Session) buildBase(c collected, head *delta) *delta {
	nb := &delta{
		isLeaf:   c.leaf,
		size:     int32(len(c.keys)),
		lowKey:   head.lowKey,
		highKey:  head.highKey,
		rightSib: head.rightSib,
	}
	s.t.setBaseKeys(nb, c.keys)
	if s.t.opts.anyFlatNodes() {
		// The inherited bounds may alias the retired chain's arena (collect
		// hands out zero-copy subslices); owning copies keep this node's
		// attributes from pinning its predecessor's arena.
		nb.lowKey = cloneBound(head.lowKey)
		nb.highKey = cloneBound(head.highKey)
	}
	if c.leaf {
		nb.kind = kLeafBase
		nb.vals = c.vals
		nb.vers = c.vers
	} else {
		nb.kind = kInnerBase
		nb.kids = c.kids
	}
	nb.base = nb
	if s.t.opts.Preallocate {
		nb.slab = s.t.getSlab(c.leaf)
	}
	return nb
}

// fcDiffHook, when non-nil, receives every fast-consolidation result for
// cross-checking against the baseline algorithm. Test use only.
var fcDiffHook func(head *delta, fast collected)

// collect dispatches to the leaf or inner replay, choosing the fast
// segment-based algorithm (§4.3) when enabled and applicable.
func (s *Session) collect(head *delta) collected {
	if head.isLeaf {
		if s.t.opts.FastConsolidate {
			if c, ok := s.collectLeafFast(head); ok {
				if fcDiffHook != nil {
					fcDiffHook(head, c)
				}
				return c
			}
		}
		return s.collectLeafBaseline(head)
	}
	return s.collectInner(head)
}

// effRec is one effective (not overridden) chain record.
type effRec struct {
	key    []byte
	val    uint64
	ver    uint64
	offset int32
	del    bool
}

// gatherLeafRecords walks a leaf chain new-to-old and returns the
// effective insert and delete records — the S_present/S_deleted
// computation of §3.1 applied to whole-chain replay. An update expands
// into an insert of the new value plus a delete of the old. subchains
// receives the content chains of any merge deltas encountered; bases
// receives the chain's base node.
func (s *Session) gatherLeafRecords(head *delta, ins, del []effRec) (insOut, delOut []effRec, base *delta, subchains []*delta, hasMerge bool) {
	nonUnique := s.t.opts.NonUnique
	// decided reports whether a newer record already fixed the fate of
	// this key (unique) or pair (non-unique).
	decided := func(k []byte, v uint64) bool {
		for i := range ins {
			if bytes.Equal(ins[i].key, k) && (!nonUnique || ins[i].val == v) {
				return true
			}
		}
		for i := range del {
			if bytes.Equal(del[i].key, k) && (!nonUnique || del[i].val == v) {
				return true
			}
		}
		return false
	}
	d := head
	for {
		switch d.kind {
		case kLeafInsert:
			if smobugDropInsert(d.key) {
				break // mutation self-test bug: the record is lost (smobug_on.go)
			}
			if !decided(d.key, d.value) {
				ins = append(ins, effRec{key: d.key, val: d.value, ver: d.ver, offset: d.offset})
				// A matching base item (possible when an older delete in
				// this same chain removed the key first) must still be
				// cancelled; Rule #3 drops this entry when no base item
				// matches.
				del = append(del, effRec{key: d.key, val: d.value, offset: d.offset, del: true})
			}
		case kLeafDelete:
			if !decided(d.key, d.value) {
				del = append(del, effRec{key: d.key, val: d.value, offset: d.offset, del: true})
			}
		case kLeafUpdate:
			// Evaluate both halves against NEWER records before appending
			// either: in unique mode the insert half would otherwise mask
			// its own delete half (decisions are keyed by key only).
			insOK := !decided(d.key, d.value)
			delOK := !decided(d.key, d.oldValue)
			if insOK {
				off := d.offset
				if nonUnique {
					// The update's offset locates the OLD pair; the new
					// value's sorted position among the key's pairs can
					// differ, so the fast path cannot place the insert
					// half — force the baseline replay.
					off = -1
				}
				ins = append(ins, effRec{key: d.key, val: d.value, ver: d.ver, offset: off})
			}
			if delOK {
				del = append(del, effRec{key: d.key, val: d.oldValue, offset: d.offset, del: true})
			}
		case kSplit:
			// The chain's high-key attribute already reflects the split;
			// base filtering handles it.
		case kMerge:
			hasMerge = true
			subchains = append(subchains, d.mergeContent)
		case kLeafBase:
			return ins, del, d, subchains, hasMerge
		default:
			return ins, del, nil, subchains, hasMerge
		}
		s.chases++
		d = d.next
	}
}

// collectLeafBaseline is the paper's original consolidation: replay the
// chain, gather everything, then sort (§4.3's stated baseline).
func (s *Session) collectLeafBaseline(head *delta) collected {
	nonUnique := s.t.opts.NonUnique
	var ins, del []effRec
	var bases []*delta
	pending := []*delta{head}
	for len(pending) > 0 {
		h := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		var subs []*delta
		var base *delta
		ins, del, base, subs, _ = s.gatherLeafRecords(h, ins, del)
		if base != nil {
			bases = append(bases, base)
		}
		pending = append(pending, subs...)
	}

	c := collected{leaf: true}
	// Survivors from every base, bounded by the logical node's range.
	for _, b := range bases {
		for i, n := 0, b.baseLen(); i < n; i++ {
			k, v := b.baseKey(i), b.vals[i]
			if !keyLT(k, head.highKey) {
				continue
			}
			if survives(k, v, ins, del, nonUnique) {
				c.keys = append(c.keys, k)
				c.vals = append(c.vals, v)
				c.vers = append(c.vers, b.baseVer(i))
			}
		}
	}
	// Effective inserts.
	for i := range ins {
		if keyLT(ins[i].key, head.highKey) {
			c.keys = append(c.keys, ins[i].key)
			c.vals = append(c.vals, ins[i].val)
			c.vers = append(c.vers, ins[i].ver)
		}
	}
	sortLeafItems(&c)
	return c
}

// survives reports whether base item (k, v) is untouched by chain records.
func survives(k []byte, v uint64, ins, del []effRec, nonUnique bool) bool {
	if nonUnique {
		// A pair dies if deleted; an identical pair re-inserted by a
		// delta is emitted from ins instead (cannot happen through the
		// public API, which refuses duplicate pairs).
		for i := range del {
			if del[i].val == v && bytes.Equal(del[i].key, k) {
				return false
			}
		}
		for i := range ins {
			if ins[i].val == v && bytes.Equal(ins[i].key, k) {
				return false
			}
		}
		return true
	}
	// Unique: any record for the key overrides the base item.
	for i := range del {
		if bytes.Equal(del[i].key, k) {
			return false
		}
	}
	for i := range ins {
		if bytes.Equal(ins[i].key, k) {
			return false
		}
	}
	return true
}

func sortLeafItems(c *collected) {
	idx := make([]int, len(c.keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := c.keys[idx[a]], c.keys[idx[b]]
		if cmp := bytes.Compare(ka, kb); cmp != 0 {
			return cmp < 0
		}
		return c.vals[idx[a]] < c.vals[idx[b]]
	})
	keys := make([][]byte, len(idx))
	vals := make([]uint64, len(idx))
	vers := make([]uint64, len(idx))
	for i, j := range idx {
		keys[i], vals[i], vers[i] = c.keys[j], c.vals[j], c.vers[j]
	}
	c.keys, c.vals, c.vers = keys, vals, vers
}

// collectLeafFast is the fast consolidation algorithm of §4.3: delta
// offsets divide the old base node into segments that are already sorted,
// so only the (few) effective inserts need sorting before a two-way merge.
// It bails out (ok=false) when a merge delta is present or any record
// lacks an offset; the caller falls back to the baseline.
func (s *Session) collectLeafFast(head *delta) (collected, bool) {
	ins, del, base, _, hasMerge := s.gatherLeafRecords(head, s.insScratch[:0], s.delScratch[:0])
	s.insScratch, s.delScratch = ins[:0], del[:0]
	if hasMerge || base == nil {
		return collected{}, false
	}
	for i := range ins {
		if ins[i].offset < 0 {
			return collected{}, false
		}
	}
	for i := range del {
		if del[i].offset < 0 {
			return collected{}, false
		}
	}
	// Sort the effective records by (offset, key, value): cheap because
	// chains are short.
	sortRecs := func(rs []effRec) {
		sort.Slice(rs, func(a, b int) bool {
			if rs[a].offset != rs[b].offset {
				return rs[a].offset < rs[b].offset
			}
			if cmp := bytes.Compare(rs[a].key, rs[b].key); cmp != 0 {
				return cmp < 0
			}
			return rs[a].val < rs[b].val
		})
	}
	sortRecs(ins)
	sortRecs(del)

	// The base contributes items below the logical node's high key only.
	baseEnd := base.baseLen()
	if head.highKey != nil {
		baseEnd, _ = base.baseSearch(head.highKey)
	}

	c := collected{leaf: true}
	c.keys = make([][]byte, 0, baseEnd+len(ins))
	c.vals = make([]uint64, 0, baseEnd+len(ins))
	c.vers = make([]uint64, 0, baseEnd+len(ins))
	ii, di := 0, 0
	consumed := make([]bool, len(del))
	for j := 0; j < baseEnd; j++ {
		// Rule #1: inserts whose offset is j land before base[j].
		for ii < len(ins) && int(ins[ii].offset) <= j {
			if keyLT(ins[ii].key, head.highKey) {
				c.keys = append(c.keys, ins[ii].key)
				c.vals = append(c.vals, ins[ii].val)
				c.vers = append(c.vers, ins[ii].ver)
			}
			ii++
		}
		// Rule #2/#3: a delete whose offset points at (or before, for the
		// non-unique smallest-offset simplification) position j and whose
		// key/value match removes base[j]; deletes that never match any
		// base item are ignored.
		for di < len(del) && int(del[di].offset) < j && consumed[di] {
			di++
		}
		bk := base.baseKey(j)
		dead := false
		for x := di; x < len(del) && int(del[x].offset) <= j; x++ {
			if consumed[x] {
				continue
			}
			if bytes.Equal(del[x].key, bk) &&
				(!s.t.opts.NonUnique || del[x].val == base.vals[j]) {
				consumed[x] = true
				dead = true
				break
			}
		}
		if !dead {
			c.keys = append(c.keys, bk)
			c.vals = append(c.vals, base.vals[j])
			c.vers = append(c.vers, base.baseVer(j))
		}
	}
	for ; ii < len(ins); ii++ {
		if keyLT(ins[ii].key, head.highKey) {
			c.keys = append(c.keys, ins[ii].key)
			c.vals = append(c.vals, ins[ii].val)
			c.vers = append(c.vers, ins[ii].ver)
		}
	}
	return c, true
}

// innerDecision records the newest chain verdict for a separator key.
type innerDecision struct {
	key   []byte
	child nodeID
	del   bool
}

// collectInner replays an inner chain. Inner chains are short (the paper
// recommends length 2), so the replay-and-sort path is always used.
func (s *Session) collectInner(head *delta) collected {
	var decisions []innerDecision
	decided := func(k []byte) bool {
		for i := range decisions {
			if bytes.Equal(decisions[i].key, k) {
				return true
			}
		}
		return false
	}
	var bases []*delta
	pending := []*delta{head}
	for len(pending) > 0 {
		d := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		for {
			stop := false
			switch d.kind {
			case kInnerInsert:
				if !decided(d.key) {
					decisions = append(decisions, innerDecision{key: d.key, child: d.child})
				}
			case kInnerDelete:
				if !decided(d.key) {
					decisions = append(decisions, innerDecision{key: d.key, del: true})
				}
			case kSplit:
				// high-key filtering below handles it
			case kMerge:
				pending = append(pending, d.mergeContent)
			case kInnerBase:
				bases = append(bases, d)
				stop = true
			default:
				stop = true
			}
			if stop {
				break
			}
			s.chases++
			d = d.next
		}
	}

	c := collected{}
	for _, b := range bases {
		for i, n := 0, b.baseLen(); i < n; i++ {
			k := b.baseKey(i)
			if k != nil && !keyLT(k, head.highKey) {
				continue
			}
			if !decided(k) {
				c.keys = append(c.keys, k)
				c.kids = append(c.kids, b.kids[i])
			}
		}
	}
	for i := range decisions {
		d := decisions[i]
		if !d.del && keyLT(d.key, head.highKey) {
			c.keys = append(c.keys, d.key)
			c.kids = append(c.kids, d.child)
		}
	}
	sortInnerItems(&c)
	return c
}

func sortInnerItems(c *collected) {
	idx := make([]int, len(c.keys))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := c.keys[idx[a]], c.keys[idx[b]]
		// nil is the -inf separator and sorts first.
		if ka == nil {
			return kb != nil
		}
		if kb == nil {
			return false
		}
		return bytes.Compare(ka, kb) < 0
	})
	keys := make([][]byte, len(idx))
	kids := make([]nodeID, len(idx))
	for i, j := range idx {
		keys[i], kids[i] = c.keys[j], c.kids[j]
	}
	c.keys, c.kids = keys, kids
}
