package core

import "repro/internal/obs"

// LookupVersion reads key and the version stamp of the record that holds
// it. Versions are drawn from a tree-global counter at publish time, so
// observing the same (found, value, ver) triple twice proves no write to
// the key was published in between — the observation primitive of the
// optimistic transaction layer. Absent keys report version 0: absence has
// no state, so re-validating an absent read only requires the key to
// still be absent.
//
// Unique-key mode only; under Options.NonUnique a key has no single
// record to version and LookupVersion panics.
func (s *Session) LookupVersion(key []byte) (value uint64, ver uint64, found bool) {
	checkKey(key)
	if s.t.opts.NonUnique {
		panic("core: LookupVersion requires unique-key mode")
	}
	s.h.Enter()
	defer s.h.Exit()
	defer s.opDone(obs.OpRead, s.opStart())
	spins := 0
	for {
		var tr traversal
		if !s.descendProbed(key, &tr) {
			s.abortBackoff(&spins)
			continue
		}
		r := s.leafSeekProbed(tr.head, key)
		return r.value, r.ver, r.found
	}
}

// VersionCounter reports the tree-global version counter's current value:
// every stamp issued so far is <= it. Diagnostics only.
func (t *Tree) VersionCounter() uint64 { return t.verCtr.Load() }
