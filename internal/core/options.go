// Package core implements the OpenBw-Tree: a lock-free B-tree variant that
// applies updates by appending delta records to per-node chains and
// publishes every structural change with a single compare-and-swap on a
// central mapping table.
//
// The implementation follows "Building a Bw-Tree Takes More Than Just Buzz
// Words" (SIGMOD 2018): base nodes are immutable; each logical node is a
// chain of delta records ending in a base node; splits and merges are
// multi-stage structural modification operations (SMOs) that other threads
// help complete; safe memory reclamation uses epoch-based GC.
//
// Every optimization from §4 of the paper is implemented and individually
// switchable through Options, which is how the benchmark harness
// reconstructs the "good-faith original Bw-Tree" baseline and the
// one-at-a-time optimization study (Fig. 12a).
package core

import "time"

// GCScheme selects the epoch-based garbage collection variant (§4.2).
type GCScheme uint8

const (
	// GCDecentralized is the OpenBw-Tree scheme: per-thread local epochs
	// and garbage lists, no shared-counter writes on the hot path.
	GCDecentralized GCScheme = iota
	// GCCentralized is the original Bw-Tree scheme: a list of epoch
	// objects with shared active counters, drained by a background thread.
	GCCentralized
)

// Options configures a Tree. The zero value is not meaningful; start from
// DefaultOptions or BaselineOptions.
type Options struct {
	// LeafNodeSize is the maximum number of items in a leaf base node
	// before it splits (paper default 128).
	LeafNodeSize int
	// InnerNodeSize is the maximum number of separator items in an inner
	// base node before it splits (paper default 64).
	InnerNodeSize int
	// LeafChainLength is the leaf Delta Chain length that triggers
	// consolidation (paper default 24).
	LeafChainLength int
	// InnerChainLength is the inner Delta Chain length that triggers
	// consolidation (paper default 2).
	InnerChainLength int
	// LeafMergeSize is the leaf item count below which a node merges into
	// its left sibling. Zero disables leaf merging.
	LeafMergeSize int
	// InnerMergeSize is the inner separator count below which an inner
	// node merges. Zero disables inner merging.
	InnerMergeSize int

	// Preallocate enables delta-record pre-allocation (§4.1): each base
	// node carries a contiguous slab of delta slots claimed with an
	// atomic counter, instead of allocating every delta on the heap.
	Preallocate bool
	// FastConsolidate enables segment-based consolidation (§4.3) instead
	// of replay-then-sort.
	FastConsolidate bool
	// SearchShortcuts enables offset-based micro-indexing (§4.4): delta
	// records narrow the binary-search window on the base node.
	SearchShortcuts bool
	// NonUnique enables duplicate-key support (§3.1): lookups compute
	// delta visibility with present/deleted value sets, and inserts of an
	// existing key with a new value succeed.
	NonUnique bool
	// FlatBaseNodes stores each leaf base node's keys in one contiguous
	// immutable []byte arena plus a []uint32 offset array instead of a
	// [][]byte, with the node's common key prefix skipped during binary
	// search (see flatnode.go). Collapses per-probe pointer chases and
	// the GC's per-key mark work (~130 GC-visible pointers per full leaf
	// drop to ~4). Incompatible with InPlaceLeafUpdates, which mutates
	// base keys in place; sanitize resolves the conflict in favour of the
	// Fig. 18 debug mode.
	FlatBaseNodes bool
	// FlatInnerNodes applies the same arena layout to inner and root base
	// nodes: consolidation, split/merge SMO paths, and BulkLoad
	// materialize separator keys into one arena + offset array plus a
	// packed suffix-word search plane, and every routing probe runs a
	// branch-free register-compare search over the plane instead of
	// chasing a [][]byte pointer per separator (see flatnode.go).
	// Independent of FlatBaseNodes so the flatnode experiment can
	// measure the inner-node contribution on its own.
	FlatInnerNodes bool
	// ScanPipelining makes the iterator resolve the current leaf's right
	// sibling through the mapping table and touch its base arena while
	// the current leaf is being materialized, so a forward scan finds the
	// next leaf's keys already cache-resident (the BS-tree/FB+-tree
	// pipelined-leaf pattern). Point operations are unaffected.
	ScanPipelining bool

	// LatencyHistograms enables per-session log-bucketed latency
	// histograms for every public operation class, merged on demand by
	// Tree.Latencies. Off by default: recording costs one clock read and
	// two atomic adds per operation.
	LatencyHistograms bool
	// TraceRingSize, when positive, enables the structural event tracer:
	// each session gets a fixed ring of that many split/merge/
	// consolidate/abort/epoch-advance events, drained tree-wide in
	// sequence order by Tree.TraceEvents. Zero disables tracing.
	TraceRingSize int
	// PhaseSampleEvery, when positive, phase-samples every Nth operation
	// per session: the sampled op records a span per hot-path phase
	// (descend, chain walk, base search, CaS, consolidation, WAL append,
	// fsync wait) into a fixed per-session ring, drained by
	// Tree.PhaseTraces for Chrome-trace export. Zero disables sampling.
	// Disabled cost is one nil check per probe (see probes_on.go).
	PhaseSampleEvery int
	// PhaseTraceBuffer is the per-session capacity of the sampled-trace
	// ring (default 256 when sampling is enabled).
	PhaseTraceBuffer int
	// FlightRecorderSize, when positive, gives each session a ring of
	// the most recent operation summaries (class, latency, observed
	// chain depth, CaS retries, aborts) — the always-on flight recorder.
	// The ring is dumped automatically on anomaly (latency over
	// FlightLatencyThreshold, chain depth over the consolidation
	// trigger) and on demand via Tree.FlightRecent or /debug/flightrec.
	FlightRecorderSize int
	// FlightLatencyThreshold is the per-op latency beyond which the
	// flight recorder auto-dumps; zero disables the latency trigger.
	FlightLatencyThreshold time.Duration

	// GC selects the garbage-collection scheme.
	GC GCScheme
	// GCInterval is the epoch-advance period (paper default 40ms).
	GCInterval time.Duration
	// GCThreshold is the local garbage-list length that triggers a
	// reclamation attempt in the decentralized scheme (paper default 1024).
	GCThreshold int

	// UnsafeNoCAS replaces the mapping table's compare-and-swap with a
	// non-atomic load/compare/store. Only valid for single-threaded use;
	// exists solely for the Fig. 18 feature-decomposition experiment.
	UnsafeNoCAS bool
	// InPlaceLeafUpdates makes leaf inserts and deletes mutate the base
	// node directly instead of appending deltas. Only valid for
	// single-threaded use; exists solely for the Fig. 18 experiment.
	InPlaceLeafUpdates bool
}

// DefaultOptions returns the OpenBw-Tree configuration used throughout the
// paper's evaluation (§5.1): 64/128 inner/leaf node sizes, 2/24 chain
// lengths, every optimization enabled, decentralized GC at 40ms.
func DefaultOptions() Options {
	return Options{
		LeafNodeSize:     128,
		InnerNodeSize:    64,
		LeafChainLength:  24,
		InnerChainLength: 2,
		LeafMergeSize:    32,
		InnerMergeSize:   16,
		Preallocate:      true,
		FastConsolidate:  true,
		SearchShortcuts:  true,
		NonUnique:        false,
		FlatBaseNodes:    true,
		FlatInnerNodes:   true,
		ScanPipelining:   true,
		GC:               GCDecentralized,
		GCInterval:       40 * time.Millisecond,
		GCThreshold:      1024,
	}
}

// BaselineOptions returns the "good-faith original Bw-Tree" configuration:
// the same tree with every §4 optimization disabled — heap-allocated delta
// records, replay-then-sort consolidation, full-node binary search, unique
// keys only, and the centralized GC scheme with a background thread. The
// paper's recommended chain length for the original design is 8 (§2.3).
func BaselineOptions() Options {
	o := DefaultOptions()
	o.Preallocate = false
	o.FastConsolidate = false
	o.SearchShortcuts = false
	o.NonUnique = false
	o.FlatBaseNodes = false
	o.FlatInnerNodes = false
	o.ScanPipelining = false
	o.GC = GCCentralized
	o.LeafChainLength = 8
	o.InnerChainLength = 8
	return o
}

// sanitize fills zero fields with defaults and derives internal limits.
func (o *Options) sanitize() {
	d := DefaultOptions()
	if o.LeafNodeSize <= 0 {
		o.LeafNodeSize = d.LeafNodeSize
	}
	if o.InnerNodeSize <= 0 {
		o.InnerNodeSize = d.InnerNodeSize
	}
	if o.LeafChainLength <= 0 {
		o.LeafChainLength = d.LeafChainLength
	}
	if o.InnerChainLength <= 0 {
		o.InnerChainLength = d.InnerChainLength
	}
	if o.GCInterval <= 0 {
		o.GCInterval = d.GCInterval
	}
	if o.GCThreshold <= 0 {
		o.GCThreshold = d.GCThreshold
	}
	if o.LeafMergeSize < 0 {
		o.LeafMergeSize = 0
	}
	if o.InnerMergeSize < 0 {
		o.InnerMergeSize = 0
	}
	if o.TraceRingSize < 0 {
		o.TraceRingSize = 0
	}
	if o.PhaseSampleEvery < 0 {
		o.PhaseSampleEvery = 0
	}
	if o.PhaseTraceBuffer < 0 {
		o.PhaseTraceBuffer = 0
	}
	if o.FlightRecorderSize < 0 {
		o.FlightRecorderSize = 0
	}
	if o.FlightLatencyThreshold < 0 {
		o.FlightLatencyThreshold = 0
	}
	// In-place leaf updates (Fig. 18 debug mode) mutate leaf base keys
	// directly, which the immutable flat arena cannot support. Inner
	// bases are never mutated in place, so FlatInnerNodes stays valid.
	if o.InPlaceLeafUpdates {
		o.FlatBaseNodes = false
	}
	// A node must be able to shed its merge threshold after a split.
	if o.LeafMergeSize > o.LeafNodeSize/2 {
		o.LeafMergeSize = o.LeafNodeSize / 2
	}
	if o.InnerMergeSize > o.InnerNodeSize/2 {
		o.InnerMergeSize = o.InnerNodeSize / 2
	}
}
