package core

import (
	"bytes"
	"encoding/binary"
	"slices"

	"repro/internal/obs"
)

// This file implements the batched hot path: InsertBatch, DeleteBatch and
// LookupBatch amortize the per-operation fixed costs — the epoch
// Enter/Exit pair, the per-op counter flushes, and above all the
// root-to-leaf descent — across a whole batch. Keys are processed in
// sorted order so consecutive operations tend to land on the same leaf
// (or at least under the same parent), letting each operation start from
// the previous one's traversal instead of the root. Results are reported
// under the caller's original indices, so the reordering is invisible.
//
// Safety: a batch runs inside a single epoch critical section (re-entered
// every batchEpochRefresh operations so huge batches cannot stall
// reclamation), which guarantees that every node snapshot cached from an
// earlier operation in the batch is still un-recycled memory. Staleness is
// handled exactly as in the single-op path: every reuse re-loads the
// node's current chain head, checks the key against the head's
// [lowKey, highKey) range, and publishes through the same CaS; any
// mismatch falls back to a full descend from the root.

// batchEpochRefresh bounds the operations executed inside one epoch
// critical section. Exiting and re-entering invalidates the cached
// traversal (node IDs may be recycled once we leave the epoch).
const batchEpochRefresh = 4096

// batchEnt pairs a key's first 8 bytes (big-endian, zero-padded) with its
// original index, so the sort resolves most comparisons on one integer
// and only falls back to the full key on prefix ties.
type batchEnt struct {
	pfx uint64
	idx int32
}

func keyPrefix8(k []byte) uint64 {
	if len(k) >= 8 {
		return binary.BigEndian.Uint64(k)
	}
	var b [8]byte
	copy(b[:], k)
	return binary.BigEndian.Uint64(b[:])
}

// sortBatch fills s.batchOrd with the entries (prefix, 0..len(keys)-1)
// ordered by ascending key. The index tiebreak makes the order stable, so
// operations on equal keys execute in their original submission order.
// This runs once per batch on the caller's thread; sort cost directly
// taxes the amortization win, hence the prefix trick instead of a plain
// comparison sort over byte slices.
func (s *Session) sortBatch(keys [][]byte) []batchEnt {
	ord := s.batchOrd[:0]
	for i := range keys {
		ord = append(ord, batchEnt{pfx: keyPrefix8(keys[i]), idx: int32(i)})
	}
	slices.SortFunc(ord, func(a, b batchEnt) int {
		if a.pfx != b.pfx {
			if a.pfx < b.pfx {
				return -1
			}
			return 1
		}
		if c := bytes.Compare(keys[a.idx], keys[b.idx]); c != 0 {
			return c
		}
		return int(a.idx) - int(b.idx)
	})
	s.batchOrd = ord
	return ord
}

// headCovers reports whether head is an operable leaf head whose current
// range covers key — the same guards descend applies before stopping at a
// leaf.
func headCovers(head *delta, key []byte) bool {
	switch head.kind {
	case kRemove, kAbort:
		return false
	}
	if !head.isLeaf {
		return false
	}
	if head.lowKey != nil && !keyGE(key, head.lowKey) {
		return false
	}
	return head.highKey == nil || keyLT(key, head.highKey)
}

// parentCovers is headCovers for the cached inner-node snapshot.
func parentCovers(p *delta, key []byte) bool {
	switch p.kind {
	case kRemove, kAbort:
		return false
	}
	if p.lowKey != nil && !keyGE(key, p.lowKey) {
		return false
	}
	return p.highKey == nil || keyLT(key, p.highKey)
}

// batchSeekLeaf positions tr on the leaf covering key, cheapest route
// first: (1) the previous operation's leaf, if its reloaded head still
// covers key; (2) a one-level route from the previous operation's parent
// snapshot; (3) a full descend from the root. The fast paths are only
// correctness-checked against the CURRENT chain head of the candidate
// leaf, so stale cached state degrades to a descend, never to a wrong
// node.
func (s *Session) batchSeekLeaf(key []byte, tr *traversal) bool {
	if tr.id != invalidNode {
		if head := s.t.load(tr.id); head != nil && headCovers(head, key) {
			tr.head = head
			s.leafHits++
			if deepProbes {
				s.probe.NoteChain(uint32(head.depth))
			}
			return true
		}
		if p := tr.parentHead; p != nil && tr.parentID != invalidNode && parentCovers(p, key) {
			if child, ok := s.routeInner(p, key); ok {
				if chead := s.t.load(child); chead != nil && headCovers(chead, key) {
					tr.id, tr.head = child, chead
					s.parentHits++
					if deepProbes {
						s.probe.NoteChain(uint32(chead.depth))
					}
					return true
				}
			}
		}
	}
	if !s.descendProbed(key, tr) {
		tr.id, tr.parentID, tr.parentHead = invalidNode, invalidNode, nil
		return false
	}
	return true
}

// batchRefresh re-enters the epoch every batchEpochRefresh operations and
// invalidates the cached traversal, bounding how long one batch can pin
// garbage.
func (s *Session) batchRefresh(n int, tr *traversal) {
	if n > 0 && n%batchEpochRefresh == 0 {
		s.h.Exit()
		s.h.Enter()
		tr.id, tr.parentID, tr.parentHead = invalidNode, invalidNode, nil
	}
}

// opLat records one per-operation latency when histograms are enabled.
// Inside a batch this replaces opDone: op counting and counter flushes are
// amortized into batchDone. The probe OpEnd balances the OpBegin issued
// by the per-op opStart — it nests inside the batch-level begin, so it
// only decrements the nest counter (the batch-level OpEnd in batchDone
// finalizes the flight entry / sampled trace).
func (s *Session) opLat(c obs.OpClass, start int64) {
	if s.lat == nil && (!deepProbes || s.probe == nil) {
		return
	}
	end := obs.Now()
	if s.lat != nil {
		s.lat.Record(c, end-start)
	}
	if deepProbes && s.probe != nil {
		s.probe.OpEnd(c, start, end-start)
	}
}

// batchDone closes out one batch call: one ops-counter add for the whole
// batch, one flush of the owner-private counters, and a whole-batch
// latency observation in the batch class.
func (s *Session) batchDone(n int, start int64) {
	s.stats.ops.Add(uint64(n))
	if c := s.chases; c != 0 {
		s.chases = 0
		s.stats.pointerChases.Add(c)
	}
	if c := s.leafHits; c != 0 {
		s.leafHits = 0
		s.stats.batchLeafHits.Add(c)
	}
	if c := s.parentHits; c != 0 {
		s.parentHits = 0
		s.stats.batchParentHits.Add(c)
	}
	if s.lat == nil && (!deepProbes || s.probe == nil) {
		return
	}
	end := obs.Now()
	if s.lat != nil {
		s.lat.Record(obs.OpBatch, end-start)
	}
	if deepProbes && s.probe != nil {
		s.probe.OpEnd(obs.OpBatch, start, end-start)
	}
}

// resizeBools returns ok resized to n cleared entries, reusing its backing
// array when possible.
func resizeBools(ok []bool, n int) []bool {
	if cap(ok) < n {
		return make([]bool, n)
	}
	ok = ok[:n]
	for i := range ok {
		ok[i] = false
	}
	return ok
}

// InsertBatch inserts every (keys[i], vals[i]) pair, amortizing epoch
// protection and traversal across the batch, and returns per-pair results
// in ok (reused when its capacity suffices): ok[i] reports what
// Insert(keys[i], vals[i]) would have reported. Operations execute in
// sorted key order (stable for duplicates); each key is inserted exactly
// as by Insert, so a batch containing the same unique key twice inserts
// the first occurrence and fails the second.
func (s *Session) InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	if len(keys) != len(vals) {
		panic("core: InsertBatch keys/vals length mismatch")
	}
	ok = resizeBools(ok, len(keys))
	if len(keys) == 0 {
		return ok
	}
	if s.t.opts.InPlaceLeafUpdates {
		// Fig. 18 debug mode is single-threaded and bypasses the delta
		// machinery; run the ops singly.
		for i, k := range keys {
			ok[i] = s.Insert(k, vals[i])
		}
		return ok
	}
	batchStart := s.opStart()
	ord := s.sortBatch(keys)
	s.h.Enter()
	tr := traversal{id: invalidNode, parentID: invalidNode}
	for n, e := range ord {
		i := int(e.idx)
		s.batchRefresh(n, &tr)
		start := s.opStart()
		ok[i] = s.insertOne(&tr, keys[i], vals[i])
		s.opLat(obs.OpInsert, start)
	}
	s.h.Exit()
	s.batchDone(len(keys), batchStart)
	return ok
}

// insertOne is the Insert loop body against a reusable traversal.
func (s *Session) insertOne(tr *traversal, key []byte, value uint64) bool {
	checkKey(key)
	spins := 0
	for {
		if !s.batchSeekLeaf(key, tr) {
			s.abortBackoff(&spins)
			continue
		}
		if s.t.opts.NonUnique {
			r := s.leafSeekPairProbed(tr.head, key, value)
			if r.found {
				return false
			}
			if s.appendLeaf(tr, kLeafInsert, key, value, 0, +1, r.baseOff) {
				return true
			}
		} else {
			r := s.leafSeekProbed(tr.head, key)
			if r.found {
				return false
			}
			if s.appendLeaf(tr, kLeafInsert, key, value, 0, +1, r.baseOff) {
				return true
			}
		}
		s.abortBackoff(&spins)
	}
}

// DeleteBatch removes every key (unique mode) or exact (keys[i], vals[i])
// pair (non-unique mode), with the same amortization, ordering, and result
// semantics as InsertBatch.
func (s *Session) DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	if len(keys) != len(vals) {
		panic("core: DeleteBatch keys/vals length mismatch")
	}
	ok = resizeBools(ok, len(keys))
	if len(keys) == 0 {
		return ok
	}
	if s.t.opts.InPlaceLeafUpdates {
		for i, k := range keys {
			ok[i] = s.Delete(k, vals[i])
		}
		return ok
	}
	batchStart := s.opStart()
	ord := s.sortBatch(keys)
	s.h.Enter()
	tr := traversal{id: invalidNode, parentID: invalidNode}
	for n, e := range ord {
		i := int(e.idx)
		s.batchRefresh(n, &tr)
		start := s.opStart()
		ok[i] = s.deleteOne(&tr, keys[i], vals[i])
		s.opLat(obs.OpDelete, start)
	}
	s.h.Exit()
	s.batchDone(len(keys), batchStart)
	return ok
}

// deleteOne is the Delete loop body against a reusable traversal.
func (s *Session) deleteOne(tr *traversal, key []byte, value uint64) bool {
	checkKey(key)
	spins := 0
	for {
		if !s.batchSeekLeaf(key, tr) {
			s.abortBackoff(&spins)
			continue
		}
		if s.t.opts.NonUnique {
			r := s.leafSeekPairProbed(tr.head, key, value)
			if !r.found {
				return false
			}
			if s.appendLeaf(tr, kLeafDelete, key, value, 0, -1, r.baseOff) {
				return true
			}
		} else {
			r := s.leafSeekProbed(tr.head, key)
			if !r.found {
				return false
			}
			if s.appendLeaf(tr, kLeafDelete, key, r.value, 0, -1, r.baseOff) {
				return true
			}
		}
		s.abortBackoff(&spins)
	}
}

// LookupBatch looks up every key and invokes visit once per key, in
// sorted key order, with i the key's original index and vals the values
// found (empty on a miss; at most one value in unique mode). vals aliases
// session scratch space and is only valid for the duration of the
// callback; visit must not call back into the session.
//
// Adjacent duplicate keys (common under skewed workloads once the batch
// is sorted) are answered from the previous result when the leaf's chain
// head is unchanged, without replaying the chain.
func (s *Session) LookupBatch(keys [][]byte, visit func(i int, vals []uint64)) {
	if len(keys) == 0 {
		return
	}
	batchStart := s.opStart()
	ord := s.sortBatch(keys)
	s.h.Enter()
	tr := traversal{id: invalidNode, parentID: invalidNode}
	var prevKey []byte
	var prevHead *delta
	var res []uint64
	for n, e := range ord {
		i := int(e.idx)
		refreshed := n > 0 && n%batchEpochRefresh == 0
		s.batchRefresh(n, &tr)
		key := keys[i]
		start := s.opStart()
		if !refreshed && prevHead != nil && bytes.Equal(key, prevKey) &&
			s.t.load(tr.id) == prevHead {
			// Same key, same chain head: the replay would retrace identical
			// records; reuse the previous result.
			s.leafHits++
			visit(i, res)
			s.opLat(obs.OpRead, start)
			continue
		}
		res = s.lookupOne(&tr, key, s.scratch[:0])
		s.scratch = res[:0]
		prevKey, prevHead = key, tr.head
		visit(i, res)
		s.opLat(obs.OpRead, start)
	}
	s.h.Exit()
	s.batchDone(len(keys), batchStart)
}

// lookupOne is the Lookup loop body against a reusable traversal,
// appending results to out.
func (s *Session) lookupOne(tr *traversal, key []byte, out []uint64) []uint64 {
	checkKey(key)
	spins := 0
	for {
		if !s.batchSeekLeaf(key, tr) {
			s.abortBackoff(&spins)
			continue
		}
		if s.t.opts.NonUnique {
			out, _ = s.collectValuesProbed(tr.head, key, out)
			return out
		}
		r := s.leafSeekProbed(tr.head, key)
		if r.found {
			return append(out, r.value)
		}
		return out
	}
}
