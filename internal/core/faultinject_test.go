package core

import (
	"math/rand"
	"testing"
)

// withCASFailures installs a fault-injection hook for the test's
// duration. The hook never fails a CaS whose expected head is a ∆abort:
// those are ownership-guaranteed by the merge protocol (Appendix B) and
// genuinely cannot fail.
func withCASFailures(t *testing.T, hook func(id nodeID, old, new *delta) bool) {
	old := casFailHook
	casFailHook = func(id nodeID, o, n *delta) bool {
		if o != nil && o.kind == kAbort {
			return false
		}
		return hook(id, o, n)
	}
	t.Cleanup(func() { casFailHook = old })
}

// TestInjectSplitSeparatorFailures forces every ∆separator post to fail a
// few times: splits are left half-finished, traversals must chase sibling
// links and help complete them, and the tree must converge to a valid
// state regardless.
func TestInjectSplitSeparatorFailures(t *testing.T) {
	failures := map[nodeID]int{}
	withCASFailures(t, func(id nodeID, o, n *delta) bool {
		if n.kind == kInnerInsert && failures[n.child] < 3 {
			failures[n.child]++
			return true
		}
		return false
	})

	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const n = 20000
	for i := uint64(0); i < n; i++ {
		if !s.Insert(key64(i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		got := s.Lookup(key64(i), nil)
		if len(got) != 1 || got[0] != i {
			t.Fatalf("lookup %d: %v", i, got)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if len(failures) == 0 {
		t.Fatal("injection never fired")
	}
}

// TestInjectSplitDeltaFailures fails the ∆split publication itself
// (Stage II): the split must abandon cleanly, recycle the unborn right
// sibling, and be retried by a later consolidation.
func TestInjectSplitDeltaFailures(t *testing.T) {
	count := 0
	withCASFailures(t, func(id nodeID, o, n *delta) bool {
		if n.kind == kSplit && count%2 == 0 {
			count++
			return true
		}
		if n.kind == kSplit {
			count++
		}
		return false
	})

	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	const n = 10000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i)
	}
	if count == 0 {
		t.Fatal("injection never fired")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := tr.Count(); got != n {
		t.Fatalf("count %d", got)
	}
}

// TestInjectMergeFailures fails ∆abort and ∆remove publications so merges
// abandon at every stage boundary; deletions must still be correct and
// the tree consistent.
func TestInjectMergeFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fired := 0
	withCASFailures(t, func(id nodeID, o, n *delta) bool {
		if (n.kind == kAbort || n.kind == kRemove || n.kind == kMerge) && rng.Intn(2) == 0 {
			fired++
			return true
		}
		return false
	})

	opts := DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	const n = 8000
	for i := uint64(0); i < n; i++ {
		s.Insert(key64(i), i)
	}
	for i := uint64(0); i < n; i++ {
		if !s.Delete(key64(i), 0) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if fired == 0 {
		t.Fatal("injection never fired")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := tr.Count(); got != 0 {
		t.Fatalf("count %d after drain", got)
	}
	// The tree remains fully usable.
	for i := uint64(0); i < 1000; i++ {
		if !s.Insert(key64(i), i+1) {
			t.Fatalf("re-insert %d failed", i)
		}
	}
}

// TestInjectRandomChaos sprays random CaS failures over a mixed workload
// and checks the tree still matches a model map exactly.
func TestInjectRandomChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	withCASFailures(t, func(id nodeID, o, n *delta) bool {
		return rng.Intn(10) == 0
	})

	opts := DefaultOptions()
	opts.LeafNodeSize = 12
	opts.InnerNodeSize = 6
	opts.LeafChainLength = 4
	opts.InnerChainLength = 2
	opts.LeafMergeSize = 3
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	model := map[uint64]uint64{}
	opRng := rand.New(rand.NewSource(5))
	for i := 0; i < 30000; i++ {
		k := uint64(opRng.Intn(1500)) + 1
		switch opRng.Intn(4) {
		case 0:
			_, exists := model[k]
			if s.Insert(key64(k), k) == exists {
				t.Fatalf("op %d: insert %d inconsistent", i, k)
			}
			if !exists {
				model[k] = k
			}
		case 1:
			_, exists := model[k]
			if s.Delete(key64(k), 0) != exists {
				t.Fatalf("op %d: delete %d inconsistent", i, k)
			}
			delete(model, k)
		case 2:
			v := uint64(opRng.Int63())
			_, exists := model[k]
			if s.Update(key64(k), v) != exists {
				t.Fatalf("op %d: update %d inconsistent", i, k)
			}
			if exists {
				model[k] = v
			}
		default:
			want, exists := model[k]
			got := s.Lookup(key64(k), nil)
			if exists != (len(got) == 1) || exists && got[0] != want {
				t.Fatalf("op %d: lookup %d got %v want %d,%v", i, k, got, want, exists)
			}
		}
	}
	casFailHook = nil // quiesce before structural checks
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if got := tr.Count(); got != len(model) {
		t.Fatalf("count %d, model %d", got, len(model))
	}
	if tr.Stats().Aborts == 0 {
		t.Fatal("chaos produced no aborts")
	}
}
