package core

import (
	"encoding/binary"
	"strings"
	"sync/atomic"
	"testing"
)

func wantContractPanic(t *testing.T, method string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Iterator.%s on an unpositioned iterator did not panic", method)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, method) || !strings.Contains(msg, "Valid()") {
			t.Fatalf("Iterator.%s panic is not descriptive: %v", method, r)
		}
	}()
	f()
}

// TestIteratorAccessContract pins the Key/Value precondition: accessing an
// iterator that is not positioned on an item must fail loudly with a
// message naming the method and the Valid() contract, not with a bare
// index-out-of-range.
func TestIteratorAccessContract(t *testing.T) {
	tr := New(DefaultOptions())
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()

	// Freshly created, never positioned.
	it := s.NewIterator()
	wantContractPanic(t, "Key", func() { it.Key() })
	wantContractPanic(t, "Value", func() { it.Value() })

	// Seek on an empty tree leaves the iterator invalid.
	it.SeekFirst()
	if it.Valid() {
		t.Fatal("SeekFirst on empty tree is Valid")
	}
	wantContractPanic(t, "Key", func() { it.Key() })

	// Positioned: accessors work.
	s.Insert(key64(7), 70)
	it.SeekFirst()
	if !it.Valid() || binary.BigEndian.Uint64(it.Key()) != 7 || it.Value() != 70 {
		t.Fatalf("positioned access broken: valid=%v", it.Valid())
	}

	// Exhausted by walking past the end.
	it.Next()
	if it.Valid() {
		t.Fatal("Next past the last item is Valid")
	}
	wantContractPanic(t, "Value", func() { it.Value() })

	// Exhausted by walking past the beginning.
	it.SeekToLast()
	it.Prev()
	if it.Valid() {
		t.Fatal("Prev past the first item is Valid")
	}
	wantContractPanic(t, "Key", func() { it.Key() })
}

// TestReverseScanAcrossMerge drives a reverse scan into a region of the
// tree that merges away underneath the cursor. Sentinel keys (multiples
// of 4) are never deleted; every other key is drained mid-scan by a
// second session the moment the cursor passes the start region, forcing
// the leaves under and ahead of the cursor to underflow and merge. The
// scan must still return every sentinel at or below its start exactly
// once, in strictly descending order — no key skipped, none seen twice
// (Appendix C.2's claim for backward traversal).
func TestReverseScanAcrossMerge(t *testing.T) {
	opts := DefaultOptions()
	opts.LeafNodeSize = 8
	opts.InnerNodeSize = 6
	opts.LeafChainLength = 3
	opts.LeafMergeSize = 4
	opts.InnerMergeSize = 2
	tr := New(opts)
	defer tr.Close()
	s := tr.NewSession()
	defer s.Release()
	del := tr.NewSession()
	defer del.Release()

	const n = 2048
	const start = 3 * n / 4 // mid-chain, not the tree edge
	for i := uint64(1); i <= n; i++ {
		if !s.Insert(key64(i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}

	// Observe merge publications through the fault-injection hook (never
	// failing anything) to prove merges really ran while the scan was in
	// flight.
	var mergePosts atomic.Int64
	restore := SetCASFailHook(func(ci CASInfo) bool {
		if ci.NewKind == kMerge.String() {
			mergePosts.Add(1)
		}
		return false
	})
	defer restore()

	var seen []uint64
	triggered := false
	s.ScanReverse(key64(start), n, func(k []byte, v uint64) bool {
		kv := binary.BigEndian.Uint64(k)
		seen = append(seen, kv)
		if !triggered {
			triggered = true
			// Drain every non-sentinel below the cursor: the node under
			// the cursor and everything it will retreat into underflows.
			for i := uint64(1); i < kv; i++ {
				if i%4 != 0 {
					del.Delete(key64(i), 0)
				}
			}
		}
		return true
	})

	if mergePosts.Load() == 0 {
		t.Fatal("no merge was posted while the scan ran; the test exercised nothing")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] >= seen[i-1] {
			t.Fatalf("reverse scan not strictly descending: %d then %d (item %d)", seen[i-1], seen[i], i)
		}
	}
	sentinels := map[uint64]int{}
	for _, kv := range seen {
		if kv%4 == 0 {
			sentinels[kv]++
		}
	}
	for i := uint64(4); i <= start; i += 4 {
		switch sentinels[i] {
		case 1:
		case 0:
			t.Errorf("sentinel %d skipped by reverse scan across merge", i)
		default:
			t.Errorf("sentinel %d seen %d times", i, sentinels[i])
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
