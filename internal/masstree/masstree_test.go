package masstree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func key64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func TestSliceEncodingOrder(t *testing.T) {
	// The 9-byte encoding must preserve binary key order for tricky
	// variable-length cases.
	keys := [][]byte{
		{'a'}, {'a', 0}, {'a', 0, 0}, {'a', 1}, {'a', 'b'}, {'b'},
	}
	var prev [9]byte
	for i, k := range keys {
		enc, _ := encodeSlice(k, 0)
		if i > 0 && bytes.Compare(prev[:], enc[:]) >= 0 {
			t.Fatalf("encoding order violated at %q", k)
		}
		prev = enc
	}
}

func TestSingleLayerInts(t *testing.T) {
	tr := New()
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if !tr.Insert(key64(i*7), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Lookup(key64(i * 7))
		if !ok || v != i {
			t.Fatalf("lookup %d: %d %v", i*7, v, ok)
		}
		if _, ok := tr.Lookup(key64(i*7 + 1)); ok {
			t.Fatalf("phantom %d", i*7+1)
		}
	}
}

func TestMultiLayerLongKeys(t *testing.T) {
	tr := New()
	// 32-byte keys sharing long prefixes force 4-layer chains.
	var keys [][]byte
	for i := 0; i < 5000; i++ {
		k := make([]byte, 32)
		copy(k, fmt.Sprintf("tenant-%04d/table-%02d/row-%06d", i%50, i%7, i))
		keys = append(keys, k)
	}
	for i, k := range keys {
		if !tr.Insert(k, uint64(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i, k := range keys {
		if v, ok := tr.Lookup(k); !ok || v != uint64(i) {
			t.Fatalf("lookup %d: %d %v", i, v, ok)
		}
	}
}

func TestPrefixKeysCoexist(t *testing.T) {
	tr := New()
	// A key that is a strict prefix of another, ending exactly at a
	// layer boundary (8 bytes) and mid-chunk.
	ks := [][]byte{
		[]byte("12345678"),          // exactly one chunk
		[]byte("123456789abcdefg"),  // two chunks sharing the first
		[]byte("1234"),              // partial chunk
		[]byte("123456789abcdefgh"), // extends into a third layer
	}
	for i, k := range ks {
		if !tr.Insert(k, uint64(i+1)) {
			t.Fatalf("insert %q failed", k)
		}
	}
	for i, k := range ks {
		if v, ok := tr.Lookup(k); !ok || v != uint64(i+1) {
			t.Fatalf("lookup %q: %d %v", k, v, ok)
		}
	}
	// Delete the chunk-boundary key; the sublayer keys must survive.
	if !tr.Delete(ks[0]) {
		t.Fatal("delete failed")
	}
	if _, ok := tr.Lookup(ks[0]); ok {
		t.Fatal("deleted key visible")
	}
	if v, ok := tr.Lookup(ks[1]); !ok || v != 2 {
		t.Fatalf("sublayer key lost: %d %v", v, ok)
	}
}

func TestScanAcrossLayers(t *testing.T) {
	tr := New()
	keys := []string{
		"a", "aaaaaaaa", "aaaaaaaab", "aaaaaaaabbbbbbbbc", "ab", "b",
		"bbbbbbbbbbbbbbbbbbbbbbbb", "c",
	}
	for i, k := range keys {
		tr.Insert([]byte(k), uint64(i))
	}
	var got []string
	tr.Scan([]byte("a"), 100, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != len(keys) {
		t.Fatalf("scan: %v", got)
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("scan[%d] = %q want %q", i, got[i], keys[i])
		}
	}
	// Bounded scan from a mid key.
	var mid []string
	tr.Scan([]byte("aaaaaaaab"), 2, func(k []byte, v uint64) bool {
		mid = append(mid, string(k))
		return true
	})
	if len(mid) != 2 || mid[0] != "aaaaaaaab" || mid[1] != "aaaaaaaabbbbbbbbc" {
		t.Fatalf("bounded scan: %v", mid)
	}
}

func TestUpdateDelete(t *testing.T) {
	tr := New()
	const n = 5000
	for i := uint64(0); i < n; i++ {
		tr.Insert(key64(i), i)
	}
	for i := uint64(0); i < n; i += 2 {
		if !tr.Delete(key64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := uint64(1); i < n; i += 2 {
		if !tr.Update(key64(i), i*3) {
			t.Fatalf("update %d failed", i)
		}
	}
	if tr.Update(key64(0), 1) {
		t.Fatal("update of deleted key succeeded")
	}
	for i := uint64(0); i < n; i++ {
		v, ok := tr.Lookup(key64(i))
		if i%2 == 0 {
			if ok {
				t.Fatalf("deleted %d visible", i)
			}
		} else if !ok || v != i*3 {
			t.Fatalf("lookup %d: %d %v", i, v, ok)
		}
	}
}

func TestConcurrentDisjoint(t *testing.T) {
	tr := New()
	nw := runtime.GOMAXPROCS(0) * 2
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * per
			for i := uint64(0); i < per; i++ {
				if !tr.Insert(key64(base+i), base+i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k := uint64(0); k < uint64(nw*per); k++ {
		if v, ok := tr.Lookup(key64(k)); !ok || v != k {
			t.Fatalf("lookup %d: %d %v", k, v, ok)
		}
	}
}

func TestQuickStringModel(t *testing.T) {
	tr := New()
	model := map[string]uint64{}
	f := func(raw []byte, v uint64, op uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		k := string(raw)
		switch op % 3 {
		case 0:
			_, exists := model[k]
			if tr.Insert([]byte(k), v) == exists {
				return false
			}
			if !exists {
				model[k] = v
			}
		case 1:
			_, exists := model[k]
			if tr.Delete([]byte(k)) != exists {
				return false
			}
			delete(model, k)
		default:
			want, exists := model[k]
			got, ok := tr.Lookup([]byte(k))
			if ok != exists || ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
	// Scan agrees with the model.
	count := 0
	var prev []byte
	tr.Scan([]byte{0}, len(model)+10, func(k []byte, v uint64) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("scan order violated")
			return false
		}
		prev = append(prev[:0], k...)
		if want, ok := model[string(k)]; !ok || want != v {
			t.Errorf("scan pair (%q,%d) not in model", k, v)
			return false
		}
		count++
		return true
	})
	if count != len(model) {
		t.Fatalf("scan count %d, model %d", count, len(model))
	}
}
