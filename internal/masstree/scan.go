package masstree

import "bytes"

type scanState struct {
	bound     []byte
	inclusive bool
	count     int
	max       int
	visit     func(key []byte, value uint64) bool
	stop      bool
}

// Scan visits up to max items with key >= start in ascending key order.
// Layers are walked depth-first; the 9-byte slice encoding makes per-layer
// enc order equal to global key order. Contents are immutable snapshots,
// so each node is validated once; interference restarts the scan from the
// last emitted key.
func (t *Tree) Scan(start []byte, max int, visit func(key []byte, value uint64) bool) int {
	st := &scanState{bound: start, inclusive: true, max: max, visit: visit}
	for {
		if st.count >= st.max || st.stop {
			return st.count
		}
		if t.scanLayer(&t.root, nil, st) {
			return st.count
		}
	}
}

// scanLayer walks one layer under prefix. Returns false on validation
// failure (restart from st.bound).
func (t *Tree) scanLayer(l *layer, prefix []byte, st *scanState) bool {
	// boundEnc is the encoded slice of the bound within this layer, when
	// the bound is still relevant here (its prefix matches ours).
	var boundEnc []byte
	if len(st.bound) >= len(prefix) && bytes.Equal(st.bound[:len(prefix)], prefix) {
		enc, _ := encodeSlice(st.bound, len(prefix))
		boundEnc = append([]byte(nil), enc[:]...)
	} else if bytes.Compare(st.bound, prefix) > 0 {
		// The whole layer lies below the bound.
		return true
	}
	return t.scanNode(l.root.Load(), prefix, boundEnc, st)
}

func (t *Tree) scanNode(n *mnode, prefix, boundEnc []byte, st *scanState) bool {
	v, ok := n.lock.ReadLock()
	if !ok {
		return false
	}
	it := n.items.Load()
	if !n.lock.Check(v) {
		return false
	}
	if !n.leaf {
		from := 0
		if boundEnc != nil {
			// Children left of the bound slice cannot contain it.
			from, _ = lowerBound(it.keys, boundEnc)
			// kids[i] covers keys < keys[i]; the child at `from` may
			// still contain boundEnc.
		}
		for i := from; i < len(it.kids); i++ {
			if !t.scanNode(it.kids[i], prefix, boundEnc, st) {
				return false
			}
			if st.count >= st.max || st.stop {
				return true
			}
		}
		return true
	}
	from := 0
	if boundEnc != nil {
		from, _ = lowerBound(it.keys, boundEnc)
		// The slot holding a full-8 chunk that is a strict prefix of the
		// bound sorts BEFORE boundEnc but may hold the sublayer
		// containing it; step back one slot to cover it.
		if from > 0 {
			from--
		}
	}
	for i := from; i < len(it.keys); i++ {
		enc := it.keys[i]
		chunk := enc[:enc[8]]
		key := append(append([]byte(nil), prefix...), chunk...)
		e := it.ents[i]
		if e.hasVal {
			emit := true
			cmp := bytes.Compare(key, st.bound)
			if cmp < 0 || cmp == 0 && !st.inclusive {
				emit = false
			}
			if emit {
				st.count++
				st.bound, st.inclusive = key, false
				if !st.visit(key, e.val) {
					st.stop = true
				}
				if st.count >= st.max || st.stop {
					return true
				}
			}
		}
		if e.sub != nil {
			// Prune sublayers wholly below the bound.
			m := min(len(key), len(st.bound))
			if bytes.Compare(key[:m], st.bound[:m]) >= 0 {
				if !t.scanLayer(e.sub, key, st) {
					return false
				}
				if st.count >= st.max || st.stop {
					return true
				}
			}
		}
	}
	return true
}
