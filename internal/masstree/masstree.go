// Package masstree implements Masstree (Mao, Kohler, Morris, EuroSys
// 2012): a trie of B+tree layers, each indexing one 8-byte slice of the
// key. It is the lock-based trie/B+tree hybrid the paper compares against
// (§6), where it serves as Silo's index.
//
// Layers are B+trees with small nodes (fanout 16, like Masstree's border
// nodes) synchronized with per-node version locks: writers lock, readers
// validate versions — the same protocol family Masstree uses (§7 of the
// paper groups it with optimistic schemes). Node contents are immutable
// copy-on-write snapshots, so validated readers never see torn state.
//
// A key is consumed 8 bytes per layer. A slice is encoded as 9 bytes:
// the chunk (zero-padded) plus its length, which makes variable-length
// keys binary-comparable ("a" < "a\x00" < "a\x01"). An entry holds a
// value (key ends in this layer), a sublayer (keys continue), or both.
// Masstree's key-suffix optimization is omitted: long keys always build
// layer chains (noted in DESIGN.md).
package masstree

import (
	"bytes"
	"sync/atomic"

	"repro/internal/olc"
)

const fanout = 16

// Tree is a concurrent Masstree. Create with New.
type Tree struct {
	root layer
}

// layer is one trie level: a small B+tree over 9-byte slice keys.
type layer struct {
	rootLock olc.Lock
	root     atomic.Pointer[mnode]
}

type mnode struct {
	lock  olc.Lock
	leaf  bool
	items atomic.Pointer[mitems]
}

// mitems is an immutable node snapshot.
type mitems struct {
	keys [][]byte // 9-byte encoded slices
	ents []entry  // leaves
	kids []*mnode // inner: len(kids) == len(keys)+1
}

// entry is a border-node slot: a terminal value, a link to the next
// layer, or both (a key ending here and longer keys sharing the chunk).
type entry struct {
	hasVal bool
	val    uint64
	sub    *layer
}

// New returns an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root.init()
	return t
}

func (l *layer) init() {
	leaf := &mnode{leaf: true}
	leaf.items.Store(&mitems{})
	l.root.Store(leaf)
}

// encodeSlice returns the 9-byte encoding of key[depth:depth+8] and
// whether the key extends beyond this slice.
func encodeSlice(key []byte, depth int) (enc [9]byte, extends bool) {
	rest := key[depth:]
	n := len(rest)
	if n > 8 {
		n = 8
		extends = true
	}
	copy(enc[:8], rest[:n])
	enc[8] = byte(n)
	return enc, extends
}

func upperBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func lowerBound(keys [][]byte, key []byte) (int, bool) {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(keys) && bytes.Equal(keys[lo], key)
}

// Lookup returns the value stored under key.
func (t *Tree) Lookup(key []byte) (uint64, bool) {
	l := &t.root
	depth := 0
	for {
		enc, extends := encodeSlice(key, depth)
		e, found := l.get(enc[:])
		if !found {
			return 0, false
		}
		if !extends {
			return e.val, e.hasVal
		}
		if e.sub == nil {
			return 0, false
		}
		l = e.sub
		depth += 8
	}
}

// get optimistically reads the entry for an encoded slice.
func (l *layer) get(enc []byte) (entry, bool) {
restart:
	n := l.root.Load()
	v, ok := n.lock.ReadLock()
	if !ok {
		goto restart
	}
	for {
		it := n.items.Load()
		if n.leaf {
			pos, exact := lowerBound(it.keys, enc)
			var e entry
			if exact {
				e = it.ents[pos]
			}
			if !n.lock.ReadUnlock(v) {
				goto restart
			}
			return e, exact
		}
		child := it.kids[upperBound(it.keys, enc)]
		if !n.lock.Check(v) {
			goto restart
		}
		cv, ok := child.lock.ReadLock()
		if !ok {
			goto restart
		}
		if !n.lock.ReadUnlock(v) {
			goto restart
		}
		n, v = child, cv
	}
}

// mutate applies f to the slot for enc under the leaf's write lock,
// inserting the slot if absent. f receives the current entry (zero if
// absent) and reports the new entry and whether to keep it; returning
// keep=false deletes the slot. The bool result of mutate is f's ok.
func (l *layer) mutate(enc []byte, f func(old entry, existed bool) (entry, bool, bool)) bool {
	for {
		done, ok := l.mutateOnce(enc, f)
		if done {
			return ok
		}
	}
}

func (l *layer) mutateOnce(enc []byte, f func(entry, bool) (entry, bool, bool)) (done, ok bool) {
	root := l.root.Load()
	v, lok := root.lock.ReadLock()
	if !lok {
		return false, false
	}
	if len(root.items.Load().keys) >= fanout {
		l.splitRoot(root, v)
		return false, false
	}
	n, nv := root, v
	for !n.leaf {
		it := n.items.Load()
		child := it.kids[upperBound(it.keys, enc)]
		if !n.lock.Check(nv) {
			return false, false
		}
		cv, lok := child.lock.ReadLock()
		if !lok {
			return false, false
		}
		if len(child.items.Load().keys) >= fanout {
			if !n.lock.Check(nv) {
				return false, false
			}
			l.splitChild(n, nv, child, cv)
			return false, false
		}
		n, nv = child, cv
	}
	it := n.items.Load()
	pos, exact := lowerBound(it.keys, enc)
	var old entry
	if exact {
		old = it.ents[pos]
	}
	ne, keep, fok := f(old, exact)
	if exact && keep && ne == old {
		// No change needed; just validate the read.
		if !n.lock.ReadUnlock(nv) {
			return false, false
		}
		return true, fok
	}
	if !exact && !keep {
		if !n.lock.ReadUnlock(nv) {
			return false, false
		}
		return true, fok
	}
	if !n.lock.Upgrade(nv) {
		return false, false
	}
	nit := &mitems{}
	switch {
	case exact && keep: // replace
		nit.keys = it.keys
		nit.ents = append(append(append(make([]entry, 0, len(it.ents)), it.ents[:pos]...), ne), it.ents[pos+1:]...)
	case exact && !keep: // delete
		nit.keys = append(append(make([][]byte, 0, len(it.keys)-1), it.keys[:pos]...), it.keys[pos+1:]...)
		nit.ents = append(append(make([]entry, 0, len(it.ents)-1), it.ents[:pos]...), it.ents[pos+1:]...)
	default: // insert
		nit.keys = append(append(append(make([][]byte, 0, len(it.keys)+1), it.keys[:pos]...), append([]byte(nil), enc...)), it.keys[pos:]...)
		nit.ents = append(append(append(make([]entry, 0, len(it.ents)+1), it.ents[:pos]...), ne), it.ents[pos:]...)
	}
	n.items.Store(nit)
	n.lock.WriteUnlock()
	return true, fok
}

func (l *layer) splitRoot(root *mnode, v uint64) {
	if !l.rootLock.WriteLock() {
		return
	}
	defer l.rootLock.WriteUnlock()
	if l.root.Load() != root {
		return
	}
	if !root.lock.Upgrade(v) {
		return
	}
	it := root.items.Load()
	if len(it.keys) < fanout {
		root.lock.WriteUnlock()
		return
	}
	left, right, sep := splitItems(root, it)
	newRoot := &mnode{}
	newRoot.items.Store(&mitems{keys: [][]byte{sep}, kids: []*mnode{left, right}})
	l.root.Store(newRoot)
	root.lock.WriteUnlockObsolete()
}

func splitItems(n *mnode, it *mitems) (left, right *mnode, sep []byte) {
	mid := len(it.keys) / 2
	if n.leaf {
		left = &mnode{leaf: true}
		right = &mnode{leaf: true}
		left.items.Store(&mitems{keys: it.keys[:mid:mid], ents: it.ents[:mid:mid]})
		right.items.Store(&mitems{keys: it.keys[mid:], ents: it.ents[mid:]})
		return left, right, it.keys[mid]
	}
	left = &mnode{}
	right = &mnode{}
	left.items.Store(&mitems{keys: it.keys[:mid:mid], kids: it.kids[: mid+1 : mid+1]})
	right.items.Store(&mitems{keys: it.keys[mid+1:], kids: it.kids[mid+1:]})
	return left, right, it.keys[mid]
}

func (l *layer) splitChild(parent *mnode, pv uint64, child *mnode, cv uint64) {
	if !parent.lock.Upgrade(pv) {
		return
	}
	defer parent.lock.WriteUnlock()
	if !child.lock.Upgrade(cv) {
		return
	}
	it := child.items.Load()
	if len(it.keys) < fanout {
		child.lock.WriteUnlock()
		return
	}
	left, right, sep := splitItems(child, it)
	pit := parent.items.Load()
	ci := -1
	for i, k := range pit.kids {
		if k == child {
			ci = i
			break
		}
	}
	if ci < 0 {
		child.lock.WriteUnlock()
		return
	}
	pos := upperBound(pit.keys, sep)
	nk := append(append(append(make([][]byte, 0, len(pit.keys)+1), pit.keys[:pos]...), sep), pit.keys[pos:]...)
	nc := make([]*mnode, 0, len(pit.kids)+1)
	nc = append(nc, pit.kids[:ci]...)
	nc = append(nc, left, right)
	nc = append(nc, pit.kids[ci+1:]...)
	parent.items.Store(&mitems{keys: nk, kids: nc})
	child.lock.WriteUnlockObsolete()
}

// Insert adds (key, value), failing if the key is present.
func (t *Tree) Insert(key []byte, value uint64) bool {
	l := &t.root
	depth := 0
	for {
		enc, extends := encodeSlice(key, depth)
		if !extends {
			return l.mutate(enc[:], func(old entry, existed bool) (entry, bool, bool) {
				if existed && old.hasVal {
					return old, true, false // duplicate
				}
				old.hasVal = true
				old.val = value
				return old, true, true
			})
		}
		var next *layer
		l.mutate(enc[:], func(old entry, existed bool) (entry, bool, bool) {
			if existed && old.sub != nil {
				next = old.sub
				return old, true, true
			}
			sub := &layer{}
			sub.init()
			old.sub = sub
			next = sub
			return old, true, true
		})
		l = next
		depth += 8
	}
}

// Update replaces key's value, reporting presence.
func (t *Tree) Update(key []byte, value uint64) bool {
	l := &t.root
	depth := 0
	for {
		enc, extends := encodeSlice(key, depth)
		if !extends {
			return l.mutate(enc[:], func(old entry, existed bool) (entry, bool, bool) {
				if !existed || !old.hasVal {
					return old, existed, false
				}
				old.val = value
				return old, true, true
			})
		}
		e, found := l.get(enc[:])
		if !found || e.sub == nil {
			return false
		}
		l = e.sub
		depth += 8
	}
}

// Delete removes key, reporting whether it was present. Emptied sublayers
// are left in place (they are rare and harmless; noted in DESIGN.md).
func (t *Tree) Delete(key []byte) bool {
	l := &t.root
	depth := 0
	for {
		enc, extends := encodeSlice(key, depth)
		if !extends {
			return l.mutate(enc[:], func(old entry, existed bool) (entry, bool, bool) {
				if !existed || !old.hasVal {
					return old, existed, false
				}
				old.hasVal = false
				old.val = 0
				keep := old.sub != nil
				return old, keep, true
			})
		}
		e, found := l.get(enc[:])
		if !found || e.sub == nil {
			return false
		}
		l = e.sub
		depth += 8
	}
}
