package masstree

import (
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentMixedAcrossLayers churns 24-byte keys (3 layers deep)
// from many goroutines; values must never leak across keys.
func TestConcurrentMixedAcrossLayers(t *testing.T) {
	tr := New()
	nw := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	mk := func(n uint64) []byte {
		k := make([]byte, 24)
		binary.BigEndian.PutUint64(k, n%37)     // few first-layer slots
		binary.BigEndian.PutUint64(k[8:], n%53) // few second-layer slots
		binary.BigEndian.PutUint64(k[16:], n)   // unique tail
		return k
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 15000; i++ {
				n := uint64(rng.Intn(4000))
				k := mk(n)
				switch rng.Intn(4) {
				case 0:
					tr.Insert(k, n)
				case 1:
					tr.Delete(k)
				case 2:
					tr.Update(k, n)
				default:
					if v, ok := tr.Lookup(k); ok && v != n {
						t.Errorf("key %d has foreign value %d", n, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestScanWhileMutating checks scan ordering under concurrent writers.
func TestScanWhileMutating(t *testing.T) {
	tr := New()
	for i := uint64(0); i < 20000; i += 2 {
		tr.Insert(key64(i), i)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for !stop.Load() {
			n := uint64(rng.Intn(10000))*2 + 1
			if rng.Intn(2) == 0 {
				tr.Insert(key64(n), n)
			} else {
				tr.Delete(key64(n))
			}
		}
	}()
	for round := 0; round < 10; round++ {
		var prev int64 = -1
		tr.Scan(key64(0), 5000, func(k []byte, v uint64) bool {
			cur := int64(binary.BigEndian.Uint64(k))
			if cur <= prev {
				t.Errorf("scan order: %d after %d", cur, prev)
				return false
			}
			prev = cur
			return true
		})
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestLayerSplits fills one layer far past a single node's fanout so the
// per-layer B+tree splits repeatedly, including root splits.
func TestLayerSplits(t *testing.T) {
	tr := New()
	const n = 50000
	for i := uint64(0); i < n; i++ {
		if !tr.Insert(key64(i), i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	for i := uint64(0); i < n; i += 331 {
		if v, ok := tr.Lookup(key64(i)); !ok || v != i {
			t.Fatalf("lookup %d: %d %v", i, v, ok)
		}
	}
	count := 0
	tr.Scan(key64(0), n+10, func(k []byte, v uint64) bool { count++; return true })
	if count != n {
		t.Fatalf("scan count %d", count)
	}
}

// TestValueAndSublayerSameSlot: a slot carrying both a terminal value and
// a sublayer must keep both across deletes of either.
func TestValueAndSublayerSameSlot(t *testing.T) {
	tr := New()
	exact := []byte("12345678")          // ends exactly at the chunk
	longer := []byte("12345678ABCDEFGH") // continues into a sublayer
	tr.Insert(exact, 1)
	tr.Insert(longer, 2)

	// Delete the longer key: the exact key must survive.
	if !tr.Delete(longer) {
		t.Fatal("delete longer failed")
	}
	if v, ok := tr.Lookup(exact); !ok || v != 1 {
		t.Fatalf("exact lost: %d %v", v, ok)
	}
	// Re-insert and delete the exact key: the longer must survive.
	tr.Insert(longer, 3)
	if !tr.Delete(exact) {
		t.Fatal("delete exact failed")
	}
	if v, ok := tr.Lookup(longer); !ok || v != 3 {
		t.Fatalf("longer lost: %d %v", v, ok)
	}
}
