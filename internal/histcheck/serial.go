package histcheck

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/index"
)

// This file adds a transactional counterpart to the per-key linearizer:
// a serialization-graph checker over committed multi-key transactions
// (internal/txn). Version stamps make the check direct — no interval
// reasoning needed. Every committed write carries the globally-unique,
// per-key-monotonic version the engine installed, and every read records
// the version it observed, so the history itself names the dependency
// edges:
//
//	WW  w1 → w2    w1, w2 write the same key and w1's version is the
//	               largest recorded version below w2's
//	WR  w  → r     r read the version w wrote
//	RW  r  → w     w installed the next version after the one r read
//	               (the anti-dependency that closes write-skew cycles)
//
// A history is conflict-serializable iff this graph is acyclic
// [Bernstein & Goodman]. A read of version 0 observed absence; reads of
// versions no recorded transaction wrote observe pre-history state.
// Both act as "before every recorded writer" for RW purposes.
//
// Scope: put-only transactional histories (TxnPut writes). A delete
// makes a key absent, and a later read of that absence records version
// 0 — indistinguishable from pre-history absence, which would fabricate
// RW edges into the past. The recorder therefore refuses histories with
// deletes rather than silently mis-checking them.

// TxnKV is one versioned key observation in a transactional history.
type TxnKV struct {
	Key string
	Ver uint64
}

// TxnRecord is one committed transaction: the versions it observed and
// the versions it installed.
type TxnRecord struct {
	ID     uint64
	Reads  []TxnKV
	Writes []TxnKV
}

// CheckSerial verifies that a set of committed transactions is
// conflict-serializable. It builds the full serialization graph (WW, WR,
// RW edges) from the recorded version stamps and reports every strongly
// connected component with more than one transaction as one violation,
// quoting a concrete cycle through it.
//
// The checker is deterministic: the same records (in any order) yield
// the same verdicts.
func CheckSerial(recs []TxnRecord) []Violation {
	// Index transactions and writers-per-key. Sort by ID first so edge
	// construction, and therefore cycle reporting, is order-independent.
	recs = append([]TxnRecord(nil), recs...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	byID := make(map[uint64]int, len(recs))
	var violations []Violation
	for i, r := range recs {
		if j, dup := byID[r.ID]; dup {
			violations = append(violations, Violation{
				Kind: "txn-duplicate-id",
				Msg:  fmt.Sprintf("transactions %d and %d share ID %d", j, i, r.ID),
			})
			continue
		}
		byID[r.ID] = i
	}

	// writers[key] = writes of key sorted by installed version, each
	// tagged with its writer's index.
	type verWriter struct {
		ver uint64
		txn int
	}
	writers := make(map[string][]verWriter)
	for i, r := range recs {
		for _, w := range r.Writes {
			if w.Ver == 0 {
				violations = append(violations, Violation{
					Kind: "txn-zero-write-version",
					Key:  w.Key,
					Msg:  fmt.Sprintf("txn %d recorded version 0 for a committed write (conflicted or unstamped?)", r.ID),
				})
				continue
			}
			writers[w.Key] = append(writers[w.Key], verWriter{w.Ver, i})
		}
	}
	for key, ws := range writers {
		sort.Slice(ws, func(i, j int) bool { return ws[i].ver < ws[j].ver })
		for i := 1; i < len(ws); i++ {
			if ws[i].ver == ws[i-1].ver {
				violations = append(violations, Violation{
					Kind: "txn-duplicate-write-version",
					Key:  key,
					Msg: fmt.Sprintf("txns %d and %d both installed version %d (lost atomicity or stamp reuse)",
						recs[ws[i-1].txn].ID, recs[ws[i].txn].ID, ws[i].ver),
				})
			}
		}
		writers[key] = ws
	}
	if violations != nil {
		// Version-stamp integrity failed; the graph would be built on
		// corrupt edges, so stop here.
		return violations
	}

	// nextWriter returns the index of the transaction that installed the
	// smallest version strictly greater than ver on key, or -1.
	nextWriter := func(key string, ver uint64) int {
		ws := writers[key]
		i := sort.Search(len(ws), func(i int) bool { return ws[i].ver > ver })
		if i == len(ws) {
			return -1
		}
		return ws[i].txn
	}
	// writerOf returns the index of the transaction that installed
	// exactly ver on key, or -1 (pre-history version).
	writerOf := func(key string, ver uint64) int {
		ws := writers[key]
		i := sort.Search(len(ws), func(i int) bool { return ws[i].ver >= ver })
		if i < len(ws) && ws[i].ver == ver {
			return ws[i].txn
		}
		return -1
	}

	// Build adjacency. Dedup edges with a set keyed on (from, to).
	adj := make([][]int, len(recs))
	seen := make(map[[2]int]struct{})
	addEdge := func(from, to int) {
		if from == to || from < 0 || to < 0 {
			return
		}
		k := [2]int{from, to}
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}
		adj[from] = append(adj[from], to)
	}
	for i, r := range recs {
		for _, w := range r.Writes {
			// WW: previous version's writer precedes us.
			ws := writers[w.Key]
			j := sort.Search(len(ws), func(j int) bool { return ws[j].ver >= w.Ver })
			if j > 0 {
				addEdge(ws[j-1].txn, i)
			}
		}
		for _, rd := range r.Reads {
			// WR: the writer of what we read precedes us (pre-history
			// reads, including ver 0, have no recorded writer).
			addEdge(writerOf(rd.Key, rd.Ver), i)
			// RW: we precede the writer that overwrote what we read —
			// unless that writer is us (we read then overwrote the key
			// inside one transaction, which is just WR+WW teamwork).
			addEdge(i, nextWriter(rd.Key, rd.Ver))
		}
	}

	// Tarjan SCC, iteratively (histories can be long). Any SCC with >1
	// member is a serializability violation.
	const unvisited = -1
	idx := make([]int, len(recs))
	low := make([]int, len(recs))
	onStack := make([]bool, len(recs))
	for i := range idx {
		idx[i] = unvisited
	}
	var stack []int
	next := 0
	type frame struct{ v, ei int }
	var cycles [][]int
	for root := range recs {
		if idx[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		idx[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if idx[w] == unvisited {
					idx[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			// f.v is finished: pop its SCC if it is a root.
			if low[f.v] == idx[f.v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.v {
						break
					}
				}
				if len(scc) > 1 {
					cycles = append(cycles, scc)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}

	for _, scc := range cycles {
		sort.Ints(scc)
		ids := make([]string, len(scc))
		for i, v := range scc {
			ids[i] = fmt.Sprintf("%d", recs[v].ID)
		}
		violations = append(violations, Violation{
			Kind: "txn-cycle",
			Msg: fmt.Sprintf("serialization graph cycle through txns {%s}: %s",
				strings.Join(ids, ","), describeCycle(recs, adj, scc)),
		})
	}
	return violations
}

// describeCycle walks one concrete cycle inside an SCC for the report:
// start anywhere in the component and follow in-component edges until a
// node repeats.
func describeCycle(recs []TxnRecord, adj [][]int, scc []int) string {
	in := make(map[int]bool, len(scc))
	for _, v := range scc {
		in[v] = true
	}
	var path []int
	at := make(map[int]int)
	v := scc[0]
	for {
		if p, ok := at[v]; ok {
			path = path[p:]
			break
		}
		at[v] = len(path)
		path = append(path, v)
		for _, w := range adj[v] {
			if in[w] {
				v = w
				break
			}
		}
	}
	parts := make([]string, 0, len(path)+1)
	for _, v := range path {
		parts = append(parts, fmt.Sprintf("T%d", recs[v].ID))
	}
	parts = append(parts, fmt.Sprintf("T%d", recs[path[0]].ID))
	return strings.Join(parts, " -> ")
}

// TxnChecker records committed transactions flowing through wrapped
// sessions for a post-run CheckSerial. Wrap any index.TxnSession; the
// recorder adds one mutex acquisition and a few appends per commit.
type TxnChecker struct {
	mu   sync.Mutex
	recs []TxnRecord
	errs []Violation
}

// NewTxnChecker returns an empty transactional history recorder.
func NewTxnChecker() *TxnChecker { return &TxnChecker{} }

// Wrap returns a session that forwards to ts and records every committed
// transaction. Conflicted transactions leave no trace (they changed
// nothing). Deletes are outside the checker's scope (see package doc);
// committing one through a wrapped session records a violation.
func (c *TxnChecker) Wrap(ts index.TxnSession) index.TxnSession {
	return &recordedTxnSession{c: c, ts: ts}
}

// History returns the committed records so far. Call only when all
// wrapped sessions are quiescent.
func (c *TxnChecker) History() []TxnRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TxnRecord(nil), c.recs...)
}

// Check runs CheckSerial over everything recorded so far. Call only when
// all wrapped sessions are quiescent.
func (c *TxnChecker) Check() []Violation {
	c.mu.Lock()
	recs := append([]TxnRecord(nil), c.recs...)
	errs := append([]Violation(nil), c.errs...)
	c.mu.Unlock()
	return append(errs, CheckSerial(recs)...)
}

// CheckReset runs Check over everything recorded so far, then clears the
// recorder, returning the number of drained records alongside the
// verdicts. Use at recovery boundaries: a store that crashes and replays
// restarts its version counter, so stamps from different incarnations
// are numerically incomparable and a history spanning one would report
// meaningless stamp reuse. Each incarnation must be serializable on its
// own; committed writes surviving from earlier epochs act as pre-history
// (their versions match no recorded writer). Call only when all wrapped
// sessions are quiescent.
func (c *TxnChecker) CheckReset() (int, []Violation) {
	c.mu.Lock()
	recs := c.recs
	errs := c.errs
	c.recs, c.errs = nil, nil
	c.mu.Unlock()
	return len(recs), append(errs, CheckSerial(recs)...)
}

type recordedTxnSession struct {
	c  *TxnChecker
	ts index.TxnSession
}

func (s *recordedTxnSession) GetVersion(key []byte) (uint64, uint64, bool, error) {
	return s.ts.GetVersion(key)
}

func (s *recordedTxnSession) Release() { s.ts.Release() }

func (s *recordedTxnSession) CommitTxn(reads []index.TxnRead, writes []index.TxnWrite) (index.TxnResult, error) {
	res, err := s.ts.CommitTxn(reads, writes)
	if err != nil || res.Status != index.TxnCommitted {
		return res, err
	}
	rec := TxnRecord{ID: res.TxnID}
	for _, r := range reads {
		rec.Reads = append(rec.Reads, TxnKV{Key: string(r.Key), Ver: r.Ver})
	}
	var del []Violation
	for i, w := range writes {
		if w.Op == index.TxnDel {
			del = append(del, Violation{
				Kind: "txn-unsupported-delete",
				Key:  string(w.Key),
				Msg:  fmt.Sprintf("txn %d committed a delete; serializability checking covers put-only histories", res.TxnID),
			})
			continue
		}
		if i >= len(res.WriteVers) || res.WriteVers[i] == 0 {
			// Version 0 marks an elided no-op put (the value already
			// matched, so no record was installed). It changed nothing
			// and cannot invalidate any read, so it contributes no
			// dependency edges.
			continue
		}
		rec.Writes = append(rec.Writes, TxnKV{Key: string(w.Key), Ver: res.WriteVers[i]})
	}
	s.c.mu.Lock()
	s.c.recs = append(s.c.recs, rec)
	s.c.errs = append(s.c.errs, del...)
	s.c.mu.Unlock()
	return res, err
}
