package histcheck

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/txn"
)

func skey(i uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return string(b[:])
}

// TestCheckSerialAcceptsChain: a sequential read-modify-write chain is
// trivially serializable.
func TestCheckSerialAcceptsChain(t *testing.T) {
	var recs []TxnRecord
	for i := uint64(1); i <= 10; i++ {
		recs = append(recs, TxnRecord{
			ID:     i,
			Reads:  []TxnKV{{Key: skey(0), Ver: i - 1}},
			Writes: []TxnKV{{Key: skey(0), Ver: i}},
		})
	}
	if v := CheckSerial(recs); len(v) != 0 {
		t.Fatalf("chain flagged: %v", v)
	}
}

// TestCheckSerialAcceptsDisjoint: transactions over disjoint keys never
// conflict.
func TestCheckSerialAcceptsDisjoint(t *testing.T) {
	var recs []TxnRecord
	for i := uint64(1); i <= 20; i++ {
		recs = append(recs, TxnRecord{
			ID:     i,
			Reads:  []TxnKV{{Key: skey(i), Ver: 0}},
			Writes: []TxnKV{{Key: skey(i), Ver: i}},
		})
	}
	if v := CheckSerial(recs); len(v) != 0 {
		t.Fatalf("disjoint txns flagged: %v", v)
	}
}

// TestCheckSerialCatchesWriteSkew: the canonical non-serializable
// anomaly version validation alone cannot see — two transactions each
// read both keys and write the other one. The RW anti-dependencies form
// a two-cycle.
func TestCheckSerialCatchesWriteSkew(t *testing.T) {
	x, y := skey(1), skey(2)
	recs := []TxnRecord{
		// Initial state: T1 installs x@1, y@2.
		{ID: 1, Writes: []TxnKV{{x, 1}, {y, 2}}},
		// T2 and T3 both read the initial versions; each overwrites one key.
		{ID: 2, Reads: []TxnKV{{x, 1}, {y, 2}}, Writes: []TxnKV{{x, 3}}},
		{ID: 3, Reads: []TxnKV{{x, 1}, {y, 2}}, Writes: []TxnKV{{y, 4}}},
	}
	v := CheckSerial(recs)
	if len(v) != 1 || v[0].Kind != "txn-cycle" {
		t.Fatalf("write skew not flagged as one txn-cycle: %v", v)
	}
	t.Logf("diagnosis: %s", v[0].Msg)
}

// TestCheckSerialCatchesLostUpdate: two transactions both read x@1 and
// both commit writes to x — WW orders them one way, the loser's stale
// read points the other way.
func TestCheckSerialCatchesLostUpdate(t *testing.T) {
	x := skey(1)
	recs := []TxnRecord{
		{ID: 1, Writes: []TxnKV{{x, 1}}},
		{ID: 2, Reads: []TxnKV{{x, 1}}, Writes: []TxnKV{{x, 2}}},
		{ID: 3, Reads: []TxnKV{{x, 1}}, Writes: []TxnKV{{x, 3}}},
	}
	v := CheckSerial(recs)
	if len(v) != 1 || v[0].Kind != "txn-cycle" {
		t.Fatalf("lost update not flagged as one txn-cycle: %v", v)
	}
}

// TestCheckSerialCatchesStampReuse: two committed writes installing the
// same version on one key means atomicity broke upstream.
func TestCheckSerialCatchesStampReuse(t *testing.T) {
	recs := []TxnRecord{
		{ID: 1, Writes: []TxnKV{{skey(1), 7}}},
		{ID: 2, Writes: []TxnKV{{skey(1), 7}}},
	}
	v := CheckSerial(recs)
	if len(v) != 1 || v[0].Kind != "txn-duplicate-write-version" {
		t.Fatalf("stamp reuse not flagged: %v", v)
	}
}

// TestTxnCheckerGreen runs a concurrent bank workload through the real
// OCC engine with the recorder attached: the checked history must be
// serializable and the money conserved.
func TestTxnCheckerGreen(t *testing.T) {
	tr := core.New(core.DefaultOptions())
	ts := txn.NewForTree(tr)
	chk := NewTxnChecker()

	const accounts = 32
	const initial = 1000
	{
		s := chk.Wrap(ts.NewSession())
		var writes []index.TxnWrite
		for i := uint64(0); i < accounts; i++ {
			writes = append(writes, index.TxnWrite{Op: index.TxnPut, Key: []byte(skey(i)), Value: initial})
		}
		if res, err := s.CommitTxn(nil, writes); err != nil || res.Status != index.TxnCommitted {
			t.Fatalf("seed: %v %v", res.Status, err)
		}
		s.Release()
	}

	workers, transfers := 8, 300
	if testing.Short() {
		workers, transfers = 4, 80
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := chk.Wrap(ts.NewSession())
			defer s.Release()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers; i++ {
				from := []byte(skey(uint64(rng.Intn(accounts))))
				to := []byte(skey(uint64(rng.Intn(accounts))))
				if string(from) == string(to) {
					continue
				}
				fv, fver, _, _ := s.GetVersion(from)
				tv, tver, _, _ := s.GetVersion(to)
				amount := uint64(rng.Intn(10))
				if fv < amount {
					continue
				}
				if _, err := s.CommitTxn(
					[]index.TxnRead{{Key: from, Ver: fver}, {Key: to, Ver: tver}},
					[]index.TxnWrite{
						{Op: index.TxnPut, Key: from, Value: fv - amount},
						{Op: index.TxnPut, Key: to, Value: tv + amount},
					},
				); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	var sum uint64
	s := tr.NewSession()
	for i := uint64(0); i < accounts; i++ {
		var vals []uint64
		vals = s.Lookup([]byte(skey(i)), vals)
		if len(vals) != 1 {
			t.Fatalf("account %d: %d values", i, len(vals))
		}
		sum += vals[0]
	}
	s.Release()
	if sum != accounts*initial {
		t.Fatalf("bank sum = %d, want %d", sum, accounts*initial)
	}

	if v := chk.Check(); len(v) != 0 {
		t.Fatalf("serializable engine produced violations: %v", v)
	}
	t.Logf("checked %d committed transactions: serializable", len(chk.History()))
}

// TestTxnCheckerCheckReset covers the epoch boundary: CheckReset verifies
// and drains, so records from different store incarnations (whose version
// stamps alias numerically) never meet in one graph.
func TestTxnCheckerCheckReset(t *testing.T) {
	chk := NewTxnChecker()
	commit := func(ts *txn.Store, key string, val uint64) {
		s := chk.Wrap(ts.NewSession())
		defer s.Release()
		_, ver, _, _ := s.GetVersion([]byte(key))
		res, err := s.CommitTxn(
			[]index.TxnRead{{Key: []byte(key), Ver: ver}},
			[]index.TxnWrite{{Op: index.TxnPut, Key: []byte(key), Value: val}})
		if err != nil || res.Status != index.TxnCommitted {
			t.Fatalf("commit: %v %v", res.Status, err)
		}
	}

	// Incarnation 1: two commits, then drain at the "crash".
	ts1 := txn.NewForTree(core.New(core.DefaultOptions()))
	commit(ts1, "x", 1)
	commit(ts1, "y", 2)
	n, violations := chk.CheckReset()
	if n != 2 || len(violations) != 0 {
		t.Fatalf("epoch 1: drained %d records, violations %v", n, violations)
	}

	// Incarnation 2: a fresh tree restarts the stamp counter; its commits
	// reuse the same version numbers on the same keys. Segmented checking
	// must stay green where a merged history would report stamp reuse.
	ts2 := txn.NewForTree(core.New(core.DefaultOptions()))
	commit(ts2, "x", 3)
	if len(chk.History()) != 1 {
		t.Fatalf("history after reset holds %d records, want 1", len(chk.History()))
	}
	n, violations = chk.CheckReset()
	if n != 1 || len(violations) != 0 {
		t.Fatalf("epoch 2: drained %d records, violations %v", n, violations)
	}
	if n, _ := chk.CheckReset(); n != 0 {
		t.Fatalf("third drain saw %d records, want 0", n)
	}
}
