package histcheck

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Violation is one detected departure from sequential index semantics.
type Violation struct {
	// Kind classifies the violation: "duplicate-key", "duplicate-pair",
	// "scan-order", "scan-duplicate", "scan-phantom", "scan-skip",
	// "non-linearizable", or "checker-limit".
	Kind string
	// Key is the affected key (the scan start key for scan violations).
	Key string
	// Msg is a human-readable diagnosis.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s key=%x: %s", v.Kind, v.Key, v.Msg)
}

// memoLimit bounds the linearizer's memo table per key. Histories from the
// drivers in this repository stay far below it; blowing past it means the
// history is too concurrent per key to decide, which is reported rather
// than silently dropped.
const memoLimit = 1 << 22

// Check verifies a merged history against the sequential semantics of the
// index interface: per-key linearizability for point operations, plus
// order, membership, and completeness checks for scans.
//
// The checker is deterministic: the same history always yields the same
// verdicts in the same order.
//
// What it can catch: uniqueness violations (two concurrent inserts of one
// key both succeeding), lost updates (an acknowledged write that later
// reads miss), stale reads (a read returning a value overwritten by an
// operation that completed before the read began), phantom or duplicated
// keys in scans, keys skipped by a scan although stably present, and
// duplicate values under non-unique semantics.
//
// What it cannot catch: violations among operations the history never
// observed (the recorder must wrap every client), value staleness inside
// scans for keys under concurrent update (scan membership is checked, the
// visited value only for provenance), and cross-key ordering anomalies
// other than those visible through scans (per-key checking is complete for
// a map because keys are independent objects).
func Check(h *History) []Violation {
	var vs []Violation
	vs = append(vs, checkLookupShapes(h)...)
	vs = append(vs, checkScans(h)...)
	vs = append(vs, checkPointOps(h)...)
	return vs
}

// checkLookupShapes verifies structural properties of individual results
// that need no interleaving analysis.
func checkLookupShapes(h *History) []Violation {
	var vs []Violation
	for i := range h.Ops {
		op := &h.Ops[i]
		if op.Kind != OpLookup {
			continue
		}
		if !h.NonUnique && len(op.Vals) > 1 {
			vs = append(vs, Violation{Kind: "duplicate-key", Key: op.Key,
				Msg: fmt.Sprintf("unique-mode lookup returned %d values: %v (%v)", len(op.Vals), op.Vals, *op)})
			continue
		}
		if h.NonUnique && hasDupValue(op.Vals) {
			vs = append(vs, Violation{Kind: "duplicate-pair", Key: op.Key,
				Msg: fmt.Sprintf("lookup returned a value twice: %v (%v)", op.Vals, *op)})
		}
	}
	return vs
}

func hasDupValue(vals []uint64) bool {
	for i := 1; i < len(vals); i++ {
		for j := 0; j < i; j++ {
			if vals[i] == vals[j] {
				return true
			}
		}
	}
	return false
}

// checkPointOps groups insert/delete/update/lookup records by key and
// verifies each key's subhistory independently. Linearizability composes
// over independent objects, and each key of a map is one, so per-key
// verification loses nothing for point operations.
func checkPointOps(h *History) []Violation {
	byKey := map[string][]int{}
	for i := range h.Ops {
		if h.Ops[i].Kind == OpScan {
			continue
		}
		byKey[h.Ops[i].Key] = append(byKey[h.Ops[i].Key], i)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var vs []Violation
	for _, k := range keys {
		kc := &keyChecker{h: h, ops: byKey[k], memo: map[string]struct{}{}}
		if v := kc.check(); v != nil {
			vs = append(vs, *v)
		}
	}
	return vs
}

// keyChecker runs the Wing & Gong linearizability search over one key's
// subhistory: depth-first over all orderings consistent with the interval
// precedence order, memoized on (set of linearized ops, model state).
type keyChecker struct {
	h    *History
	ops  []int // indices into h.Ops, Inv-ordered
	memo map[string]struct{}

	// Diagnostics: the deepest prefix the search managed to linearize and
	// the operations blocking it there.
	best          int
	bestFrontier  []int
	limitExceeded bool
}

func (kc *keyChecker) check() *Violation {
	n := len(kc.ops)
	remaining := newBitset(n)
	for i := 0; i < n; i++ {
		remaining.set(i)
	}
	kc.best = -1
	if kc.dfs(remaining, kc.initialState()) {
		return nil
	}
	key := kc.h.Ops[kc.ops[0]].Key
	if kc.limitExceeded {
		return &Violation{Kind: "checker-limit", Key: key,
			Msg: fmt.Sprintf("memo limit exceeded after linearizing %d/%d ops; history too dense to decide", kc.best, n)}
	}
	frontier := ""
	for i, oi := range kc.bestFrontier {
		if i == 6 {
			frontier += " ..."
			break
		}
		frontier += fmt.Sprintf(" {%v}", kc.h.Ops[oi])
	}
	return &Violation{Kind: "non-linearizable", Key: key,
		Msg: fmt.Sprintf("no linearization exists: %d/%d ops ordered, then stuck at%s", kc.best, n, frontier)}
}

// dfs reports whether the remaining operations can be linearized starting
// from state. An operation is a legal next choice iff no other remaining
// operation completed before it was invoked.
func (kc *keyChecker) dfs(remaining bitset, state []byte) bool {
	if remaining.empty() {
		return true
	}
	if len(kc.memo) > memoLimit {
		kc.limitExceeded = true
		return false
	}
	memoKey := string(remaining) + "\x00" + string(state)
	if _, seen := kc.memo[memoKey]; seen {
		return false
	}
	kc.memo[memoKey] = struct{}{}

	// minRet over remaining ops: any op invoked after it is preceded by
	// another remaining op and cannot be linearized first.
	minRet := ^uint64(0)
	for i := range kc.ops {
		if remaining.get(i) && kc.h.Ops[kc.ops[i]].Ret < minRet {
			minRet = kc.h.Ops[kc.ops[i]].Ret
		}
	}

	linearized := len(kc.ops) - remaining.count()
	if linearized > kc.best {
		kc.best = linearized
		kc.bestFrontier = kc.bestFrontier[:0]
		for i := range kc.ops {
			if remaining.get(i) && kc.h.Ops[kc.ops[i]].Inv < minRet {
				kc.bestFrontier = append(kc.bestFrontier, kc.ops[i])
			}
		}
	}

	for i := range kc.ops {
		if !remaining.get(i) {
			continue
		}
		op := &kc.h.Ops[kc.ops[i]]
		if op.Inv >= minRet {
			// ops is Inv-ordered: everything later is ineligible too.
			break
		}
		for _, next := range kc.apply(state, op) {
			rest := remaining.clone()
			rest.clear(i)
			if kc.dfs(rest, next) {
				return true
			}
		}
	}
	return false
}

func (kc *keyChecker) initialState() []byte {
	return nil // absent / empty value set
}

// apply returns every model state reachable by executing op from state
// with op's recorded outcome; an empty slice means the outcome is
// impossible from this state.
//
// Unique-mode state: nil for absent, else the 8-byte value.
// Non-unique-mode state: the sorted set of values, 8 bytes each.
func (kc *keyChecker) apply(state []byte, op *Record) [][]byte {
	if kc.h.NonUnique {
		return applyNonUnique(state, op)
	}
	return applyUnique(state, op)
}

func applyUnique(state []byte, op *Record) [][]byte {
	present := len(state) != 0
	var cur uint64
	if present {
		cur = binary.LittleEndian.Uint64(state)
	}
	same := [][]byte{state}
	switch op.Kind {
	case OpInsert:
		// Succeeds iff absent.
		if op.OK == present {
			return nil
		}
		if op.OK {
			return [][]byte{encodeVal(op.Value)}
		}
		return same
	case OpDelete:
		// Succeeds iff present; unique mode ignores the value argument.
		if op.OK != present {
			return nil
		}
		if op.OK {
			return [][]byte{nil}
		}
		return same
	case OpUpdate:
		// Succeeds iff present, replacing the value.
		if op.OK != present {
			return nil
		}
		if op.OK {
			return [][]byte{encodeVal(op.Value)}
		}
		return same
	case OpLookup:
		switch {
		case !present && len(op.Vals) == 0:
			return same
		case present && len(op.Vals) == 1 && op.Vals[0] == cur:
			return same
		}
		return nil
	}
	return nil
}

func applyNonUnique(state []byte, op *Record) [][]byte {
	set := decodeSet(state)
	same := [][]byte{state}
	has := func(v uint64) bool {
		for _, x := range set {
			if x == v {
				return true
			}
		}
		return false
	}
	switch op.Kind {
	case OpInsert:
		// Succeeds iff the exact pair is absent.
		if op.OK == has(op.Value) {
			return nil
		}
		if op.OK {
			return [][]byte{encodeSet(append(append([]uint64(nil), set...), op.Value))}
		}
		return same
	case OpDelete:
		if op.OK != has(op.Value) {
			return nil
		}
		if !op.OK {
			return same
		}
		return [][]byte{encodeSet(removeVal(set, op.Value))}
	case OpUpdate:
		// Replaces one (unspecified) existing pair; succeeds iff any pair
		// exists. The model branches over which pair was replaced.
		if op.OK != (len(set) > 0) {
			return nil
		}
		if !op.OK {
			return same
		}
		var out [][]byte
		for _, victim := range set {
			ns := removeVal(set, victim)
			dup := false
			for _, x := range ns {
				if x == op.Value {
					dup = true // replacing would duplicate an existing pair
				}
			}
			if !dup {
				out = append(out, encodeSet(append(ns, op.Value)))
			}
		}
		return out
	case OpLookup:
		if len(op.Vals) != len(set) {
			return nil
		}
		got := append([]uint64(nil), op.Vals...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		for i, v := range got {
			if set[i] != v {
				return nil
			}
		}
		return same
	}
	return nil
}

func encodeVal(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func decodeSet(state []byte) []uint64 {
	out := make([]uint64, 0, len(state)/8)
	for i := 0; i+8 <= len(state); i += 8 {
		out = append(out, binary.LittleEndian.Uint64(state[i:]))
	}
	return out
}

// encodeSet canonicalizes a value set (sorted, 8 bytes per value).
func encodeSet(vals []uint64) []byte {
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], v)
	}
	return b
}

func removeVal(set []uint64, v uint64) []uint64 {
	out := make([]uint64, 0, len(set))
	removed := false
	for _, x := range set {
		if !removed && x == v {
			removed = true
			continue
		}
		out = append(out, x)
	}
	return out
}

// bitset is a fixed-width bit vector stored as bytes so it can key a map
// directly.
type bitset []byte

func newBitset(n int) bitset         { return make(bitset, (n+7)/8) }
func (b bitset) set(i int)           { b[i/8] |= 1 << (i % 8) }
func (b bitset) clear(i int)         { b[i/8] &^= 1 << (i % 8) }
func (b bitset) get(i int) bool      { return b[i/8]&(1<<(i%8)) != 0 }
func (b bitset) clone() bitset       { return append(bitset(nil), b...) }
func (b bitset) empty() bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}
func (b bitset) count() int {
	n := 0
	for _, x := range b {
		for ; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}
