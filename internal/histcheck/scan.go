package histcheck

import (
	"fmt"
	"sort"
)

// keyPresence summarizes, per key, the write operations relevant to scan
// checking.
type keyPresence struct {
	// okInsertInv is the earliest invocation of a successful insert;
	// okInsertRet the earliest completion of one. Zero means none.
	okInsertInv uint64
	okInsertRet uint64
	// okDeleteInv is the earliest invocation of a successful delete. Zero
	// means none.
	okDeleteInv uint64
}

// checkScans verifies every scan's result against the point-op history.
// All checks are conservative (sound): each flags only results no
// interleaving of the recorded operations could have produced, so a racy
// but correct index never trips them.
//
//   - scan-order / scan-duplicate: results must come back in ascending key
//     order, strictly ascending under unique semantics, with no repeated
//     (key, value) pair under non-unique semantics.
//   - scan-phantom: a returned key for which the history holds no
//     successful insert invoked before the scan returned.
//   - scan-skip: a key stably present for the scan's whole duration —
//     inserted before the scan was invoked, with no successful delete
//     invoked before the scan returned — that lies inside the range the
//     scan claims to have covered yet is missing from the result.
func checkScans(h *History) []Violation {
	var vs []Violation
	pres := map[string]*keyPresence{}
	for i := range h.Ops {
		op := &h.Ops[i]
		if !op.OK {
			continue
		}
		switch op.Kind {
		case OpInsert:
			p := pres[op.Key]
			if p == nil {
				p = &keyPresence{}
				pres[op.Key] = p
			}
			if p.okInsertInv == 0 || op.Inv < p.okInsertInv {
				p.okInsertInv = op.Inv
			}
			if p.okInsertRet == 0 || op.Ret < p.okInsertRet {
				p.okInsertRet = op.Ret
			}
		case OpDelete:
			p := pres[op.Key]
			if p == nil {
				p = &keyPresence{}
				pres[op.Key] = p
			}
			if p.okDeleteInv == 0 || op.Inv < p.okDeleteInv {
				p.okDeleteInv = op.Inv
			}
		}
	}
	stable := make([]string, 0, len(pres))
	for k, p := range pres {
		if p.okInsertRet != 0 {
			stable = append(stable, k)
		}
	}
	sort.Strings(stable)

	for i := range h.Ops {
		op := &h.Ops[i]
		if op.Kind != OpScan {
			continue
		}
		vs = append(vs, checkOneScan(h, op, pres, stable)...)
	}
	return vs
}

func checkOneScan(h *History, scan *Record, pres map[string]*keyPresence, stable []string) []Violation {
	var vs []Violation

	// Order and duplicates.
	seenPair := map[KV]bool{}
	for i, p := range scan.Pairs {
		if p.Key < scan.Key {
			vs = append(vs, Violation{Kind: "scan-order", Key: scan.Key,
				Msg: fmt.Sprintf("item %d key %x precedes start key (%v)", i, p.Key, *scan)})
		}
		if i > 0 {
			prev := scan.Pairs[i-1]
			if p.Key < prev.Key {
				vs = append(vs, Violation{Kind: "scan-order", Key: scan.Key,
					Msg: fmt.Sprintf("item %d key %x after %x: not ascending (%v)", i, p.Key, prev.Key, *scan)})
			} else if p.Key == prev.Key && !h.NonUnique {
				vs = append(vs, Violation{Kind: "scan-duplicate", Key: scan.Key,
					Msg: fmt.Sprintf("key %x returned twice under unique semantics (%v)", p.Key, *scan)})
			}
		}
		if h.NonUnique {
			if seenPair[p] {
				vs = append(vs, Violation{Kind: "scan-duplicate", Key: scan.Key,
					Msg: fmt.Sprintf("pair (%x,%d) returned twice (%v)", p.Key, p.Value, *scan)})
			}
			seenPair[p] = true
		}

		// Phantom: nothing in the history could have put this key in the
		// index by the time the scan returned.
		kp := pres[p.Key]
		if kp == nil || kp.okInsertInv == 0 || kp.okInsertInv >= scan.Ret {
			vs = append(vs, Violation{Kind: "scan-phantom", Key: scan.Key,
				Msg: fmt.Sprintf("key %x returned but no successful insert was invoked before the scan returned (%v)", p.Key, *scan)})
		}
	}

	// Range the scan claims to have covered: if it filled its limit or the
	// visitor stopped it, coverage ends at the last returned key; otherwise
	// the scan asserts it exhausted the keyspace from start.
	bounded := scan.Stopped || (scan.ScanN > 0 && len(scan.Pairs) == scan.ScanN)
	if bounded && len(scan.Pairs) == 0 {
		return vs // covered an empty range; nothing to miss
	}
	var end string
	if bounded {
		end = scan.Pairs[len(scan.Pairs)-1].Key
	}

	// Skipped keys: stably present, inside the covered range, absent from
	// the result.
	returned := map[string]bool{}
	for _, p := range scan.Pairs {
		returned[p.Key] = true
	}
	lo := sort.SearchStrings(stable, scan.Key)
	for _, k := range stable[lo:] {
		if bounded && k > end {
			break
		}
		if returned[k] {
			continue
		}
		p := pres[k]
		if p.okInsertRet >= scan.Inv {
			continue // not present before the scan began
		}
		if p.okDeleteInv != 0 && p.okDeleteInv < scan.Ret {
			continue // a delete might have removed it before/during the scan
		}
		vs = append(vs, Violation{Kind: "scan-skip", Key: scan.Key,
			Msg: fmt.Sprintf("key %x stably present (inserted before scan, never deleted) but missing from result (%v)", k, *scan)})
	}
	return vs
}
