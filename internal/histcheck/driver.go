package histcheck

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// Mix is a weighted operation mix for checked runs.
type Mix struct {
	Name string
	// Operation weights (relative, need not sum to anything particular).
	Insert, Delete, Update, Lookup, Scan int
}

// Mixes returns the three standard checked-run mixes: balanced churn,
// read-heavy with scans, and write-heavy contention.
func Mixes() []Mix {
	return []Mix{
		{Name: "balanced", Insert: 25, Delete: 20, Update: 20, Lookup: 30, Scan: 5},
		{Name: "read-heavy", Insert: 5, Delete: 5, Update: 10, Lookup: 70, Scan: 10},
		{Name: "write-heavy", Insert: 40, Delete: 30, Update: 20, Lookup: 10, Scan: 0},
	}
}

// RunConfig sizes a checked run. The keyspace is deliberately small so
// operations collide: collisions are where linearizability bugs live, and
// a small per-key history keeps the checker fast.
type RunConfig struct {
	Threads      int
	OpsPerThread int
	// Keys is the keyspace size (keys are the big-endian encodings of
	// 0..Keys-1).
	Keys int
	// Preload keys are inserted through a recording session before the
	// workers start, so scans have stable content to miss.
	Preload int
	// ScanLen is the scan item limit.
	ScanLen int
	// Batch, when above 1, routes inserts and lookups through the
	// recording session's InsertBatch/LookupBatch: each worker accumulates
	// them until the window is full and flushes, so every batch entry
	// point runs under concurrent checking. Deletes, updates, and scans
	// stay single-op, interleaving with in-flight batches.
	Batch int
	Seed  uint64
}

// DefaultRunConfig returns the sizing used by the checked experiment and
// the CI job: small enough to check in well under a second per run, dense
// enough that every op kind races on shared keys.
func DefaultRunConfig(seed uint64) RunConfig {
	return RunConfig{Threads: 4, OpsPerThread: 1500, Keys: 512, Preload: 128, ScanLen: 16, Seed: seed}
}

// RunChecked drives idx with mix under cfg, with the recorder attached,
// and returns the violations found plus the recorded history (for
// diagnostics and op counting). idx is closed by the caller.
func RunChecked(idx index.Index, nonUnique bool, mix Mix, cfg RunConfig) ([]Violation, *History) {
	c := Wrap(idx, nonUnique)

	// Every write gets a globally unique value so the checker can tell
	// writes apart: a stale read is only provable when values differ.
	var valCtr atomic.Uint64

	if cfg.Preload > 0 {
		s := c.NewSession()
		var kb [8]byte
		for i := 0; i < cfg.Preload; i++ {
			k := uint64(i) * uint64(cfg.Keys) / uint64(cfg.Preload)
			binary.BigEndian.PutUint64(kb[:], k)
			s.Insert(kb[:], valCtr.Add(1))
		}
		s.Release()
	}

	total := mix.Insert + mix.Delete + mix.Update + mix.Lookup + mix.Scan
	if total == 0 {
		total = 1
	}
	var wg sync.WaitGroup
	for t := 0; t < cfg.Threads; t++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			s := c.NewSession()
			defer s.Release()
			bs := index.AsBatch(s)
			rng := rngState(splitmix64(cfg.Seed + uint64(worker)*0x9E3779B97F4A7C15))
			// Remember the last value this worker wrote per key so
			// non-unique deletes target pairs that plausibly exist.
			lastVal := map[uint64]uint64{}
			var kb [8]byte
			var out []uint64
			// Batch accumulators (cfg.Batch > 1): pending inserts and
			// lookups, flushed when either window fills or the run ends.
			var ikeys [][]byte
			var ivals []uint64
			var lkeys [][]byte
			var okBuf []bool
			flush := func() {
				if len(ikeys) > 0 {
					okBuf = bs.InsertBatch(ikeys, ivals, okBuf)
					for i, ok := range okBuf[:len(ikeys)] {
						if ok {
							lastVal[binary.BigEndian.Uint64(ikeys[i])] = ivals[i]
						}
					}
					ikeys, ivals = ikeys[:0], ivals[:0]
				}
				if len(lkeys) > 0 {
					bs.LookupBatch(lkeys, func(int, []uint64) {})
					lkeys = lkeys[:0]
				}
			}
			for i := 0; i < cfg.OpsPerThread; i++ {
				k := rng.next() % uint64(cfg.Keys)
				binary.BigEndian.PutUint64(kb[:], k)
				w := int(rng.next() % uint64(total))
				switch {
				case w < mix.Insert:
					v := valCtr.Add(1)
					if cfg.Batch > 1 {
						ikeys = append(ikeys, append([]byte(nil), kb[:]...))
						ivals = append(ivals, v)
					} else if s.Insert(kb[:], v) {
						lastVal[k] = v
					}
				case w < mix.Insert+mix.Delete:
					v := lastVal[k]
					if s.Delete(kb[:], v) {
						delete(lastVal, k)
					}
				case w < mix.Insert+mix.Delete+mix.Update:
					v := valCtr.Add(1)
					if s.Update(kb[:], v) {
						lastVal[k] = v
					}
				case w < mix.Insert+mix.Delete+mix.Update+mix.Lookup:
					if cfg.Batch > 1 {
						lkeys = append(lkeys, append([]byte(nil), kb[:]...))
					} else {
						out = s.Lookup(kb[:], out[:0])
					}
				default:
					s.Scan(kb[:], cfg.ScanLen, func([]byte, uint64) bool { return true })
				}
				if cfg.Batch > 1 && len(ikeys)+len(lkeys) >= cfg.Batch {
					flush()
				}
			}
			flush()
		}(t)
	}
	wg.Wait()
	h := c.History()
	return Check(h), h
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche over
// uint64, used to decorrelate seeds and as the rng step.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

type rngState uint64

func (r *rngState) next() uint64 {
	*r = rngState(uint64(*r) + 0x9E3779B97F4A7C15)
	x := uint64(*r)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
