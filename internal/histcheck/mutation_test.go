//go:build smobug

// Mutation self-test: built only with -tags smobug, which swaps the
// consolidation hook in internal/core for a seeded bug that drops leaf
// insert records (see core/smobug_on.go). If the checker is worth
// anything it must catch the resulting lost updates; a clean verdict here
// fails the build's credibility, so it fails this test. The normal build
// proves the complement: TestRunCheckedClean requires zero violations with
// the bug compiled out.
//
// Run with: go test -tags smobug -run TestMutation ./internal/histcheck/
package histcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/index"
)

func TestMutationSmobugDetected(t *testing.T) {
	// Small nodes and short chains force frequent consolidation, the
	// operation the seeded bug corrupts.
	opts := core.DefaultOptions()
	opts.LeafNodeSize = 16
	opts.InnerNodeSize = 8
	opts.LeafChainLength = 4
	idx := index.NewBwTreeWith("OpenBwTree-smobug", opts)
	defer idx.Close()

	mix := Mix{Name: "churn", Insert: 40, Delete: 10, Update: 10, Lookup: 35, Scan: 5}
	cfg := DefaultRunConfig(42)
	vs, h := RunChecked(idx, false, mix, cfg)
	if len(vs) == 0 {
		t.Fatalf("seeded consolidation bug went undetected over %d ops", len(h.Ops))
	}
	t.Logf("checker caught the seeded bug: %d violations over %d ops; first: %v",
		len(vs), len(h.Ops), vs[0])
}
