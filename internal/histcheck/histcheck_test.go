package histcheck

import (
	"testing"

	"repro/internal/core"
	"repro/internal/index"
)

// sliceBwTree is the OpenBw-Tree with the slice base-node layout, so the
// checked runs cover FlatBaseNodes both ways (DefaultOptions is flat).
func sliceBwTree() index.Index {
	opts := core.DefaultOptions()
	opts.FlatBaseNodes = false
	return index.NewBwTreeWith("OpenBwTree-slice", opts)
}

// seq builds sequential (non-overlapping) interval stamps: op i occupies
// [2i+1, 2i+2].
func seq(ops []Record) *History {
	for i := range ops {
		ops[i].Inv = uint64(2*i + 1)
		ops[i].Ret = uint64(2*i + 2)
	}
	return &History{Ops: ops}
}

func wantClean(t *testing.T, h *History) {
	t.Helper()
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("expected clean history, got violations: %v", vs)
	}
}

func wantViolation(t *testing.T, h *History, kind string) {
	t.Helper()
	vs := Check(h)
	for _, v := range vs {
		if v.Kind == kind {
			return
		}
	}
	t.Fatalf("expected a %q violation, got: %v", kind, vs)
}

func TestSequentialUniqueAccepted(t *testing.T) {
	wantClean(t, seq([]Record{
		{Kind: OpLookup, Key: "a"},
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "a", Value: 2, OK: false},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1}},
		{Kind: OpUpdate, Key: "a", Value: 3, OK: true},
		{Kind: OpLookup, Key: "a", Vals: []uint64{3}},
		{Kind: OpDelete, Key: "a", OK: true},
		{Kind: OpDelete, Key: "a", OK: false},
		{Kind: OpUpdate, Key: "a", Value: 4, OK: false},
		{Kind: OpLookup, Key: "a"},
		{Kind: OpInsert, Key: "a", Value: 5, OK: true},
	}))
}

func TestConcurrentOverlapAccepted(t *testing.T) {
	// Two racing inserts; the one that reported failure overlaps the one
	// that succeeded, and a concurrent lookup may see either state.
	wantClean(t, &History{Ops: []Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true, Inv: 1, Ret: 6},
		{Kind: OpInsert, Key: "a", Value: 2, OK: false, Inv: 2, Ret: 5},
		{Kind: OpLookup, Key: "a", Vals: nil, Inv: 3, Ret: 4},
	}})
	wantClean(t, &History{Ops: []Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true, Inv: 1, Ret: 6},
		{Kind: OpInsert, Key: "a", Value: 2, OK: false, Inv: 2, Ret: 5},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1}, Inv: 3, Ret: 4},
	}})
}

func TestUniquenessViolationDetected(t *testing.T) {
	// Both inserts succeed with no intervening delete: impossible under
	// unique semantics.
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "a", Value: 2, OK: true},
	}), "non-linearizable")
}

func TestLostUpdateDetected(t *testing.T) {
	// The insert completed before the lookup began, yet the lookup saw
	// nothing.
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpLookup, Key: "a", Vals: nil},
	}), "non-linearizable")
}

func TestStaleReadDetected(t *testing.T) {
	// The update completed before the lookup began, yet the lookup
	// returned the overwritten value.
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpUpdate, Key: "a", Value: 2, OK: true},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1}},
	}), "non-linearizable")
}

func TestConcurrentReadMaySeeOldValue(t *testing.T) {
	// Same as above but the lookup overlaps the update: legal.
	wantClean(t, &History{Ops: []Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true, Inv: 1, Ret: 2},
		{Kind: OpUpdate, Key: "a", Value: 2, OK: true, Inv: 3, Ret: 6},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1}, Inv: 4, Ret: 5},
	}})
}

func TestUniqueLookupTwoValues(t *testing.T) {
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1, 2}},
	}), "duplicate-key")
}

func TestNonUniqueAccepted(t *testing.T) {
	h := seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "a", Value: 2, OK: true},
		{Kind: OpInsert, Key: "a", Value: 1, OK: false},
		{Kind: OpLookup, Key: "a", Vals: []uint64{2, 1}},
		{Kind: OpDelete, Key: "a", Value: 1, OK: true},
		{Kind: OpLookup, Key: "a", Vals: []uint64{2}},
		{Kind: OpUpdate, Key: "a", Value: 7, OK: true},
		{Kind: OpLookup, Key: "a", Vals: []uint64{7}},
	})
	h.NonUnique = true
	wantClean(t, h)
}

func TestNonUniqueDuplicatePair(t *testing.T) {
	h := seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1, 1}},
	})
	h.NonUnique = true
	wantViolation(t, h, "duplicate-pair")
}

func TestScanOrderViolation(t *testing.T) {
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "b", Value: 2, OK: true},
		{Kind: OpScan, Key: "a", ScanN: 10, Pairs: []KV{{"b", 2}, {"a", 1}}},
	}), "scan-order")
}

func TestScanDuplicateKey(t *testing.T) {
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpScan, Key: "a", ScanN: 10, Pairs: []KV{{"a", 1}, {"a", 1}}},
	}), "scan-duplicate")
}

func TestScanPhantom(t *testing.T) {
	// "b" was never inserted, yet the scan returned it.
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpScan, Key: "a", ScanN: 10, Pairs: []KV{{"a", 1}, {"b", 2}}},
	}), "scan-phantom")
}

func TestScanSkip(t *testing.T) {
	// "b" was stably present and inside the scanned range, yet missing.
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "b", Value: 2, OK: true},
		{Kind: OpInsert, Key: "c", Value: 3, OK: true},
		{Kind: OpScan, Key: "a", ScanN: 2, Pairs: []KV{{"a", 1}, {"c", 3}}},
	}), "scan-skip")
}

func TestScanSkipNotFlaggedWhenDeleteRaces(t *testing.T) {
	// The delete overlaps the scan, so "b" missing is legal.
	wantClean(t, &History{Ops: []Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true, Inv: 1, Ret: 2},
		{Kind: OpInsert, Key: "b", Value: 2, OK: true, Inv: 3, Ret: 4},
		{Kind: OpInsert, Key: "c", Value: 3, OK: true, Inv: 5, Ret: 6},
		{Kind: OpDelete, Key: "b", Value: 2, OK: true, Inv: 7, Ret: 10},
		{Kind: OpScan, Key: "a", ScanN: 2, Pairs: []KV{{"a", 1}, {"c", 3}}, Inv: 8, Ret: 9},
	}})
}

func TestScanShortResultClaimsExhaustion(t *testing.T) {
	// The scan returned fewer than n items without being stopped, so it
	// claims it reached the end of the keyspace — "c" must not be missing.
	wantViolation(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "c", Value: 3, OK: true},
		{Kind: OpScan, Key: "a", ScanN: 10, Pairs: []KV{{"a", 1}}},
	}), "scan-skip")
}

func TestScanStoppedIsOnlyAPrefix(t *testing.T) {
	// Same shape, but the visitor stopped the scan: nothing past "a" was
	// claimed, so nothing is skipped.
	wantClean(t, seq([]Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true},
		{Kind: OpInsert, Key: "c", Value: 3, OK: true},
		{Kind: OpScan, Key: "a", ScanN: 10, Pairs: []KV{{"a", 1}}, Stopped: true},
	}))
}

// TestBatchSharedIntervalAccepted pins the soundness argument for batch
// recording: all records of one batch share the whole-batch interval, so
// same-key entries are mutually concurrent and any per-key order must be
// admitted.
func TestBatchSharedIntervalAccepted(t *testing.T) {
	// One InsertBatch containing a duplicate key: exactly one wins, and
	// both records carry the same [1, 2] interval.
	wantClean(t, &History{Ops: []Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true, Inv: 1, Ret: 2},
		{Kind: OpInsert, Key: "a", Value: 2, OK: false, Inv: 1, Ret: 2},
		{Kind: OpLookup, Key: "a", Vals: []uint64{1}, Inv: 3, Ret: 4},
	}})
	// A batch lookup racing the batch insert may see either state.
	wantClean(t, &History{Ops: []Record{
		{Kind: OpInsert, Key: "a", Value: 1, OK: true, Inv: 1, Ret: 4},
		{Kind: OpLookup, Key: "a", Vals: nil, Inv: 2, Ret: 3},
		{Kind: OpLookup, Key: "b", Vals: nil, Inv: 2, Ret: 3},
	}})
}

// TestRunCheckedBatchedClean is TestRunCheckedClean with inserts and
// lookups routed through the batch entry points (window 16). The Bw-Tree
// runs its native amortized-epoch batch path; the other indexes cover the
// loop adapter.
func TestRunCheckedBatchedClean(t *testing.T) {
	type entry struct {
		name string
		mk   func() index.Index
	}
	entries := []entry{
		{"OpenBwTree", index.NewOpenBwTree},
		{"OpenBwTree-slice", sliceBwTree},
		{"BwTree", index.NewBaselineBwTree},
	}
	if !testing.Short() {
		entries = append(entries, entry{"SkipList", index.NewSkipList})
	}
	for _, e := range entries {
		for _, mix := range Mixes() {
			t.Run(e.name+"/"+mix.Name, func(t *testing.T) {
				idx := e.mk()
				defer idx.Close()
				cfg := DefaultRunConfig(0xBA7C4)
				cfg.Batch = 16
				if testing.Short() {
					cfg.OpsPerThread = 800
				}
				vs, h := RunChecked(idx, false, mix, cfg)
				for _, v := range vs {
					t.Errorf("violation: %v", v)
				}
				if len(h.Ops) < cfg.Threads*cfg.OpsPerThread {
					t.Fatalf("history too small: %d ops", len(h.Ops))
				}
			})
		}
	}
}

// TestRunCheckedClean runs every index through every mix with the
// recorder attached and requires a spotless verdict. In short mode only
// the two Bw-Tree configurations run (the CI race job's target); the full
// matrix covers all six indexes.
func TestRunCheckedClean(t *testing.T) {
	type entry struct {
		name string
		mk   func() index.Index
	}
	entries := []entry{
		{"OpenBwTree", index.NewOpenBwTree},
		{"OpenBwTree-slice", sliceBwTree},
		{"BwTree", index.NewBaselineBwTree},
	}
	if !testing.Short() {
		entries = append(entries,
			entry{"SkipList", index.NewSkipList},
			entry{"Masstree", index.NewMasstree},
			entry{"B+Tree", index.NewBTree},
			entry{"ART", index.NewART},
		)
	}
	for _, e := range entries {
		for _, mix := range Mixes() {
			t.Run(e.name+"/"+mix.Name, func(t *testing.T) {
				idx := e.mk()
				defer idx.Close()
				cfg := DefaultRunConfig(0xC0FFEE)
				if testing.Short() {
					cfg.OpsPerThread = 800
				}
				vs, h := RunChecked(idx, false, mix, cfg)
				for _, v := range vs {
					t.Errorf("violation: %v", v)
				}
				if len(h.Ops) < cfg.Threads*cfg.OpsPerThread {
					t.Fatalf("history too small: %d ops", len(h.Ops))
				}
			})
		}
	}
}
