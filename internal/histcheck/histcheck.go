// Package histcheck is a concurrent-history recorder and checker for the
// indexes in this repository. It wraps any index.Index, stamps every
// operation with an invocation/response interval drawn from one global
// atomic counter, and verifies the merged history against sequential
// Bw-Tree semantics: a linearizability check per key for point operations
// (catching uniqueness violations, lost updates, and stale reads) plus
// sound completeness checks for range scans (catching phantom, duplicated,
// and skipped keys).
//
// The paper's central claim is that *correctness* is the hard part of a
// lock-free Bw-Tree; its only concurrent oracles, however, are quiescent
// structural validation and coarse count checks. This package closes that
// gap: any workload — benchmark, stress run, or fault-injection schedule —
// can run with the recorder attached and get a client-visible correctness
// verdict, not just a structurally-valid tree.
//
// Usage:
//
//	c := histcheck.Wrap(index.NewOpenBwTree(), false)
//	defer c.Close()
//	// ... drive workers through c.NewSession() ...
//	for _, v := range c.Check() {
//		log.Printf("violation: %v", v)
//	}
//
// The recorder costs two atomic adds and one (amortized) slice append per
// operation, so checked runs are slower than bare runs but preserve enough
// concurrency to exercise the interleavings that matter. History() and
// Check() must only be called once all sessions are quiescent.
package histcheck

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/index"
)

// OpKind identifies a recorded operation.
type OpKind uint8

// Recorded operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpUpdate
	OpLookup
	OpScan
)

var opKindNames = [...]string{"Insert", "Delete", "Update", "Lookup", "Scan"}

func (k OpKind) String() string { return opKindNames[k] }

// KV is one (key, value) pair visited by a scan.
type KV struct {
	Key   string
	Value uint64
}

// Record is one completed operation with its invocation/response interval.
// Inv and Ret are drawn from a single atomic counter, so for any two
// records a.Ret < b.Inv proves a completed before b was invoked; such
// precedence must be respected by every linearization the checker
// considers.
type Record struct {
	// Thread is the recording session's ID.
	Thread int
	Kind   OpKind
	// Key is the operation's key (the start key for scans).
	Key string
	// Value is the written value (insert/update) or the delete argument.
	Value uint64
	// OK is the reported outcome of a write operation.
	OK bool
	// Vals holds a lookup's returned values.
	Vals []uint64
	// ScanN is a scan's item limit; Pairs the visited items in visit
	// order; Stopped reports that the caller's visit function aborted the
	// scan early (the result is then only a prefix).
	ScanN   int
	Pairs   []KV
	Stopped bool
	// Inv and Ret are the interval stamps.
	Inv, Ret uint64
}

func (r Record) String() string {
	switch r.Kind {
	case OpLookup:
		return fmt.Sprintf("T%d %s(%x)=%v @[%d,%d]", r.Thread, r.Kind, r.Key, r.Vals, r.Inv, r.Ret)
	case OpScan:
		return fmt.Sprintf("T%d %s(%x,n=%d)->%d items @[%d,%d]", r.Thread, r.Kind, r.Key, r.ScanN, len(r.Pairs), r.Inv, r.Ret)
	}
	return fmt.Sprintf("T%d %s(%x,%d)=%v @[%d,%d]", r.Thread, r.Kind, r.Key, r.Value, r.OK, r.Inv, r.Ret)
}

// History is a merged, Inv-ordered operation history.
type History struct {
	// NonUnique selects the non-unique (multi-value) sequential model.
	NonUnique bool
	Ops       []Record
}

// Checked wraps an index.Index so every session records its operations.
type Checked struct {
	inner     index.Index
	nonUnique bool
	clock     atomic.Uint64

	mu   sync.Mutex
	logs []*sessionLog
}

type sessionLog struct {
	thread int
	ops    []Record
}

// Wrap attaches a history recorder to idx. nonUnique must match the
// index's key semantics (index.Index adapters are unique-key; pass true
// only when wrapping a non-unique Bw-Tree).
func Wrap(idx index.Index, nonUnique bool) *Checked {
	return &Checked{inner: idx, nonUnique: nonUnique}
}

// Name returns the wrapped index's name.
func (c *Checked) Name() string { return c.inner.Name() }

// Close closes the wrapped index.
func (c *Checked) Close() { c.inner.Close() }

// NewSession returns a recording session backed by a fresh inner session.
func (c *Checked) NewSession() index.Session {
	c.mu.Lock()
	l := &sessionLog{thread: len(c.logs)}
	c.logs = append(c.logs, l)
	c.mu.Unlock()
	inner := c.inner.NewSession()
	return &session{c: c, inner: inner, batch: index.AsBatch(inner), log: l}
}

// Ops reports how many operations have been recorded so far. Only exact
// once all sessions are quiescent.
func (c *Checked) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, l := range c.logs {
		n += len(l.ops)
	}
	return n
}

// History merges every session's log into one Inv-ordered history. All
// sessions must be quiescent (no operation in flight).
func (c *Checked) History() *History {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := &History{NonUnique: c.nonUnique}
	for _, l := range c.logs {
		h.Ops = append(h.Ops, l.ops...)
	}
	sort.Slice(h.Ops, func(a, b int) bool { return h.Ops[a].Inv < h.Ops[b].Inv })
	return h
}

// Check merges the history and verifies it. All sessions must be
// quiescent. It returns every violation found (nil for a clean history).
func (c *Checked) Check() []Violation {
	return Check(c.History())
}

// session is one worker's recording view. Like every index.Session it must
// be used by at most one goroutine. It natively implements
// index.BatchSession: batched calls are forwarded to the inner session's
// batch path and recorded as one Record per constituent operation, all
// sharing the whole-batch invocation/response interval. The shared
// interval is sound — it is wider than each op's true interval, and wider
// intervals only relax the precedence constraints the checker enforces,
// so a history that fails with them contains a real violation.
type session struct {
	c     *Checked
	inner index.Session
	batch index.BatchSession
	log   *sessionLog
}

// record appends a completed operation to the session's private log.
func (s *session) record(r Record) {
	r.Thread = s.log.thread
	s.log.ops = append(s.log.ops, r)
}

func (s *session) Insert(key []byte, value uint64) bool {
	inv := s.c.clock.Add(1)
	ok := s.inner.Insert(key, value)
	ret := s.c.clock.Add(1)
	s.record(Record{Kind: OpInsert, Key: string(key), Value: value, OK: ok, Inv: inv, Ret: ret})
	return ok
}

func (s *session) Delete(key []byte, value uint64) bool {
	inv := s.c.clock.Add(1)
	ok := s.inner.Delete(key, value)
	ret := s.c.clock.Add(1)
	s.record(Record{Kind: OpDelete, Key: string(key), Value: value, OK: ok, Inv: inv, Ret: ret})
	return ok
}

func (s *session) Update(key []byte, value uint64) bool {
	inv := s.c.clock.Add(1)
	ok := s.inner.Update(key, value)
	ret := s.c.clock.Add(1)
	s.record(Record{Kind: OpUpdate, Key: string(key), Value: value, OK: ok, Inv: inv, Ret: ret})
	return ok
}

func (s *session) Lookup(key []byte, out []uint64) []uint64 {
	base := len(out)
	inv := s.c.clock.Add(1)
	out = s.inner.Lookup(key, out)
	ret := s.c.clock.Add(1)
	s.record(Record{Kind: OpLookup, Key: string(key),
		Vals: append([]uint64(nil), out[base:]...), Inv: inv, Ret: ret})
	return out
}

func (s *session) Scan(start []byte, n int, visit func(key []byte, value uint64) bool) int {
	var pairs []KV
	stopped := false
	inv := s.c.clock.Add(1)
	count := s.inner.Scan(start, n, func(k []byte, v uint64) bool {
		pairs = append(pairs, KV{Key: string(k), Value: v})
		if !visit(k, v) {
			stopped = true
			return false
		}
		return true
	})
	ret := s.c.clock.Add(1)
	s.record(Record{Kind: OpScan, Key: string(start), ScanN: n, Pairs: pairs, Stopped: stopped, Inv: inv, Ret: ret})
	return count
}

func (s *session) InsertBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	inv := s.c.clock.Add(1)
	ok = s.batch.InsertBatch(keys, vals, ok)
	ret := s.c.clock.Add(1)
	for i := range keys {
		s.record(Record{Kind: OpInsert, Key: string(keys[i]), Value: vals[i], OK: ok[i], Inv: inv, Ret: ret})
	}
	return ok
}

func (s *session) DeleteBatch(keys [][]byte, vals []uint64, ok []bool) []bool {
	inv := s.c.clock.Add(1)
	ok = s.batch.DeleteBatch(keys, vals, ok)
	ret := s.c.clock.Add(1)
	for i := range keys {
		s.record(Record{Kind: OpDelete, Key: string(keys[i]), Value: vals[i], OK: ok[i], Inv: inv, Ret: ret})
	}
	return ok
}

// LookupBatch defers the caller's visits until the inner batch call has
// returned, so each recorded lookup carries the full batch interval.
func (s *session) LookupBatch(keys [][]byte, visit func(i int, vals []uint64)) {
	inv := s.c.clock.Add(1)
	type res struct {
		i    int
		vals []uint64
	}
	results := make([]res, 0, len(keys))
	s.batch.LookupBatch(keys, func(i int, vals []uint64) {
		// vals may alias the inner session's scratch buffer; copy before
		// the next visit overwrites it.
		results = append(results, res{i: i, vals: append([]uint64(nil), vals...)})
	})
	ret := s.c.clock.Add(1)
	for _, r := range results {
		s.record(Record{Kind: OpLookup, Key: string(keys[r.i]), Vals: r.vals, Inv: inv, Ret: ret})
		visit(r.i, r.vals)
	}
}

func (s *session) Release() { s.inner.Release() }
