package ycsb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, 7)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Zipfian(0.99): rank 0 should dominate; the top 10 ranks together
	// should hold a large share.
	if counts[0] < counts[1] {
		t.Fatalf("rank 0 (%d) below rank 1 (%d)", counts[0], counts[1])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if share := float64(top10) / draws; share < 0.3 {
		t.Fatalf("top-10 share %.3f, expected heavy skew", share)
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	const n = 1000
	s := NewScrambledZipfian(n, 7)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next()
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// The two hottest keys must not be adjacent (scrambling property).
	var hot1, hot2 uint64
	for k, c := range counts {
		if c > counts[hot1] {
			hot1, hot2 = k, hot1
		} else if c > counts[hot2] {
			hot2 = k
		}
	}
	if d := int64(hot1) - int64(hot2); d == 1 || d == -1 {
		t.Fatalf("hottest keys adjacent: %d, %d", hot1, hot2)
	}
}

func TestKeySetsDistinctAndSized(t *testing.T) {
	for _, kt := range []KeyType{MonoInt, RandInt, Email} {
		t.Run(kt.String(), func(t *testing.T) {
			const n = 20000
			ks := NewKeySet(kt, n)
			if len(ks.Keys) != n {
				t.Fatalf("%d keys", len(ks.Keys))
			}
			seen := make(map[string]bool, n)
			for _, k := range ks.Keys {
				if seen[string(k)] {
					t.Fatalf("duplicate key %q", k)
				}
				seen[string(k)] = true
				if kt == Email && len(k) != 32 {
					t.Fatalf("email key length %d", len(k))
				}
				if kt != Email && len(k) != 8 {
					t.Fatalf("int key length %d", len(k))
				}
			}
		})
	}
}

func TestMonoIntKeysSorted(t *testing.T) {
	ks := NewKeySet(MonoInt, 1000)
	for i := 1; i < len(ks.Keys); i++ {
		if bytes.Compare(ks.Keys[i-1], ks.Keys[i]) >= 0 {
			t.Fatalf("mono keys not increasing at %d", i)
		}
	}
}

func TestExtraKeysDoNotCollide(t *testing.T) {
	for _, kt := range []KeyType{MonoInt, RandInt} {
		ks := NewKeySet(kt, 5000)
		seen := make(map[string]bool)
		for _, k := range ks.Keys {
			seen[string(k)] = true
		}
		for i := 0; i < 5000; i++ {
			k := ks.ExtraKey()
			if seen[string(k)] {
				t.Fatalf("%v extra key %q collides", kt, k)
			}
			seen[string(k)] = true
		}
	}
}

func TestHCKeysMonotonePerWorkerAndDistinct(t *testing.T) {
	ks := NewKeySet(MonoHC, 0)
	seen := make(map[string]bool)
	var prev []byte
	for i := 0; i < 10000; i++ {
		k := ks.HCKey(i % 8)
		if seen[string(k)] {
			t.Fatalf("duplicate HC key at %d", i)
		}
		seen[string(k)] = true
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("HC keys not globally increasing at %d", i)
		}
		prev = k
	}
}

func TestLoadStreamDealsEveryKeyOnce(t *testing.T) {
	const n = 10000
	ks := NewKeySet(RandInt, n)
	streams := []*Stream{
		NewStream(InsertOnly, ks, 0, 1),
		NewStream(InsertOnly, ks, 1, 2),
	}
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		op := streams[i%2].Next()
		if op.Kind != OpInsert {
			t.Fatalf("load op kind %v", op.Kind)
		}
		if seen[string(op.Key)] {
			t.Fatalf("key dealt twice")
		}
		seen[string(op.Key)] = true
	}
	for _, k := range ks.Keys {
		if !seen[string(k)] {
			t.Fatalf("population key %q never dealt", k)
		}
	}
}

func TestWorkloadMixes(t *testing.T) {
	const n = 200000
	ks := NewKeySet(RandInt, 10000)
	type mix struct{ read, update, insert, scan float64 }
	cases := map[Workload]mix{
		ReadOnly:   {read: 1},
		ReadUpdate: {read: 0.5, update: 0.5},
		ScanInsert: {scan: 0.95, insert: 0.05},
		ReadMostly: {read: 0.95, update: 0.05},
	}
	for w, want := range cases {
		s := NewStream(w, ks, 0, 99)
		var got mix
		scanLenSum := 0
		for i := 0; i < n; i++ {
			op := s.Next()
			switch op.Kind {
			case OpRead:
				got.read++
			case OpUpdate:
				got.update++
			case OpInsert:
				got.insert++
			case OpScan:
				got.scan++
				scanLenSum += op.ScanLen
				if op.ScanLen < 1 || op.ScanLen > maxScanLen {
					t.Fatalf("scan length %d", op.ScanLen)
				}
			}
		}
		check := func(name string, got, want float64) {
			if math.Abs(got/n-want) > 0.01 {
				t.Fatalf("%v: %s fraction %.3f want %.2f", w, name, got/n, want)
			}
		}
		check("read", got.read, want.read)
		check("update", got.update, want.update)
		check("insert", got.insert, want.insert)
		check("scan", got.scan, want.scan)
		if w == ScanInsert {
			avg := float64(scanLenSum) / got.scan
			if avg < 40 || avg < 0 || avg > 56 {
				t.Fatalf("average scan length %.1f, paper reports ~48", avg)
			}
		}
	}
}

func TestParseHelpers(t *testing.T) {
	for _, s := range []string{"mono", "rand", "email", "hc"} {
		if _, err := ParseKeyType(s); err != nil {
			t.Fatalf("ParseKeyType(%q): %v", s, err)
		}
	}
	if _, err := ParseKeyType("bogus"); err == nil {
		t.Fatal("ParseKeyType accepted bogus")
	}
	for _, s := range []string{"insert", "a", "b", "c", "e"} {
		if _, err := ParseWorkload(s); err != nil {
			t.Fatalf("ParseWorkload(%q): %v", s, err)
		}
	}
	if _, err := ParseWorkload("bogus"); err == nil {
		t.Fatal("ParseWorkload accepted bogus")
	}
}

func TestRandDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRand(seed), NewRand(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFnv64Injective(t *testing.T) {
	// Spot-check the scrambler has no collisions over a dense range.
	seen := make(map[uint64]uint64, 1<<16)
	for v := uint64(0); v < 1<<16; v++ {
		h := fnv64(v)
		if prev, dup := seen[h]; dup {
			t.Fatalf("fnv64 collision: %d and %d", prev, v)
		}
		seen[h] = v
	}
}
