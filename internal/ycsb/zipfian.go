// Package ycsb generates the workloads of the paper's evaluation (§5.1):
// YCSB core workloads A (read/update 50/50), C (read-only), and E
// (scan/insert 95/5) with Zipfian-distributed skewed access, plus the
// Insert-only load phase, over three key types (Mono-Int, Rand-Int,
// Email) and the high-contention Mono-HC generator of §6.2.
package ycsb

import "math"

// ZipfianTheta is YCSB's default skew constant.
const ZipfianTheta = 0.99

// Zipfian draws integers in [0, n) with a Zipfian distribution, exactly
// following the YCSB ZipfianGenerator (Gray et al.'s algorithm). It is
// NOT safe for concurrent use; give each worker its own instance.
type Zipfian struct {
	n            uint64
	theta        float64
	alpha        float64
	zetan        float64
	eta          float64
	zeta2theta   float64
	countForZeta uint64
	rng          *Rand
}

// NewZipfian returns a Zipfian generator over [0, n) seeded with seed.
func NewZipfian(n uint64, seed uint64) *Zipfian {
	z := &Zipfian{n: n, theta: ZipfianTheta, rng: NewRand(seed)}
	z.zeta2theta = zetaStatic(2, z.theta)
	z.alpha = 1 / (1 - z.theta)
	z.zetan = zetaStatic(n, z.theta)
	z.countForZeta = n
	z.eta = (1 - math.Pow(2/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next Zipfian-distributed value in [0, n).
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// ScrambledZipfian spreads Zipfian popularity across the key space by
// hashing, as YCSB does, so hot keys are not clustered at one end.
type ScrambledZipfian struct {
	z *Zipfian
	n uint64
}

// NewScrambledZipfian returns a scrambled generator over [0, n).
func NewScrambledZipfian(n uint64, seed uint64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(n, seed), n: n}
}

// Next draws the next scrambled value in [0, n).
func (s *ScrambledZipfian) Next() uint64 {
	return fnv64(s.z.Next()) % s.n
}

// fnv64 is the FNV-1a step YCSB uses for scrambling.
func fnv64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}

// Rand is a splitmix64-based PRNG: tiny, fast, and good enough for
// workload generation. Not safe for concurrent use.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed + 0x9E3779B97F4A7C15} }

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}
