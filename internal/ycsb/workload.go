package ycsb

import "fmt"

// Workload identifies one of the paper's four workload mixes (§5.1).
type Workload int

const (
	// InsertOnly is the measured load phase.
	InsertOnly Workload = iota
	// ReadOnly is YCSB-C.
	ReadOnly
	// ReadUpdate is YCSB-A (50% read, 50% update).
	ReadUpdate
	// ScanInsert is YCSB-E (95% scan, 5% insert).
	ScanInsert
	// ReadMostly is YCSB-B (95% read, 5% update) — the read-mostly mix
	// the flatnode experiment measures. Not part of the paper's four-mix
	// grid (AllWorkloads), so the Fig. 8-18 tables are unchanged.
	ReadMostly
)

var workloadNames = map[Workload]string{
	InsertOnly: "Insert-only", ReadOnly: "Read-only",
	ReadUpdate: "Read/Update", ScanInsert: "Scan/Insert",
	ReadMostly: "Read-mostly",
}

func (w Workload) String() string { return workloadNames[w] }

// ParseWorkload converts a name like "a", "c", "e", or "insert".
func ParseWorkload(s string) (Workload, error) {
	switch s {
	case "insert", "load", "Insert-only":
		return InsertOnly, nil
	case "c", "read", "Read-only":
		return ReadOnly, nil
	case "a", "update", "Read/Update":
		return ReadUpdate, nil
	case "e", "scan", "Scan/Insert":
		return ScanInsert, nil
	case "b", "read-mostly", "Read-mostly":
		return ReadMostly, nil
	}
	return 0, fmt.Errorf("ycsb: unknown workload %q", s)
}

// AllWorkloads lists the four mixes in the paper's presentation order.
func AllWorkloads() []Workload {
	return []Workload{InsertOnly, ReadOnly, ReadUpdate, ScanInsert}
}

// RequestDist selects how a Stream draws request keys from the loaded
// population (YCSB's requestdistribution knob). The paper's mixes use
// Zipfian skew; uniform keeps the probe stream cold across the whole
// tree, which is the regime memory-layout experiments need (under skew
// most requests hit a handful of cache-resident nodes).
type RequestDist int

const (
	// DistZipfian is YCSB's scrambled-Zipfian default (theta 0.99).
	DistZipfian RequestDist = iota
	// DistUniform draws request keys uniformly from the population.
	DistUniform
)

var distNames = map[RequestDist]string{DistZipfian: "zipfian", DistUniform: "uniform"}

func (d RequestDist) String() string { return distNames[d] }

// ParseDist converts a name like "zipfian" or "uniform".
func ParseDist(s string) (RequestDist, error) {
	switch s {
	case "zipfian", "zipf", "":
		return DistZipfian, nil
	case "uniform":
		return DistUniform, nil
	}
	return 0, fmt.Errorf("ycsb: unknown request distribution %q (zipfian, uniform)", s)
}

// OpKind is a single generated operation's type.
type OpKind uint8

// Operation kinds produced by Stream.Next.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
)

// maxScanLen bounds YCSB-E scan lengths: uniform in [1, 96] gives the
// mean (~48) and standard deviation (~28) the paper reports for its
// scans (avg 48, σ 30.13).
const maxScanLen = 96

// Op is one generated operation.
type Op struct {
	Kind OpKind
	// Key is the target key (read/update/insert) or scan start key.
	Key []byte
	// Value accompanies updates and inserts.
	Value uint64
	// ScanLen is the number of items a scan should visit.
	ScanLen int
}

// Stream generates the operation sequence for one worker. Each worker
// owns a private Stream (generators are not concurrency-safe; the shared
// KeySet counter is).
type Stream struct {
	w      Workload
	ks     *KeySet
	worker int
	dist   RequestDist
	zipf   *ScrambledZipfian
	rng    *Rand
	seq    uint64
}

// NewStream returns worker's operation stream for workload w over the
// population ks, with the default Zipfian request distribution.
func NewStream(w Workload, ks *KeySet, worker int, seed uint64) *Stream {
	return NewStreamDist(w, ks, worker, seed, DistZipfian)
}

// NewStreamDist is NewStream with an explicit request distribution.
func NewStreamDist(w Workload, ks *KeySet, worker int, seed uint64, dist RequestDist) *Stream {
	return &Stream{
		w:      w,
		ks:     ks,
		worker: worker,
		dist:   dist,
		zipf:   NewScrambledZipfian(uint64(len(ks.Keys)), seed),
		rng:    NewRand(seed ^ 0xABCDEF),
	}
}

// pick draws one request key index from the population under the
// stream's distribution.
func (s *Stream) pick() uint64 {
	if s.dist == DistUniform {
		return uint64(s.rng.Intn(len(s.ks.Keys)))
	}
	return s.zipf.Next()
}

// Next produces the next operation.
func (s *Stream) Next() Op {
	switch s.w {
	case InsertOnly:
		if s.ks.Type == MonoHC {
			k := s.ks.HCKey(s.worker)
			return Op{Kind: OpInsert, Key: k, Value: s.seqVal()}
		}
		if k := s.ks.NextLoadKey(); k != nil {
			return Op{Kind: OpInsert, Key: k, Value: s.seqVal()}
		}
		return Op{Kind: OpInsert, Key: s.ks.ExtraKey(), Value: s.seqVal()}
	case ReadOnly:
		return Op{Kind: OpRead, Key: s.ks.Keys[s.pick()]}
	case ReadUpdate:
		if s.rng.Uint64()&1 == 0 {
			return Op{Kind: OpRead, Key: s.ks.Keys[s.pick()]}
		}
		return Op{Kind: OpUpdate, Key: s.ks.Keys[s.pick()], Value: s.seqVal()}
	case ReadMostly:
		if s.rng.Intn(100) < 5 {
			return Op{Kind: OpUpdate, Key: s.ks.Keys[s.pick()], Value: s.seqVal()}
		}
		return Op{Kind: OpRead, Key: s.ks.Keys[s.pick()]}
	default: // ScanInsert
		if s.rng.Intn(100) < 5 {
			return Op{Kind: OpInsert, Key: s.ks.ExtraKey(), Value: s.seqVal()}
		}
		return Op{
			Kind:    OpScan,
			Key:     s.ks.Keys[s.pick()],
			ScanLen: 1 + s.rng.Intn(maxScanLen),
		}
	}
}

func (s *Stream) seqVal() uint64 {
	s.seq++
	return uint64(s.worker)<<48 | s.seq
}
