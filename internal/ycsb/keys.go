package ycsb

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// KeyType selects the key distribution of §5.1.
type KeyType int

const (
	// MonoInt is 64-bit monotonically increasing integers.
	MonoInt KeyType = iota
	// RandInt is 64-bit random integers.
	RandInt
	// Email is synthetic 32-byte email addresses, the stand-in for the
	// paper's real-world email trace (see DESIGN.md substitutions).
	Email
	// MonoHC is the high-contention generator of §6.2: every worker
	// produces monotonically increasing keys in real time (timestamp
	// counter + worker-id suffix), so all inserts hit the tree's right
	// edge.
	MonoHC
	// Path is synthetic 48-byte hierarchical object keys
	// (tenant/NNNNNN/rack/NN/object/NNN...) in the style of object-store
	// and multitenant composite keys: sort-adjacent keys share long
	// prefixes, so base-node separator sets carry 30-40 shared bytes —
	// the regime prefix-skip node layouts target.
	Path
)

var keyTypeNames = map[KeyType]string{
	MonoInt: "Mono-Int", RandInt: "Rand-Int", Email: "Email", MonoHC: "Mono-HC",
	Path: "Path",
}

func (k KeyType) String() string { return keyTypeNames[k] }

// ParseKeyType converts a name like "mono" or "Rand-Int" to a KeyType.
func ParseKeyType(s string) (KeyType, error) {
	switch s {
	case "mono", "Mono-Int", "mono-int":
		return MonoInt, nil
	case "rand", "Rand-Int", "rand-int":
		return RandInt, nil
	case "email", "Email":
		return Email, nil
	case "hc", "Mono-HC", "mono-hc":
		return MonoHC, nil
	case "path", "Path":
		return Path, nil
	}
	return 0, fmt.Errorf("ycsb: unknown key type %q", s)
}

// emailUsers and emailDomains seed the synthetic email generator.
var emailUsers = []string{
	"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
	"ivan", "judy", "mallory", "niaj", "olivia", "peggy", "rupert", "sybil",
	"trent", "victor", "walter", "wendy", "xavier", "yolanda", "zach",
}

var emailDomains = []string{
	"example.com", "mail.net", "corp.org", "inbox.io", "db.edu",
	"post.dev", "web.co", "letters.us",
}

// emailKey builds a deterministic fixed-length 32-byte email for ordinal
// i, mixing in a hash so insertion order is unrelated to sort order.
func emailKey(i uint64) []byte {
	h := fnv64(i)
	user := emailUsers[h%uint64(len(emailUsers))]
	domain := emailDomains[(h>>8)%uint64(len(emailDomains))]
	s := fmt.Sprintf("%s%08d@%s", user, h%100000000, domain)
	key := make([]byte, 32)
	copy(key, s)
	for j := len(s); j < 32; j++ {
		key[j] = '.'
	}
	return key
}

// pathKey builds a deterministic fixed-length 48-byte hierarchical key
// for ordinal v: tenant changes every 4096 ordinals, rack is derived from
// the tenant (so it is constant within one), and the zero-padded object
// field carries the ordinal itself. Keys whose ordinals are close — the
// ones that end up sort-adjacent and share a base node — agree on
// everything but the last few object digits.
func pathKey(v uint64) []byte {
	s := fmt.Sprintf("tenant/%06d/rack/%02d/object/%016d", v>>12, (v>>12)%89, v)
	key := make([]byte, 48)
	copy(key, s)
	for j := len(s); j < 48; j++ {
		key[j] = '.'
	}
	return key
}

// pathOrdinal scrambles sequence number i into the path-key ordinal
// space: an odd-multiplier bijection over a power-of-two range about 4x
// the population, so insertion order is unrelated to sort order and all
// ordinals are distinct.
func pathOrdinal(i uint64, n int) uint64 {
	m := uint64(1) << 14
	for m < 4*uint64(n) {
		m <<= 1
	}
	return (i * 2654435761) & (m - 1)
}

// KeySet is the materialized load-phase key population: Keys[i] is the
// i-th key inserted during the Insert-only phase. All keys are distinct.
type KeySet struct {
	Type KeyType
	Keys [][]byte
	// nextExtra hands out keys beyond the loaded population for the
	// insert portion of YCSB-E and for Mono-HC.
	nextExtra atomic.Uint64
	// loadNext deals population keys to workers during the Insert-only
	// load phase (trace order, shared across workers).
	loadNext atomic.Uint64
}

// NextLoadKey deals the next unloaded population key, or nil once the
// population is exhausted.
func (ks *KeySet) NextLoadKey() []byte {
	i := ks.loadNext.Add(1) - 1
	if i < uint64(len(ks.Keys)) {
		return ks.Keys[i]
	}
	return nil
}

// ResetLoad rewinds the load-phase cursor (for reusing a KeySet).
func (ks *KeySet) ResetLoad() { ks.loadNext.Store(0) }

// NewKeySet builds n keys of the given type. For Mono-HC the set is
// seeded like Mono-Int (HC keys are generated at run time by HCKey).
func NewKeySet(t KeyType, n int) *KeySet {
	ks := &KeySet{Type: t, Keys: make([][]byte, n)}
	switch t {
	case MonoInt, MonoHC:
		for i := range ks.Keys {
			ks.Keys[i] = u64Key(uint64(i) << 16)
		}
	case RandInt:
		for i := range ks.Keys {
			// splitmix64 over distinct inputs yields distinct outputs.
			ks.Keys[i] = u64Key(fnv64(uint64(i)+1)<<16 | uint64(i)&0xffff)
		}
	case Email:
		seen := make(map[string]struct{}, n)
		j := uint64(0)
		for i := 0; i < n; {
			k := emailKey(j)
			j++
			if _, dup := seen[string(k)]; dup {
				continue
			}
			seen[string(k)] = struct{}{}
			ks.Keys[i] = k
			i++
		}
	case Path:
		// The ordinal scramble is a bijection, so no dedup is needed.
		for i := range ks.Keys {
			ks.Keys[i] = pathKey(pathOrdinal(uint64(i), n))
		}
	}
	ks.nextExtra.Store(uint64(n))
	return ks
}

func u64Key(v uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// ExtraKey returns a fresh key not in the loaded population, for the
// insert portion of YCSB-E.
func (ks *KeySet) ExtraKey() []byte {
	i := ks.nextExtra.Add(1) - 1
	switch ks.Type {
	case MonoInt, MonoHC:
		return u64Key(i << 16)
	case RandInt:
		return u64Key(fnv64(i+1)<<16 | i&0xffff)
	case Path:
		// Ordinals past the population stay inside the same bijection, so
		// extras are distinct from loaded keys until the ordinal space
		// wraps (collisions then just make that insert a no-op).
		return pathKey(pathOrdinal(i, len(ks.Keys)))
	default:
		// Emails: extend the ordinal space past the load phase; collisions
		// with loaded keys are possible but just make that insert a no-op,
		// matching YCSB's tolerance for failed inserts.
		return emailKey(i * 2654435761)
	}
}

// HCKey builds a high-contention key: a strictly increasing shared
// counter (the RDTSC stand-in) suffixed with the worker ID, so every
// worker inserts at the right edge of the key space (§6.2).
func (ks *KeySet) HCKey(worker int) []byte {
	t := ks.nextExtra.Add(1)
	return u64Key(t<<8 | uint64(worker)&0xff)
}
