package mapping

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestAllocateStoreLoad(t *testing.T) {
	tb := New[int](0)
	id := tb.Allocate()
	if got := tb.Load(id); got != nil {
		t.Fatalf("fresh id loads %v", got)
	}
	v := 42
	tb.Store(id, &v)
	if got := tb.Load(id); got == nil || *got != 42 {
		t.Fatalf("load after store: %v", got)
	}
}

func TestAllocateDistinct(t *testing.T) {
	tb := New[int](0)
	seen := map[uint64]bool{}
	for i := 0; i < 100000; i++ {
		id := tb.Allocate()
		if seen[id] {
			t.Fatalf("id %d allocated twice", id)
		}
		seen[id] = true
	}
	if tb.Hwm() < 100000 {
		t.Fatalf("hwm %d", tb.Hwm())
	}
}

func TestCompareAndSwap(t *testing.T) {
	tb := New[int](0)
	id := tb.Allocate()
	a, b := 1, 2
	tb.Store(id, &a)
	if tb.CompareAndSwap(id, &b, &a) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !tb.CompareAndSwap(id, &a, &b) {
		t.Fatal("CAS with correct expected value failed")
	}
	if got := tb.Load(id); *got != 2 {
		t.Fatalf("after CAS: %d", *got)
	}
}

func TestRecycle(t *testing.T) {
	tb := New[int](0)
	v := 7
	id := tb.Allocate()
	tb.Store(id, &v)
	tb.Recycle(id)
	if got := tb.Load(id); got != nil {
		t.Fatalf("recycled id still loads %v", got)
	}
	if id2 := tb.Allocate(); id2 != id {
		t.Fatalf("recycled id not reused: %d vs %d", id2, id)
	}
}

func TestLazyChunkInstallation(t *testing.T) {
	tb := New[int](0)
	// Far beyond the eagerly-installed chunk.
	id := uint64(5 * ChunkSize)
	if got := tb.Load(id); got != nil {
		t.Fatalf("uninstalled chunk loads %v", got)
	}
	v := 9
	if !tb.CompareAndSwap(id, nil, &v) {
		t.Fatal("CAS into fresh chunk failed")
	}
	if got := tb.Load(id); got == nil || *got != 9 {
		t.Fatalf("load: %v", got)
	}
	if tb.MemoryFootprint() == 0 {
		t.Fatal("zero footprint")
	}
}

func TestConcurrentAllocateAndCAS(t *testing.T) {
	tb := New[uint64](0)
	nw := runtime.GOMAXPROCS(0) * 4
	const per = 20000
	ids := make([][]uint64, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := tb.Allocate()
				v := uint64(w)<<32 | uint64(i)
				tb.Store(id, &v)
				ids[w] = append(ids[w], id)
			}
		}(w)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for w := range ids {
		for i, id := range ids[w] {
			if seen[id] {
				t.Fatalf("id %d handed to two workers", id)
			}
			seen[id] = true
			got := tb.Load(id)
			if got == nil || *got != uint64(w)<<32|uint64(i) {
				t.Fatalf("worker %d slot %d: %v", w, i, got)
			}
		}
	}
}

// TestConcurrentRecycle churns the free list from 8 goroutines with the
// full allocate -> CaS -> recycle lifecycle a tree node goes through, and
// verifies exclusive ownership throughout: if the Treiber stack ever
// suffered ABA, an ID would be handed to two workers at once (caught by
// the claims map), a freshly allocated slot would read non-nil (stale
// pointer), or an owner's CaS chain would fail. Run under -race.
func TestConcurrentRecycle(t *testing.T) {
	tb := New[uint64](0)
	const nw = 8
	// claims maps id -> owning worker while the ID is allocated. A claim
	// is released before Recycle pushes the ID, so a racing Allocate of
	// the same ID can never observe a lingering claim unless the free
	// list really did hand it out twice.
	var claims sync.Map
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]uint64, 0, 64)
			for i := 0; i < 5000; i++ {
				id := tb.Allocate()
				if prev, taken := claims.LoadOrStore(id, w); taken {
					t.Errorf("id %d allocated to worker %d while worker %v still owns it", id, w, prev)
					return
				}
				if got := tb.Load(id); got != nil {
					t.Errorf("freshly allocated id %d reads stale pointer %v", id, got)
					return
				}
				// The owner's CaS chain must never lose the slot.
				v1 := uint64(w)<<32 | uint64(i)
				v2 := v1 + 1
				if !tb.CompareAndSwap(id, nil, &v1) {
					t.Errorf("id %d: install CaS failed for exclusive owner", id)
					return
				}
				if !tb.CompareAndSwap(id, &v1, &v2) {
					t.Errorf("id %d: chained CaS failed for exclusive owner", id)
					return
				}
				if got := tb.Load(id); got == nil || *got != v2 {
					t.Errorf("id %d: owner reads %v, want %d", id, got, v2)
					return
				}
				local = append(local, id)
				if len(local) > 32 {
					old := local[0]
					local = local[1:]
					claims.Delete(old)
					tb.Recycle(old)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestQuickStoreLoadRoundtrip(t *testing.T) {
	tb := New[uint64](0)
	f := func(v uint64) bool {
		id := tb.Allocate()
		tb.Store(id, &v)
		got := tb.Load(id)
		return got != nil && *got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
