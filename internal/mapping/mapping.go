// Package mapping implements the Bw-Tree's indirection layer: a lock-free
// table that maps logical node IDs to physical pointers.
//
// The paper (§3.3) reserves a large virtual address range and lets the OS
// lazily back it with physical pages. Go cannot portably reserve-without-
// commit, so this package uses the closest lock-free equivalent: a two-level
// array whose fixed spine holds pointers to fixed-size chunks that are
// allocated lazily and installed with compare-and-swap. Lookups stay O(1)
// and never take a lock; the table grows but — like the paper's design —
// never shrinks.
package mapping

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

const (
	// ChunkBits is the log2 of entries per lazily-allocated chunk.
	ChunkBits = 16
	// ChunkSize is the number of entries per chunk (64Ki pointers = 512KiB).
	ChunkSize = 1 << ChunkBits
	chunkMask = ChunkSize - 1
	// SpineSize bounds the number of chunks; SpineSize*ChunkSize is the
	// maximum number of logical node IDs (64Ki * 64Ki = 2^32).
	SpineSize = 1 << 16
)

// Table maps logical node IDs to physical pointers of type T. The zero
// value is not usable; construct with New.
//
// All methods are safe for concurrent use without external locking.
type Table[T any] struct {
	spine []atomic.Pointer[chunk[T]]
	next  atomic.Uint64 // next never-allocated ID
	free  freeList      // recycled IDs
}

type chunk[T any] struct {
	slots [ChunkSize]atomic.Pointer[T]
}

// New returns an empty table with capacity for SpineSize*ChunkSize IDs.
// hint is the expected number of live IDs; chunks covering [0, hint) are
// allocated eagerly so the hot path never faults on chunk installation.
func New[T any](hint int) *Table[T] {
	t := &Table[T]{spine: make([]atomic.Pointer[chunk[T]], SpineSize)}
	for i := 0; i <= hint>>ChunkBits && i < SpineSize; i++ {
		t.spine[i].Store(&chunk[T]{})
	}
	return t
}

// Allocate returns a fresh logical node ID, reusing recycled IDs first.
func (t *Table[T]) Allocate() uint64 {
	if id, ok := t.free.pop(); ok {
		return id
	}
	id := t.next.Add(1) - 1
	if id >= SpineSize*ChunkSize {
		panic(fmt.Sprintf("mapping: table exhausted (%d IDs)", id))
	}
	return id
}

// Recycle returns an ID to the allocator. The caller must guarantee no
// thread can still translate the ID (i.e. the epoch that retired the node
// has drained).
func (t *Table[T]) Recycle(id uint64) {
	t.Store(id, nil)
	t.free.push(id)
}

// chunkFor returns the chunk containing id, installing it if necessary.
func (t *Table[T]) chunkFor(id uint64) *chunk[T] {
	s := &t.spine[id>>ChunkBits]
	if c := s.Load(); c != nil {
		return c
	}
	fresh := &chunk[T]{}
	if s.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return s.Load()
}

// Load translates a logical node ID to its current physical pointer.
func (t *Table[T]) Load(id uint64) *T {
	c := t.spine[id>>ChunkBits].Load()
	if c == nil {
		return nil
	}
	return c.slots[id&chunkMask].Load()
}

// Store unconditionally installs ptr for id. Used only during node
// creation, before the ID is published to other threads.
func (t *Table[T]) Store(id uint64, ptr *T) {
	t.chunkFor(id).slots[id&chunkMask].Store(ptr)
}

// CompareAndSwap atomically replaces the pointer for id if it still equals
// old. This is the single primitive every Bw-Tree state change reduces to.
func (t *Table[T]) CompareAndSwap(id uint64, old, new *T) bool {
	return t.chunkFor(id).slots[id&chunkMask].CompareAndSwap(old, new)
}

// Hwm reports the high-water mark: the number of IDs ever allocated
// (including recycled ones).
func (t *Table[T]) Hwm() uint64 { return t.next.Load() }

// freeList is a Treiber stack of recycled IDs.
//
// ABA audit. A Treiber stack's classic failure is pop's CaS(head, h ->
// h.next) succeeding after head moved away from h and back to it, leaving
// h.next stale. Two distinct hazards have to be ruled out here:
//
//  1. Node-level ABA (stale h.next): impossible. Every push allocates a
//     fresh freeNode — a node object is pushed exactly once and never
//     re-enters the stack, so a given *freeNode can be the head at most
//     once in its lifetime; head can never return to a previously-popped
//     node. A node's next field is only written before its publishing CaS
//     and is immutable afterwards, so a successful pop CaS always installs
//     the next the node was published with. Go's garbage collector keeps a
//     popped node alive while any racing pop still holds the pointer,
//     which is what rules out the reuse-after-free variant that bites
//     manual reclamation (the hazard §4.2 of the paper works around with
//     epochs).
//
//  2. ID-level reuse (the same uint64 cycling pop -> use -> Recycle ->
//     push while another thread holds a stale reference to the ID): not
//     the stack's problem, by contract. Recycle requires the retiring
//     epoch to have drained first, so no thread can still translate the ID
//     when it re-enters the free list; Recycle also nils the slot before
//     pushing, and that store happens-before any subsequent Allocate
//     returning the ID (pop's acquire CaS observes push's release CaS), so
//     the new owner always observes an empty slot, never a stale pointer.
type freeList struct {
	head atomic.Pointer[freeNode]
	// size tracks the stack length for occupancy reporting. It is bumped
	// after the publishing CaS, so it momentarily lags the true length —
	// fine for a gauge, and it keeps push/pop single-CaS.
	size atomic.Int64
}

type freeNode struct {
	id   uint64
	next *freeNode
}

func (f *freeList) push(id uint64) {
	n := &freeNode{id: id}
	for {
		h := f.head.Load()
		n.next = h
		if f.head.CompareAndSwap(h, n) {
			f.size.Add(1)
			return
		}
	}
}

func (f *freeList) pop() (uint64, bool) {
	for {
		h := f.head.Load()
		if h == nil {
			return 0, false
		}
		if f.head.CompareAndSwap(h, h.next) {
			f.size.Add(-1)
			return h.id, true
		}
	}
}

// len returns the approximate free-list length (never negative).
func (f *freeList) len() uint64 {
	if n := f.size.Load(); n > 0 {
		return uint64(n)
	}
	return 0
}

// TableStats is a point-in-time occupancy snapshot of the mapping table.
type TableStats struct {
	// Allocated is the high-water mark: IDs ever handed out, including
	// ones since recycled.
	Allocated uint64
	// Free is the approximate number of recycled IDs awaiting reuse.
	Free uint64
	// Live is Allocated - Free: logical node IDs currently in use.
	Live uint64
	// Capacity is the table's fixed maximum number of IDs.
	Capacity uint64
}

// Stats reports table occupancy. The counters are read independently, so
// under concurrent churn Live is approximate (gauge-grade, not exact).
func (t *Table[T]) Stats() TableStats {
	st := TableStats{
		Allocated: t.next.Load(),
		Free:      t.free.len(),
		Capacity:  SpineSize * ChunkSize,
	}
	if st.Allocated > st.Free {
		st.Live = st.Allocated - st.Free
	}
	return st
}

// MemoryFootprint returns the approximate bytes committed by the table's
// spine and installed chunks. Used by the Fig. 15 memory experiment.
func (t *Table[T]) MemoryFootprint() uintptr {
	var total uintptr = unsafe.Sizeof(atomic.Pointer[chunk[T]]{}) * SpineSize
	for i := range t.spine {
		if t.spine[i].Load() != nil {
			total += unsafe.Sizeof(chunk[T]{})
		}
	}
	return total
}
