package olc

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestReadLockUnlocked(t *testing.T) {
	var l Lock
	v, ok := l.ReadLock()
	if !ok {
		t.Fatal("read lock on fresh lock failed")
	}
	if !l.ReadUnlock(v) {
		t.Fatal("validation failed with no writers")
	}
}

func TestWriterInvalidatesReader(t *testing.T) {
	var l Lock
	v, _ := l.ReadLock()
	if !l.WriteLock() {
		t.Fatal("write lock failed")
	}
	if l.Check(v) {
		t.Fatal("reader validated while writer holds the lock")
	}
	l.WriteUnlock()
	if l.ReadUnlock(v) {
		t.Fatal("reader validated after a write")
	}
	// A fresh read section works again.
	v2, ok := l.ReadLock()
	if !ok || !l.ReadUnlock(v2) {
		t.Fatal("fresh read section failed after unlock")
	}
	if v2 == v {
		t.Fatal("version did not advance")
	}
}

func TestUpgrade(t *testing.T) {
	var l Lock
	v, _ := l.ReadLock()
	if !l.Upgrade(v) {
		t.Fatal("upgrade failed with no interference")
	}
	if _, ok := l.ReadLock(); ok {
		t.Fatal("read lock acquired while write-locked")
	}
	l.WriteUnlock()

	v, _ = l.ReadLock()
	if !l.WriteLock() {
		t.Fatal("write lock failed")
	}
	l.WriteUnlock()
	if l.Upgrade(v) {
		t.Fatal("upgrade succeeded after interference")
	}
}

func TestObsolete(t *testing.T) {
	var l Lock
	l.WriteLock()
	l.WriteUnlockObsolete()
	if !l.IsObsolete() {
		t.Fatal("not obsolete")
	}
	if _, ok := l.ReadLock(); ok {
		t.Fatal("read lock on obsolete node succeeded")
	}
	if l.WriteLock() {
		t.Fatal("write lock on obsolete node succeeded")
	}
}

// TestMutualExclusion hammers a counter protected by the write lock.
func TestMutualExclusion(t *testing.T) {
	var l Lock
	var counter int64 // plain; protected by l
	nw := runtime.GOMAXPROCS(0) * 2
	const per = 20000
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !l.WriteLock() {
					t.Error("write lock failed")
					return
				}
				counter++
				l.WriteUnlock()
			}
		}()
	}
	wg.Wait()
	if counter != int64(nw*per) {
		t.Fatalf("counter %d want %d", counter, nw*per)
	}
}

// TestOptimisticReadersSeeConsistentPairs verifies the core OLC
// guarantee: a validated read section never observes a torn write.
func TestOptimisticReadersSeeConsistentPairs(t *testing.T) {
	var l Lock
	var a, b atomic.Int64 // written as a pair under the lock
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); !stop.Load(); i++ {
			l.WriteLock()
			a.Store(i)
			b.Store(-i)
			l.WriteUnlock()
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			valid := 0
			for valid < 10000 {
				v, ok := l.ReadLock()
				if !ok {
					continue
				}
				x, y := a.Load(), b.Load()
				if !l.ReadUnlock(v) {
					continue
				}
				valid++
				if x != -y {
					t.Errorf("torn read: a=%d b=%d", x, y)
					return
				}
			}
		}()
	}
	// Readers finish on their own; then stop the writer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			return
		default:
			stop.Store(true)
			runtime.Gosched()
		}
	}
}
