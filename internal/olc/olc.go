// Package olc implements optimistic lock coupling (Leis et al., "The ART
// of Practical Synchronization", DaMoN 2016) — the synchronization scheme
// used by the paper's B+Tree, ART, and (in spirit) Masstree baselines.
//
// Every node carries a version lock: a 64-bit word whose low bits encode
// lock and obsolete flags and whose high bits count versions. Readers
// proceed without writing shared memory: they sample the version, do their
// reads, and re-validate; a change means a writer interfered and the
// operation restarts. Writers take the lock by CAS, bumping the version on
// release so readers notice.
package olc

import (
	"runtime"
	"sync/atomic"
)

// Lock is an optimistic version lock. The zero value is unlocked.
type Lock struct {
	// word layout: [version:62][obsolete:1][locked:1]
	word atomic.Uint64
}

const (
	lockedBit   = 1
	obsoleteBit = 2
	versionInc  = 4
)

// ReadLock samples the version for optimistic reading. ok is false when
// the node is write-locked or obsolete, in which case the caller must
// retry or restart.
func (l *Lock) ReadLock() (version uint64, ok bool) {
	v := l.word.Load()
	if v&(lockedBit|obsoleteBit) != 0 {
		return 0, false
	}
	return v, true
}

// ReadUnlock re-validates a read section started at version. A false
// return means a writer interfered and everything read since ReadLock is
// suspect.
func (l *Lock) ReadUnlock(version uint64) bool {
	return l.word.Load() == version
}

// Check is ReadUnlock without ending the section: an intermediate
// validation used before acting on possibly-torn reads.
func (l *Lock) Check(version uint64) bool {
	return l.word.Load() == version
}

// Upgrade atomically converts a read section into a write lock. It fails
// if any writer has interfered since version was sampled.
func (l *Lock) Upgrade(version uint64) bool {
	return l.word.CompareAndSwap(version, version+lockedBit)
}

// WriteLock acquires the lock, spinning while other writers hold it. ok
// is false when the node became obsolete (caller must restart from the
// root).
func (l *Lock) WriteLock() bool {
	for spins := 0; ; spins++ {
		v := l.word.Load()
		if v&obsoleteBit != 0 {
			return false
		}
		if v&lockedBit == 0 {
			if l.word.CompareAndSwap(v, v+lockedBit) {
				return true
			}
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// WriteUnlock releases the lock, bumping the version.
func (l *Lock) WriteUnlock() {
	// locked -> unlocked with version+1: add (versionInc - lockedBit).
	l.word.Add(versionInc - lockedBit)
}

// WriteUnlockObsolete releases the lock and marks the node obsolete
// (removed from the structure); readers and writers restart on sight.
func (l *Lock) WriteUnlockObsolete() {
	l.word.Add(versionInc + obsoleteBit - lockedBit)
}

// IsObsolete reports whether the node has been marked obsolete.
func (l *Lock) IsObsolete() bool { return l.word.Load()&obsoleteBit != 0 }
