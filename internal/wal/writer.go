package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("wal: writer closed")

// ErrCrashed is returned once Crash has been called: the log is frozen at
// its last fsync and every in-flight or later commit is lost.
var ErrCrashed = errors.New("wal: simulated crash")

// testFault, when non-nil, intercepts segment writes and fsyncs so tests
// can inject crash points: for op "write" it may shorten the write to n
// bytes and/or fail it; for op "sync" a non-nil error fails the fsync.
// Guarded by the flusher being the only file writer.
var testFault func(op string, size int) (n int, err error)

// SetTestFault installs the write-fault hook and returns a restore
// function. Tests only; production code never sets it.
func SetTestFault(f func(op string, size int) (n int, err error)) (restore func()) {
	prev := testFault
	testFault = f
	return func() { testFault = prev }
}

// Writer is the append side of the log. Any number of goroutines may
// Append concurrently; one internal flusher goroutine writes and fsyncs
// batches (group commit). See the package comment for the durability
// contract.
type Writer struct {
	opts Options
	dir  string

	mu   sync.Mutex
	work sync.Cond // signaled when buf gains data or the writer closes
	done sync.Cond // broadcast when durableLSN advances or the writer dies

	buf      []byte // encoded records not yet handed to the flusher
	bufRecs  int
	nextLSN  uint64 // LSN the next Append will get
	appended uint64 // last assigned LSN (0 = none)
	closed   bool
	crashed  bool
	err      error // sticky flush error; commits fail once set

	durable atomic.Uint64 // last fsynced LSN

	// Active segment state (flusher-owned except under mu at rotation).
	f          *os.File
	fileSize   int64
	syncedSize int64 // bytes of the active segment known to be on disk
	flusherWG  sync.WaitGroup

	// Instrumentation (internal/obs): fsync latency and records per
	// group-commit batch.
	fsyncHist obs.Histogram
	batchHist obs.Histogram
	syncs     atomic.Uint64
	appends   atomic.Uint64
	bytes     atomic.Uint64
	segments  atomic.Uint64
}

// Stats is a point-in-time summary of a Writer's activity.
type Stats struct {
	AppendedLSN uint64
	DurableLSN  uint64
	Appends     uint64
	Syncs       uint64
	Bytes       uint64
	Segments    uint64
	// QueueBytes/QueueRecords gauge the flush queue: records appended
	// but not yet handed to the flusher's write+fsync cycle. A queue
	// that stays large means commits are arriving faster than the log
	// device drains them.
	QueueBytes   uint64
	QueueRecords uint64
	// Fsync is the fsync wall-time histogram (nanoseconds); Batch is the
	// records-per-fsync histogram.
	Fsync obs.HistSnapshot
	Batch obs.HistSnapshot
}

// NewWriter opens the append side of the log in dir, with the next
// appended record getting LSN nextLSN. It always starts a fresh segment
// (created lazily on first flush), so it never needs to reconcile a torn
// tail left by a predecessor — recovery has already truncated it.
func NewWriter(dir string, opts Options, nextLSN uint64) (*Writer, error) {
	opts.sanitize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if nextLSN == 0 {
		nextLSN = 1
	}
	w := &Writer{opts: opts, dir: dir, nextLSN: nextLSN, appended: nextLSN - 1}
	w.work.L = &w.mu
	w.done.L = &w.mu
	w.durable.Store(nextLSN - 1)
	w.flusherWG.Add(1)
	go w.flusher()
	return w, nil
}

// Append assigns the next LSN to one logical operation record and buffers
// it for the flusher. The record is durable only once DurableLSN reaches
// the returned LSN (see WaitDurable).
func (w *Writer) Append(op byte, key []byte, value uint64) (uint64, error) {
	w.mu.Lock()
	if w.closed || w.crashed {
		err := ErrClosed
		if w.crashed {
			err = ErrCrashed
		}
		w.mu.Unlock()
		return 0, err
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.appended = lsn
	w.buf = appendRecord(w.buf, op, key, value)
	w.bufRecs++
	w.work.Signal()
	w.mu.Unlock()
	w.appends.Add(1)
	return lsn, nil
}

// AppendedLSN returns the highest LSN assigned so far (0 if none).
func (w *Writer) AppendedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// DurableLSN returns the highest LSN guaranteed to survive a crash.
func (w *Writer) DurableLSN() uint64 { return w.durable.Load() }

// WaitDurable blocks until the record with the given LSN is fsynced, the
// writer fails, or it crashes/closes with the record still volatile.
func (w *Writer) WaitDurable(lsn uint64) error {
	if w.durable.Load() >= lsn {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable.Load() < lsn {
		if w.err != nil {
			return w.err
		}
		if w.crashed {
			return ErrCrashed
		}
		if w.closed {
			return ErrClosed
		}
		w.done.Wait()
	}
	return nil
}

// Sync flushes and fsyncs everything appended so far.
func (w *Writer) Sync() error {
	w.mu.Lock()
	lsn := w.appended
	w.mu.Unlock()
	if lsn == 0 {
		return nil
	}
	return w.WaitDurable(lsn)
}

// Close drains and fsyncs all buffered records, then closes the active
// segment. Further appends fail with ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed || w.crashed {
		w.mu.Unlock()
		w.flusherWG.Wait()
		return w.err
	}
	w.closed = true
	w.work.Signal()
	w.mu.Unlock()
	w.flusherWG.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	return w.err
}

// Crash simulates a power failure: buffered records are discarded and the
// active segment is truncated to its last fsynced byte, so exactly the
// records with LSN <= DurableLSN survive into recovery. In-flight and
// later commits fail with ErrCrashed. With Options.NoSync every written
// byte counts as durable.
func (w *Writer) Crash() error {
	w.mu.Lock()
	if w.closed || w.crashed {
		w.mu.Unlock()
		w.flusherWG.Wait()
		return nil
	}
	w.crashed = true
	w.buf = nil
	w.bufRecs = 0
	w.work.Signal()
	w.done.Broadcast()
	w.mu.Unlock()
	w.flusherWG.Wait()

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		if w.syncedSize <= headerSize {
			// Nothing of this segment is durable; a real power failure
			// could leave it absent entirely. Drop it.
			name := w.f.Name()
			w.f.Close()
			os.Remove(name)
		} else {
			w.f.Truncate(w.syncedSize)
			w.f.Close()
		}
		w.f = nil
	}
	return nil
}

// Stats returns a snapshot of the writer's counters and histograms.
func (w *Writer) Stats() Stats {
	st := Stats{
		DurableLSN: w.durable.Load(),
		Appends:    w.appends.Load(),
		Syncs:      w.syncs.Load(),
		Bytes:      w.bytes.Load(),
		Segments:   w.segments.Load(),
	}
	w.mu.Lock()
	st.AppendedLSN = w.appended
	st.QueueBytes = uint64(len(w.buf))
	st.QueueRecords = uint64(w.bufRecs)
	w.mu.Unlock()
	w.fsyncHist.AddTo(&st.Fsync)
	w.batchHist.AddTo(&st.Batch)
	return st
}

// flusher is the group-commit loop: it sleeps until records are pending,
// optionally waits GroupCommitInterval to let the batch grow, then writes
// and fsyncs the whole batch and advances durableLSN by the batch's last
// LSN. Everything that piles up during one fsync commits in the next.
func (w *Writer) flusher() {
	defer w.flusherWG.Done()
	for {
		w.mu.Lock()
		for len(w.buf) == 0 && !w.closed && !w.crashed {
			w.work.Wait()
		}
		if w.crashed || (w.closed && len(w.buf) == 0) || w.err != nil {
			w.mu.Unlock()
			return
		}
		if d := w.opts.GroupCommitInterval; d > 0 && len(w.buf) < w.opts.GroupCommitBytes && !w.closed {
			// Coalescing window: let concurrent appenders extend the batch.
			w.mu.Unlock()
			time.Sleep(d)
			w.mu.Lock()
			if w.crashed {
				w.mu.Unlock()
				return
			}
		}
		chunk := w.buf
		recs := w.bufRecs
		hi := w.appended
		w.buf = nil
		w.bufRecs = 0
		w.mu.Unlock()

		if err := w.flushChunk(chunk, recs, hi); err != nil {
			w.mu.Lock()
			w.err = err
			w.done.Broadcast()
			w.mu.Unlock()
			return
		}
	}
}

// flushChunk writes one batch to the active segment (rotating first if the
// segment is full), fsyncs, and publishes durability.
func (w *Writer) flushChunk(chunk []byte, recs int, hi uint64) error {
	if w.f == nil || w.fileSize >= w.opts.SegmentSize {
		first := hi - uint64(recs) + 1
		if err := w.rotate(first); err != nil {
			return err
		}
	}
	if testFault != nil {
		n, err := testFault("write", len(chunk))
		if n > len(chunk) {
			n = len(chunk)
		}
		if n > 0 {
			if _, werr := w.f.Write(chunk[:n]); werr != nil && err == nil {
				err = werr
			}
		}
		w.fileSize += int64(n)
		if err == nil && n < len(chunk) {
			err = errors.New("wal: injected short write")
		}
		if err != nil {
			return err
		}
	} else {
		if _, err := w.f.Write(chunk); err != nil {
			return err
		}
		w.fileSize += int64(len(chunk))
	}
	if err := w.fsync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.syncedSize = w.fileSize
	w.mu.Unlock()
	w.durable.Store(hi)
	w.bytes.Add(uint64(len(chunk)))
	w.batchHist.RecordNS(int64(recs))
	w.mu.Lock()
	w.done.Broadcast()
	w.mu.Unlock()
	return nil
}

// fsync syncs the active segment, timing it into the fsync histogram.
func (w *Writer) fsync() error {
	if testFault != nil {
		if _, err := testFault("sync", 0); err != nil {
			return err
		}
	}
	if w.opts.NoSync {
		return nil
	}
	t0 := obs.Now()
	err := w.f.Sync()
	w.fsyncHist.RecordNS(obs.Now() - t0)
	w.syncs.Add(1)
	return err
}

// rotate fsyncs and closes the active segment (if any) and starts a new
// one whose first record will have LSN first. The header is fsynced
// immediately so the truncation point after a crash is never inside it.
func (w *Writer) rotate(first uint64) error {
	if w.f != nil {
		if err := w.fsync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
	}
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(first)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	hdr := encodeSegmentHeader(first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	w.f = f
	w.fileSize = headerSize
	if err := w.fsync(); err != nil {
		return err
	}
	w.mu.Lock()
	w.syncedSize = headerSize
	w.mu.Unlock()
	w.segments.Add(1)
	if err := syncDir(w.dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a freshly created or renamed file's
// directory entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
