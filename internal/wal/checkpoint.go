package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Manifest is the checkpoint descriptor, stored as JSON in the MANIFEST
// file. It is the recovery root: recovery loads Snapshot, then replays
// every log record with LSN > LSN.
type Manifest struct {
	// Snapshot is the snapshot file name (relative to the log directory).
	Snapshot string `json:"snapshot"`
	// LSN is the replay start: every operation the snapshot might be
	// missing has a log record with a higher LSN. Because the snapshot is
	// taken concurrently with writers (epoch-consistent, not
	// point-in-time), it may also contain the effects of records after
	// LSN; replay is convergent for the guarded insert/update/delete
	// operations, so re-applying them is harmless (see DESIGN.md).
	LSN uint64 `json:"lsn"`
	// Count is the number of pairs in the snapshot.
	Count uint64 `json:"count"`
	// CRC is the CRC32C of the snapshot's record bytes.
	CRC uint32 `json:"crc"`
}

const manifestName = "MANIFEST"

// snapshotName returns the snapshot file name for a checkpoint at lsn.
func snapshotName(lsn uint64) string {
	return fmt.Sprintf("snap-%020d.snap", lsn)
}

// WriteCheckpoint streams the pairs produced by next — which must arrive
// in ascending key order with non-empty keys — into a snapshot file in
// dir and atomically publishes a manifest pointing at it. lsn is the
// replay start recorded in the manifest (the log LSN captured before the
// tree walk began).
//
// preCommit, when non-nil, runs after the snapshot file is fsynced and
// before the manifest is published; a caller uses it to force the log
// durable through the walk's end, so every operation possibly reflected
// in the snapshot is also on disk in the log. If preCommit fails the
// checkpoint is abandoned and the previous manifest stays authoritative.
//
// Older snapshots and fully-covered log segments are removed after the
// manifest is durable.
func WriteCheckpoint(dir string, lsn uint64, next func() (key []byte, value uint64, ok bool), preCommit func() error) (Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, err
	}
	m := Manifest{Snapshot: snapshotName(lsn), LSN: lsn}
	tmp := filepath.Join(dir, m.Snapshot+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Manifest{}, err
	}
	defer os.Remove(tmp) // no-op after the rename

	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [8]byte
	copy(hdr[0:4], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], version)
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return Manifest{}, err
	}
	crc := crc32.New(castagnoli)
	out := io.MultiWriter(bw, crc)
	var rec [binary.MaxVarintLen64 + 8]byte
	for {
		k, v, ok := next()
		if !ok {
			break
		}
		if len(k) == 0 {
			f.Close()
			return Manifest{}, errors.New("wal: snapshot key must be non-empty")
		}
		n := binary.PutUvarint(rec[:], uint64(len(k)))
		binary.LittleEndian.PutUint64(rec[n:], v)
		if _, err := out.Write(rec[:n+8]); err != nil {
			f.Close()
			return Manifest{}, err
		}
		if _, err := out.Write(k); err != nil {
			f.Close()
			return Manifest{}, err
		}
		m.Count++
	}
	m.CRC = crc.Sum32()
	// Footer: count + CRC, so a truncated snapshot never verifies.
	var foot [12]byte
	binary.LittleEndian.PutUint64(foot[0:8], m.Count)
	binary.LittleEndian.PutUint32(foot[8:12], m.CRC)
	if _, err := bw.Write(foot[:]); err != nil {
		f.Close()
		return Manifest{}, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return Manifest{}, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return Manifest{}, err
	}
	if err := f.Close(); err != nil {
		return Manifest{}, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, m.Snapshot)); err != nil {
		return Manifest{}, err
	}
	if err := syncDir(dir); err != nil {
		return Manifest{}, err
	}

	if preCommit != nil {
		if err := preCommit(); err != nil {
			os.Remove(filepath.Join(dir, m.Snapshot))
			return Manifest{}, err
		}
	}

	if err := writeManifest(dir, m); err != nil {
		return Manifest{}, err
	}
	removeStaleSnapshots(dir, m.Snapshot)
	Prune(dir, m.LSN)
	return m, nil
}

// writeManifest atomically replaces the MANIFEST file.
func writeManifest(dir string, m Manifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// removeStaleSnapshots deletes every snapshot file except keep.
func removeStaleSnapshots(dir, keep string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if name == keep {
			continue
		}
		if strings.HasPrefix(name, "snap-") && (strings.HasSuffix(name, ".snap") || strings.HasSuffix(name, ".tmp")) {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// LoadManifest reads the checkpoint manifest. ok is false when the
// directory has no manifest (an empty or log-only state).
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: corrupt manifest: %w", err)
	}
	return m, true, nil
}

// ReadSnapshot streams the manifest's snapshot pairs to fn in stored
// (ascending-key) order, verifying the footer count and CRC. The key
// slice passed to fn is only valid during the call.
func ReadSnapshot(dir string, m Manifest, fn func(key []byte, value uint64) error) error {
	data, err := os.ReadFile(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return err
	}
	if len(data) < 8+12 || string(data[0:4]) != snapMagic {
		return errors.New("wal: bad snapshot header")
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return fmt.Errorf("wal: unsupported snapshot version %d", v)
	}
	body := data[8 : len(data)-12]
	count := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])
	crc := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return errors.New("wal: snapshot CRC mismatch")
	}
	if count != m.Count || crc != m.CRC {
		return errors.New("wal: snapshot does not match manifest")
	}
	var seen uint64
	for len(body) > 0 {
		klen, n := binary.Uvarint(body)
		if n <= 0 || klen == 0 || uint64(len(body)) < uint64(n)+8+klen {
			return errors.New("wal: truncated snapshot record")
		}
		v := binary.LittleEndian.Uint64(body[n : n+8])
		k := body[uint64(n)+8 : uint64(n)+8+klen]
		if err := fn(k, v); err != nil {
			return err
		}
		body = body[uint64(n)+8+klen:]
		seen++
	}
	if seen != count {
		return fmt.Errorf("wal: snapshot record count %d != footer %d", seen, count)
	}
	return nil
}
