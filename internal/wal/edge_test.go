package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment assembles a raw segment file image: header for firstLSN
// followed by framed records.
func buildSegment(firstLSN uint64, recs ...[]byte) []byte {
	h := encodeSegmentHeader(firstLSN)
	out := append([]byte{}, h[:]...)
	for _, r := range recs {
		out = append(out, r...)
	}
	return out
}

func rec(op byte, key string, value uint64) []byte {
	return appendRecord(nil, op, []byte(key), value)
}

// TestTailDamage is the table-driven torn-tail matrix: each case mutates
// a well-formed final segment and states what recovery must salvage.
func TestTailDamage(t *testing.T) {
	full := buildSegment(1,
		rec(OpInsert, "aaa", 1),
		rec(OpInsert, "bbb", 2),
		rec(OpInsert, "ccc", 3),
	)
	r3 := rec(OpInsert, "ccc", 3)
	lastStart := len(full) - len(r3)

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantRecs int
		wantTorn bool
		wantErr  bool
	}{
		{"intact", func(b []byte) []byte { return b }, 3, false, false},
		{"torn-mid-payload", func(b []byte) []byte { return b[:len(b)-2] }, 2, true, false},
		{"torn-mid-frame", func(b []byte) []byte { return b[:lastStart+4] }, 2, true, false},
		{"bad-crc-last", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[len(c)-1] ^= 0xff
			return c
		}, 2, true, false},
		{"bad-length-last", func(b []byte) []byte {
			c := append([]byte{}, b...)
			binary.LittleEndian.PutUint32(c[lastStart:], 0xfffffff0) // > maxRecordSize
			return c
		}, 2, true, false},
		{"zero-fill-tail", func(b []byte) []byte {
			// Preallocated-file shape: valid records then zeros. The zero
			// frame is the clean end marker, not damage.
			return append(append([]byte{}, b...), make([]byte, 64)...)
		}, 3, false, false},
		{"garbage-after-zero-fill", func(b []byte) []byte {
			// Zeros terminate the log; what's after them is never read.
			c := append(append([]byte{}, b...), make([]byte, frameSize)...)
			return append(c, 0xde, 0xad, 0xbe, 0xef)
		}, 3, false, false},
		{"header-only", func(b []byte) []byte { return b[:headerSize] }, 0, false, false},
		{"short-header", func(b []byte) []byte { return b[:7] }, 0, true, false},
		{"corrupt-header-crc", func(b []byte) []byte {
			c := append([]byte{}, b...)
			c[17] ^= 0xff
			return c
		}, 0, true, false},
		{"empty-file", func(b []byte) []byte { return nil }, 0, false, false},
		{"first-record-torn", func(b []byte) []byte { return b[:headerSize+3] }, 0, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, segmentName(1))
			if err := os.WriteFile(path, tc.mutate(append([]byte{}, full...)), 0o644); err != nil {
				t.Fatal(err)
			}
			var got []Record
			st, err := Replay(dir, 0, func(r Record) error {
				got = append(got, Record{LSN: r.LSN, Op: r.Op, Value: r.Value})
				return nil
			})
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.wantRecs {
				t.Fatalf("replayed %d records, want %d (stats %+v)", len(got), tc.wantRecs, st)
			}
			if st.Torn != tc.wantTorn {
				t.Fatalf("Torn = %v, want %v", st.Torn, tc.wantTorn)
			}
			for i, r := range got {
				if r.LSN != uint64(i+1) || r.Value != uint64(i+1) {
					t.Fatalf("record %d = %+v", i, r)
				}
			}
			// The damage must be gone after the first replay: a second pass
			// sees a clean log with the same contents.
			st2, err := Replay(dir, 0, nil)
			if err != nil {
				t.Fatalf("second replay: %v", err)
			}
			if st2.Torn {
				t.Fatal("second replay still torn — truncation not persisted")
			}
			if st2.Records != tc.wantRecs {
				t.Fatalf("second replay %d records, want %d", st2.Records, tc.wantRecs)
			}
		})
	}
}

// TestTailDamageNonFinalSegmentFatal verifies that damage in a non-final
// segment — impossible under the rotation protocol — is a hard error, not
// silent data loss.
func TestTailDamageNonFinalSegmentFatal(t *testing.T) {
	dir := t.TempDir()
	seg1 := buildSegment(1, rec(OpInsert, "aaa", 1), rec(OpInsert, "bbb", 2))
	seg2 := buildSegment(3, rec(OpInsert, "ccc", 3))
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg1[:len(seg1)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(3)), seg2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, nil); err == nil {
		t.Fatal("torn non-final segment must be a hard error")
	}
}

// TestCrashPointSweep injects a fault at every possible point in the
// write/sync sequence and checks the durable-prefix property after each:
// recovery must deliver exactly a prefix of the appended records, at
// least through the last acknowledged LSN.
func TestCrashPointSweep(t *testing.T) {
	const nOps = 30
	// First, count the fault opportunities for this workload.
	countOps := func() int {
		n := 0
		restore := SetTestFault(func(op string, size int) (int, error) {
			n++
			return size, nil
		})
		defer restore()
		dir := t.TempDir()
		w, err := NewWriter(dir, Options{SegmentSize: 200}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nOps; i++ {
			lsn, err := w.Append(OpInsert, []byte(fmt.Sprintf("k%04d", i)), uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			if err := w.WaitDurable(lsn); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()
		return n
	}()
	if countOps == 0 {
		t.Fatal("fault hook never fired")
	}

	errInject := errors.New("injected fault")
	for point := 0; point < countOps; point++ {
		t.Run(fmt.Sprintf("fault-at-%d", point), func(t *testing.T) {
			dir := t.TempDir()
			n := 0
			short := point%3 == 2 // every third point: short write instead of error
			restore := SetTestFault(func(op string, size int) (int, error) {
				n++
				if n-1 == point {
					if short && op == "write" && size > 1 {
						return size / 2, nil
					}
					return 0, errInject
				}
				return size, nil
			})
			defer restore()

			w, err := NewWriter(dir, Options{SegmentSize: 200}, 0)
			if err != nil {
				t.Fatal(err)
			}
			var acked uint64
			for i := 0; i < nOps; i++ {
				lsn, aerr := w.Append(OpInsert, []byte(fmt.Sprintf("k%04d", i)), uint64(i))
				if aerr != nil {
					break // writer already failed
				}
				if werr := w.WaitDurable(lsn); werr != nil {
					break
				}
				acked = lsn
			}
			w.Crash()
			restore() // recovery itself must run without faults

			var prev uint64
			st, err := Replay(dir, 0, func(r Record) error {
				if r.LSN != prev+1 {
					return fmt.Errorf("gap: %d after %d", r.LSN, prev)
				}
				prev = r.LSN
				if r.Value != r.LSN-1 {
					return fmt.Errorf("record %d has value %d", r.LSN, r.Value)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if st.MaxLSN < acked {
				t.Fatalf("acked LSN %d lost: recovered only through %d", acked, st.MaxLSN)
			}
		})
	}
}

// TestSnapshotTruncationDetected truncates a snapshot at several points
// and requires verification to fail at each.
func TestSnapshotTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	i := 0
	m, err := WriteCheckpoint(dir, 5, func() ([]byte, uint64, bool) {
		if i >= 50 {
			return nil, 0, false
		}
		k := []byte(fmt.Sprintf("key-%03d", i))
		i++
		return k, uint64(i), true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, m.Snapshot)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 4, 8, len(orig) / 2, len(orig) - 13, len(orig) - 1} {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if err := ReadSnapshot(dir, m, func([]byte, uint64) error { return nil }); err == nil {
			t.Fatalf("snapshot truncated to %d bytes passed verification", cut)
		}
	}
}
