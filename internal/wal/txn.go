package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Transaction record kinds (stable on-disk format; never renumber).
//
// A multi-key transaction commits through one of two shapes:
//
//   - OpTxn: a self-contained commit — the whole write set rides in one
//     record's blob. The record either survives recovery intact or is
//     truncated as a torn tail with the rest of the batch, so the write
//     set applies atomically or not at all. Used whenever every write
//     lands in one log (single tree, or all keys on one shard).
//
//   - OpTxnPrep + OpTxnCommit: the two-phase shape for commits spanning
//     several logs. Each participant logs its local sub-writes in an
//     OpTxnPrep; once every prep is durable, an OpTxnCommit (the
//     decision) is appended to every participant. Recovery applies a
//     prep if and only if a commit record bearing its transaction ID
//     survives in any participating log — presumed abort otherwise.
//
// All three reuse the ordinary record frame: the value field carries the
// transaction ID and the key field carries the sub-operation blob (empty
// for OpTxnCommit), so framing, CRC protection, and torn-tail truncation
// are exactly those of single-op records.
const (
	OpTxn       byte = 'T'
	OpTxnPrep   byte = 'P'
	OpTxnCommit byte = 'C'
)

// TxnOp is one resolved sub-operation of a transactional write set. Op is
// one of OpInsert/OpUpdate/OpDelete, carrying the same guarded replay
// semantics as a standalone record of that kind.
type TxnOp struct {
	Op    byte
	Key   []byte
	Value uint64
}

// ErrTxnTooLarge is returned when a write set's encoded blob would exceed
// the maximum decodable record size.
var ErrTxnTooLarge = errors.New("wal: transaction write set exceeds record size limit")

// errTxnOps tags a malformed sub-operation blob.
var errTxnOps = errors.New("wal: malformed transaction op blob")

// EncodeTxnOps appends the sub-operation blob for ops to dst:
//
//	nops uint32 LE | nops × ( op byte | value uint64 LE | klen uint32 LE | key )
func EncodeTxnOps(dst []byte, ops []TxnOp) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops)))
	for i := range ops {
		dst = append(dst, ops[i].Op)
		dst = binary.LittleEndian.AppendUint64(dst, ops[i].Value)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops[i].Key)))
		dst = append(dst, ops[i].Key...)
	}
	return dst
}

// DecodeTxnOps parses a sub-operation blob. Returned keys alias b. Every
// length is bounds-checked against the remaining bytes so a corrupt blob
// (impossible under CRC framing, but fuzzed anyway) fails cleanly rather
// than panicking or over-allocating.
func DecodeTxnOps(b []byte) ([]TxnOp, error) {
	if len(b) < 4 {
		return nil, errTxnOps
	}
	nops := binary.LittleEndian.Uint32(b[0:4])
	b = b[4:]
	// Each op needs at least 13 bytes (op + value + klen); reject counts
	// the remaining bytes cannot possibly satisfy before allocating.
	if uint64(nops)*13 > uint64(len(b)) {
		return nil, errTxnOps
	}
	ops := make([]TxnOp, 0, nops)
	for i := uint32(0); i < nops; i++ {
		if len(b) < 13 {
			return nil, errTxnOps
		}
		op := b[0]
		val := binary.LittleEndian.Uint64(b[1:9])
		klen := binary.LittleEndian.Uint32(b[9:13])
		b = b[13:]
		if uint64(klen) > uint64(len(b)) {
			return nil, errTxnOps
		}
		switch op {
		case OpInsert, OpUpdate, OpDelete:
		default:
			return nil, fmt.Errorf("wal: unknown transaction sub-op %q", op)
		}
		if klen == 0 {
			return nil, errTxnOps
		}
		ops = append(ops, TxnOp{Op: op, Key: b[:klen], Value: val})
		b = b[klen:]
	}
	if len(b) != 0 {
		return nil, errTxnOps
	}
	return ops, nil
}

// AppendTxn assigns one LSN to a whole transactional record — op must be
// OpTxn, OpTxnPrep, or OpTxnCommit — and buffers it for the flusher.
// txnID rides in the record's value field; ops (nil for OpTxnCommit) are
// encoded into the blob. Atomicity follows from framing: the record is
// one CRC-protected frame, so recovery sees all of it or truncates all
// of it.
func (w *Writer) AppendTxn(op byte, txnID uint64, ops []TxnOp) (uint64, error) {
	switch op {
	case OpTxn, OpTxnPrep, OpTxnCommit:
	default:
		return 0, fmt.Errorf("wal: AppendTxn with non-transaction op %q", op)
	}
	// Decision records (OpTxnCommit) carry the canonical empty blob
	// (nops=0), so DecodeTxnOps works uniformly on any transaction record.
	blob := EncodeTxnOps(nil, ops)
	if 1+8+len(blob) > maxRecordSize {
		return 0, ErrTxnTooLarge
	}
	w.mu.Lock()
	if w.closed || w.crashed {
		err := ErrClosed
		if w.crashed {
			err = ErrCrashed
		}
		w.mu.Unlock()
		return 0, err
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	lsn := w.nextLSN
	w.nextLSN++
	w.appended = lsn
	w.buf = appendRecord(w.buf, op, blob, txnID)
	w.bufRecs++
	w.work.Signal()
	w.mu.Unlock()
	w.appends.Add(1)
	return lsn, nil
}

// IsTxnOp reports whether a record op byte is one of the transaction
// kinds (as opposed to a single-key redo record).
func IsTxnOp(op byte) bool {
	return op == OpTxn || op == OpTxnPrep || op == OpTxnCommit
}
