// Package wal is the durability layer under the Bw-Tree: a segmented,
// CRC32C-framed, append-only write-ahead log with group commit, plus an
// epoch-consistent checkpoint (sorted snapshot file + manifest) and a
// recovery reader that replays the log tail and truncates a torn final
// record.
//
// The paper evaluates the OpenBw-Tree purely in memory, but the design it
// reproduces was built to live inside Deuteronomy/LLAMA with a
// log-structured persistence layer underneath (§2). This package supplies
// the minimal version of that layer for this repository: logical redo
// logging of index operations, not LLAMA's page-level log-structured
// store.
//
// # Log format
//
// The log is a sequence of segment files named wal-<firstLSN>.seg. Each
// segment starts with a 20-byte header:
//
//	magic "BWAL" | version uint32 LE | firstLSN uint64 LE | CRC32C(header[0:16])
//
// followed by records, each framed as
//
//	payloadLen uint32 LE | CRC32C(payload) | payload
//
// with payload
//
//	op byte | value uint64 LE | key bytes
//
// Records carry no explicit LSN: a record's LSN is the segment's firstLSN
// plus its ordinal in the segment, so LSNs are dense and strictly
// increasing across the whole log. A frame whose length and CRC are both
// zero marks clean end-of-log (it also makes a zero-filled preallocated
// tail self-terminating); any other undecodable tail is a torn write from
// a crash and is truncated by recovery.
//
// # Durability contract
//
// Append assigns the LSN and buffers the record; a dedicated flusher
// goroutine writes and fsyncs buffered records in batches (group commit).
// An operation is durable — guaranteed to survive Crash/recovery — only
// once DurableLSN() has reached its LSN, which WaitDurable blocks for.
// Crash() simulates a power failure by discarding everything past the
// last fsync.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// Op identifies the logged operation. The values are stable on-disk
// format; never renumber.
const (
	OpInsert byte = 'I'
	OpUpdate byte = 'U'
	OpDelete byte = 'D'
)

const (
	segMagic   = "BWAL"
	snapMagic  = "BSNP"
	version    = 1
	headerSize = 20
	frameSize  = 8 // length + crc
	// maxRecordSize bounds payloadLen during decoding so a corrupt length
	// field cannot drive a huge allocation. Keys are index keys; 16 MiB is
	// orders of magnitude beyond any legitimate record.
	maxRecordSize = 16 << 20
)

// castagnoli is the CRC32C table (the polynomial with hardware support on
// current CPUs, and the conventional choice for storage framing).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Writer. The zero value is usable: 64 MiB
// segments, fsync as soon as the previous fsync completes (group commit
// emerges from fsync latency), no artificial delay.
type Options struct {
	// SegmentSize rotates to a new segment file once the active one
	// exceeds this many bytes (default 64 MiB). Rotation granularity is
	// one flush batch, so segments may overshoot by up to one batch.
	SegmentSize int64
	// GroupCommitInterval, when positive, makes the flusher wait this
	// long after noticing pending records before it fsyncs, trading
	// commit latency for larger batches. Zero means fsync immediately;
	// batching then comes only from appends arriving during the previous
	// fsync.
	GroupCommitInterval time.Duration
	// GroupCommitBytes skips the GroupCommitInterval delay when at least
	// this many bytes are already pending (default 256 KiB): a full batch
	// gains nothing from waiting.
	GroupCommitBytes int
	// NoSync skips fsync entirely: records are durable against process
	// crash once written, but not against power failure. Crash() then
	// treats every written byte as durable. For benchmarks and tests.
	NoSync bool
}

func (o *Options) sanitize() {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 64 << 20
	}
	if o.SegmentSize < headerSize+frameSize {
		o.SegmentSize = headerSize + frameSize
	}
	if o.GroupCommitBytes <= 0 {
		o.GroupCommitBytes = 256 << 10
	}
	if o.GroupCommitInterval < 0 {
		o.GroupCommitInterval = 0
	}
}

// Record is one decoded log record.
type Record struct {
	LSN   uint64
	Op    byte
	Key   []byte
	Value uint64
}

// appendRecord appends one framed record to dst and returns the extended
// slice.
func appendRecord(dst []byte, op byte, key []byte, value uint64) []byte {
	payloadLen := 1 + 8 + len(key)
	var hdr [frameSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payloadLen))
	// CRC is computed over the payload; build payload first in-place.
	off := len(dst)
	dst = append(dst, hdr[:]...)
	dst = append(dst, op)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], value)
	dst = append(dst, v[:]...)
	dst = append(dst, key...)
	crc := crc32.Checksum(dst[off+frameSize:], castagnoli)
	binary.LittleEndian.PutUint32(dst[off+4:off+8], crc)
	return dst
}

// decodeStatus classifies the bytes at a decode position.
type decodeStatus uint8

const (
	decodeOK   decodeStatus = iota // a valid record was decoded
	decodeEnd                      // clean end-of-log marker (zero frame) or exact end of data
	decodeTorn                     // truncated or corrupt tail
)

// decodeRecord decodes one framed record from b. n is the number of bytes
// consumed when st == decodeOK. The returned key aliases b.
func decodeRecord(b []byte) (op byte, key []byte, value uint64, n int, st decodeStatus) {
	if len(b) == 0 {
		return 0, nil, 0, 0, decodeEnd
	}
	if len(b) < frameSize {
		return 0, nil, 0, 0, decodeTorn
	}
	payloadLen := binary.LittleEndian.Uint32(b[0:4])
	crc := binary.LittleEndian.Uint32(b[4:8])
	if payloadLen == 0 && crc == 0 {
		return 0, nil, 0, 0, decodeEnd
	}
	// A record payload is at least op + value.
	if payloadLen < 9 || payloadLen > maxRecordSize {
		return 0, nil, 0, 0, decodeTorn
	}
	if len(b) < frameSize+int(payloadLen) {
		return 0, nil, 0, 0, decodeTorn
	}
	payload := b[frameSize : frameSize+int(payloadLen)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, 0, 0, decodeTorn
	}
	op = payload[0]
	value = binary.LittleEndian.Uint64(payload[1:9])
	key = payload[9:]
	return op, key, value, frameSize + int(payloadLen), decodeOK
}

// encodeSegmentHeader renders the 20-byte segment header.
func encodeSegmentHeader(firstLSN uint64) [headerSize]byte {
	var h [headerSize]byte
	copy(h[0:4], segMagic)
	binary.LittleEndian.PutUint32(h[4:8], version)
	binary.LittleEndian.PutUint64(h[8:16], firstLSN)
	binary.LittleEndian.PutUint32(h[16:20], crc32.Checksum(h[0:16], castagnoli))
	return h
}

// decodeSegmentHeader validates a segment header and returns its firstLSN.
func decodeSegmentHeader(b []byte) (firstLSN uint64, err error) {
	if len(b) < headerSize {
		return 0, errShortHeader
	}
	if string(b[0:4]) != segMagic {
		return 0, fmt.Errorf("wal: bad segment magic %q", b[0:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != version {
		return 0, fmt.Errorf("wal: unsupported segment version %d", v)
	}
	if crc32.Checksum(b[0:16], castagnoli) != binary.LittleEndian.Uint32(b[16:20]) {
		return 0, errors.New("wal: segment header CRC mismatch")
	}
	return binary.LittleEndian.Uint64(b[8:16]), nil
}

var errShortHeader = errors.New("wal: segment shorter than header")

// segmentName returns the file name of the segment whose first record has
// the given LSN. Fixed-width decimal so lexicographic order equals LSN
// order.
func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%020d.seg", firstLSN)
}
