package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// appendN appends n records keyed key-<i> with value base+i and returns
// the last LSN.
func appendN(t *testing.T, w *Writer, n int, base uint64) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		lsn, err := w.Append(OpInsert, []byte(fmt.Sprintf("key-%06d", i)), base+uint64(i))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		last = lsn
	}
	return last
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ops := []struct {
		op  byte
		key string
		val uint64
	}{
		{OpInsert, "alpha", 1},
		{OpUpdate, "alpha", 2},
		{OpInsert, "beta", 3},
		{OpDelete, "alpha", 2},
		{OpInsert, string(bytes.Repeat([]byte{0xff}, 300)), 4}, // long key
	}
	for i, o := range ops {
		lsn, err := w.Append(o.op, []byte(o.key), o.val)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("LSN = %d, want %d (dense from 1)", lsn, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	st, err := Replay(dir, 0, func(r Record) error {
		k := make([]byte, len(r.Key))
		copy(k, r.Key)
		got = append(got, Record{LSN: r.LSN, Op: r.Op, Key: k, Value: r.Value})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(ops) || st.Torn {
		t.Fatalf("stats = %+v, want %d records, not torn", st, len(ops))
	}
	if st.MaxLSN != uint64(len(ops)) || st.FirstLSN != 1 || st.LastLSN != uint64(len(ops)) {
		t.Fatalf("LSN bounds wrong: %+v", st)
	}
	for i, o := range ops {
		r := got[i]
		if r.LSN != uint64(i+1) || r.Op != o.op || string(r.Key) != o.key || r.Value != o.val {
			t.Fatalf("record %d = %+v, want %+v", i, r, o)
		}
	}
}

func TestReplayAfterLSN(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several files so the skip optimization is
	// exercised across boundaries.
	w, err := NewWriter(dir, Options{SegmentSize: 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	// Wait out each record so every append is its own flush batch,
	// guaranteeing rotations actually happen at the tiny segment size.
	for i := 0; i < n; i++ {
		lsn, err := w.Append(OpInsert, []byte(fmt.Sprintf("key-%06d", i)), 1000+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WaitDurable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	for _, after := range []uint64{0, 1, 37, 99, 100, 150} {
		var first, last uint64
		var cnt int
		st, err := Replay(dir, after, func(r Record) error {
			if cnt == 0 {
				first = r.LSN
			}
			last = r.LSN
			cnt++
			return nil
		})
		if err != nil {
			t.Fatalf("after=%d: %v", after, err)
		}
		want := n - int(after)
		if want < 0 {
			want = 0
		}
		if cnt != want {
			t.Fatalf("after=%d: delivered %d records, want %d", after, cnt, want)
		}
		if want > 0 && (first != after+1 || last != n) {
			t.Fatalf("after=%d: delivered [%d,%d], want [%d,%d]", after, first, last, after+1, n)
		}
		if st.MaxLSN != n {
			t.Fatalf("after=%d: MaxLSN = %d, want %d", after, st.MaxLSN, n)
		}
	}
}

func TestGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{GroupCommitInterval: 2 * time.Millisecond}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append(OpInsert, []byte(fmt.Sprintf("w%d-%d", g, i)), uint64(i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.DurableLSN != workers*per {
		t.Fatalf("DurableLSN = %d, want %d", st.DurableLSN, workers*per)
	}
	if st.Batch.Total() == 0 {
		t.Fatal("no batches recorded")
	}
	if mean := st.Batch.Mean(); mean <= 1.0 {
		t.Errorf("group commit never batched: mean records/fsync = %.2f", mean)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	acked := appendN(t, w, 50, 0)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLSN(); got != acked {
		t.Fatalf("DurableLSN = %d, want %d", got, acked)
	}
	// Stall the flusher so the next appends stay buffered, then crash.
	restore := SetTestFault(func(op string, size int) (int, error) {
		if op == "sync" {
			time.Sleep(50 * time.Millisecond)
		}
		return size, nil
	})
	for i := 0; i < 20; i++ {
		if _, err := w.Append(OpInsert, []byte(fmt.Sprintf("lost-%d", i)), 9); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Crash(); err != nil {
		t.Fatal(err)
	}
	restore()
	if _, err := w.Append(OpInsert, []byte("after"), 1); err != ErrCrashed {
		t.Fatalf("Append after crash = %v, want ErrCrashed", err)
	}

	st, err := Replay(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every acked LSN survives; nothing beyond the last fsync may. (Records
	// between acked and the crash may or may not have been flushed by a
	// racing batch; with the stalled fsync they were not.)
	if st.MaxLSN < acked {
		t.Fatalf("MaxLSN = %d after crash, acked prefix %d lost", st.MaxLSN, acked)
	}
	if st.MaxLSN > w.DurableLSN() {
		t.Fatalf("MaxLSN = %d exceeds DurableLSN %d: unacked data survived fsync boundary", st.MaxLSN, w.DurableLSN())
	}
}

func TestCheckpointRecoverPrune(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{SegmentSize: 256}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 80, 0)
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint state: pretend the tree holds keys 0..79 (values = i).
	i := 0
	preCommitRan := false
	m, err := WriteCheckpoint(dir, w.AppendedLSN(), func() ([]byte, uint64, bool) {
		if i >= 80 {
			return nil, 0, false
		}
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := uint64(i)
		i++
		return k, v, true
	}, func() error { preCommitRan = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !preCommitRan {
		t.Fatal("preCommit was not invoked")
	}
	if m.LSN != 80 || m.Count != 80 {
		t.Fatalf("manifest = %+v", m)
	}

	// Prune should have removed segments fully covered by the checkpoint.
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("prune left %d segments, want 1 (the active one)", len(segs))
	}

	// Tail writes after the checkpoint.
	for j := 0; j < 10; j++ {
		if _, err := w.Append(OpInsert, []byte(fmt.Sprintf("tail-%d", j)), 100+uint64(j)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery: manifest -> snapshot -> tail replay.
	m2, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("LoadManifest: ok=%v err=%v", ok, err)
	}
	if m2 != m {
		t.Fatalf("manifest round-trip: %+v != %+v", m2, m)
	}
	var snapKeys int
	prev := ""
	if err := ReadSnapshot(dir, m2, func(k []byte, v uint64) error {
		if string(k) <= prev {
			t.Fatalf("snapshot keys not strictly ascending: %q after %q", k, prev)
		}
		prev = string(k)
		if v != uint64(snapKeys) {
			t.Fatalf("snapshot value %d, want %d", v, snapKeys)
		}
		snapKeys++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if snapKeys != 80 {
		t.Fatalf("snapshot delivered %d keys, want 80", snapKeys)
	}
	var tail []string
	st, err := Replay(dir, m2.LSN, func(r Record) error {
		tail = append(tail, string(r.Key))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 || st.FirstLSN != 81 || st.LastLSN != 90 {
		t.Fatalf("tail replay stats = %+v", st)
	}
	for j, k := range tail {
		if k != fmt.Sprintf("tail-%d", j) {
			t.Fatalf("tail[%d] = %q", j, k)
		}
	}
}

func TestWriterResumesAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 5, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Replay(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter(dir, Options{}, st.MaxLSN+1)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w2.Append(OpInsert, []byte("resumed"), 42)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("resumed LSN = %d, want 6", lsn)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Replay(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != 6 || st2.MaxLSN != 6 || st2.Segments != 2 {
		t.Fatalf("after resume: %+v", st2)
	}
}

func TestEmptyDirReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Replay(dir, 0, func(Record) error { t.Fatal("unexpected record"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.MaxLSN != 0 {
		t.Fatalf("empty dir: %+v", st)
	}
	// Also a directory that does not exist at all.
	st, err = Replay(filepath.Join(dir, "nope"), 0, nil)
	if err != nil || st.Records != 0 {
		t.Fatalf("missing dir: %+v, %v", st, err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	i := 0
	m, err := WriteCheckpoint(dir, 3, func() ([]byte, uint64, bool) {
		if i >= 10 {
			return nil, 0, false
		}
		k := []byte(fmt.Sprintf("k%02d", i))
		i++
		return k, uint64(i), true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, m.Snapshot)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadSnapshot(dir, m, func([]byte, uint64) error { return nil }); err == nil {
		t.Fatal("corrupt snapshot passed verification")
	}
}
