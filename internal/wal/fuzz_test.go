package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the segment/record decoders the
// way Replay consumes them: decode the header, then walk frames until
// end/torn. The decoders must never panic, never over-read, and every
// record they do accept must re-encode to the exact bytes consumed
// (round-trip: accepted data is real data).
//
// Run with a capped minimizer, as FuzzTreeVsModel does:
//
//	go test -run '^$' -fuzz FuzzWALDecode -fuzztime 30s -fuzzminimizetime 5x ./internal/wal/
func FuzzWALDecode(f *testing.F) {
	// Seeds: a well-formed segment, a torn one, zero fill, header damage.
	good := buildSeedSegment()
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte{}, good...), make([]byte, 32)...))
	f.Add(good[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("BWAL"))
	bad := append([]byte{}, good...)
	bad[headerSize+5] ^= 0x40
	f.Add(bad)

	// Transaction-record seeds: a segment holding all three record kinds
	// (self-contained commit, prepare, decision), a cut through the middle
	// of the txn record's blob, and a blob with a corrupt op count.
	txnSeg := buildSeedTxnSegment()
	f.Add(txnSeg)
	f.Add(txnSeg[:len(txnSeg)-len(txnSeg)/3])
	badTxn := append([]byte{}, txnSeg...)
	badTxn[headerSize+frameSize+10] ^= 0x01 // inside the first blob's nops
	f.Add(badTxn)

	f.Fuzz(func(t *testing.T, data []byte) {
		// The sub-op blob decoder sees CRC-verified bytes in production but
		// must still reject arbitrary garbage cleanly: no panic, no
		// over-read, and accepted blobs re-encode to the consumed bytes.
		if ops, err := DecodeTxnOps(data); err == nil {
			if re := EncodeTxnOps(nil, ops); !bytes.Equal(re, data) {
				t.Fatalf("txn op blob does not round-trip: %d ops", len(ops))
			}
		}
		if _, err := decodeSegmentHeader(data); err != nil {
			return // undecodable header: Replay would truncate/fail, fine
		}
		off := headerSize
		for {
			op, key, value, n, st := decodeRecord(data[off:])
			if st != decodeOK {
				break
			}
			if n <= frameSize || off+n > len(data) {
				t.Fatalf("decodeRecord consumed %d bytes at %d of %d", n, off, len(data))
			}
			// Round-trip: re-encoding the decoded record must reproduce the
			// consumed bytes exactly, or the CRC accepted corrupt data.
			re := appendRecord(nil, op, key, value)
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("record at %d does not round-trip", off)
			}
			// An accepted transaction record's blob must decode or be
			// rejected as a unit — a CRC-valid frame with a blob the
			// decoder tears in half would break commit atomicity.
			if IsTxnOp(op) {
				if ops, err := DecodeTxnOps(key); err == nil {
					if re := EncodeTxnOps(nil, ops); !bytes.Equal(re, key) {
						t.Fatalf("txn record blob at %d does not round-trip", off)
					}
				}
			}
			off += n
		}
	})
}

// buildSeedSegment renders a small valid segment for the fuzz seeds.
func buildSeedSegment() []byte {
	h := encodeSegmentHeader(1)
	out := append([]byte{}, h[:]...)
	out = appendRecord(out, OpInsert, []byte("alpha"), 1)
	out = appendRecord(out, OpUpdate, []byte("alpha"), 2)
	out = appendRecord(out, OpDelete, []byte("alpha"), 2)
	out = appendRecord(out, OpInsert, bytes.Repeat([]byte{0x00}, 40), 3)
	return out
}

// buildSeedTxnSegment renders a valid segment holding every transaction
// record kind for the fuzz seeds: one self-contained commit, one
// prepare, and one decision record.
func buildSeedTxnSegment() []byte {
	h := encodeSegmentHeader(1)
	out := append([]byte{}, h[:]...)
	blob := EncodeTxnOps(nil, []TxnOp{
		{Op: OpInsert, Key: []byte("acct-a"), Value: 40},
		{Op: OpUpdate, Key: []byte("acct-b"), Value: 60},
		{Op: OpDelete, Key: []byte("acct-c"), Value: 1},
	})
	out = appendRecord(out, OpTxn, blob, 7)
	prep := EncodeTxnOps(nil, []TxnOp{{Op: OpUpdate, Key: []byte("acct-d"), Value: 9}})
	out = appendRecord(out, OpTxnPrep, prep, 8)
	out = appendRecord(out, OpTxnCommit, EncodeTxnOps(nil, nil), 8)
	return out
}

// TestTxnTornTailNeverHalfApplies truncates a segment at every byte
// boundary and replays it: the transaction record must come back whole
// (bit-exact write set, decodable blob) or not at all — no truncation
// point may surface a partial write set. This is the framing half of the
// commit-atomicity argument; bwtree's recovery tests cover the apply
// half.
func TestTxnTornTailNeverHalfApplies(t *testing.T) {
	seg := buildSeedTxnSegment()
	want := []TxnOp{
		{Op: OpInsert, Key: []byte("acct-a"), Value: 40},
		{Op: OpUpdate, Key: []byte("acct-b"), Value: 60},
		{Op: OpDelete, Key: []byte("acct-c"), Value: 1},
	}
	for cut := 0; cut <= len(seg); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		sawTxn := false
		Replay(dir, 0, func(r Record) error {
			if !IsTxnOp(r.Op) {
				return nil
			}
			ops, err := DecodeTxnOps(r.Key)
			if err != nil {
				t.Fatalf("cut %d: replay surfaced a txn record with torn blob: %v", cut, err)
			}
			if r.Op != OpTxn {
				return nil
			}
			sawTxn = true
			if len(ops) != len(want) {
				t.Fatalf("cut %d: txn record replayed with %d of %d sub-ops", cut, len(ops), len(want))
			}
			for i := range ops {
				if ops[i].Op != want[i].Op || !bytes.Equal(ops[i].Key, want[i].Key) || ops[i].Value != want[i].Value {
					t.Fatalf("cut %d: sub-op %d mutated: %+v", cut, i, ops[i])
				}
			}
			return nil
		})
		if full := headerSize + frameSize + 9 + len(EncodeTxnOps(nil, want)); cut >= full != sawTxn {
			t.Fatalf("cut %d: sawTxn=%v, record ends at %d", cut, sawTxn, full)
		}
	}
}

// TestFuzzCorpusReplays runs every checked-in corpus entry through the
// full Replay path (not just the decoders) in a scratch directory, so
// regressions caught by fuzzing stay covered in plain `go test`.
func TestFuzzCorpusReplays(t *testing.T) {
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzWALDecode"))
	if err != nil {
		t.Skip("no checked-in corpus")
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join("testdata", "fuzz", "FuzzWALDecode", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus files are in the go-fuzz v1 text format; extract the byte
		// literal crudely — everything between the first and last quote.
		i, j := bytes.IndexByte(data, '"'), bytes.LastIndexByte(data, '"')
		if i < 0 || j <= i {
			continue
		}
		raw, err := strconv.Unquote(string(data[i : j+1]))
		if err != nil {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		// Must terminate without panicking; error or torn are both fine.
		Replay(dir, 0, func(Record) error { return nil })
	}
}
