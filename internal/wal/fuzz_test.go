package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the segment/record decoders the
// way Replay consumes them: decode the header, then walk frames until
// end/torn. The decoders must never panic, never over-read, and every
// record they do accept must re-encode to the exact bytes consumed
// (round-trip: accepted data is real data).
//
// Run with a capped minimizer, as FuzzTreeVsModel does:
//
//	go test -run '^$' -fuzz FuzzWALDecode -fuzztime 30s -fuzzminimizetime 5x ./internal/wal/
func FuzzWALDecode(f *testing.F) {
	// Seeds: a well-formed segment, a torn one, zero fill, header damage.
	good := buildSeedSegment()
	f.Add(good)
	f.Add(good[:len(good)-3])
	f.Add(append(append([]byte{}, good...), make([]byte, 32)...))
	f.Add(good[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("BWAL"))
	bad := append([]byte{}, good...)
	bad[headerSize+5] ^= 0x40
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := decodeSegmentHeader(data); err != nil {
			return // undecodable header: Replay would truncate/fail, fine
		}
		off := headerSize
		for {
			op, key, value, n, st := decodeRecord(data[off:])
			if st != decodeOK {
				break
			}
			if n <= frameSize || off+n > len(data) {
				t.Fatalf("decodeRecord consumed %d bytes at %d of %d", n, off, len(data))
			}
			// Round-trip: re-encoding the decoded record must reproduce the
			// consumed bytes exactly, or the CRC accepted corrupt data.
			re := appendRecord(nil, op, key, value)
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("record at %d does not round-trip", off)
			}
			off += n
		}
	})
}

// buildSeedSegment renders a small valid segment for the fuzz seeds.
func buildSeedSegment() []byte {
	h := encodeSegmentHeader(1)
	out := append([]byte{}, h[:]...)
	out = appendRecord(out, OpInsert, []byte("alpha"), 1)
	out = appendRecord(out, OpUpdate, []byte("alpha"), 2)
	out = appendRecord(out, OpDelete, []byte("alpha"), 2)
	out = appendRecord(out, OpInsert, bytes.Repeat([]byte{0x00}, 40), 3)
	return out
}

// TestFuzzCorpusReplays runs every checked-in corpus entry through the
// full Replay path (not just the decoders) in a scratch directory, so
// regressions caught by fuzzing stay covered in plain `go test`.
func TestFuzzCorpusReplays(t *testing.T) {
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzWALDecode"))
	if err != nil {
		t.Skip("no checked-in corpus")
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join("testdata", "fuzz", "FuzzWALDecode", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus files are in the go-fuzz v1 text format; extract the byte
		// literal crudely — everything between the first and last quote.
		i, j := bytes.IndexByte(data, '"'), bytes.LastIndexByte(data, '"')
		if i < 0 || j <= i {
			continue
		}
		raw, err := strconv.Unquote(string(data[i : j+1]))
		if err != nil {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), []byte(raw), 0o644); err != nil {
			t.Fatal(err)
		}
		// Must terminate without panicking; error or torn are both fine.
		Replay(dir, 0, func(Record) error { return nil })
	}
}
