package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ReplayStats describes one recovery pass over the log.
type ReplayStats struct {
	// Segments is the number of segment files visited.
	Segments int
	// Records is the number of records delivered to the callback.
	Records int
	// FirstLSN/LastLSN bound the delivered records (0/0 when none).
	FirstLSN, LastLSN uint64
	// MaxLSN is the highest LSN present in the log, delivered or not
	// (records at or below the replay start still advance it). The next
	// writer must continue at MaxLSN+1.
	MaxLSN uint64
	// Torn reports that the final segment ended in a torn or corrupt
	// record, which was truncated away at TornOffset.
	Torn       bool
	TornOffset int64
}

// listSegments returns the log's segment file names in LSN order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs) // fixed-width LSN in the name: lexicographic == numeric
	return segs, nil
}

// DirSize returns the total byte size of the log segments in dir; 0 when
// the directory is missing or holds no segments. Callers use it to size
// replay-time structures before the record count is known.
func DirSize(dir string) int64 {
	segs, err := listSegments(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, name := range segs {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// Replay scans the log in dir and calls fn for every record with
// LSN > afterLSN, in LSN order. A torn or corrupt tail in the final
// segment is truncated from the file (the write-ahead contract: such a
// record was never acknowledged, so discarding it is the correct
// recovery); the same damage in a non-final segment is a hard error,
// because rotation fsyncs a segment before opening its successor.
//
// fn's key slice aliases an internal buffer and is only valid during the
// call.
func Replay(dir string, afterLSN uint64, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	// firstLSNs[i] is segment i's first LSN, parsed from the header.
	firstLSNs := make([]uint64, len(segs))
	datas := make([][]byte, len(segs))
	for i, name := range segs {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return st, err
		}
		if len(data) == 0 {
			// A crash can leave a created-but-never-synced segment empty;
			// tolerate it only as the final segment.
			if i != len(segs)-1 {
				return st, fmt.Errorf("wal: empty non-final segment %s", name)
			}
			datas[i] = nil
			firstLSNs[i] = 0
			continue
		}
		first, err := decodeSegmentHeader(data)
		if err != nil {
			if i == len(segs)-1 {
				// Torn header write in the final segment: it holds no
				// durable records.
				if terr := truncateFile(filepath.Join(dir, name), 0); terr != nil {
					return st, terr
				}
				st.Torn, st.TornOffset = true, 0
				datas[i] = nil
				continue
			}
			return st, fmt.Errorf("wal: segment %s: %w", name, err)
		}
		firstLSNs[i] = first
		datas[i] = data
	}

	for i := range segs {
		data := datas[i]
		if data == nil {
			continue
		}
		st.Segments++
		lsn := firstLSNs[i]
		if lsn > 0 && lsn-1 > st.MaxLSN {
			st.MaxLSN = lsn - 1
		}
		// Skip decoding a segment that ends below the replay start: the
		// next segment's first LSN bounds this one's last.
		if i+1 < len(segs) && datas[i+1] != nil && firstLSNs[i+1] <= afterLSN+1 {
			if firstLSNs[i+1]-1 > st.MaxLSN {
				st.MaxLSN = firstLSNs[i+1] - 1
			}
			continue
		}
		off := headerSize
		for {
			op, key, value, n, status := decodeRecord(data[off:])
			if status == decodeEnd {
				break
			}
			if status == decodeTorn {
				if i != len(segs)-1 {
					return st, fmt.Errorf("wal: corrupt record at %s+%d (not the final segment)", segs[i], off)
				}
				if err := truncateFile(filepath.Join(dir, segs[i]), int64(off)); err != nil {
					return st, err
				}
				st.Torn, st.TornOffset = true, int64(off)
				break
			}
			if lsn > st.MaxLSN {
				st.MaxLSN = lsn
			}
			if lsn > afterLSN {
				if st.Records == 0 {
					st.FirstLSN = lsn
				}
				st.LastLSN = lsn
				st.Records++
				if fn != nil {
					if err := fn(Record{LSN: lsn, Op: op, Key: key, Value: value}); err != nil {
						return st, err
					}
				}
			}
			lsn++
			off += n
		}
	}
	return st, nil
}

// truncateFile truncates path to size and fsyncs it, making the
// discarded torn tail unrecoverable (so a later crash cannot resurrect
// half a record).
func truncateFile(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// Prune removes log segments made obsolete by a checkpoint at cpLSN:
// a segment is removable when its successor's first LSN is <= cpLSN+1,
// meaning every record the segment holds is already covered by the
// snapshot. The active (last) segment is always kept.
func Prune(dir string, cpLSN uint64) (removed int, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	firsts := make([]uint64, len(segs))
	for i, name := range segs {
		data, err := readHeader(filepath.Join(dir, name))
		if err != nil {
			return removed, nil // unreadable tail segment: keep everything from here
		}
		first, err := decodeSegmentHeader(data)
		if err != nil {
			return removed, nil
		}
		firsts[i] = first
	}
	for i := 0; i+1 < len(segs); i++ {
		if firsts[i+1] <= cpLSN+1 {
			if err := os.Remove(filepath.Join(dir, segs[i])); err != nil {
				return removed, err
			}
			removed++
		} else {
			break
		}
	}
	if removed > 0 {
		err = syncDir(dir)
	}
	return removed, err
}

// readHeader reads just a segment's header bytes.
func readHeader(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, headerSize)
	n, err := f.Read(buf)
	if n < headerSize {
		return buf[:n], errShortHeader
	}
	return buf, err
}
